/**
 * @file
 * Tests for the IR, interpreter and automatic access/execute slicer: the
 * Figure 5 kernel decouples and computes identical results through MAPLE;
 * read-modify-write and IMA-free kernels fall back to doall; the software-
 * prefetch insertion pass preserves semantics while adding index loads.
 */
#include <gtest/gtest.h>

#include "kern/interp.hpp"
#include "kern/kernels.hpp"
#include "kern/slicer.hpp"
#include "soc/soc.hpp"

using namespace maple;
using namespace maple::kern;

namespace {

/** Arrays + golden result for the gather kernel, uploaded to a process. */
struct GatherData {
    static constexpr std::uint32_t kN = 256;
    sim::Addr a, b, c, res;
    std::vector<float> golden;

    explicit GatherData(os::Process &proc, unsigned pad = 64)
    {
        a = proc.alloc(kN * 4, "A");
        b = proc.alloc((kN + pad) * 4, "B");  // slack for prefetch over-read
        c = proc.alloc(kN * 4, "C");
        res = proc.alloc(kN * 4, "res");
        golden.resize(kN);
        std::vector<float> av(kN), cv(kN);
        std::vector<std::uint32_t> bv(kN);
        for (std::uint32_t i = 0; i < kN; ++i) {
            av[i] = 1.0f + float(i) * 0.25f;
            bv[i] = (i * 97) % kN;
            cv[i] = 2.0f + float(i % 7);
        }
        for (std::uint32_t i = 0; i < kN; ++i)
            golden[i] = av[bv[i]] * cv[i];
        proc.writeBytes(a, av.data(), kN * 4);
        proc.writeBytes(b, bv.data(), kN * 4);
        proc.writeBytes(c, cv.data(), kN * 4);
    }

    void
    bind(GatherKernel &k) const
    {
        patchConst(k.prog, k.pc_a, a);
        patchConst(k.prog, k.pc_b, b);
        patchConst(k.prog, k.pc_c, c);
        patchConst(k.prog, k.pc_res, res);
        patchConst(k.prog, k.pc_n, kN);
    }

    bool
    check(os::Process &proc) const
    {
        std::vector<float> out(kN);
        proc.readBytes(res, out.data(), kN * 4);
        for (std::uint32_t i = 0; i < kN; ++i) {
            if (std::bit_cast<std::uint32_t>(out[i]) !=
                std::bit_cast<std::uint32_t>(golden[i]))
                return false;
        }
        return true;
    }
};

}  // namespace

TEST(Ir, BuilderEmitsWellFormedPrograms)
{
    GatherKernel k = makeGatherMultiply();
    std::string why;
    EXPECT_TRUE(k.prog.wellFormed(&why)) << why;
    EXPECT_GT(k.prog.code.size(), 10u);
}

TEST(Ir, WellFormedRejectsUnbalancedLoops)
{
    Program p;
    p.num_regs = 3;
    p.code.push_back({Op::Const, 0, kNoReg, kNoReg, 0, 4, 0});
    p.code.push_back({Op::Const, 1, kNoReg, kNoReg, 4, 4, 0});
    p.code.push_back({Op::LoopBegin, 2, 0, 1, 0, 4, 0});
    std::string why;
    EXPECT_FALSE(p.wellFormed(&why));
    EXPECT_NE(why.find("loop"), std::string::npos);
}

TEST(Ir, WellFormedRejectsBadRegisters)
{
    Program p;
    p.num_regs = 1;
    p.code.push_back({Op::Add, 0, 5, 0, 0, 4, 0});  // r5 out of range
    EXPECT_FALSE(p.wellFormed());
}

TEST(Ir, DisassembleContainsOpcodes)
{
    GatherKernel k = makeGatherMultiply();
    std::string d = disassemble(k.prog);
    EXPECT_NE(d.find("loop"), std::string::npos);
    EXPECT_NE(d.find("mulf32"), std::string::npos);
    EXPECT_NE(d.find("store"), std::string::npos);
}

TEST(Interp, TimedMatchesFunctional)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("interp");
    GatherData data(proc);

    GatherKernel k = makeGatherMultiply();
    data.bind(k);

    // Functional reference in a second process image? Use the same process
    // but separate result arrays: simpler -- run functional first, snapshot,
    // zero, then run timed.
    interpretFunctional(k.prog, proc);
    EXPECT_TRUE(data.check(proc));

    std::vector<std::uint32_t> zeros(GatherData::kN, 0);
    proc.writeBytes(data.res, zeros.data(), zeros.size() * 4);

    ExecEnv env;
    env.core = &soc.core(0);
    soc.run({sim::spawn(interpret(k.prog, env))}, 100'000'000);
    EXPECT_TRUE(data.check(proc));
}

TEST(Interp, ZeroTripLoopIsSkipped)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("interp");
    sim::Addr out = proc.alloc(64, "out");
    proc.writeScalar<std::uint32_t>(out, 777);

    Builder b;
    Reg lo = b.constant(5);
    Reg hi = b.constant(5);  // empty range
    Reg addr = b.constant(out);
    Reg v = b.constant(123);
    b.loopBegin(lo, hi);
    b.store(addr, v, 4);
    b.loopEnd();
    Program p = b.take();

    ExecEnv env;
    env.core = &soc.core(0);
    soc.run({sim::spawn(interpret(p, env))}, 1'000'000);
    EXPECT_EQ(proc.readScalar<std::uint32_t>(out), 777u) << "loop body ran";
}

TEST(Slicer, GatherKernelDecouples)
{
    GatherKernel k = makeGatherMultiply();
    SliceResult r = sliceProgram(k.prog);
    ASSERT_TRUE(r.decoupled) << r.reason;
    EXPECT_EQ(r.queues_used, 1u);

    // Access slice: has ProducePtr for the IMA, loads B, no stores, and does
    // NOT load C (execute-only data).
    int produce_ptrs = 0, stores = 0, loads = 0;
    for (const Inst &in : r.access.code) {
        produce_ptrs += in.op == Op::ProducePtr;
        stores += in.op == Op::Store;
        loads += in.op == Op::Load;
    }
    EXPECT_EQ(produce_ptrs, 1);
    EXPECT_EQ(stores, 0);
    EXPECT_EQ(loads, 1) << "access should load only B[i]";

    // Execute slice: consumes the IMA value, loads C, keeps the store.
    int consumes = 0, exec_loads = 0, exec_stores = 0;
    for (const Inst &in : r.execute.code) {
        consumes += in.op == Op::Consume;
        exec_loads += in.op == Op::Load;
        exec_stores += in.op == Op::Store;
    }
    EXPECT_EQ(consumes, 1);
    EXPECT_EQ(exec_loads, 1) << "execute should load only C[i]";
    EXPECT_EQ(exec_stores, 1);
}

TEST(Slicer, SlicedExecutionMatchesGoldenThroughMaple)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("sliced");
    GatherData data(proc);

    GatherKernel k = makeGatherMultiply();
    data.bind(k);
    SliceResult r = sliceProgram(k.prog);
    ASSERT_TRUE(r.decoupled) << r.reason;

    auto api = core::MapleApi::attach(proc, soc.maple());
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 32, 4);
        bool ok = co_await api.open(c, 0);
        EXPECT_TRUE(ok);
    };
    soc.run({sim::spawn(setup(soc.core(0)))}, 1'000'000);

    ExecEnv access_env{&soc.core(0), &api, 0};
    ExecEnv exec_env{&soc.core(1), &api, 0};
    soc.run({sim::spawn(interpret(r.access, access_env)),
             sim::spawn(interpret(r.execute, exec_env))},
            100'000'000);
    EXPECT_TRUE(data.check(proc));
}

TEST(Slicer, AutoSlicedIsFasterThanSingleCore)
{
    soc::Soc soc1(soc::SocConfig::fpga());
    os::Process &p1 = soc1.createProcess("single");
    GatherData d1(p1);
    GatherKernel k1 = makeGatherMultiply();
    d1.bind(k1);
    ExecEnv env1{&soc1.core(0), nullptr, 0};
    sim::Cycle single = soc1.run({sim::spawn(interpret(k1.prog, env1))},
                                 100'000'000);

    soc::Soc soc2(soc::SocConfig::fpga());
    os::Process &p2 = soc2.createProcess("sliced");
    GatherData d2(p2);
    GatherKernel k2 = makeGatherMultiply();
    d2.bind(k2);
    SliceResult r = sliceProgram(k2.prog);
    ASSERT_TRUE(r.decoupled);
    auto api = core::MapleApi::attach(p2, soc2.maple());
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 32, 4);
        bool ok = co_await api.open(c, 0);
        EXPECT_TRUE(ok);
    };
    soc2.run({sim::spawn(setup(soc2.core(0)))}, 1'000'000);
    ExecEnv ae{&soc2.core(0), &api, 0};
    ExecEnv ee{&soc2.core(1), &api, 0};
    sim::Cycle start = soc2.eq().now();
    sim::Cycle sliced = soc2.run({sim::spawn(interpret(r.access, ae)),
                                  sim::spawn(interpret(r.execute, ee))},
                                 100'000'000);
    (void)start;
    EXPECT_TRUE(d2.check(p2));
    EXPECT_LT(sliced, single) << "decoupling should beat one in-order core";
}

TEST(Slicer, RmwScatterFallsBack)
{
    GatherKernel k = makeRmwScatter();
    SliceResult r = sliceProgram(k.prog);
    EXPECT_FALSE(r.decoupled);
    EXPECT_NE(r.reason.find("read-modify-write"), std::string::npos) << r.reason;
}

TEST(Slicer, DenseKernelFallsBack)
{
    GatherKernel k = makeDenseAdd();
    SliceResult r = sliceProgram(k.prog);
    EXPECT_FALSE(r.decoupled);
    EXPECT_NE(r.reason.find("no indirect"), std::string::npos) << r.reason;
}

TEST(PrefetchPass, PreservesSemanticsAndAddsIndexLoads)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("pf");
    GatherData data(proc);

    GatherKernel k = makeGatherMultiply();
    data.bind(k);
    Program with_pf = insertSoftwarePrefetch(k.prog, 8);

    int prefetches = 0, loads = 0, base_loads = 0;
    for (const Inst &in : with_pf.code)
        prefetches += in.op == Op::Prefetch, loads += in.op == Op::Load;
    for (const Inst &in : k.prog.code)
        base_loads += in.op == Op::Load;
    EXPECT_EQ(prefetches, 1);
    EXPECT_EQ(loads, base_loads + 1) << "one extra index load per iteration";

    ExecEnv env{&soc.core(0), nullptr, 0};
    soc.run({sim::spawn(interpret(with_pf, env))}, 100'000'000);
    EXPECT_TRUE(data.check(proc));
}

TEST(PrefetchPass, NoPatternMeansNoChange)
{
    GatherKernel k = makeDenseAdd();
    Program out = insertSoftwarePrefetch(k.prog, 8);
    EXPECT_EQ(out.code.size(), k.prog.code.size());
}

// ---------------------------------------------------------------------------
// Nested-loop CSR SPMV in IR: the slicer's hard cases (loads as loop bounds,
// regular RMW accumulation in Execute).
// ---------------------------------------------------------------------------

namespace {

struct SpmvIrData {
    static constexpr std::uint32_t kRows = 48, kCols = 96;
    sim::Addr row_ptr, col, vals, x, y;
    std::vector<float> golden;

    explicit SpmvIrData(os::Process &proc)
    {
        std::vector<std::uint32_t> rp{0};
        std::vector<std::uint32_t> cols_v;
        std::vector<float> vals_v;
        for (std::uint32_t r = 0; r < kRows; ++r) {
            unsigned deg = r % 5;  // includes empty rows (zero-trip loops)
            for (unsigned d = 0; d < deg; ++d) {
                cols_v.push_back((r * 13 + d * 29) % kCols);
                vals_v.push_back(0.5f + float((r + d) % 9));
            }
            rp.push_back(static_cast<std::uint32_t>(cols_v.size()));
        }
        std::vector<float> xv(kCols);
        for (std::uint32_t i = 0; i < kCols; ++i)
            xv[i] = 1.0f + float(i % 11) * 0.25f;

        golden.assign(kRows, 0.0f);
        for (std::uint32_t r = 0; r < kRows; ++r)
            for (std::uint32_t jj = rp[r]; jj < rp[r + 1]; ++jj)
                golden[r] += vals_v[jj] * xv[cols_v[jj]];

        row_ptr = proc.alloc(rp.size() * 4, "rp");
        proc.writeBytes(row_ptr, rp.data(), rp.size() * 4);
        col = proc.alloc(std::max<size_t>(1, cols_v.size()) * 4, "col");
        proc.writeBytes(col, cols_v.data(), cols_v.size() * 4);
        vals = proc.alloc(std::max<size_t>(1, vals_v.size()) * 4, "vals");
        proc.writeBytes(vals, vals_v.data(), vals_v.size() * 4);
        x = proc.alloc(kCols * 4, "x");
        proc.writeBytes(x, xv.data(), kCols * 4);
        y = proc.alloc(kRows * 4, "y");
    }

    void
    bind(SpmvKernel &k) const
    {
        patchConst(k.prog, k.pc_row_ptr, row_ptr);
        patchConst(k.prog, k.pc_col, col);
        patchConst(k.prog, k.pc_vals, vals);
        patchConst(k.prog, k.pc_x, x);
        patchConst(k.prog, k.pc_y, y);
        patchConst(k.prog, k.pc_rows, kRows);
    }

    bool
    check(os::Process &proc) const
    {
        for (std::uint32_t r = 0; r < kRows; ++r) {
            float out = proc.readScalar<float>(y + 4 * r);
            if (std::bit_cast<std::uint32_t>(out) !=
                std::bit_cast<std::uint32_t>(golden[r]))
                return false;
        }
        return true;
    }
};

}  // namespace

TEST(SlicerSpmv, NestedLoopKernelDecouplesWithDuplicatedBounds)
{
    SpmvKernel k = makeSpmvIr();
    SliceResult r = sliceProgram(k.prog);
    ASSERT_TRUE(r.decoupled) << r.reason;

    // Access: row_ptr (x2, duplicated bounds) + col; one ProducePtr; no store.
    int a_loads = 0, a_pp = 0, a_stores = 0;
    for (const Inst &in : r.access.code) {
        a_loads += in.op == Op::Load;
        a_pp += in.op == Op::ProducePtr;
        a_stores += in.op == Op::Store;
    }
    EXPECT_EQ(a_loads, 3);
    EXPECT_EQ(a_pp, 1);
    EXPECT_EQ(a_stores, 0);

    // Execute: duplicated bounds (2) + vals + y accumulator = 4 loads, one
    // consume, one store; and it must NOT load col or x.
    int e_loads = 0, e_cons = 0, e_stores = 0;
    for (const Inst &in : r.execute.code) {
        e_loads += in.op == Op::Load;
        e_cons += in.op == Op::Consume;
        e_stores += in.op == Op::Store;
    }
    EXPECT_EQ(e_loads, 4);
    EXPECT_EQ(e_cons, 1);
    EXPECT_EQ(e_stores, 1);
}

TEST(SlicerSpmv, SlicedSpmvMatchesGoldenThroughMaple)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("spmv-ir");
    SpmvIrData data(proc);
    SpmvKernel k = makeSpmvIr();
    data.bind(k);
    SliceResult r = sliceProgram(k.prog);
    ASSERT_TRUE(r.decoupled) << r.reason;

    auto api = core::MapleApi::attach(proc, soc.maple());
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 32, 4);
        bool ok = co_await api.open(c, 0);
        EXPECT_TRUE(ok);
    };
    soc.run({sim::spawn(setup(soc.core(0)))}, 1'000'000);

    ExecEnv ae{&soc.core(0), &api, 0};
    ExecEnv ee{&soc.core(1), &api, 0};
    soc.run({sim::spawn(interpret(r.access, ae)),
             sim::spawn(interpret(r.execute, ee))},
            200'000'000);
    EXPECT_TRUE(data.check(proc));
}

TEST(SlicerSpmv, SingleCoreIrSpmvMatchesGolden)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("spmv-ir1");
    SpmvIrData data(proc);
    SpmvKernel k = makeSpmvIr();
    data.bind(k);
    ExecEnv env{&soc.core(0), nullptr, 0};
    soc.run({sim::spawn(interpret(k.prog, env))}, 200'000'000);
    EXPECT_TRUE(data.check(proc));
}
