/**
 * @file
 * Property-based tests of MAPLE's correctness invariants -- the simulation
 * stand-in for the paper's JasperGold/SVA unit-level verification (Section
 * 3.9). Randomized stimulus is checked against a reference model across
 * parameter sweeps:
 *
 *  P1. FIFO property: values leave a queue in exactly the order their
 *      produces entered, for any interleaving of data- and pointer-produces,
 *      any queue geometry, and out-of-order memory responses.
 *  P2. No loss / no duplication / no invention of entries.
 *  P3. Liveness: every produce is eventually consumable and every parked
 *      consume eventually completes, under randomized timing.
 *  P4. Occupancy never exceeds the configured capacity (no overflow), and
 *      the scratchpad budget bounds total configured storage.
 *  P5. Independence: traffic on other queues never reorders a queue.
 */
#include <gtest/gtest.h>

#include <deque>

#include "core/maple_runtime.hpp"
#include "sim/random.hpp"
#include "soc/soc.hpp"

using namespace maple;
using core::MapleApi;

namespace {

struct PropFixture {
    soc::Soc soc;
    os::Process &proc;
    MapleApi api;

    PropFixture()
        : soc(soc::SocConfig::fpga()), proc(soc.createProcess("prop")),
          api(MapleApi::attach(proc, soc.maple()))
    {
    }
};

}  // namespace

/** P1+P2+P3 under a randomized mix of data/pointer produces. */
class MapleFifoProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {
};

TEST_P(MapleFifoProperty, RandomizedMixedProduceStream)
{
    auto [entries, entry_bytes, seed] = GetParam();
    PropFixture f;

    constexpr int kOps = 300;
    sim::Rng rng(seed);

    // Backing array for pointer produces; data scattered across pages.
    sim::Addr mem = f.proc.alloc(kOps * 64, "mem");
    std::vector<std::uint64_t> expected;
    struct Item {
        bool is_ptr;
        std::uint64_t payload;  // value or pointer
    };
    std::vector<Item> plan;
    for (int i = 0; i < kOps; ++i) {
        bool is_ptr = rng.below(2) == 0;
        std::uint64_t value = rng.next() & (entry_bytes == 4 ? 0xffffffffull
                                                             : ~0ull);
        if (is_ptr) {
            sim::Addr slot = mem + 64 * sim::Addr(i);  // distinct per op
            f.proc.writeBytes(slot, &value, entry_bytes);
            plan.push_back({true, slot});
        } else {
            plan.push_back({false, value});
        }
        expected.push_back(value);
    }

    std::vector<std::uint64_t> got;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, entries, entry_bytes);
        bool ok = co_await f.api.open(c, 0);
        EXPECT_TRUE(ok);
        sim::Rng delay_rng(seed ^ 0x1234);
        for (const Item &item : plan) {
            if (delay_rng.below(4) == 0)
                co_await sim::delay(f.soc.eq(), delay_rng.below(100));
            if (item.is_ptr)
                co_await f.api.producePtr(c, 0, item.payload);
            else
                co_await f.api.produce(c, 0, item.payload);
        }
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 500);
        sim::Rng delay_rng(seed ^ 0x5678);
        for (int i = 0; i < kOps; ++i) {
            if (delay_rng.below(4) == 0)
                co_await sim::delay(f.soc.eq(), delay_rng.below(150));
            got.push_back(co_await f.api.consume(c, 0));
        }
    };

    f.soc.run({sim::spawn(producer(f.soc.core(0))),
               sim::spawn(consumer(f.soc.core(1)))},
              200'000'000);

    // P2: nothing lost, invented or duplicated; P1: exact order.
    ASSERT_EQ(got.size(), expected.size());
    for (int i = 0; i < kOps; ++i) {
        std::uint64_t mask = entry_bytes == 4 ? 0xffffffffull : ~0ull;
        ASSERT_EQ(got[i] & mask, expected[i] & mask)
            << "FIFO violated at " << i << " (entries=" << entries
            << " bytes=" << entry_bytes << " seed=" << seed << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapleFifoProperty,
    ::testing::Values(std::make_tuple(4u, 8u, 1u), std::make_tuple(8u, 4u, 2u),
                      std::make_tuple(16u, 8u, 3u), std::make_tuple(32u, 4u, 4u),
                      std::make_tuple(32u, 8u, 5u), std::make_tuple(64u, 4u, 6u),
                      std::make_tuple(2u, 8u, 7u), std::make_tuple(128u, 4u, 8u)));

/** P4: occupancy is bounded by capacity at every consume observation. */
TEST(MapleProperties, OccupancyNeverExceedsCapacity)
{
    PropFixture f;
    constexpr unsigned kCap = 8;
    bool violated = false;

    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, kCap, 8);
        bool ok = co_await f.api.open(c, 0);
        EXPECT_TRUE(ok);
        for (int i = 0; i < 200; ++i)
            co_await f.api.produce(c, 0, i);
    };
    auto watcher = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 400);
        for (int i = 0; i < 200; ++i) {
            std::uint64_t occ = co_await f.api.occupancy(c, 0);
            violated |= occ > kCap;
            (void)co_await f.api.consume(c, 0);
        }
    };
    f.soc.run({sim::spawn(producer(f.soc.core(0))),
               sim::spawn(watcher(f.soc.core(1)))},
              100'000'000);
    EXPECT_FALSE(violated);
    // Direct structural check too.
    EXPECT_LE(f.soc.maple().queue(0).occupancy(), kCap);
}

/** P5: heavy traffic on queue 1 never perturbs queue 0's order. */
TEST(MapleProperties, IndependentQueuesDoNotInterfere)
{
    PropFixture f;
    std::vector<std::uint64_t> got0;
    sim::Signal configured;  // queues must exist before the noise starts

    auto setup_and_q0 = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 2, 16, 8);
        bool a = co_await f.api.open(c, 0);
        bool b = co_await f.api.open(c, 1);
        EXPECT_TRUE(a && b);
        configured.set(sim::Unit{});
        for (std::uint64_t i = 0; i < 100; ++i) {
            co_await f.api.produce(c, 0, 5000 + i);
            got0.push_back(co_await f.api.consume(c, 0));
        }
    };
    auto noise_q1 = [&](cpu::Core &c) -> sim::Task<void> {
        co_await configured;
        // Bursts of 8 produces drained by 8 consumes: constant pressure on
        // queue 1 without ever exceeding its own capacity.
        for (int burst = 0; burst < 40; ++burst) {
            for (std::uint64_t i = 0; i < 8; ++i)
                co_await f.api.produce(c, 1, burst * 8 + i);
            for (int i = 0; i < 8; ++i)
                (void)co_await f.api.consume(c, 1);
        }
    };
    f.soc.run({sim::spawn(setup_and_q0(f.soc.core(0))),
               sim::spawn(noise_q1(f.soc.core(1)))},
              100'000'000);
    ASSERT_EQ(got0.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(got0[i], 5000 + i);
}

/** P3 liveness under pathological geometry: capacity-1 queue. */
TEST(MapleProperties, CapacityOneQueueStaysLive)
{
    PropFixture f;
    std::vector<std::uint64_t> got;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 1, 8);
        bool ok = co_await f.api.open(c, 0);
        EXPECT_TRUE(ok);
        for (int i = 0; i < 64; ++i)
            co_await f.api.produce(c, 0, i);
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 2000);
        for (int i = 0; i < 64; ++i)
            got.push_back(co_await f.api.consume(c, 0));
    };
    f.soc.run({sim::spawn(producer(f.soc.core(0))),
               sim::spawn(consumer(f.soc.core(1)))},
              100'000'000);
    ASSERT_EQ(got.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(got[i], std::uint64_t(i));
}

/** TLB-size sweep: translation behavior is invariant, only timing moves. */
class MapleTlbSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MapleTlbSweep, PointerProducesCorrectAcrossTlbSizes)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.maple_proto.tlb_entries = GetParam();
    soc::Soc soc(cfg);
    os::Process &proc = soc.createProcess("tlb");
    MapleApi api = MapleApi::attach(proc, soc.maple());

    constexpr int kN = 64;
    // One element per page: maximal TLB pressure.
    sim::Addr mem = proc.alloc(kN * mem::kPageSize, "pages");
    for (int i = 0; i < kN; ++i)
        proc.writeScalar<std::uint64_t>(mem + i * mem::kPageSize, 900 + i);

    std::vector<std::uint64_t> got;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 16, 8);
        bool ok = co_await api.open(c, 0);
        EXPECT_TRUE(ok);
        // Interleave in batches below the queue+buffer capacity: a single
        // thread producing everything up front would stall on its own
        // backpressure with nobody consuming.
        for (int base = 0; base < kN; base += 8) {
            for (int i = base; i < base + 8; ++i)
                co_await api.producePtr(c, 0, mem + i * mem::kPageSize);
            for (int i = 0; i < 8; ++i)
                got.push_back(co_await api.consume(c, 0));
        }
    };
    soc.run({sim::spawn(t(soc.core(0)))}, 100'000'000);
    ASSERT_EQ(got.size(), size_t(kN));
    for (int i = 0; i < kN; ++i)
        EXPECT_EQ(got[i], 900u + i);
    if (GetParam() < kN) {
        EXPECT_GT(soc.maple().mmu().tlb().misses(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MapleTlbSweep,
                         ::testing::Values(2u, 4u, 16u, 64u, 128u));

/** ConsumePair preserves pairing across arbitrary stream lengths. */
class PairSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(PairSweep, PairedConsumptionReassemblesStream)
{
    const unsigned n = GetParam();
    PropFixture f;
    std::vector<std::uint32_t> got;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 32, 4);
        bool ok = co_await f.api.open(c, 0);
        EXPECT_TRUE(ok);
        // Produce in batches that fit the queue (single-threaded driver).
        std::uint32_t produced = 0, left = n;
        auto top_up = [&]() -> sim::Task<void> {
            while (produced < n && produced - (n - left) < 30) {
                co_await f.api.produce(c, 0, 0xc0de0000u + produced);
                ++produced;
            }
        };
        co_await top_up();
        while (left >= 2) {
            std::uint64_t pair = co_await f.api.consumePair(c, 0);
            got.push_back(static_cast<std::uint32_t>(pair));
            got.push_back(static_cast<std::uint32_t>(pair >> 32));
            left -= 2;
            co_await top_up();
        }
        if (left)
            got.push_back(
                static_cast<std::uint32_t>(co_await f.api.consume(c, 0)));
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 100'000'000);
    ASSERT_EQ(got.size(), n);
    for (std::uint32_t i = 0; i < n; ++i)
        EXPECT_EQ(got[i], 0xc0de0000u + i);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PairSweep,
                         ::testing::Values(1u, 2u, 3u, 31u, 32u, 33u, 100u));
