/**
 * @file
 * Unit tests for the baseline models: the shared-memory software queue,
 * DeSC's architectural queue pair, and the DROPLET memory-side prefetcher.
 */
#include <gtest/gtest.h>

#include "baselines/desc.hpp"
#include "baselines/droplet.hpp"
#include "baselines/sw_queue.hpp"
#include "soc/soc.hpp"

using namespace maple;

// ---------------------------------------------------------------------------
// Software queue
// ---------------------------------------------------------------------------

TEST(SwQueue, FifoOrderAcrossCores)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("swq");
    baselines::SwQueue q(proc, 16);

    std::vector<std::uint64_t> got;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        for (std::uint64_t i = 0; i < 100; ++i)
            co_await q.produce(c, i * 3);
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < 100; ++i)
            got.push_back(co_await q.consume(c));
    };
    soc.run({sim::spawn(producer(soc.core(0))),
             sim::spawn(consumer(soc.core(1)))},
            50'000'000);
    ASSERT_EQ(got.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(got[i], i * 3);
}

TEST(SwQueue, BackpressureOnTinyRing)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("swq");
    baselines::SwQueue q(proc, 2);

    std::vector<std::uint64_t> got;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        for (std::uint64_t i = 0; i < 20; ++i)
            co_await q.produce(c, i);
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(soc.eq(), 10'000);  // force the ring full
        for (int i = 0; i < 20; ++i)
            got.push_back(co_await q.consume(c));
    };
    soc.run({sim::spawn(producer(soc.core(0))),
             sim::spawn(consumer(soc.core(1)))},
            50'000'000);
    ASSERT_EQ(got.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(SwQueue, CostsRealInstructionsAndSharedAccesses)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("swq");
    baselines::SwQueue q(proc, 64);
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i)
            co_await q.produce(c, i);
        for (int i = 0; i < 10; ++i)
            (void)co_await q.consume(c);
    };
    soc.run({sim::spawn(t(soc.core(0)))}, 10'000'000);
    // Each produce/consume costs several instructions plus LLC-level
    // shared accesses -- the software overhead MAPLE eliminates.
    EXPECT_GT(soc.core(0).instructions(), 100u);
    EXPECT_GT(soc.core(0).stats().counterValue("shared_loads"), 10u);
}

// ---------------------------------------------------------------------------
// DeSC
// ---------------------------------------------------------------------------

namespace {

struct DescFixture {
    soc::Soc soc{soc::SocConfig::fpga()};
    os::Process &proc{soc.createProcess("desc")};
    baselines::DescQueue dq{soc.eq(), soc.physMem(),
                            soc.addLlcPort(soc.coreTile(0))};
};

}  // namespace

TEST(Desc, ValuesFlowSupplyToCompute)
{
    DescFixture f;
    std::vector<std::uint64_t> got;
    auto supply = [&](cpu::Core &c) -> sim::Task<void> {
        for (std::uint64_t i = 0; i < 32; ++i)
            co_await f.dq.produceValue(c, 1000 + i);
    };
    auto compute = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < 32; ++i)
            got.push_back(co_await f.dq.consume(c));
    };
    f.soc.run({sim::spawn(supply(f.soc.core(0))),
               sim::spawn(compute(f.soc.core(1)))},
              10'000'000);
    ASSERT_EQ(got.size(), 32u);
    for (std::uint64_t i = 0; i < 32; ++i)
        EXPECT_EQ(got[i], 1000 + i);
}

TEST(Desc, TerminalLoadsCommitEarlyAndArriveInOrder)
{
    DescFixture f;
    constexpr int kN = 64;
    sim::Addr a = f.proc.alloc(kN * 4, "A");
    for (int i = 0; i < kN; ++i)
        f.proc.writeScalar<std::uint32_t>(a + 4 * i, 7000 + i);

    std::vector<std::uint64_t> got;
    sim::Cycle supply_done = 0;
    auto supply = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < kN; ++i) {
            // Scrambled order, cold lines: responses return out of order.
            int j = (i * 29) % kN;
            co_await f.dq.produceLoad(c, a + 4 * j, 4);
        }
        supply_done = f.soc.eq().now();
    };
    auto compute = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < kN; ++i)
            got.push_back(co_await f.dq.consume(c));
    };
    f.soc.run({sim::spawn(supply(f.soc.core(0))),
               sim::spawn(compute(f.soc.core(1)))},
              10'000'000);
    ASSERT_EQ(got.size(), size_t(kN));
    for (int i = 0; i < kN; ++i)
        EXPECT_EQ(got[i], 7000u + (i * 29) % kN);
    // Early commit: Supply finished long before kN x DRAM-latency.
    EXPECT_LT(supply_done, sim::Cycle(kN) * 300);
}

TEST(Desc, ComputeStoresArePerformedBySupply)
{
    DescFixture f;
    sim::Addr out = f.proc.alloc(256, "out");
    bool exec_done = false;
    auto compute = [&](cpu::Core &c) -> sim::Task<void> {
        for (std::uint64_t i = 0; i < 8; ++i)
            co_await f.dq.produceStore(c, out + 4 * i, 40 + i);
        exec_done = true;
    };
    auto supply = [&](cpu::Core &c) -> sim::Task<void> {
        while (!exec_done || !f.dq.storeQueueEmpty()) {
            if (!co_await f.dq.drainOneStore(c))
                co_await sim::delay(f.soc.eq(), 10);
        }
        co_await c.storeFence();
    };
    f.soc.run({sim::spawn(compute(f.soc.core(1))),
               sim::spawn(supply(f.soc.core(0)))},
              10'000'000);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(f.proc.readScalar<std::uint32_t>(out + 4 * i), 40 + i);
}

TEST(Desc, SupplyBufferBoundsOutstandingLoads)
{
    baselines::DescParams p;
    p.supply_buffer = 2;
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("desc");
    baselines::DescQueue dq(soc.eq(), soc.physMem(),
                            soc.addLlcPort(soc.coreTile(0)), p);
    sim::Addr a = proc.alloc(64 * 64, "A");

    sim::Cycle supply_done = 0;
    auto supply = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < 16; ++i)
            co_await dq.produceLoad(c, a + 64 * i, 4);  // all cold misses
        supply_done = soc.eq().now();
    };
    auto compute = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < 16; ++i)
            (void)co_await dq.consume(c);
    };
    soc.run({sim::spawn(supply(soc.core(0))),
             sim::spawn(compute(soc.core(1)))},
            10'000'000);
    // With only 2 outstanding slots the supply itself throttles: 16 misses
    // in waves of 2 -> at least (16/2 - 1) x ~300 cycles.
    EXPECT_GT(supply_done, 2000u);
}

// ---------------------------------------------------------------------------
// DROPLET
// ---------------------------------------------------------------------------

TEST(Droplet, BufferHitsAccelerateIndirectDemands)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("droplet");
    constexpr int kN = 256;
    sim::Addr b = proc.alloc(kN * 4, "B");
    sim::Addr a = proc.alloc(kN * 64, "A");
    for (int i = 0; i < kN; ++i)
        proc.writeScalar<std::uint32_t>(b + 4 * i, std::uint32_t((i * 53) % kN) * 16);

    baselines::DropletPrefetcher droplet(soc);
    droplet.bind(proc, b, kN, 4, a, 4);

    auto worker = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < kN; ++i) {
            std::uint64_t idx = co_await c.load(b + 4 * i, 4);
            (void)co_await c.load(a + idx * 4, 4);  // the indirect access
            co_await c.compute(1);
        }
    };
    soc.run({sim::spawn(worker(soc.core(0)))}, 50'000'000);
    EXPECT_GT(droplet.prefetchesIssued(), unsigned(kN) / 2);
    EXPECT_GT(droplet.bufferHits(), 10u) << "prefetched lines never used";
}

TEST(Droplet, UnboundTrafficPassesThroughUntouched)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("droplet");
    sim::Addr buf = proc.alloc(4096, "buf");
    baselines::DropletPrefetcher droplet(soc);  // no bindings

    auto worker = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < 32; ++i)
            (void)co_await c.load(buf + 64 * i, 4);
    };
    soc.run({sim::spawn(worker(soc.core(0)))}, 10'000'000);
    EXPECT_EQ(droplet.prefetchesIssued(), 0u);
    EXPECT_EQ(droplet.bufferHits(), 0u);
}

TEST(Droplet, DetachRestoresDirectLlcPath)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("droplet");
    sim::Addr buf = proc.alloc(4096, "buf");
    {
        baselines::DropletPrefetcher droplet(soc);
    }  // destructor detaches the interposer
    auto worker = [&](cpu::Core &c) -> sim::Task<void> {
        (void)co_await c.load(buf, 4);
    };
    soc.run({sim::spawn(worker(soc.core(0)))}, 10'000'000);
    SUCCEED();
}
