/**
 * @file
 * Tests for the experiment harness: grid bookkeeping, checksum enforcement
 * (a technique that corrupts results must abort the bench, never print a
 * number), and the table printers.
 */
#include <gtest/gtest.h>

#include "harness/figures.hpp"

using namespace maple;
using namespace maple::harness;

namespace {

/** Minimal fake workload with controllable validity. */
class FakeWorkload final : public app::Workload {
  public:
    FakeWorkload(std::string name, bool valid) : name_(std::move(name)), valid_(valid) {}

    std::string name() const override { return name_; }

    app::RunResult
    run(const app::RunConfig &cfg) override
    {
        app::RunResult r;
        r.workload = name_;
        r.technique = app::techniqueName(cfg.tech);
        // Deterministic but technique-dependent "performance".
        r.cycles = 1000 + 100 * static_cast<unsigned>(cfg.tech);
        r.valid = valid_;
        r.loads = 42;
        return r;
    }

  private:
    std::string name_;
    bool valid_;
};

}  // namespace

TEST(Harness, GridStoresAndRetrievesCells)
{
    Grid g;
    app::RunResult r;
    r.workload = "w";
    r.technique = app::techniqueName(app::Technique::Doall);
    r.cycles = 123;
    g.put(r);
    EXPECT_EQ(g.at("w", app::Technique::Doall).cycles, 123u);
    EXPECT_THROW(g.at("w", app::Technique::Desc), std::logic_error);
    EXPECT_THROW(g.at("nope", app::Technique::Doall), std::logic_error);
}

TEST(Harness, RunGridCoversTheFullCross)
{
    std::vector<std::unique_ptr<app::Workload>> ws;
    ws.push_back(std::make_unique<FakeWorkload>("alpha", true));
    ws.push_back(std::make_unique<FakeWorkload>("beta", true));
    app::RunConfig base;
    std::vector<app::Technique> techs = {app::Technique::Doall,
                                         app::Technique::MapleDecouple};
    Grid g = runGrid(ws, techs, base);
    for (const char *w : {"alpha", "beta"})
        for (app::Technique t : techs)
            EXPECT_GT(g.at(w, t).cycles, 0u);
}

TEST(Harness, RunGridTweakAdjustsPerTechnique)
{
    std::vector<std::unique_ptr<app::Workload>> ws;
    ws.push_back(std::make_unique<FakeWorkload>("alpha", true));
    unsigned seen_threads = 0;
    Grid g = runGrid(
        ws, {app::Technique::Doall}, app::RunConfig{},
        [&](app::RunConfig &cfg, app::Technique) { seen_threads = cfg.threads = 7; });
    EXPECT_EQ(seen_threads, 7u);
}

TEST(Harness, InvalidResultAbortsTheBench)
{
    std::vector<std::unique_ptr<app::Workload>> ws;
    ws.push_back(std::make_unique<FakeWorkload>("broken", false));
    EXPECT_THROW(runGrid(ws, {app::Technique::Doall}, app::RunConfig{}),
                 std::runtime_error)
        << "a checksum mismatch must never be reported as a performance number";
}

TEST(Harness, SpeedupTablePrintsWithoutCrashing)
{
    std::vector<std::unique_ptr<app::Workload>> ws;
    ws.push_back(std::make_unique<FakeWorkload>("alpha", true));
    std::vector<app::Technique> techs = {app::Technique::Doall,
                                         app::Technique::MapleDecouple};
    Grid g = runGrid(ws, techs, app::RunConfig{});
    printSpeedupTable("unit-test table", g, workloadNames(ws),
                      {app::Technique::MapleDecouple}, app::Technique::Doall);
    printMetricTable("unit-test metric", g, workloadNames(ws), techs,
                     [](const app::RunResult &r) { return double(r.loads); },
                     "x");
    SUCCEED();
}
