/**
 * @file
 * Unit tests for the micro-OS: frame allocation, process address spaces,
 * guard pages, demand paging, MMIO mapping and TLB-shootdown broadcast.
 */
#include <gtest/gtest.h>

#include "os/kernel.hpp"
#include "mem/port.hpp"

using namespace maple;
using namespace maple::os;

namespace {

struct OsFixture {
    sim::EventQueue eq;
    mem::PhysicalMemory pm{1 << 24};
    Kernel kernel{eq, pm};
    Process &proc{kernel.createProcess("p0")};
};

}  // namespace

TEST(FrameAllocator, AllocatesDistinctAlignedFrames)
{
    FrameAllocator fa(0, 1 << 16);
    std::set<sim::Addr> frames;
    for (int i = 0; i < 16; ++i) {
        sim::Addr f = fa.alloc();
        EXPECT_EQ(f & mem::kPageMask, 0u);
        EXPECT_TRUE(frames.insert(f).second) << "duplicate frame";
    }
    EXPECT_THROW(fa.alloc(), sim::OutOfMemoryError) << "exhaustion must be fatal";
}

TEST(Process, AllocMapsZeroedWritableMemory)
{
    OsFixture f;
    sim::Addr a = f.proc.alloc(10000, "x");
    EXPECT_EQ(f.proc.readScalar<std::uint64_t>(a + 9992), 0u);
    f.proc.writeScalar<std::uint32_t>(a + 100, 42);
    EXPECT_EQ(f.proc.readScalar<std::uint32_t>(a + 100), 42u);
    auto pa = f.proc.pageTable().translate(a, mem::Perms{true});
    EXPECT_TRUE(pa.has_value());
}

TEST(Process, RegionsAreSeparatedByGuardPages)
{
    OsFixture f;
    sim::Addr a = f.proc.alloc(mem::kPageSize, "a");
    sim::Addr b = f.proc.alloc(mem::kPageSize, "b");
    ASSERT_LT(a, b);
    // There is at least one unmapped page between the regions.
    bool gap = false;
    for (sim::Addr va = a + mem::kPageSize; va < b; va += mem::kPageSize)
        gap |= !f.proc.pageTable().walk(va).has_value();
    EXPECT_TRUE(gap);
    EXPECT_FALSE(f.proc.owns(a + mem::kPageSize)) << "guard page owned";
}

TEST(Process, LazyRegionFaultsThenDemandMaps)
{
    OsFixture f;
    sim::Addr a = f.proc.allocLazy(4 * mem::kPageSize, "lazy");
    EXPECT_TRUE(f.proc.owns(a));
    EXPECT_FALSE(f.proc.pageTable().walk(a).has_value());
    EXPECT_TRUE(f.proc.demandMap(a + mem::kPageSize));
    EXPECT_TRUE(f.proc.pageTable().walk(a + mem::kPageSize).has_value());
    EXPECT_FALSE(f.proc.demandMap(0xdead'0000)) << "foreign address mapped";
}

TEST(Process, CrossPageFunctionalReadWrite)
{
    OsFixture f;
    sim::Addr a = f.proc.alloc(3 * mem::kPageSize, "big");
    std::vector<std::uint8_t> data(2 * mem::kPageSize + 100);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    f.proc.writeBytes(a + 50, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    f.proc.readBytes(a + 50, back.data(), back.size());
    EXPECT_EQ(data, back);
}

TEST(Process, MapMmioCreatesUserMapping)
{
    OsFixture f;
    sim::Addr mmio_pa = 0x40'0000;  // pretend device page
    sim::Addr va = f.proc.mapMmio(mmio_pa);
    auto pa = f.proc.pageTable().translate(va + 0x18, mem::Perms{true});
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, mmio_pa + 0x18);
}

TEST(Process, UnmapBroadcastsShootdownToAllAttachedMmus)
{
    OsFixture f;
    mem::FixedLatencyMem port(f.eq, 1);
    mem::Mmu mmu_a(f.eq, f.pm, port, 8);
    mem::Mmu mmu_b(f.eq, f.pm, port, 8);
    f.proc.attachMmu(&mmu_a);
    f.proc.attachMmu(&mmu_b);

    sim::Addr a = f.proc.alloc(mem::kPageSize, "x");
    // Warm both TLBs.
    auto warm = [&](mem::Mmu &m) {
        auto t = [&]() -> sim::Task<void> {
            mem::Translation tr = co_await m.translate(a, false);
            EXPECT_FALSE(tr.fault);
        };
        sim::Join j = sim::spawn(t());
        f.eq.run();
        j.get();
    };
    warm(mmu_a);
    warm(mmu_b);
    EXPECT_TRUE(mmu_a.tlb().lookup(a).has_value());
    EXPECT_TRUE(mmu_b.tlb().lookup(a).has_value());

    f.proc.unmapPage(a);
    EXPECT_FALSE(mmu_a.tlb().lookup(a).has_value());
    EXPECT_FALSE(mmu_b.tlb().lookup(a).has_value());
}

TEST(Kernel, FaultHandlerChargesLatencyAndMaps)
{
    OsFixture f;
    sim::Addr a = f.proc.allocLazy(mem::kPageSize, "lazy");
    auto handler = f.kernel.makeFaultHandler(f.proc);
    bool resolved = false;
    sim::Cycle start = f.eq.now();
    auto t = [&]() -> sim::Task<void> { resolved = co_await handler(a, true); };
    sim::Join j = sim::spawn(t());
    f.eq.run();
    j.get();
    EXPECT_TRUE(resolved);
    EXPECT_EQ(f.eq.now() - start, f.kernel.params().fault_latency);
    EXPECT_EQ(f.kernel.faultsServiced(), 1u);
    EXPECT_TRUE(f.proc.pageTable().walk(a).has_value());
}

TEST(Kernel, ProcessesHaveDisjointAddressSpaces)
{
    OsFixture f;
    Process &p2 = f.kernel.createProcess("p1");
    sim::Addr a1 = f.proc.alloc(mem::kPageSize, "x");
    sim::Addr a2 = p2.alloc(mem::kPageSize, "x");
    // Same virtual layout...
    EXPECT_EQ(a1, a2);
    // ...but different physical frames.
    auto pa1 = f.proc.pageTable().translate(a1, mem::Perms{});
    auto pa2 = p2.pageTable().translate(a2, mem::Perms{});
    ASSERT_TRUE(pa1 && pa2);
    EXPECT_NE(*pa1, *pa2);
    f.proc.writeScalar<std::uint64_t>(a1, 111);
    p2.writeScalar<std::uint64_t>(a2, 222);
    EXPECT_EQ(f.proc.readScalar<std::uint64_t>(a1), 111u);
    EXPECT_EQ(p2.readScalar<std::uint64_t>(a2), 222u);
}
