/**
 * @file
 * Tests for dataset generators and simulated-memory arrays: structural
 * validity, determinism, distribution properties (skew / power law) and
 * upload/download round trips.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "soc/soc.hpp"
#include "workloads/data.hpp"

using namespace maple;
using namespace maple::app;

TEST(Generators, UniformSparseIsWellFormed)
{
    SparseMatrix m = makeUniformSparse(100, 1000, 8, 1);
    EXPECT_TRUE(m.wellFormed());
    EXPECT_EQ(m.rows, 100u);
    EXPECT_EQ(m.nnz(), 800u);
    for (std::uint32_t r = 0; r < m.rows; ++r)
        EXPECT_EQ(m.row_ptr[r + 1] - m.row_ptr[r], 8u);
}

TEST(Generators, SkewedSparseIsWellFormedAndSkewed)
{
    SparseMatrix uni = makeUniformSparse(500, 10000, 16, 2);
    SparseMatrix skw = makeSkewedSparse(500, 10000, 16, 2, 4.0);
    EXPECT_TRUE(skw.wellFormed());

    auto below_frac = [](const SparseMatrix &m, std::uint32_t bound) {
        size_t n = std::count_if(m.col_idx.begin(), m.col_idx.end(),
                                 [bound](std::uint32_t c) { return c < bound; });
        return double(n) / double(m.nnz());
    };
    // With skew 4, far more mass lands in the low tenth of the columns.
    EXPECT_GT(below_frac(skw, 1000), 2.0 * below_frac(uni, 1000));
}

TEST(Generators, DeterministicForEqualSeeds)
{
    SparseMatrix a = makeUniformSparse(64, 512, 4, 77);
    SparseMatrix b = makeUniformSparse(64, 512, 4, 77);
    SparseMatrix c = makeUniformSparse(64, 512, 4, 78);
    EXPECT_EQ(a.col_idx, b.col_idx);
    EXPECT_EQ(a.vals, b.vals);
    EXPECT_NE(a.col_idx, c.col_idx);
}

TEST(Generators, RmatHasPowerLawDegrees)
{
    SparseMatrix g = makeRmat(12, 8, 3);
    EXPECT_TRUE(g.vals.empty() || g.wellFormed());
    ASSERT_GT(g.nnz(), 1000u);

    std::uint32_t max_deg = 0;
    std::uint64_t total = 0;
    std::uint32_t nonzero_rows = 0;
    for (std::uint32_t r = 0; r < g.rows; ++r) {
        std::uint32_t d = g.row_ptr[r + 1] - g.row_ptr[r];
        max_deg = std::max(max_deg, d);
        total += d;
        nonzero_rows += d > 0;
    }
    double mean = double(total) / double(g.rows);
    EXPECT_GT(max_deg, 20 * mean) << "no hub vertices: not power-law";
    EXPECT_LT(nonzero_rows, g.rows) << "R-MAT should leave isolated vertices";
}

TEST(Generators, RmatColumnsSortedAndDeduplicated)
{
    SparseMatrix g = makeRmat(10, 8, 4);
    for (std::uint32_t r = 0; r < g.rows; ++r) {
        for (std::uint32_t j = g.row_ptr[r] + 1; j < g.row_ptr[r + 1]; ++j)
            ASSERT_LT(g.col_idx[j - 1], g.col_idx[j]);
    }
}

TEST(Generators, DenseVectorInUnitInterval)
{
    auto v = makeDenseVector(10000, 5);
    for (float x : v) {
        ASSERT_GE(x, 0.0f);
        ASSERT_LT(x, 1.0f);
    }
}

TEST(SimArray, UploadDownloadRoundTrip)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("data");
    std::vector<std::uint32_t> host(5000);
    for (size_t i = 0; i < host.size(); ++i)
        host[i] = static_cast<std::uint32_t>(i * 13);

    SimArray<std::uint32_t> arr(proc, host.size(), "arr");
    arr.upload(host);
    EXPECT_EQ(arr.read(4321), 4321u * 13);
    arr.write(17, 999);
    auto back = arr.download();
    EXPECT_EQ(back[17], 999u);
    EXPECT_EQ(back[4321], 4321u * 13);
}

TEST(SimArray, AddressingIsContiguous)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("data");
    SimArray<float> arr(proc, 100, "f");
    EXPECT_EQ(arr.addr(10) - arr.addr(0), 40u);
    EXPECT_EQ(arr.size(), 100u);
}

TEST(SimCsr, UploadPreservesStructure)
{
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("data");
    SparseMatrix m = makeUniformSparse(32, 256, 4, 9);
    SimCsr s = SimCsr::upload(proc, m, true);
    for (std::uint32_t r = 0; r <= m.rows; ++r)
        ASSERT_EQ(s.row_ptr.read(r), m.row_ptr[r]);
    for (size_t j = 0; j < m.nnz(); ++j) {
        ASSERT_EQ(s.col_idx.read(j), m.col_idx[j]);
        ASSERT_EQ(s.vals.read(j), m.vals[j]);
    }
}
