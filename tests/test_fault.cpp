/**
 * @file
 * Tests for the fault-injection & liveness subsystem: determinism of the
 * dedicated RNG streams, per-class completion under injection, timed-op
 * status codes on the MAPLE queue edge states, the liveness watchdog, and
 * typed error surfacing through the full SoC.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define MAPLE_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MAPLE_TEST_ASAN 1
#endif
#endif
#ifdef MAPLE_TEST_ASAN
#include <sanitizer/lsan_interface.h>
#endif

#include "core/maple_runtime.hpp"
#include "fault/fault.hpp"
#include "fault/watchdog.hpp"
#include "noc/mesh.hpp"
#include "sim/error.hpp"
#include "soc/soc.hpp"

using namespace maple;
using core::Counter;
using core::MapleApi;
using core::MapleStatus;

namespace {

struct Fixture {
    soc::Soc soc;
    os::Process &proc;
    MapleApi api;

    explicit Fixture(soc::SocConfig cfg = soc::SocConfig::fpga())
        : soc(std::move(cfg)), proc(soc.createProcess("test")),
          api(MapleApi::attach(proc, soc.maple()))
    {
    }
};

/** Total cycles for a fixed burst of contended mesh transits. */
sim::Cycle
meshBurstCycles()
{
    sim::EventQueue eq;
    noc::Mesh mesh(eq, noc::MeshParams{4, 4, 1, 16});
    auto t = [&](sim::TileId src, sim::TileId dst) -> sim::Task<void> {
        for (int i = 0; i < 20; ++i)
            co_await mesh.transit(src, dst, 4);
    };
    sim::spawn(t(0, 15));
    sim::spawn(t(3, 12));
    eq.run();
    return eq.now();
}

/** The same burst with a FaultInjector attached to the queue. */
sim::Cycle
meshBurstCyclesWithInjector(const fault::FaultConfig &cfg,
                            std::uint64_t *injected = nullptr)
{
    sim::EventQueue eq;
    fault::FaultInjector fi(eq, cfg);
    noc::Mesh mesh(eq, noc::MeshParams{4, 4, 1, 16});
    auto t = [&](sim::TileId src, sim::TileId dst) -> sim::Task<void> {
        for (int i = 0; i < 20; ++i)
            co_await mesh.transit(src, dst, 4);
    };
    sim::spawn(t(0, 15));
    sim::spawn(t(3, 12));
    eq.run();
    if (injected)
        *injected = fi.injectedCount(fault::FaultClass::NocLinkStall);
    return eq.now();
}

/**
 * A small pointer-produce/consume round trip spanning every injectable
 * surface (NoC MMIO hops, device translations, DRAM fetches); returns the
 * elapsed cycles and validates the consumed values.
 */
sim::Cycle
pingPong(Fixture &f, unsigned items = 32)
{
    sim::Addr a = f.proc.alloc(items * 8, "A");
    for (unsigned i = 0; i < items; ++i)
        f.proc.writeScalar<std::uint64_t>(a + 8 * i, 100 + i);
    std::uint64_t sum = 0;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 8, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (unsigned i = 0; i < items; ++i)
            co_await f.api.producePtr(c, 0, a + 8 * i);
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 2000);  // let init land
        for (unsigned i = 0; i < items; ++i)
            sum += co_await f.api.consume(c, 0);
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(producer(f.soc.core(0))));
    joins.push_back(sim::spawn(consumer(f.soc.core(1))));
    sim::Cycle cycles = f.soc.run(std::move(joins), 10'000'000);
    std::uint64_t want = 0;
    for (unsigned i = 0; i < items; ++i)
        want += 100 + i;
    EXPECT_EQ(sum, want);
    return cycles;
}

}  // namespace

// ---------------------------------------------------------------------------
// Determinism of the dedicated fault RNG streams
// ---------------------------------------------------------------------------

TEST(FaultPlan, DisabledInjectorIsBitIdenticalToNoInjector)
{
    sim::Cycle bare = meshBurstCycles();
    // All-zero rates: the injector is attached but never draws, so the
    // simulation must be cycle-identical to a run with no injector at all.
    sim::Cycle with = meshBurstCyclesWithInjector(fault::FaultConfig{});
    EXPECT_EQ(bare, with);
}

TEST(FaultPlan, SameSeedSameFaultsSameCycles)
{
    fault::FaultConfig cfg;
    cfg.seed = 42;
    cfg.noc = fault::FaultRate{0.2, 16};
    std::uint64_t injected_a = 0, injected_b = 0;
    sim::Cycle a = meshBurstCyclesWithInjector(cfg, &injected_a);
    sim::Cycle b = meshBurstCyclesWithInjector(cfg, &injected_b);
    EXPECT_GT(injected_a, 0u) << "rate 0.2 over 240 link traversals";
    EXPECT_EQ(injected_a, injected_b);
    EXPECT_EQ(a, b) << "fixed-seed fault runs must be bit-identical";
    EXPECT_GT(a, meshBurstCycles()) << "injected stalls cost cycles";
}

TEST(FaultPlan, SeedChangesTheFaultPattern)
{
    fault::FaultConfig cfg;
    cfg.noc = fault::FaultRate{0.2, 64};
    cfg.seed = 1;
    sim::Cycle a = meshBurstCyclesWithInjector(cfg);
    cfg.seed = 2;
    sim::Cycle b = meshBurstCyclesWithInjector(cfg);
    EXPECT_NE(a, b) << "different seeds should draw different stalls";
}

TEST(FaultPlan, DrawRespectsProbabilityAndMagnitude)
{
    fault::FaultConfig cfg;
    cfg.seed = 7;
    cfg.dram = fault::FaultRate{0.5, 100};
    fault::FaultPlan plan(cfg);
    unsigned fired = 0;
    for (int i = 0; i < 2000; ++i) {
        sim::Cycle d = plan.draw(fault::FaultClass::DramSpike);
        if (d == 0)
            continue;
        ++fired;
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, 100u);
        // The NoC stream is untouched by DRAM draws: drawing from a
        // zero-rate class never advances and never fires.
        EXPECT_EQ(plan.draw(fault::FaultClass::NocLinkStall), 0u);
    }
    EXPECT_GT(fired, 800u);
    EXPECT_LT(fired, 1200u);
}

// ---------------------------------------------------------------------------
// Every fault class completes (or fails typed) through the full SoC
// ---------------------------------------------------------------------------

TEST(FaultInjection, WorkloadSurvivesEachFaultClass)
{
    struct Case {
        const char *name;
        void (*set)(fault::FaultConfig &);
        fault::FaultClass cls;
    };
    const Case cases[] = {
        {"noc", [](fault::FaultConfig &c) { c.noc = {0.05, 32}; },
         fault::FaultClass::NocLinkStall},
        {"dram", [](fault::FaultConfig &c) { c.dram = {0.2, 500}; },
         fault::FaultClass::DramSpike},
        {"tlb", [](fault::FaultConfig &c) { c.tlb = {0.5, 1}; },
         fault::FaultClass::TlbStorm},
        {"mmio", [](fault::FaultConfig &c) { c.mmio = {0.2, 64}; },
         fault::FaultClass::MmioDelay},
    };
    sim::Cycle clean_cycles = 0;
    {
        Fixture clean;
        clean_cycles = pingPong(clean);
    }
    for (const Case &cs : cases) {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.fault.seed = 1234;
        cs.set(cfg.fault);
        Fixture f(cfg);
        sim::Cycle cycles = pingPong(f);
        EXPECT_GT(f.soc.faultInjector().injectedCount(cs.cls), 0u) << cs.name;
        EXPECT_GT(f.soc.faultInjector().injectedCycles(cs.cls), 0u) << cs.name;
        // GE, not GT: an injected stall off the critical path can hide.
        EXPECT_GE(cycles, clean_cycles) << cs.name;
    }
}

TEST(FaultInjection, FixedSeedSocRunsAreBitIdentical)
{
    auto run = [](std::uint64_t seed) {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.fault.seed = seed;
        cfg.fault.dram = {0.3, 700};
        cfg.fault.noc = {0.02, 16};
        Fixture f(cfg);
        return pingPong(f);
    };
    EXPECT_EQ(run(99), run(99));
}

TEST(FaultInjection, MmioDecodeMissThrowsTyped)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.maple_proto.max_queues = 4;
    Fixture f(cfg);
    auto bad = [&](cpu::Core &c) -> sim::Task<void> {
        // Queue 6 decodes fine at the ISA level but exceeds the device's
        // configured 4 queues: a typed decode error, not an abort.
        (void)co_await c.load(
            core::encodeLoad(f.api.base(), 6, core::LoadOp::Occupancy));
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(bad(f.soc.core(0))));
    EXPECT_THROW(f.soc.run(std::move(joins), 1'000'000),
                 sim::MmioDecodeError);
}

// ---------------------------------------------------------------------------
// MAPLE queue edge states: timed produce/consume and polling
// ---------------------------------------------------------------------------

TEST(FaultTimeout, EmptyFifoConsumeTimesOutWithStatus)
{
    Fixture f;
    bool done = false;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        co_await f.api.setQueueTimeout(c, 0, 5'000);
        // Nothing is ever produced: the consume must give up at the bound
        // instead of parking forever.
        MapleStatus st = MapleStatus::Ok;
        std::uint64_t v = co_await f.api.consumeTimed(c, 0, st);
        EXPECT_EQ(st, MapleStatus::TimedOut);
        EXPECT_EQ(v, 0u);
        EXPECT_EQ(co_await f.api.readCounter(c, Counter::TimedOutOps), 1u);
        // The timeout is sticky per queue until rewritten; a successful op
        // resets the status register.
        co_await f.api.produce(c, 0, 77);
        EXPECT_EQ(co_await f.api.consume(c, 0), 77u);
        EXPECT_EQ(co_await f.api.queueStatus(c, 0), MapleStatus::Ok);
        done = true;
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(t(f.soc.core(0))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(done);
}

TEST(FaultTimeout, FullFifoProduceTimesOutAndDropsTheValue)
{
    Fixture f;
    bool done = false;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 2, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        co_await f.api.setQueueTimeout(c, 0, 5'000);
        EXPECT_TRUE(co_await f.api.produceTimed(c, 0, 1));
        EXPECT_TRUE(co_await f.api.produceTimed(c, 0, 2));
        // Queue full (capacity 2) and nobody consumes: the third produce
        // must time out and be dropped.
        EXPECT_FALSE(co_await f.api.produceTimed(c, 0, 3));
        EXPECT_EQ(co_await f.api.readCounter(c, Counter::TimedOutOps), 1u);
        // The two accepted values are intact; the dropped one never lands.
        EXPECT_EQ(co_await f.api.consume(c, 0), 1u);
        EXPECT_EQ(co_await f.api.consume(c, 0), 2u);
        EXPECT_EQ(co_await f.api.occupancy(c, 0), 0u);
        done = true;
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(t(f.soc.core(0))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(done);
}

TEST(FaultTimeout, ConsumePollReportsEmptyThenOk)
{
    Fixture f;
    bool done = false;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        (void)co_await f.api.consumePoll(c, 0);
        EXPECT_EQ(co_await f.api.queueStatus(c, 0), MapleStatus::Empty);
        co_await f.api.produce(c, 0, 55);
        co_await c.storeFence();
        EXPECT_EQ(co_await f.api.consumePoll(c, 0), 55u);
        EXPECT_EQ(co_await f.api.queueStatus(c, 0), MapleStatus::Ok);
        done = true;
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(t(f.soc.core(0))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(done);
}

// ---------------------------------------------------------------------------
// Liveness watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, DrainedQueueWithParkedWaiterIsATypedDeadlock)
{
#ifdef MAPLE_TEST_ASAN
    // The deadlocked consumer's coroutine frame is stranded by design.
    __lsan::ScopedDisabler no_leak_check;
#endif
    Fixture f;
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        (void)co_await f.api.consume(c, 0);  // parks forever: no producer
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(consumer(f.soc.core(0))));
    try {
        f.soc.run(std::move(joins), 10'000'000);
        FAIL() << "expected sim::DeadlockError";
    } catch (const sim::DeadlockError &e) {
        // The report names the parked waiter: who, where, since when.
        EXPECT_NE(e.report().find("consume_empty"), std::string::npos)
            << e.report();
        EXPECT_NE(e.report().find("maple"), std::string::npos) << e.report();
    }
}

TEST(Watchdog, StallBoundFiresWhileEventsStillFlow)
{
#ifdef MAPLE_TEST_ASAN
    __lsan::ScopedDisabler no_leak_check;
#endif
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.watchdog.check_interval = 1u << 12;
    cfg.watchdog.stall_bound = 100'000;  // a waiter older than this is stuck
    Fixture f(cfg);
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        (void)co_await f.api.consume(c, 0);  // never satisfied
    };
    auto ticker = [&]() -> sim::Task<void> {
        // Keeps the event queue busy: the drain detector never triggers, so
        // only the stall-bound check can catch the starved consumer.
        for (int i = 0; i < 5'000'000; ++i)
            co_await sim::delay(f.soc.eq(), 1);
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(consumer(f.soc.core(0))));
    sim::Join tick = sim::spawn(ticker());
    try {
        f.soc.run(std::move(joins), sim::kCycleMax);
        FAIL() << "expected sim::DeadlockError";
    } catch (const sim::DeadlockError &e) {
        EXPECT_NE(e.report().find("consume_empty"), std::string::npos)
            << e.report();
    }
    EXPECT_LT(f.soc.eq().now(), 1'000'000u)
        << "the stall bound must fire within ~bound+interval cycles";
    // Drain the ticker so its frame is reclaimed.
    f.soc.eq().run();
    EXPECT_TRUE(tick.done());
}

TEST(Watchdog, DisabledWatchdogPreservesPlainNonQuiescenceError)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.watchdog.enabled = false;
    Fixture f(cfg);
    auto slow = [&]() -> sim::Task<void> {
        for (int i = 0; i < 1'000; ++i)
            co_await sim::delay(f.soc.eq(), 100);
    };
    sim::Join j = sim::spawn(slow());
    EXPECT_THROW(f.soc.run({j}, 10'000), sim::DeadlockError);
    f.soc.eq().run();
    EXPECT_TRUE(j.done());
}

TEST(Watchdog, ChunkedRunMatchesSingleRunCycleCount)
{
    // The watchdog runs the queue in check_interval chunks; chunking must
    // not perturb timing. Compare against a watchdog-disabled run.
    auto run = [](bool enabled) {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.watchdog.enabled = enabled;
        cfg.watchdog.check_interval = 256;  // absurdly fine-grained
        Fixture f(cfg);
        return pingPong(f);
    };
    EXPECT_EQ(run(true), run(false));
}
