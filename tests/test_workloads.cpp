/**
 * @file
 * End-to-end workload tests: every (workload x technique) combination must
 * produce a bitwise-correct result, and the headline performance orderings
 * from the paper must hold on small inputs.
 */
#include <gtest/gtest.h>

#include "workloads/workload.hpp"

using namespace maple;
using app::RunConfig;
using app::RunResult;
using app::Technique;

namespace {

RunResult
runSmall(app::Workload &w, Technique t, unsigned threads = 2)
{
    RunConfig cfg;
    cfg.tech = t;
    cfg.threads = threads;
    return w.run(cfg);
}

constexpr Technique kAllTechniques[] = {
    Technique::Doall,        Technique::SwDecouple, Technique::MapleDecouple,
    Technique::NoPrefetch,   Technique::SwPrefetch, Technique::LimaPrefetch,
    Technique::Desc,         Technique::Droplet,
};

}  // namespace

class SpmvAllTechniques : public ::testing::TestWithParam<Technique> {};

TEST_P(SpmvAllTechniques, ProducesCorrectResult)
{
    auto w = app::makeSpmv(256, 8192, 8, 42);
    RunResult r = runSmall(*w, GetParam());
    EXPECT_TRUE(r.valid) << "wrong result for " << r.technique;
    EXPECT_GT(r.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmvAllTechniques, ::testing::ValuesIn(kAllTechniques),
    [](const ::testing::TestParamInfo<Technique> &info) {
        std::string s = app::techniqueName(info.param);
        for (char &c : s)
            if (c == '-')
                c = '_';
        return s;
    });

TEST(SpmvOrdering, MapleDecoupleBeatsSwDecouple)
{
    auto w = app::makeSpmv(512, 16384, 8, 7);
    RunResult maple = runSmall(*w, Technique::MapleDecouple);
    RunResult sw = runSmall(*w, Technique::SwDecouple);
    ASSERT_TRUE(maple.valid);
    ASSERT_TRUE(sw.valid);
    EXPECT_LT(maple.cycles, sw.cycles);
}

TEST(SpmvOrdering, LimaBeatsSwPrefetchAndNoPrefetch)
{
    auto w = app::makeSpmv(512, 16384, 8, 7);
    RunResult lima = runSmall(*w, Technique::LimaPrefetch, 1);
    RunResult swp = runSmall(*w, Technique::SwPrefetch, 1);
    RunResult none = runSmall(*w, Technique::NoPrefetch, 1);
    ASSERT_TRUE(lima.valid);
    ASSERT_TRUE(swp.valid);
    ASSERT_TRUE(none.valid);
    EXPECT_LT(lima.cycles, swp.cycles);
    EXPECT_LT(lima.cycles, none.cycles);
}

TEST(SpmvOrdering, SwPrefetchRoughlyDoublesLoads)
{
    auto w = app::makeSpmv(512, 16384, 8, 7);
    RunResult swp = runSmall(*w, Technique::SwPrefetch, 1);
    RunResult none = runSmall(*w, Technique::NoPrefetch, 1);
    double ratio = double(swp.loads) / double(none.loads);
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 2.5);
}

TEST(SpmvOrdering, LimaReducesLoadsBelowBaseline)
{
    auto w = app::makeSpmv(512, 16384, 8, 7);
    RunResult lima = runSmall(*w, Technique::LimaPrefetch, 1);
    RunResult none = runSmall(*w, Technique::NoPrefetch, 1);
    EXPECT_LT(lima.loads, none.loads);
}

// ---------------------------------------------------------------------------
// Every workload x every technique must produce bitwise-correct results.
// ---------------------------------------------------------------------------

namespace {

enum class Wl { Sdhp, Spmm, Bfs };

std::unique_ptr<app::Workload>
makeSmall(Wl w)
{
    switch (w) {
      case Wl::Sdhp: return app::makeSdhp(256, 512, 8, 21);
      case Wl::Spmm: return app::makeSpmm(96, 4, 22);
      case Wl::Bfs: return app::makeBfs(10, 8, 23);
    }
    return nullptr;
}

}  // namespace

class AllWorkloadsAllTechniques
    : public ::testing::TestWithParam<std::tuple<Wl, Technique>> {};

TEST_P(AllWorkloadsAllTechniques, ProducesCorrectResult)
{
    auto [wl, tech] = GetParam();
    auto w = makeSmall(wl);
    RunResult r = runSmall(*w, tech);
    EXPECT_TRUE(r.valid) << r.workload << " wrong under " << r.technique;
    EXPECT_GT(r.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllWorkloadsAllTechniques,
    ::testing::Combine(::testing::Values(Wl::Sdhp, Wl::Spmm, Wl::Bfs),
                       ::testing::ValuesIn(kAllTechniques)),
    [](const ::testing::TestParamInfo<std::tuple<Wl, Technique>> &info) {
        const char *wl = std::get<0>(info.param) == Wl::Sdhp   ? "sdhp"
                         : std::get<0>(info.param) == Wl::Spmm ? "spmm"
                                                               : "bfs";
        std::string t = app::techniqueName(std::get<1>(info.param));
        for (char &c : t)
            if (c == '-')
                c = '_';
        return std::string(wl) + "_" + t;
    });

TEST(WorkloadThreads, ResultsCorrectAcrossThreadCounts)
{
    auto bfs = app::makeBfs(10, 8, 31);
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        RunConfig cfg;
        cfg.tech = Technique::Doall;
        cfg.threads = threads;
        cfg.soc.num_cores = threads;
        cfg.soc.mesh_width = 0;
        cfg.soc.mesh_height = 0;
        RunResult r = bfs->run(cfg);
        EXPECT_TRUE(r.valid) << "bfs wrong with " << threads << " threads";
    }
}

TEST(WorkloadThreads, MapleDecoupleCorrectWithFourPairs)
{
    auto spmv = app::makeSpmv(512, 8192, 8, 33);
    RunConfig cfg;
    cfg.tech = Technique::MapleDecouple;
    cfg.threads = 8;  // 4 Access/Execute pairs sharing one MAPLE
    cfg.soc.num_cores = 8;
    cfg.soc.mesh_width = 0;
    cfg.soc.mesh_height = 0;
    RunResult r = spmv->run(cfg);
    EXPECT_TRUE(r.valid);
}

TEST(WorkloadInvariants, SpmmDecouplingFallsBackToDoall)
{
    auto spmm = app::makeSpmm(96, 4, 41);
    RunResult doall = runSmall(*spmm, Technique::Doall);
    RunResult maple = runSmall(*spmm, Technique::MapleDecouple);
    RunResult desc = runSmall(*spmm, Technique::Desc);
    EXPECT_FALSE(doall.fell_back_to_doall);
    EXPECT_TRUE(maple.fell_back_to_doall);
    EXPECT_TRUE(desc.fell_back_to_doall);
    // Fallback means literally the same execution.
    EXPECT_EQ(maple.cycles, doall.cycles);
}

TEST(WorkloadInvariants, DeterministicCycleCounts)
{
    auto w = app::makeSpmv(256, 8192, 8, 55);
    RunResult a = runSmall(*w, Technique::MapleDecouple);
    RunResult b = runSmall(*w, Technique::MapleDecouple);
    EXPECT_EQ(a.cycles, b.cycles) << "simulation must be deterministic";
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.checksum, b.checksum);
}

TEST(WorkloadInvariants, QueueSizeMonotonicity)
{
    auto w = app::makeSpmv(512, 16384, 8, 66);
    sim::Cycle prev = sim::kCycleMax;
    for (unsigned entries : {4u, 16u, 64u}) {
        RunConfig cfg;
        cfg.tech = Technique::MapleDecouple;
        cfg.queue_entries = entries;
        RunResult r = w->run(cfg);
        ASSERT_TRUE(r.valid);
        EXPECT_LE(r.cycles, prev + prev / 10)
            << "larger queues should not make things much worse";
        prev = r.cycles;
    }
}

TEST(WorkloadInvariants, BfsHandlesSingleVertexComponent)
{
    // A scale-2 graph with few edges: degenerate frontiers must terminate.
    auto w = app::makeBfs(2, 1, 3);
    RunResult r = runSmall(*w, Technique::Doall);
    EXPECT_TRUE(r.valid);
}
