/**
 * @file
 * MSI protocol tests: the flat-memory reference checker as a standalone
 * oracle, directed transaction tests against the sparse directory, and a
 * seeded randomized fuzzer (N coherent caches x M lines of mixed loads,
 * stores and MAPLE-style DMA streams) in which the checker must stay
 * silent for every interleaving the event queue produces.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include <unordered_map>

#include "core/maple_runtime.hpp"
#include "fault/fault.hpp"
#include "mem/cache.hpp"
#include "mem/coherence.hpp"
#include "mem/directory.hpp"
#include "mem/dram.hpp"
#include "noc/mesh.hpp"
#include "sim/coro.hpp"
#include "sim/random.hpp"
#include "soc/soc.hpp"
#include "workloads/workload.hpp"

using namespace maple;
using namespace maple::mem;

namespace {

/** A protocol request from cache @p tile (demand loads/stores). */
MemRequest
req(sim::EventQueue &eq, sim::TileId tile, sim::Addr a, AccessKind kind,
    std::uint32_t size = 8)
{
    return MemRequest::make(eq, RequesterClass::Core, tile, a, size, kind);
}

/**
 * N coherent L1s + a sliced home directory over a real mesh. Caches sit on
 * tiles [0, n); slices occupy the last tiles of a 3x3 mesh. Small caches
 * (1KB, 2-way) so evictions happen, and a checker on every transition.
 */
struct CohFixture {
    sim::EventQueue eq;
    Dram dram{eq, DramParams{100, 1, 2}};
    noc::Mesh mesh;
    CoherenceFabric fabric;
    std::vector<std::unique_ptr<Cache>> l1s;
    CoherentDmaPort dma{fabric};

    static CoherenceConfig
    makeCfg(unsigned max_sharers, unsigned dir_entries, unsigned dir_assoc)
    {
        CoherenceConfig c;
        c.mode = CoherenceMode::Msi;
        c.checker = true;
        c.max_sharers = max_sharers;
        c.dir_entries = dir_entries;
        c.dir_assoc = dir_assoc;
        return c;
    }

    explicit CohFixture(unsigned n = 2, unsigned slices = 1,
                        unsigned max_sharers = 8,
                        unsigned dir_entries = 1024, unsigned dir_assoc = 8)
        : mesh(eq, noc::MeshParams{3, 3, 1, 16}),
          fabric(eq, makeCfg(max_sharers, dir_entries, dir_assoc), mesh)
    {
        for (unsigned s = 0; s < slices; ++s)
            fabric.addSlice(mesh.numTiles() - slices + s, dram);
        for (unsigned i = 0; i < n; ++i) {
            CacheParams p{"l1." + std::to_string(i), 1024, 2, 2, 4};
            p.tile = i;
            l1s.push_back(std::make_unique<Cache>(eq, p, dram));
            l1s.back()->attachCoherence(fabric);
        }
    }

    /** Run one demand access from cache @p i to completion. */
    void
    access(unsigned i, sim::Addr a, AccessKind kind)
    {
        sim::Join j = sim::spawn(l1s[i]->request(req(eq, i, a, kind)));
        eq.run();
        j.get();
    }

    Directory &home(sim::Addr a) { return fabric.slice(fabric.homeSlice(a)); }
};

}  // namespace

// ---------------------------------------------------------------------------
// CoherenceChecker as a standalone oracle
// ---------------------------------------------------------------------------

TEST(CoherenceChecker, LegalSharingSequenceIsSilent)
{
    CoherenceChecker ck;
    unsigned a = ck.registerCache("a");
    unsigned b = ck.registerCache("b");
    ck.onInstall(a, 0x1000, MsiState::S);
    ck.onLoad(a, 0x1000);
    ck.onInstall(b, 0x1000, MsiState::S);
    ck.onLoad(b, 0x1000);
    // Writer invalidates both copies first, then takes M.
    ck.onRelease(a, 0x1000);
    ck.onRelease(b, 0x1000);
    ck.onInstall(a, 0x1000, MsiState::M);
    ck.onStore(a, 0x1000);
    // Reader forces a downgrade, then shares.
    ck.onDowngrade(a, 0x1000);
    ck.onInstall(b, 0x1000, MsiState::S);
    ck.onLoad(b, 0x1000);
    ck.onLoad(a, 0x1000);
    EXPECT_EQ(ck.loadsChecked(), 4u);
    EXPECT_EQ(ck.storesChecked(), 1u);
}

TEST(CoherenceChecker, SecondOwnerViolatesSwmr)
{
    CoherenceChecker ck;
    unsigned a = ck.registerCache("a");
    unsigned b = ck.registerCache("b");
    ck.onInstall(a, 0x40, MsiState::M);
    EXPECT_THROW(ck.onInstall(b, 0x40, MsiState::M), CoherenceError);
}

TEST(CoherenceChecker, MissedInvalidationCaughtOnStaleRead)
{
    CoherenceChecker ck;
    unsigned a = ck.registerCache("a");
    unsigned b = ck.registerCache("b");
    ck.onInstall(a, 0x40, MsiState::S);
    // b writes without a having been invalidated: the install itself is the
    // protocol bug (S copy alive while granting M).
    EXPECT_THROW(ck.onInstall(b, 0x40, MsiState::M), CoherenceError);
}

TEST(CoherenceChecker, DmaWriteAgainstLiveCopyIsCaught)
{
    CoherenceChecker ck;
    unsigned a = ck.registerCache("a");
    ck.onInstall(a, 0x80, MsiState::S);
    EXPECT_THROW(ck.onDmaWrite(0x80), CoherenceError);
    ck.onRelease(a, 0x80);
    ck.onDmaWrite(0x80);  // silent once the copy is gone
}

// ---------------------------------------------------------------------------
// Directed protocol transactions through the directory
// ---------------------------------------------------------------------------

TEST(Directory, RemoteLoadDowngradesModifiedOwner)
{
    CohFixture f;
    f.access(0, 0x1000, AccessKind::Write);  // cache 0 takes M
    f.access(1, 0x1000, AccessKind::Read);   // Fwd-GetS: 0 drops to S
    EXPECT_EQ(f.home(0x1000).stats().counterValue("fwd_gets"), 1u);
    EXPECT_EQ(f.l1s[0]->stats().counterValue("downgrades"), 1u);
    EXPECT_TRUE(f.l1s[0]->probe(0x1000));
    EXPECT_TRUE(f.l1s[1]->probe(0x1000));
    EXPECT_EQ(f.fabric.totalInterventions(), 1u);
}

TEST(Directory, RemoteStoreInvalidatesAllSharers)
{
    CohFixture f(3);
    f.access(0, 0x2000, AccessKind::Read);
    f.access(1, 0x2000, AccessKind::Read);
    f.access(2, 0x2000, AccessKind::Write);  // Inv both sharers
    EXPECT_EQ(f.fabric.totalInvalidations(), 2u);
    EXPECT_EQ(f.l1s[0]->stats().counterValue("inv_received"), 1u);
    EXPECT_EQ(f.l1s[1]->stats().counterValue("inv_received"), 1u);
    EXPECT_FALSE(f.l1s[0]->probe(0x2000));
    EXPECT_FALSE(f.l1s[1]->probe(0x2000));
    EXPECT_TRUE(f.l1s[2]->probe(0x2000));
}

TEST(Directory, StoreAfterLoadUpgradesInPlace)
{
    CohFixture f;
    f.access(0, 0x3000, AccessKind::Read);
    f.access(0, 0x3000, AccessKind::Write);  // S -> M, no data refetch
    EXPECT_EQ(f.l1s[0]->stats().counterValue("upgrade_misses"), 1u);
    EXPECT_EQ(f.home(0x3000).stats().counterValue("upgrades"), 1u);
}

TEST(Directory, DirtyEvictionEmitsPutM)
{
    CohFixture f;  // 1KB 2-way: 8 sets, set stride 512B
    f.access(0, 0x0000, AccessKind::Write);
    f.access(0, 0x0200, AccessKind::Write);
    f.access(0, 0x0400, AccessKind::Write);  // evicts dirty 0x0000
    f.eq.run();  // detached PutM drains
    EXPECT_GE(f.home(0x0000).stats().counterValue("putm"), 1u);
    EXPECT_GE(f.fabric.messagesSent(CohMsg::PutM), 1u);
}

TEST(Directory, SharerOverflowInvalidatesOldest)
{
    CohFixture f(3, 1, /*max_sharers=*/2);
    f.access(0, 0x4000, AccessKind::Read);
    f.access(1, 0x4000, AccessKind::Read);
    f.access(2, 0x4000, AccessKind::Read);  // third sharer overflows
    EXPECT_EQ(f.home(0x4000).stats().counterValue("sharer_overflows"), 1u);
    EXPECT_EQ(f.l1s[0]->stats().counterValue("inv_received"), 1u);
    EXPECT_FALSE(f.l1s[0]->probe(0x4000));
    EXPECT_TRUE(f.l1s[2]->probe(0x4000));
}

TEST(Directory, EvictionForcedRecallOnFullSet)
{
    // 2 entries, 2-way -> a single directory set: the third tracked line
    // must recall a victim's private copies.
    CohFixture f(1, 1, 8, /*dir_entries=*/2, /*dir_assoc=*/2);
    f.access(0, 0x0000, AccessKind::Read);
    f.access(0, 0x1000, AccessKind::Read);
    f.access(0, 0x2000, AccessKind::Read);
    EXPECT_GE(f.home(0).stats().counterValue("recalls"), 1u);
    EXPECT_GE(f.l1s[0]->stats().counterValue("inv_received"), 1u);
}

TEST(Directory, DmaWriteInvalidatesCopiesAndDmaReadDowngrades)
{
    CohFixture f(2);
    f.access(0, 0x5000, AccessKind::Read);
    f.access(1, 0x5000, AccessKind::Read);
    sim::Join j = sim::spawn(
        f.dma.request(req(f.eq, 8, 0x5000, AccessKind::Write, 8)));
    f.eq.run();
    j.get();
    EXPECT_EQ(f.home(0x5000).stats().counterValue("dma_writes"), 1u);
    EXPECT_FALSE(f.l1s[0]->probe(0x5000));
    EXPECT_FALSE(f.l1s[1]->probe(0x5000));

    f.access(0, 0x6000, AccessKind::Write);  // M owner
    sim::Join j2 = sim::spawn(
        f.dma.request(req(f.eq, 8, 0x6000, AccessKind::Read, 8)));
    f.eq.run();
    j2.get();
    EXPECT_EQ(f.home(0x6000).stats().counterValue("dma_reads"), 1u);
    EXPECT_EQ(f.l1s[0]->stats().counterValue("downgrades"), 1u);
    EXPECT_TRUE(f.l1s[0]->probe(0x6000)) << "DMA read must not evict, only downgrade";
}

TEST(Directory, DmaSpansMultipleLines)
{
    CohFixture f(1, /*slices=*/2);
    f.access(0, 0x7000, AccessKind::Read);
    f.access(0, 0x7040, AccessKind::Read);
    // A 128B stream write covers two lines homed (interleaved) on two
    // different slices; both copies must die.
    sim::Join j = sim::spawn(
        f.dma.request(req(f.eq, 8, 0x7000, AccessKind::Write, 128)));
    f.eq.run();
    j.get();
    EXPECT_FALSE(f.l1s[0]->probe(0x7000));
    EXPECT_FALSE(f.l1s[0]->probe(0x7040));
}

TEST(Directory, StaleSharerBitGetsFullFillNotUpgrade)
{
    CohFixture f(1);  // 1KB 2-way: 8 sets, set stride 512B
    f.access(0, 0x0000, AccessKind::Read);
    f.access(0, 0x0200, AccessKind::Read);
    f.access(0, 0x0400, AccessKind::Read);  // silently evicts S copy 0x0000
    ASSERT_FALSE(f.l1s[0]->probe(0x0000));
    // The home still lists cache 0 as a sharer of 0x0000; its GetM must be
    // recognized as a fill (data + LLC read billed), not a header-only
    // upgrade of a copy that no longer exists.
    f.access(0, 0x0000, AccessKind::Write);
    EXPECT_EQ(f.home(0x0000).stats().counterValue("stale_upgrades"), 1u);
    EXPECT_EQ(f.home(0x0000).stats().counterValue("upgrades"), 0u);
    EXPECT_TRUE(f.l1s[0]->probe(0x0000));
}

namespace {

/**
 * A scripted protocol endpoint: the fabric-facing cache contract (with
 * checker hooks mirroring mem::Cache) but with state transitions driven
 * explicitly by the test, so exact message interleavings can be staged.
 */
struct ScriptedCache : CoherentCache {
    CoherenceFabric &fabric;
    std::string name;
    sim::TileId tile;
    unsigned id = 0;
    std::unordered_map<sim::Addr, MsiState> lines;

    ScriptedCache(CoherenceFabric &f, std::string n, sim::TileId t)
        : fabric(f), name(std::move(n)), tile(t)
    {
        id = fabric.registerCache(*this);
    }

    const std::string &cohName() const override { return name; }
    sim::TileId cohTile() const override { return tile; }

    MsiState
    cohState(sim::Addr line) const override
    {
        auto it = lines.find(line);
        return it == lines.end() ? MsiState::I : it->second;
    }

    MsiState
    cohTakeLine(sim::Addr line) override
    {
        MsiState prior = cohState(line);
        if (prior != MsiState::I) {
            if (CoherenceChecker *ck = fabric.checker())
                ck->onRelease(id, line);
            lines.erase(line);
        }
        return prior;
    }

    bool
    cohDowngrade(sim::Addr line) override
    {
        if (cohState(line) != MsiState::M)
            return false;
        lines[line] = MsiState::S;
        if (CoherenceChecker *ck = fabric.checker())
            ck->onDowngrade(id, line);
        return true;
    }

    void
    cohInstall(sim::Addr line, MsiState st, const MemRequest &) override
    {
        CoherenceChecker *ck = fabric.checker();
        if (cohState(line) == MsiState::S && st == MsiState::M) {
            lines[line] = MsiState::M;
            if (ck)
                ck->onUpgrade(id, line);
            return;
        }
        lines[line] = st;
        if (ck)
            ck->onInstall(id, line, st);
    }

    /** Drop the dirty copy like an eviction does (the PutM is spawned by
     *  the test so its position in the interleaving is explicit). */
    void
    evict(sim::Addr line)
    {
        if (CoherenceChecker *ck = fabric.checker())
            ck->onRelease(id, line);
        lines.erase(line);
    }
};

}  // namespace

TEST(Directory, DelayedPutMAfterReownKeepsOwnership)
{
    // The ABA the stale-PutM notes exist for: cache A's eviction PutM is
    // overtaken by A's own re-GetM for the same line. The home must not let
    // the late PutM clear A's *re-acquired* ownership.
    sim::EventQueue eq;
    Dram dram{eq, DramParams{100, 1, 2}};
    noc::Mesh mesh(eq, noc::MeshParams{3, 3, 1, 16});
    CoherenceFabric fabric(eq, CohFixture::makeCfg(8, 1024, 8), mesh);
    fabric.addSlice(mesh.numTiles() - 1, dram);
    ScriptedCache a(fabric, "a", 0), b(fabric, "b", 1);
    const sim::Addr kLine = 0x1000;

    {
        sim::Join j = sim::spawn(fabric.fetch(
            a.id, req(eq, a.tile, kLine, AccessKind::Write, 64), kLine, true));
        eq.run();
        j.get();
    }
    ASSERT_EQ(a.cohState(kLine), MsiState::M);

    // A evicts and immediately re-fetches M. The GetM leg is spawned first
    // and is header-only while the PutM carries a full line of flits, so
    // the GetM deterministically wins the home's line lock: the directory
    // sees stale self-ownership, re-grants M, and the PutM arrives last.
    a.evict(kLine);
    sim::Join jf = sim::spawn(fabric.fetch(
        a.id, req(eq, a.tile, kLine, AccessKind::Write, 64), kLine, true));
    sim::Join jp = sim::spawn(fabric.putM(
        a.id, req(eq, a.tile, kLine, AccessKind::Write, 64), kLine));
    eq.run();
    jf.get();
    jp.get();
    EXPECT_EQ(a.cohState(kLine), MsiState::M);
    Directory &d = fabric.slice(fabric.homeSlice(kLine));
    EXPECT_EQ(d.stats().counterValue("putm_stale"), 1u);
    EXPECT_EQ(d.stats().counterValue("putm"), 0u);

    // The proof the home still tracks A: B's read must arrive as a
    // Fwd-GetS downgrade of A, not a fresh install alongside an untracked
    // M copy (which the checker would flag as a stale read setup).
    sim::Join jb = sim::spawn(fabric.fetch(
        b.id, req(eq, b.tile, kLine, AccessKind::Read, 64), kLine, false));
    eq.run();
    jb.get();
    EXPECT_EQ(d.stats().counterValue("fwd_gets"), 1u);
    EXPECT_EQ(a.cohState(kLine), MsiState::S);
    EXPECT_EQ(b.cohState(kLine), MsiState::S);
}

TEST(Directory, InvalidateAllThrowsWithCoherentModifiedLine)
{
    CohFixture f;
    f.access(0, 0x1000, AccessKind::Write);
    EXPECT_THROW(f.l1s[0]->invalidateAll(), sim::FatalError);
    sim::Join j = sim::spawn(f.l1s[0]->flushAll());
    f.eq.run();
    j.get();
    f.l1s[0]->invalidateAll();  // flush released everything: fine now
    EXPECT_FALSE(f.l1s[0]->probe(0x1000));
}

// ---------------------------------------------------------------------------
// SoC wiring: every MAPLE path is coherent in msi mode
// ---------------------------------------------------------------------------

TEST(SocMsi, MapleWalksRouteThroughDirectory)
{
    // Legacy mode wires MAPLE's page-table walker straight at the slice-0
    // LLC front-end.
    {
        soc::Soc legacy(soc::SocConfig::fpga());
        sim::TileId mt = legacy.maple(0).params().tile;
        EXPECT_NE(legacy.findPort(mt, soc::PortUse::MapleWalk), nullptr);
    }

    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.coherence.mode = CoherenceMode::Msi;
    cfg.coherence.checker = true;
    soc::Soc soc(cfg);
    ASSERT_NE(soc.coherence(), nullptr);
    // In msi mode every MAPLE path -- streams, prefetches *and* walks --
    // rides the coherent DMA port: a direct walk port would cache
    // remote-homed page-table lines in slice 0's array and read around an
    // M owner.
    sim::TileId mt = soc.maple(0).params().tile;
    EXPECT_EQ(soc.findPort(mt, soc::PortUse::MapleWalk), nullptr);
    EXPECT_EQ(soc.findPort(mt, soc::PortUse::MapleLlc), nullptr);
    EXPECT_EQ(soc.findPort(mt, soc::PortUse::MapleDram), nullptr);

    // End-to-end: a consume stream whose pointer translations miss the
    // cold device TLB, so the walks themselves go through the directory
    // with the checker live.
    os::Process &proc = soc.createProcess("walks");
    std::vector<float> vals = app::makeDenseVector(64, 42);
    app::SimArray<float> x(proc, vals.size(), "x");
    x.upload(vals);
    auto api = core::MapleApi::attach(proc, soc.maple(0));
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 32, 4);
        bool ok = co_await api.open(c, 0);
        EXPECT_TRUE(ok);
    };
    soc.run({sim::spawn(setup(soc.core(0)))});
    auto produce = [&](cpu::Core &c) -> sim::Task<void> {
        for (size_t i = 0; i < x.size(); ++i)
            co_await api.producePtr(c, 0, x.addr(i));
    };
    auto consume = [&](cpu::Core &c) -> sim::Task<void> {
        for (size_t i = 0; i < x.size(); ++i) {
            float v = app::f32FromBits(co_await api.consume(c, 0));
            EXPECT_EQ(v, vals[i]);
        }
    };
    sim::Cycle cycles = soc.run({sim::spawn(produce(soc.core(0))),
                                 sim::spawn(consume(soc.core(1)))},
                                10'000'000);
    EXPECT_LT(cycles, 10'000'000u);  // drained, not timed out

    std::uint64_t dma_reads = 0;
    for (unsigned s = 0; s < soc.coherence()->numSlices(); ++s)
        dma_reads +=
            soc.coherence()->slice(s).stats().counterValue("dma_reads");
    EXPECT_GT(dma_reads, 0u);
}

// ---------------------------------------------------------------------------
// Randomized protocol fuzzer (the checker is the oracle)
// ---------------------------------------------------------------------------

namespace {

/**
 * One agent hammers random lines through its cache; a DMA agent models
 * MAPLE produce/consume streams cutting through the same lines. Small L1s,
 * a tiny directory (recalls), max_sharers=2 (overflow invalidations) and
 * two slices make every protocol corner hot. The checker throws out of the
 * driving coroutine on any missed invalidation / stale read / SWMR breach.
 */
sim::Task<void>
fuzzAgent(CohFixture &f, unsigned cache, std::uint64_t seed, unsigned ops,
          unsigned lines)
{
    sim::Rng rng(seed);
    for (unsigned i = 0; i < ops; ++i) {
        sim::Addr a = (rng.next() % lines) * kLineSize;
        AccessKind k = rng.next() % 3 ? AccessKind::Read : AccessKind::Write;
        co_await f.l1s[cache]->request(req(f.eq, cache, a, k));
        if (rng.next() % 4 == 0)
            co_await sim::delay(f.eq, rng.next() % 32);
    }
}

sim::Task<void>
fuzzDma(CohFixture &f, std::uint64_t seed, unsigned ops, unsigned lines)
{
    sim::Rng rng(seed);
    for (unsigned i = 0; i < ops; ++i) {
        sim::Addr a = (rng.next() % lines) * kLineSize;
        AccessKind k = rng.next() % 2 ? AccessKind::Read : AccessKind::Write;
        co_await f.dma.request(req(f.eq, 8, a, k));
        co_await sim::delay(f.eq, rng.next() % 16);
    }
}

}  // namespace

TEST(CoherenceFuzz, RandomTrafficPassesChecker)
{
    // 48 lines over 2 slices = 24 lines per 8-entry directory: allocation
    // pressure is constant, so eviction-forced recalls fire throughout.
    const unsigned kCaches = 4, kLines = 48, kOpsPerAgent = 2500;
    CohFixture f(kCaches, /*slices=*/2, /*max_sharers=*/2,
                 /*dir_entries=*/8, /*dir_assoc=*/2);
    std::vector<sim::Join> joins;
    for (unsigned c = 0; c < kCaches; ++c)
        joins.push_back(sim::spawn(
            fuzzAgent(f, c, 0x9e3779b97f4a7c15ull + c, kOpsPerAgent, kLines)));
    joins.push_back(sim::spawn(fuzzDma(f, 0xc0ffee, kOpsPerAgent, kLines)));
    f.eq.run();
    for (sim::Join &j : joins)
        j.get();  // rethrows any CoherenceError from the checker

    // 10k+ checked ops, and the harsh geometry really did exercise the
    // corner machinery -- a silent checker over easy traffic proves little.
    CoherenceChecker *ck = f.fabric.checker();
    ASSERT_NE(ck, nullptr);
    EXPECT_GE(ck->loadsChecked() + ck->storesChecked(), 10000u);
    EXPECT_GT(f.fabric.totalInvalidations(), 0u);
    EXPECT_GT(f.fabric.totalInterventions(), 0u);
    std::uint64_t recalls = 0, overflows = 0;
    for (unsigned s = 0; s < f.fabric.numSlices(); ++s) {
        recalls += f.fabric.slice(s).stats().counterValue("recalls");
        overflows += f.fabric.slice(s).stats().counterValue("sharer_overflows");
    }
    EXPECT_GT(recalls, 0u);
    EXPECT_GT(overflows, 0u);
}

TEST(CoherenceFuzz, DelayedAndDroppedMessagesPassChecker)
{
    // CohMsgDelay reorders protocol messages arbitrarily (a delayed PutM
    // can lose to its own cache's later GetM -- the re-own ABA); CohMsgDrop
    // adds timeout+retransmit on top. The checker must stay silent through
    // all of it.
    // Ample directory (no recalls): dirty lines leave the caches through
    // their *own* LRU evictions, so delayed PutMs are actually in flight to
    // race against (a tiny directory would recall every dirty line first
    // and no PutM would ever be sent -- the recall corner is the plain
    // fuzzer's job).
    const unsigned kCaches = 4, kLines = 48, kOpsPerAgent = 1500;
    CohFixture f(kCaches, /*slices=*/2, /*max_sharers=*/2,
                 /*dir_entries=*/1024, /*dir_assoc=*/8);
    fault::FaultConfig fc;
    fc.seed = 0xfeedbeef;
    fc.coh_delay = {0.10, 512};
    fc.coh_drop = {0.02, 0};
    fault::FaultInjector inj(f.eq, fc);

    std::vector<sim::Join> joins;
    for (unsigned c = 0; c < kCaches; ++c)
        joins.push_back(sim::spawn(
            fuzzAgent(f, c, 0x51ed5eedull + c, kOpsPerAgent, kLines)));
    joins.push_back(sim::spawn(fuzzDma(f, 0xdeadca7, kOpsPerAgent, kLines)));
    f.eq.run();
    for (sim::Join &j : joins)
        j.get();  // rethrows any CoherenceError from the checker

    // The faults really fired, and the reordering machinery really ran:
    // superseded PutMs were detected and dropped instead of clearing
    // re-acquired ownership.
    EXPECT_GT(inj.injectedCount(fault::FaultClass::CohMsgDelay), 100u);
    EXPECT_GT(inj.injectedCount(fault::FaultClass::CohMsgDrop), 10u);
    std::uint64_t stale = 0;
    for (unsigned s = 0; s < f.fabric.numSlices(); ++s)
        stale += f.fabric.slice(s).stats().counterValue("putm_stale");
    EXPECT_GT(stale, 0u);
    CoherenceChecker *ck = f.fabric.checker();
    ASSERT_NE(ck, nullptr);
    EXPECT_GE(ck->loadsChecked() + ck->storesChecked(), 6000u);
}

TEST(CoherenceFuzz, DeterministicAcrossRuns)
{
    auto fingerprint = [] {
        CohFixture f(2, 1, 2, 16, 2);
        std::vector<sim::Join> joins;
        for (unsigned c = 0; c < 2; ++c)
            joins.push_back(sim::spawn(fuzzAgent(f, c, 7 + c, 500, 8)));
        f.eq.run();
        for (sim::Join &j : joins)
            j.get();
        return std::tuple(f.eq.now(), f.fabric.totalInvalidations(),
                          f.fabric.totalInterventions(),
                          f.fabric.messagesSent(CohMsg::Data));
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}
