/**
 * @file
 * Tests for the tracing & telemetry subsystem: Chrome-trace JSON
 * well-formedness, span nesting, probe sampling cadence, stall-attribution
 * consistency with the device counters, and the zero-overhead guarantee
 * (a disabled tracer leaves the simulation bit-identical).
 */
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"
#include "trace/trace.hpp"

using namespace maple;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: enough to prove well-formedness and walk the trace.
// ---------------------------------------------------------------------------

struct Json {
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &
    at(const std::string &key) const
    {
        auto it = obj.find(key);
        if (it == obj.end())
            throw std::runtime_error("missing key: " + key);
        return it->second;
    }
    bool has(const std::string &key) const { return obj.count(key) != 0; }
};

class JsonParser {
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    Json
    value()
    {
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': {
            Json v;
            v.kind = Json::String;
            v.str = string();
            return v;
        }
        case 't':
        case 'f': return boolean();
        case 'n': return null();
        default: return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json v;
        v.kind = Json::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            std::string key = string();
            expect(':');
            v.obj.emplace(std::move(key), value());
            char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    Json
    array()
    {
        expect('[');
        Json v;
        v.kind = Json::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c == '\\') {
                if (pos_ >= s_.size())
                    fail("bad escape");
                char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u':
                    if (pos_ + 4 > s_.size())
                        fail("bad \\u escape");
                    pos_ += 4;  // decoded value irrelevant for these tests
                    out += '?';
                    break;
                default: fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        Json v;
        v.kind = Json::Number;
        v.num = std::stod(s_.substr(start, pos_ - start));
        return v;
    }

    Json
    boolean()
    {
        Json v;
        v.kind = Json::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v.b = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    Json
    null()
    {
        if (s_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        return Json{};
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

Json
dumpAndParse(const trace::TraceManager &t)
{
    std::ostringstream os;
    t.writeJson(os);
    return JsonParser(os.str()).parse();
}

/**
 * Check that all complete ("X") events on every track are properly nested:
 * two spans on one track either do not overlap or one contains the other.
 */
void
expectProperNesting(const Json &root)
{
    struct Iv {
        double ts, end;
        std::string name;
    };
    std::map<int, std::vector<Iv>> per_track;
    for (const Json &ev : root.at("traceEvents").arr) {
        if (ev.at("ph").str != "X")
            continue;
        double ts = ev.at("ts").num;
        double dur = ev.at("dur").num;
        ASSERT_GE(dur, 0.0);
        per_track[int(ev.at("tid").num)].push_back(
            {ts, ts + dur, ev.at("name").str});
    }
    for (auto &[tid, ivs] : per_track) {
        std::sort(ivs.begin(), ivs.end(), [](const Iv &a, const Iv &b) {
            return a.ts != b.ts ? a.ts < b.ts : a.end > b.end;
        });
        std::vector<double> open;  // stack of enclosing span ends
        for (const Iv &iv : ivs) {
            while (!open.empty() && open.back() <= iv.ts)
                open.pop_back();
            if (!open.empty()) {
                ASSERT_LE(iv.end, open.back())
                    << "span '" << iv.name << "' on track " << tid
                    << " straddles its enclosing span";
            }
            open.push_back(iv.end);
        }
    }
}

// ---------------------------------------------------------------------------
// A small decoupled gather, the quickstart loop at test scale.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kN = 768;

sim::Task<void>
accessThread(cpu::Core &core, core::MapleApi &api, sim::Addr a, sim::Addr b)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t idx = co_await core.load(b + 4 * i, 4);
        co_await api.producePtr(core, 0, a + 4 * idx);
    }
}

sim::Task<void>
executeThread(cpu::Core &core, core::MapleApi &api, sim::Addr out)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t v = co_await api.consume(core, 0);
        co_await core.store(out + 4 * i, v, 4);
    }
}

struct DecoupledResult {
    sim::Cycle cycles = 0;
    std::uint64_t events = 0;
};

/** Run the gather on a fresh SoC; @p body sees the SoC after the run. */
DecoupledResult
runDecoupled(const trace::TraceConfig &tcfg,
             const std::function<void(soc::Soc &)> &body = {})
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.trace = tcfg;
    soc::Soc soc(cfg);
    os::Process &proc = soc.createProcess("trace-test");
    sim::Addr a = proc.alloc(kN * 4, "A");
    sim::Addr b = proc.alloc(kN * 4, "B");
    sim::Addr out = proc.alloc(kN * 4, "out");
    for (std::uint32_t i = 0; i < kN; ++i) {
        proc.writeScalar<std::uint32_t>(a + 4 * i, i);
        proc.writeScalar<std::uint32_t>(b + 4 * i, (i * 2654435761u) % kN);
    }
    core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 16, 4);
        bool ok = co_await api.open(c, 0);
        MAPLE_ASSERT(ok, "queue open failed");
    };
    soc.run({sim::spawn(setup(soc.core(0)))});

    DecoupledResult r;
    r.cycles = soc.run({sim::spawn(accessThread(soc.core(0), api, a, b)),
                        sim::spawn(executeThread(soc.core(1), api, out))});
    r.events = soc.eq().executed();
    if (body)
        body(soc);
    return r;
}

trace::TraceConfig
quietTracing(sim::Cycle interval = 500)
{
    trace::TraceConfig t;
    t.enabled = true;
    t.sample_interval = interval;
    t.report_to_stderr = false;  // keep test output clean
    return t;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceManager unit tests (no SoC).
// ---------------------------------------------------------------------------

TEST(Trace, SpansNestAndExportWellFormedJson)
{
    sim::EventQueue eq;
    trace::TraceManager t(eq, quietTracing());

    auto track = t.track("agent");
    auto lanes = t.laneGroup("pool");

    auto worker = [&]() -> sim::Task<void> {
        t.begin(track, "outer", trace::Category::Core);
        co_await sim::delay(eq, 5);
        t.begin(track, "inner", trace::Category::Mem);
        t.instant(track, "marker", trace::Category::Os);
        co_await sim::delay(eq, 5);
        t.end(track);
        t.complete(track, "tail", trace::Category::Core, eq.now() - 3);
        co_await sim::delay(eq, 2);
        t.end(track);
    };
    auto laneUser = [&](sim::Cycle d) -> sim::Task<void> {
        trace::LaneSpan span(&t, lanes, "op", trace::Category::Maple);
        co_await sim::delay(eq, d);
    };
    sim::spawn(worker());
    sim::spawn(laneUser(7));
    sim::spawn(laneUser(4));  // concurrent: must land on a second lane
    eq.run();

    EXPECT_EQ(t.eventCount(), 6u);  // outer, inner, tail, marker, 2x op
    Json root = dumpAndParse(t);
    expectProperNesting(root);

    // The two concurrent lane spans got distinct tracks of the same group.
    std::map<std::string, int> track_names;
    int span_tracks = 0;
    for (const Json &ev : root.at("traceEvents").arr) {
        if (ev.at("ph").str == "M")
            track_names[ev.at("args").at("name").str]++;
        if (ev.at("ph").str == "X" && ev.at("name").str == "op")
            ++span_tracks;
    }
    EXPECT_EQ(track_names.count("pool"), 1u);
    EXPECT_EQ(track_names.count("pool#1"), 1u);
    EXPECT_EQ(span_tracks, 2);
}

TEST(Trace, ProbesSampleOnTheConfiguredCadence)
{
    sim::EventQueue eq;
    trace::TraceManager t(eq, quietTracing(/*interval=*/100));
    t.addProbe("now", [&] { return double(eq.now()); });

    auto ticker = [&]() -> sim::Task<void> {
        for (int i = 0; i < 10; ++i)
            co_await sim::delay(eq, 73);  // deliberately off-cadence
    };
    sim::spawn(ticker());
    eq.run();

    // 730 cycles of activity at interval 100 -> samples at 100, 200, ... 700.
    EXPECT_EQ(t.sampleRows(), 7u);
    Json root = dumpAndParse(t);
    std::vector<double> ts;
    for (const Json &ev : root.at("traceEvents").arr) {
        if (ev.at("ph").str == "C" && ev.at("name").str == "now")
            ts.push_back(ev.at("ts").num);
    }
    ASSERT_EQ(ts.size(), 7u);
    for (std::size_t i = 0; i < ts.size(); ++i)
        EXPECT_EQ(ts[i], 100.0 * double(i + 1));

    // The CSV mirrors the same rows.
    std::ostringstream csv;
    t.writeCsv(csv);
    std::istringstream in(csv.str());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "cycle,now");
    // Sampling piggybacks on event execution: the sample for cycle 100 is
    // taken when time advances past it (the event at 146), so the probe sees
    // the machine state that was in effect throughout the (73, 146) gap.
    std::getline(in, line);
    EXPECT_EQ(line, "100,146");
}

TEST(Trace, SamplingNeverSchedulesEvents)
{
    // Identical workload with and without an attached tracer: the event
    // count and final time must match exactly (the tracer only observes).
    auto run = [](bool traced) {
        sim::EventQueue eq;
        std::unique_ptr<trace::TraceManager> t;
        if (traced) {
            t = std::make_unique<trace::TraceManager>(eq, quietTracing(50));
            t->addProbe("x", [] { return 1.0; });
        }
        auto ticker = [&]() -> sim::Task<void> {
            for (int i = 0; i < 20; ++i)
                co_await sim::delay(eq, 37);
        };
        sim::spawn(ticker());
        eq.run();
        return std::pair<sim::Cycle, std::uint64_t>(eq.now(), eq.executed());
    };
    EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Full-SoC tests.
// ---------------------------------------------------------------------------

TEST(Trace, DecoupledRunEmitsAllThreePipelinesAndTimeSeries)
{
    runDecoupled(quietTracing(), [](soc::Soc &soc) {
        trace::TraceManager *t = soc.tracer();
        ASSERT_NE(t, nullptr);
        Json root = dumpAndParse(*t);
        expectProperNesting(root);

        std::map<std::string, int> spans;
        std::map<std::string, int> counters;
        std::map<std::string, int> tracks;
        for (const Json &ev : root.at("traceEvents").arr) {
            const std::string &ph = ev.at("ph").str;
            if (ph == "X")
                spans[ev.at("name").str]++;
            else if (ph == "C")
                counters[ev.at("name").str]++;
            else if (ph == "M")
                tracks[ev.at("args").at("name").str]++;
        }
        // All three MAPLE pipelines produced spans...
        EXPECT_EQ(spans["produce_ptr"], int(kN));
        EXPECT_EQ(spans["consume"], int(kN));
        EXPECT_GE(spans["config_load"], 1);  // the OPEN
        // ...on lane groups named after the device pipelines.
        EXPECT_EQ(tracks.count("maple.0.produce"), 1u);
        EXPECT_EQ(tracks.count("maple.0.consume"), 1u);
        EXPECT_EQ(tracks.count("maple.0.config"), 1u);
        // Core and cache activity shows up too.
        EXPECT_GE(spans["load"], int(kN));
        EXPECT_GE(spans["miss"], 1);
        // At least one time-series probe sampled at least once.
        EXPECT_GE(t->sampleRows(), 1u);
        EXPECT_GE(counters["maple.0.q0.occupancy"], 1);

        // Top-level report blocks are present and well-formed.
        EXPECT_TRUE(root.at("stallAttribution").has("queue_full"));
        EXPECT_EQ(root.at("metadata").at("droppedEvents").num, 0.0);
    });
}

TEST(Trace, StallAttributionMatchesDeviceCounters)
{
    runDecoupled(quietTracing(), [](soc::Soc &soc) {
        trace::TraceManager *t = soc.tracer();
        ASSERT_NE(t, nullptr);
        core::Maple &dev = soc.maple();
        // The queue-full / queue-empty buckets are instrumented at the same
        // sites as the device's architectural stall counters: they must
        // agree exactly.
        EXPECT_EQ(t->stallCycles(trace::StallCause::QueueFull),
                  dev.counter(core::Counter::FullStallCycles));
        EXPECT_EQ(t->stallCycles(trace::StallCause::QueueEmpty),
                  dev.counter(core::Counter::EmptyStallCycles));
        // The 16-entry queue against a 768-element gather guarantees both
        // full-queue and DRAM wait time; the report must reflect that.
        EXPECT_GT(t->stallCycles(trace::StallCause::QueueFull), 0u);
        EXPECT_GT(t->stallCycles(trace::StallCause::Dram), 0u);
        EXPECT_NE(t->stallReport().find("queue_full"), std::string::npos);
    });
}

TEST(Trace, DisabledTracingIsBitIdentical)
{
    trace::TraceConfig off;  // default: disabled
    DecoupledResult plain = runDecoupled(off);

    DecoupledResult traced = runDecoupled(quietTracing(), [](soc::Soc &soc) {
        ASSERT_NE(soc.tracer(), nullptr);
        EXPECT_GT(soc.tracer()->eventCount(), 0u);
    });

    // Tracing must not perturb the simulation: same cycle count, same number
    // of executed events.
    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.events, traced.events);

    // And with no tracer attached, nothing is recorded anywhere (the
    // instrumentation fast path short-circuits on the null tracer).
    DecoupledResult disabled = runDecoupled(off, [](soc::Soc &soc) {
        EXPECT_EQ(soc.tracer(), nullptr);
    });
    EXPECT_EQ(disabled.cycles, plain.cycles);
}
