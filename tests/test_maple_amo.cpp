/**
 * @file
 * Tests for the read-modify-write extension (Section 3 names atomic RMW as a
 * natural extension of MAPLE's programming model): offloaded fetch-and-add
 * with old values delivered through the queues in program order.
 */
#include <gtest/gtest.h>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"

using namespace maple;
using core::MapleApi;

namespace {

struct AmoFixture {
    soc::Soc soc{soc::SocConfig::fpga()};
    os::Process &proc{soc.createProcess("amo")};
    MapleApi api{MapleApi::attach(proc, soc.maple())};
};

}  // namespace

TEST(MapleAmo, FetchAndAddReturnsOldValuesInOrder)
{
    AmoFixture f;
    sim::Addr counter = f.proc.alloc(64, "counter");
    f.proc.writeScalar<std::uint32_t>(counter, 100);

    std::vector<std::uint64_t> olds;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 16, 4);
        bool ok = co_await f.api.open(c, 0);
        EXPECT_TRUE(ok);
        co_await f.api.setAmoAddend(c, 0, 3);
        for (int i = 0; i < 10; ++i)
            co_await f.api.produceAmoAdd(c, 0, counter);
        for (int i = 0; i < 10; ++i)
            olds.push_back(co_await f.api.consume(c, 0));
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 10'000'000);

    ASSERT_EQ(olds.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(olds[i], 100u + 3 * i) << "old values out of program order";
    EXPECT_EQ(f.proc.readScalar<std::uint32_t>(counter), 130u);
}

TEST(MapleAmo, HistogramBuildMatchesGolden)
{
    AmoFixture f;
    constexpr int kKeys = 64, kSamples = 400;
    sim::Addr hist = f.proc.alloc(kKeys * 4, "hist");
    sim::Addr keys = f.proc.alloc(kSamples * 4, "keys");
    std::vector<std::uint32_t> golden(kKeys, 0);
    for (int i = 0; i < kSamples; ++i) {
        std::uint32_t k = (i * 2654435761u) % kKeys;
        f.proc.writeScalar<std::uint32_t>(keys + 4 * i, k);
        ++golden[k];
    }

    // Access streams keys and offloads the histogram increments to MAPLE;
    // consumed old values are discarded (fire-and-forget pattern needs the
    // consume to reclaim the slot).
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 32, 4);
        bool ok = co_await f.api.open(c, 0);
        EXPECT_TRUE(ok);
        co_await f.api.setAmoAddend(c, 0, 1);
        int outstanding = 0;
        for (int i = 0; i < kSamples; ++i) {
            std::uint64_t k = co_await c.load(keys + 4 * i, 4);
            co_await f.api.produceAmoAdd(c, 0, hist + 4 * k);
            if (++outstanding == 16) {
                for (int d = 0; d < 16; ++d)
                    (void)co_await f.api.consume(c, 0);
                outstanding = 0;
            }
        }
        for (int d = 0; d < outstanding; ++d)
            (void)co_await f.api.consume(c, 0);
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 50'000'000);

    for (int k = 0; k < kKeys; ++k)
        ASSERT_EQ(f.proc.readScalar<std::uint32_t>(hist + 4 * k), golden[k])
            << "histogram bucket " << k;
}

TEST(MapleAmo, ConcurrentOffloadedAtomicsNeverLoseUpdates)
{
    AmoFixture f;
    sim::Addr counter = f.proc.alloc(64, "counter");

    auto worker = [&](cpu::Core &c, unsigned q) -> sim::Task<void> {
        bool ok = co_await f.api.open(c, q);
        EXPECT_TRUE(ok);
        co_await f.api.setAmoAddend(c, q, 1);
        for (int i = 0; i < 50; ++i) {
            co_await f.api.produceAmoAdd(c, q, counter);
            (void)co_await f.api.consume(c, q);
        }
    };
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 2, 16, 4);
    };
    f.soc.run({sim::spawn(setup(f.soc.core(0)))}, 1'000'000);
    f.soc.run({sim::spawn(worker(f.soc.core(0), 0)),
               sim::spawn(worker(f.soc.core(1), 1))},
              50'000'000);
    EXPECT_EQ(f.proc.readScalar<std::uint32_t>(counter), 100u);
}

TEST(MapleAmo, MixesWithDataAndPointerProducesInOneQueue)
{
    AmoFixture f;
    sim::Addr mem = f.proc.alloc(256, "mem");
    f.proc.writeScalar<std::uint32_t>(mem, 7);        // pointer target
    f.proc.writeScalar<std::uint32_t>(mem + 64, 50);  // amo target

    std::vector<std::uint64_t> got;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 8, 4);
        bool ok = co_await f.api.open(c, 0);
        EXPECT_TRUE(ok);
        co_await f.api.setAmoAddend(c, 0, 5);
        co_await f.api.produce(c, 0, 1);             // data
        co_await f.api.producePtr(c, 0, mem);        // pointer -> 7
        co_await f.api.produceAmoAdd(c, 0, mem + 64);// amo -> old 50
        co_await f.api.produce(c, 0, 2);             // data
        for (int i = 0; i < 4; ++i)
            got.push_back(co_await f.api.consume(c, 0));
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 10'000'000);

    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got[0], 1u);
    EXPECT_EQ(got[1], 7u);
    EXPECT_EQ(got[2], 50u);
    EXPECT_EQ(got[3], 2u);
    EXPECT_EQ(f.proc.readScalar<std::uint32_t>(mem + 64), 55u);
}
