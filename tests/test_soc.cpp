/**
 * @file
 * Tests for the SoC assembly: address map, configuration resolution, tile
 * placement, the LLC front-end interposer and the run() error paths.
 */
#include <gtest/gtest.h>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"

using namespace maple;
using namespace maple::soc;

TEST(AddressMap, FindsOwningWindow)
{
    AddressMap amap;
    struct Dummy : MmioDevice {
        sim::Task<std::uint64_t> mmioLoad(sim::Addr, unsigned, sim::ThreadId) override
        {
            co_return 0;
        }
        sim::Task<void> mmioStore(sim::Addr, std::uint64_t, unsigned, sim::ThreadId) override
        {
            co_return;
        }
    } dev;
    amap.addDevice(0x10000, 0x1000, &dev, 3);
    EXPECT_TRUE(amap.isMmio(0x10000));
    EXPECT_TRUE(amap.isMmio(0x10fff));
    EXPECT_FALSE(amap.isMmio(0x11000));
    EXPECT_FALSE(amap.isMmio(0xffff));
    const auto *w = amap.find(0x10800);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->tile, 3u);
    EXPECT_EQ(w->device, &dev);
}

TEST(AddressMap, RejectsOverlappingWindows)
{
    AddressMap amap;
    struct Dummy : MmioDevice {
        sim::Task<std::uint64_t> mmioLoad(sim::Addr, unsigned, sim::ThreadId) override
        {
            co_return 0;
        }
        sim::Task<void> mmioStore(sim::Addr, std::uint64_t, unsigned, sim::ThreadId) override
        {
            co_return;
        }
    } dev;
    amap.addDevice(0x10000, 0x2000, &dev, 0);
    EXPECT_THROW(amap.addDevice(0x11000, 0x1000, &dev, 0), sim::ConfigError);
    EXPECT_THROW(amap.addDevice(0x0f000, 0x2000, &dev, 0), sim::ConfigError);
}

TEST(Soc, FpgaConfigMatchesTable2)
{
    Soc soc(SocConfig::fpga());
    EXPECT_EQ(soc.numCores(), 2u);
    EXPECT_EQ(soc.numMaples(), 1u);
    EXPECT_EQ(soc.config().l1.size_bytes, 8u * 1024);
    EXPECT_EQ(soc.config().llc.size_bytes, 64u * 1024);
    EXPECT_EQ(soc.config().dram.latency, 300u);
    EXPECT_EQ(soc.maple().params().scratchpad_bytes, 1024u);
    EXPECT_EQ(soc.maple().params().tlb_entries, 16u);
}

TEST(Soc, AutoMeshFitsAllTiles)
{
    SocConfig cfg = SocConfig::fpga();
    cfg.num_cores = 8;
    cfg.num_maples = 2;
    cfg.mesh_width = 0;
    cfg.mesh_height = 0;
    Soc soc(cfg);
    EXPECT_GE(soc.mesh().numTiles(), 11u);
    // Tile ids are distinct and within the mesh.
    std::set<sim::TileId> tiles;
    for (unsigned i = 0; i < 8; ++i)
        tiles.insert(soc.coreTile(i));
    tiles.insert(soc.mapleTile(0));
    tiles.insert(soc.mapleTile(1));
    tiles.insert(soc.memTile());
    EXPECT_EQ(tiles.size(), 11u);
    for (sim::TileId t : tiles)
        EXPECT_LT(t, soc.mesh().numTiles());
}

TEST(Soc, TooSmallExplicitMeshPanics)
{
    SocConfig cfg = SocConfig::fpga();
    cfg.num_cores = 6;  // 6 + 1 maple + 1 mem > 2x2
    EXPECT_THROW(Soc{cfg}, sim::ConfigError);
}

TEST(Soc, MapleMmioWindowLiesAboveDram)
{
    Soc soc(SocConfig::fpga());
    EXPECT_GE(soc.maple().params().mmio_base, soc.config().dram_bytes);
    EXPECT_TRUE(soc.addressMap().isMmio(soc.maple().params().mmio_base));
    EXPECT_FALSE(soc.addressMap().isMmio(soc.config().dram_bytes - 8));
}

TEST(Soc, MultipleMaplesGetDistinctPagesAndTiles)
{
    SocConfig cfg = SocConfig::fpga();
    cfg.num_maples = 2;
    cfg.mesh_width = 0;
    cfg.mesh_height = 0;
    Soc soc(cfg);
    EXPECT_NE(soc.maple(0).params().mmio_base, soc.maple(1).params().mmio_base);
    EXPECT_NE(soc.mapleTile(0), soc.mapleTile(1));

    // Both instances are independently usable from one process.
    os::Process &proc = soc.createProcess("multi");
    core::MapleApi api0 = core::MapleApi::attach(proc, soc.maple(0));
    core::MapleApi api1 = core::MapleApi::attach(proc, soc.maple(1));
    EXPECT_NE(api0.base(), api1.base());

    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api0.init(c, 1, 8, 8);
        co_await api1.init(c, 1, 8, 8);
        bool ok0 = co_await api0.open(c, 0);
        bool ok1 = co_await api1.open(c, 0);
        EXPECT_TRUE(ok0);
        EXPECT_TRUE(ok1);
        co_await api0.produce(c, 0, 11);
        co_await api1.produce(c, 0, 22);
        EXPECT_EQ(co_await api0.consume(c, 0), 11u);
        EXPECT_EQ(co_await api1.consume(c, 0), 22u);
    };
    soc.run({sim::spawn(t(soc.core(0)))}, 1'000'000);
}

TEST(Soc, RunSurfacesWorkloadExceptions)
{
    Soc soc(SocConfig::fpga());
    auto boom = [](sim::EventQueue &eq) -> sim::Task<void> {
        co_await sim::delay(eq, 10);
        throw std::runtime_error("workload bug");
    };
    EXPECT_THROW(soc.run({sim::spawn(boom(soc.eq()))}), std::runtime_error);
}

TEST(Soc, RunDetectsNonQuiescence)
{
    Soc soc(SocConfig::fpga());
    // Finite but far beyond the cycle bound, so the queue can be drained
    // after the expected throw and no coroutine frame outlives the test.
    auto slow = [](sim::EventQueue &eq) -> sim::Task<void> {
        for (int i = 0; i < 1'000; ++i)
            co_await sim::delay(eq, 100);
    };
    sim::Join j = sim::spawn(slow(soc.eq()));
    EXPECT_THROW(soc.run({j}, 10'000), std::runtime_error);
    soc.eq().run();
    EXPECT_TRUE(j.done());
}

TEST(LlcFrontEnd, ObserverSeesAllAccesses)
{
    Soc soc(SocConfig::fpga());
    os::Process &proc = soc.createProcess("obs");
    sim::Addr buf = proc.alloc(4096, "buf");
    int reads = 0, writes = 0;
    soc.llcFront().setObserver([&](const mem::MemRequest &r) {
        reads += r.kind == mem::AccessKind::Read;
        writes += r.kind == mem::AccessKind::Write;
    });
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        (void)co_await c.load(buf, 8);          // L1 miss -> LLC read
        co_await c.store(buf + 2048, 1, 8);     // miss -> LLC read (fill)
        co_await c.storeFence();
    };
    soc.run({sim::spawn(t(soc.core(0)))}, 1'000'000);
    EXPECT_GE(reads, 2);  // includes page-table walker traffic
    soc.llcFront().setObserver({});
}
