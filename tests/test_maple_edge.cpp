/**
 * @file
 * Edge-case tests for the MAPLE device: LIMA boundary conditions, the
 * non-blocking configuration pipeline, unknown opcodes, debug registers,
 * and queue reconfiguration corner cases.
 */
#include <gtest/gtest.h>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"

using namespace maple;
using core::Counter;
using core::LimaRequest;
using core::MapleApi;

namespace {

struct EdgeFixture {
    soc::Soc soc{soc::SocConfig::fpga()};
    os::Process &proc{soc.createProcess("edge")};
    MapleApi api{MapleApi::attach(proc, soc.maple())};

    sim::Task<void>
    openOne(cpu::Core &c, unsigned entries = 32, unsigned entry_bytes = 4)
    {
        co_await api.init(c, 1, entries, entry_bytes);
        bool ok = co_await api.open(c, 0);
        EXPECT_TRUE(ok);
    }
};

}  // namespace

TEST(MapleEdge, LimaEmptyRangeProducesNothing)
{
    EdgeFixture f;
    sim::Addr a = f.proc.alloc(256, "A");
    sim::Addr b = f.proc.alloc(256, "B");
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.openOne(c);
        LimaRequest req;
        req.a_base = a;
        req.b_base = b;
        req.start = 7;
        req.end = 7;  // empty
        req.target_queue = 0;
        co_await f.api.lima(c, req);
        co_await sim::delay(f.soc.eq(), 5000);
        EXPECT_EQ(co_await f.api.occupancy(c, 0), 0u);
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 1'000'000);
    EXPECT_EQ(f.soc.maple().counter(Counter::LimaElements), 0u);
}

TEST(MapleEdge, LimaRangeCrossingPagesAndLines)
{
    EdgeFixture f;
    // B deliberately starts mid-line and the range crosses a page boundary.
    constexpr std::uint32_t kN = 1200;  // 4800B of indices > one page
    sim::Addr a = f.proc.alloc(kN * 4, "A");
    sim::Addr b_region = f.proc.alloc((kN + 16) * 4, "B");
    sim::Addr b = b_region + 12;  // misaligned w.r.t. the 64B line
    for (std::uint32_t i = 0; i < kN; ++i) {
        f.proc.writeScalar<std::uint32_t>(b + 4 * i, (i * 31) % kN);
        f.proc.writeScalar<std::uint32_t>(a + 4 * i, i + 1);
    }
    std::vector<std::uint32_t> got;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.openOne(c);
        LimaRequest req;
        req.a_base = a;
        req.b_base = b;
        req.start = 0;
        req.end = kN;
        req.target_queue = 0;
        co_await f.api.lima(c, req);
        for (std::uint32_t i = 0; i < kN; ++i)
            got.push_back(static_cast<std::uint32_t>(co_await f.api.consume(c, 0)));
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 100'000'000);
    ASSERT_EQ(got.size(), kN);
    for (std::uint32_t i = 0; i < kN; ++i)
        ASSERT_EQ(got[i], (i * 31) % kN + 1) << "at " << i;
}

TEST(MapleEdge, LimaWith8ByteIndices)
{
    EdgeFixture f;
    constexpr std::uint32_t kN = 64;
    sim::Addr a = f.proc.alloc(kN * 4, "A");
    sim::Addr b = f.proc.alloc(kN * 8, "B64");
    for (std::uint32_t i = 0; i < kN; ++i) {
        f.proc.writeScalar<std::uint64_t>(b + 8 * i, (i * 7) % kN);
        f.proc.writeScalar<std::uint32_t>(a + 4 * i, 100 + i);
    }
    std::vector<std::uint32_t> got;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.openOne(c);
        LimaRequest req;
        req.a_base = a;
        req.b_base = b;
        req.start = 0;
        req.end = kN;
        req.b_elem_bytes = 8;
        req.a_elem_bytes = 4;
        req.target_queue = 0;
        co_await f.api.lima(c, req);
        for (std::uint32_t i = 0; i < kN; ++i)
            got.push_back(static_cast<std::uint32_t>(co_await f.api.consume(c, 0)));
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 100'000'000);
    ASSERT_EQ(got.size(), kN);
    for (std::uint32_t i = 0; i < kN; ++i)
        ASSERT_EQ(got[i], 100 + (i * 7) % kN);
}

TEST(MapleEdge, MultipleQueuedLimaCommandsRunBackToBack)
{
    EdgeFixture f;
    constexpr std::uint32_t kChunk = 16, kCmds = 6;
    sim::Addr a = f.proc.alloc(kChunk * kCmds * 4, "A");
    sim::Addr b = f.proc.alloc(kChunk * kCmds * 4, "B");
    for (std::uint32_t i = 0; i < kChunk * kCmds; ++i) {
        f.proc.writeScalar<std::uint32_t>(b + 4 * i, i);
        f.proc.writeScalar<std::uint32_t>(a + 4 * i, i * 2);
    }
    std::vector<std::uint32_t> got;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.openOne(c, 32, 4);
        for (std::uint32_t k = 0; k < kCmds; ++k) {
            LimaRequest req;
            req.a_base = a;
            req.b_base = b;
            req.start = k * kChunk;
            req.end = (k + 1) * kChunk;
            req.target_queue = 0;
            co_await f.api.lima(c, req);
        }
        for (std::uint32_t i = 0; i < kChunk * kCmds; ++i)
            got.push_back(static_cast<std::uint32_t>(co_await f.api.consume(c, 0)));
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 100'000'000);
    ASSERT_EQ(got.size(), kChunk * kCmds);
    for (std::uint32_t i = 0; i < kChunk * kCmds; ++i)
        ASSERT_EQ(got[i], i * 2);
    EXPECT_EQ(f.soc.maple().counter(Counter::LimaCommands), kCmds);
}

TEST(MapleEdge, ConfigPipelineStaysResponsiveWhileQueueIsFull)
{
    EdgeFixture f;
    sim::Cycle counter_read_latency = 0;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.openOne(c, 4, 8);
        for (int i = 0; i < 12; ++i)  // far beyond capacity: produces park
            co_await f.api.produce(c, 0, i);
        co_await c.storeFence();
    };
    auto debugger = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 3000);  // queue is now saturated
        sim::Cycle t0 = f.soc.eq().now();
        // Debug/occupancy reads go through the *configuration* pipeline,
        // which must not be blocked by the parked produces.
        std::uint64_t occ = co_await f.api.occupancy(c, 0);
        counter_read_latency = f.soc.eq().now() - t0;
        EXPECT_EQ(occ, 4u);
        // Unblock the producer so the run can finish.
        for (int i = 0; i < 12; ++i)
            (void)co_await f.api.consume(c, 0);
    };
    f.soc.run({sim::spawn(producer(f.soc.core(0))),
               sim::spawn(debugger(f.soc.core(1)))},
              10'000'000);
    // Budget: MMIO round trip (~23cy) + the debugger core's first-touch TLB
    // walk of the device page (~3 page-table reads). A blocked pipeline
    // would park until the consumes start, thousands of cycles later.
    EXPECT_LT(counter_read_latency, 250u)
        << "config pipeline blocked behind a parked produce";
}

TEST(MapleEdge, UnknownOpcodesAreIgnoredNotFatal)
{
    EdgeFixture f;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.openOne(c);
        // Stores/loads with unused opcodes must be tolerated (forward
        // compatibility: the page encodes 64+64 opcode slots).
        co_await c.store(core::encodeOp(f.api.base(), 0, 45), 0xabcd);
        std::uint64_t v = co_await c.load(core::encodeOp(f.api.base(), 0, 13));
        EXPECT_EQ(v, 0u);
        // The device still works afterwards.
        co_await f.api.produce(c, 0, 9);
        EXPECT_EQ(co_await f.api.consume(c, 0), 9u);
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 1'000'000);
}

TEST(MapleEdge, FaultVaddrDebugRegisterLatchesLastFault)
{
    EdgeFixture f;
    sim::Addr lazy = f.proc.allocLazy(mem::kPageSize, "lazy");
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.openOne(c, 8, 8);
        co_await f.api.producePtr(c, 0, lazy + 0x88);
        (void)co_await f.api.consume(c, 0);
        std::uint64_t fva = co_await c.load(
            core::encodeLoad(f.api.base(), 0, core::LoadOp::FaultVaddr));
        EXPECT_EQ(fva, lazy + 0x88);
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 10'000'000);
    EXPECT_EQ(f.soc.maple().counter(Counter::PageFaults), 1u);
}

TEST(MapleEdge, QueueConfigDebugReadReflectsGeometry)
{
    EdgeFixture f;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 2, 24, 8);
        std::uint64_t cfg = co_await c.load(
            core::encodeLoad(f.api.base(), 1, core::LoadOp::QueueConfig));
        EXPECT_EQ(cfg >> 8, 24u);
        EXPECT_EQ(cfg & 0xff, 8u);
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 1'000'000);
}

TEST(MapleEdge, ReconfigurationChangesGeometryAndDropsState)
{
    EdgeFixture f;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.openOne(c, 8, 8);
        co_await f.api.produce(c, 0, 42);
        co_await f.api.init(c, 4, 16, 4);  // reconfigure wipes everything
        bool ok = co_await f.api.open(c, 3);
        EXPECT_TRUE(ok);
        EXPECT_EQ(co_await f.api.occupancy(c, 0), 0u);
        co_await f.api.produce(c, 3, 7);
        EXPECT_EQ(co_await f.api.consume(c, 3), 7u);
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 1'000'000);
}

TEST(MapleEdge, SpeculativePrefetchOpViaApi)
{
    EdgeFixture f;
    sim::Addr a = f.proc.alloc(4096, "A");
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.prefetch(c, a + 128);
        co_await c.storeFence();
        co_await sim::delay(f.soc.eq(), 2000);
    };
    f.soc.run({sim::spawn(t(f.soc.core(0)))}, 1'000'000);
    auto pa = f.proc.pageTable().translate(a + 128, mem::Perms{});
    ASSERT_TRUE(pa.has_value());
    EXPECT_TRUE(f.soc.llc().probe(*pa));
    EXPECT_EQ(f.soc.maple().counter(Counter::PrefetchesIssued), 1u);
}
