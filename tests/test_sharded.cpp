/**
 * @file
 * Tests for the sharded multi-threaded simulation engine (sim/sharded) and
 * its integrations: Soc host_threads routing, SocGrid multi-chip runs, and
 * cross-domain link ports.
 *
 * The load-bearing guarantee is *bit-identity across host thread counts*:
 * --threads=N must produce byte-for-byte the same simulation as
 * --threads=1. As in test_ckpt, the strongest form of that check is
 * comparing full end-of-run snapshots — any diverged counter, cache line,
 * RNG draw or queue slot shows up. Engine-level tests additionally pin the
 * deterministic cross-domain merge order (cycle, src domain, ticket) and
 * the conservative-window contract (in-window posts must land beyond the
 * window, zero-lookahead channels are rejected).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#ifdef __SANITIZE_ADDRESS__
#define MAPLE_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MAPLE_TEST_ASAN 1
#endif
#endif
#ifdef MAPLE_TEST_ASAN
#include <sanitizer/lsan_interface.h>
#endif

#include "core/maple_runtime.hpp"
#include "harness/scenario.hpp"
#include "mem/port.hpp"
#include "mem/resil.hpp"
#include "mem/shard_port.hpp"
#include "os/maple_driver.hpp"
#include "sim/coro.hpp"
#include "sim/error.hpp"
#include "sim/sharded.hpp"
#include "soc/grid.hpp"
#include "soc/soc.hpp"

using namespace maple;
using sim::Cycle;
using sim::EventQueue;
using sim::ShardedEngine;

namespace {

// ---------------------------------------------------------------------------
// Engine core: windows, merge order, conservative contract
// ---------------------------------------------------------------------------

TEST(ShardedEngine, SingleDomainMatchesPlainQueueRun)
{
    // The engine path over one domain must execute the exact same event
    // sequence as a plain eq.run(): same executed count, same final clock,
    // same order.
    auto seed = [](EventQueue &eq, std::vector<Cycle> &fired) {
        for (Cycle c : {5u, 1u, 1u, 900u, 70'000u}) {
            eq.schedule(c, [&fired, &eq] { fired.push_back(eq.now()); });
        }
        eq.schedule(10, [&eq, &fired] {
            eq.scheduleIn(3, [&fired, &eq] { fired.push_back(eq.now()); });
        });
    };
    EventQueue plain;
    std::vector<Cycle> plain_fired;
    seed(plain, plain_fired);
    EXPECT_TRUE(plain.run());

    EventQueue sharded;
    std::vector<Cycle> sharded_fired;
    seed(sharded, sharded_fired);
    ShardedEngine engine;
    engine.addDomain(sharded);
    EXPECT_TRUE(engine.run());

    EXPECT_EQ(sharded_fired, plain_fired);
    EXPECT_EQ(sharded.now(), plain.now());
    EXPECT_EQ(sharded.executed(), plain.executed());
    EXPECT_GT(engine.quanta(), 1u) << "70k-cycle span needs several quanta";
}

TEST(ShardedEngine, CrossDomainMergeOrderIsCycleSrcTicket)
{
    constexpr Cycle kLat = 16;
    ShardedEngine engine;
    EventQueue eq0, eq1, eq2;
    engine.addDomain(eq0, "a");
    engine.addDomain(eq1, "b");
    engine.addDomain(eq2, "c");
    engine.declareChannelLatency(kLat);

    // Domains 0 and 1 both post to domain 2 inside the same window. The
    // arrival order at domain 2 must be (cycle, src, ticket) regardless of
    // which domain's window ran first.
    std::vector<std::string> order;
    auto tag = [&order](std::string t) {
        return [&order, t = std::move(t)] { order.push_back(t); };
    };
    // Post from domain 1 first in wall-clock terms (it is seeded earlier in
    // its own queue) to prove src id, not post time, decides ties.
    eq1.schedule(1, [&] {
        engine.post(1, 2, 100, tag("src1#0"));
        engine.post(1, 2, 99, tag("src1-early"));
    });
    eq0.schedule(2, [&] {
        engine.post(0, 2, 100, tag("src0#0"));
        engine.post(0, 2, 100, tag("src0#1"));
    });
    EXPECT_TRUE(engine.run());
    EXPECT_EQ(order, (std::vector<std::string>{"src1-early", "src0#0",
                                               "src0#1", "src1#0"}));
    EXPECT_EQ(engine.messagesMerged(), 4u);
    EXPECT_EQ(eq2.now(), 100u);
}

TEST(ShardedEngine, ExternalPostsDeliverInTicketOrder)
{
    ShardedEngine engine;
    EventQueue eq;
    engine.addDomain(eq);
    std::vector<int> order;
    engine.post(ShardedEngine::kExternalSrc, 0, 10, [&] { order.push_back(1); });
    engine.post(ShardedEngine::kExternalSrc, 0, 10, [&] { order.push_back(2); });
    engine.post(ShardedEngine::kExternalSrc, 0, 5, [&] { order.push_back(0); });
    EXPECT_EQ(engine.pendingMessages(), 3u);
    EXPECT_TRUE(engine.run());
    EXPECT_EQ(engine.pendingMessages(), 0u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ShardedEngine, HostPostBehindTheDestinationClockIsClampedUp)
{
    // Between runs the domain clocks rest at their own drain points; a post
    // computed from a lagging clock must still deliver (at the destination's
    // clock), not throw "delivered into the past".
    ShardedEngine engine;
    EventQueue lagging, ahead;
    engine.addDomain(lagging);
    engine.addDomain(ahead);
    ahead.schedule(500, [] {});
    EXPECT_TRUE(engine.run());
    ASSERT_EQ(ahead.now(), 500u);
    ASSERT_EQ(lagging.now(), 0u);

    Cycle delivered = 0;
    engine.post(0, 1, lagging.now() + 10, [&] { delivered = ahead.now(); });
    EXPECT_TRUE(engine.run());
    EXPECT_EQ(delivered, 500u);
}

TEST(ShardedEngine, InWindowPostInsideTheWindowIsRejected)
{
    ShardedEngine engine;
    EventQueue eq0, eq1;
    engine.addDomain(eq0);
    engine.addDomain(eq1);
    engine.declareChannelLatency(16);
    // A post that lands inside the current window would let one domain's
    // window depend on another's — the conservative contract forbids it.
    eq0.schedule(1, [&] { engine.post(0, 1, eq0.now() + 1, [] {}); });
    EXPECT_THROW(engine.run(), sim::ConfigError);
}

TEST(ShardedEngine, ZeroLatencyChannelIsRejected)
{
    ShardedEngine engine;
    EXPECT_THROW(engine.declareChannelLatency(0), sim::ConfigError);
}

TEST(ShardedEngine, QuantumBeyondLookaheadIsRejected)
{
    ShardedEngine engine;
    EventQueue eq;
    engine.addDomain(eq);
    engine.declareChannelLatency(8);
    eq.schedule(1, [] {});
    ShardedEngine::RunOptions ro;
    ro.quantum = 9;  // > lookahead: a window could outrun the channel
    EXPECT_THROW(engine.run(ro), sim::ConfigError);
    ro.quantum = 8;
    EXPECT_TRUE(engine.run(ro));
}

TEST(ShardedEngine, MaxCyclesEarlyStopMirrorsEventQueueContract)
{
    ShardedEngine engine;
    EventQueue eq0, eq1;
    engine.addDomain(eq0);
    engine.addDomain(eq1);
    bool fired = false;
    eq0.schedule(1000, [&] { fired = true; });

    ShardedEngine::RunOptions ro;
    ro.max_cycles = 100;
    EXPECT_FALSE(engine.run(ro));
    EXPECT_FALSE(fired);
    // Early stop advances a non-drained domain's clock to the bound, exactly
    // like EventQueue::run(max_cycles) — continuous time for back-to-back
    // runs. An idle queue is a no-op there, so the empty domain stays put.
    EXPECT_EQ(eq0.now(), 100u);
    EXPECT_EQ(eq1.now(), 0u);

    EXPECT_TRUE(engine.run());
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq0.now(), 1000u);
}

TEST(ShardedEngine, DomainErrorsSurfaceInDomainIdOrder)
{
    ShardedEngine engine;
    EventQueue eq0, eq1;
    engine.addDomain(eq0, "first");
    engine.addDomain(eq1, "second");
    // Both domains throw in the same window; the surfaced error must be the
    // lowest domain id's, independent of scheduling.
    eq1.schedule(1, [] { throw std::runtime_error("second"); });
    eq0.schedule(1, [] { throw std::runtime_error("first"); });
    try {
        engine.run();
        FAIL() << "expected the domain error to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ShardedEngine, BoundaryHookSeesQuiescedWindowEnds)
{
    ShardedEngine engine;
    EventQueue eq;
    engine.addDomain(eq);
    eq.schedule(5, [] {});
    eq.schedule(200'000, [] {});
    std::vector<Cycle> ends;
    engine.setBoundaryHook([&](Cycle end) { ends.push_back(end); });
    EXPECT_TRUE(engine.run());
    ASSERT_EQ(ends.size(), engine.quanta());
    for (size_t i = 1; i < ends.size(); ++i)
        EXPECT_LT(ends[i - 1], ends[i]);
    EXPECT_GE(ends.back(), 200'000u);
}

// ---------------------------------------------------------------------------
// Determinism: the same message storm, any thread count
// ---------------------------------------------------------------------------

struct StormState {
    std::vector<std::unique_ptr<EventQueue>> eqs;
    std::vector<std::uint64_t> hash;  ///< per-domain execution fingerprint
};

void
stormToken(ShardedEngine &engine, StormState &st, unsigned dom, unsigned hops)
{
    EventQueue &eq = *st.eqs[dom];
    std::uint64_t &h = st.hash[dom];
    h = (h ^ (eq.now() * 0x9e3779b97f4a7c15ull + dom)) * 0x100000001b3ull;
    // Some purely local follow-up work...
    if (hops % 3 == 0)
        eq.scheduleIn(1 + h % 7,
                      [&st, dom] { st.hash[dom] ^= st.eqs[dom]->now(); });
    // ...and a cross-domain hop until the token dies.
    if (hops < 48) {
        unsigned dst = (dom + 1 + hops % 2) % static_cast<unsigned>(st.eqs.size());
        Cycle when = eq.now() + 20 + h % 9;
        engine.post(dom, dst, when, [&engine, &st, dst, hops] {
            stormToken(engine, st, dst, hops + 1);
        });
    }
}

/** Fingerprints of a 4-domain message storm driven by @p threads workers. */
std::vector<std::uint64_t>
runStorm(unsigned threads)
{
    constexpr unsigned kDomains = 4;
    ShardedEngine engine;
    StormState st;
    for (unsigned d = 0; d < kDomains; ++d) {
        st.eqs.push_back(std::make_unique<EventQueue>());
        engine.addDomain(*st.eqs.back());
        st.hash.push_back(0x243f6a8885a308d3ull + d);
    }
    engine.declareChannelLatency(20);
    for (unsigned d = 0; d < kDomains; ++d) {
        for (unsigned t = 0; t < 6; ++t) {
            engine.post(ShardedEngine::kExternalSrc, d, 1 + d + 3 * t,
                        [&engine, &st, d] { stormToken(engine, st, d, 0); });
        }
    }
    ShardedEngine::RunOptions ro;
    ro.threads = threads;
    EXPECT_TRUE(engine.run(ro));
    std::vector<std::uint64_t> fp = st.hash;
    for (const auto &eq : st.eqs) {
        fp.push_back(eq->now());
        fp.push_back(eq->executed());
    }
    fp.push_back(engine.messagesMerged());
    fp.push_back(engine.quanta());
    return fp;
}

TEST(ShardedEngine, MessageStormIsByteIdenticalAcrossThreadCounts)
{
    std::vector<std::uint64_t> ref = runStorm(1);
    EXPECT_EQ(runStorm(2), ref);
    EXPECT_EQ(runStorm(4), ref);
    EXPECT_EQ(runStorm(16), ref) << "threads clamp to the domain count";
}

// ---------------------------------------------------------------------------
// CrossDomainPort: request/response across the BSP boundary
// ---------------------------------------------------------------------------

TEST(CrossDomainPort, RoundTripCostsTwoLinkHopsPlusService)
{
    constexpr Cycle kLink = 32;
    ShardedEngine engine;
    EventQueue eq0, eq1;
    engine.addDomain(eq0);
    engine.addDomain(eq1);
    mem::FixedLatencyMem target(eq1, 8);
    mem::CrossDomainPort link(engine, 0, eq0, 1, eq1, target, kLink);
    EXPECT_EQ(link.linkLatency(), kLink);
    EXPECT_EQ(engine.lookahead(), kLink);

    Cycle done_at = 0;
    auto client = [&]() -> sim::Task<void> {
        co_await sim::delay(eq0, 3);
        mem::MemRequest req = mem::MemRequest::make(
            eq0, mem::RequesterClass::Core, 0, 0x1000, 16,
            mem::AccessKind::Read);
        co_await link.request(req);
        done_at = eq0.now();
    };
    sim::Join j = sim::spawn(client());
    EXPECT_TRUE(engine.run());
    EXPECT_TRUE(j.done());
    j.get();
    // Issue at 3, one hop out (32), 8 cycles of service, one hop back (32).
    EXPECT_EQ(done_at, 3u + kLink + 8u + kLink);
}

// ---------------------------------------------------------------------------
// Soc integration: cfg.host_threads routes run() through the engine
// ---------------------------------------------------------------------------

constexpr std::uint32_t kN = 512;

struct GatherAddrs {
    sim::Addr a = 0, b = 0, out = 0;
};

GatherAddrs
setupGather(soc::Soc &soc, os::Process &proc, core::MapleApi &api)
{
    GatherAddrs at;
    at.a = proc.alloc(kN * 4, "A");
    at.b = proc.alloc(kN * 4, "B");
    at.out = proc.alloc(kN * 4, "out");
    for (std::uint32_t i = 0; i < kN; ++i) {
        proc.writeScalar<std::uint32_t>(at.a + 4 * i, i * 3);
        proc.writeScalar<std::uint32_t>(at.b + 4 * i, (i * 2654435761u) % kN);
    }
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 32, 4);
        bool ok = co_await api.open(c, 0);
        MAPLE_ASSERT(ok, "queue open failed");
    };
    soc.run({sim::spawn(setup(soc.core(0)))});
    return at;
}

sim::Task<void>
accessThread(cpu::Core &core, core::MapleApi &api, GatherAddrs at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t idx = co_await core.load(at.b + 4 * i, 4);
        co_await api.producePtr(core, 0, at.a + 4 * idx);
    }
}

sim::Task<void>
executeThread(cpu::Core &core, core::MapleApi &api, GatherAddrs at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t v = co_await api.consumeReliable(core, 0);
        co_await core.compute(1);
        co_await core.store(at.out + 4 * i, v + 1, 4);
    }
}

/**
 * Run the MAPLE-decoupled gather on one Soc with @p host_threads (and, when
 * @p faulty, soft NoC/DRAM fault injection live) and return the full
 * end-of-run snapshot plus the final clock.
 */
std::string
gatherSnapshot(unsigned host_threads, bool faulty, Cycle &cycles)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.host_threads = host_threads;
    if (faulty) {
        cfg.fault.seed = 77;
        cfg.fault.dram = {0.05, 400};
        cfg.fault.noc = {0.01, 16};
    }
    soc::Soc soc(cfg);
    os::Process &proc = soc.createProcess("gather");
    core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
    GatherAddrs at = setupGather(soc, proc, api);
    soc.run({sim::spawn(accessThread(soc.core(0), api, at)),
             sim::spawn(executeThread(soc.core(1), api, at))});
    cycles = soc.eq().now();
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint32_t idx = (i * 2654435761u) % kN;
        EXPECT_EQ(proc.readScalar<std::uint32_t>(at.out + 4 * i), idx * 3 + 1);
    }
    std::stringstream fin;
    soc.snapshot(fin);
    return fin.str();
}

TEST(ShardedSoc, QuickstartGatherIsByteIdenticalAcrossHostThreads)
{
    Cycle cycles1 = 0, cycles4 = 0;
    std::string snap1 = gatherSnapshot(1, false, cycles1);
    std::string snap4 = gatherSnapshot(4, false, cycles4);
    EXPECT_EQ(cycles4, cycles1);
    EXPECT_EQ(snap4, snap1) << "host_threads=4 diverged from host_threads=1";
}

TEST(ShardedSoc, FaultSeededRunIsByteIdenticalAcrossHostThreads)
{
    // Fault injection draws from per-component RNG streams; thread count
    // must not perturb a single draw.
    Cycle cycles1 = 0, cycles4 = 0;
    std::string snap1 = gatherSnapshot(1, true, cycles1);
    std::string snap4 = gatherSnapshot(4, true, cycles4);
    EXPECT_EQ(cycles4, cycles1);
    EXPECT_EQ(snap4, snap1);
    Cycle clean = 0;
    EXPECT_NE(gatherSnapshot(1, false, clean), snap1)
        << "sanity: the faulty run must differ from the clean one";
}

TEST(ShardedSoc, ScenarioMeasureMatchesAcrossHostThreadsBothTechniques)
{
    for (const char *technique : {"doall", "maple"}) {
        harness::ScenarioSpec s;
        s.rows = 128;
        s.warm_rows = 32;
        s.technique = technique;

        std::uint64_t checksum[2];
        Cycle end_cycle[2];
        std::string snap[2];
        unsigned threads[2] = {1, 4};
        for (int i = 0; i < 2; ++i) {
            s.host_threads = threads[i];
            soc::Soc soc(harness::scenarioSocConfig(s));
            harness::warmScenario(soc, s);
            harness::ScenarioResult r = harness::measureScenario(soc, s);
            EXPECT_TRUE(r.result.valid) << technique;
            checksum[i] = r.result.checksum;
            end_cycle[i] = r.end_cycle;
            std::stringstream fin;
            soc.snapshot(fin);
            snap[i] = fin.str();
        }
        EXPECT_EQ(checksum[1], checksum[0]) << technique;
        EXPECT_EQ(end_cycle[1], end_cycle[0]) << technique;
        EXPECT_EQ(snap[1], snap[0]) << technique;
    }
}

TEST(ShardedSoc, RecoveryReplayIsByteIdenticalAcrossHostThreads)
{
    // Hard faults + the OS recovery driver (retry, replay) on top of the
    // sharded run path: the heaviest determinism test we have.
    auto recoveryRun = [](unsigned host_threads, Cycle &cycles,
                          std::uint64_t &recoveries) {
        constexpr unsigned n = 128;
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.host_threads = host_threads;
        cfg.fault.seed = 5;
        cfg.fault.hard_spad = {0.02, 1};
        os::RecoveryConfig rc;
        rc.enabled = true;
        rc.recovery_budget = 64;
        soc::Soc soc(cfg);
        os::Process &proc = soc.createProcess("recovery");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple(), rc);

        sim::Addr a = proc.alloc(n * 8, "A");
        for (unsigned i = 0; i < n; ++i)
            proc.writeScalar<std::uint64_t>(a + 8 * i, 100 + 3 * i);
        auto producer = [&](cpu::Core &c) -> sim::Task<void> {
            co_await api.init(c, 1, 8, 8);
            EXPECT_TRUE(co_await api.open(c, 0));
            for (unsigned i = 0; i < n; ++i)
                EXPECT_TRUE(co_await api.producePtrReliable(c, 0, a + 8 * i));
        };
        auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
            co_await sim::delay(soc.eq(), 2'000);
            for (unsigned i = 0; i < n; ++i) {
                std::uint64_t v = co_await api.consumeReliable(c, 0);
                EXPECT_EQ(v, 100 + 3 * static_cast<std::uint64_t>(i));
            }
        };
        std::vector<sim::Join> joins;
        joins.push_back(sim::spawn(producer(soc.core(0))));
        joins.push_back(sim::spawn(consumer(soc.core(1))));
        cycles = soc.run(std::move(joins), 200'000'000);
        recoveries = api.driver()->recoveries();
        std::stringstream fin;
        soc.snapshot(fin);
        return fin.str();
    };
    Cycle cycles1 = 0, cycles4 = 0;
    std::uint64_t rec1 = 0, rec4 = 0;
    std::string snap1 = recoveryRun(1, cycles1, rec1);
    std::string snap4 = recoveryRun(4, cycles4, rec4);
    EXPECT_GT(rec1, 0u) << "rate 0.02 over 128 fetches must fire";
    EXPECT_EQ(rec4, rec1);
    EXPECT_EQ(cycles4, cycles1);
    EXPECT_EQ(snap4, snap1);
}

TEST(ShardedSoc, ResilRunIsByteIdenticalAcrossHostThreads)
{
    // Soft errors on top of the sharded run path: the SECDED model corrects
    // L1 single-bit flips inline, and DRAM multi-bit flips poison lines that
    // core-class consumers turn into machine-check containment (flush,
    // page retire, MCA latch). Every draw, correction bubble and
    // containment must land on the same cycle regardless of host thread
    // count. Core-only traffic keeps the MAPLE recovery driver (and its
    // watchdog owner masks, which block snapshots) out of the picture.
    auto resilRun = [](unsigned host_threads, Cycle &cycles,
                       std::uint64_t &corrected, std::uint64_t &contained) {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.host_threads = host_threads;
        cfg.resil.ecc = true;
        cfg.fault.seed = 31;
        cfg.fault.bitflip_l1 = {0.01, 1};    // correctable: latency only
        cfg.fault.bitflip_dram = {0.05, 2};  // uncorrectable: poison
        soc::Soc soc(cfg);
        os::Process &proc = soc.createProcess("resil");
        sim::Addr a = proc.alloc(kN * 4, "A");
        sim::Addr out = proc.alloc(kN * 4, "out");
        for (std::uint32_t i = 0; i < kN; ++i)
            proc.writeScalar<std::uint32_t>(a + 4 * i, i * 3);
        auto gather = [&](cpu::Core &c) -> sim::Task<void> {
            for (std::uint32_t i = 0; i < kN; ++i) {
                std::uint64_t v = co_await c.load(a + 4 * i, 4);
                co_await c.store(out + 4 * i, v + 1, 4);
            }
        };
        cycles = soc.run({sim::spawn(gather(soc.core(0))),
                          sim::spawn(gather(soc.core(1)))},
                         200'000'000);
        for (std::uint32_t i = 0; i < kN; ++i)
            EXPECT_EQ(proc.readScalar<std::uint32_t>(out + 4 * i), i * 3 + 1)
                << "containment must hand back repaired data (element " << i
                << ")";
        corrected = soc.resil()->correctedTotal();
        contained = soc.resil()->containments();
        std::stringstream fin;
        soc.snapshot(fin);
        return fin.str();
    };
    Cycle cycles1 = 0, cycles4 = 0;
    std::uint64_t cor1 = 0, cor4 = 0, con1 = 0, con4 = 0;
    std::string snap1 = resilRun(1, cycles1, cor1, con1);
    std::string snap4 = resilRun(4, cycles4, cor4, con4);
    EXPECT_GT(cor1, 0u) << "1% over the gather must correct something";
    EXPECT_GT(con1, 0u) << "5% DRAM poison must trigger a containment";
    EXPECT_EQ(cor4, cor1);
    EXPECT_EQ(con4, con1);
    EXPECT_EQ(cycles4, cycles1);
    EXPECT_EQ(snap4, snap1);
}

TEST(ShardedSoc, HostThreadsComeFromTheEnvironment)
{
    ::setenv("MAPLE_THREADS", "4", 1);
    soc::Soc soc(soc::SocConfig::fpga());
    EXPECT_EQ(soc.config().host_threads, 4u);
    ::setenv("MAPLE_THREADS", "not-a-number", 1);
    EXPECT_EQ(soc::hostThreadsFromEnv(2), 2u) << "bad value keeps fallback";
    ::unsetenv("MAPLE_THREADS");
    EXPECT_EQ(soc::hostThreadsFromEnv(3), 3u);
}

// ---------------------------------------------------------------------------
// SocGrid: multi-chip runs with cross-chip link traffic
// ---------------------------------------------------------------------------

constexpr unsigned kChips = 3;

harness::ScenarioSpec
chipSpec(unsigned chip)
{
    harness::ScenarioSpec s;
    s.rows = 96;
    s.warm_rows = 24;
    s.seed = 1 + chip;  // distinct dataset per chip
    return s;
}

/** Remote reads against the next chip's LLC, interleaved with the kernel. */
sim::Task<void>
crossTraffic(soc::SocGrid &grid, mem::CrossDomainPort &link, unsigned chip)
{
    EventQueue &eq = grid.soc(chip).eq();
    for (int i = 0; i < 12; ++i) {
        mem::MemRequest req = mem::MemRequest::make(
            eq, mem::RequesterClass::Core, chip, 4096 + 256 * i, 16,
            mem::AccessKind::Read);
        co_await link.request(req);
    }
}

struct GridOutcome {
    std::vector<std::string> snaps;  ///< one full snapshot per chip
    std::vector<std::uint64_t> words;

    bool operator==(const GridOutcome &) const = default;
};

GridOutcome
runGrid(unsigned threads)
{
    soc::SocGridConfig gc = soc::SocGridConfig::uniform(
        soc::SocConfig::fpga(), kChips);
    gc.host_threads = threads;
    soc::SocGrid grid(gc);
    std::vector<mem::CrossDomainPort *> links;
    for (unsigned c = 0; c < kChips; ++c)
        links.push_back(&grid.linkPort(c, (c + 1) % kChips));
    for (unsigned c = 0; c < kChips; ++c)
        harness::warmScenario(grid.soc(c), chipSpec(c));

    std::vector<Cycle> starts;
    std::vector<sim::Join> joins;
    for (unsigned c = 0; c < kChips; ++c) {
        starts.push_back(grid.soc(c).eq().now());
        for (sim::Join &j :
             harness::spawnScenarioDoall(grid.soc(c), chipSpec(c)))
            joins.push_back(std::move(j));
        joins.push_back(sim::spawn(crossTraffic(grid, *links[c], c)));
    }
    GridOutcome out;
    out.words.push_back(grid.run(std::move(joins)));
    for (unsigned c = 0; c < kChips; ++c) {
        harness::ScenarioResult r = harness::collectScenarioResult(
            grid.soc(c), chipSpec(c), starts[c]);
        EXPECT_TRUE(r.result.valid) << "chip " << c;
        out.words.push_back(r.result.checksum);
        out.words.push_back(r.end_cycle);
        std::stringstream fin;
        grid.snapshot(c, fin);
        out.snaps.push_back(fin.str());
    }
    out.words.push_back(grid.engine().messagesMerged());
    return out;
}

TEST(ShardedGrid, MultiChipRunIsByteIdenticalAcrossThreadCounts)
{
    GridOutcome ref = runGrid(1);
    EXPECT_GT(ref.words.back(), 0u) << "cross-chip traffic must have flowed";
    EXPECT_EQ(runGrid(2), ref);
    EXPECT_EQ(runGrid(4), ref);
}

TEST(ShardedGrid, SnapshotRestoreRunMatchesUninterruptedRun)
{
    // Grid A: warm, snapshot every chip at the phase boundary, then measure.
    std::vector<std::string> warm_images;
    GridOutcome direct;
    {
        soc::SocGridConfig gc = soc::SocGridConfig::uniform(
            soc::SocConfig::fpga(), kChips);
        soc::SocGrid grid(gc);
        for (unsigned c = 0; c < kChips; ++c)
            harness::warmScenario(grid.soc(c), chipSpec(c));
        for (unsigned c = 0; c < kChips; ++c) {
            std::stringstream ss;
            grid.snapshot(c, ss);
            warm_images.push_back(ss.str());
        }
        std::vector<sim::Join> joins;
        for (unsigned c = 0; c < kChips; ++c)
            for (sim::Join &j :
                 harness::spawnScenarioDoall(grid.soc(c), chipSpec(c)))
                joins.push_back(std::move(j));
        grid.run(std::move(joins));
        for (unsigned c = 0; c < kChips; ++c) {
            std::stringstream fin;
            grid.snapshot(c, fin);
            direct.snaps.push_back(fin.str());
            direct.words.push_back(grid.soc(c).eq().now());
        }
    }
    // Grid B: restore every chip from the warm images and run the same
    // measure phase with 2 host threads.
    {
        soc::SocGridConfig gc = soc::SocGridConfig::uniform(
            soc::SocConfig::fpga(), kChips);
        gc.host_threads = 2;
        soc::SocGrid grid(gc);
        for (unsigned c = 0; c < kChips; ++c) {
            std::istringstream ss(warm_images[c]);
            grid.restore(c, ss);
            EXPECT_GT(grid.soc(c).eq().now(), 0u);
        }
        std::vector<sim::Join> joins;
        for (unsigned c = 0; c < kChips; ++c)
            for (sim::Join &j :
                 harness::spawnScenarioDoall(grid.soc(c), chipSpec(c)))
                joins.push_back(std::move(j));
        grid.run(std::move(joins));
        for (unsigned c = 0; c < kChips; ++c) {
            EXPECT_EQ(grid.soc(c).eq().now(), direct.words[c]) << "chip " << c;
            std::stringstream fin;
            grid.snapshot(c, fin);
            EXPECT_EQ(fin.str(), direct.snaps[c])
                << "restored chip " << c << " diverged";
        }
    }
}

TEST(ShardedGrid, DeadlockReportsNameTheStuckChip)
{
#ifdef MAPLE_TEST_ASAN
    // The stuck coroutine's frame is stranded by design once the bounded
    // run gives up on it.
    __lsan::ScopedDisabler no_leak_check;
#endif
    soc::SocConfig proto = soc::SocConfig::fpga();
    proto.watchdog.enabled = false;
    soc::SocGridConfig gc = soc::SocGridConfig::uniform(proto, 2);
    soc::SocGrid grid(gc);
    auto stuck = [&]() -> sim::Task<void> {
        co_await sim::delay(grid.soc(1).eq(), 1'000'000);
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(stuck()));
    try {
        grid.run(std::move(joins), 1'000);  // bound well short of the delay
        FAIL() << "expected DeadlockError";
    } catch (const sim::DeadlockError &e) {
        EXPECT_NE(std::string(e.what()).find("(fpga).1"), std::string::npos)
            << "diagnostic names the chip with pending work: " << e.what();
    }
}

}  // namespace
