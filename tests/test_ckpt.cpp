/**
 * @file
 * Determinism tests for the snapshot/restore subsystem (src/ckpt).
 *
 * The load-bearing guarantee: restore-then-run is *byte-identical* to an
 * uninterrupted run. Rather than compare a hand-picked subset of state, the
 * bit-identity tests compare full end-of-run snapshots — if any counter,
 * cache line, TLB entry, RNG stream, queue slot or trace event diverged,
 * the snapshots differ.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ckpt/serial.hpp"
#include "ckpt/snapshot.hpp"
#include "core/maple_runtime.hpp"
#include "mem/coherence.hpp"
#include "mem/resil.hpp"
#include "sim/coro.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "soc/soc.hpp"

using namespace maple;

namespace {

TEST(CkptSerial, ScalarsRoundTrip)
{
    std::stringstream ss;
    ckpt::Sink out(ss);
    out.u8(0xab);
    out.u32(0xdeadbeefu);
    out.u64(0x0123456789abcdefull);
    out.b(true);
    out.f64(-0.1);
    out.str("hello");
    out.vecU64({1, 2, 3});

    ckpt::Source in(ss);
    EXPECT_EQ(in.u8(), 0xab);
    EXPECT_EQ(in.u32(), 0xdeadbeefu);
    EXPECT_EQ(in.u64(), 0x0123456789abcdefull);
    EXPECT_TRUE(in.b());
    EXPECT_EQ(in.f64(), -0.1);
    EXPECT_EQ(in.str(), "hello");
    EXPECT_EQ(in.vecU64(), (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_TRUE(in.atEof());
}

TEST(CkptSerial, TruncatedStreamThrows)
{
    std::stringstream ss;
    ckpt::Sink out(ss);
    out.u32(7);
    ckpt::Source in(ss);
    (void)in.u8();
    (void)in.u8();
    EXPECT_THROW((void)in.u64(), ckpt::SnapshotError);
}

TEST(CkptRng, MidDrawSaveRestoreResumesStream)
{
    sim::Rng rng(20260809);
    for (int i = 0; i < 1000; ++i)
        (void)rng.next();

    sim::Rng::State mid = rng.state();
    std::vector<std::uint64_t> expect;
    for (int i = 0; i < 100; ++i)
        expect.push_back(rng.next());

    sim::Rng resumed(1);  // different seed: state must fully override it
    resumed.setState(mid);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(resumed.next(), expect[static_cast<size_t>(i)]) << "draw " << i;
}

TEST(CkptStats, StatGroupRoundTripKeepsBorrowedPointers)
{
    sim::StatGroup g("g");
    sim::Counter &hits = g.counter("hits");
    sim::Average &lat = g.average("lat");
    sim::Histogram &dist = g.histogram("dist", 8.0, 16);
    hits.inc(3);
    lat.sample(2.5);
    lat.sample(7.5);
    dist.sample(20.0);

    std::stringstream ss;
    ckpt::Sink out(ss);
    g.saveState(out);

    // Mutate after the save; loadState must restore the saved values through
    // the *same* objects (components hold borrowed pointers into the group).
    hits.inc(100);
    lat.sample(1e9);
    dist.sample(1e9);

    ckpt::Source in(ss);
    g.loadState(in);
    EXPECT_EQ(hits.value(), 3u);
    EXPECT_EQ(lat.count(), 2u);
    EXPECT_EQ(lat.mean(), 5.0);
    EXPECT_EQ(dist.total(), 1u);
    EXPECT_EQ(dist.maxSample(), 20.0);
}

sim::Task<void>
idleFor(sim::EventQueue &eq, sim::Cycle cycles)
{
    co_await sim::delay(eq, cycles);
}

TEST(Ckpt, SnapshotRequiresQuiescedSoc)
{
    soc::Soc soc(soc::SocConfig::fpga());
    sim::Join j = sim::spawn(idleFor(soc.eq(), 10));
    ASSERT_GT(soc.eq().pending(), 0u);
    std::stringstream ss;
    EXPECT_THROW(soc.snapshot(ss), ckpt::SnapshotError);

    soc.run({j});
    std::stringstream ok;
    EXPECT_NO_THROW(soc.snapshot(ok));
    EXPECT_GT(ok.str().size(), 0u);
}

TEST(Ckpt, ConfigHashIsStructuralOnly)
{
    soc::SocConfig a = soc::SocConfig::fpga();
    soc::SocConfig b = soc::SocConfig::fpga();
    b.name = "renamed";
    b.trace.enabled = true;
    b.fault.seed = 99;
    EXPECT_EQ(ckpt::configHash(a), ckpt::configHash(b));

    soc::SocConfig c = soc::SocConfig::fpga();
    c.l1.size_bytes *= 2;
    EXPECT_NE(ckpt::configHash(a), ckpt::configHash(c));

    soc::SocConfig d = soc::SocConfig::fpga();
    d.num_cores += 1;
    EXPECT_NE(ckpt::configHash(a), ckpt::configHash(d));
}

TEST(Ckpt, RejectsBadMagicVersionConfigAndTruncation)
{
    soc::Soc src(soc::SocConfig::fpga());
    std::stringstream ss;
    src.snapshot(ss);
    const std::string bytes = ss.str();

    {
        std::string m = bytes;
        m[0] = static_cast<char>(m[0] ^ 0x7f);
        std::istringstream is(m);
        soc::Soc dst(soc::SocConfig::fpga());
        EXPECT_THROW(dst.restore(is), ckpt::SnapshotError);
    }
    {
        std::string m = bytes;
        m[8] = static_cast<char>(0x63);  // format version 99
        std::istringstream is(m);
        soc::Soc dst(soc::SocConfig::fpga());
        EXPECT_THROW(dst.restore(is), ckpt::SnapshotError);
    }
    {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.llc.assoc *= 2;  // structurally different SoC
        std::istringstream is(bytes);
        soc::Soc dst(cfg);
        EXPECT_THROW(dst.restore(is), ckpt::SnapshotError);
    }
    {
        std::istringstream is(bytes.substr(0, bytes.size() / 2));
        soc::Soc dst(soc::SocConfig::fpga());
        EXPECT_THROW(dst.restore(is), ckpt::SnapshotError);
    }
}

TEST(Ckpt, ChecksumFooterCatchesCorruptionAndTruncation)
{
    soc::Soc src(soc::SocConfig::fpga());
    std::stringstream ss;
    src.snapshot(ss);
    const std::string bytes = ss.str();

    // Pristine stream restores.
    {
        std::istringstream is(bytes);
        soc::Soc dst(soc::SocConfig::fpga());
        EXPECT_NO_THROW(dst.restore(is));
    }
    // A flipped payload byte past the header must surface as BadChecksum
    // (structural checks can't see a value-only flip; the footer can).
    // DRAM fill data sits in the large middle of the stream.
    {
        std::string m = bytes;
        m[m.size() / 2] = static_cast<char>(m[m.size() / 2] ^ 0x01);
        std::istringstream is(m);
        soc::Soc dst(soc::SocConfig::fpga());
        EXPECT_THROW(dst.restore(is), ckpt::SnapshotError);
    }
    // A corrupted footer (the recorded hash itself) is a BadChecksum.
    {
        std::string m = bytes;
        m.back() = static_cast<char>(m.back() ^ 0x5a);
        std::istringstream is(m);
        soc::Soc dst(soc::SocConfig::fpga());
        EXPECT_THROW(dst.restore(is), ckpt::SnapshotError::BadChecksum);
    }
    // A stream cut exactly at a section boundary (footer dropped) used to
    // look complete; now it is a typed truncation error.
    {
        // 4 (tag) + 8 (len) + 8 (hash) = the 20-byte footer.
        std::istringstream is(bytes.substr(0, bytes.size() - 20));
        soc::Soc dst(soc::SocConfig::fpga());
        EXPECT_THROW(dst.restore(is), ckpt::SnapshotError::BadChecksum);
    }
}

// ---------------------------------------------------------------------------
// Bit-identity: the quickstart gather, decoupled through MAPLE, with a
// snapshot taken at the phase boundary after queue setup.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kN = 1024;

soc::SocConfig
tracedConfig()
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.trace.enabled = true;
    cfg.trace.report_to_stderr = false;
    cfg.trace.sample_interval = 100;
    return cfg;
}

struct GatherAddrs {
    sim::Addr a = 0, b = 0, out = 0;
};

/** Allocate and fill the gather inputs; run INIT/OPEN on queue 0. */
GatherAddrs
setupGather(soc::Soc &soc, os::Process &proc, core::MapleApi &api)
{
    GatherAddrs at;
    at.a = proc.alloc(kN * 4, "A");
    at.b = proc.alloc(kN * 4, "B");
    at.out = proc.alloc(kN * 4, "out");
    for (std::uint32_t i = 0; i < kN; ++i) {
        proc.writeScalar<std::uint32_t>(at.a + 4 * i, i * 3);
        proc.writeScalar<std::uint32_t>(at.b + 4 * i, (i * 2654435761u) % kN);
    }
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 32, 4);
        bool ok = co_await api.open(c, 0);
        MAPLE_ASSERT(ok, "queue open failed");
    };
    soc.run({sim::spawn(setup(soc.core(0)))});
    return at;
}

sim::Task<void>
accessThread(cpu::Core &core, core::MapleApi &api, GatherAddrs at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t idx = co_await core.load(at.b + 4 * i, 4);
        co_await api.producePtr(core, 0, at.a + 4 * idx);
    }
}

sim::Task<void>
executeThread(cpu::Core &core, core::MapleApi &api, GatherAddrs at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t v = co_await api.consumeReliable(core, 0);
        co_await core.compute(1);
        co_await core.store(at.out + 4 * i, v + 1, 4);
    }
}

void
runGather(soc::Soc &soc, core::MapleApi &api, GatherAddrs at)
{
    soc.run({sim::spawn(accessThread(soc.core(0), api, at)),
             sim::spawn(executeThread(soc.core(1), api, at))});
}

void
checkGatherOutput(os::Process &proc, const GatherAddrs &at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint32_t idx = (i * 2654435761u) % kN;
        ASSERT_EQ(proc.readScalar<std::uint32_t>(at.out + 4 * i), idx * 3 + 1)
            << "output element " << i;
    }
}

TEST(Ckpt, RestoreThenRunIsByteIdenticalToUninterruptedRun)
{
    std::string warm_image;     // snapshot at the setup/measure boundary
    std::string final_a;        // end-of-run snapshot, uninterrupted machine
    sim::Cycle cycles_a = 0;
    GatherAddrs at;
    {
        soc::Soc soc(tracedConfig());
        os::Process &proc = soc.createProcess("quickstart");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        at = setupGather(soc, proc, api);

        std::stringstream warm;
        soc.snapshot(warm);
        warm_image = warm.str();

        runGather(soc, api, at);
        cycles_a = soc.eq().now();
        checkGatherOutput(proc, at);

        std::stringstream fin;
        soc.snapshot(fin);
        final_a = fin.str();
    }

    {
        soc::Soc soc(tracedConfig());
        std::istringstream warm(warm_image);
        soc.restore(warm);
        EXPECT_GT(soc.eq().now(), 0u) << "restore must resume the clock";

        ASSERT_EQ(soc.kernel().processes().size(), 1u);
        os::Process &proc = *soc.kernel().processes()[0];
        // Re-attach re-runs the host-side wiring (MMIO map, device MMU,
        // driver fault handler); all of it is idempotent against restored
        // state, so the warm device TLB survives.
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());

        runGather(soc, api, at);
        EXPECT_EQ(soc.eq().now(), cycles_a);
        checkGatherOutput(proc, at);

        std::stringstream fin;
        soc.snapshot(fin);
        EXPECT_EQ(fin.str(), final_a)
            << "restored-then-run machine state diverged from the "
               "uninterrupted run";
    }
}

TEST(Ckpt, RestoreThenRunWithHostThreadsIsByteIdentical)
{
    // host_threads routes the run through the sharded engine but is not a
    // structural config field (it doesn't enter configHash), so a snapshot
    // taken at 1 thread restores into a 4-thread Soc — and the resumed run
    // must still be byte-identical.
    std::string warm_image, final_1;
    sim::Cycle cycles_1 = 0;
    GatherAddrs at;
    {
        soc::Soc soc(tracedConfig());
        os::Process &proc = soc.createProcess("quickstart");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        at = setupGather(soc, proc, api);
        std::stringstream warm;
        soc.snapshot(warm);
        warm_image = warm.str();
        runGather(soc, api, at);
        cycles_1 = soc.eq().now();
        std::stringstream fin;
        soc.snapshot(fin);
        final_1 = fin.str();
    }
    {
        soc::SocConfig cfg = tracedConfig();
        cfg.host_threads = 4;
        soc::Soc soc(cfg);
        std::istringstream warm(warm_image);
        soc.restore(warm);
        os::Process &proc = *soc.kernel().processes()[0];
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        runGather(soc, api, at);
        EXPECT_EQ(soc.eq().now(), cycles_1);
        checkGatherOutput(proc, at);
        std::stringstream fin;
        soc.snapshot(fin);
        EXPECT_EQ(fin.str(), final_1)
            << "host_threads=4 restore-then-run diverged from host_threads=1";
    }
}

TEST(Ckpt, SnapshotDoesNotPerturbTheRun)
{
    // Reference: run the gather with no snapshot anywhere.
    sim::Cycle ref_cycles = 0;
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("quickstart");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        GatherAddrs at = setupGather(soc, proc, api);
        runGather(soc, api, at);
        ref_cycles = soc.eq().now();
    }
    // Same run, snapshotting at the phase boundary (and discarding it).
    {
        soc::Soc soc(soc::SocConfig::fpga());
        os::Process &proc = soc.createProcess("quickstart");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        GatherAddrs at = setupGather(soc, proc, api);
        std::stringstream ss;
        soc.snapshot(ss);
        runGather(soc, api, at);
        EXPECT_EQ(soc.eq().now(), ref_cycles);
    }
}

// ---------------------------------------------------------------------------
// Resilience state: poisoned ways, MCA banks, backing poison and the scrub
// cursor all ride the snapshot (Section::Resil) and restore into any host
// thread count.
// ---------------------------------------------------------------------------

soc::SocConfig
resilCkptConfig()
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.coherence.mode = mem::CoherenceMode::Msi;
    cfg.resil.ecc = true;
    cfg.resil.scrub_interval = 2000;
    cfg.fault.seed = 21;
    // L1 severity-1 flips (correctable bubbles) and directory severity-2
    // flips (corrupt sharer vectors, MCA records, scrub work). Data-path
    // poison classes stay off: the gather runs MAPLE without the recovery
    // driver, and a poisoned queue slot would zero the output.
    cfg.fault.bitflip_l1 = {0.01, 1};
    cfg.fault.bitflip_dir = {0.03, 2};
    return cfg;
}

/** Everything Section::Resil must carry across a restore. */
struct ResilFingerprint {
    std::uint64_t corrected, uncorrectable, containments, retired, repairs;
    std::uint64_t cursor;
    std::size_t backing;
    std::vector<std::uint64_t> mca_counts;

    bool operator==(const ResilFingerprint &) const = default;

    static ResilFingerprint
    of(const mem::ResilManager &r)
    {
        ResilFingerprint fp{r.correctedTotal(), r.uncorrectableTotal(),
                            r.containments(),  r.retiredPages(),
                            r.scrubRepairs(),  r.scrubCursor(),
                            r.backingPoisonedLines(),
                            {}};
        for (unsigned t = 0; t < r.numTiles(); ++t)
            fp.mca_counts.push_back(r.mca(t).count);
        return fp;
    }
};

TEST(Ckpt, ResilStateRoundTripsThroughSnapshotIntoFourThreads)
{
    std::string warm_image, final_a;
    sim::Cycle cycles_a = 0;
    ResilFingerprint fp_warm{};
    GatherAddrs at;
    {
        soc::Soc soc(resilCkptConfig());
        os::Process &proc = soc.createProcess("quickstart");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        at = setupGather(soc, proc, api);
        runGather(soc, api, at);  // phase 1: accumulate resilience state

        ASSERT_NE(soc.resil(), nullptr);
        // Pin the serialization freight the traffic can't be relied on to
        // leave behind: a sticky backing-poisoned line (parked on an
        // untouched frame so it never enters the data path) and a latched
        // MCA bank.
        soc.resil()->markBackingPoisoned(soc.config().dram_bytes - 64);
        soc.resil()->recordMca(0, mem::ResilStructure::Dram,
                               fault::FaultClass::BitFlipDram,
                               soc.config().dram_bytes - 64);
        fp_warm = ResilFingerprint::of(*soc.resil());
        EXPECT_GE(fp_warm.backing, 1u);
        EXPECT_GE(fp_warm.mca_counts[0], 1u);
        EXPECT_GT(fp_warm.corrected + fp_warm.uncorrectable, 0u)
            << "the snapshot must capture non-trivial resilience state";
        std::stringstream warm;
        soc.snapshot(warm);
        warm_image = warm.str();

        runGather(soc, api, at);  // phase 2
        cycles_a = soc.eq().now();
        checkGatherOutput(proc, at);
        std::stringstream fin;
        soc.snapshot(fin);
        final_a = fin.str();
    }
    {
        // Restore into a 4-thread SoC: the resilience state must arrive
        // intact and the resumed run must stay byte-identical.
        soc::SocConfig cfg = resilCkptConfig();
        cfg.host_threads = 4;
        soc::Soc soc(cfg);
        std::istringstream warm(warm_image);
        soc.restore(warm);
        ASSERT_NE(soc.resil(), nullptr);
        EXPECT_EQ(ResilFingerprint::of(*soc.resil()), fp_warm);

        os::Process &proc = *soc.kernel().processes()[0];
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        runGather(soc, api, at);
        EXPECT_EQ(soc.eq().now(), cycles_a);
        checkGatherOutput(proc, at);
        std::stringstream fin;
        soc.snapshot(fin);
        EXPECT_EQ(fin.str(), final_a)
            << "resil-enabled restore-then-run diverged";
    }
    {
        // The Resil section is a runtime variant axis: the same image
        // restores into a resilience-disabled SoC (section skipped, poison
        // bits inert) without error.
        soc::SocConfig cfg = resilCkptConfig();
        cfg.resil = mem::ResilConfig{};
        cfg.fault = fault::FaultConfig{};
        soc::Soc soc(cfg);
        std::istringstream warm(warm_image);
        soc.restore(warm);
        EXPECT_EQ(soc.resil(), nullptr);
        os::Process &proc = *soc.kernel().processes()[0];
        checkGatherOutput(proc, at);  // phase-1 results restored intact
        // Core traffic over possibly-poisoned restored ways: without a
        // resilience model the poison bit is inert metadata — loads return
        // the (correct) simulated data and the run completes.
        auto sweep = [&](cpu::Core &c) -> sim::Task<void> {
            for (std::uint32_t i = 0; i < kN; ++i) {
                std::uint64_t v = co_await c.load(at.a + 4 * i, 4);
                EXPECT_EQ(v, i * 3ull);
            }
        };
        soc.run({sim::spawn(sweep(soc.core(0)))});
    }
}

TEST(Ckpt, TraceRoundTripsThroughSnapshot)
{
    std::string json_a, csv_a;
    std::string warm_image;
    GatherAddrs at;
    {
        soc::Soc soc(tracedConfig());
        os::Process &proc = soc.createProcess("quickstart");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        at = setupGather(soc, proc, api);
        std::stringstream warm;
        soc.snapshot(warm);
        warm_image = warm.str();
        runGather(soc, api, at);

        std::ostringstream js, cs;
        soc.tracer()->writeJson(js);
        soc.tracer()->writeCsv(cs);
        json_a = js.str();
        csv_a = cs.str();
    }
    {
        soc::Soc soc(tracedConfig());
        std::istringstream warm(warm_image);
        soc.restore(warm);
        os::Process &proc = *soc.kernel().processes()[0];
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        runGather(soc, api, at);

        std::ostringstream js, cs;
        soc.tracer()->writeJson(js);
        soc.tracer()->writeCsv(cs);
        EXPECT_EQ(js.str(), json_a);
        EXPECT_EQ(cs.str(), csv_a);
    }
}

}  // namespace
