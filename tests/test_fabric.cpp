/**
 * @file
 * Tests for the typed memory-request fabric: MemRequest identity, arbitration
 * policies (fifo / rr / core-priority), the PortInterposer's per-requester-
 * class telemetry, class-keyed fault injection, and the golden bit-identity
 * guarantees of the default (fifo) configuration.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/maple_runtime.hpp"
#include "mem/fabric.hpp"
#include "mem/port.hpp"
#include "soc/soc.hpp"
#include "workloads/workload.hpp"

using namespace maple;
using namespace maple::mem;

namespace {

MemRequest
req(sim::EventQueue &eq, RequesterClass cls, sim::Addr a = 0x1000,
    std::uint32_t size = 64, AccessKind kind = AccessKind::Read)
{
    return MemRequest::make(eq, cls, /*tile=*/0, a, size, kind);
}

}  // namespace

// ---------------------------------------------------------------------------
// MemRequest identity
// ---------------------------------------------------------------------------

TEST(MemRequest, MakeStampsIdentityAndIssueCycle)
{
    sim::EventQueue eq;
    MemRequest a = req(eq, RequesterClass::Core);
    MemRequest b = req(eq, RequesterClass::MapleConsume);
    EXPECT_NE(a.id, b.id) << "transaction ids must be unique per queue";
    EXPECT_EQ(a.issue_cycle, eq.now());
    EXPECT_EQ(a.cls, RequesterClass::Core);
    EXPECT_EQ(b.cls, RequesterClass::MapleConsume);
}

TEST(MemRequest, ChildKeepsOriginIdentity)
{
    sim::EventQueue eq;
    MemRequest origin = MemRequest::make(eq, RequesterClass::MapleProduce,
                                         /*tile=*/5, 0x1008, 4,
                                         AccessKind::Read);
    MemRequest fill = origin.child(0x1000, 64, AccessKind::Read);
    EXPECT_EQ(fill.paddr, 0x1000u);
    EXPECT_EQ(fill.size, 64u);
    EXPECT_EQ(fill.cls, RequesterClass::MapleProduce) << "fills keep the class";
    EXPECT_EQ(fill.tile, 5u);
    EXPECT_EQ(fill.id, origin.id);
    EXPECT_EQ(fill.issue_cycle, origin.issue_cycle);
}

// ---------------------------------------------------------------------------
// ArbPolicy parsing
// ---------------------------------------------------------------------------

TEST(ArbPolicy, ParseAcceptsAliases)
{
    EXPECT_EQ(parseArbPolicy("fifo"), ArbPolicy::Fifo);
    EXPECT_EQ(parseArbPolicy("rr"), ArbPolicy::RoundRobinByClass);
    EXPECT_EQ(parseArbPolicy("round-robin"), ArbPolicy::RoundRobinByClass);
    EXPECT_EQ(parseArbPolicy("core-priority"), ArbPolicy::CorePriority);
    EXPECT_FALSE(parseArbPolicy("bogus").has_value());
}

TEST(ArbPolicy, EnvOverrideAndRejection)
{
    unsetenv("MAPLE_LLC_ARB");
    EXPECT_EQ(arbPolicyFromEnv("MAPLE_LLC_ARB", ArbPolicy::Fifo),
              ArbPolicy::Fifo);
    setenv("MAPLE_LLC_ARB", "rr", 1);
    EXPECT_EQ(arbPolicyFromEnv("MAPLE_LLC_ARB", ArbPolicy::Fifo),
              ArbPolicy::RoundRobinByClass);
    setenv("MAPLE_LLC_ARB", "nonsense", 1);
    EXPECT_THROW(arbPolicyFromEnv("MAPLE_LLC_ARB", ArbPolicy::Fifo),
                 sim::ConfigError);
    unsetenv("MAPLE_LLC_ARB");
}

// ---------------------------------------------------------------------------
// Arbiter
// ---------------------------------------------------------------------------

namespace {

struct GrantLog {
    sim::EventQueue eq;
    std::vector<std::pair<RequesterClass, sim::Cycle>> grants;

    sim::Task<void>
    admitOne(Arbiter &arb, RequesterClass c)
    {
        MemRequest r = req(eq, c);
        co_await arb.admit(r);
        grants.emplace_back(c, eq.now());
    }
};

}  // namespace

TEST(Arbiter, GrantsSerializeOnFlitOccupancy)
{
    GrantLog g;
    Arbiter arb(g.eq, "t", ArbPolicy::RoundRobinByClass);
    // 64B requests = 1 header + 4 payload flits = 5 port cycles each.
    for (int i = 0; i < 5; ++i)
        sim::spawn(g.admitOne(arb, RequesterClass::Core));
    g.eq.run();
    ASSERT_EQ(g.grants.size(), 5u);
    for (size_t i = 0; i < g.grants.size(); ++i)
        EXPECT_EQ(g.grants[i].second, 5 * i) << "grant " << i;
    EXPECT_EQ(arb.totalGrants(), 5u);
    EXPECT_EQ(arb.grants(RequesterClass::Core), 5u);
    EXPECT_EQ(arb.waitCycles(), 5u + 10 + 15 + 20);
}

TEST(Arbiter, RoundRobinRotatesAcrossClasses)
{
    GrantLog g;
    Arbiter arb(g.eq, "t", ArbPolicy::RoundRobinByClass);
    // First admit is granted in place (cycle 0) and advances the rotor past
    // Core; the rest queue and are served round-robin from there.
    sim::spawn(g.admitOne(arb, RequesterClass::Core));
    sim::spawn(g.admitOne(arb, RequesterClass::Ptw));
    sim::spawn(g.admitOne(arb, RequesterClass::MapleConsume));
    sim::spawn(g.admitOne(arb, RequesterClass::Core));
    g.eq.run();
    ASSERT_EQ(g.grants.size(), 4u);
    EXPECT_EQ(g.grants[0], (std::pair{RequesterClass::Core, sim::Cycle(0)}));
    EXPECT_EQ(g.grants[1],
              (std::pair{RequesterClass::MapleConsume, sim::Cycle(5)}));
    EXPECT_EQ(g.grants[2], (std::pair{RequesterClass::Ptw, sim::Cycle(10)}));
    EXPECT_EQ(g.grants[3], (std::pair{RequesterClass::Core, sim::Cycle(15)}));
}

TEST(Arbiter, CorePriorityServesCoresFirst)
{
    GrantLog g;
    Arbiter arb(g.eq, "t", ArbPolicy::CorePriority);
    // Fast-path grant for the first arrival; the queued ones are then served
    // strictly by class priority, not arrival order.
    sim::spawn(g.admitOne(arb, RequesterClass::Prefetch));
    sim::spawn(g.admitOne(arb, RequesterClass::MapleProduce));
    sim::spawn(g.admitOne(arb, RequesterClass::Prefetch));
    sim::spawn(g.admitOne(arb, RequesterClass::Core));
    g.eq.run();
    ASSERT_EQ(g.grants.size(), 4u);
    EXPECT_EQ(g.grants[0].first, RequesterClass::Prefetch);
    EXPECT_EQ(g.grants[1], (std::pair{RequesterClass::Core, sim::Cycle(5)}));
    EXPECT_EQ(g.grants[2],
              (std::pair{RequesterClass::MapleProduce, sim::Cycle(10)}));
    EXPECT_EQ(g.grants[3],
              (std::pair{RequesterClass::Prefetch, sim::Cycle(15)}));
}

TEST(Arbiter, UncontendedRequestsPassWithoutDelay)
{
    GrantLog g;
    Arbiter arb(g.eq, "t", ArbPolicy::CorePriority);
    // Spaced-out arrivals never queue: each gets the fast-path grant.
    auto t = [&]() -> sim::Task<void> {
        for (int i = 0; i < 3; ++i) {
            co_await g.admitOne(arb, RequesterClass::MapleConsume);
            co_await sim::delay(g.eq, 10);
        }
    };
    sim::Join j = sim::spawn(t());
    g.eq.run();
    j.get();
    EXPECT_EQ(arb.waitCycles(), 0u);
    EXPECT_EQ(arb.totalGrants(), 3u);
}

// ---------------------------------------------------------------------------
// PortInterposer telemetry
// ---------------------------------------------------------------------------

TEST(PortInterposer, PerClassLatencyAndBandwidth)
{
    sim::EventQueue eq;
    FixedLatencyMem mem(eq, 20);
    PortInterposer stage(eq, "stage", mem);
    sim::spawn(stage.request(req(eq, RequesterClass::Core, 0x1000, 64)));
    sim::spawn(stage.request(req(eq, RequesterClass::Core, 0x2000, 64)));
    sim::spawn(
        stage.request(req(eq, RequesterClass::MapleConsume, 0x3000, 128)));
    eq.run();

    EXPECT_EQ(stage.classRequests(RequesterClass::Core), 2u);
    EXPECT_EQ(stage.classBytes(RequesterClass::Core), 128u);
    EXPECT_EQ(stage.classRequests(RequesterClass::MapleConsume), 1u);
    EXPECT_EQ(stage.classBytes(RequesterClass::MapleConsume), 128u);
    EXPECT_EQ(stage.classRequests(RequesterClass::Ptw), 0u);

    const sim::Histogram &core = stage.classLatency(RequesterClass::Core);
    EXPECT_EQ(core.total(), 2u);
    EXPECT_EQ(core.maxSample(), 20.0) << "end-to-end = completion - issue";
    EXPECT_EQ(stage.classLatency(RequesterClass::MapleConsume).total(), 1u);
}

TEST(PortInterposer, ObserverAndArbitrationCompose)
{
    sim::EventQueue eq;
    FixedLatencyMem mem(eq, 5);
    PortInterposer stage(eq, "stage", mem, ArbPolicy::RoundRobinByClass);
    ASSERT_NE(stage.arbiter(), nullptr);
    unsigned seen = 0;
    stage.setObserver([&](const MemRequest &r) {
        ++seen;
        EXPECT_EQ(r.cls, RequesterClass::Core);
    });
    sim::spawn(stage.request(req(eq, RequesterClass::Core, 0x0, 8)));
    sim::spawn(stage.request(req(eq, RequesterClass::Core, 0x40, 8)));
    eq.run();
    EXPECT_EQ(seen, 2u);
    EXPECT_EQ(stage.arbiter()->totalGrants(), 2u);
    // Swapping back to fifo drops the admission stage entirely.
    stage.setArbitration(ArbPolicy::Fifo);
    EXPECT_EQ(stage.arbiter(), nullptr);
}

// ---------------------------------------------------------------------------
// Class-keyed fault injection
// ---------------------------------------------------------------------------

TEST(FaultClassMask, MaskedClassesNeverInject)
{
    sim::EventQueue eq;
    fault::FaultConfig cfg;
    cfg.dram = {1.0, 100};  // every opportunity fires...
    cfg.class_mask = requesterClassBit(RequesterClass::Core);
    fault::FaultInjector fi(eq, cfg);
    EXPECT_GT(fi.inject(fault::FaultClass::DramSpike, RequesterClass::Core), 0u);
    EXPECT_EQ(
        fi.inject(fault::FaultClass::DramSpike, RequesterClass::MapleConsume),
        0u)
        << "...but only for requests in the class mask";
    EXPECT_EQ(fi.injectedCount(fault::FaultClass::DramSpike), 1u);
}

TEST(FaultClassMask, MaskedOpportunitiesConsumeNoDraws)
{
    // The masked-class opportunities must not advance the RNG stream: the
    // in-mask decision sequence is identical with and without masked traffic
    // interleaved.
    fault::FaultConfig base;
    base.dram = {0.5, 100};
    sim::EventQueue eq1, eq2;
    fault::FaultInjector all(eq1, base);
    fault::FaultConfig masked_cfg = base;
    masked_cfg.class_mask = requesterClassBit(RequesterClass::Core);
    fault::FaultInjector masked(eq2, masked_cfg);
    for (int i = 0; i < 64; ++i) {
        sim::Cycle want =
            all.inject(fault::FaultClass::DramSpike, RequesterClass::Core);
        masked.inject(fault::FaultClass::DramSpike,
                      RequesterClass::MapleProduce);  // skipped, no draw
        EXPECT_EQ(
            masked.inject(fault::FaultClass::DramSpike, RequesterClass::Core),
            want)
            << "draw " << i;
    }
}

TEST(FaultClassMask, EnvListParsesToMask)
{
    setenv("MAPLE_FAULT_ONLY", "maple_consume,maple_produce", 1);
    fault::FaultConfig cfg;
    cfg.mergeEnv();
    EXPECT_EQ(cfg.class_mask,
              requesterClassBit(RequesterClass::MapleConsume) |
                  requesterClassBit(RequesterClass::MapleProduce));
    // An unknown token disables the whole restriction (fail open + warn)
    // rather than silently masking everything off.
    setenv("MAPLE_FAULT_ONLY", "maple_consume,bogus", 1);
    fault::FaultConfig cfg2;
    cfg2.mergeEnv();
    EXPECT_EQ(cfg2.class_mask, kAllRequesterClasses);
    unsetenv("MAPLE_FAULT_ONLY");
}

// ---------------------------------------------------------------------------
// SoC-level attribution: 2 cores + 1 MAPLE
// ---------------------------------------------------------------------------

namespace {

// Big enough that A/B/out (16KB each) stream through the 8KB L1s and, with
// page tables on top, pressure the 64KB LLC -- so core demand, PTW and MAPLE
// fetch traffic genuinely overlap at the shared front-end.
constexpr std::uint32_t kN = 4096;

sim::Task<void>
accessThread(cpu::Core &core, core::MapleApi &api, sim::Addr a, sim::Addr b)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t idx = co_await core.load(b + 4 * i, 4);
        co_await api.producePtr(core, 0, a + 4 * idx);
    }
}

sim::Task<void>
executeThread(cpu::Core &core, core::MapleApi &api, sim::Addr out)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t v = co_await api.consume(core, 0);
        co_await core.store(out + 4 * i, v + 1, 4);
    }
}

/** Decoupled A[B[i]] gather; returns the finished SoC for inspection. */
std::unique_ptr<soc::Soc>
runGather(soc::SocConfig cfg)
{
    auto soc = std::make_unique<soc::Soc>(std::move(cfg));
    os::Process &proc = soc->createProcess("gather");
    sim::Addr a = proc.alloc(kN * 4, "A");
    sim::Addr b = proc.alloc(kN * 4, "B");
    sim::Addr out = proc.alloc(kN * 4, "out");
    for (std::uint32_t i = 0; i < kN; ++i) {
        proc.writeScalar<std::uint32_t>(a + 4 * i, i);
        proc.writeScalar<std::uint32_t>(b + 4 * i, (i * 2654435761u) % kN);
    }
    core::MapleApi api = core::MapleApi::attach(proc, soc->maple());
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 32, 4);
        bool ok = co_await api.open(c, 0);
        MAPLE_ASSERT(ok, "queue open failed");
    };
    soc->run({sim::spawn(setup(soc->core(0)))});
    soc->run({sim::spawn(accessThread(soc->core(0), api, a, b)),
              sim::spawn(executeThread(soc->core(1), api, out))},
             50'000'000);
    return soc;
}

}  // namespace

TEST(FabricSoc, PerClassAttributionOnGather)
{
    auto soc = runGather(soc::SocConfig::fpga());
    mem::PortInterposer &front = soc->llcFront();

    // Core demand misses and PTW walks reach the LLC; consistency between
    // the histogram, the request counter and the byte counter per class.
    EXPECT_GT(front.classRequests(RequesterClass::Core), 0u);
    EXPECT_GT(front.classRequests(RequesterClass::Ptw), 0u);
    for (unsigned i = 0; i < kNumRequesterClasses; ++i) {
        auto c = static_cast<RequesterClass>(i);
        EXPECT_EQ(front.classLatency(c).total(), front.classRequests(c))
            << requesterClassName(c);
        if (front.classRequests(c) > 0) {
            EXPECT_GT(front.classBytes(c), 0u) << requesterClassName(c);
        }
    }
    // MAPLE's pointer fetches bypass the LLC by default (direct-to-DRAM
    // path), so they show up at the DRAM, attributed to MapleProduce.
    EXPECT_EQ(front.classRequests(RequesterClass::MapleProduce), 0u);
    EXPECT_GT(soc->dram().classBytes(RequesterClass::MapleProduce), 0u);
    EXPECT_GT(soc->mesh().classFlits(RequesterClass::MapleProduce), 0u);
    EXPECT_GT(soc->mesh().classFlits(RequesterClass::Mmio), 0u)
        << "produce/consume MMIO traffic rides the mesh as Mmio";
    // End-to-end latency includes NoC + LLC (+ DRAM on a miss): the typical
    // core sample costs far more than an LLC lookup.
    EXPECT_GE(front.classLatency(RequesterClass::Core).percentile(0.5),
              double(soc->config().llc.hit_latency));
}

namespace {

/**
 * Saturate the LLC front-end: 32 core-class and 32 MAPLE-class line reads
 * launched concurrently from their home tiles. Dense enough that a non-fifo
 * admission stage (one flit per cycle) must queue most of them.
 */
std::unique_ptr<soc::Soc>
runLlcBursts(ArbPolicy arb)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.llc_arb = arb;
    auto soc = std::make_unique<soc::Soc>(cfg);
    noc::RemotePort &core_port = soc->addLlcPort(soc->coreTile(0));
    noc::RemotePort &maple_port = soc->addLlcPort(soc->mapleTile(0));
    for (std::uint32_t i = 0; i < 32; ++i) {
        sim::spawn(core_port.request(
            MemRequest::make(soc->eq(), RequesterClass::Core,
                             soc->coreTile(0), 0x10000 + 64 * i, 64,
                             AccessKind::Read)));
        sim::spawn(maple_port.request(
            MemRequest::make(soc->eq(), RequesterClass::MapleProduce,
                             soc->mapleTile(0), 0x40000 + 64 * i, 64,
                             AccessKind::Read)));
    }
    soc->run({}, 1'000'000);
    return soc;
}

}  // namespace

TEST(FabricSoc, RoundRobinArbitrationChangesClassLatencies)
{
    auto fifo_soc = runLlcBursts(ArbPolicy::Fifo);
    auto rr_soc = runLlcBursts(ArbPolicy::RoundRobinByClass);

    mem::PortInterposer &f = fifo_soc->llcFront();
    mem::PortInterposer &r = rr_soc->llcFront();
    // Same work either way...
    for (auto c : {RequesterClass::Core, RequesterClass::MapleProduce}) {
        ASSERT_EQ(f.classRequests(c), 32u) << requesterClassName(c);
        ASSERT_EQ(r.classRequests(c), 32u) << requesterClassName(c);
    }
    ASSERT_NE(r.arbiter(), nullptr);
    EXPECT_GT(r.arbiter()->waitCycles(), 0u)
        << "rr must actually gate admissions under contention";
    // ...but the per-class end-to-end latency distributions measurably move
    // when the arbitration policy changes (the --llc-arb acceptance bar).
    for (auto c : {RequesterClass::Core, RequesterClass::MapleProduce}) {
        EXPECT_NE(f.classLatency(c).buckets(), r.classLatency(c).buckets())
            << requesterClassName(c);
        EXPECT_GT(r.classLatency(c).percentile(0.95),
                  f.classLatency(c).percentile(0.95))
            << requesterClassName(c)
            << ": the gated tail must be visibly longer than fifo's";
    }
}

// ---------------------------------------------------------------------------
// Golden bit-identity of the default configuration
// ---------------------------------------------------------------------------

namespace {

/** The quickstart baseline loop, reproduced byte-for-byte (examples/). */
sim::Task<void>
quickstartBaseline(cpu::Core &core, sim::Addr a, sim::Addr b, sim::Addr out)
{
    for (std::uint32_t i = 0; i < 4096; ++i) {
        std::uint64_t idx = co_await core.load(b + 4 * i, 4);
        std::uint64_t v = co_await core.load(a + 4 * idx, 4);
        co_await core.compute(1);
        co_await core.store(out + 4 * i, v + 1, 4);
    }
}

}  // namespace

TEST(FabricGolden, QuickstartBaselineCycleCount)
{
    // Locked to the seed commit's examples/quickstart output. Any drift here
    // means the fabric (or a later change) perturbed default-config timing.
    soc::Soc soc(soc::SocConfig::fpga());
    os::Process &proc = soc.createProcess("quickstart");
    sim::Addr a = proc.alloc(4096 * 4, "A");
    sim::Addr b = proc.alloc(4096 * 4, "B");
    sim::Addr out = proc.alloc(4096 * 4, "out");
    for (std::uint32_t i = 0; i < 4096; ++i) {
        proc.writeScalar<std::uint32_t>(a + 4 * i, i * 3);
        proc.writeScalar<std::uint32_t>(b + 4 * i, (i * 2654435761u) % 4096);
    }
    sim::Cycle cycles =
        soc.run({sim::spawn(quickstartBaseline(soc.core(0), a, b, out))});
    EXPECT_EQ(cycles, 363523u);
}

TEST(FabricGolden, Fig08SpmvCycleCounts)
{
    // One row of bench_fig08 (SPMV, doall vs MAPLE-decoupled on the FPGA
    // config), locked to the seed commit's numbers.
    auto spmv = app::makeSpmv();
    app::RunConfig cfg;
    cfg.threads = 2;
    cfg.soc = soc::SocConfig::fpga();

    cfg.tech = app::Technique::Doall;
    app::RunResult doall = spmv->run(cfg);
    EXPECT_TRUE(doall.valid);
    EXPECT_EQ(doall.cycles, 4739905u);

    cfg.tech = app::Technique::MapleDecouple;
    app::RunResult maple = spmv->run(cfg);
    EXPECT_TRUE(maple.valid);
    EXPECT_EQ(maple.cycles, 1647963u);
}
