/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, coroutine
 * tasks, futures, delays, barriers, stats.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

using namespace maple::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_THROW(eq.schedule(5, [] {}), std::logic_error);
    });
    eq.run();
}

TEST(EventQueue, RunRespectsMaxCycles)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(100, [&] { fired = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(fired);
}

namespace {

Task<int>
addLater(EventQueue &eq, int a, int b)
{
    co_await delay(eq, 10);
    co_return a + b;
}

Task<void>
outer(EventQueue &eq, int *result)
{
    int x = co_await addLater(eq, 2, 3);
    int y = co_await addLater(eq, x, 10);
    *result = y;
}

}  // namespace

TEST(Coro, NestedTasksPropagateValues)
{
    EventQueue eq;
    int result = 0;
    Join j = spawn(outer(eq, &result));
    eq.run();
    ASSERT_TRUE(j.done());
    j.get();
    EXPECT_EQ(result, 15);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(Coro, ExceptionsSurfaceThroughJoin)
{
    EventQueue eq;
    auto thrower = [](EventQueue &q) -> Task<void> {
        co_await delay(q, 1);
        throw std::runtime_error("boom");
    };
    Join j = spawn(thrower(eq));
    eq.run();
    ASSERT_TRUE(j.done());
    EXPECT_THROW(j.get(), std::runtime_error);
}

TEST(Coro, FutureFulfilledBeforeAwait)
{
    EventQueue eq;
    Future<int> f;
    f.set(42);
    int got = 0;
    auto waiter = [&]() -> Task<void> { got = co_await f; };
    Join j = spawn(waiter());
    eq.run();
    j.get();
    EXPECT_EQ(got, 42);
}

TEST(Coro, FutureResumesMultipleWaitersFifo)
{
    EventQueue eq;
    Future<int> f;
    std::vector<int> order;
    auto waiter = [&](int id) -> Task<void> {
        int v = co_await f;
        order.push_back(id * 100 + v);
    };
    Join j1 = spawn(waiter(1));
    Join j2 = spawn(waiter(2));
    Join j3 = spawn(waiter(3));
    eq.schedule(5, [&] { f.set(7); });
    eq.run();
    j1.get();
    j2.get();
    j3.get();
    EXPECT_EQ(order, (std::vector<int>{107, 207, 307}));
}

TEST(Coro, FutureDoubleSetPanics)
{
    Future<int> f;
    f.set(1);
    EXPECT_THROW(f.set(2), std::logic_error);
}

TEST(Coro, ZeroDelayDoesNotSuspend)
{
    EventQueue eq;
    bool done = false;
    auto t = [&]() -> Task<void> {
        co_await delay(eq, 0);
        done = true;
    };
    spawn(t());
    // No events needed: the task completed synchronously at spawn.
    EXPECT_TRUE(done);
}

TEST(Barrier, ReleasesAllPartiesTogether)
{
    EventQueue eq;
    Barrier bar(3);
    std::vector<Cycle> release_times;
    auto party = [&](Cycle arrive_at) -> Task<void> {
        co_await delay(eq, arrive_at);
        co_await bar.wait();
        release_times.push_back(eq.now());
    };
    std::vector<Join> joins;
    joins.push_back(spawn(party(5)));
    joins.push_back(spawn(party(17)));
    joins.push_back(spawn(party(11)));
    eq.run();
    for (auto &j : joins)
        j.get();
    ASSERT_EQ(release_times.size(), 3u);
    for (Cycle t : release_times)
        EXPECT_EQ(t, 17u);  // all release when the last party arrives
}

TEST(Barrier, IsReusableAcrossGenerations)
{
    EventQueue eq;
    Barrier bar(2);
    int rounds_a = 0, rounds_b = 0;
    auto party = [&](int *rounds, Cycle step) -> Task<void> {
        for (int r = 0; r < 5; ++r) {
            co_await delay(eq, step);
            co_await bar.wait();
            ++*rounds;
        }
    };
    Join a = spawn(party(&rounds_a, 3));
    Join b = spawn(party(&rounds_b, 9));
    eq.run();
    a.get();
    b.get();
    EXPECT_EQ(rounds_a, 5);
    EXPECT_EQ(rounds_b, 5);
}

TEST(Stats, GeomeanMatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.5, 2.0, 3.0}), std::cbrt(9.0), 1e-12);
    EXPECT_THROW(geomean({}), std::logic_error);
    EXPECT_THROW(geomean({1.0, -2.0}), std::logic_error);
}

TEST(Stats, HistogramPercentilesInterpolateWithinBucket)
{
    Histogram h(1.0, 16);
    for (int i = 0; i < 100; ++i)
        h.sample(i % 10);
    EXPECT_EQ(h.total(), 100u);
    // 10 samples per bucket: rank 5 lands halfway into bucket 0, rank 95
    // halfway into bucket 9 -- not at the buckets' lower edges.
    EXPECT_DOUBLE_EQ(h.percentile(0.05), 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 9.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 5.0);
    // p == 1.0 reports the largest observed sample.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 9.0);
}

TEST(Stats, AverageTracksMinAndMax)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    a.sample(5.0);
    a.sample(-2.0);
    a.sample(11.0);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 11.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Stats, StatGroupDumpsHistogramPercentiles)
{
    StatGroup g("grp");
    Histogram &h = g.histogram("lat", 2.0, 32);
    for (int i = 0; i < 10; ++i)
        h.sample(2.0 * i);
    // Same name returns the same histogram; geometry args are ignored.
    EXPECT_EQ(&g.histogram("lat", 99.0, 1), &h);
    std::string dump = g.dump();
    EXPECT_NE(dump.find("grp.lat"), std::string::npos);
    EXPECT_NE(dump.find("p50:"), std::string::npos);
    EXPECT_NE(dump.find("p95:"), std::string::npos);
    EXPECT_NE(dump.find("p99:"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.histogram("lat").total(), 0u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true, any_diff_seed_diff = false;
    for (int i = 0; i < 1000; ++i) {
        auto va = a.next(), vb = b.next(), vc = c.next();
        all_equal &= (va == vb);
        any_diff_seed_diff |= (va != vc);
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(37), 37u);
}

TEST(Rng, UniformCoversUnitInterval)
{
    Rng r(99);
    double mn = 1.0, mx = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        mn = std::min(mn, u);
        mx = std::max(mx, u);
    }
    EXPECT_LT(mn, 0.01);
    EXPECT_GT(mx, 0.99);
}
