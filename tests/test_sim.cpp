/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, coroutine
 * tasks, futures, delays, barriers, stats.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

using namespace maple::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_THROW(eq.schedule(5, [] {}), std::logic_error);
    });
    eq.run();
}

TEST(EventQueue, RunRespectsMaxCycles)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(100, [&] { fired = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(fired);
}

TEST(EventQueue, EarlyStopAdvancesTimeToMaxCycles)
{
    // Pinned semantics: run(t) that stops early leaves now() == t, so
    // back-to-back run(t1), run(t2) calls observe continuous time. Draining
    // leaves now() at the last executed event; an empty run is a no-op.
    EventQueue eq;
    EXPECT_TRUE(eq.run(10));
    EXPECT_EQ(eq.now(), 0u);  // nothing to do: time does not move
    eq.schedule(100, [] {});
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_FALSE(eq.run(70));
    EXPECT_EQ(eq.now(), 70u);
    EXPECT_TRUE(eq.run(100));
    EXPECT_EQ(eq.now(), 100u);  // drained: rests at the last event
    EXPECT_TRUE(eq.run(500));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, FarFutureEventsOverflowTheWheel)
{
    EventQueue eq;
    std::vector<int> order;
    const Cycle h = EventQueue::kWheelHorizon;
    eq.schedule(3 * h + 5, [&] { order.push_back(4); });
    eq.schedule(h + 1, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(2 * h, [&] { order.push_back(3); });
    EXPECT_GE(eq.overflowPending(), 3u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 3 * h + 5);
}

TEST(EventQueue, NextEventCyclePeeksWheelAndOverflow)
{
    // The sharded engine sizes its BSP windows off this peek; it must see
    // the true minimum whether the head event sits in the wheel or parked
    // in the overflow heap, without advancing anything.
    EventQueue eq;
    EXPECT_EQ(eq.nextEventCycle(), kCycleMax);

    const Cycle h = EventQueue::kWheelHorizon;
    eq.schedule(2 * h + 7, [] {});  // overflow only
    EXPECT_EQ(eq.nextEventCycle(), 2 * h + 7);
    eq.schedule(40, [] {});  // now the wheel holds the minimum
    EXPECT_EQ(eq.nextEventCycle(), 40u);
    EXPECT_EQ(eq.now(), 0u) << "peeking must not advance time";

    EXPECT_FALSE(eq.run(100));
    EXPECT_EQ(eq.nextEventCycle(), 2 * h + 7);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(eq.nextEventCycle(), kCycleMax);
}

TEST(EventQueue, ChunkedRunsMatchOneShotRun)
{
    // The engine drives queues in quantum-sized chunks; a chunked run must
    // execute the identical sequence as a single run().
    auto seed = [](EventQueue &eq, std::vector<Cycle> &fired) {
        for (Cycle c : {3u, 70u, 70u, 2'000u, 90'000u})
            eq.schedule(c, [&] { fired.push_back(eq.now()); });
        eq.schedule(10, [&eq, &fired] {
            eq.scheduleIn(55, [&] { fired.push_back(eq.now()); });
        });
    };
    EventQueue once;
    std::vector<Cycle> once_fired;
    seed(once, once_fired);
    EXPECT_TRUE(once.run());

    EventQueue chunked;
    std::vector<Cycle> chunked_fired;
    seed(chunked, chunked_fired);
    Cycle bound = 0;
    while (chunked.nextEventCycle() != kCycleMax) {
        bound = chunked.nextEventCycle() + 64;
        chunked.run(bound);
    }
    EXPECT_EQ(chunked_fired, once_fired);
    EXPECT_EQ(chunked.executed(), once.executed());
}

TEST(EventQueue, OverflowAndDirectSameCycleKeepFifo)
{
    // An event parked in the overflow heap was scheduled strictly earlier
    // than any direct wheel event for the same cycle, so it must run first
    // once its cycle enters the wheel window.
    EventQueue eq;
    const Cycle h = EventQueue::kWheelHorizon;
    const Cycle target = 2 * h;
    std::vector<int> order;
    eq.schedule(target, [&] { order.push_back(1); });  // beyond horizon
    eq.schedule(target, [&] { order.push_back(2); });
    // Walk time to within the horizon of `target`, then schedule directly.
    eq.schedule(target - h / 2, [&] {
        eq.schedule(target, [&] { order.push_back(3); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, WheelBucketsAreReusedAcrossWindows)
{
    // Cycles c and c + horizon share a bucket index; the second only enters
    // the wheel after the first drained, and both run in time order.
    EventQueue eq;
    const Cycle h = EventQueue::kWheelHorizon;
    std::vector<Cycle> fired;
    for (Cycle c : {Cycle(7), 7 + h, 7 + 2 * h, 7 + h / 2})
        eq.schedule(c, [&fired, &eq] { fired.push_back(eq.now()); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, (std::vector<Cycle>{7, 7 + h / 2, 7 + h, 7 + 2 * h}));
}

TEST(EventQueue, SchedulingDuringDispatchIsSafe)
{
    // Regression for the old kernel's const_cast move-out of heap_.top():
    // callbacks that schedule into the queue mid-dispatch (including enough
    // events to grow the node pool) must not invalidate the event being run.
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(1 + (i % 3), [&fired] { ++fired; });
        eq.scheduleIn(2 * EventQueue::kWheelHorizon, [&fired] { ++fired; });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 1002);
    EXPECT_EQ(eq.executed(), 1002u);
}

TEST(EventQueue, ExecutedAndPendingStayConsistent)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
    for (int i = 0; i < 10; ++i)
        eq.schedule(i + 1, [] {});
    eq.schedule(5 * EventQueue::kWheelHorizon, [] {});
    EXPECT_EQ(eq.pending(), 11u);
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_EQ(eq.pending(), 10u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(eq.executed(), 11u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
    EXPECT_EQ(eq.executed(), 11u);
}

TEST(EventQueue, PoolRecyclesNodesUnderChurn)
{
    // A bounded number of in-flight events must not grow the pool without
    // bound, no matter how many events pass through in total.
    EventQueue eq;
    std::uint64_t fired = 0;
    constexpr std::uint64_t kTotal = 100'000;
    constexpr int kChains = 32;
    std::vector<std::function<void()>> chains(kChains);
    for (int i = 0; i < kChains; ++i) {
        chains[i] = [&eq, &fired, &chains, i] {
            if (++fired < kTotal)
                eq.scheduleIn(1 + (fired % (2 * EventQueue::kWheelHorizon)),
                              chains[i]);  // spans wheel and overflow deltas
        };
    }
    for (int i = 0; i < kChains; ++i)
        eq.scheduleIn(1 + i, chains[i]);
    EXPECT_TRUE(eq.run());
    // Once `fired` hits kTotal each chain stops; the other chains' in-flight
    // events still execute, so the total lands in [kTotal, kTotal + kChains).
    EXPECT_GE(eq.executed(), kTotal);
    EXPECT_LT(eq.executed(), kTotal + kChains);
    // At most kChains events were ever pending: one pool chunk suffices.
    EXPECT_LE(eq.poolAllocated(), 512u);
    EXPECT_EQ(eq.poolFree(), eq.poolAllocated());  // everything recycled
}

TEST(EventQueue, MatchesReferenceModelOnRandomStorm)
{
    // Determinism oracle: replay an identical random schedule storm through
    // the wheel kernel and a naive stable-sorted reference; the execution
    // order (event ids) must match exactly, including same-cycle ties that
    // straddle the wheel/overflow boundary.
    struct Ref {
        struct Ev {
            Cycle when;
            std::uint64_t seq;
            int id;
        };
        std::vector<Ev> pending;
        Cycle now = 0;
        std::uint64_t seq = 0;

        void
        schedule(Cycle when, int id)
        {
            pending.push_back({when, seq++, id});
        }

        bool
        popNext(Ev &out)
        {
            if (pending.empty())
                return false;
            size_t best = 0;
            for (size_t i = 1; i < pending.size(); ++i) {
                const Ev &a = pending[i], &b = pending[best];
                if (a.when < b.when || (a.when == b.when && a.seq < b.seq))
                    best = i;
            }
            out = pending[best];
            pending.erase(pending.begin() + best);
            now = out.when;
            return true;
        }
    };

    // Deterministic stimulus: each executed event decides its children from
    // an Rng stream keyed by its id, so both executions branch identically.
    auto childDeltas = [](int id) {
        Rng rng(0xabcd1234u + static_cast<std::uint64_t>(id));
        std::vector<Cycle> deltas;
        if (id < 4000) {
            unsigned n = static_cast<unsigned>(rng.below(3));
            for (unsigned i = 0; i < n; ++i)
                deltas.push_back(rng.below(3 * EventQueue::kWheelHorizon));
        }
        return deltas;
    };

    std::vector<int> real_order;
    {
        EventQueue eq;
        int next_id = 64;
        std::function<void(int)> body = [&](int id) {
            real_order.push_back(id);
            for (Cycle d : childDeltas(id)) {
                int child = next_id++;
                eq.scheduleIn(d, [&body, child] { body(child); });
            }
        };
        for (int i = 0; i < 64; ++i)
            eq.schedule(static_cast<Cycle>(i % 7), [&body, i] { body(i); });
        EXPECT_TRUE(eq.run());
    }

    std::vector<int> ref_order;
    {
        Ref ref;
        int next_id = 64;
        for (int i = 0; i < 64; ++i)
            ref.schedule(static_cast<Cycle>(i % 7), i);
        Ref::Ev ev;
        while (ref.popNext(ev)) {
            ref_order.push_back(ev.id);
            for (Cycle d : childDeltas(ev.id))
                ref.schedule(ref.now + d, next_id++);
        }
    }

    ASSERT_EQ(real_order.size(), ref_order.size());
    EXPECT_EQ(real_order, ref_order);
}

namespace {

Task<int>
addLater(EventQueue &eq, int a, int b)
{
    co_await delay(eq, 10);
    co_return a + b;
}

Task<void>
outer(EventQueue &eq, int *result)
{
    int x = co_await addLater(eq, 2, 3);
    int y = co_await addLater(eq, x, 10);
    *result = y;
}

}  // namespace

TEST(Coro, NestedTasksPropagateValues)
{
    EventQueue eq;
    int result = 0;
    Join j = spawn(outer(eq, &result));
    eq.run();
    ASSERT_TRUE(j.done());
    j.get();
    EXPECT_EQ(result, 15);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(Coro, ExceptionsSurfaceThroughJoin)
{
    EventQueue eq;
    auto thrower = [](EventQueue &q) -> Task<void> {
        co_await delay(q, 1);
        throw std::runtime_error("boom");
    };
    Join j = spawn(thrower(eq));
    eq.run();
    ASSERT_TRUE(j.done());
    EXPECT_THROW(j.get(), std::runtime_error);
}

TEST(Coro, FutureFulfilledBeforeAwait)
{
    EventQueue eq;
    Future<int> f;
    f.set(42);
    int got = 0;
    auto waiter = [&]() -> Task<void> { got = co_await f; };
    Join j = spawn(waiter());
    eq.run();
    j.get();
    EXPECT_EQ(got, 42);
}

TEST(Coro, FutureResumesMultipleWaitersFifo)
{
    EventQueue eq;
    Future<int> f;
    std::vector<int> order;
    auto waiter = [&](int id) -> Task<void> {
        int v = co_await f;
        order.push_back(id * 100 + v);
    };
    Join j1 = spawn(waiter(1));
    Join j2 = spawn(waiter(2));
    Join j3 = spawn(waiter(3));
    eq.schedule(5, [&] { f.set(7); });
    eq.run();
    j1.get();
    j2.get();
    j3.get();
    EXPECT_EQ(order, (std::vector<int>{107, 207, 307}));
}

TEST(Coro, FutureDoubleSetPanics)
{
    Future<int> f;
    f.set(1);
    EXPECT_THROW(f.set(2), std::logic_error);
}

TEST(Coro, ZeroDelayDoesNotSuspend)
{
    EventQueue eq;
    bool done = false;
    auto t = [&]() -> Task<void> {
        co_await delay(eq, 0);
        done = true;
    };
    spawn(t());
    // No events needed: the task completed synchronously at spawn.
    EXPECT_TRUE(done);
}

TEST(Barrier, ReleasesAllPartiesTogether)
{
    EventQueue eq;
    Barrier bar(3);
    std::vector<Cycle> release_times;
    auto party = [&](Cycle arrive_at) -> Task<void> {
        co_await delay(eq, arrive_at);
        co_await bar.wait();
        release_times.push_back(eq.now());
    };
    std::vector<Join> joins;
    joins.push_back(spawn(party(5)));
    joins.push_back(spawn(party(17)));
    joins.push_back(spawn(party(11)));
    eq.run();
    for (auto &j : joins)
        j.get();
    ASSERT_EQ(release_times.size(), 3u);
    for (Cycle t : release_times)
        EXPECT_EQ(t, 17u);  // all release when the last party arrives
}

TEST(Barrier, IsReusableAcrossGenerations)
{
    EventQueue eq;
    Barrier bar(2);
    int rounds_a = 0, rounds_b = 0;
    auto party = [&](int *rounds, Cycle step) -> Task<void> {
        for (int r = 0; r < 5; ++r) {
            co_await delay(eq, step);
            co_await bar.wait();
            ++*rounds;
        }
    };
    Join a = spawn(party(&rounds_a, 3));
    Join b = spawn(party(&rounds_b, 9));
    eq.run();
    a.get();
    b.get();
    EXPECT_EQ(rounds_a, 5);
    EXPECT_EQ(rounds_b, 5);
}

TEST(Stats, GeomeanMatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.5, 2.0, 3.0}), std::cbrt(9.0), 1e-12);
    EXPECT_THROW(geomean({}), std::logic_error);
    EXPECT_THROW(geomean({1.0, -2.0}), std::logic_error);
}

TEST(Stats, HistogramPercentilesInterpolateWithinBucket)
{
    Histogram h(1.0, 16);
    for (int i = 0; i < 100; ++i)
        h.sample(i % 10);
    EXPECT_EQ(h.total(), 100u);
    // 10 samples per bucket: rank 5 lands halfway into bucket 0, rank 95
    // halfway into bucket 9 -- not at the buckets' lower edges.
    EXPECT_DOUBLE_EQ(h.percentile(0.05), 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 9.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 5.0);
    // p == 1.0 reports the largest observed sample.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 9.0);
}

TEST(Stats, AverageTracksMinAndMax)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    a.sample(5.0);
    a.sample(-2.0);
    a.sample(11.0);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 11.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Stats, StatGroupDumpsHistogramPercentiles)
{
    StatGroup g("grp");
    Histogram &h = g.histogram("lat", 2.0, 32);
    for (int i = 0; i < 10; ++i)
        h.sample(2.0 * i);
    // Same name returns the same histogram; geometry args are ignored.
    EXPECT_EQ(&g.histogram("lat", 99.0, 1), &h);
    std::string dump = g.dump();
    EXPECT_NE(dump.find("grp.lat"), std::string::npos);
    EXPECT_NE(dump.find("p50:"), std::string::npos);
    EXPECT_NE(dump.find("p95:"), std::string::npos);
    EXPECT_NE(dump.find("p99:"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.histogram("lat").total(), 0u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true, any_diff_seed_diff = false;
    for (int i = 0; i < 1000; ++i) {
        auto va = a.next(), vb = b.next(), vc = c.next();
        all_equal &= (va == vb);
        any_diff_seed_diff |= (va != vc);
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(37), 37u);
}

TEST(Rng, UniformCoversUnitInterval)
{
    Rng r(99);
    double mn = 1.0, mx = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        mn = std::min(mn, u);
        mx = std::max(mx, u);
    }
    EXPECT_LT(mn, 0.01);
    EXPECT_GT(mx, 0.99);
}
