/**
 * @file
 * Unit tests for the memory substrate: physical memory, page tables, TLB,
 * caches (including parameterized geometry sweeps), DRAM timing and the MMU
 * walk/fault machinery.
 */
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mmu.hpp"
#include "mem/page_table.hpp"
#include "mem/physical_memory.hpp"
#include "mem/tlb.hpp"
#include "sim/coro.hpp"
#include "sim/error.hpp"

using namespace maple;
using namespace maple::mem;

namespace {

/** Origin-request shorthand for driving ports directly in tests. */
MemRequest
coreReq(sim::EventQueue &eq, sim::Addr a, std::uint32_t size,
        AccessKind kind = AccessKind::Read)
{
    return MemRequest::make(eq, RequesterClass::Core, /*tile=*/0, a, size, kind);
}

}  // namespace

// ---------------------------------------------------------------------------
// PhysicalMemory
// ---------------------------------------------------------------------------

TEST(PhysicalMemory, UntouchedMemoryReadsAsZero)
{
    PhysicalMemory pm(1 << 20);
    EXPECT_EQ(pm.readU64(0x1234), 0u);
    EXPECT_EQ(pm.residentPages(), 0u);
}

TEST(PhysicalMemory, ReadWriteRoundTrip)
{
    PhysicalMemory pm(1 << 20);
    pm.writeU64(0x100, 0xdeadbeefcafef00dull);
    EXPECT_EQ(pm.readU64(0x100), 0xdeadbeefcafef00dull);
    pm.writeU32(0x104, 0x11112222);
    EXPECT_EQ(pm.readU64(0x100), 0x11112222cafef00dull);
}

TEST(PhysicalMemory, CrossPageAccess)
{
    PhysicalMemory pm(1 << 20);
    std::vector<std::uint8_t> data(kPageSize + 128);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    sim::Addr base = kPageSize - 64;  // straddles a page boundary
    pm.write(base, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    pm.read(base, back.data(), back.size());
    EXPECT_EQ(data, back);
    EXPECT_EQ(pm.residentPages(), 3u);
}

TEST(PhysicalMemory, OutOfRangeAccessPanics)
{
    PhysicalMemory pm(1 << 20);
    EXPECT_THROW(pm.readU64((1 << 20) - 4), std::logic_error);
    EXPECT_THROW(pm.writeU64(1 << 20, 1), std::logic_error);
}

// ---------------------------------------------------------------------------
// PageTable
// ---------------------------------------------------------------------------

namespace {

struct PtFixture {
    PhysicalMemory pm{1 << 24};
    sim::Addr next_frame = 0;
    PageTable pt{pm, [this] {
                     sim::Addr f = next_frame;
                     next_frame += kPageSize;
                     return f;
                 }};
};

}  // namespace

TEST(PageTable, MapTranslateUnmap)
{
    PtFixture f;
    f.pt.map(0x4000'0000, 0x1000, /*writable=*/true);
    auto pa = f.pt.translate(0x4000'0123, Perms{false});
    ASSERT_TRUE(pa.has_value());
    EXPECT_EQ(*pa, 0x1123u);
    f.pt.unmap(0x4000'0000);
    EXPECT_FALSE(f.pt.translate(0x4000'0123, Perms{false}).has_value());
}

TEST(PageTable, WritePermissionEnforced)
{
    PtFixture f;
    f.pt.map(0x5000'0000, 0x2000, /*writable=*/false);
    EXPECT_TRUE(f.pt.translate(0x5000'0000, Perms{false}).has_value());
    EXPECT_FALSE(f.pt.translate(0x5000'0000, Perms{true}).has_value());
}

TEST(PageTable, DistantPagesShareNoLeafTable)
{
    PtFixture f;
    size_t before = f.pt.tablePages();
    f.pt.map(0x0000'1000, 0x1000, true);
    // 1GB apart: different level-1 tables.
    f.pt.map(0x4000'0000ull, 0x2000, true);
    EXPECT_GE(f.pt.tablePages(), before + 3);
}

TEST(PageTable, RemapOverwrites)
{
    PtFixture f;
    f.pt.map(0x6000'0000, 0x1000, true);
    f.pt.map(0x6000'0000, 0x9000, true);
    EXPECT_EQ(*f.pt.translate(0x6000'0000, Perms{false}), 0x9000u);
}

TEST(PageTable, WalkReturnsLeafPte)
{
    PtFixture f;
    f.pt.map(0x7000'0000, 0x3000, true);
    auto pte = f.pt.walk(0x7000'0000);
    ASSERT_TRUE(pte.has_value());
    EXPECT_TRUE(pte->leaf());
    EXPECT_TRUE(pte->writable());
    EXPECT_EQ(pte->paddrBase(), 0x3000u);
}

// ---------------------------------------------------------------------------
// TLB
// ---------------------------------------------------------------------------

TEST(Tlb, HitAfterInsertMissBefore)
{
    Tlb tlb(4);
    EXPECT_FALSE(tlb.lookup(0x1000).has_value());
    tlb.insert(0x1000, Pte::makeLeaf(0x8000, true));
    auto pte = tlb.lookup(0x1000);
    ASSERT_TRUE(pte.has_value());
    EXPECT_EQ(pte->paddrBase(), 0x8000u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEvictionOrder)
{
    Tlb tlb(2);
    tlb.insert(0x1000, Pte::makeLeaf(0x1000, true));
    tlb.insert(0x2000, Pte::makeLeaf(0x2000, true));
    // Touch 0x1000 so 0x2000 becomes LRU.
    EXPECT_TRUE(tlb.lookup(0x1000).has_value());
    tlb.insert(0x3000, Pte::makeLeaf(0x3000, true));
    EXPECT_TRUE(tlb.lookup(0x1000).has_value());
    EXPECT_FALSE(tlb.lookup(0x2000).has_value()) << "LRU entry not evicted";
    EXPECT_TRUE(tlb.lookup(0x3000).has_value());
}

TEST(Tlb, InvalidateDropsOnlyTargetPage)
{
    Tlb tlb(8);
    tlb.insert(0x1000, Pte::makeLeaf(0x1000, true));
    tlb.insert(0x2000, Pte::makeLeaf(0x2000, true));
    tlb.invalidate(0x1abc);  // same page as 0x1000
    EXPECT_FALSE(tlb.lookup(0x1000).has_value());
    EXPECT_TRUE(tlb.lookup(0x2000).has_value());
}

TEST(Tlb, FlushDropsEverything)
{
    Tlb tlb(8);
    for (int i = 0; i < 8; ++i)
        tlb.insert(i * kPageSize, Pte::makeLeaf(i * kPageSize, true));
    tlb.flush();
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(Tlb, CapacityNeverExceeded)
{
    Tlb tlb(16);
    for (int i = 0; i < 100; ++i)
        tlb.insert(i * kPageSize, Pte::makeLeaf(i * kPageSize, true));
    EXPECT_EQ(tlb.size(), 16u);
}

// ---------------------------------------------------------------------------
// FixedLatencyMem
// ---------------------------------------------------------------------------

namespace {

/** Completion time of one request against @p port, starting at eq.now(). */
sim::Cycle
timedRequest(sim::EventQueue &eq, Port &port, sim::Addr a, std::uint32_t size)
{
    sim::Cycle start = eq.now();
    sim::Join j = sim::spawn(port.request(coreReq(eq, a, size)));
    eq.run();
    j.get();
    return eq.now() - start;
}

}  // namespace

TEST(FixedLatencyMem, PureLatencyIgnoresSizeWhenUnthrottled)
{
    sim::EventQueue eq;
    FixedLatencyMem mem(eq, 25);  // bytes_per_cycle = 0: infinite bandwidth
    EXPECT_EQ(timedRequest(eq, mem, 0x1000, 8), 25u);
    EXPECT_EQ(timedRequest(eq, mem, 0x2000, 4096), 25u);
}

TEST(FixedLatencyMem, BytesPerCycleChargesTransferTime)
{
    sim::EventQueue eq;
    FixedLatencyMem mem(eq, 10, /*bytes_per_cycle=*/8);
    // 64B at 8B/cycle = 8 transfer cycles, plus the fixed 10-cycle latency.
    EXPECT_EQ(timedRequest(eq, mem, 0x1000, 64), 18u);
    // Sub-unit sizes round up to a whole transfer cycle.
    EXPECT_EQ(timedRequest(eq, mem, 0x2000, 1), 11u);
}

TEST(FixedLatencyMem, ConcurrentRequestsSerializeOnBandwidth)
{
    sim::EventQueue eq;
    FixedLatencyMem mem(eq, 10, /*bytes_per_cycle=*/8);
    std::vector<sim::Cycle> done;
    auto t = [&](sim::Addr a) -> sim::Task<void> {
        co_await mem.request(coreReq(eq, a, 64));
        done.push_back(eq.now());
    };
    sim::spawn(t(0x1000));
    sim::spawn(t(0x2000));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 18u);
    EXPECT_EQ(done[1], 26u) << "second transfer starts when the pipe frees";
}

// ---------------------------------------------------------------------------
// Dram timing
// ---------------------------------------------------------------------------

TEST(Dram, FixedLatency)
{
    sim::EventQueue eq;
    Dram dram(eq, DramParams{300, 1, 1});
    sim::Cycle done = 0;
    auto t = [&]() -> sim::Task<void> {
        co_await dram.request(coreReq(eq, 0x1000, 64));
        done = eq.now();
    };
    sim::Join j = sim::spawn(t());
    eq.run();
    j.get();
    EXPECT_EQ(done, 301u);  // 1 cycle serialization + 300 latency
}

TEST(Dram, BandwidthSerializesConcurrentAccesses)
{
    sim::EventQueue eq;
    Dram dram(eq, DramParams{300, 4, 1});  // 4 cycles per line, one channel
    std::vector<sim::Cycle> done;
    auto t = [&](sim::Addr a) -> sim::Task<void> {
        co_await dram.request(coreReq(eq, a, 64));
        done.push_back(eq.now());
    };
    std::vector<sim::Join> js;
    for (int i = 0; i < 4; ++i)
        js.push_back(sim::spawn(t(0x1000 + 64 * i)));
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    // Completion times step by the per-line serialization cost.
    EXPECT_EQ(done[1] - done[0], 4u);
    EXPECT_EQ(done[3] - done[0], 12u);
}

TEST(Dram, ChannelsProvideParallelism)
{
    sim::EventQueue eq;
    Dram dram(eq, DramParams{300, 4, 2});
    std::vector<sim::Cycle> done;
    auto t = [&](sim::Addr a) -> sim::Task<void> {
        co_await dram.request(coreReq(eq, a, 64));
        done.push_back(eq.now());
    };
    // Two accesses to different channels (line-interleaved) finish together.
    sim::spawn(t(0));
    sim::spawn(t(64));
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], done[1]);
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

namespace {

struct CacheFixture {
    sim::EventQueue eq;
    Dram dram{eq, DramParams{300, 1, 1}};
    Cache cache{eq, CacheParams{"c", 1024, 2, 2, 4}, dram};

    sim::Cycle
    timedAccess(sim::Addr a, AccessKind kind = AccessKind::Read)
    {
        sim::Cycle start = eq.now();
        sim::Join j = sim::spawn(cache.request(coreReq(eq, a, 8, kind)));
        eq.run();
        j.get();
        return eq.now() - start;
    }
};

}  // namespace

TEST(Cache, MissThenHitLatency)
{
    CacheFixture f;
    sim::Cycle miss = f.timedAccess(0x1000);
    EXPECT_GT(miss, 300u);
    sim::Cycle hit = f.timedAccess(0x1000);
    EXPECT_EQ(hit, 2u);
    EXPECT_EQ(f.cache.demandHits(), 1u);
    EXPECT_EQ(f.cache.demandMisses(), 1u);
}

TEST(Cache, SameLineDifferentWordsHit)
{
    CacheFixture f;
    f.timedAccess(0x1000);
    EXPECT_EQ(f.timedAccess(0x1038), 2u);  // same 64B line
}

TEST(Cache, LruEvictionWithinSet)
{
    CacheFixture f;  // 1KB, 2-way, 64B lines -> 8 sets; set stride 512B
    f.timedAccess(0x0000);
    f.timedAccess(0x0200);  // same set, second way
    f.timedAccess(0x0000);  // touch way 0
    f.timedAccess(0x0400);  // evicts 0x0200 (LRU)
    EXPECT_TRUE(f.cache.probe(0x0000));
    EXPECT_FALSE(f.cache.probe(0x0200));
    EXPECT_TRUE(f.cache.probe(0x0400));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    CacheFixture f;
    f.timedAccess(0x0000, AccessKind::Write);
    f.timedAccess(0x0200);
    f.timedAccess(0x0400);  // evicts dirty 0x0000
    f.eq.run();
    EXPECT_EQ(f.cache.stats().counterValue("writebacks"), 1u);
}

TEST(Cache, MshrMergesConcurrentMissesToOneLine)
{
    CacheFixture f;
    std::vector<sim::Cycle> done;
    auto t = [&](sim::Addr a) -> sim::Task<void> {
        co_await f.cache.request(coreReq(f.eq, a, 8));
        done.push_back(f.eq.now());
    };
    sim::spawn(t(0x1000));
    sim::spawn(t(0x1008));
    sim::spawn(t(0x1010));
    f.eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(f.cache.stats().counterValue("mshr_merges"), 2u);
    // All complete when the single fill returns.
    EXPECT_EQ(done[0], done[1]);
}

TEST(Cache, DemandWaitsWhenMshrsExhausted)
{
    CacheFixture f;  // 4 MSHRs
    int completed = 0;
    auto t = [&](sim::Addr a) -> sim::Task<void> {
        co_await f.cache.request(coreReq(f.eq, a, 8));
        ++completed;
    };
    for (int i = 0; i < 8; ++i)
        sim::spawn(t(0x1000 + 64 * i));
    f.eq.run();
    EXPECT_EQ(completed, 8);
    EXPECT_GT(f.cache.stats().counterValue("mshr_stalls"), 0u);
}

TEST(Cache, PrefetchDroppedWhenMshrsFull)
{
    CacheFixture f;
    auto t = [&](sim::Addr a) -> sim::Task<void> {
        co_await f.cache.request(coreReq(f.eq, a, 8));
    };
    for (int i = 0; i < 4; ++i)
        sim::spawn(t(0x1000 + 64 * i));  // fill all 4 MSHRs
    f.cache.prefetch(0x8000);            // must be dropped, not queued
    f.eq.run();
    EXPECT_EQ(f.cache.stats().counterValue("prefetch_drops"), 1u);
    EXPECT_FALSE(f.cache.probe(0x8000));
}

TEST(Cache, PrefetchInstallsLine)
{
    CacheFixture f;
    f.cache.prefetch(0x2000);
    f.eq.run();
    EXPECT_TRUE(f.cache.probe(0x2000));
    EXPECT_EQ(f.timedAccess(0x2000), 2u) << "demand after prefetch must hit";
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    CacheFixture f;  // 2-way: set holds 0x0000 and 0x0200
    f.timedAccess(0x0000);
    f.timedAccess(0x0200);  // LRU order now: 0x0000 older, 0x0200 newer
    // probe() is telemetry, not an access: hammering the older line must
    // not promote it, or occupancy probes would perturb replacement.
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(f.cache.probe(0x0000));
    f.timedAccess(0x0400);  // still evicts 0x0000, the true LRU
    EXPECT_FALSE(f.cache.probe(0x0000));
    EXPECT_TRUE(f.cache.probe(0x0200));
    EXPECT_TRUE(f.cache.probe(0x0400));
}

TEST(Cache, InvalidateAllRefusesToDropDirtyLines)
{
    CacheFixture f;
    f.timedAccess(0x0000, AccessKind::Write);  // dirty line
    // Silently discarding a dirty line would fork the modeled memory image
    // from the functional one; the cache must demand a flush first.
    EXPECT_THROW(f.cache.invalidateAll(), sim::FatalError);
    EXPECT_TRUE(f.cache.probe(0x0000)) << "failed invalidate must not eat state";
}

TEST(Cache, FlushAllWritesBackThenInvalidateAllSucceeds)
{
    CacheFixture f;
    f.timedAccess(0x0000, AccessKind::Write);
    f.timedAccess(0x0200);  // one dirty, one clean
    sim::Join j = sim::spawn(f.cache.flushAll());
    f.eq.run();
    j.get();
    EXPECT_EQ(f.cache.stats().counterValue("writebacks"), 1u);
    f.cache.invalidateAll();  // everything clean now: must not throw
    EXPECT_FALSE(f.cache.probe(0x0000));
    EXPECT_FALSE(f.cache.probe(0x0200));
}

TEST(Cache, RejectsBadGeometry)
{
    sim::EventQueue eq;
    Dram dram(eq);
    EXPECT_THROW(Cache(eq, CacheParams{"bad", 1000, 3, 2, 4}, dram),
                 std::logic_error);
}

/** Parameterized sweep: hit/miss accounting holds across geometries. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(CacheGeometry, SequentialThenRepeatAccessPattern)
{
    auto [size_kb, assoc] = GetParam();
    sim::EventQueue eq;
    Dram dram(eq, DramParams{100, 1, 1});
    Cache cache(eq, CacheParams{"c", size_kb * 1024, assoc, 2, 8}, dram);

    const unsigned lines = size_kb * 1024 / 64;
    // Touch exactly `lines` distinct lines: all misses, then all hits.
    for (unsigned i = 0; i < lines; ++i) {
        sim::spawn(cache.request(coreReq(eq, i * 64, 8)));
        eq.run();
    }
    EXPECT_EQ(cache.demandMisses(), lines);
    for (unsigned i = 0; i < lines; ++i) {
        sim::spawn(cache.request(coreReq(eq, i * 64, 8)));
        eq.run();
    }
    EXPECT_EQ(cache.demandHits(), lines) << "working set equal to capacity "
                                            "must be fully resident";
    EXPECT_EQ(cache.stats().counterValue("evictions"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(8u, 4u),
                      std::make_tuple(64u, 8u), std::make_tuple(16u, 16u)));

// ---------------------------------------------------------------------------
// MMU: timed walks + faults
// ---------------------------------------------------------------------------

namespace {

struct MmuFixture {
    sim::EventQueue eq;
    PhysicalMemory pm{1 << 24};
    sim::Addr next_frame = 0x10000;
    PageTable pt{pm, [this] {
                     sim::Addr f = next_frame;
                     next_frame += kPageSize;
                     return f;
                 }};
    FixedLatencyMem walk_port{eq, 10};
    Mmu mmu{eq, pm, walk_port, 4};

    MmuFixture() { mmu.setRoot(pt.rootPaddr()); }

    Translation
    translate(sim::Addr va, bool write = false)
    {
        Translation out;
        auto t = [&]() -> sim::Task<void> {
            out = co_await mmu.translate(va, write);
        };
        sim::Join j = sim::spawn(t());
        eq.run();
        j.get();
        return out;
    }
};

}  // namespace

TEST(Mmu, WalkChargesPerLevelLatency)
{
    MmuFixture f;
    f.pt.map(0x4000'0000, 0x1000, true);
    sim::Cycle start = f.eq.now();
    Translation tr = f.translate(0x4000'0040);
    EXPECT_FALSE(tr.fault);
    EXPECT_EQ(tr.paddr, 0x1040u);
    EXPECT_EQ(f.eq.now() - start, 30u) << "3-level walk at 10 cycles each";
    // Second translation: TLB hit, no walk.
    start = f.eq.now();
    f.translate(0x4000'0048);
    EXPECT_EQ(f.eq.now() - start, 0u);
    EXPECT_EQ(f.mmu.walks(), 1u);
}

TEST(Mmu, FaultWithoutHandlerFails)
{
    MmuFixture f;
    Translation tr = f.translate(0x7777'0000);
    EXPECT_TRUE(tr.fault);
    EXPECT_EQ(f.mmu.faults(), 1u);
}

TEST(Mmu, FaultHandlerMapsAndRetries)
{
    MmuFixture f;
    int handler_calls = 0;
    f.mmu.setFaultHandler(
        [&](sim::Addr va, bool) -> sim::Task<bool> {
            ++handler_calls;
            co_await sim::delay(f.eq, 100);
            f.pt.map(pageBase(va), 0x5000, true);
            co_return true;
        });
    Translation tr = f.translate(0x8888'0123);
    EXPECT_FALSE(tr.fault);
    EXPECT_EQ(tr.paddr, 0x5123u);
    EXPECT_EQ(handler_calls, 1);
}

TEST(Mmu, HandlerRefusalPropagatesFault)
{
    MmuFixture f;
    f.mmu.setFaultHandler(
        [](sim::Addr, bool) -> sim::Task<bool> { co_return false; });
    EXPECT_TRUE(f.translate(0x9999'0000).fault);
}

TEST(Mmu, WritePermissionFaultsEvenOnTlbHit)
{
    MmuFixture f;
    f.pt.map(0xa000'0000, 0x1000, /*writable=*/false);
    EXPECT_FALSE(f.translate(0xa000'0000, false).fault);  // cached in TLB
    EXPECT_TRUE(f.translate(0xa000'0000, true).fault);
}

TEST(Mmu, ShootdownForcesRewalk)
{
    MmuFixture f;
    f.pt.map(0xb000'0000, 0x1000, true);
    f.translate(0xb000'0000);
    EXPECT_EQ(f.mmu.walks(), 1u);
    // Remap to a different frame; without a shootdown the TLB is stale.
    f.pt.map(0xb000'0000, 0x2000, true);
    f.mmu.invalidate(0xb000'0000);
    Translation tr = f.translate(0xb000'0040);
    EXPECT_EQ(tr.paddr, 0x2040u);
    EXPECT_EQ(f.mmu.walks(), 2u);
}
