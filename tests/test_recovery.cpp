/**
 * @file
 * Tests for fault recovery & graceful degradation: the architectural error
 * registers (ErrStatus/ErrCause/ErrAddr/AcceptCount), poison propagation,
 * Quiesce/DeviceReset semantics, the OS recovery driver (retry, replay,
 * degradation to the software queue), typed-error propagation out of
 * detached tasks, deadlock-report fault context, and the timed-op paths
 * under back-to-back timeouts.
 */
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define MAPLE_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MAPLE_TEST_ASAN 1
#endif
#endif
#ifdef MAPLE_TEST_ASAN
#include <sanitizer/lsan_interface.h>
#endif

#include "core/maple_runtime.hpp"
#include "fault/fault.hpp"
#include "os/maple_driver.hpp"
#include "sim/error.hpp"
#include "soc/soc.hpp"

using namespace maple;
using core::Counter;
using core::LoadOp;
using core::MapleApi;
using core::MapleStatus;
using core::StoreOp;

namespace {

struct Fixture {
    soc::Soc soc;
    os::Process &proc;
    MapleApi api;

    explicit Fixture(soc::SocConfig cfg = soc::SocConfig::fpga(),
                     os::RecoveryConfig rc = os::RecoveryConfig{})
        : soc(std::move(cfg)), proc(soc.createProcess("test")),
          api(MapleApi::attach(proc, soc.maple(), rc))
    {
    }
};

}  // namespace

// ---------------------------------------------------------------------------
// Typed-error propagation across coroutine boundaries (detached tasks)
// ---------------------------------------------------------------------------

TEST(DetachedTasks, EscapedFatalErrorSurfacesTypedFromRun)
{
    sim::EventQueue eq;
    auto boom = [](sim::EventQueue &q) -> sim::Task<void> {
        co_await sim::delay(q, 10);
        MAPLE_THROW(sim::FatalError, "detached task exploded");
    };
    sim::spawnDetached(eq, boom(eq));
    // Nobody joins a detached task; the error must still surface as the
    // typed exception from the driving run(), not std::terminate.
    try {
        eq.run();
        FAIL() << "expected sim::FatalError";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("detached task exploded"),
                  std::string::npos);
    }
    EXPECT_FALSE(eq.hasTaskError()) << "rethrow must clear the slot";
}

TEST(DetachedTasks, FirstOfSeveralErrorsWins)
{
#ifdef MAPLE_TEST_ASAN
    // The second task's frame is stranded by design: the first error
    // unwinds run() while "second" is still scheduled.
    __lsan::ScopedDisabler no_leak_check;
#endif
    sim::EventQueue eq;
    auto boom = [](sim::EventQueue &q, sim::Cycle at,
                   const char *msg) -> sim::Task<void> {
        co_await sim::delay(q, at);
        throw sim::FatalError(msg);
    };
    sim::spawnDetached(eq, boom(eq, 20, "second"));
    sim::spawnDetached(eq, boom(eq, 10, "first"));
    try {
        eq.run();
        FAIL() << "expected sim::FatalError";
    } catch (const sim::FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: first");
    }
}

// ---------------------------------------------------------------------------
// Deadlock diagnostics carry recent fault-injection context
// ---------------------------------------------------------------------------

TEST(DeadlockDiagnostics, ReportAppendsRecentInjectedFaults)
{
#ifdef MAPLE_TEST_ASAN
    // The deadlocked consumer's coroutine frame is stranded by design.
    __lsan::ScopedDisabler no_leak_check;
#endif
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.fault.seed = 21;
    cfg.fault.mmio = {0.5, 64};  // the init/open/consume MMIO ops draw
    Fixture f(cfg);
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        (void)co_await f.api.consume(c, 0);  // parks forever: no producer
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(consumer(f.soc.core(0))));
    try {
        f.soc.run(std::move(joins), 10'000'000);
        FAIL() << "expected sim::DeadlockError";
    } catch (const sim::DeadlockError &e) {
        EXPECT_NE(e.report().find("recent injected faults"), std::string::npos)
            << e.report();
        EXPECT_NE(e.report().find("mmio_delay"), std::string::npos)
            << e.report();
    }
}

// ---------------------------------------------------------------------------
// Timed ops under back-to-back timeouts (S3)
// ---------------------------------------------------------------------------

TEST(TimedOps, BackToBackTimeoutsCountAndStayConsistent)
{
    auto run = []() {
        soc::SocConfig cfg = soc::SocConfig::fpga();
        cfg.fault.seed = 11;
        cfg.fault.mmio = {0.3, 64};  // RNG draws interleave with the timeouts
        Fixture f(cfg);
        std::uint64_t timed_out = 0;
        auto t = [&](cpu::Core &c) -> sim::Task<void> {
            co_await f.api.init(c, 1, 2, 8);
            EXPECT_TRUE(co_await f.api.open(c, 0));
            co_await f.api.setQueueTimeout(c, 0, 2'000);
            // Back-to-back consume timeouts on an empty queue: every one
            // must report TimedOut and leave the queue empty.
            for (int i = 0; i < 4; ++i) {
                MapleStatus st = MapleStatus::Ok;
                std::uint64_t v = co_await f.api.consumeTimed(c, 0, st);
                EXPECT_EQ(st, MapleStatus::TimedOut) << "iteration " << i;
                EXPECT_EQ(v, 0u);
            }
            EXPECT_EQ(co_await f.api.occupancy(c, 0), 0u);
            // Fill the queue, then back-to-back produce timeouts: each
            // drops its value without corrupting the accepted entries.
            EXPECT_TRUE(co_await f.api.produceTimed(c, 0, 1));
            EXPECT_TRUE(co_await f.api.produceTimed(c, 0, 2));
            for (int i = 0; i < 3; ++i)
                EXPECT_FALSE(co_await f.api.produceTimed(c, 0, 90 + i));
            timed_out = co_await f.api.readCounter(c, Counter::TimedOutOps);
            EXPECT_EQ(co_await f.api.occupancy(c, 0), 2u);
            EXPECT_EQ(co_await f.api.consume(c, 0), 1u);
            EXPECT_EQ(co_await f.api.consume(c, 0), 2u);
            EXPECT_EQ(co_await f.api.occupancy(c, 0), 0u);
            EXPECT_EQ(co_await f.api.queueStatus(c, 0), MapleStatus::Ok);
        };
        std::vector<sim::Join> joins;
        joins.push_back(sim::spawn(t(f.soc.core(0))));
        sim::Cycle cycles = f.soc.run(std::move(joins), 50'000'000);
        return std::pair<sim::Cycle, std::uint64_t>(cycles, timed_out);
    };
    auto [c1, t1] = run();
    auto [c2, t2] = run();
    EXPECT_EQ(t1, 7u) << "4 consume + 3 produce timeouts";
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(c1, c2) << "timeout retries must not perturb the RNG streams";
}

// ---------------------------------------------------------------------------
// Architectural error registers & poison propagation
// ---------------------------------------------------------------------------

TEST(ErrorRegisters, HardFaultLatchesPoisonsAndResetClears)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.fault.seed = 3;
    cfg.fault.hard_spad = {1.0, 1};  // every scratchpad fill poisons
    Fixture f(cfg);
    unsigned notified = 0;
    f.soc.maple().setErrorCallback([&] { ++notified; });
    bool done = false;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        sim::Addr a = f.proc.alloc(8, "A");
        f.proc.writeScalar<std::uint64_t>(a, 42);
        co_await f.api.producePtr(c, 0, a);
        co_await c.storeFence();
        co_await sim::delay(f.soc.eq(), 5'000);  // let the fetch poison

        std::uint64_t errstat =
            co_await c.load(core::encodeLoad(f.api.base(), 0, LoadOp::ErrStatus));
        EXPECT_EQ(errstat & 1, 1u) << "error latched";
        EXPECT_EQ((errstat >> 1) & 1, 0u) << "not quiesced";
        EXPECT_EQ((errstat >> 8) & 0xff, 1u) << "one hard fault";
        EXPECT_EQ(co_await c.load(
                      core::encodeLoad(f.api.base(), 0, LoadOp::ErrCause)),
                  static_cast<std::uint64_t>(fault::FaultClass::HardSpad));
        EXPECT_NE(co_await c.load(
                      core::encodeLoad(f.api.base(), 0, LoadOp::ErrAddr)),
                  0u);
        EXPECT_TRUE(f.soc.maple().errorLatched(0));
        EXPECT_EQ(notified, 1u) << "error callback fired on the latch";

        // The poisoned entry surfaces as status, never as data.
        EXPECT_EQ(co_await f.api.consume(c, 0), 0u);
        EXPECT_EQ(co_await c.load(core::encodeLoad(f.api.base(), 0,
                                                   LoadOp::ConsumeStatus)),
                  static_cast<std::uint64_t>(MapleStatus::Poisoned));
        EXPECT_EQ(co_await f.api.readCounter(c, Counter::PoisonedResponses), 1u);
        EXPECT_EQ(co_await f.api.readCounter(c, Counter::HardFaults), 1u);

        // DeviceReset clears the latch; AcceptCount survives it.
        EXPECT_EQ(co_await c.load(
                      core::encodeLoad(f.api.base(), 0, LoadOp::AcceptCount)),
                  1u);
        co_await c.store(core::encodeStore(f.api.base(), 0, StoreOp::DeviceReset), 0);
        co_await c.storeFence();
        errstat = co_await c.load(
            core::encodeLoad(f.api.base(), 0, LoadOp::ErrStatus));
        EXPECT_EQ(errstat & 1, 0u) << "reset clears the latch";
        EXPECT_FALSE(f.soc.maple().errorLatched(0));
        EXPECT_EQ(co_await c.load(
                      core::encodeLoad(f.api.base(), 0, LoadOp::AcceptCount)),
                  1u)
            << "AcceptCount survives DeviceReset";
        EXPECT_EQ(co_await f.api.occupancy(c, 0), 0u);
        done = true;
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(t(f.soc.core(0))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(done);
}

TEST(ErrorRegisters, QuiesceDropsOpsAndResumeRestoresService)
{
    Fixture f;
    bool done = false;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 2, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        co_await f.api.setQueueTimeout(c, 0, 2'000);

        co_await c.store(core::encodeStore(f.api.base(), 0, StoreOp::Quiesce), 1);
        co_await c.storeFence();
        std::uint64_t errstat = co_await c.load(
            core::encodeLoad(f.api.base(), 0, LoadOp::ErrStatus));
        EXPECT_EQ((errstat >> 1) & 1, 1u) << "quiesced bit";

        // Produce- and consume-class ops drop with Quiesced status; the
        // config pipeline (used above) stays live throughout.
        EXPECT_FALSE(co_await f.api.produceTimed(c, 0, 5));
        EXPECT_EQ(co_await f.api.queueStatus(c, 0), MapleStatus::Quiesced);
        EXPECT_EQ(co_await f.api.consume(c, 0), 0u);
        EXPECT_EQ(co_await c.load(core::encodeLoad(f.api.base(), 0,
                                                   LoadOp::ConsumeStatus)),
                  static_cast<std::uint64_t>(MapleStatus::Quiesced));

        co_await c.store(core::encodeStore(f.api.base(), 0, StoreOp::Quiesce), 0);
        co_await c.storeFence();
        EXPECT_TRUE(co_await f.api.produceTimed(c, 0, 5));
        EXPECT_EQ(co_await f.api.consume(c, 0), 5u);
        done = true;
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(t(f.soc.core(0))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(done);
}

TEST(ErrorRegisters, DeviceResetAbortsParkedConsumer)
{
    Fixture f;
    bool aborted = false;
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        // Parks on the empty queue (no timeout): only the reset frees it.
        EXPECT_EQ(co_await f.api.consume(c, 0), 0u);
        EXPECT_EQ(co_await c.load(core::encodeLoad(f.api.base(), 0,
                                                   LoadOp::ConsumeStatus)),
                  static_cast<std::uint64_t>(MapleStatus::Aborted));
        aborted = true;
    };
    auto resetter = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 20'000);
        co_await c.store(core::encodeStore(f.api.base(), 0, StoreOp::DeviceReset), 0);
        co_await c.storeFence();
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(consumer(f.soc.core(0))));
    joins.push_back(sim::spawn(resetter(f.soc.core(1))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(aborted);
}

TEST(ErrorRegisters, DeviceResetOverwritesStatusesWithAborted)
{
    // Regression: a pre-reset Ok left in the status registers must not be
    // readable after DeviceReset, or the recovery driver would trust it and
    // retire a journal entry the replay is about to regenerate (duplicate
    // delivery). The reset overwrites all three with Aborted.
    Fixture f;
    bool done = false;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        co_await f.api.produce(c, 0, 5);
        co_await c.storeFence();
        EXPECT_EQ(co_await c.load(core::encodeLoad(f.api.base(), 0,
                                                   LoadOp::ProduceStatus)),
                  static_cast<std::uint64_t>(MapleStatus::Ok));
        EXPECT_EQ(co_await f.api.consume(c, 0), 5u);
        EXPECT_EQ(co_await c.load(core::encodeLoad(f.api.base(), 0,
                                                   LoadOp::ConsumeStatus)),
                  static_cast<std::uint64_t>(MapleStatus::Ok));

        co_await c.store(core::encodeStore(f.api.base(), 0, StoreOp::DeviceReset), 0);
        co_await c.storeFence();
        EXPECT_EQ(co_await c.load(core::encodeLoad(f.api.base(), 0,
                                                   LoadOp::ProduceStatus)),
                  static_cast<std::uint64_t>(MapleStatus::Aborted))
            << "stale Ok must not survive the reset";
        EXPECT_EQ(co_await c.load(core::encodeLoad(f.api.base(), 0,
                                                   LoadOp::ConsumeStatus)),
                  static_cast<std::uint64_t>(MapleStatus::Aborted));
        EXPECT_EQ(co_await f.api.queueStatus(c, 0), MapleStatus::Aborted);

        // Service resumes normally after the reset.
        co_await f.api.produce(c, 0, 6);
        co_await c.storeFence();
        EXPECT_EQ(co_await f.api.consume(c, 0), 6u);
        done = true;
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(t(f.soc.core(0))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(done);
}

TEST(ErrorRegisters, QuiesceIsPerQueue)
{
    // Regression: quiescing one queue must not drop ops on another, so two
    // queues can recover concurrently without voiding each other's quiesce
    // window.
    Fixture f;
    bool done = false;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 2, 2, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        EXPECT_TRUE(co_await f.api.open(c, 1));
        co_await f.api.setQueueTimeout(c, 0, 2'000);
        co_await f.api.setQueueTimeout(c, 1, 2'000);

        co_await c.store(core::encodeStore(f.api.base(), 0, StoreOp::Quiesce), 1);
        co_await c.storeFence();
        std::uint64_t s0 = co_await c.load(
            core::encodeLoad(f.api.base(), 0, LoadOp::ErrStatus));
        std::uint64_t s1 = co_await c.load(
            core::encodeLoad(f.api.base(), 1, LoadOp::ErrStatus));
        EXPECT_EQ((s0 >> 1) & 1, 1u) << "queue 0 quiesced";
        EXPECT_EQ((s1 >> 1) & 1, 0u) << "queue 1 not quiesced";

        EXPECT_FALSE(co_await f.api.produceTimed(c, 0, 5));
        EXPECT_EQ(co_await f.api.queueStatus(c, 0), MapleStatus::Quiesced);
        EXPECT_TRUE(co_await f.api.produceTimed(c, 1, 7))
            << "queue 1 keeps accepting while queue 0 is quiesced";
        EXPECT_EQ(co_await f.api.consume(c, 1), 7u);

        co_await c.store(core::encodeStore(f.api.base(), 0, StoreOp::Quiesce), 0);
        co_await c.storeFence();
        EXPECT_TRUE(co_await f.api.produceTimed(c, 0, 5));
        EXPECT_EQ(co_await f.api.consume(c, 0), 5u);
        done = true;
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(t(f.soc.core(0))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(done);
}

TEST(ErrorRegisters, ErrorLatchIsPerQueue)
{
    // Regression: resetting one queue must not clear another queue's latched
    // fault — the victim's produce-side escalation check reads its own
    // ErrStatus bit 0.
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.fault.seed = 3;
    cfg.fault.hard_spad = {1.0, 1};  // every scratchpad fill poisons
    Fixture f(cfg);
    bool done = false;
    auto t = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 2, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        EXPECT_TRUE(co_await f.api.open(c, 1));
        sim::Addr a = f.proc.alloc(8, "A");
        f.proc.writeScalar<std::uint64_t>(a, 42);
        co_await f.api.producePtr(c, 0, a);
        co_await c.storeFence();
        co_await sim::delay(f.soc.eq(), 5'000);  // let the fetch poison

        std::uint64_t s0 = co_await c.load(
            core::encodeLoad(f.api.base(), 0, LoadOp::ErrStatus));
        std::uint64_t s1 = co_await c.load(
            core::encodeLoad(f.api.base(), 1, LoadOp::ErrStatus));
        EXPECT_EQ(s0 & 1, 1u) << "fault latched on queue 0";
        EXPECT_EQ(s1 & 1, 0u) << "queue 1 untouched";
        EXPECT_TRUE(f.soc.maple().errorLatched(0));
        EXPECT_FALSE(f.soc.maple().errorLatched(1));

        // Resetting the *other* queue must leave queue 0's latch alone.
        co_await c.store(core::encodeStore(f.api.base(), 1, StoreOp::DeviceReset), 0);
        co_await c.storeFence();
        s0 = co_await c.load(
            core::encodeLoad(f.api.base(), 0, LoadOp::ErrStatus));
        EXPECT_EQ(s0 & 1, 1u) << "queue 1's reset must not clear queue 0";

        co_await c.store(core::encodeStore(f.api.base(), 0, StoreOp::DeviceReset), 0);
        co_await c.storeFence();
        s0 = co_await c.load(
            core::encodeLoad(f.api.base(), 0, LoadOp::ErrStatus));
        EXPECT_EQ(s0 & 1, 0u) << "own reset clears the latch";
        done = true;
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(t(f.soc.core(0))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(done);
}

TEST(TimedOps, ArmingTimeoutUnparksFullQueueProduce)
{
    // Regression: a produce parked on a full queue with bound 0 (an app INIT
    // zeroed the register) must pick up a QueueTimeout armed *while it is
    // parked* — the recovery drain depends on such ops eventually timing
    // out instead of holding the in-flight count up forever.
    Fixture f;
    bool produced = false;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 2, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        co_await f.api.produce(c, 0, 1);
        co_await f.api.produce(c, 0, 2);
        co_await c.storeFence();
        // Queue full, bound 0: this parks until the helper arms the bound.
        co_await f.api.produce(c, 0, 3);
        co_await c.storeFence();
        EXPECT_EQ(co_await c.load(core::encodeLoad(f.api.base(), 0,
                                                   LoadOp::ProduceStatus)),
                  static_cast<std::uint64_t>(MapleStatus::TimedOut))
            << "the armed bound must take effect on the parked produce";
        EXPECT_EQ(co_await f.api.occupancy(c, 0), 2u)
            << "the timed-out value is dropped, accepted entries intact";
        EXPECT_EQ(co_await f.api.consume(c, 0), 1u);
        EXPECT_EQ(co_await f.api.consume(c, 0), 2u);
        produced = true;
    };
    auto helper = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 20'000);
        co_await f.api.setQueueTimeout(c, 0, 500);
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(producer(f.soc.core(0))));
    joins.push_back(sim::spawn(helper(f.soc.core(1))));
    f.soc.run(std::move(joins), 10'000'000);
    EXPECT_TRUE(produced);
}

// ---------------------------------------------------------------------------
// Watchdog owner masking (degraded devices leave the parked accounting)
// ---------------------------------------------------------------------------

TEST(WatchdogMask, MaskedOwnersLeaveParkedWaiterAccounting)
{
    sim::EventQueue eq;
    fault::FaultInjector fi(eq, fault::FaultConfig{});
    const std::string owner = "maple0";
    auto parked = [&]() -> sim::Task<void> {
        fault::ParkGuard g(eq, "consume_empty", owner);
        co_await sim::delay(eq, 100);
    };
    sim::Join j = sim::spawn(parked());
    EXPECT_EQ(fi.parkedWaiters(), 1u);
    EXPECT_EQ(fi.unmaskedParkedWaiters(), 1u);

    fi.maskOwner(owner);  // permanent mask, as degrade() applies
    EXPECT_EQ(fi.parkedWaiters(), 1u);
    EXPECT_EQ(fi.unmaskedParkedWaiters(), 0u);
    {
        // A recovery's scoped mask nests on top without disturbing it.
        fault::OwnerMaskGuard scoped(eq, owner);
        EXPECT_EQ(fi.unmaskedParkedWaiters(), 0u);
    }
    EXPECT_EQ(fi.unmaskedParkedWaiters(), 0u) << "permanent mask still holds";
    fi.unmaskOwner(owner);
    EXPECT_EQ(fi.unmaskedParkedWaiters(), 1u);

    eq.run();
    EXPECT_TRUE(j.done());
    EXPECT_EQ(fi.parkedWaiters(), 0u);
}

// ---------------------------------------------------------------------------
// The OS recovery driver end to end
// ---------------------------------------------------------------------------

namespace {

struct RecoveryRun {
    sim::Cycle cycles = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t replayed = 0;
    std::uint64_t degraded = 0;
    bool values_ok = true;
};

/**
 * A decoupled gather under hard scratchpad faults with the recovery driver
 * armed: @p n pointer-produces on core 0, @p n reliable consumes on core 1,
 * exact FIFO-order value validation (replay must preserve order).
 */
RecoveryRun
recoveryGather(unsigned recovery_budget, double hard_rate = 0.02,
               unsigned n = 256, std::uint64_t seed = 5)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.fault.seed = seed;
    cfg.fault.hard_spad = {hard_rate, 1};
    os::RecoveryConfig rc;
    rc.enabled = true;
    rc.recovery_budget = recovery_budget;
    Fixture f(cfg, rc);

    sim::Addr a = f.proc.alloc(n * 8, "A");
    for (unsigned i = 0; i < n; ++i)
        f.proc.writeScalar<std::uint64_t>(a + 8 * i, 100 + 3 * i);

    RecoveryRun r;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 8, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (unsigned i = 0; i < n; ++i)
            EXPECT_TRUE(co_await f.api.producePtrReliable(c, 0, a + 8 * i));
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 2'000);  // let init land
        for (unsigned i = 0; i < n; ++i) {
            std::uint64_t v = co_await f.api.consumeReliable(c, 0);
            if (v != 100 + 3 * static_cast<std::uint64_t>(i))
                r.values_ok = false;
        }
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(producer(f.soc.core(0))));
    joins.push_back(sim::spawn(consumer(f.soc.core(1))));
    r.cycles = f.soc.run(std::move(joins), 200'000'000);
    os::MapleDriver *drv = f.api.driver();
    EXPECT_NE(drv, nullptr);
    r.recoveries = drv->recoveries();
    r.replayed = drv->replayedOps();
    r.degraded = drv->degradedQueues();
    return r;
}

}  // namespace

TEST(RecoveryDriver, HardFaultsRecoverWithCorrectInOrderValues)
{
    RecoveryRun r = recoveryGather(/*recovery_budget=*/64);
    EXPECT_TRUE(r.values_ok) << "every value exact and in FIFO order";
    EXPECT_GT(r.recoveries, 0u) << "rate 0.02 over 256 fetches must fire";
    EXPECT_EQ(r.degraded, 0u) << "budget 64 never degrades here";
}

TEST(RecoveryDriver, RecoveryIsDeterministicPerSeed)
{
    RecoveryRun a = recoveryGather(64);
    RecoveryRun b = recoveryGather(64);
    EXPECT_GT(a.recoveries, 0u);
    EXPECT_EQ(a.cycles, b.cycles) << "same seed, bit-identical recovery";
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.replayed, b.replayed);
}

TEST(RecoveryDriver, ExhaustedBudgetDegradesToSoftwareQueueCorrectly)
{
    // Budget 0: the first recovery immediately degrades the queue to the
    // software ring; the workload must still complete with exact values.
    RecoveryRun r = recoveryGather(/*recovery_budget=*/0);
    EXPECT_TRUE(r.values_ok)
        << "degraded path must deliver every value in order";
    EXPECT_EQ(r.degraded, 1u);
    EXPECT_GT(r.recoveries, 0u);
}

TEST(RecoveryDriver, DisabledRecoveryIsAnExactPassThrough)
{
    // Without the driver the *Reliable ops are aliases of the raw ops: a
    // faults-off run must be cycle-identical either way.
    auto run = [](bool reliable) {
        Fixture f;
        constexpr unsigned n = 64;
        sim::Addr a = f.proc.alloc(n * 8, "A");
        for (unsigned i = 0; i < n; ++i)
            f.proc.writeScalar<std::uint64_t>(a + 8 * i, 7 + i);
        std::uint64_t sum = 0;
        auto producer = [&](cpu::Core &c) -> sim::Task<void> {
            co_await f.api.init(c, 1, 8, 8);
            EXPECT_TRUE(co_await f.api.open(c, 0));
            for (unsigned i = 0; i < n; ++i) {
                if (reliable)
                    EXPECT_TRUE(co_await f.api.producePtrReliable(c, 0, a + 8 * i));
                else
                    co_await f.api.producePtr(c, 0, a + 8 * i);
            }
        };
        auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
            co_await sim::delay(f.soc.eq(), 2'000);
            // Deliberately if/else, not a conditional expression: GCC
            // miscompiles `cond ? co_await a : co_await b` (the awaiting
            // frame's continuation is lost and the task never resumes).
            for (unsigned i = 0; i < n; ++i) {
                if (reliable)
                    sum += co_await f.api.consumeReliable(c, 0);
                else
                    sum += co_await f.api.consume(c, 0);
            }
        };
        std::vector<sim::Join> joins;
        joins.push_back(sim::spawn(producer(f.soc.core(0))));
        joins.push_back(sim::spawn(consumer(f.soc.core(1))));
        sim::Cycle cycles = f.soc.run(std::move(joins), 10'000'000);
        EXPECT_EQ(f.api.driver(), nullptr);
        return std::pair<sim::Cycle, std::uint64_t>(cycles, sum);
    };
    auto [raw_cycles, raw_sum] = run(false);
    auto [rel_cycles, rel_sum] = run(true);
    EXPECT_EQ(raw_sum, rel_sum);
    EXPECT_EQ(raw_cycles, rel_cycles);
}

TEST(RecoveryDriver, HardTlbFaultsAlsoRecover)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.fault.seed = 9;
    cfg.fault.hard_tlb = {0.02, 1};
    os::RecoveryConfig rc;
    rc.enabled = true;
    rc.recovery_budget = 64;
    Fixture f(cfg, rc);
    constexpr unsigned n = 256;
    sim::Addr a = f.proc.alloc(n * 8, "A");
    for (unsigned i = 0; i < n; ++i)
        f.proc.writeScalar<std::uint64_t>(a + 8 * i, 100 + 3 * i);
    bool ok = true;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 8, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (unsigned i = 0; i < n; ++i)
            EXPECT_TRUE(co_await f.api.producePtrReliable(c, 0, a + 8 * i));
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 2'000);
        for (unsigned i = 0; i < n; ++i)
            ok &= co_await f.api.consumeReliable(c, 0) ==
                  100 + 3 * static_cast<std::uint64_t>(i);
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(producer(f.soc.core(0))));
    joins.push_back(sim::spawn(consumer(f.soc.core(1))));
    f.soc.run(std::move(joins), 200'000'000);
    EXPECT_TRUE(ok);
    EXPECT_GT(f.api.driver()->recoveries(), 0u);
    EXPECT_GT(f.soc.maple().counter(Counter::HardFaults), 0u);
}

TEST(RecoveryDriver, TwoQueuesRecoverIndependently)
{
    // Regression for the per-queue quiesce/error/in-flight split: recoveries
    // on two queues of the same device may overlap, and neither may void the
    // other's quiesce window, clear its latched fault, or stall its drain on
    // the other queue's in-flight produces. Values on both streams must
    // arrive exact and in order.
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.fault.seed = 7;
    cfg.fault.hard_spad = {0.02, 1};
    os::RecoveryConfig rc;
    rc.enabled = true;
    rc.recovery_budget = 64;
    Fixture f(cfg, rc);
    constexpr unsigned n = 128;
    sim::Addr a = f.proc.alloc(n * 8, "A");
    sim::Addr b = f.proc.alloc(n * 8, "B");
    for (unsigned i = 0; i < n; ++i) {
        f.proc.writeScalar<std::uint64_t>(a + 8 * i, 100 + 3 * i);
        f.proc.writeScalar<std::uint64_t>(b + 8 * i, 900 + 7 * i);
    }
    bool ok = true;
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 2, 8, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        EXPECT_TRUE(co_await f.api.open(c, 1));
        for (unsigned i = 0; i < n; ++i) {
            EXPECT_TRUE(co_await f.api.producePtrReliable(c, 0, a + 8 * i));
            EXPECT_TRUE(co_await f.api.producePtrReliable(c, 1, b + 8 * i));
        }
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 2'000);
        for (unsigned i = 0; i < n; ++i) {
            ok &= co_await f.api.consumeReliable(c, 0) ==
                  100 + 3 * static_cast<std::uint64_t>(i);
            ok &= co_await f.api.consumeReliable(c, 1) ==
                  900 + 7 * static_cast<std::uint64_t>(i);
        }
    };
    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(producer(f.soc.core(0))));
    joins.push_back(sim::spawn(consumer(f.soc.core(1))));
    f.soc.run(std::move(joins), 400'000'000);
    EXPECT_TRUE(ok) << "both streams exact and in FIFO order";
    EXPECT_GT(f.api.driver()->recoveries(), 0u);
    EXPECT_EQ(f.api.driver()->degradedQueues(), 0u);
}
