/**
 * @file
 * Direct unit tests for the MapleQueue ring buffer: slot reservation,
 * out-of-order fills re-ordered by slot index, wraparound, reconfiguration
 * and the signal wake-ups the pipelines rely on.
 */
#include <gtest/gtest.h>

#include "core/maple_queue.hpp"
#include "sim/random.hpp"

using namespace maple;
using core::MapleQueue;

TEST(MapleQueue, StartsUnconfigured)
{
    MapleQueue q;
    EXPECT_FALSE(q.configured());
    EXPECT_FALSE(q.headValid());
    q.configure(8, 4);
    EXPECT_TRUE(q.configured());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.capacity(), 8u);
    EXPECT_EQ(q.entryBytes(), 4u);
}

TEST(MapleQueue, RejectsBadGeometry)
{
    MapleQueue q;
    EXPECT_THROW(q.configure(0, 4), std::logic_error);
    EXPECT_THROW(q.configure(8, 3), std::logic_error);
    EXPECT_THROW(q.configure(8, 16), std::logic_error);
}

TEST(MapleQueue, InOrderFillAndPop)
{
    MapleQueue q;
    q.configure(4, 8);
    for (std::uint64_t i = 0; i < 4; ++i) {
        unsigned slot = q.reserveSlot();
        q.fillSlot(slot, 100 + i);
    }
    EXPECT_TRUE(q.full());
    for (std::uint64_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(q.headValid());
        EXPECT_EQ(q.pop(), 100 + i);
    }
    EXPECT_TRUE(q.empty());
}

TEST(MapleQueue, OutOfOrderFillsPopInReservationOrder)
{
    MapleQueue q;
    q.configure(4, 8);
    unsigned s0 = q.reserveSlot();
    unsigned s1 = q.reserveSlot();
    unsigned s2 = q.reserveSlot();
    EXPECT_FALSE(q.headValid()) << "nothing filled yet";
    q.fillSlot(s2, 22);  // memory responses arrive out of order
    q.fillSlot(s1, 11);
    EXPECT_FALSE(q.headValid()) << "head slot still outstanding";
    q.fillSlot(s0, 0);
    EXPECT_TRUE(q.headValid(3));
    EXPECT_EQ(q.pop(), 0u);
    EXPECT_EQ(q.pop(), 11u);
    EXPECT_EQ(q.pop(), 22u);
}

TEST(MapleQueue, WrapAroundKeepsOrderAcrossManyLaps)
{
    MapleQueue q;
    q.configure(3, 4);  // deliberately not a power of two
    std::uint64_t next_fill = 0, next_expect = 0;
    sim::Rng rng(9);
    for (int step = 0; step < 1000; ++step) {
        if (!q.full() && (q.empty() || rng.below(2) == 0)) {
            q.fillSlot(q.reserveSlot(), next_fill++);
        } else {
            ASSERT_TRUE(q.headValid());
            ASSERT_EQ(q.pop(), next_expect++);
        }
    }
    while (!q.empty())
        ASSERT_EQ(q.pop(), next_expect++);
    EXPECT_EQ(next_fill, next_expect);
}

TEST(MapleQueue, HeadValidCountsOnlyContiguousValidEntries)
{
    MapleQueue q;
    q.configure(8, 4);
    unsigned s0 = q.reserveSlot();
    unsigned s1 = q.reserveSlot();
    (void)q.reserveSlot();  // s2 reserved, never filled here
    q.fillSlot(s0, 1);
    q.fillSlot(s1, 2);
    EXPECT_TRUE(q.headValid(1));
    EXPECT_TRUE(q.headValid(2));
    EXPECT_FALSE(q.headValid(3)) << "third entry is reserved but invalid";
    EXPECT_EQ(q.occupancy(), 3u) << "reserved slots count as occupancy";
}

TEST(MapleQueue, OpenIsExclusiveUntilClosed)
{
    MapleQueue q;
    EXPECT_FALSE(q.tryOpen()) << "unconfigured queues cannot be opened";
    q.configure(4, 4);
    EXPECT_TRUE(q.tryOpen());
    EXPECT_FALSE(q.tryOpen());
    q.close();
    EXPECT_TRUE(q.tryOpen());
}

TEST(MapleQueue, CloseDiscardsEntriesAndResetsPointers)
{
    MapleQueue q;
    q.configure(4, 8);
    q.fillSlot(q.reserveSlot(), 5);
    q.fillSlot(q.reserveSlot(), 6);
    q.close();
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.configured()) << "close keeps the geometry";
    q.fillSlot(q.reserveSlot(), 7);
    EXPECT_EQ(q.pop(), 7u);
}

TEST(MapleQueue, SignalsWakeOnSpaceAndData)
{
    MapleQueue q;
    q.configure(1, 8);
    sim::Signal data_sig = q.dataSignal();
    EXPECT_FALSE(data_sig.ready());
    q.fillSlot(q.reserveSlot(), 9);
    EXPECT_TRUE(data_sig.ready()) << "fill must fire the data signal";

    sim::Signal space_sig = q.spaceSignal();
    EXPECT_FALSE(space_sig.ready());
    (void)q.pop();
    EXPECT_TRUE(space_sig.ready()) << "pop must fire the space signal";
}

TEST(MapleQueue, MisuseIsRejected)
{
    MapleQueue q;
    q.configure(2, 8);
    EXPECT_THROW(q.pop(), std::logic_error);          // empty pop
    unsigned s = q.reserveSlot();
    q.fillSlot(s, 1);
    EXPECT_THROW(q.fillSlot(s, 2), std::logic_error);  // double fill
    (void)q.reserveSlot();
    EXPECT_THROW(q.reserveSlot(), std::logic_error);   // overflow reserve
}
