/**
 * @file
 * Resilient-campaign tests: journal append/replay, retry taxonomy and
 * deterministic backoff, worker liveness (hung vs. slow), SIGTERM-grace
 * flushing, resume-after-runner-kill equivalence, and the deterministic
 * chaos harness converging to clean-run results.
 *
 * Campaigns that need a distinct environment (chaos plans, the runner
 * kill-switch) run in a forked child so this process's environment and the
 * other tests stay untouched.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "campaign/health.hpp"
#include "campaign/journal.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "sim/error.hpp"

using namespace maple;
using harness::json::Value;
namespace json = harness::json;
namespace fs = std::filesystem;

namespace {

struct TempDir {
    std::string path;
    TempDir()
    {
        std::string templ = ::testing::TempDir() + "resilienceXXXXXX";
        path = ::mkdtemp(templ.data());
    }
    ~TempDir() { fs::remove_all(path); }
};

/** Run a campaign in a forked child with extra environment variables. */
int
runCampaignInFork(const campaign::CampaignSpec &spec,
                  const campaign::RunnerOptions &opts,
                  const std::vector<std::pair<std::string, std::string>> &env)
{
    pid_t pid = ::fork();
    if (pid == 0) {
        for (const auto &[k, v] : env)
            ::setenv(k.c_str(), v.c_str(), 1);
        int rc = 99;
        try {
            rc = campaign::runCampaign(spec, opts);
        } catch (...) {
            rc = 98;
        }
        std::fflush(nullptr);
        ::_exit(rc);
    }
    int ws = 0;
    ::waitpid(pid, &ws, 0);
    return WIFEXITED(ws) ? WEXITSTATUS(ws) : 128 + WTERMSIG(ws);
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
    return s;
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

json::Value
record(std::initializer_list<std::pair<const char *, json::Value>> members)
{
    json::Object o;
    for (const auto &[k, v] : members)
        o.emplace_back(k, v);
    return json::Value(std::move(o));
}

TEST(CampaignJournal, AppendReplayRoundTripSkipsTornLine)
{
    TempDir dir;
    const std::string path = dir.path + "/journal.jsonl";
    {
        campaign::Journal j;
        j.open(path, /*truncate=*/true);
        j.append(record({{"event", Value("campaign")},
                         {"name", Value("demo")},
                         {"spec_fnv", Value("00000000000000ab")},
                         {"resume", Value(false)}}));
        j.append(record({{"event", Value("start")}, {"job", Value("a")},
                         {"attempt", Value(0)}}));
        j.append(record({{"event", Value("finish")}, {"job", Value("a")},
                         {"attempt", Value(0)}, {"status", Value("crashed")},
                         {"retry", Value(true)}}));
        j.append(record({{"event", Value("start")}, {"job", Value("a")},
                         {"attempt", Value(1)}}));
        j.append(record({{"event", Value("finish")}, {"job", Value("a")},
                         {"attempt", Value(1)}, {"status", Value("ok")},
                         {"retry", Value(false)}}));
        j.append(record({{"event", Value("start")}, {"job", Value("b")},
                         {"attempt", Value(0)}}));
    }
    // Simulate a runner killed mid-append: a torn trailing line.
    {
        std::ofstream f(path, std::ios::app | std::ios::binary);
        f << "{\"event\": \"fin";
    }

    campaign::JournalReplay rep = campaign::replayJournal(path);
    EXPECT_TRUE(rep.header_seen);
    EXPECT_EQ(rep.campaign, "demo");
    EXPECT_EQ(rep.spec_fnv, 0xabu);
    EXPECT_EQ(rep.torn_lines, 1u);
    ASSERT_EQ(rep.jobs.count("a"), 1u);
    EXPECT_TRUE(rep.jobs.at("a").completed);
    EXPECT_FALSE(rep.jobs.at("a").in_flight);
    EXPECT_EQ(rep.jobs.at("a").attempts, 2u);
    EXPECT_EQ(rep.jobs.at("a").last_status, "ok");
    ASSERT_EQ(rep.jobs.count("b"), 1u);
    EXPECT_TRUE(rep.jobs.at("b").in_flight);
    EXPECT_FALSE(rep.jobs.at("b").completed);
}

TEST(CampaignJournal, MissingJournalReplaysEmpty)
{
    campaign::JournalReplay rep =
        campaign::replayJournal("/nonexistent/journal.jsonl");
    EXPECT_FALSE(rep.header_seen);
    EXPECT_TRUE(rep.jobs.empty());
}

// ---------------------------------------------------------------------------
// Retry taxonomy & backoff
// ---------------------------------------------------------------------------

TEST(CampaignRetry, ClassifiesOutcomes)
{
    using campaign::OutcomeClass;
    using campaign::classifyOutcome;
    EXPECT_EQ(classifyOutcome("ok", 0, 0, ""), OutcomeClass::Success);
    EXPECT_EQ(classifyOutcome("cached", 0, 0, ""), OutcomeClass::Success);
    EXPECT_EQ(classifyOutcome("crashed", 0, 11, ""), OutcomeClass::Transient);
    EXPECT_EQ(classifyOutcome("timeout", 0, 9, ""), OutcomeClass::Transient);
    EXPECT_EQ(classifyOutcome("hung", 0, 9, ""), OutcomeClass::Transient);
    EXPECT_EQ(classifyOutcome("failed", 9, 0, ""), OutcomeClass::Transient);
    // Wrong answers and wrong specs must never be retried.
    EXPECT_EQ(classifyOutcome("failed", 3, 0, ""), OutcomeClass::Permanent);
    EXPECT_EQ(classifyOutcome("failed", 4, 0, ""), OutcomeClass::Permanent);
    EXPECT_EQ(classifyOutcome("failed", 127, 0, ""), OutcomeClass::Permanent);
    EXPECT_EQ(classifyOutcome("failed", 2, 0,
                              "job failed: sim::ConfigError: bad knob"),
              OutcomeClass::Permanent);
}

TEST(CampaignRetry, BackoffIsDeterministicJitteredAndCapped)
{
    campaign::RetryPolicy p1(3, 0.05, 2.0, 42);
    campaign::RetryPolicy p2(3, 0.05, 2.0, 42);
    double prev_base = 0;
    for (unsigned attempt = 1; attempt <= 8; ++attempt) {
        const double d1 = p1.backoffSeconds(attempt);
        const double d2 = p2.backoffSeconds(attempt);
        EXPECT_DOUBLE_EQ(d1, d2) << attempt;
        const double base =
            std::min(0.05 * static_cast<double>(1u << (attempt - 1)), 2.0);
        EXPECT_GE(d1, 0.5 * base) << attempt;
        EXPECT_LT(d1, 1.5 * base) << attempt;
        EXPECT_GE(base, prev_base);
        prev_base = base;
    }
}

// ---------------------------------------------------------------------------
// Chaos plan
// ---------------------------------------------------------------------------

TEST(CampaignChaos, ParsesModesSeedAndRate)
{
    campaign::ChaosPlan p =
        campaign::ChaosPlan::parse("crash,slow-io:123:0.5");
    EXPECT_TRUE(p.crash);
    EXPECT_TRUE(p.slow_io);
    EXPECT_FALSE(p.hang);
    EXPECT_FALSE(p.corrupt_cache);
    EXPECT_EQ(p.seed, 123u);
    EXPECT_DOUBLE_EQ(p.rate, 0.5);
    EXPECT_TRUE(p.enabled());

    EXPECT_THROW(campaign::ChaosPlan::parse("crash"), sim::ConfigError);
    EXPECT_THROW(campaign::ChaosPlan::parse("crash:x:0.5"),
                 sim::ConfigError);
    EXPECT_THROW(campaign::ChaosPlan::parse("crash:1:1.5"),
                 sim::ConfigError);
    EXPECT_THROW(campaign::ChaosPlan::parse("warp-drive:1:0.1"),
                 sim::ConfigError);
}

TEST(CampaignChaos, DrawIsAPureFunctionOfSeedAndSite)
{
    campaign::ChaosPlan p;
    p.crash = true;
    p.seed = 7;
    p.rate = 0.5;
    const bool first = p.draw("crash:job#0");
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(p.draw("crash:job#0"), first);

    campaign::ChaosPlan always = p;
    always.rate = 1.0;
    EXPECT_TRUE(always.draw("any-site"));
    campaign::ChaosPlan never = p;
    never.rate = 0.0;
    EXPECT_FALSE(never.draw("any-site"));
}

TEST(CampaignChaos, CorruptFileFlipsExactlyOneDeterministicByte)
{
    TempDir dir;
    const std::string path = dir.path + "/victim.bin";
    const std::string original = "the quick brown fox jumps";
    {
        std::ofstream f(path, std::ios::binary);
        f << original;
    }
    campaign::ChaosPlan p;
    p.corrupt_cache = true;
    p.seed = 9;
    p.rate = 1.0;
    p.maybeCorruptFile(path, "site-a");
    const std::string mutated = readFile(path);
    ASSERT_EQ(mutated.size(), original.size());
    unsigned diffs = 0;
    for (size_t i = 0; i < original.size(); ++i)
        diffs += original[i] != mutated[i];
    EXPECT_EQ(diffs, 1u);

    // Same seed + site corrupts the same byte: flipping twice restores.
    p.maybeCorruptFile(path, "site-a");
    EXPECT_EQ(readFile(path), original);
}

// ---------------------------------------------------------------------------
// Retry / quarantine end to end
// ---------------------------------------------------------------------------

campaign::CampaignSpec
execSpec(const std::string &json_text)
{
    return campaign::parseCampaignSpec(json::parse(json_text));
}

TEST(CampaignResilience, TransientFailureRetriesThenSucceeds)
{
    TempDir dir;
    const std::string marker = dir.path + "/mark";
    campaign::CampaignSpec spec = execSpec(R"({
      "name": "retry",
      "retry_budget": 2, "retry_backoff_base_s": 0.02,
      "retry_backoff_cap_s": 0.1,
      "jobs": [
        {"type": "exec", "name": "flaky",
         "argv": ["/bin/sh", "-c",
                  "if [ -e )" + marker + R"( ]; then exit 0; else : > )" +
                                           marker + R"(; exit 9; fi"]}
      ]
    })");
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);

    Value m = json::parseFile(opts.out_dir + "/manifest.json");
    EXPECT_EQ(m.get("totals")->getInt("ok", -1), 1);
    EXPECT_EQ(m.get("totals")->getInt("failed", -1), 0);
    EXPECT_EQ(m.get("totals")->getInt("retries", -1), 1);
    const Value &row = m.get("jobs")->asArray()[0];
    EXPECT_EQ(row.getString("status", ""), "ok");
    EXPECT_EQ(row.getInt("attempts", -1), 2);
    EXPECT_FALSE(row.getBool("quarantined", true));

    // The journal records both attempts: one retry finish, one terminal.
    campaign::JournalReplay rep =
        campaign::replayJournal(opts.out_dir + "/journal.jsonl");
    EXPECT_EQ(rep.jobs.at("flaky").attempts, 2u);
    EXPECT_TRUE(rep.jobs.at("flaky").completed);
}

TEST(CampaignResilience, ExhaustedTransientJobIsQuarantinedNotFailed)
{
    TempDir dir;
    campaign::CampaignSpec spec = execSpec(R"({
      "name": "quarantine",
      "retry_budget": 1, "retry_backoff_base_s": 0.02,
      "retry_backoff_cap_s": 0.05,
      "jobs": [
        {"type": "exec", "name": "doomed",
         "argv": ["/bin/sh", "-c", "exit 9"]}
      ]
    })");
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    opts.strict = true;  // quarantined jobs must not escalate
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);

    Value m = json::parseFile(opts.out_dir + "/manifest.json");
    EXPECT_EQ(m.get("totals")->getInt("failed", -1), 0);
    EXPECT_EQ(m.get("totals")->getInt("quarantined", -1), 1);
    EXPECT_EQ(m.get("totals")->getInt("retries", -1), 1);
    const Value &row = m.get("jobs")->asArray()[0];
    EXPECT_TRUE(row.getBool("quarantined", false));
    EXPECT_EQ(row.getInt("attempts", -1), 2);
    const json::Array &q = m.get("quarantine")->asArray();
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q[0].getString("name", ""), "doomed");
}

TEST(CampaignResilience, PermanentFailureIsNeverRetried)
{
    TempDir dir;
    // A readable but non-executable file: hashing succeeds, exec fails with
    // 127 -- a permanent outcome that must not burn the retry budget.
    const std::string bin = dir.path + "/not-a-binary";
    {
        std::ofstream f(bin);
        f << "plain data\n";
    }
    campaign::CampaignSpec spec = execSpec(R"({
      "name": "permanent",
      "retry_budget": 3, "retry_backoff_base_s": 0.02,
      "retry_backoff_cap_s": 0.05,
      "jobs": [
        {"type": "exec", "name": "noexec", "argv": [")" + bin + R"("]}
      ]
    })");
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);

    Value m = json::parseFile(opts.out_dir + "/manifest.json");
    EXPECT_EQ(m.get("totals")->getInt("failed", -1), 1);
    EXPECT_EQ(m.get("totals")->getInt("retries", -1), 0);
    const Value &row = m.get("jobs")->asArray()[0];
    EXPECT_EQ(row.getString("status", ""), "failed");
    EXPECT_EQ(row.getInt("exit_code", 0), 127);
    EXPECT_EQ(row.getInt("attempts", -1), 1);
}

TEST(CampaignResilience, MissingExecBinaryFailsWithTypedDiagnostics)
{
    TempDir dir;
    campaign::CampaignSpec spec = execSpec(R"({
      "name": "missing",
      "jobs": [
        {"type": "exec", "name": "ghost",
         "argv": ["/definitely/not/here"]},
        {"type": "exec", "name": "fine",
         "argv": ["/bin/sh", "-c", "exit 0"]}
      ]
    })");
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);

    Value m = json::parseFile(opts.out_dir + "/manifest.json");
    EXPECT_EQ(m.get("totals")->getInt("failed", -1), 1);
    EXPECT_EQ(m.get("totals")->getInt("ok", -1), 1);
    for (const Value &row : m.get("jobs")->asArray()) {
        if (row.getString("name", "") == "ghost") {
            EXPECT_EQ(row.getString("status", ""), "failed");
            EXPECT_NE(
                row.getString("diagnostics", "").find("sim::ConfigError"),
                std::string::npos);
        } else {
            EXPECT_EQ(row.getString("status", ""), "ok");
        }
    }
}

TEST(CampaignResilience, CacheEvictionIsCountedInTheManifest)
{
    TempDir dir;
    campaign::CampaignSpec spec = execSpec(R"({
      "name": "evict",
      "jobs": [{"type": "exec", "name": "hello",
                "argv": ["/bin/sh", "-c", "echo hi"]}]
    })");
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);
    Value m1 = json::parseFile(opts.out_dir + "/manifest.json");
    const std::string key =
        m1.get("jobs")->asArray()[0].getString("cache_key", "");
    ASSERT_FALSE(key.empty());

    // Truncate the stored entry: the next campaign must evict it, count
    // the eviction in the manifest, and recompute the job.
    const std::string entry = opts.out_dir + "/cache/" + key + ".json";
    ASSERT_TRUE(fs::exists(entry));
    fs::resize_file(entry, fs::file_size(entry) / 2);

    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);
    Value m2 = json::parseFile(opts.out_dir + "/manifest.json");
    EXPECT_EQ(m2.get("totals")->getInt("cache_evictions", -1), 1);
    EXPECT_EQ(m2.get("totals")->getInt("cached", -1), 0);
    EXPECT_EQ(m2.get("totals")->getInt("ok", -1), 1);
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

TEST(CampaignResilience, HungWorkerIsReclaimedWhileSlowWorkerSurvives)
{
    TempDir dir;
    // "slow" beats on the heartbeat fd every 100ms for ~1.5s (longer than
    // the 1s heartbeat timeout, so only the beats keep it alive); "hang"
    // never beats and must be reclaimed as hung, not timeout.
    campaign::CampaignSpec spec = execSpec(R"({
      "name": "liveness",
      "workers": 2, "timeout_s": 30,
      "heartbeat_timeout_s": 1.0, "grace_s": 0.5,
      "jobs": [
        {"type": "exec", "name": "slow",
         "argv": ["/bin/sh", "-c",
                  "eval \"exec 9>&$MAPLE_CAMPAIGN_HEARTBEAT_FD\"; i=0; while [ $i -lt 15 ]; do echo b >&9; sleep 0.1; i=$((i+1)); done"]},
        {"type": "exec", "name": "hang",
         "argv": ["/bin/sh", "-c", "sleep 30"]}
      ]
    })");
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);

    Value m = json::parseFile(opts.out_dir + "/manifest.json");
    for (const Value &row : m.get("jobs")->asArray()) {
        if (row.getString("name", "") == "slow")
            EXPECT_EQ(row.getString("status", ""), "ok");
        else
            EXPECT_EQ(row.getString("status", ""), "hung");
    }
}

TEST(CampaignResilience, SigtermGraceLetsTimedOutJobsFlush)
{
    TempDir dir;
    const std::string marker = dir.path + "/flushed";
    campaign::CampaignSpec spec = execSpec(R"({
      "name": "grace",
      "timeout_s": 0.4, "grace_s": 5.0,
      "jobs": [
        {"type": "exec", "name": "flush",
         "argv": ["/bin/sh", "-c",
                  "trap 'echo done > )" + marker +
                                           R"(; exit 0' TERM; sleep 20 & wait"]}
      ]
    })");
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);

    Value m = json::parseFile(opts.out_dir + "/manifest.json");
    EXPECT_EQ(m.get("jobs")->asArray()[0].getString("status", ""),
              "timeout");
    // The SIGTERM -> grace window let the trap handler write its state.
    EXPECT_TRUE(fs::exists(marker));
    EXPECT_EQ(readFile(marker), "done\n");
}

// ---------------------------------------------------------------------------
// Resume
// ---------------------------------------------------------------------------

const char *kScenarioSpec = R"({
  "name": "resume",
  "workers": 1, "runs": 1,
  "base": {"scenario": "spmv", "rows": 48, "nnz_per_row": 4, "cols": 256,
           "warm_rows": 12},
  "axes": {"technique": ["doall", "maple"], "queue_entries": [8, 16]},
  "seeds": [1]
})";

TEST(CampaignResilience, ResumeAfterRunnerKillMatchesUninterruptedRun)
{
    TempDir dir;
    campaign::CampaignSpec spec =
        campaign::parseCampaignSpec(json::parse(kScenarioSpec));

    // Killed run: the runner dies (exit 70) right after journaling the
    // second terminal finish; with workers=1 that leaves two jobs done and
    // two unstarted or in flight.
    campaign::RunnerOptions killed;
    killed.out_dir = dir.path + "/interrupted";
    EXPECT_EQ(runCampaignInFork(spec, killed,
                                {{"MAPLE_CAMPAIGN_CRASH_RUNNER_AFTER", "2"}}),
              70);
    campaign::JournalReplay rep =
        campaign::replayJournal(killed.out_dir + "/journal.jsonl");
    ASSERT_TRUE(rep.header_seen);
    unsigned done = 0;
    for (const auto &[name, j] : rep.jobs)
        done += j.completed;
    EXPECT_EQ(done, 2u);
    EXPECT_FALSE(fs::exists(killed.out_dir + "/manifest.json"));

    // Resume: completed jobs come back as cache hits, the rest run.
    campaign::RunnerOptions resume = killed;
    resume.resume = true;
    ASSERT_EQ(campaign::runCampaign(spec, resume), 0);
    Value mr = json::parseFile(killed.out_dir + "/manifest.json");
    EXPECT_EQ(mr.get("totals")->getInt("jobs", -1), 4);
    EXPECT_EQ(mr.get("totals")->getInt("failed", -1), 0);
    EXPECT_EQ(mr.get("totals")->getInt("cached", -1), 2);
    EXPECT_EQ(mr.get("totals")->getInt("ok", -1), 2);
    // The warm image survived the kill; resume must not re-warm.
    EXPECT_EQ(mr.get("totals")->getInt("warmups_run", -1), 0);

    // Reference: the same campaign, never interrupted.
    campaign::RunnerOptions clean;
    clean.out_dir = dir.path + "/clean";
    ASSERT_EQ(campaign::runCampaign(spec, clean), 0);

    // A fully-cached pass over each directory must produce byte-identical
    // manifests: resume converged to exactly the uninterrupted state.
    ASSERT_EQ(campaign::runCampaign(spec, resume), 0);
    ASSERT_EQ(campaign::runCampaign(spec, clean), 0);
    const std::string m_resumed =
        readFile(killed.out_dir + "/manifest.json");
    const std::string m_clean = readFile(clean.out_dir + "/manifest.json");
    ASSERT_FALSE(m_resumed.empty());
    EXPECT_EQ(m_resumed, m_clean);
    Value mf = json::parseFile(killed.out_dir + "/manifest.json");
    EXPECT_EQ(mf.get("totals")->getInt("cache_hits", -1), 4);
}

TEST(CampaignResilience, ResumeRejectsAJournalFromADifferentSpec)
{
    TempDir dir;
    campaign::CampaignSpec spec_a = execSpec(R"({
      "name": "a",
      "jobs": [{"type": "exec", "name": "j",
                "argv": ["/bin/sh", "-c", "exit 0"]}]
    })");
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    ASSERT_EQ(campaign::runCampaign(spec_a, opts), 0);

    campaign::CampaignSpec spec_b = execSpec(R"({
      "name": "b",
      "jobs": [{"type": "exec", "name": "j",
                "argv": ["/bin/sh", "-c", "exit 1"]}]
    })");
    opts.resume = true;
    EXPECT_THROW(campaign::runCampaign(spec_b, opts), sim::ConfigError);
}

// ---------------------------------------------------------------------------
// Chaos soak
// ---------------------------------------------------------------------------

TEST(CampaignResilience, ChaosCampaignConvergesToCleanRunResults)
{
    TempDir dir;
    campaign::CampaignSpec spec = campaign::parseCampaignSpec(json::parse(R"({
      "name": "chaos",
      "workers": 2, "runs": 1, "timeout_s": 60,
      "retry_budget": 5, "retry_backoff_base_s": 0.02,
      "retry_backoff_cap_s": 0.1,
      "heartbeat_timeout_s": 1.0, "grace_s": 0.3,
      "base": {"scenario": "spmv", "rows": 48, "nnz_per_row": 4,
               "cols": 256, "warm_rows": 12},
      "axes": {"technique": ["doall", "maple"], "queue_entries": [8, 16]},
      "seeds": [1]
    })"));

    // Clean reference run (no chaos).
    campaign::RunnerOptions clean;
    clean.out_dir = dir.path + "/clean";
    ASSERT_EQ(campaign::runCampaign(spec, clean), 0);
    std::map<std::string, std::string> clean_results;
    Value mc = json::parseFile(clean.out_dir + "/manifest.json");
    for (const Value &row : mc.get("jobs")->asArray()) {
        const std::string name = row.getString("name", "");
        Value r = json::parseFile(clean.out_dir + "/jobs/" + name + ".json");
        ASSERT_NE(r.get("result"), nullptr) << name;
        clean_results[name] = json::dump(*r.get("result"));
    }

    // Chaos run: crashes, hangs, corrupted artifacts and slow I/O, all
    // deterministic in (seed, site). Retries + checksum fallbacks must
    // still converge to the clean-run simulation results.
    campaign::RunnerOptions chaos;
    chaos.out_dir = dir.path + "/chaos";
    ASSERT_EQ(
        runCampaignInFork(
            spec, chaos,
            {{"MAPLE_CAMPAIGN_CHAOS",
              "crash,hang,corrupt-cache,corrupt-snapshot,slow-io:1234:0.2"}}),
        0);

    Value mk = json::parseFile(chaos.out_dir + "/manifest.json");
    EXPECT_EQ(mk.get("totals")->getInt("jobs", -1), 4);
    EXPECT_EQ(mk.get("totals")->getInt("failed", -1), 0);
    EXPECT_EQ(mk.get("quarantine")->asArray().size(), 0u);
    for (const Value &row : mk.get("jobs")->asArray()) {
        const std::string name = row.getString("name", "");
        EXPECT_EQ(row.getString("status", ""), "ok") << name;
        Value r = json::parseFile(chaos.out_dir + "/jobs/" + name + ".json");
        ASSERT_NE(r.get("result"), nullptr) << name;
        EXPECT_EQ(json::dump(*r.get("result")), clean_results[name]) << name;
    }
}

}  // namespace
