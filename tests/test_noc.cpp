/**
 * @file
 * Unit tests for the mesh NoC: geometry, XY routing latency, link
 * serialization under contention, and the RemotePort round-trip adaptor.
 */
#include <gtest/gtest.h>

#include "mem/port.hpp"
#include "noc/mesh.hpp"

using namespace maple;
using namespace maple::noc;

TEST(Mesh, CoordinateMapping)
{
    sim::EventQueue eq;
    Mesh mesh(eq, MeshParams{4, 3, 1, 16});
    EXPECT_EQ(mesh.numTiles(), 12u);
    EXPECT_EQ(mesh.tileAt(2, 1), 6u);
    EXPECT_EQ(mesh.xOf(6), 2u);
    EXPECT_EQ(mesh.yOf(6), 1u);
    EXPECT_THROW(mesh.tileAt(4, 0), std::logic_error);
}

TEST(Mesh, ManhattanHopCount)
{
    sim::EventQueue eq;
    Mesh mesh(eq, MeshParams{4, 4, 1, 16});
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 3), 3u);
    EXPECT_EQ(mesh.hops(0, 15), 6u);
    EXPECT_EQ(mesh.hops(15, 0), 6u);
    EXPECT_EQ(mesh.hops(5, 6), 1u);
}

TEST(Mesh, TransitLatencyMatchesHops)
{
    sim::EventQueue eq;
    Mesh mesh(eq, MeshParams{4, 4, 2, 16});  // 2 cycles per hop
    sim::Cycle done = 0;
    auto t = [&]() -> sim::Task<void> {
        co_await mesh.transit(0, 15, 1);
        done = eq.now();
    };
    sim::spawn(t());
    eq.run();
    EXPECT_EQ(done, 12u);  // 6 hops x 2 cycles
}

TEST(Mesh, ZeroHopTransitIsFree)
{
    sim::EventQueue eq;
    Mesh mesh(eq, MeshParams{2, 2, 1, 16});
    sim::Cycle done = sim::kCycleMax;
    auto t = [&]() -> sim::Task<void> {
        co_await mesh.transit(1, 1, 4);
        done = eq.now();
    };
    sim::spawn(t());
    eq.run();
    EXPECT_EQ(done, 0u);
}

TEST(Mesh, ContentionSerializesSharedLinks)
{
    sim::EventQueue eq;
    Mesh mesh(eq, MeshParams{4, 1, 1, 16});
    // Many multi-flit packets over the same horizontal path: the shared
    // links serialize them, so average latency exceeds the bare hop count.
    int finished = 0;
    // The closure must outlive eq.run(): the coroutine frame references it.
    auto t = [&]() -> sim::Task<void> {
        co_await mesh.transit(0, 3, 8);
        ++finished;
    };
    for (int i = 0; i < 16; ++i)
        sim::spawn(t());
    eq.run();
    EXPECT_EQ(finished, 16);
    EXPECT_GT(mesh.meanLatency(), 3.0) << "no serialization modeled";
    EXPECT_GE(eq.now(), 15u * 8u) << "last packet waited behind 15 others";
}

TEST(Mesh, DisjointPathsDoNotContend)
{
    sim::EventQueue eq;
    Mesh mesh(eq, MeshParams{2, 2, 1, 16});
    std::vector<sim::Cycle> done;
    auto t = [&](sim::TileId s, sim::TileId d) -> sim::Task<void> {
        co_await mesh.transit(s, d, 4);
        done.push_back(eq.now());
    };
    sim::spawn(t(0, 1));  // east link of tile 0
    sim::spawn(t(2, 3));  // east link of tile 2
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], done[1]) << "independent links should not interact";
}

TEST(Mesh, FlitsForHeaderAndPayload)
{
    EXPECT_EQ(flitsFor(0, 16), 1u);    // header only
    EXPECT_EQ(flitsFor(8, 16), 2u);
    EXPECT_EQ(flitsFor(16, 16), 2u);
    EXPECT_EQ(flitsFor(17, 16), 3u);
    EXPECT_EQ(flitsFor(64, 16), 5u);
}

TEST(RemotePort, RoundTripAddsTransitBothWays)
{
    sim::EventQueue eq;
    Mesh mesh(eq, MeshParams{4, 1, 1, 16});
    mem::FixedLatencyMem target(eq, 50);
    RemotePort port(mesh, 0, 3, target);

    sim::Cycle done = 0;
    auto t = [&]() -> sim::Task<void> {
        co_await port.request(mem::MemRequest::make(
            eq, mem::RequesterClass::Core, 0, 0x1000, 64,
            mem::AccessKind::Read));
        done = eq.now();
    };
    sim::spawn(t());
    eq.run();
    // 3 hops out + 50 target + 3 hops back, plus serialization of the
    // 5-flit response on each return link.
    EXPECT_GE(done, 56u);
    EXPECT_LE(done, 80u);
}

TEST(RemotePort, WritesCarryPayloadOutward)
{
    sim::EventQueue eq;
    Mesh mesh(eq, MeshParams{2, 1, 1, 16});
    mem::FixedLatencyMem target(eq, 0);
    RemotePort port(mesh, 0, 1, target);

    sim::spawn(port.request(mem::MemRequest::make(
        eq, mem::RequesterClass::Core, 0, 0, 64, mem::AccessKind::Write)));
    eq.run();
    std::uint64_t flits_write = mesh.flitsSent();
    sim::spawn(port.request(mem::MemRequest::make(
        eq, mem::RequesterClass::Core, 0, 0, 64, mem::AccessKind::Read)));
    eq.run();
    std::uint64_t flits_read = mesh.flitsSent() - flits_write;
    EXPECT_EQ(flits_write, flits_read)
        << "write data outward should mirror read data backward";
}
