/**
 * @file
 * Unit tests for the in-order core model: load/store timing through the
 * hierarchy, store-buffer semantics, fences, atomics, software prefetch and
 * instruction accounting -- all through a real Soc instance.
 */
#include <gtest/gtest.h>

#include "soc/soc.hpp"

using namespace maple;

namespace {

struct CoreFixture {
    soc::Soc soc{soc::SocConfig::fpga()};
    os::Process &proc{soc.createProcess("cpu-test")};
    sim::Addr buf{proc.alloc(1 << 16, "buf")};

    cpu::Core &core() { return soc.core(0); }

    sim::Cycle
    runTask(sim::Task<void> t)
    {
        sim::Cycle start = soc.eq().now();
        sim::Join j = sim::spawn(std::move(t));
        soc.eq().run();
        j.get();
        return soc.eq().now() - start;
    }
};

}  // namespace

TEST(Core, LoadReturnsStoredValue)
{
    CoreFixture f;
    auto t = [&]() -> sim::Task<void> {
        co_await f.core().store(f.buf + 8, 0x1122334455667788ull, 8);
        co_await f.core().storeFence();
        std::uint64_t v = co_await f.core().load(f.buf + 8, 8);
        EXPECT_EQ(v, 0x1122334455667788ull);
        std::uint64_t low = co_await f.core().load(f.buf + 8, 4);
        EXPECT_EQ(low, 0x55667788u);
    };
    f.runTask(t());
}

TEST(Core, FirstLoadMissesSecondHits)
{
    CoreFixture f;
    sim::Cycle first = 0, second = 0;
    auto t = [&]() -> sim::Task<void> {
        sim::Cycle t0 = f.soc.eq().now();
        (void)co_await f.core().load(f.buf, 8);
        first = f.soc.eq().now() - t0;
        t0 = f.soc.eq().now();
        (void)co_await f.core().load(f.buf, 8);
        second = f.soc.eq().now() - t0;
    };
    f.runTask(t());
    EXPECT_GT(first, 300u) << "cold load should reach DRAM";
    EXPECT_LT(second, 10u) << "warm load should hit the L1";
}

TEST(Core, StoresRetireIntoStoreBufferWithoutBlocking)
{
    CoreFixture f;
    // Stores to distinct cold lines; with a store buffer the core should
    // retire them at ~issue rate, far faster than N x DRAM.
    constexpr int kStores = 4;  // equals the default buffer depth
    sim::Cycle retired_at = 0, start = 0;
    f.runTask([&]() -> sim::Task<void> {
        // Warm the TLB so the measurement sees store timing, not the walk.
        (void)co_await f.core().load(f.buf + 4096, 8);
        start = f.soc.eq().now();
        for (int i = 0; i < kStores; ++i)
            co_await f.core().store(f.buf + 4096 + 64 * i, i, 8);
        retired_at = f.soc.eq().now();  // before the drains complete
    }());
    EXPECT_LT(retired_at - start, 100u) << "stores must not serialize on DRAM";
}

TEST(Core, FullStoreBufferStallsThePipeline)
{
    CoreFixture f;
    constexpr int kStores = 12;  // 3x the buffer depth, all cold misses
    f.runTask([&]() -> sim::Task<void> {
        for (int i = 0; i < kStores; ++i)
            co_await f.core().store(f.buf + 8192 + 64 * i, i, 8);
    }());
    EXPECT_GT(f.core().stats().counterValue("store_buffer_stalls"), 0u);
}

TEST(Core, StoreFenceDrainsAllPendingStores)
{
    CoreFixture f;
    sim::Cycle elapsed = f.runTask([&]() -> sim::Task<void> {
        co_await f.core().store(f.buf + 16384, 7, 8);  // cold miss
        co_await f.core().storeFence();
    }());
    EXPECT_GT(elapsed, 300u) << "fence must wait for the DRAM round trip";
}

TEST(Core, AmoAddReturnsOldValueAndAccumulates)
{
    CoreFixture f;
    f.proc.writeScalar<std::uint64_t>(f.buf + 256, 100);
    f.runTask([&]() -> sim::Task<void> {
        std::uint64_t old1 = co_await f.core().amoAdd(f.buf + 256, 5, 8);
        std::uint64_t old2 = co_await f.core().amoAdd(f.buf + 256, 5, 8);
        EXPECT_EQ(old1, 100u);
        EXPECT_EQ(old2, 105u);
    }());
    EXPECT_EQ(f.proc.readScalar<std::uint64_t>(f.buf + 256), 110u);
}

TEST(Core, ConcurrentAmoAddsNeverLoseUpdates)
{
    CoreFixture f;
    auto worker = [&](cpu::Core &c) -> sim::Task<void> {
        for (int i = 0; i < 50; ++i)
            (void)co_await c.amoAdd(f.buf + 512, 1, 8);
    };
    std::vector<sim::Join> js;
    js.push_back(sim::spawn(worker(f.soc.core(0))));
    js.push_back(sim::spawn(worker(f.soc.core(1))));
    f.soc.run(std::move(js));
    EXPECT_EQ(f.proc.readScalar<std::uint64_t>(f.buf + 512), 100u);
}

TEST(Core, PrefetchHidesDemandLatency)
{
    CoreFixture f;
    sim::Cycle demand_after_pf = 0;
    f.runTask([&]() -> sim::Task<void> {
        co_await f.core().prefetchL1(f.buf + 0x4000);
        co_await sim::delay(f.soc.eq(), 500);  // let the prefetch land
        sim::Cycle t0 = f.soc.eq().now();
        (void)co_await f.core().load(f.buf + 0x4000, 8);
        demand_after_pf = f.soc.eq().now() - t0;
    }());
    EXPECT_LT(demand_after_pf, 10u);
}

TEST(Core, PrefetchToUnmappedAddressIsDropped)
{
    CoreFixture f;
    // 0x7f000000 is not reserved by the process: prefetch must not fault.
    f.runTask([&]() -> sim::Task<void> {
        co_await f.core().prefetchL1(0x7f00'0000);
    }());
    SUCCEED();
}

TEST(Core, LoadFromUnmappedAddressIsFatal)
{
    CoreFixture f;
    sim::Join j = sim::spawn([&]() -> sim::Task<void> {
        (void)co_await f.core().load(0x7f00'0000, 8);
    }());
    f.soc.eq().run();
    EXPECT_THROW(j.get(), std::runtime_error);
}

TEST(Core, InstructionAndLoadCounting)
{
    CoreFixture f;
    f.runTask([&]() -> sim::Task<void> {
        co_await f.core().compute(10);
        (void)co_await f.core().load(f.buf, 8);
        co_await f.core().store(f.buf, 1, 8);
    }());
    EXPECT_EQ(f.core().instructions(), 12u);
    EXPECT_EQ(f.core().loads(), 1u);
    EXPECT_EQ(f.core().stores(), 1u);
}

TEST(Core, ComputeChargesIssueCycles)
{
    CoreFixture f;
    sim::Cycle elapsed = f.runTask([&]() -> sim::Task<void> {
        co_await f.core().compute(123);
    }());
    EXPECT_EQ(elapsed, 123u);
}

TEST(Core, MmioRoundTripBreakdownIsConsistent)
{
    CoreFixture f;
    auto bd = f.core().mmioRoundTrip(f.soc.mapleTile(0));
    EXPECT_EQ(bd.l1_out, 2u);
    EXPECT_EQ(bd.l15_out, 6u);
    EXPECT_EQ(bd.total(),
              bd.l1_out + bd.l15_out + bd.noc_out + bd.noc_back + bd.l15_back +
                  bd.l1_back);
    // Round trip is within a small factor of the L2 latency, an order of
    // magnitude below DRAM (Figure 14's claim).
    EXPECT_LT(bd.total(), 2 * (f.soc.config().llc.hit_latency + 4));
    EXPECT_LT(bd.total() * 10, f.soc.config().dram.latency + 100);
}

TEST(Core, SharedLoadBypassesL1)
{
    CoreFixture f;
    sim::Cycle first = 0, second = 0;
    f.runTask([&]() -> sim::Task<void> {
        sim::Cycle t0 = f.soc.eq().now();
        (void)co_await f.core().loadShared(f.buf + 0x5000, 8);
        first = f.soc.eq().now() - t0;
        t0 = f.soc.eq().now();
        (void)co_await f.core().loadShared(f.buf + 0x5000, 8);
        second = f.soc.eq().now() - t0;
    }());
    // Both pay an LLC round trip: the point is the line never lives in L1.
    EXPECT_GT(second, 20u);
    EXPECT_FALSE(f.soc.l1(0).probe(
        *f.proc.pageTable().translate(f.buf + 0x5000, mem::Perms{})));
    (void)first;
}
