/**
 * @file
 * Soft-error resilience tests (src/mem/resil): the SECDED ECC model, poison
 * propagation and machine-check containment, the MCA MMIO banks, and the
 * background directory scrub engine.
 *
 * The contract under test, end to end:
 *
 *  - correctable (severity-1) flips cost latency only — the workload's
 *    output is untouched and nothing is poisoned;
 *  - uncorrectable (severity-2) flips poison the line, and a core that
 *    consumes the poison triggers containment: flush the holders, retire
 *    the physical page, latch the MCA bank, resume with the right data;
 *  - directory flips corrupt sharer vectors and the scrub engine repairs
 *    them against CoherentCache ground truth, with the protocol checker
 *    silent throughout;
 *  - all of it is deterministic across host thread counts and across a
 *    snapshot/restore boundary.
 */
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/maple_runtime.hpp"
#include "mem/coherence.hpp"
#include "mem/resil.hpp"
#include "os/maple_driver.hpp"
#include "sim/coro.hpp"
#include "sim/random.hpp"
#include "soc/soc.hpp"

using namespace maple;

namespace {

// ---------------------------------------------------------------------------
// Shared driver: the quickstart-style gather, small enough to run many
// configurations, big enough to touch every structure (L1, LLC, DRAM).
// ---------------------------------------------------------------------------

constexpr std::uint32_t kN = 1024;

struct GatherAddrs {
    sim::Addr a = 0, b = 0, out = 0;
};

GatherAddrs
fillArrays(os::Process &proc)
{
    GatherAddrs at;
    at.a = proc.alloc(kN * 4, "A");
    at.b = proc.alloc(kN * 4, "B");
    at.out = proc.alloc(kN * 4, "out");
    for (std::uint32_t i = 0; i < kN; ++i) {
        proc.writeScalar<std::uint32_t>(at.a + 4 * i, i * 3);
        proc.writeScalar<std::uint32_t>(at.b + 4 * i, (i * 2654435761u) % kN);
    }
    return at;
}

GatherAddrs
setupGather(soc::Soc &soc, os::Process &proc, core::MapleApi &api)
{
    GatherAddrs at = fillArrays(proc);
    auto setup = [&](cpu::Core &c) -> sim::Task<void> {
        co_await api.init(c, 1, 32, 4);
        bool ok = co_await api.open(c, 0);
        MAPLE_ASSERT(ok, "queue open failed");
    };
    soc.run({sim::spawn(setup(soc.core(0)))});
    return at;
}

/** Core-only gather (no MAPLE): every consumer is core-class, so every
 *  uncorrectable error in the data path must end in containment. */
sim::Task<void>
coreGather(cpu::Core &core, GatherAddrs at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t idx = co_await core.load(at.b + 4 * i, 4);
        std::uint64_t v = co_await core.load(at.a + 4 * idx, 4);
        co_await core.compute(1);
        co_await core.store(at.out + 4 * i, v + 1, 4);
    }
}

sim::Task<void>
accessThread(cpu::Core &core, core::MapleApi &api, GatherAddrs at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t idx = co_await core.load(at.b + 4 * i, 4);
        co_await api.producePtrReliable(core, 0, at.a + 4 * idx);
    }
}

sim::Task<void>
executeThread(cpu::Core &core, core::MapleApi &api, GatherAddrs at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint64_t v = co_await api.consumeReliable(core, 0);
        co_await core.compute(1);
        co_await core.store(at.out + 4 * i, v + 1, 4);
    }
}

sim::Cycle
runGather(soc::Soc &soc, core::MapleApi &api, GatherAddrs at)
{
    return soc.run({sim::spawn(accessThread(soc.core(0), api, at)),
                    sim::spawn(executeThread(soc.core(1), api, at))});
}

void
checkGatherOutput(os::Process &proc, const GatherAddrs &at)
{
    for (std::uint32_t i = 0; i < kN; ++i) {
        std::uint32_t idx = (i * 2654435761u) % kN;
        ASSERT_EQ(proc.readScalar<std::uint32_t>(at.out + 4 * i), idx * 3 + 1)
            << "output element " << i;
    }
}

/** Full gather on @p cfg; returns final cycles, checks the output. */
sim::Cycle
gatherCycles(soc::SocConfig cfg)
{
    soc::Soc soc(std::move(cfg));
    os::Process &proc = soc.createProcess("resil");
    core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
    GatherAddrs at = setupGather(soc, proc, api);
    sim::Cycle cycles = runGather(soc, api, at);
    checkGatherOutput(proc, at);
    return cycles;
}

// ---------------------------------------------------------------------------
// Default-off: bit-flip rates without --ecc=secded change nothing
// ---------------------------------------------------------------------------

TEST(Resil, EccOffIgnoresBitFlipRatesEntirely)
{
    sim::Cycle clean = gatherCycles(soc::SocConfig::fpga());

    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.fault.seed = 7;
    cfg.fault.bitflip_l1 = {0.05, 2};
    cfg.fault.bitflip_llc = {0.05, 2};
    cfg.fault.bitflip_dram = {0.05, 2};
    // resil.ecc stays false: no ResilManager is built, so the rates above
    // are never even drawn — the run is cycle-identical to a clean one.
    soc::Soc soc(cfg);
    EXPECT_EQ(soc.resil(), nullptr);
    EXPECT_EQ(gatherCycles(cfg), clean);
}

// ---------------------------------------------------------------------------
// Correctable errors: latency only
// ---------------------------------------------------------------------------

TEST(Resil, CorrectableErrorsCostLatencyOnly)
{
    sim::Cycle clean = gatherCycles(soc::SocConfig::fpga());

    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.resil.ecc = true;
    cfg.fault.seed = 11;
    cfg.fault.bitflip_l1 = {0.02, 1};   // severity 1: always correctable
    cfg.fault.bitflip_dram = {0.02, 1};
    soc::Soc soc(cfg);
    ASSERT_NE(soc.resil(), nullptr);
    os::Process &proc = soc.createProcess("resil");
    core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
    GatherAddrs at = setupGather(soc, proc, api);
    sim::Cycle cycles = runGather(soc, api, at);
    checkGatherOutput(proc, at);

    mem::ResilManager &r = *soc.resil();
    EXPECT_GT(r.correctedTotal(), 0u) << "2% over thousands of accesses";
    EXPECT_EQ(r.uncorrectableTotal(), 0u) << "severity 1 never poisons";
    EXPECT_EQ(r.containments(), 0u);
    EXPECT_EQ(r.backingPoisonedLines(), 0u);
    // The decoupled gather absorbs most correction bubbles (that is the
    // point of latency tolerance), so end-to-end time only has to *move*,
    // not grow.
    EXPECT_NE(cycles, clean) << "corrections must perturb the timing";
}

// ---------------------------------------------------------------------------
// Uncorrectable errors: poison -> containment -> page retirement
// ---------------------------------------------------------------------------

TEST(Resil, DramPoisonIsContainedAndPageRetired)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.resil.ecc = true;
    cfg.fault.seed = 13;
    cfg.fault.bitflip_dram = {0.05, 2};  // severity 2: uncorrectable
    soc::Soc soc(cfg);
    os::Process &proc = soc.createProcess("resil");
    GatherAddrs at = fillArrays(proc);
    soc.run({sim::spawn(coreGather(soc.core(0), at))});
    // Containment must deliver the *right* data after the retry: the page
    // retire copies the frame, so the workload result is intact.
    checkGatherOutput(proc, at);

    mem::ResilManager &r = *soc.resil();
    EXPECT_GT(r.uncorrectableTotal(), 0u);
    EXPECT_GT(r.containments(), 0u) << "a consumer must have hit poison";
    EXPECT_GT(r.retiredPages(), 0u) << "containment retires the frame";
    bool any_mca = false;
    for (unsigned t = 0; t < r.numTiles(); ++t)
        any_mca |= r.mca(t).valid;
    EXPECT_TRUE(any_mca) << "uncorrectable errors latch an MCA bank";
}

TEST(Resil, McaBanksAreMmioReadableAndStickyUntilCleared)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.resil.ecc = true;
    cfg.fault.seed = 13;
    cfg.fault.bitflip_dram = {0.05, 2};
    soc::Soc soc(cfg);
    os::Process &proc = soc.createProcess("resil");
    GatherAddrs at = fillArrays(proc);
    soc.run({sim::spawn(coreGather(soc.core(0), at))});

    mem::ResilManager &r = *soc.resil();
    unsigned tile = r.numTiles();
    for (unsigned t = 0; t < r.numTiles(); ++t)
        if (r.mca(t).valid) {
            tile = t;
            break;
        }
    ASSERT_LT(tile, r.numTiles()) << "need at least one latched bank";
    const mem::McaBank bank = r.mca(tile);

    // Software view: one 32-byte register bank per tile in the MCA MMIO
    // window (status, addr, count, first_cycle); a store clears the bank.
    sim::Addr va = proc.mapMmio(soc.mcaMmioBase(), mem::kPageSize);
    sim::Addr base = va + sim::Addr(tile) * 32;
    auto reader = [&](cpu::Core &c) -> sim::Task<void> {
        std::uint64_t status = co_await c.load(base + 0, 8);
        EXPECT_EQ(status & 0xff, 1u) << "valid bit";
        EXPECT_EQ((status >> 8) & 0xff, std::uint64_t(bank.structure));
        EXPECT_EQ((status >> 16) & 0xff, std::uint64_t(bank.cause));
        EXPECT_EQ(co_await c.load(base + 8, 8), bank.addr);
        EXPECT_EQ(co_await c.load(base + 16, 8), bank.count);
        EXPECT_EQ(co_await c.load(base + 24, 8), bank.first_cycle);
        co_await c.store(base + 0, 0, 8);  // W1C: clear the bank
        EXPECT_EQ(co_await c.load(base + 0, 8), 0u);
    };
    soc.run({sim::spawn(reader(soc.core(0)))});
    EXPECT_FALSE(r.mca(tile).valid) << "the MMIO store cleared the bank";
}

// ---------------------------------------------------------------------------
// Scrub engine: corrupted sharer vectors get repaired, checker silent
// ---------------------------------------------------------------------------

soc::SocConfig
msiResilConfig()
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.coherence.mode = mem::CoherenceMode::Msi;
    cfg.coherence.checker = true;
    cfg.resil.ecc = true;
    cfg.resil.scrub_interval = 2000;
    return cfg;
}

TEST(Resil, ScrubRepairsCorruptedDirectoryEntries)
{
    soc::SocConfig cfg = msiResilConfig();
    // Cover the whole (sparse) directory every few passes: the default
    // batch of 16 would take most of the run to reach a given stale entry.
    cfg.resil.scrub_batch = 256;
    cfg.fault.seed = 17;
    cfg.fault.bitflip_dir = {0.2, 2};  // corrupt sharer vectors
    soc::Soc soc(cfg);
    os::Process &proc = soc.createProcess("resil");
    GatherAddrs at = fillArrays(proc);
    // Both cores run the gather over the same arrays: every A/B line is
    // shared in S by two caches, and the 12 KiB working set overflows the
    // 8 KiB L1s, so silent S-evictions leave genuinely stale sharer bits
    // even before the injected directory corruption adds fake ones.
    soc.run({sim::spawn(coreGather(soc.core(0), at)),
             sim::spawn(coreGather(soc.core(1), at))});
    checkGatherOutput(proc, at);  // checker throws on any protocol breach

    mem::ResilManager &r = *soc.resil();
    EXPECT_GT(r.scrubPasses(), 0u) << "the background loop really ran";
    EXPECT_GT(r.scrubRepairs(), 0u)
        << "stale sharer bits (corruption + silent S-evictions) must be "
           "repaired against CoherentCache ground truth";
    EXPECT_FALSE(r.scrubRunning())
        << "the loop parks itself when the machine drains (snapshot-safe)";
}

// ---------------------------------------------------------------------------
// Unified poison taxonomy: memory-origin poison reaching MAPLE's fetch
// pipeline surfaces exactly like a device hard fault (MapleStatus::Poisoned)
// and rides the existing OS recovery driver.
// ---------------------------------------------------------------------------

TEST(Resil, MemoryPoisonInMapleStreamsUsesTheRecoveryPath)
{
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.resil.ecc = true;
    cfg.fault.seed = 29;
    cfg.fault.bitflip_dram = {0.02, 2};
    os::RecoveryConfig rc;
    rc.enabled = true;
    rc.recovery_budget = 8;
    soc::Soc soc(cfg);
    os::Process &proc = soc.createProcess("resil");
    core::MapleApi api = core::MapleApi::attach(proc, soc.maple(), rc);
    GatherAddrs at = setupGather(soc, proc, api);
    runGather(soc, api, at);
    checkGatherOutput(proc, at);  // reliable ops never deliver poison

    EXPECT_GT(soc.maple().counter(core::Counter::PoisonedResponses), 0u)
        << "memory-origin poison must surface as MapleStatus::Poisoned";
    EXPECT_GT(api.driver()->recoveries(), 0u)
        << "the driver recovers poisoned queues like device hard faults";
    EXPECT_GT(soc.resil()->uncorrectableTotal(), 0u);
}

// ---------------------------------------------------------------------------
// Fuzzer: every bit-flip class at once, checker as the oracle. This is the
// CI soft-error fuzzer: runs must complete (or end in contained recovery) —
// never a CoherenceError, never a hang.
// ---------------------------------------------------------------------------

TEST(ResilFuzz, SeededBitFlipStormsNeverBreachTheChecker)
{
    for (std::uint64_t seed : {1ull, 23ull, 0xfeedull}) {
        soc::SocConfig cfg = msiResilConfig();
        cfg.fault.seed = seed;
        cfg.fault.bitflip_l1 = {0.01, 1};
        cfg.fault.bitflip_llc = {0.005, 2};
        cfg.fault.bitflip_dram = {0.005, 2};
        cfg.fault.bitflip_dir = {0.02, 2};
        os::RecoveryConfig rc;
        rc.enabled = true;  // poisoned MAPLE slots recover instead of zeroing
        rc.recovery_budget = 8;
        soc::Soc soc(cfg);
        os::Process &proc = soc.createProcess("fuzz");
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple(), rc);
        GatherAddrs at = setupGather(soc, proc, api);
        runGather(soc, api, at);  // CoherenceError would propagate here
        checkGatherOutput(proc, at);
        mem::ResilManager &r = *soc.resil();
        EXPECT_GT(r.correctedTotal() + r.uncorrectableTotal(), 0u)
            << "seed " << seed << ": the storm must actually fire";
    }
}

// ---------------------------------------------------------------------------
// Acceptance: 64-tile grid, checker on, all four fault classes seeded.
// Deterministic across host threads and across snapshot/restore.
// ---------------------------------------------------------------------------

constexpr unsigned kGridCores = 55;  // + 1 MAPLE + 8 slices = 64 tiles
constexpr unsigned kOpsPerPhase = 128;

/** Per-core mixed traffic over a shared region (sharing, invalidations,
 *  S-evictions) plus a private stride (capacity evictions). */
sim::Task<void>
gridAgent(soc::Soc &soc, unsigned c, sim::Addr shared, sim::Addr priv,
          std::uint64_t seed)
{
    cpu::Core &core = soc.core(c);
    sim::Rng rng(seed);
    for (unsigned i = 0; i < kOpsPerPhase; ++i) {
        sim::Addr a = shared + (rng.next() % 512) * 8;
        if (rng.next() % 3)
            co_await core.load(a, 8);
        else
            co_await core.store(a, rng.next(), 8);
        co_await core.load(priv + (i % 64) * 64, 8);
    }
}

struct GridOutcome {
    std::string warm;   ///< snapshot at the phase-1/phase-2 boundary
    std::string fin;    ///< end-of-run snapshot
    std::uint64_t corrected = 0, containments = 0, scrub_repairs = 0;
    sim::Cycle cycles = 0;
};

soc::SocConfig
acceptanceConfig(unsigned host_threads)
{
    soc::SocConfig cfg = soc::SocConfig::simulated(kGridCores);
    cfg.llc_slices = 8;
    cfg.host_threads = host_threads;
    cfg.coherence.mode = mem::CoherenceMode::Msi;
    cfg.coherence.checker = true;
    cfg.resil.ecc = true;
    cfg.resil.scrub_interval = 4000;
    cfg.resil.scrub_batch = 128;  // cover all 8 slice directories per run
    cfg.fault.seed = 9;
    cfg.fault.bitflip_l1 = {0.004, 1};
    cfg.fault.bitflip_llc = {0.002, 2};
    cfg.fault.bitflip_dram = {0.002, 2};
    cfg.fault.bitflip_dir = {0.02, 2};
    return cfg;
}

void
runGridPhase(soc::Soc &soc, sim::Addr shared, sim::Addr priv,
             std::uint64_t phase_seed)
{
    std::vector<sim::Join> joins;
    for (unsigned c = 0; c < kGridCores; ++c)
        joins.push_back(sim::spawn(gridAgent(
            soc, c, shared, priv + c * 4096, phase_seed + c)));
    sim::Cycle cycles = soc.run(std::move(joins), 200'000'000);
    ASSERT_LT(cycles, 200'000'000u) << "grid phase wedged";
}

GridOutcome
runAcceptanceGrid(unsigned host_threads)
{
    GridOutcome out;
    soc::Soc soc(acceptanceConfig(host_threads));
    EXPECT_EQ(soc.config().mesh_width * soc.config().mesh_height, 64u);
    os::Process &proc = soc.createProcess("acceptance");
    sim::Addr shared = proc.alloc(512 * 8, "shared");
    sim::Addr priv = proc.alloc(kGridCores * 4096, "priv");

    runGridPhase(soc, shared, priv, 0x1000);
    std::stringstream warm;
    soc.snapshot(warm);
    out.warm = warm.str();

    runGridPhase(soc, shared, priv, 0x2000);
    mem::ResilManager &r = *soc.resil();
    out.corrected = r.correctedTotal();
    out.containments = r.containments();
    out.scrub_repairs = r.scrubRepairs();
    out.cycles = soc.eq().now();
    std::stringstream fin;
    soc.snapshot(fin);
    out.fin = fin.str();
    return out;
}

TEST(ResilAcceptance, SixtyFourTileGridCorrectsContainsAndScrubs)
{
    GridOutcome ref = runAcceptanceGrid(1);
    // The three required recoveries all fired, and the checker (live on
    // every transition) never threw out of a join.
    EXPECT_GE(ref.corrected, 1u);
    EXPECT_GE(ref.containments, 1u);
    EXPECT_GE(ref.scrub_repairs, 1u);

    // Same machine, 4 host threads: byte-identical.
    GridOutcome mt = runAcceptanceGrid(4);
    EXPECT_EQ(mt.cycles, ref.cycles);
    EXPECT_EQ(mt.fin, ref.fin) << "--threads=4 diverged from --threads=1";

    // Restore the phase boundary into a fresh 4-thread SoC and run phase 2:
    // the end state must match the uninterrupted run, resilience state
    // (poisoned ways, MCA banks, backing poison, scrub cursor) included.
    soc::Soc soc(acceptanceConfig(4));
    std::istringstream warm(ref.warm);
    soc.restore(warm);
    os::Process &proc = *soc.kernel().processes()[0];
    sim::Addr shared = proc.regionBase("shared");
    sim::Addr priv = proc.regionBase("priv");
    runGridPhase(soc, shared, priv, 0x2000);
    EXPECT_EQ(soc.eq().now(), ref.cycles);
    std::stringstream fin;
    soc.snapshot(fin);
    EXPECT_EQ(fin.str(), ref.fin)
        << "snapshot->restore diverged from the uninterrupted run";
}

}  // namespace
