/**
 * @file
 * Campaign-service tests: JSON round-trips and format locks for the harness
 * serializer, spec expansion, the content-hashed result cache, scenario
 * warm/measure determinism (the cache-identity guarantee), and the
 * crash-isolated runner end to end.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "campaign/cache.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "harness/host_perf.hpp"
#include "harness/scenario.hpp"
#include "harness/stats_io.hpp"
#include "soc/soc.hpp"

using namespace maple;
using harness::json::Value;
namespace json = harness::json;
namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// JSON core
// ---------------------------------------------------------------------------

TEST(CampaignJson, ParseDumpIsByteStable)
{
    const std::string text = "{\n"
                             "  \"b\": true,\n"
                             "  \"i\": -42,\n"
                             "  \"big\": 9007199254740993,\n"
                             "  \"d\": 0.1,\n"
                             "  \"s\": \"he\\\"llo\\n\",\n"
                             "  \"a\": [\n"
                             "    1,\n"
                             "    []\n"
                             "  ],\n"
                             "  \"o\": {}\n"
                             "}\n";
    Value v = json::parse(text);
    EXPECT_EQ(json::dump(v), text);
    EXPECT_EQ(json::dump(json::parse(json::dump(v))), text);
}

TEST(CampaignJson, IntegersDoNotGoThroughDouble)
{
    // 2^53 + 1 is not representable as a double; it must round-trip.
    Value v = json::parse("9007199254740993");
    ASSERT_TRUE(v.isInt());
    EXPECT_EQ(v.asInt(), 9007199254740993ll);
}

TEST(CampaignJson, ObjectsPreserveInsertionOrder)
{
    Value v = json::parse("{\"z\": 1, \"a\": 2}");
    const json::Object &o = v.asObject();
    ASSERT_EQ(o.size(), 2u);
    EXPECT_EQ(o[0].first, "z");
    EXPECT_EQ(o[1].first, "a");
}

TEST(CampaignJson, MalformedInputThrowsWithOffset)
{
    EXPECT_THROW(json::parse("{\"a\": }"), json::JsonError);
    EXPECT_THROW(json::parse("[1, 2"), json::JsonError);
    EXPECT_THROW(json::parse("nul"), json::JsonError);
    EXPECT_THROW(json::parse("{} trailing"), json::JsonError);
    try {
        json::parse("[1, x]");
        FAIL();
    } catch (const json::JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("offset 4"), std::string::npos);
    }
}

TEST(CampaignJson, WriteFileIsAtomicAndReadable)
{
    const std::string path =
        ::testing::TempDir() + "campaign_json_atomic.json";
    Value v;
    v.set("k", Value(1));
    json::writeFile(path, v);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    EXPECT_EQ(json::parseFile(path), v);
    fs::remove(path);
}

// ---------------------------------------------------------------------------
// Format locks: these strings are the on-disk contract with scripts/ and the
// result cache. A diff here is a format change -- bump campaign::kCacheVersion
// and update the consumers, don't just fix the test.
// ---------------------------------------------------------------------------

TEST(CampaignFormatLock, HostPerfReportSchema)
{
    harness::PerfSample s;
    s.name = "spmv";
    s.events = 10;
    s.sim_cycles = 20;
    s.host_seconds = 0.5;
    Value v = harness::hostPerfToJson({s}, "bench_host_perf", false);
    EXPECT_EQ(json::dump(v),
              "{\n"
              "  \"bench\": \"bench_host_perf\",\n"
              "  \"quick\": false,\n"
              "  \"benchmarks\": [\n"
              "    {\n"
              "      \"name\": \"spmv\",\n"
              "      \"threads\": 1,\n"
              "      \"events\": 10,\n"
              "      \"sim_cycles\": 20,\n"
              "      \"host_seconds\": 0.5,\n"
              "      \"events_per_sec\": 20.0\n"
              "    }\n"
              "  ]\n"
              "}\n");
}

TEST(CampaignFormatLock, StatGroupSchema)
{
    sim::StatGroup g("llc");
    g.counter("hits").inc(2);
    g.average("lat").sample(1.0);
    g.average("lat").sample(3.0);
    (void)g.histogram("occ", 2.0, 4);
    Value v = harness::statsToJson(g);
    EXPECT_EQ(json::dump(v),
              "{\n"
              "  \"name\": \"llc\",\n"
              "  \"counters\": {\n"
              "    \"hits\": 2\n"
              "  },\n"
              "  \"averages\": {\n"
              "    \"lat\": {\n"
              "      \"mean\": 2.0,\n"
              "      \"count\": 2,\n"
              "      \"min\": 1.0,\n"
              "      \"max\": 3.0\n"
              "    }\n"
              "  },\n"
              "  \"histograms\": {\n"
              "    \"occ\": {\n"
              "      \"total\": 0,\n"
              "      \"max\": 0.0,\n"
              "      \"p50\": 0.0,\n"
              "      \"p99\": 0.0,\n"
              "      \"buckets\": [\n"
              "        0,\n"
              "        0,\n"
              "        0,\n"
              "        0\n"
              "      ]\n"
              "    }\n"
              "  }\n"
              "}\n");
}

TEST(CampaignFormatLock, RunResultRoundTrips)
{
    app::RunResult r;
    r.workload = "spmv";
    r.technique = "maple-decouple";
    r.cycles = 12345;
    r.checksum = 0xdeadbeefcafef00dull;
    r.valid = true;
    r.instructions = 7;
    r.loads = 5;
    r.stores = 2;
    r.mean_load_latency = 33.25;
    r.sim_events = 99;
    app::RunResult back =
        harness::runResultFromJson(harness::runResultToJson(r));
    EXPECT_EQ(json::dump(harness::runResultToJson(back)),
              json::dump(harness::runResultToJson(r)));
    EXPECT_EQ(back.checksum, r.checksum);
    EXPECT_EQ(back.cycles, r.cycles);
}

// ---------------------------------------------------------------------------
// Spec expansion
// ---------------------------------------------------------------------------

const char *kSmokeSpec = R"({
  "name": "smoke",
  "workers": 2,
  "runs": 2,
  "base": {"scenario": "spmv", "rows": 64, "nnz_per_row": 4, "cols": 512,
           "warm_rows": 16},
  "axes": {"technique": ["doall", "maple"], "queue_entries": [8, 32]},
  "seeds": [1]
})";

TEST(CampaignSpec, AxesExpandCartesian)
{
    campaign::CampaignSpec c =
        campaign::parseCampaignSpec(json::parse(kSmokeSpec));
    ASSERT_EQ(c.jobs.size(), 4u);
    EXPECT_EQ(c.jobs[0].name, "technique=doall,queue_entries=8,seed=1");
    EXPECT_EQ(c.jobs[3].name, "technique=maple,queue_entries=32,seed=1");
    EXPECT_EQ(c.jobs[3].spec.getString("technique", ""), "maple");
    EXPECT_EQ(c.jobs[3].spec.getInt("queue_entries", 0), 32);
    EXPECT_EQ(c.runs, 2u);
}

TEST(CampaignSpec, RejectsBadScenarioAndDuplicates)
{
    EXPECT_THROW(campaign::parseCampaignSpec(json::parse(
                     R"({"base": {"technique": "warp-drive"}})")),
                 json::JsonError);
    EXPECT_THROW(campaign::parseCampaignSpec(json::parse(
                     R"({"jobs": [{"name": "a", "type": "exec",
                         "argv": ["/bin/true"]},
                        {"name": "a", "type": "exec",
                         "argv": ["/bin/true"]}]})")),
                 json::JsonError);
    EXPECT_THROW(campaign::parseCampaignSpec(json::parse(R"({})")),
                 json::JsonError);
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(CampaignCache, KeyIsStableAndSpecSensitive)
{
    campaign::CampaignSpec c =
        campaign::parseCampaignSpec(json::parse(kSmokeSpec));
    campaign::ResultCache cache(::testing::TempDir() + "campaign_cache",
                                true);
    EXPECT_EQ(cache.keyFor(c.jobs[0]), cache.keyFor(c.jobs[0]));
    EXPECT_NE(cache.keyFor(c.jobs[0]), cache.keyFor(c.jobs[1]));

    campaign::Job tweaked = c.jobs[0];
    tweaked.spec.set("seed", Value(2));
    EXPECT_NE(cache.keyFor(c.jobs[0]), cache.keyFor(tweaked));
}

TEST(CampaignCache, HostThreadsDoesNotSplitTheKey)
{
    // host_threads is a host-execution knob: the sharded engine's results
    // are byte-identical for any value, so an N-thread job must reuse a
    // 1-thread cache entry (and vice versa).
    campaign::CampaignSpec c =
        campaign::parseCampaignSpec(json::parse(kSmokeSpec));
    campaign::ResultCache cache(::testing::TempDir() + "campaign_cache_ht",
                                true);
    const std::string base_key = cache.keyFor(c.jobs[0]);

    campaign::Job threaded = c.jobs[0];
    threaded.spec.set("host_threads", Value(8));
    EXPECT_EQ(cache.keyFor(threaded), base_key);
    threaded.spec.set("host_threads", Value(1));
    EXPECT_EQ(cache.keyFor(threaded), base_key);

    // Everything else must still split the key, also in a spec that
    // carries host_threads.
    threaded.spec.set("rows", Value(128));
    EXPECT_NE(cache.keyFor(threaded), base_key);
}

TEST(CampaignSpec, HostThreadsAxisExpandsAndSharesCacheEntries)
{
    campaign::CampaignSpec c = campaign::parseCampaignSpec(json::parse(R"({
      "name": "threads-sweep",
      "base": {"scenario": "spmv", "rows": 64, "nnz_per_row": 4,
               "cols": 512, "warm_rows": 16},
      "axes": {"host_threads": [1, 4]},
      "seeds": [1]
    })"));
    ASSERT_EQ(c.jobs.size(), 2u);
    harness::ScenarioSpec s0 = harness::parseScenarioSpec(c.jobs[0].spec);
    harness::ScenarioSpec s1 = harness::parseScenarioSpec(c.jobs[1].spec);
    EXPECT_EQ(s0.host_threads, 1u);
    EXPECT_EQ(s1.host_threads, 4u);
    EXPECT_EQ(harness::scenarioSocConfig(s1).host_threads, 4u);

    // The two jobs differ only in host_threads: one cache entry serves both.
    campaign::ResultCache cache(::testing::TempDir() + "campaign_cache_axis",
                                true);
    EXPECT_EQ(cache.keyFor(c.jobs[0]), cache.keyFor(c.jobs[1]));
}

TEST(CampaignCache, StoreThenLoadReturnsIdenticalDocument)
{
    campaign::ResultCache cache(::testing::TempDir() + "campaign_cache2",
                                true);
    Value doc;
    doc.set("result", Value("stats"));
    doc.set("cycles", Value(123));
    cache.store("abc123", doc);
    auto back = cache.load("abc123");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(json::dump(*back), json::dump(doc));
    EXPECT_FALSE(cache.load("missing").has_value());

    campaign::ResultCache disabled(cache.dir(), false);
    EXPECT_FALSE(disabled.load("abc123").has_value());
    fs::remove_all(cache.dir());
}

TEST(CampaignCache, UnreadableFileHashIsATypedError)
{
    // A silent 0 for an unreadable file would give every missing binary the
    // same "content", poisoning cache keys; it must be a ConfigError.
    EXPECT_THROW(campaign::fileContentHash("/definitely/not/here"),
                 sim::ConfigError);
}

TEST(CampaignCache, CorruptEntryIsEvictedAndCounted)
{
    const std::string dir = ::testing::TempDir() + "campaign_cache3";
    campaign::ResultCache cache(dir, true);
    Value doc;
    doc.set("cycles", Value(7));
    cache.store("deadbeef", doc);
    ASSERT_TRUE(cache.load("deadbeef").has_value());
    EXPECT_EQ(cache.evictions(), 0u);

    // Flip one payload byte on disk: the checksum wrapper must catch it,
    // the entry must be deleted, and the eviction counted.
    const std::string path = dir + "/deadbeef.json";
    std::string bytes;
    {
        std::ifstream f(path, std::ios::binary);
        std::ostringstream ss;
        ss << f.rdbuf();
        bytes = ss.str();
    }
    bytes[bytes.find("\"cycles\"") + 2] ^= 0x20;
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << bytes;
    }
    EXPECT_FALSE(cache.load("deadbeef").has_value());
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(fs::exists(path));
    // Gone, so the next probe is a plain miss, not another eviction.
    EXPECT_FALSE(cache.load("deadbeef").has_value());
    EXPECT_EQ(cache.evictions(), 1u);

    // A truncated (unparsable) entry takes the same path.
    cache.store("feedface", doc);
    {
        std::ofstream f(dir + "/feedface.json",
                        std::ios::binary | std::ios::trunc);
        f << "{\"fnv64\": \"12";
    }
    EXPECT_FALSE(cache.load("feedface").has_value());
    EXPECT_EQ(cache.evictions(), 2u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Scenario: the cache-identity guarantee. A job measured on a
// restored-from-warm-image SoC must produce byte-identical stats to one
// measured on the SoC that was warmed in-process.
// ---------------------------------------------------------------------------

harness::ScenarioSpec
smallScenario(const std::string &technique)
{
    harness::ScenarioSpec s;
    s.rows = 96;
    s.nnz_per_row = 4;
    s.cols = 1024;
    s.seed = 7;
    s.warm_rows = 32;
    s.technique = technique;
    s.queue_entries = 8;
    return s;
}

TEST(CampaignScenario, MeasureValidatesAgainstGolden)
{
    for (const char *tech : {"doall", "maple"}) {
        harness::ScenarioSpec s = smallScenario(tech);
        soc::Soc soc(harness::scenarioSocConfig(s));
        harness::warmScenario(soc, s);
        harness::ScenarioResult r = harness::measureScenario(soc, s);
        EXPECT_TRUE(r.result.valid) << tech;
        EXPECT_GT(r.result.cycles, 0u) << tech;
    }
}

TEST(CampaignScenario, RestoredMeasureIsByteIdenticalToWarmMeasure)
{
    harness::ScenarioSpec s = smallScenario("maple");
    std::string warm_image;
    std::string direct;
    {
        soc::Soc soc(harness::scenarioSocConfig(s));
        harness::warmScenario(soc, s);
        std::stringstream img;
        soc.snapshot(img);
        warm_image = img.str();
        direct = json::dump(
            harness::scenarioResultJson(harness::measureScenario(soc, s)));
    }
    {
        soc::Soc soc(harness::scenarioSocConfig(s));
        std::istringstream img(warm_image);
        soc.restore(img);
        std::string restored = json::dump(
            harness::scenarioResultJson(harness::measureScenario(soc, s)));
        EXPECT_EQ(restored, direct);
    }
}

TEST(CampaignScenario, QueueEntriesIsAMeasureAxis)
{
    // Same warm image serves different queue depths: INIT runs in measure().
    harness::ScenarioSpec a = smallScenario("maple");
    harness::ScenarioSpec b = smallScenario("maple");
    b.queue_entries = 32;
    EXPECT_EQ(json::dump(harness::scenarioWarmKey(a)),
              json::dump(harness::scenarioWarmKey(b)));
    EXPECT_NE(json::dump(harness::scenarioSpecJson(a)),
              json::dump(harness::scenarioSpecJson(b)));
}

// ---------------------------------------------------------------------------
// Runner end to end (forks real worker processes)
// ---------------------------------------------------------------------------

struct TempCampaignDir {
    std::string path;
    TempCampaignDir()
    {
        std::string templ = ::testing::TempDir() + "campaignXXXXXX";
        path = ::mkdtemp(templ.data());
    }
    ~TempCampaignDir() { fs::remove_all(path); }
};

TEST(CampaignRunner, RunsWarmOnceCachesAndSurvivesCrash)
{
    TempCampaignDir dir;
    campaign::CampaignSpec spec =
        campaign::parseCampaignSpec(json::parse(kSmokeSpec));
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    opts.workers = 2;

    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);
    Value m1 = json::parseFile(opts.out_dir + "/manifest.json");
    const Value *t1 = m1.get("totals");
    ASSERT_NE(t1, nullptr);
    EXPECT_EQ(t1->getInt("jobs", -1), 4);
    EXPECT_EQ(t1->getInt("ok", -1), 4);
    EXPECT_EQ(t1->getInt("warmups_run", -1), 1);
    EXPECT_GT(t1->getInt("simulated_cycles", 0), 0);

    // Every job ran restored from the shared warm image, deterministically.
    std::string first_results;
    for (const Value &row : m1.get("jobs")->asArray()) {
        const std::string name = row.getString("name", "");
        Value r = json::parseFile(opts.out_dir + "/jobs/" + name + ".json");
        EXPECT_TRUE(r.getBool("restored_from_warm_image", false)) << name;
        const Value *d = r.get("deterministic");
        ASSERT_NE(d, nullptr) << name;
        EXPECT_TRUE(d->isBool() && d->asBool()) << name;
        first_results += json::dump(r);
    }

    // Second invocation: zero warmups, zero simulated cycles, 100% cache
    // hits, byte-identical per-job results.
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);
    Value m2 = json::parseFile(opts.out_dir + "/manifest.json");
    const Value *t2 = m2.get("totals");
    EXPECT_EQ(t2->getInt("cache_hits", -1), 4);
    EXPECT_EQ(t2->getInt("warmups_run", -1), 0);
    EXPECT_EQ(t2->getInt("simulated_cycles", -1), 0);
    std::string second_results;
    for (const Value &row : m2.get("jobs")->asArray()) {
        second_results += json::dump(json::parseFile(
            opts.out_dir + "/jobs/" + row.getString("name", "") + ".json"));
    }
    EXPECT_EQ(second_results, first_results);

    // Crash one worker mid-campaign: only its job fails, with diagnostics,
    // and the campaign still exits 0.
    const std::string victim = "technique=maple,queue_entries=8,seed=1";
    ::setenv("MAPLE_CAMPAIGN_CRASH_JOB", victim.c_str(), 1);
    campaign::RunnerOptions crash_opts = opts;
    crash_opts.out_dir = dir.path + "/crash";
    EXPECT_EQ(campaign::runCampaign(spec, crash_opts), 0);
    ::unsetenv("MAPLE_CAMPAIGN_CRASH_JOB");

    Value m3 = json::parseFile(crash_opts.out_dir + "/manifest.json");
    EXPECT_EQ(m3.get("totals")->getInt("failed", -1), 1);
    EXPECT_EQ(m3.get("totals")->getInt("ok", -1), 3);
    for (const Value &row : m3.get("jobs")->asArray()) {
        if (row.getString("name", "") == victim) {
            EXPECT_EQ(row.getString("status", ""), "crashed");
            EXPECT_EQ(row.getInt("signal", 0), SIGSEGV);
            EXPECT_NE(row.getString("diagnostics", "").find("signal"),
                      std::string::npos);
        } else {
            EXPECT_EQ(row.getString("status", ""), "ok");
        }
    }
}

TEST(CampaignRunner, ExecJobsCaptureOutputAndIsolateFailure)
{
    TempCampaignDir dir;
    campaign::CampaignSpec spec = campaign::parseCampaignSpec(json::parse(R"({
      "name": "execs",
      "runs": 2,
      "jobs": [
        {"type": "exec", "name": "hello",
         "argv": ["/bin/sh", "-c", "echo out-$MARK"], "env": {"MARK": "42"}},
        {"type": "exec", "name": "fails",
         "argv": ["/bin/sh", "-c", "exit 7"]}
      ]
    })"));
    campaign::RunnerOptions opts;
    opts.out_dir = dir.path + "/out";
    ASSERT_EQ(campaign::runCampaign(spec, opts), 0);

    Value hello = json::parseFile(opts.out_dir + "/jobs/hello.json");
    EXPECT_EQ(hello.getString("stdout", ""), "out-42\n");
    EXPECT_TRUE(hello.get("deterministic")->asBool());
    Value m = json::parseFile(opts.out_dir + "/manifest.json");
    EXPECT_EQ(m.get("totals")->getInt("ok", -1), 1);
    EXPECT_EQ(m.get("totals")->getInt("failed", -1), 1);

    // --strict escalates recorded failures into the exit code.
    campaign::RunnerOptions strict = opts;
    strict.out_dir = dir.path + "/strict";
    strict.strict = true;
    EXPECT_EQ(campaign::runCampaign(spec, strict), 1);
}

}  // namespace
