/**
 * @file
 * Integration and property tests for the MAPLE device driven through the
 * full SoC: MMIO encode/decode, produce/consume ordering, pointer-produce
 * reordering, backpressure, LIMA, virtual-memory faults, shootdowns, the
 * pipeline-separation deadlock ablation, and performance counters.
 */
#include <gtest/gtest.h>

#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define MAPLE_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MAPLE_TEST_ASAN 1
#endif
#endif
#ifdef MAPLE_TEST_ASAN
#include <sanitizer/lsan_interface.h>
#endif

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"

using namespace maple;
using core::Counter;
using core::LimaRequest;
using core::MapleApi;

namespace {

struct Fixture {
    soc::Soc soc;
    os::Process &proc;
    MapleApi api;

    explicit Fixture(soc::SocConfig cfg = soc::SocConfig::fpga())
        : soc(std::move(cfg)), proc(soc.createProcess("test")),
          api(MapleApi::attach(proc, soc.maple()))
    {
    }
};

}  // namespace

TEST(MapleIsa, EncodeDecodeRoundTrip)
{
    sim::Addr base = 0x40000000;
    for (unsigned q = 0; q < core::kMaxQueuesPerPage; ++q) {
        for (unsigned op = 0; op < 64; ++op) {
            sim::Addr a = core::encodeOp(base, q, op);
            EXPECT_EQ(core::decodeQueue(a), q);
            EXPECT_EQ(core::decodeOp(a), op);
            EXPECT_EQ(a & ~sim::Addr(0xfff), base);
        }
    }
}

TEST(MapleIsa, PayloadPackingRoundTrips)
{
    auto qc = core::unpackQueueConfig(core::packQueueConfig(8, 32, 4));
    EXPECT_EQ(qc.count, 8u);
    EXPECT_EQ(qc.entries, 32u);
    EXPECT_EQ(qc.entry_bytes, 4u);

    core::LimaControl c;
    c.target_queue = 5;
    c.b_elem_bytes = 8;
    c.a_elem_bytes = 4;
    c.speculative = true;
    auto c2 = core::unpackLimaControl(core::packLimaControl(c));
    EXPECT_EQ(c2.target_queue, 5);
    EXPECT_EQ(c2.b_elem_bytes, 8);
    EXPECT_EQ(c2.a_elem_bytes, 4);
    EXPECT_TRUE(c2.speculative);
}

TEST(Maple, DataProduceConsumeFifoOrder)
{
    Fixture f;
    std::vector<std::uint64_t> got;

    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 4, 16, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (std::uint64_t i = 0; i < 50; ++i)
            co_await f.api.produce(c, 0, 1000 + i);
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 200);  // let init land first
        for (int i = 0; i < 50; ++i)
            got.push_back(co_await f.api.consume(c, 0));
    };

    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(producer(f.soc.core(0))));
    joins.push_back(sim::spawn(consumer(f.soc.core(1))));
    f.soc.run(std::move(joins), 10'000'000);

    ASSERT_EQ(got.size(), 50u);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_EQ(got[i], 1000 + i) << "FIFO order violated at " << i;
}

TEST(Maple, PointerProduceFetchesFromMemoryInProgramOrder)
{
    Fixture f;
    constexpr int kN = 200;
    // A[i] = i*i; pointers produced in a scrambled-but-known order.
    sim::Addr a = f.proc.alloc(kN * 8, "A");
    for (int i = 0; i < kN; ++i)
        f.proc.writeScalar<std::uint64_t>(a + 8 * i, std::uint64_t(i) * i);

    std::vector<std::uint64_t> got;
    auto access = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 32, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (int i = 0; i < kN; ++i) {
            // Stride around so consecutive fetches hit different lines/pages.
            int j = (i * 37) % kN;
            co_await f.api.producePtr(c, 0, a + 8 * j);
        }
    };
    auto execute = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 300);
        for (int i = 0; i < kN; ++i)
            got.push_back(co_await f.api.consume(c, 0));
    };

    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(access(f.soc.core(0))));
    joins.push_back(sim::spawn(execute(f.soc.core(1))));
    f.soc.run(std::move(joins), 50'000'000);

    ASSERT_EQ(got.size(), size_t(kN));
    for (int i = 0; i < kN; ++i) {
        std::uint64_t j = std::uint64_t((i * 37) % kN);
        EXPECT_EQ(got[i], j * j) << "response reordering broke program order";
    }
    EXPECT_EQ(f.soc.maple().counter(Counter::ProducedPtrs), unsigned(kN));
    EXPECT_EQ(f.soc.maple().counter(Counter::Consumed), unsigned(kN));
}

TEST(Maple, FullQueueBackpressuresProducerWithoutLoss)
{
    Fixture f;
    constexpr int kN = 64;
    std::vector<std::uint64_t> got;

    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 4, 8);  // tiny queue: constant back-pressure
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (std::uint64_t i = 0; i < kN; ++i)
            co_await f.api.produce(c, 0, i);
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 5000);  // let the queue fill up
        for (int i = 0; i < kN; ++i) {
            co_await sim::delay(f.soc.eq(), 50);  // slow consumer
            got.push_back(co_await f.api.consume(c, 0));
        }
    };

    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(producer(f.soc.core(0))));
    joins.push_back(sim::spawn(consumer(f.soc.core(1))));
    f.soc.run(std::move(joins), 50'000'000);

    ASSERT_EQ(got.size(), size_t(kN));
    for (int i = 0; i < kN; ++i)
        EXPECT_EQ(got[i], std::uint64_t(i));
    EXPECT_GT(f.soc.maple().counter(Counter::FullStallCycles), 0u);
}

TEST(Maple, ConsumeOnEmptyQueueParksUntilDataArrives)
{
    Fixture f;
    std::uint64_t got = 0;
    sim::Cycle consume_done = 0;

    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 8, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        got = co_await f.api.consume(c, 0);  // parks: queue is empty
        consume_done = f.soc.eq().now();
    };
    auto producer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 9000);
        co_await f.api.produce(c, 0, 777);
    };

    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(consumer(f.soc.core(0))));
    joins.push_back(sim::spawn(producer(f.soc.core(1))));
    f.soc.run(std::move(joins), 1'000'000);

    EXPECT_EQ(got, 777u);
    EXPECT_GE(consume_done, 9000u);
    EXPECT_GT(f.soc.maple().counter(Counter::EmptyStallCycles), 0u);
}

TEST(Maple, OperationsToOtherQueuesProceedWhileOneIsFull)
{
    Fixture f;
    sim::Cycle q1_done = 0;

    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 2, 4, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        EXPECT_TRUE(co_await f.api.open(c, 1));
        // Fill queue 0 beyond capacity: the 5th produce parks in the buffer.
        for (int i = 0; i < 5; ++i)
            co_await f.api.produce(c, 0, i);
        co_return;
    };
    auto other = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 2000);
        // Queue 1 must stay usable even though queue 0 is saturated.
        co_await f.api.produce(c, 1, 42);
        std::uint64_t v = co_await f.api.consume(c, 1);
        EXPECT_EQ(v, 42u);
        q1_done = f.soc.eq().now();
        // Unblock queue 0 so the parked produce can finish.
        (void)co_await f.api.consume(c, 0);
    };

    std::vector<sim::Join> joins;
    joins.push_back(sim::spawn(driver(f.soc.core(0))));
    joins.push_back(sim::spawn(other(f.soc.core(1))));
    f.soc.run(std::move(joins), 1'000'000);
    EXPECT_GT(q1_done, 0u);
}

TEST(Maple, SharedPipelineAblationDeadlocks)
{
#ifdef MAPLE_TEST_ASAN
    // The deadlock under test strands both tasks' coroutine frames by
    // design; they are not reclaimable, so exempt them from LeakSanitizer.
    __lsan::ScopedDisabler no_leak_check;
#endif
    soc::SocConfig cfg = soc::SocConfig::fpga();
    cfg.maple_proto.shared_pipeline_hazard = true;
    Fixture f(cfg);

    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 2, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (int i = 0; i < 3; ++i)  // 3rd produce parks on the full queue
            co_await f.api.produce(c, 0, i);
        co_await c.storeFence();  // wait for the parked produce's ack
    };
    auto consumer = [&](cpu::Core &c) -> sim::Task<void> {
        co_await sim::delay(f.soc.eq(), 3000);
        // With a single shared pipeline this consume serializes *behind* the
        // parked produce and can never free the space it is waiting for.
        (void)co_await f.api.consume(c, 0);
    };

    sim::Join j1 = sim::spawn(driver(f.soc.core(0)));
    sim::Join j2 = sim::spawn(consumer(f.soc.core(1)));
    // Deadlock: the event queue drains with both tasks incomplete, which the
    // liveness machinery converts into a typed, catchable error whose report
    // names the parked waiters (instead of the pre-watchdog silent hang).
    try {
        f.soc.run({j1, j2}, 2'000'000);
        FAIL() << "expected sim::DeadlockError";
    } catch (const sim::DeadlockError &e) {
        EXPECT_NE(std::string(e.report()).find("pipe_head"), std::string::npos)
            << e.report();
    }
    EXPECT_TRUE(f.soc.eq().empty());
    EXPECT_FALSE(j1.done());
    EXPECT_FALSE(j2.done());
}

TEST(Maple, ConsumePairPacksTwo32BitEntries)
{
    Fixture f;
    std::vector<std::uint32_t> got;

    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 16, 4);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (std::uint32_t i = 0; i < 10; ++i)
            co_await f.api.produce(c, 0, 0xa0 + i);
        for (int i = 0; i < 5; ++i) {
            std::uint64_t pair = co_await f.api.consumePair(c, 0);
            got.push_back(static_cast<std::uint32_t>(pair & 0xffffffff));
            got.push_back(static_cast<std::uint32_t>(pair >> 32));
        }
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 1'000'000);

    ASSERT_EQ(got.size(), 10u);
    for (std::uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(got[i], 0xa0 + i);
}

TEST(Maple, LimaNonSpeculativeFillsQueueWithIndirectData)
{
    Fixture f;
    constexpr int kN = 128;
    // B[i] = permutation index; A[j] = j + 5000.
    sim::Addr a = f.proc.alloc(kN * 4, "A");
    sim::Addr b = f.proc.alloc(kN * 4, "B");
    for (int i = 0; i < kN; ++i) {
        f.proc.writeScalar<std::uint32_t>(b + 4 * i, std::uint32_t((i * 61) % kN));
        f.proc.writeScalar<std::uint32_t>(a + 4 * i, std::uint32_t(i + 5000));
    }

    std::vector<std::uint32_t> got;
    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 32, 4);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        LimaRequest req;
        req.a_base = a;
        req.b_base = b;
        req.start = 0;
        req.end = kN;
        req.b_elem_bytes = 4;
        req.a_elem_bytes = 4;
        req.speculative = false;
        req.target_queue = 0;
        co_await f.api.lima(c, req);
        for (int i = 0; i < kN; ++i)
            got.push_back(
                static_cast<std::uint32_t>(co_await f.api.consume(c, 0)));
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 50'000'000);

    ASSERT_EQ(got.size(), size_t(kN));
    for (int i = 0; i < kN; ++i)
        EXPECT_EQ(got[i], std::uint32_t((i * 61) % kN + 5000));
    EXPECT_EQ(f.soc.maple().counter(Counter::LimaElements), unsigned(kN));
    EXPECT_EQ(f.soc.maple().counter(Counter::LimaCommands), 1u);
}

TEST(Maple, LimaSpeculativePrefetchesIntoLlc)
{
    Fixture f;
    constexpr int kN = 64;
    sim::Addr a = f.proc.alloc(kN * 64, "A");  // one line per element
    sim::Addr b = f.proc.alloc(kN * 4, "B");
    for (int i = 0; i < kN; ++i)
        f.proc.writeScalar<std::uint32_t>(b + 4 * i, std::uint32_t(i * 16));

    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        LimaRequest req;
        req.a_base = a;
        req.b_base = b;
        req.start = 0;
        req.end = kN;
        req.speculative = true;
        co_await f.api.lima(c, req);
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 10'000'000);

    EXPECT_EQ(f.soc.maple().counter(Counter::PrefetchesIssued), unsigned(kN));
    // Spot-check: prefetched lines are now resident in the LLC.
    auto pa = f.proc.pageTable().translate(a, mem::Perms{});
    ASSERT_TRUE(pa.has_value());
    EXPECT_TRUE(f.soc.llc().probe(*pa));
}

TEST(Maple, PageFaultIsResolvedByDriverAndFetchCompletes)
{
    Fixture f;
    constexpr int kN = 16;
    sim::Addr a = f.proc.allocLazy(kN * 8, "lazy");  // unmapped until touched
    // Functional writes demand-map zeroed pages, then fill them.
    for (int i = 0; i < kN; ++i)
        f.proc.writeScalar<std::uint64_t>(a + 8 * i, 100 + i);
    // Unmap one page again so MAPLE's PTW faults on it.
    f.proc.unmapPage(a);

    std::vector<std::uint64_t> got;
    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 16, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (int i = 0; i < kN; ++i)
            co_await f.api.producePtr(c, 0, a + 8 * i);
        for (int i = 0; i < kN; ++i)
            got.push_back(co_await f.api.consume(c, 0));
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 10'000'000);

    ASSERT_EQ(got.size(), size_t(kN));
    EXPECT_GE(f.soc.maple().counter(Counter::PageFaults), 1u);
    EXPECT_GE(f.soc.kernel().faultsServiced(), 1u);
    // The remapped page is a *fresh* zero frame (the data went away with the
    // unmap; this matches demand-zero paging), so values must read as zero.
    for (int i = 0; i < kN; ++i)
        EXPECT_EQ(got[i], 0u);
}

TEST(Maple, TlbShootdownInvalidatesMapleTranslations)
{
    Fixture f;
    sim::Addr a = f.proc.alloc(mem::kPageSize, "A");
    f.proc.writeScalar<std::uint64_t>(a, 11);

    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 8, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        co_await f.api.producePtr(c, 0, a);
        EXPECT_EQ(co_await f.api.consume(c, 0), 11u);
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 1'000'000);

    // MAPLE's TLB now caches the page; a shootdown must drop it.
    EXPECT_TRUE(f.soc.maple().mmu().tlb().lookup(a).has_value());
    f.proc.unmapPage(a);
    EXPECT_FALSE(f.soc.maple().mmu().tlb().lookup(a).has_value());
}

TEST(Maple, OpenIsExclusiveUntilClosed)
{
    Fixture f;
    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 2, 8, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        EXPECT_FALSE(co_await f.api.open(c, 0));  // already bound
        EXPECT_TRUE(co_await f.api.open(c, 1));
        co_await f.api.close(c, 0);
        EXPECT_TRUE(co_await f.api.open(c, 0));  // rebindable after close
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 1'000'000);
}

TEST(Maple, CloseDiscardsInFlightFetches)
{
    Fixture f;
    sim::Addr a = f.proc.alloc(64 * 8, "A");
    for (int i = 0; i < 64; ++i)
        f.proc.writeScalar<std::uint64_t>(a + 8 * i, i);

    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 32, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (int i = 0; i < 8; ++i)
            co_await f.api.producePtr(c, 0, a + 8 * i);
        // Close immediately: DRAM responses are still in flight and must be
        // dropped by the generation check, not corrupt the reset queue.
        co_await f.api.close(c, 0);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        EXPECT_EQ(co_await f.api.occupancy(c, 0), 0u);
        // The queue still works normally afterwards.
        co_await f.api.produce(c, 0, 99);
        EXPECT_EQ(co_await f.api.consume(c, 0), 99u);
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 10'000'000);
}

TEST(Maple, CountersReadableOverMmioAndResettable)
{
    Fixture f;
    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        co_await f.api.init(c, 1, 8, 8);
        EXPECT_TRUE(co_await f.api.open(c, 0));
        for (int i = 0; i < 7; ++i)
            co_await f.api.produce(c, 0, i);
        for (int i = 0; i < 7; ++i)
            (void)co_await f.api.consume(c, 0);
        EXPECT_EQ(co_await f.api.readCounter(c, Counter::ProducedData), 7u);
        EXPECT_EQ(co_await f.api.readCounter(c, Counter::Consumed), 7u);
        co_await f.api.resetCounters(c);
        EXPECT_EQ(co_await f.api.readCounter(c, Counter::ProducedData), 0u);
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 1'000'000);
}

TEST(Maple, ScratchpadBudgetIsEnforced)
{
    Fixture f;
    auto driver = [&](cpu::Core &c) -> sim::Task<void> {
        // 8 queues x 64 entries x 8B = 4KB > the 1KB scratchpad: rejected,
        // previous configuration (power-on default) stays in place.
        co_await f.api.init(c, 8, 64, 8);
        EXPECT_EQ(f.soc.maple().queue(0).capacity() *
                      f.soc.maple().queue(0).entryBytes() * 8,
                  f.soc.maple().params().scratchpad_bytes);
    };
    f.soc.run({sim::spawn(driver(f.soc.core(0)))}, 1'000'000);
}
