#!/usr/bin/env python3
"""Fault-injection matrix: run the quickstart under every fault class.

Usage: run_fault_matrix.py [path/to/quickstart] [--timeout SECONDS]

For each fault class (noc, dram, tlb, mmio) and for the all-classes-at-once
combination, runs the quickstart example with deterministic fault injection
enabled at an aggressive rate and asserts that the run

  * terminates within the timeout (the liveness watchdog must convert any
    wedge into a typed error rather than a hang),
  * exits 0 with a PASS result check (faults are performance bugs, never
    correctness bugs), and
  * is bit-identical to a second run with the same seed (stdout compared
    byte-for-byte; determinism is the whole point of the seeded streams).

Also checks that a faults-disabled run matches a plain run (the injector
must not perturb the simulation when every rate is zero).
"""
import argparse
import os
import subprocess
import sys

# Aggressive-but-survivable rates: every class fires many times during the
# ~400k-cycle quickstart without starving it past the watchdog stall bound.
MATRIX = [
    ("none", {}),
    ("noc", {"MAPLE_FAULT_NOC": "0.01:64"}),
    ("dram", {"MAPLE_FAULT_DRAM": "0.05:2000"}),
    ("tlb", {"MAPLE_FAULT_TLB": "0.05"}),
    ("mmio", {"MAPLE_FAULT_MMIO": "0.01:200"}),
    ("all", {
        "MAPLE_FAULT_NOC": "0.005:64",
        "MAPLE_FAULT_DRAM": "0.02:2000",
        "MAPLE_FAULT_TLB": "0.02",
        "MAPLE_FAULT_MMIO": "0.005:200",
    }),
]


def run_once(binary, extra_env, timeout):
    env = dict(os.environ)
    # Scrub knobs from the ambient environment so rows are self-contained.
    for k in list(env):
        if k.startswith("MAPLE_FAULT") or k.startswith("MAPLE_WATCHDOG"):
            del env[k]
    env.update(extra_env)
    return subprocess.run(
        [binary], env=env, timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", nargs="?", default="build/examples/quickstart")
    ap.add_argument("--timeout", type=float, default=120.0)
    args = ap.parse_args()

    failures = []
    baseline_stdout = None
    for name, knobs in MATRIX:
        env = dict(knobs)
        if name != "none":
            env["MAPLE_FAULT_SEED"] = "42"
        try:
            first = run_once(args.binary, env, args.timeout)
            second = run_once(args.binary, env, args.timeout)
        except subprocess.TimeoutExpired:
            failures.append(f"{name}: timed out after {args.timeout}s "
                            "(watchdog failed to fire?)")
            print(f"FAIL {name:5} timeout")
            continue

        problems = []
        if first.returncode != 0:
            tail = first.stderr.decode(errors="replace").strip().splitlines()
            problems.append(f"exit {first.returncode}"
                            + (f" ({tail[-1]})" if tail else ""))
        if b"result check: PASS" not in first.stdout:
            problems.append("result check not PASS")
        if first.stdout != second.stdout:
            problems.append("same seed, different stdout (non-deterministic)")
        if name == "none":
            baseline_stdout = first.stdout
        elif baseline_stdout is not None and first.stdout == baseline_stdout:
            # An injection run indistinguishable from the clean run means the
            # class never actually fired -- the row tested nothing.
            problems.append("identical to faults-disabled run (no faults fired)")

        status = "FAIL" if problems else "ok"
        print(f"{status:4} {name:5} " + ("; ".join(problems) or
              first.stdout.decode(errors="replace").splitlines()[-1].strip()))
        if problems:
            failures.append(f"{name}: " + "; ".join(problems))

    if failures:
        sys.exit("fault matrix failed:\n" + "\n".join(failures))
    print("fault matrix ok")


if __name__ == "__main__":
    main()
