#!/usr/bin/env python3
"""Fault-injection matrix: run the quickstart under every fault class.

Usage: run_fault_matrix.py [path/to/quickstart] [--timeout SECONDS]
                           [--markdown summary.md] [--only transient|recovery]

For each transient fault class (noc, dram, tlb, mmio) and for the
all-classes-at-once combination, runs the quickstart example with
deterministic fault injection enabled at an aggressive rate and asserts that
the run

  * terminates within the timeout (the liveness watchdog must convert any
    wedge into a typed error rather than a hang),
  * exits 0 with a PASS result check (transient faults are performance bugs,
    never correctness bugs), and
  * is bit-identical to a second run with the same seed (stdout compared
    byte-for-byte; determinism is the whole point of the seeded streams).

Also checks that a faults-disabled run matches a plain run (the injector
must not perturb the simulation when every rate is zero).

Hard-fault recovery campaigns (DESIGN.md section 10) extend the matrix:
each hard-fault class runs with the OS recovery driver on and off.

  * recovery on: the run must complete with PASS, perform at least one
    recovery, and (for the low-budget row) degrade to the software queue
    while still delivering exact results;
  * recovery off: a hard fault wedges the queue, so the expected outcome is
    the watchdog's typed liveness error -- a timeout (hang) still fails.

--markdown writes a summary table of every campaign for CI artifacts.
"""
import argparse
import os
import re
import subprocess
import sys

# Aggressive-but-survivable rates: every class fires many times during the
# ~400k-cycle quickstart without starving it past the watchdog stall bound.
MATRIX = [
    ("none", {}),
    ("noc", {"MAPLE_FAULT_NOC": "0.01:64"}),
    ("dram", {"MAPLE_FAULT_DRAM": "0.05:2000"}),
    ("tlb", {"MAPLE_FAULT_TLB": "0.05"}),
    ("mmio", {"MAPLE_FAULT_MMIO": "0.01:200"}),
    ("all", {
        "MAPLE_FAULT_NOC": "0.005:64",
        "MAPLE_FAULT_DRAM": "0.02:2000",
        "MAPLE_FAULT_TLB": "0.02",
        "MAPLE_FAULT_MMIO": "0.005:200",
    }),
]

# Hard-fault recovery campaigns: (name, knobs, expectation, timeout-or-None).
# Expectations:
#   recover  -- completes, PASS, >=1 recovery, 0 degraded queues
#   degrade  -- completes, PASS, >=1 recovery, >=1 degraded queue
#   wedge    -- hard fault without recovery: typed liveness error (nonzero
#               exit, deadlock report on stderr), NOT a hang and NOT a PASS
RECOVERY = "MAPLE_FAULT_RECOVERY"
RECOVERY_MATRIX = [
    ("hard-spad/recover",
     {"MAPLE_FAULT_HARD_SPAD": "0.001", RECOVERY: "1"}, "recover", None),
    ("hard-tlb/recover",
     {"MAPLE_FAULT_HARD_TLB": "0.002", RECOVERY: "1"}, "recover", None),
    ("hard-both/recover",
     {"MAPLE_FAULT_HARD_SPAD": "0.001", "MAPLE_FAULT_HARD_TLB": "0.001",
      RECOVERY: "1"}, "recover", None),
    ("hard-spad/degrade",
     {"MAPLE_FAULT_HARD_SPAD": "0.002", RECOVERY: "1",
      "MAPLE_FAULT_RECOVERY_BUDGET": "2"}, "degrade", None),
    ("hard-spad/wedge", {"MAPLE_FAULT_HARD_SPAD": "0.001"}, "wedge", 60.0),
    ("hard-tlb/wedge", {"MAPLE_FAULT_HARD_TLB": "0.002"}, "wedge", 60.0),
]

RECOVERY_LINE = re.compile(
    rb"recovery: (\d+) recoveries, (\d+) replayed ops, "
    rb"(\d+) poisoned responses, (\d+) degraded queues")


def run_once(binary, extra_env, timeout):
    env = dict(os.environ)
    # Scrub knobs from the ambient environment so rows are self-contained.
    for k in list(env):
        if k.startswith("MAPLE_FAULT") or k.startswith("MAPLE_WATCHDOG"):
            del env[k]
    env.update(extra_env)
    return subprocess.run(
        [binary], env=env, timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def parse_recovery(stdout):
    m = RECOVERY_LINE.search(stdout)
    return tuple(int(g) for g in m.groups()) if m else None


def transient_rows(binary, timeout, failures):
    rows = []
    baseline_stdout = None
    for name, knobs in MATRIX:
        env = dict(knobs)
        if name != "none":
            env["MAPLE_FAULT_SEED"] = "42"
        try:
            first = run_once(binary, env, timeout)
            second = run_once(binary, env, timeout)
        except subprocess.TimeoutExpired:
            failures.append(f"{name}: timed out after {timeout}s "
                            "(watchdog failed to fire?)")
            print(f"FAIL {name:20} timeout")
            rows.append((name, knobs, "complete", "timeout", None))
            continue

        problems = []
        if first.returncode != 0:
            tail = first.stderr.decode(errors="replace").strip().splitlines()
            problems.append(f"exit {first.returncode}"
                            + (f" ({tail[-1]})" if tail else ""))
        if b"result check: PASS" not in first.stdout:
            problems.append("result check not PASS")
        if first.stdout != second.stdout:
            problems.append("same seed, different stdout (non-deterministic)")
        if name == "none":
            baseline_stdout = first.stdout
        elif baseline_stdout is not None and first.stdout == baseline_stdout:
            # An injection run indistinguishable from the clean run means the
            # class never actually fired -- the row tested nothing.
            problems.append("identical to faults-disabled run (no faults fired)")

        status = "FAIL" if problems else "ok"
        print(f"{status:4} {name:20} " + ("; ".join(problems) or
              first.stdout.decode(errors="replace").splitlines()[-1].strip()))
        if problems:
            failures.append(f"{name}: " + "; ".join(problems))
        rows.append((name, knobs, "complete",
                     "FAIL" if problems else "ok", parse_recovery(first.stdout)))
    return rows


def recovery_rows(binary, default_timeout, failures):
    rows = []
    for name, knobs, expect, row_timeout in RECOVERY_MATRIX:
        env = dict(knobs)
        env["MAPLE_FAULT_SEED"] = "42"
        timeout = row_timeout or default_timeout
        try:
            first = run_once(binary, env, timeout)
            second = run_once(binary, env, timeout)
        except subprocess.TimeoutExpired:
            failures.append(f"{name}: timed out after {timeout}s "
                            "(hung instead of failing typed)")
            print(f"FAIL {name:20} timeout")
            rows.append((name, knobs, expect, "timeout", None))
            continue

        problems = []
        stats = parse_recovery(first.stdout)
        if expect == "wedge":
            # The run must die with the watchdog's typed report, quickly.
            if first.returncode == 0:
                problems.append("completed despite an unrecovered hard fault")
            if b"deadlock" not in first.stderr:
                problems.append("no deadlock report on stderr")
            if first.returncode != second.returncode:
                problems.append("same seed, different exit (non-deterministic)")
        else:
            if first.returncode != 0:
                tail = first.stderr.decode(errors="replace").strip().splitlines()
                problems.append(f"exit {first.returncode}"
                                + (f" ({tail[-1]})" if tail else ""))
            if b"result check: PASS" not in first.stdout:
                problems.append("result check not PASS")
            if first.stdout != second.stdout:
                problems.append("same seed, different stdout (non-deterministic)")
            if stats is None:
                problems.append("no recovery summary line in stdout")
            else:
                recoveries, _replayed, _poisoned, degraded = stats
                if recoveries == 0:
                    problems.append("no recoveries fired (rate too low?)")
                if expect == "degrade" and degraded == 0:
                    problems.append("expected >=1 degraded queue")
                if expect == "recover" and degraded != 0:
                    problems.append("degraded despite a generous budget")

        status = "FAIL" if problems else "ok"
        detail = "; ".join(problems)
        if not detail:
            detail = (f"recoveries={stats[0]} replayed={stats[1]} "
                      f"degraded={stats[3]}" if stats else
                      "typed liveness error, as expected")
        print(f"{status:4} {name:20} {detail}")
        if problems:
            failures.append(f"{name}: " + "; ".join(problems))
        rows.append((name, knobs, expect,
                     "FAIL" if problems else "ok", stats))
    return rows


def write_markdown(path, rows):
    with open(path, "w") as f:
        f.write("# Fault-injection & recovery matrix\n\n")
        f.write("| campaign | knobs | expectation | status | recoveries "
                "| replayed | poisoned | degraded |\n")
        f.write("|---|---|---|---|---|---|---|---|\n")
        for name, knobs, expect, status, stats in rows:
            knob_str = " ".join(
                f"{k.removeprefix('MAPLE_FAULT_').lower()}={v}"
                for k, v in sorted(knobs.items())) or "(none)"
            cells = [str(c) for c in stats] if stats else ["-"] * 4
            f.write(f"| {name} | `{knob_str}` | {expect} | {status} | "
                    + " | ".join(cells) + " |\n")
    print(f"wrote {path}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", nargs="?", default="build/examples/quickstart")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="default per-run timeout; wedge rows use their own")
    ap.add_argument("--markdown", help="write a summary table for CI artifacts")
    ap.add_argument("--only", choices=["transient", "recovery"],
                    help="run just one half of the matrix")
    args = ap.parse_args()

    failures = []
    rows = []
    if args.only != "recovery":
        rows += transient_rows(args.binary, args.timeout, failures)
    if args.only != "transient":
        rows += recovery_rows(args.binary, args.timeout, failures)

    if args.markdown:
        write_markdown(args.markdown, rows)
    if failures:
        sys.exit("fault matrix failed:\n" + "\n".join(failures))
    print("fault matrix ok")


if __name__ == "__main__":
    main()
