#!/usr/bin/env python3
"""Fault-injection matrix, run through the campaign service.

Usage: run_fault_matrix.py [path/to/quickstart] [--timeout SECONDS]
                           [--markdown summary.md] [--only transient|recovery]
                           [--campaign build/tools/maple_campaign]
                           [--out build/fault-matrix] [--workers N]
                           [--no-cache]

The matrix definition and the expectations are unchanged from the original
standalone runner; what moved is the execution engine. Each row becomes an
"exec" job in a campaign spec: the campaign runner provides the worker
processes, crash isolation, per-row timeouts, the double-run determinism
check (stdout compared byte-for-byte) and the content-hashed result cache
(rows re-run only when the quickstart binary or the knobs change). This
script builds the spec, invokes maple_campaign, and applies the
per-expectation checks to the manifest and the captured stdout/stderr.

Transient fault classes (noc, dram, tlb, mmio, coh-delay, coh-drop, all) must

  * terminate within the timeout (the liveness watchdog must convert any
    wedge into a typed error rather than a hang),
  * exit 0 with a PASS result check (transient faults are performance bugs,
    never correctness bugs), and
  * be bit-identical across two runs with the same seed.

A faults-disabled row must match a plain run, and every injection row must
*differ* from it (a row indistinguishable from the clean run tested nothing).

Soft-error rows (bitflip-*) run with --ecc=secded armed and assert the
expected *resilience outcome* from the quickstart "resil:" summary line:

  * correct  -- severity-1 flips: >=1 corrected error, zero uncorrectable
  * contain  -- severity-2 flips: >=1 machine-check containment and >=1
                retired page, with the result check still PASS (poison is
                contained, never silently consumed)
  * scrub    -- directory flips under MSI + a scrub interval: >=1 scrub
                repair (the audit engine fixed a corrupted sharer vector)

Hard-fault recovery campaigns (DESIGN.md section 10):

  * recover  -- completes, PASS, >=1 recovery, 0 degraded queues
  * degrade  -- completes, PASS, >=1 recovery, >=1 degraded queue
  * wedge    -- hard fault without recovery: typed liveness error (nonzero
                exit or signal, deadlock report on stderr), NOT a hang and
                NOT a PASS

--markdown writes a summary table of every campaign for CI artifacts.
"""
import argparse
import json
import os
import re
import subprocess
import sys

MATRIX = [
    ("none", {}, "complete"),
    ("noc", {"MAPLE_FAULT_NOC": "0.01:64"}, "complete"),
    ("dram", {"MAPLE_FAULT_DRAM": "0.05:2000"}, "complete"),
    ("tlb", {"MAPLE_FAULT_TLB": "0.05"}, "complete"),
    ("mmio", {"MAPLE_FAULT_MMIO": "0.01:200"}, "complete"),
    # Coherence-message faults only exist on the MSI fabric; they are
    # performance bugs (delay) or retransmit work (drop), never wedges.
    ("coh-delay", {"MAPLE_COHERENCE": "msi",
                   "MAPLE_FAULT_COH": "0.01:64"}, "complete"),
    ("coh-drop", {"MAPLE_COHERENCE": "msi",
                  "MAPLE_FAULT_COH_DROP": "0.005"}, "complete"),
    ("all", {
        "MAPLE_FAULT_NOC": "0.005:64",
        "MAPLE_FAULT_DRAM": "0.02:2000",
        "MAPLE_FAULT_TLB": "0.02",
        "MAPLE_FAULT_MMIO": "0.005:200",
    }, "complete"),
    # Soft errors need --ecc=secded to be modeled at all. Severity 1 flips
    # are SECDED-correctable (latency only: expect >=1 corrected, zero
    # uncorrectable); the default severity 2 poisons the line and must end
    # in machine-check containment (>=1 containment, >=1 retired page)
    # with the workload still producing the right answer.
    ("bitflip-l1/correct",
     {"MAPLE_ECC": "secded", "MAPLE_FAULT_BITFLIP_L1": "0.01:1"}, "correct"),
    # Poison that reaches a MAPLE queue wedges it until the OS recovery
    # driver resets and replays (the unified hard-fault/poison taxonomy),
    # so the containment rows arm MAPLE_FAULT_RECOVERY like the hard-fault
    # campaigns do. Core-consumed poison is contained by page retirement.
    ("bitflip-llc/contain",
     {"MAPLE_ECC": "secded", "MAPLE_FAULT_BITFLIP_LLC": "0.002",
      "MAPLE_FAULT_RECOVERY": "1"}, "contain"),
    ("bitflip-dram/contain",
     {"MAPLE_ECC": "secded", "MAPLE_FAULT_BITFLIP_DRAM": "0.002",
      "MAPLE_FAULT_RECOVERY": "1"}, "contain"),
    # Directory flips corrupt sharer vectors; the background scrub engine
    # must audit them back against the caches (>=1 scrub repair).
    ("bitflip-dir/scrub",
     {"MAPLE_ECC": "secded", "MAPLE_COHERENCE": "msi",
      "MAPLE_SCRUB_INTERVAL": "5000",
      "MAPLE_FAULT_BITFLIP_DIR": "0.02"}, "scrub"),
]

RECOVERY = "MAPLE_FAULT_RECOVERY"
RECOVERY_MATRIX = [
    ("hard-spad/recover",
     {"MAPLE_FAULT_HARD_SPAD": "0.001", RECOVERY: "1"}, "recover", None),
    ("hard-tlb/recover",
     {"MAPLE_FAULT_HARD_TLB": "0.002", RECOVERY: "1"}, "recover", None),
    ("hard-both/recover",
     {"MAPLE_FAULT_HARD_SPAD": "0.001", "MAPLE_FAULT_HARD_TLB": "0.001",
      RECOVERY: "1"}, "recover", None),
    ("hard-spad/degrade",
     {"MAPLE_FAULT_HARD_SPAD": "0.002", RECOVERY: "1",
      "MAPLE_FAULT_RECOVERY_BUDGET": "2"}, "degrade", None),
    ("hard-spad/wedge", {"MAPLE_FAULT_HARD_SPAD": "0.001"}, "wedge", 60.0),
    ("hard-tlb/wedge", {"MAPLE_FAULT_HARD_TLB": "0.002"}, "wedge", 60.0),
]

RECOVERY_LINE = re.compile(
    r"recovery: (\d+) recoveries, (\d+) replayed ops, "
    r"(\d+) poisoned responses, (\d+) degraded queues")

RESIL_LINE = re.compile(
    r"resil: (\d+) corrected, (\d+) uncorrectable, (\d+) containments, "
    r"(\d+) retired pages, (\d+) scrub repairs")


def job_name(row_name):
    """Row names become job names and file names; no path separators."""
    return row_name.replace("/", "_")


def build_rows(only):
    rows = []
    if only != "recovery":
        rows += [(name, knobs, expect, None) for name, knobs, expect in MATRIX]
    if only != "transient":
        rows += RECOVERY_MATRIX
    return rows


def build_spec(binary, rows, timeout, workers):
    jobs = []
    for name, knobs, _expect, row_timeout in rows:
        env = dict(knobs)
        if knobs:
            env["MAPLE_FAULT_SEED"] = "42"
        jobs.append({
            "type": "exec",
            "name": job_name(name),
            "argv": [os.path.abspath(binary)],
            "env": env,
            "timeout_s": row_timeout or timeout,
        })
    return {"name": "fault-matrix", "workers": workers, "runs": 2,
            "timeout_s": timeout, "jobs": jobs}


def run_campaign(args, spec):
    os.makedirs(args.out, exist_ok=True)
    spec_path = os.path.join(args.out, "spec.json")
    with open(spec_path, "w") as f:
        json.dump(spec, f, indent=2)
    # Scrub fault/watchdog/campaign knobs from the ambient environment so
    # rows see exactly their own env (a leaked chaos plan or crash-injection
    # variable would silently perturb every row).
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("MAPLE_FAULT")
           and not k.startswith("MAPLE_WATCHDOG")
           and not k.startswith("MAPLE_CAMPAIGN")}
    cmd = [args.campaign, "run", spec_path, "--out", args.out,
           "--workers", str(spec["workers"])]
    if args.no_cache:
        cmd.append("--no-cache")
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        sys.exit(f"maple_campaign failed with exit {proc.returncode}")
    with open(os.path.join(args.out, "manifest.json")) as f:
        manifest = json.load(f)
    return {j["name"]: j for j in manifest["jobs"]}


def job_output(out_dir, name, stream):
    path = os.path.join(out_dir, "jobs", job_name(name) + "." + stream)
    try:
        with open(path, "rb") as f:
            return f.read()
    except FileNotFoundError:
        return b""


def parse_recovery(stdout):
    m = RECOVERY_LINE.search(stdout.decode(errors="replace"))
    return tuple(int(g) for g in m.groups()) if m else None


def check_row(name, expect, entry, stdout, stderr, baseline_stdout):
    """Expectation checks; returns a list of problems (empty = row ok)."""
    problems = []
    status = entry["status"]
    deterministic = entry.get("deterministic")
    if status == "timeout":
        return [f"timed out (watchdog failed to convert the wedge?)"]
    if deterministic is False:
        problems.append("same seed, different output (non-deterministic)")

    if expect == "wedge":
        # Must die with the watchdog's typed report, quickly: a recorded
        # failure or crash, never an "ok" completion.
        if status not in ("failed", "crashed"):
            problems.append("completed despite an unrecovered hard fault")
        if b"deadlock" not in stderr:
            problems.append("no deadlock report on stderr")
        return problems

    completed = status in ("ok", "cached")
    if not completed and entry.get("exit_code", 0) != 0:
        tail = stderr.decode(errors="replace").strip().splitlines()
        problems.append(f"exit {entry['exit_code']}"
                        + (f" ({tail[-1]})" if tail else ""))
    elif not completed:
        problems.append(f"status {status}: {entry.get('diagnostics', '')}")
    if b"result check: PASS" not in stdout:
        problems.append("result check not PASS")
    if name != "none" and baseline_stdout is not None \
            and stdout == baseline_stdout:
        problems.append("identical to faults-disabled run (no faults fired)")

    if expect in ("correct", "contain", "scrub"):
        resil = RESIL_LINE.search(stdout.decode(errors="replace"))
        if resil is None:
            problems.append("no resil summary line (ECC model not armed?)")
        else:
            corrected, uncorr, contained, retired, scrubbed = \
                (int(g) for g in resil.groups())
            if expect == "correct":
                if corrected == 0:
                    problems.append("no corrected errors (rate too low?)")
                if uncorr != 0:
                    problems.append("sev-1 flips must never be uncorrectable")
            if expect == "contain":
                if contained == 0:
                    problems.append("no poison containments fired")
                if retired == 0:
                    problems.append("containment retired no pages")
            if expect == "scrub" and scrubbed == 0:
                problems.append("scrub engine repaired nothing")

    stats = parse_recovery(stdout)
    if expect in ("recover", "degrade"):
        if stats is None:
            problems.append("no recovery summary line in stdout")
        else:
            recoveries, _replayed, _poisoned, degraded = stats
            if recoveries == 0:
                problems.append("no recoveries fired (rate too low?)")
            if expect == "degrade" and degraded == 0:
                problems.append("expected >=1 degraded queue")
            if expect == "recover" and degraded != 0:
                problems.append("degraded despite a generous budget")
    return problems


def write_markdown(path, table):
    with open(path, "w") as f:
        f.write("# Fault-injection & recovery matrix\n\n")
        f.write("| campaign | knobs | expectation | status | recoveries "
                "| replayed | poisoned | degraded |\n")
        f.write("|---|---|---|---|---|---|---|---|\n")
        for name, knobs, expect, status, stats in table:
            knob_str = " ".join(
                f"{k.removeprefix('MAPLE_FAULT_').lower()}={v}"
                for k, v in sorted(knobs.items())) or "(none)"
            cells = [str(c) for c in stats] if stats else ["-"] * 4
            f.write(f"| {name} | `{knob_str}` | {expect} | {status} | "
                    + " | ".join(cells) + " |\n")
    print(f"wrote {path}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", nargs="?", default="build/examples/quickstart")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="default per-run timeout; wedge rows use their own")
    ap.add_argument("--markdown", help="write a summary table for CI artifacts")
    ap.add_argument("--only", choices=["transient", "recovery"],
                    help="run just one half of the matrix")
    ap.add_argument("--campaign", default="build/tools/maple_campaign",
                    help="path to the campaign runner binary")
    ap.add_argument("--out", default="build/fault-matrix",
                    help="campaign output directory (manifest, cache, logs)")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--no-cache", action="store_true",
                    help="always re-run rows even when cached")
    args = ap.parse_args()

    rows = build_rows(args.only)
    spec = build_spec(args.binary, rows, args.timeout, args.workers)
    entries = run_campaign(args, spec)

    baseline_stdout = None
    if any(name == "none" for name, *_ in rows):
        baseline_stdout = job_output(args.out, "none", "stdout")

    failures = []
    table = []
    for name, knobs, expect, _row_timeout in rows:
        entry = entries[job_name(name)]
        stdout = job_output(args.out, name, "stdout")
        stderr = job_output(args.out, name, "stderr")
        problems = check_row(name, expect, entry, stdout, stderr,
                             baseline_stdout)
        stats = parse_recovery(stdout)
        status = "FAIL" if problems else "ok"
        detail = "; ".join(problems)
        if not detail:
            cached = " (cached)" if entry.get("cache_hit") else ""
            detail = (f"recoveries={stats[0]} replayed={stats[1]} "
                      f"degraded={stats[3]}{cached}" if stats else
                      (stdout.decode(errors="replace").splitlines()[-1].strip()
                       if stdout.strip() else "typed liveness error")
                      + cached)
        print(f"{status:4} {name:20} {detail}")
        if problems:
            failures.append(f"{name}: " + "; ".join(problems))
        table.append((name, knobs, expect, status, stats))

    if args.markdown:
        write_markdown(args.markdown, table)
    if failures:
        sys.exit("fault matrix failed:\n" + "\n".join(failures))
    print("fault matrix ok")


if __name__ == "__main__":
    main()
