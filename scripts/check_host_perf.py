#!/usr/bin/env python3
"""Compare a bench_host_perf run against the checked-in baseline.

Usage: check_host_perf.py <baseline.json> <current.json> [max_regression]

Fails (exit 1) if any benchmark's events/second dropped by more than
max_regression (default 5x). The generous threshold tolerates host and CI
noise: this is a smoke test against gross kernel regressions, not a
microbenchmark gate.
"""
import json
import sys


def load(path):
    with open(path) as f:
        return {b["name"]: b["events_per_sec"]
                for b in json.load(f)["benchmarks"]}


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    max_regression = float(sys.argv[3]) if len(sys.argv) > 3 else 5.0

    failures = []
    for name, base_eps in sorted(baseline.items()):
        eps = current.get(name)
        if eps is None:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = base_eps / eps if eps > 0 else float("inf")
        status = "FAIL" if ratio > max_regression else "ok"
        print(f"{status:4} {name:24} {eps / 1e6:8.2f}M ev/s  "
              f"(baseline {base_eps / 1e6:8.2f}M, {ratio:.2f}x slower)")
        if ratio > max_regression:
            failures.append(
                f"{name}: {eps:.0f} ev/s vs baseline {base_eps:.0f} "
                f"({ratio:.1f}x slower, limit {max_regression:.1f}x)")
    if failures:
        sys.exit("host-perf regression:\n" + "\n".join(failures))
    print("host-perf smoke ok")


if __name__ == "__main__":
    main()
