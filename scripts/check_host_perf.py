#!/usr/bin/env python3
"""Compare a bench_host_perf run against the checked-in baseline.

Usage:
    check_host_perf.py <baseline.json> <current.json>... [max_regression]
                       [--limit name=ratio ...]
                       [--min-scaling name=factor ...]
                       [--history bench/BENCH_host_perf.history.json]
                       [--markdown trajectory.md]

Fails (exit 1) if any benchmark's events/second dropped by more than its
limit. The default limit (max_regression, 5x) is generous and tolerates
host and CI noise: a smoke test against gross kernel regressions. Per-
benchmark --limit overrides tighten the gate where it matters, e.g.
--limit maple_spmv=1.15 guards the full-system figure-8 run (the number
that actually bounds how long the paper's experiments take) against even
moderate slowdowns.

Several current.json files (from repeated runs) may be given; each
benchmark scores its best run. A tight limit on a single noisy --quick
run would flake; a true regression slows every repetition, so best-of-N
keeps the gate honest while screening out scheduler noise.

--history appends this run's best-of-N numbers (plus commit and timestamp)
to a JSON history file, and --markdown renders the perf trajectory -- one
row per recorded run, one column per benchmark -- so simulator-throughput
drift is visible across commits, not just against the single baseline.

Benchmarks run with more than one host thread (bench_host_perf
--threads-sweep) carry a "threads" field and are keyed "<name>@<N>t";
single-thread entries keep the bare name, so existing baselines stay
valid. The trajectory table gets a trailing "scaling" column showing each
sharded benchmark's best multi-thread speedup over its own 1-thread run,
and --min-scaling gates that speedup (e.g. --min-scaling grid_spmv=2.5
fails unless some grid_spmv@Nt entry reaches 2.5x the 1-thread rate).
"""
import datetime
import json
import os
import subprocess
import sys


def entry_key(bench):
    """Stable key: bare name at 1 thread, "<name>@<N>t" beyond."""
    threads = bench.get("threads", 1)
    return bench["name"] if threads == 1 else f"{bench['name']}@{threads}t"


def split_key(key):
    """Inverse of entry_key: (name, threads)."""
    if "@" in key and key.endswith("t"):
        name, threads = key.rsplit("@", 1)
        try:
            return name, int(threads[:-1])
        except ValueError:
            pass
    return key, 1


def load(path):
    with open(path) as f:
        return {entry_key(b): b["events_per_sec"]
                for b in json.load(f)["benchmarks"]}


def scaling_of(current):
    """{name: (speedup, threads)} for each benchmark with both a 1-thread
    entry and at least one multi-thread entry: the best multi-thread rate
    over the benchmark's own 1-thread rate."""
    out = {}
    for key, eps in current.items():
        name, threads = split_key(key)
        if threads == 1 or name not in current or current[name] <= 0:
            continue
        speedup = eps / current[name]
        if name not in out or speedup > out[name][0]:
            out[name] = (speedup, threads)
    return out


def parse_args(argv):
    positional, limits, opts = [], {}, {
        "history": None, "markdown": None, "min_scaling": {}}
    it = iter(argv)
    for arg in it:
        if arg == "--limit" or arg.startswith("--limit="):
            spec = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not spec or "=" not in spec:
                sys.exit("--limit expects name=ratio (e.g. maple_spmv=1.15)")
            name, ratio = spec.split("=", 1)
            limits[name] = float(ratio)
        elif arg == "--min-scaling" or arg.startswith("--min-scaling="):
            spec = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not spec or "=" not in spec:
                sys.exit("--min-scaling expects name=factor "
                         "(e.g. grid_spmv=2.5)")
            name, factor = spec.split("=", 1)
            opts["min_scaling"][name] = float(factor)
        elif arg == "--history" or arg.startswith("--history="):
            opts["history"] = (arg.split("=", 1)[1] if "=" in arg
                               else next(it, None))
            if not opts["history"]:
                sys.exit("--history expects a path")
        elif arg == "--markdown" or arg.startswith("--markdown="):
            opts["markdown"] = (arg.split("=", 1)[1] if "=" in arg
                                else next(it, None))
            if not opts["markdown"]:
                sys.exit("--markdown expects a path")
        else:
            positional.append(arg)
    return positional, limits, opts


def git_commit():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], capture_output=True,
            text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append_history(path, current):
    """Append this run's best-of-N numbers; atomic tmp+rename like the
    campaign's own result files, so an interrupted CI job can't truncate
    the history."""
    entries = []
    if os.path.exists(path):
        with open(path) as f:
            entries = json.load(f)["runs"]
    entries.append({
        "commit": git_commit(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
                     .isoformat(timespec="seconds"),
        "benchmarks": {name: round(eps, 1)
                       for name, eps in sorted(current.items())},
    })
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump({"runs": entries}, f, indent=2)
        f.write("\n")
    os.rename(tmp, path)
    print(f"appended run {len(entries)} to {path}")
    return entries


def write_trajectory(path, entries):
    """Perf-trajectory table: one row per recorded run, Mev/s per column,
    plus a trailing column with each run's multi-thread scaling."""
    names = sorted({n for e in entries for n in e["benchmarks"]})
    with open(path, "w") as f:
        f.write("# Host-performance trajectory\n\n")
        f.write("| run | commit | date | " + " | ".join(names)
                + " | scaling |\n")
        f.write("|---|---|---|" + "---:|" * len(names) + "---|\n")
        for i, e in enumerate(entries, 1):
            cells = []
            for n in names:
                eps = e["benchmarks"].get(n)
                cells.append(f"{eps / 1e6:.2f}M" if eps is not None else "-")
            scaling = scaling_of(e["benchmarks"])
            cells.append(", ".join(
                f"{n} x{s:.2f}@{t}t"
                for n, (s, t) in sorted(scaling.items())) or "-")
            date = e["timestamp"].split("T")[0]
            f.write(f"| {i} | {e['commit']} | {date} | "
                    + " | ".join(cells) + " |\n")
    print(f"wrote {path}")


def main():
    positional, limits, opts = parse_args(sys.argv[1:])
    if len(positional) < 2:
        sys.exit(__doc__)
    baseline = load(positional[0])
    default_limit = 5.0
    current_paths = positional[1:]
    try:
        default_limit = float(positional[-1])
        current_paths = positional[1:-1]
    except ValueError:
        pass
    if not current_paths:
        sys.exit(__doc__)
    current = {}
    for path in current_paths:
        for name, eps in load(path).items():
            current[name] = max(current.get(name, 0.0), eps)
    if opts["history"]:
        entries = append_history(opts["history"], current)
        if opts["markdown"]:
            write_trajectory(opts["markdown"], entries)
    elif opts["markdown"]:
        sys.exit("--markdown requires --history (it renders the history)")
    unknown = set(limits) - set(baseline)
    if unknown:
        sys.exit("--limit names not in baseline: " + ", ".join(sorted(unknown)))

    failures = []
    for name, base_eps in sorted(baseline.items()):
        limit = limits.get(name, default_limit)
        eps = current.get(name)
        if eps is None:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = base_eps / eps if eps > 0 else float("inf")
        status = "FAIL" if ratio > limit else "ok"
        print(f"{status:4} {name:24} {eps / 1e6:8.2f}M ev/s  "
              f"(baseline {base_eps / 1e6:8.2f}M, {ratio:.2f}x slower, "
              f"limit {limit:.2f}x)")
        if ratio > limit:
            failures.append(
                f"{name}: {eps:.0f} ev/s vs baseline {base_eps:.0f} "
                f"({ratio:.1f}x slower, limit {limit:.1f}x)")
    scaling = scaling_of(current)
    for name, factor in sorted(opts["min_scaling"].items()):
        got = scaling.get(name)
        if got is None:
            failures.append(f"{name}: no multi-thread entry to gate scaling")
            continue
        speedup, threads = got
        status = "FAIL" if speedup < factor else "ok"
        print(f"{status:4} {name:24} x{speedup:.2f} scaling @{threads}t "
              f"(min x{factor:.2f})")
        if speedup < factor:
            failures.append(
                f"{name}: x{speedup:.2f} scaling at {threads} threads, "
                f"below the x{factor:.2f} floor")
    if failures:
        sys.exit("host-perf regression:\n" + "\n".join(failures))
    print("host-perf smoke ok")


if __name__ == "__main__":
    main()
