#!/usr/bin/env python3
"""Compare a bench_host_perf run against the checked-in baseline.

Usage:
    check_host_perf.py <baseline.json> <current.json>... [max_regression]
                       [--limit name=ratio ...]

Fails (exit 1) if any benchmark's events/second dropped by more than its
limit. The default limit (max_regression, 5x) is generous and tolerates
host and CI noise: a smoke test against gross kernel regressions. Per-
benchmark --limit overrides tighten the gate where it matters, e.g.
--limit maple_spmv=1.15 guards the full-system figure-8 run (the number
that actually bounds how long the paper's experiments take) against even
moderate slowdowns.

Several current.json files (from repeated runs) may be given; each
benchmark scores its best run. A tight limit on a single noisy --quick
run would flake; a true regression slows every repetition, so best-of-N
keeps the gate honest while screening out scheduler noise.
"""
import json
import sys


def load(path):
    with open(path) as f:
        return {b["name"]: b["events_per_sec"]
                for b in json.load(f)["benchmarks"]}


def parse_args(argv):
    positional, limits = [], {}
    it = iter(argv)
    for arg in it:
        if arg == "--limit" or arg.startswith("--limit="):
            spec = arg.split("=", 1)[1] if "=" in arg else next(it, None)
            if not spec or "=" not in spec:
                sys.exit("--limit expects name=ratio (e.g. maple_spmv=1.15)")
            name, ratio = spec.split("=", 1)
            limits[name] = float(ratio)
        else:
            positional.append(arg)
    return positional, limits


def main():
    positional, limits = parse_args(sys.argv[1:])
    if len(positional) < 2:
        sys.exit(__doc__)
    baseline = load(positional[0])
    default_limit = 5.0
    current_paths = positional[1:]
    try:
        default_limit = float(positional[-1])
        current_paths = positional[1:-1]
    except ValueError:
        pass
    if not current_paths:
        sys.exit(__doc__)
    current = {}
    for path in current_paths:
        for name, eps in load(path).items():
            current[name] = max(current.get(name, 0.0), eps)
    unknown = set(limits) - set(baseline)
    if unknown:
        sys.exit("--limit names not in baseline: " + ", ".join(sorted(unknown)))

    failures = []
    for name, base_eps in sorted(baseline.items()):
        limit = limits.get(name, default_limit)
        eps = current.get(name)
        if eps is None:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = base_eps / eps if eps > 0 else float("inf")
        status = "FAIL" if ratio > limit else "ok"
        print(f"{status:4} {name:24} {eps / 1e6:8.2f}M ev/s  "
              f"(baseline {base_eps / 1e6:8.2f}M, {ratio:.2f}x slower, "
              f"limit {limit:.2f}x)")
        if ratio > limit:
            failures.append(
                f"{name}: {eps:.0f} ev/s vs baseline {base_eps:.0f} "
                f"({ratio:.1f}x slower, limit {limit:.1f}x)")
    if failures:
        sys.exit("host-perf regression:\n" + "\n".join(failures))
    print("host-perf smoke ok")


if __name__ == "__main__":
    main()
