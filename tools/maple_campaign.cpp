/**
 * @file
 * Campaign service CLI.
 *
 *   maple_campaign run spec.json --out DIR [--workers N] [--no-cache]
 *                                [--strict]
 *
 * Reads a campaign spec (see src/campaign/spec.hpp for the format), runs
 * every job crash-isolated across N worker processes, and writes
 * DIR/manifest.json, DIR/report.md, per-job results under DIR/jobs/ and the
 * content-hashed result cache under DIR/cache/.
 *
 * Exit code 0 means the campaign itself completed -- individual job
 * failures are recorded in the manifest, not escalated, unless --strict.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: maple_campaign run SPEC.json [--out DIR] "
                 "[--workers N] [--no-cache] [--strict]\n");
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace maple;

    if (argc < 3 || std::strcmp(argv[1], "run") != 0)
        return usage();
    const std::string spec_path = argv[2];
    campaign::RunnerOptions opts;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out")
            opts.out_dir = value();
        else if (arg == "--workers")
            opts.workers = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--no-cache")
            opts.use_cache = false;
        else if (arg == "--strict")
            opts.strict = true;
        else
            return usage();
    }

    try {
        campaign::CampaignSpec spec = campaign::parseCampaignSpec(
            harness::json::parseFile(spec_path));
        return campaign::runCampaign(spec, opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "maple_campaign: %s\n", e.what());
        return 1;
    }
}
