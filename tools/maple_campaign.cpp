/**
 * @file
 * Campaign service CLI.
 *
 *   maple_campaign run SPEC.json [--out DIR] [--workers N] [--no-cache]
 *                                [--strict] [--resume]
 *   maple_campaign resume DIR    [--workers N] [--no-cache] [--strict]
 *
 * Reads a campaign spec (see src/campaign/spec.hpp for the format), runs
 * every job crash-isolated across N worker processes, and writes
 * DIR/manifest.json, DIR/report.md, per-job results under DIR/jobs/, the
 * job journal DIR/journal.jsonl and the content-hashed result cache under
 * DIR/cache/.
 *
 * `--resume` (or the `resume DIR` form, which reads the spec copy saved at
 * DIR/spec.json) replays the journal of an interrupted run: completed jobs
 * are served from the cache / their result files, in-flight and failed jobs
 * are re-run. The journal is fingerprint-checked against the spec, so
 * resuming with a different spec is a hard error.
 *
 * Exit code 0 means the campaign itself completed -- individual job
 * failures are recorded in the manifest, not escalated, unless --strict
 * (quarantined jobs never escalate).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: maple_campaign run SPEC.json [--out DIR] "
                 "[--workers N] [--no-cache] [--strict] [--resume]\n"
                 "       maple_campaign resume DIR [--workers N] "
                 "[--no-cache] [--strict]\n");
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace maple;

    if (argc < 3)
        return usage();
    const std::string mode = argv[1];
    if (mode != "run" && mode != "resume")
        return usage();

    campaign::RunnerOptions opts;
    std::string spec_path;
    if (mode == "run") {
        spec_path = argv[2];
    } else {
        opts.out_dir = argv[2];
        spec_path = opts.out_dir + "/spec.json";
        opts.resume = true;
    }
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out" && mode == "run")
            opts.out_dir = value();
        else if (arg == "--workers")
            opts.workers = static_cast<unsigned>(std::atoi(value()));
        else if (arg == "--no-cache")
            opts.use_cache = false;
        else if (arg == "--strict")
            opts.strict = true;
        else if (arg == "--resume" && mode == "run")
            opts.resume = true;
        else
            return usage();
    }

    try {
        campaign::CampaignSpec spec = campaign::parseCampaignSpec(
            harness::json::parseFile(spec_path));
        return campaign::runCampaign(spec, opts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "maple_campaign: %s\n", e.what());
        return 1;
    }
}
