#include "soc/grid.hpp"

#include "fault/watchdog.hpp"
#include "sim/error.hpp"
#include "sim/log.hpp"

namespace maple::soc {

SocGridConfig
SocGridConfig::uniform(const SocConfig &proto, unsigned chips)
{
    MAPLE_CHECK(chips >= 1, sim::ConfigError, "grid needs at least one chip");
    SocGridConfig cfg;
    cfg.socs.reserve(chips);
    for (unsigned i = 0; i < chips; ++i) {
        SocConfig c = proto;
        c.name = proto.name + "." + std::to_string(i);
        cfg.socs.push_back(std::move(c));
    }
    return cfg;
}

SocGrid::SocGrid(SocGridConfig cfg) : cfg_(std::move(cfg))
{
    MAPLE_CHECK(!cfg_.socs.empty(), sim::ConfigError, "empty SocGrid");
    cfg_.host_threads = hostThreadsFromEnv(cfg_.host_threads);
    socs_.reserve(cfg_.socs.size());
    for (const SocConfig &sc : cfg_.socs) {
        socs_.push_back(std::make_unique<Soc>(sc));
        engine_.addDomain(socs_.back()->eq(), socs_.back()->config().name);
    }
}

mem::CrossDomainPort &
SocGrid::linkPort(unsigned src, unsigned dst)
{
    MAPLE_CHECK(src < size() && dst < size() && src != dst, sim::ConfigError,
                "bad link %u -> %u in a %u-chip grid", src, dst, size());
    links_.push_back(std::make_unique<mem::CrossDomainPort>(
        engine_, src, soc(src).eq(), dst, soc(dst).eq(), soc(dst).llcFront(),
        cfg_.link_latency));
    return *links_.back();
}

sim::Cycle
SocGrid::run(std::vector<sim::Join> joins, sim::Cycle max_cycles)
{
    const sim::Cycle start = socs_[0]->eq().now();
    engine_.setBoundaryHook([this](sim::Cycle) {
        // Per-chip watchdog stall rule, in domain-id order so any deadlock
        // diagnosis is thread-count-independent.
        for (auto &s : socs_) {
            if (s->config().watchdog.enabled)
                fault::Watchdog::checkStall(s->eq(), s->config().watchdog);
        }
    });
    sim::ShardedEngine::RunOptions ro;
    ro.threads = cfg_.host_threads;
    ro.max_cycles = max_cycles;
    ro.quantum = cfg_.quantum;
    bool drained = engine_.run(ro);
    for (const sim::Join &j : joins) {
        if (j.done())
            j.get();  // rethrows workload exceptions
    }
    if (!drained) {
        // Attribute the timeout to the first chip that still has work.
        for (auto &s : socs_) {
            if (s->eq().pending() == 0)
                continue;
            fault::Watchdog::failDeadlock(
                s->eq(), sim::detail::formatString(
                             "grid chip \"%s\" did not quiesce within %llu "
                             "cycles",
                             s->config().name.c_str(),
                             (unsigned long long)(max_cycles - start)));
        }
        fault::Watchdog::failDeadlock(
            socs_[0]->eq(), "grid did not quiesce (messages still in flight)");
    }
    for (const sim::Join &j : joins) {
        if (!j.done()) {
            fault::Watchdog::failDeadlock(
                socs_[0]->eq(),
                "grid drained but a task never finished "
                "(deadlock in simulated software?)");
        }
    }
    return socs_[0]->eq().now() - start;
}

}  // namespace maple::soc
