/**
 * @file
 * Full-SoC assembly: tiles on a 2D mesh, per-core L1s, a shared LLC + DRAM
 * memory tile, any number of MAPLE tiles, the micro-OS, and the physical
 * address map. This is the simulation analogue of the OpenPiton+Ariane FPGA
 * prototype (Table 2) and of the MosaicSim configuration (Table 3).
 *
 * Tile placement: cores occupy tiles [0, num_cores), MAPLE instances the next
 * num_maples tiles, and the memory controller/LLC home the last tile.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/maple.hpp"
#include "cpu/core.hpp"
#include "fault/fault.hpp"
#include "fault/watchdog.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/physical_memory.hpp"
#include "noc/mesh.hpp"
#include "os/kernel.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "soc/address_map.hpp"
#include "trace/trace.hpp"

namespace maple::soc {

/**
 * Thin interposer in front of the shared LLC. All tiles reach the LLC
 * through this stage, so memory-side hardware (e.g. the DROPLET-style
 * indirect prefetcher baseline) can observe traffic without rewiring ports.
 */
class LlcFrontEnd : public mem::TimedMem {
  public:
    using Observer =
        std::function<void(sim::Addr paddr, std::uint32_t size, mem::AccessKind kind)>;

    explicit LlcFrontEnd(mem::TimedMem &llc) : llc_(llc) {}

    void setObserver(Observer o) { observer_ = std::move(o); }

    /**
     * Interpose memory-side hardware (e.g. the DROPLET prefetch buffer) in
     * front of the LLC: when set, all traffic routes through @p t, which is
     * expected to forward to the LLC itself. Pass nullptr to remove.
     */
    void setInterposer(mem::TimedMem *t) { interposer_ = t; }

    sim::Task<void>
    access(sim::Addr paddr, std::uint32_t size, mem::AccessKind kind) override
    {
        if (interposer_)
            co_await interposer_->access(paddr, size, kind);
        else
            co_await llc_.access(paddr, size, kind);
        if (observer_)
            observer_(paddr, size, kind);
    }

  private:
    mem::TimedMem &llc_;
    Observer observer_;
    mem::TimedMem *interposer_ = nullptr;
};

struct SocConfig {
    std::string name = "soc";
    unsigned num_cores = 2;
    unsigned num_maples = 1;
    unsigned mesh_width = 2;   ///< 0 = auto square-ish layout
    unsigned mesh_height = 2;
    sim::Addr dram_bytes = 1ull << 30;

    mem::CacheParams l1{"l1", 8 * 1024, 4, /*hit=*/2, /*mshrs=*/8};
    mem::CacheParams llc{"llc", 64 * 1024, 8, /*hit=*/26, /*mshrs=*/32};
    mem::DramParams dram{};          // 300-cycle latency
    noc::MeshParams mesh{};          // filled from mesh_width/height
    cpu::CoreParams core_proto{};    // per-core parameters
    ::maple::core::MapleParams maple_proto{};
    os::KernelParams kernel{};
    trace::TraceConfig trace{};      // off unless set or MAPLE_TRACE is present
    fault::FaultConfig fault{};      // off unless set or MAPLE_FAULT_* present
    fault::WatchdogConfig watchdog{}; // on by default; MAPLE_WATCHDOG=0 disables

    /** Table 2: the FPGA-emulated OpenPiton+Ariane SoC (2 cores, 1 MAPLE). */
    static SocConfig fpga();

    /** Table 3: the simulator configuration used against prior work. */
    static SocConfig simulated(unsigned cores = 2);
};

class Soc {
  public:
    explicit Soc(SocConfig cfg = SocConfig::fpga());
    ~Soc();

    sim::EventQueue &eq() { return eq_; }
    os::Kernel &kernel() { return *kernel_; }
    mem::PhysicalMemory &physMem() { return *pm_; }
    noc::Mesh &mesh() { return *mesh_; }
    mem::Cache &llc() { return *llc_; }
    mem::Dram &dram() { return *dram_; }
    AddressMap &addressMap() { return amap_; }
    const SocConfig &config() const { return cfg_; }

    LlcFrontEnd &llcFront() { return *llc_front_; }

    /** The SoC's tracer, or nullptr when tracing is disabled. */
    trace::TraceManager *tracer() { return tracer_.get(); }

    /**
     * The SoC's fault injector. Always present: even with injection off it
     * tracks parked waiters for the liveness watchdog and deadlock report.
     */
    fault::FaultInjector &faultInjector() { return *fault_; }

    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }
    cpu::Core &core(unsigned i) { return *cores_.at(i); }
    mem::Cache &l1(unsigned i) { return *l1s_.at(i); }

    unsigned numMaples() const { return static_cast<unsigned>(maples_.size()); }
    ::maple::core::Maple &maple(unsigned i = 0) { return *maples_.at(i); }

    sim::TileId coreTile(unsigned i) const { return i; }
    sim::TileId mapleTile(unsigned i = 0) const { return cfg_.num_cores + i; }
    sim::TileId memTile() const { return mesh_->numTiles() - 1; }

    os::Process &createProcess(const std::string &name);

    /**
     * Create an extra LLC-reaching port from @p tile (owned by the Soc).
     * Used by memory-side baseline hardware, e.g. DeSC's supply buffer.
     */
    noc::RemotePort &addLlcPort(sim::TileId tile);

    /**
     * Run the event queue until it drains (or @p max_cycles), then surface
     * any exception stored in the given joins. Returns total cycles elapsed.
     */
    sim::Cycle run(std::vector<sim::Join> joins, sim::Cycle max_cycles = sim::kCycleMax);

  private:
    /** Register the telemetry probes once all components exist. */
    void registerProbes();

    /** Register component-state dumps for the deadlock diagnostic. */
    void registerDiagnostics();

    SocConfig cfg_;
    sim::EventQueue eq_;
    // Declared right after eq_ (destroyed before it) so the tracer detaches
    // from a still-live EventQueue; probe lambdas only run while components
    // (declared below, destroyed first) are alive, i.e. while eq_ runs.
    std::unique_ptr<trace::TraceManager> tracer_;
    // Same lifetime argument as the tracer: the injector detaches from eq_
    // in its destructor, and its diagnostic lambdas only run while eq_ runs.
    std::unique_ptr<fault::FaultInjector> fault_;
    std::unique_ptr<mem::PhysicalMemory> pm_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<noc::Mesh> mesh_;
    std::unique_ptr<mem::Dram> dram_;
    std::unique_ptr<mem::Cache> llc_;
    std::unique_ptr<LlcFrontEnd> llc_front_;
    AddressMap amap_;

    // Per-core plumbing (order matters: ports before cores).
    std::vector<std::unique_ptr<noc::RemotePort>> llc_ports_;   // L1 -> LLC
    std::vector<std::unique_ptr<mem::Cache>> l1s_;
    std::vector<std::unique_ptr<noc::RemotePort>> atomic_ports_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;

    // Per-MAPLE plumbing.
    std::vector<std::unique_ptr<noc::RemotePort>> maple_dram_ports_;
    std::vector<std::unique_ptr<noc::RemotePort>> maple_llc_ports_;
    std::vector<std::unique_ptr<noc::RemotePort>> maple_walk_ports_;
    std::vector<std::unique_ptr<::maple::core::Maple>> maples_;
    std::vector<std::unique_ptr<noc::RemotePort>> extra_ports_;
};

}  // namespace maple::soc
