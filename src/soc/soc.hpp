/**
 * @file
 * Full-SoC assembly: tiles on a 2D mesh, per-core L1s, a shared LLC + DRAM
 * memory tile, any number of MAPLE tiles, the micro-OS, and the physical
 * address map. This is the simulation analogue of the OpenPiton+Ariane FPGA
 * prototype (Table 2) and of the MosaicSim configuration (Table 3).
 *
 * Tile placement: cores occupy tiles [0, num_cores), MAPLE instances the next
 * num_maples tiles, and the memory controller/LLC home the last tile. With
 * coherence enabled the LLC may be split into llc_slices address-interleaved
 * slices occupying the last llc_slices tiles, each with a sparse MSI
 * directory co-located on its tile (memTile() is then slice 0's tile).
 */
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/maple.hpp"
#include "cpu/core.hpp"
#include "fault/fault.hpp"
#include "fault/watchdog.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/dram.hpp"
#include "mem/fabric.hpp"
#include "mem/physical_memory.hpp"
#include "mem/resil.hpp"
#include "noc/mesh.hpp"
#include "os/kernel.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "soc/address_map.hpp"
#include "trace/trace.hpp"

namespace maple::os {
class PageRetirer;
}

namespace maple::soc {

class McaMmio;

/** Role of a Soc-owned NoC port: what traffic class it was wired for. */
enum class PortUse : std::uint8_t {
    CoreDemand,  ///< L1 miss path to the shared LLC
    CoreAtomic,  ///< core RMW / shared-data path to the LLC
    MapleDram,   ///< MAPLE's non-coherent direct-to-DRAM path
    MapleLlc,    ///< MAPLE's coherent path through the LLC
    MapleWalk,   ///< MAPLE's page-table-walker path
    Extra,       ///< baseline hardware added via addLlcPort()
};

struct SocConfig {
    std::string name = "soc";
    unsigned num_cores = 2;
    unsigned num_maples = 1;
    unsigned mesh_width = 2;   ///< 0 = auto square-ish layout
    unsigned mesh_height = 2;
    sim::Addr dram_bytes = 1ull << 30;

    mem::CacheParams l1{"l1", 8 * 1024, 4, /*hit=*/2, /*mshrs=*/8};
    mem::CacheParams llc{"llc", 64 * 1024, 8, /*hit=*/26, /*mshrs=*/32};
    mem::DramParams dram{};          // 300-cycle latency
    /** Arbitration at the shared-LLC front-end (MAPLE_LLC_ARB env; the DRAM
     *  queue policy is dram.arb, MAPLE_DRAM_ARB env). */
    mem::ArbPolicy llc_arb = mem::ArbPolicy::Fifo;
    /**
     * Coherence protocol selection (MAPLE_COHERENCE env, --coherence flag).
     * The default (none) keeps the historical latency-only hierarchy and is
     * byte-identical to builds that predate the protocol.
     */
    mem::CoherenceConfig coherence{};
    /**
     * Address-interleaved LLC/directory slices (MAPLE_LLC_SLICES env). Only
     * meaningful with coherence enabled; forced to 1 otherwise. Slices (and
     * their home directories) occupy the last llc_slices mesh tiles.
     */
    unsigned llc_slices = 1;
    noc::MeshParams mesh{};          // filled from mesh_width/height
    cpu::CoreParams core_proto{};    // per-core parameters
    ::maple::core::MapleParams maple_proto{};
    os::KernelParams kernel{};
    trace::TraceConfig trace{};      // off unless set or MAPLE_TRACE is present
    fault::FaultConfig fault{};      // off unless set or MAPLE_FAULT_* present
    fault::WatchdogConfig watchdog{}; // on by default; MAPLE_WATCHDOG=0 disables
    /**
     * Soft-error resilience (mem/resil.hpp): SECDED ECC, poison tracking,
     * MCA banks and the directory scrub engine (MAPLE_ECC / MAPLE_SCRUB_*
     * env, --ecc / --scrub-interval harness flags). Off by default: no
     * ResilManager is constructed and every downstream byte is identical to
     * builds that predate the subsystem.
     */
    mem::ResilConfig resil{};

    /**
     * Host worker threads driving run() (MAPLE_THREADS env, --threads in the
     * harnesses). 1 keeps the historical single-threaded watchdog loop; > 1
     * routes run() through the sharded engine (sim/sharded.hpp). Results are
     * byte-identical either way — the knob only changes host-side execution.
     */
    unsigned host_threads = 1;

    /** Table 2: the FPGA-emulated OpenPiton+Ariane SoC (2 cores, 1 MAPLE). */
    static SocConfig fpga();

    /** Table 3: the simulator configuration used against prior work. */
    static SocConfig simulated(unsigned cores = 2);
};

/** @p fallback overlaid with MAPLE_THREADS when set and parseable (>= 1). */
unsigned hostThreadsFromEnv(unsigned fallback);

/** @p fallback overlaid with MAPLE_LLC_SLICES when set and parseable.
 *  Exposed so ckpt::configHash can resolve slices the way Soc's ctor does. */
unsigned llcSlicesFromEnv(unsigned fallback);

class Soc {
  public:
    explicit Soc(SocConfig cfg = SocConfig::fpga());
    ~Soc();

    sim::EventQueue &eq() { return eq_; }
    os::Kernel &kernel() { return *kernel_; }
    mem::PhysicalMemory &physMem() { return *pm_; }
    noc::Mesh &mesh() { return *mesh_; }
    mem::Cache &llc() { return *llc_; }
    mem::Dram &dram() { return *dram_; }
    AddressMap &addressMap() { return amap_; }
    const SocConfig &config() const { return cfg_; }

    /**
     * The reusable interposer stage in front of the shared LLC. All tiles
     * reach the LLC through it, so it is where per-requester-class latency
     * and bandwidth are sampled, where memory-side baseline hardware (e.g.
     * the DROPLET prefetch buffer) interposes, and where non-fifo LLC
     * arbitration lives.
     */
    mem::PortInterposer &llcFront() { return *llc_front_; }

    /** The SoC's tracer, or nullptr when tracing is disabled. */
    trace::TraceManager *tracer() { return tracer_.get(); }

    /**
     * The SoC's fault injector. Always present: even with injection off it
     * tracks parked waiters for the liveness watchdog and deadlock report.
     */
    fault::FaultInjector &faultInjector() { return *fault_; }

    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }
    cpu::Core &core(unsigned i) { return *cores_.at(i); }
    mem::Cache &l1(unsigned i) { return *l1s_.at(i); }

    unsigned numMaples() const { return static_cast<unsigned>(maples_.size()); }
    ::maple::core::Maple &maple(unsigned i = 0) { return *maples_.at(i); }

    sim::TileId coreTile(unsigned i) const { return i; }
    sim::TileId mapleTile(unsigned i = 0) const { return cfg_.num_cores + i; }

    /** Tile of LLC/directory slice @p s (the last llc_slices mesh tiles). */
    sim::TileId sliceTile(unsigned s) const
    {
        return mesh_->numTiles() - cfg_.llc_slices + s;
    }
    /** Slice 0's tile; identical to the historical last-tile home when
     *  llc_slices == 1 (always true without coherence). */
    sim::TileId memTile() const { return sliceTile(0); }

    /** The coherence fabric, or nullptr when running --coherence=none. */
    mem::CoherenceFabric *coherence() { return coh_.get(); }

    /** The resilience manager, or nullptr when the subsystem is off. */
    mem::ResilManager *resil() { return resil_.get(); }

    /**
     * Base of the per-tile MCA-bank MMIO window (one page right above the
     * MAPLE device pages; registered only when resil() is live). Each tile
     * owns 32 bytes: status, line address, count, first-error cycle; any
     * store into a tile's window clears its bank.
     */
    sim::Addr mcaMmioBase() const
    {
        return cfg_.dram_bytes + sim::Addr(cfg_.num_maples) * mem::kPageSize;
    }

    unsigned numLlcSlices() const { return cfg_.llc_slices; }
    /** LLC slice @p s; slice 0 is the historical shared LLC. */
    mem::Cache &llcSlice(unsigned s)
    {
        return s == 0 ? *llc_ : *slice_llcs_.at(s - 1);
    }

    os::Process &createProcess(const std::string &name);

    /**
     * Registered NoC port for (tile, use), or nullptr. Public as a wiring
     * probe: tests assert e.g. that msi mode registers no direct MapleWalk
     * port (walks ride the coherent DMA path instead).
     */
    noc::RemotePort *findPort(sim::TileId tile, PortUse use);

    /**
     * Create an extra LLC-reaching port from @p tile (owned by the Soc).
     * Used by memory-side baseline hardware, e.g. DeSC's supply buffer.
     */
    noc::RemotePort &addLlcPort(sim::TileId tile);

    /**
     * Run the event queue until it drains (or @p max_cycles), then surface
     * any exception stored in the given joins. Returns total cycles elapsed.
     */
    sim::Cycle run(std::vector<sim::Join> joins, sim::Cycle max_cycles = sim::kCycleMax);

    /// @name Deterministic snapshot/restore (implemented in src/ckpt)
    /// @{

    /**
     * Serialize full simulator state to @p out. Only valid at a quiesced
     * point (event queue drained, no parked waiters — i.e. between run()
     * phases): coroutine frames are not serializable, so a snapshot captures
     * the machine between simulated activity, with warm caches/TLBs, queue
     * contents, advanced RNG streams, stats and trace buffers intact.
     * Throws ckpt::SnapshotError when the SoC is not quiescent.
     */
    void snapshot(std::ostream &out);

    /**
     * Restore a snapshot into this freshly-constructed Soc. The stream's
     * config hash must match this SoC's structural configuration (core/
     * MAPLE counts, cache geometry, DRAM/mesh/arbitration parameters) or
     * ckpt::SnapshotError is thrown. After restore, resumed runs are
     * byte-identical to an uninterrupted simulation. Host-side wiring that
     * MMIO attach paths install (driver fault handlers, error callbacks)
     * must be re-installed by re-running the attach calls; those paths are
     * idempotent against restored state.
     */
    void restore(std::istream &in);

    /// @}

  private:
    /** Register the telemetry probes once all components exist. */
    void registerProbes();

    /** Register component-state dumps for the deadlock diagnostic. */
    void registerDiagnostics();

    SocConfig cfg_;
    sim::EventQueue eq_;
    // Declared right after eq_ (destroyed before it) so the tracer detaches
    // from a still-live EventQueue; probe lambdas only run while components
    // (declared below, destroyed first) are alive, i.e. while eq_ runs.
    std::unique_ptr<trace::TraceManager> tracer_;
    // Same lifetime argument as the tracer: the injector detaches from eq_
    // in its destructor, and its diagnostic lambdas only run while eq_ runs.
    std::unique_ptr<fault::FaultInjector> fault_;
    // Same ordering argument again: every protected structure below holds a
    // raw ResilManager pointer, so the manager must outlive all of them.
    std::unique_ptr<mem::ResilManager> resil_;
    std::unique_ptr<mem::PhysicalMemory> pm_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<noc::Mesh> mesh_;
    std::unique_ptr<mem::Dram> dram_;
    std::unique_ptr<mem::Cache> llc_;
    std::unique_ptr<mem::PortInterposer> llc_front_;
    // Coherence plumbing (msi mode only; all null under --coherence=none).
    // Declared before the L1s/cores/MAPLEs that hold pointers into them so
    // those users are destroyed first.
    std::unique_ptr<mem::CoherenceFabric> coh_;
    std::vector<std::unique_ptr<mem::Cache>> slice_llcs_;  ///< slices 1..S-1
    std::unique_ptr<mem::CoherentDmaPort> coh_dma_;
    AddressMap amap_;

    /**
     * Owned registry of every Soc-created NoC port, keyed by (tile, use).
     * One container instead of a vector per role: the port objects are
     * heap-allocated, so registry growth never moves them and wiring can
     * hand out references while later ports are still being added.
     */
    struct PortEntry {
        sim::TileId tile;
        PortUse use;
        std::unique_ptr<noc::RemotePort> port;
    };
    std::vector<PortEntry> ports_;

    /** Create, register and return a port for (tile, use) -> @p target. */
    noc::RemotePort &makePort(sim::TileId tile, PortUse use, mem::Port &target);

    // Components (order matters: the registry above outlives them all, and
    // ports are wired before the cores/MAPLEs that use them).
    std::vector<std::unique_ptr<mem::Cache>> l1s_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<::maple::core::Maple>> maples_;

    // Containment plumbing (references the kernel and resil_ above, so it
    // is declared last and destroyed first).
    std::unique_ptr<os::PageRetirer> retirer_;
    std::unique_ptr<McaMmio> mca_mmio_;
};

}  // namespace maple::soc
