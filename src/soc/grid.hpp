/**
 * @file
 * Multi-SoC grid: several complete SoCs (chips), each its own simulation
 * domain with a private EventQueue, coroutine frames, RNG streams, tracer
 * and fault injector, advanced concurrently by sim::ShardedEngine in
 * conservative bulk-synchronous quanta bounded by the inter-chip link
 * latency.
 *
 * The grid is the unit of host-side parallelism: a single SoC's mesh
 * reserves links synchronously (zero lookahead), so the chip itself cannot
 * be cut into concurrent domains without changing its timing — but chips
 * only talk through explicit cross-domain link ports (mem/shard_port.hpp),
 * whose declared latency bounds the engine's lookahead. Results are
 * byte-identical for any host thread count; see sim/sharded.hpp for the
 * determinism argument and DESIGN.md §12 for the partitioning rationale.
 *
 * Watchdog and checkpoint semantics carry over per chip: the engine's
 * quantum-boundary hook applies each SoC's own watchdog stall rule, and
 * snapshot()/restore() delegate to the member SoC at a fully quiesced
 * point (mailboxes empty and every chip's queue drained — checked — so no
 * cross-chip request/response pair straddles the snapshot and the per-SoC
 * snapshot format needs no extension).
 */
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "mem/shard_port.hpp"
#include "sim/error.hpp"
#include "sim/sharded.hpp"
#include "soc/soc.hpp"

namespace maple::soc {

struct SocGridConfig {
    std::vector<SocConfig> socs;   ///< one chip per entry (= one domain)
    /** Host worker threads (clamped to the chip count; MAPLE_THREADS env). */
    unsigned host_threads = 1;
    sim::Cycle link_latency = 32;  ///< per-direction inter-chip hop cost
    sim::Cycle quantum = 0;        ///< 0 = auto (min(lookahead, default))

    /** @p chips copies of @p proto, named "<proto.name>.<i>". */
    static SocGridConfig uniform(const SocConfig &proto, unsigned chips);
};

class SocGrid {
  public:
    explicit SocGrid(SocGridConfig cfg);

    unsigned size() const { return static_cast<unsigned>(socs_.size()); }
    Soc &soc(unsigned i) { return *socs_.at(i); }
    sim::ShardedEngine &engine() { return engine_; }
    const SocGridConfig &config() const { return cfg_; }

    /**
     * Create (and own) a cross-chip port: requests issued on chip @p src
     * execute against chip @p dst's LLC front-end, one link hop each way.
     */
    mem::CrossDomainPort &linkPort(unsigned src, unsigned dst);

    /**
     * Advance every chip until all queues drain (and all @p joins finished)
     * or @p max_cycles. Same contract as Soc::run — DeadlockError on
     * non-drain, per-chip watchdog stall checks at quantum boundaries —
     * and byte-identical for any config().host_threads.
     * Returns cycles elapsed on chip 0's clock.
     */
    sim::Cycle run(std::vector<sim::Join> joins,
                   sim::Cycle max_cycles = sim::kCycleMax);

    /**
     * Snapshot chip @p i. Requires a fully quiesced grid: no cross-domain
     * messages in flight AND every chip's event queue drained (see
     * requireQuiesced() for why mailboxes-empty alone is not enough).
     * Inline so only callers pull in Soc::snapshot's ckpt implementation —
     * maple_soc itself cannot depend on maple_ckpt.
     */
    void
    snapshot(unsigned i, std::ostream &out)
    {
        requireQuiesced("snapshot");
        soc(i).snapshot(out);
    }

    /** Restore chip @p i from a per-SoC snapshot stream (same quiesced
     *  requirement and ckpt-dependency note as snapshot()). */
    void
    restore(unsigned i, std::istream &in)
    {
        requireQuiesced("restore");
        soc(i).restore(in);
    }

  private:
    /**
     * Empty mailboxes are necessary but not sufficient for a per-chip
     * snapshot/restore: a coroutine on chip A parked on a CrossDomainPort
     * signal while the matching serve (or completion) task still sits in
     * chip B's event queue passes the mailbox check, yet snapshotting or
     * restoring either chip would silently break the cross-chip
     * request/response pairing (an orphaned waiter, or a stale completion
     * targeting a dead frame). Full quiescence — every domain's queue
     * drained — is the precondition, for every chip, not just chip @p i.
     */
    void
    requireQuiesced(const char *op)
    {
        MAPLE_CHECK(engine_.pendingMessages() == 0, sim::FatalError,
                    "grid %s with %zu cross-domain messages in flight", op,
                    engine_.pendingMessages());
        for (sim::ShardedEngine::DomainId d = 0; d < engine_.numDomains();
             ++d)
            MAPLE_CHECK(engine_.domain(d).pending() == 0, sim::FatalError,
                        "grid %s while domain '%s' has %zu pending events "
                        "(grid not quiesced)",
                        op, engine_.domainName(d).c_str(),
                        engine_.domain(d).pending());
    }

    SocGridConfig cfg_;
    sim::ShardedEngine engine_;
    std::vector<std::unique_ptr<Soc>> socs_;
    std::vector<std::unique_ptr<mem::CrossDomainPort>> links_;
};

}  // namespace maple::soc
