#include "soc/soc.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "os/page_retire.hpp"
#include "sim/error.hpp"
#include "sim/log.hpp"
#include "sim/sharded.hpp"

namespace maple::soc {

/**
 * MMIO window over the per-tile MCA banks (the page right above the MAPLE
 * device pages). Each tile owns 32 bytes = four u64 registers:
 *   +0   status: bit 0 valid, bits [15:8] structure, bits [23:16] cause
 *   +8   line address of the first latched error
 *   +16  error count since the last clear
 *   +24  cycle of the first latched error
 * Any store inside a tile's 32-byte window clears that tile's bank.
 */
class McaMmio : public MmioDevice {
  public:
    static constexpr sim::Addr kBankStride = 32;

    McaMmio(sim::Addr base, mem::ResilManager &resil)
        : base_(base), resil_(resil)
    {
    }

    sim::Task<std::uint64_t>
    mmioLoad(sim::Addr paddr, unsigned size, sim::ThreadId) override
    {
        (void)size;
        std::uint64_t off = paddr - base_;
        auto tile = static_cast<unsigned>(off / kBankStride);
        std::uint64_t v = 0;
        if (tile < resil_.numTiles()) {
            const mem::McaBank &b = resil_.mca(tile);
            switch ((off % kBankStride) / 8) {
              case 0:
                v = (b.valid ? 1u : 0u) |
                    (static_cast<std::uint64_t>(b.structure) << 8) |
                    (static_cast<std::uint64_t>(b.cause) << 16);
                break;
              case 1: v = b.addr; break;
              case 2: v = b.count; break;
              case 3: v = b.first_cycle; break;
            }
        }
        co_return v;
    }

    sim::Task<void>
    mmioStore(sim::Addr paddr, std::uint64_t, unsigned, sim::ThreadId) override
    {
        auto tile = static_cast<unsigned>((paddr - base_) / kBankStride);
        if (tile < resil_.numTiles())
            resil_.clearMca(tile);
        co_return;
    }

  private:
    sim::Addr base_;
    mem::ResilManager &resil_;
};

unsigned
hostThreadsFromEnv(unsigned fallback)
{
    const char *p = std::getenv("MAPLE_THREADS");
    if (!p || !*p)
        return fallback;
    char *end = nullptr;
    errno = 0;
    unsigned long v = std::strtoul(p, &end, 10);
    // Range-check BEFORE the narrowing cast: 2^32 would otherwise truncate
    // to 0 and silently select the single-threaded path, and strtoul
    // reports overflow as ULONG_MAX + ERANGE rather than a parse failure.
    if (!end || *end != '\0' || errno == ERANGE || v < 1 ||
        v > std::numeric_limits<unsigned>::max()) {
        MAPLE_WARN("ignoring bad MAPLE_THREADS '%s'", p);
        return fallback;
    }
    return static_cast<unsigned>(v);
}

SocConfig
SocConfig::fpga()
{
    SocConfig cfg;
    cfg.name = "openpiton+maple (fpga)";
    cfg.num_cores = 2;
    cfg.num_maples = 1;
    cfg.mesh_width = 2;
    cfg.mesh_height = 2;
    cfg.dram_bytes = 1ull << 30;  // 1GB DDR3
    // Ariane's L1D is near-blocking: ~2 outstanding misses. This is why
    // software prefetching into the L1 cannot create MLP on this core.
    cfg.l1 = mem::CacheParams{"l1", 8 * 1024, 4, 2, 2};
    cfg.llc = mem::CacheParams{"llc", 64 * 1024, 8, 26, 32};
    cfg.dram = mem::DramParams{300, 1, 1};
    return cfg;
}

SocConfig
SocConfig::simulated(unsigned cores)
{
    SocConfig cfg = fpga();
    cfg.name = "mosaic-like simulated system";
    cfg.num_cores = cores;
    cfg.dram_bytes = 1ull << 32;  // 4GB
    cfg.dram = mem::DramParams{300, 1, 2};  // ~68GB/s aggregate
    // Auto mesh: cores + maples + mem tile.
    unsigned tiles = cores + cfg.num_maples + 1;
    cfg.mesh_width = 0;
    cfg.mesh_height = 0;
    (void)tiles;
    return cfg;
}

unsigned
llcSlicesFromEnv(unsigned fallback)
{
    const char *p = std::getenv("MAPLE_LLC_SLICES");
    if (!p || !*p)
        return fallback;
    char *end = nullptr;
    errno = 0;
    unsigned long v = std::strtoul(p, &end, 10);
    if (!end || *end != '\0' || errno == ERANGE || v < 1 || v > 1024) {
        MAPLE_WARN("ignoring bad MAPLE_LLC_SLICES '%s'", p);
        return fallback;
    }
    return static_cast<unsigned>(v);
}

Soc::Soc(SocConfig cfg) : cfg_(std::move(cfg))
{
    // Coherence knobs resolve before mesh sizing: the slice count changes
    // how many tiles the memory system occupies. Without a protocol the
    // slice knob is forced to 1 so the historical single-home layout (and
    // every downstream byte) is untouched.
    cfg_.coherence.mergeEnv();
    cfg_.llc_slices = llcSlicesFromEnv(cfg_.llc_slices);
    if (!cfg_.coherence.enabled() || cfg_.llc_slices < 1)
        cfg_.llc_slices = 1;

    // Resolve mesh geometry: enough tiles for cores + MAPLEs + LLC slices.
    unsigned tiles_needed =
        cfg_.num_cores + cfg_.num_maples + cfg_.llc_slices;
    if (cfg_.mesh_width == 0 || cfg_.mesh_height == 0) {
        unsigned w = 1;
        while (w * w < tiles_needed)
            ++w;
        cfg_.mesh_width = w;
        cfg_.mesh_height = (tiles_needed + w - 1) / w;
    }
    MAPLE_CHECK(cfg_.mesh_width * cfg_.mesh_height >= tiles_needed,
                sim::ConfigError, "mesh too small: %ux%u for %u tiles",
                cfg_.mesh_width, cfg_.mesh_height, tiles_needed);
    cfg_.mesh.width = cfg_.mesh_width;
    cfg_.mesh.height = cfg_.mesh_height;

    // Environment knobs (MAPLE_TRACE=..., MAPLE_FAULT_*=...) turn tracing
    // and fault injection on for any binary that assembles a Soc, without
    // per-binary flag plumbing.
    cfg_.trace.mergeEnv();
    if (cfg_.trace.enabled)
        tracer_ = std::make_unique<trace::TraceManager>(eq_, cfg_.trace);
    cfg_.fault.mergeEnv();
    cfg_.watchdog.mergeEnv();
    cfg_.host_threads = hostThreadsFromEnv(cfg_.host_threads);
    fault_ = std::make_unique<fault::FaultInjector>(eq_, cfg_.fault);
    cfg_.resil.mergeEnv();
    if (cfg_.resil.enabled())
        resil_ = std::make_unique<mem::ResilManager>(
            eq_, cfg_.resil, cfg_.mesh_width * cfg_.mesh_height);

    // Fabric arbitration knobs (MAPLE_LLC_ARB / MAPLE_DRAM_ARB, or the
    // --llc-arb / --dram-arb harness flags): fifo keeps the historical
    // pass-through front-ends.
    cfg_.llc_arb = mem::arbPolicyFromEnv("MAPLE_LLC_ARB", cfg_.llc_arb);
    cfg_.dram.arb = mem::arbPolicyFromEnv("MAPLE_DRAM_ARB", cfg_.dram.arb);

    // Pre-size the plumbing containers so wiring never reallocates while
    // components hand out raw pointers to earlier entries.
    ports_.reserve(2 * cfg_.num_cores + 3 * cfg_.num_maples + 4);
    l1s_.reserve(cfg_.num_cores);
    cores_.reserve(cfg_.num_cores);
    maples_.reserve(cfg_.num_maples);

    pm_ = std::make_unique<mem::PhysicalMemory>(cfg_.dram_bytes);
    kernel_ = std::make_unique<os::Kernel>(eq_, *pm_, cfg_.kernel);
    mesh_ = std::make_unique<noc::Mesh>(eq_, cfg_.mesh);
    dram_ = std::make_unique<mem::Dram>(eq_, cfg_.dram);
    mem::CacheParams llcp = cfg_.llc;
    llcp.tile = memTile();  // LLC prefetch fills originate at the memory tile
    llc_ = std::make_unique<mem::Cache>(eq_, llcp, *dram_);
    llc_front_ = std::make_unique<mem::PortInterposer>(eq_, "llc_front", *llc_,
                                                       cfg_.llc_arb);

    // Coherence fabric: one home directory per LLC slice. Slice 0 reuses
    // the historical shared LLC; extra slices are additional Caches with
    // the same geometry, homed on their own tiles, backed by the same DRAM.
    if (cfg_.coherence.enabled()) {
        coh_ = std::make_unique<mem::CoherenceFabric>(eq_, cfg_.coherence,
                                                      *mesh_);
        coh_->addSlice(sliceTile(0), *llc_);
        for (unsigned s = 1; s < cfg_.llc_slices; ++s) {
            mem::CacheParams sp = cfg_.llc;
            sp.name = "llc." + std::to_string(s);
            sp.tile = sliceTile(s);
            slice_llcs_.push_back(std::make_unique<mem::Cache>(eq_, sp, *dram_));
            coh_->addSlice(sliceTile(s), *slice_llcs_.back());
        }
        coh_dma_ = std::make_unique<mem::CoherentDmaPort>(*coh_);
    }

    // Cores and their private plumbing.
    for (unsigned i = 0; i < cfg_.num_cores; ++i) {
        sim::TileId tile = coreTile(i);
        noc::RemotePort &demand =
            makePort(tile, PortUse::CoreDemand, *llc_front_);
        mem::CacheParams l1p = cfg_.l1;
        l1p.name = "l1." + std::to_string(i);
        l1p.tile = tile;
        l1s_.push_back(std::make_unique<mem::Cache>(eq_, l1p, demand));
        // Under msi the L1's misses route through the fabric instead of the
        // demand port, and RMW/shared traffic goes through the protocol-
        // correct DMA port rather than an uncached LLC round trip.
        mem::Port *atomic_port;
        if (coh_) {
            l1s_.back()->attachCoherence(*coh_);
            atomic_port = coh_dma_.get();
        } else {
            atomic_port = &makePort(tile, PortUse::CoreAtomic, *llc_front_);
        }

        cpu::CoreParams cp = cfg_.core_proto;
        cp.name = "core." + std::to_string(i);
        cp.tile = tile;
        cp.thread = i;
        cp.coherent_shared = coh_ != nullptr;
        cpu::CoreWiring wiring;
        wiring.pm = pm_.get();
        wiring.l1 = l1s_.back().get();
        wiring.l1_cache = l1s_.back().get();
        wiring.walk_port = l1s_.back().get();  // PTW walks through the L1
        wiring.atomic_port = atomic_port;
        wiring.amap = &amap_;
        wiring.mesh = mesh_.get();
        cores_.push_back(std::make_unique<cpu::Core>(eq_, cp, wiring));
    }

    // MAPLE tiles: MMIO pages live just above DRAM in the physical map.
    for (unsigned i = 0; i < cfg_.num_maples; ++i) {
        sim::TileId tile = mapleTile(i);
        ::maple::core::MapleParams mp = cfg_.maple_proto;
        mp.name = "maple." + std::to_string(i);
        mp.tile = tile;
        mp.mmio_base = cfg_.dram_bytes + sim::Addr(i) * mem::kPageSize;
        ::maple::core::MapleWiring wiring;
        wiring.pm = pm_.get();
        if (coh_) {
            // MAPLE's streams become coherent DMA: every fetched or written
            // line passes through its home directory, which invalidates or
            // downgrades private copies first. Speculative prefetches ride
            // the same path (llc_cache stays null), warming the home slice
            // without installing stale private copies anywhere.
            wiring.dram_port = coh_dma_.get();
            wiring.llc_port = coh_dma_.get();
            wiring.llc_cache = nullptr;
            // Page-table walks take the same coherent path: page-table
            // lines are homed and cached on their own slice, and a walk
            // read downgrades an M owner (a core updating a PTE through
            // its L1) instead of reading around it.
            wiring.walk_port = coh_dma_.get();
            mp.coherent = true;
        } else {
            wiring.dram_port = &makePort(tile, PortUse::MapleDram, *dram_);
            wiring.llc_port = &makePort(tile, PortUse::MapleLlc, *llc_front_);
            wiring.llc_cache = llc_.get();
            wiring.walk_port = &makePort(tile, PortUse::MapleWalk, *llc_front_);
        }
        maples_.push_back(
            std::make_unique<::maple::core::Maple>(eq_, mp, wiring));
        amap_.addDevice(mp.mmio_base, mem::kPageSize, maples_.back().get(), tile);
    }

    // Soft-error resilience: attach the ECC/poison model to every protected
    // structure, install the OS containment handler and (in msi mode) point
    // the background scrub engine at the directory slices. The per-tile MCA
    // banks appear as an MMIO page right above the MAPLE device pages.
    if (resil_) {
        dram_->setResil(resil_.get());
        llc_->setResil(resil_.get(), /*l1_role=*/false);
        for (auto &s : slice_llcs_)
            s->setResil(resil_.get(), /*l1_role=*/false);
        for (auto &l1 : l1s_)
            l1->setResil(resil_.get(), /*l1_role=*/true);
        if (coh_) {
            coh_->setResil(resil_.get());
            coh_dma_->setResil(resil_.get());
            resil_->setScrubAuditor([f = coh_.get()](std::uint64_t &cursor,
                                                     unsigned budget) {
                const std::uint64_t per = f->slice(0).entrySlots();
                const std::uint64_t total = per * f->numSlices();
                unsigned repaired = 0;
                for (unsigned n = 0; n < budget; ++n) {
                    std::uint64_t slot = cursor % total;
                    cursor = (cursor + 1) % total;
                    repaired += f->slice(static_cast<unsigned>(slot / per))
                                    .scrubAudit(slot % per);
                }
                return repaired;
            });
        }
        os::PageRetireHooks hooks;
        hooks.flush_line = [this](sim::Addr line) -> sim::Task<void> {
            if (coh_) {
                unsigned s = coh_->homeSlice(line);
                co_await coh_->slice(s).recallLine(line);
                llcSlice(s).resilDropLine(line);
            } else {
                for (auto &l1 : l1s_)
                    l1->resilDropLine(line);
                llc_->resilDropLine(line);
            }
            co_return;
        };
        retirer_ = std::make_unique<os::PageRetirer>(*kernel_, *resil_,
                                                     std::move(hooks));
        resil_->setContainHandler(
            [r = retirer_.get()](sim::Addr line, sim::TileId tile,
                                 fault::FaultClass cause) {
                return r->contain(line, tile, cause);
            });
        mca_mmio_ = std::make_unique<McaMmio>(mcaMmioBase(), *resil_);
        sim::Addr window =
            (sim::Addr(resil_->numTiles()) * McaMmio::kBankStride +
             mem::kPageMask) &
            ~sim::Addr(mem::kPageMask);
        amap_.addDevice(mcaMmioBase(), window, mca_mmio_.get(), memTile());
    }

    if (tracer_)
        registerProbes();
    registerDiagnostics();
}

void
Soc::registerProbes()
{
    tracer_->addProbe("llc.mshrs",
                      [c = llc_.get()] { return double(c->mshrsInUse()); });
    for (unsigned i = 0; i < numCores(); ++i) {
        tracer_->addProbe(cfg_.l1.name + "." + std::to_string(i) + ".mshrs",
                          [c = l1s_[i].get()] { return double(c->mshrsInUse()); });
    }
    tracer_->addProbe("noc.flits",
                      [m = mesh_.get()] { return double(m->flitsSent()); });
    if (coh_) {
        for (unsigned s = 0; s < coh_->numSlices(); ++s) {
            mem::Directory *d = &coh_->slice(s);
            std::string base = "dir." + std::to_string(s);
            tracer_->addProbe(base + ".entries",
                              [d] { return double(d->entriesInUse()); });
            tracer_->addProbe(base + ".busy",
                              [d] { return double(d->busyLines()); });
        }
    }
    for (unsigned i = 0; i < numMaples(); ++i) {
        ::maple::core::Maple *m = maples_[i].get();
        std::string base = "maple." + std::to_string(i);
        tracer_->addProbe(base + ".produce_buffer",
                          [m] { return double(m->produceInflight()); });
        for (unsigned q = 0; q < m->params().max_queues; ++q) {
            tracer_->addProbe(base + ".q" + std::to_string(q) + ".occupancy",
                              [m, q] { return double(m->queue(q).occupancy()); });
        }
    }
}

void
Soc::registerDiagnostics()
{
    // Component-state dumps for the deadlock diagnostic: enough to see at a
    // glance which structural resource a parked waiter is starved of.
    fault_->addDiagnostic("llc", [c = llc_.get()] {
        return sim::detail::formatString("%zu MSHRs in flight", c->mshrsInUse());
    });
    for (unsigned i = 0; i < numCores(); ++i) {
        fault_->addDiagnostic("l1." + std::to_string(i), [c = l1s_[i].get()] {
            return sim::detail::formatString("%zu MSHRs in flight",
                                             c->mshrsInUse());
        });
    }
    if (coh_) {
        for (unsigned s = 0; s < coh_->numSlices(); ++s) {
            mem::Directory *d = &coh_->slice(s);
            fault_->addDiagnostic("dir." + std::to_string(s), [d] {
                return sim::detail::formatString(
                    "%u tracked lines, %zu busy", d->entriesInUse(),
                    d->busyLines());
            });
        }
    }
    for (unsigned i = 0; i < numMaples(); ++i) {
        ::maple::core::Maple *m = maples_[i].get();
        fault_->addDiagnostic("maple." + std::to_string(i), [m] {
            std::string s = sim::detail::formatString(
                "%u pointer-produces in flight", m->produceInflight());
            for (unsigned q = 0; q < m->params().max_queues; ++q) {
                if (!m->queue(q).configured())
                    continue;
                s += sim::detail::formatString(
                    "; q%u %u/%u (status %u)", q, m->queue(q).occupancy(),
                    m->queue(q).capacity(),
                    static_cast<unsigned>(m->queueStatus(q)));
            }
            return s;
        });
    }
    if (resil_) {
        fault_->addDiagnostic("resil",
                              [r = resil_.get()] { return r->summary(); });
    }
}

Soc::~Soc()
{
    // Flush trace files while every probed component is still alive.
    if (tracer_)
        tracer_->write();
}

noc::RemotePort &
Soc::makePort(sim::TileId tile, PortUse use, mem::Port &target)
{
    ports_.push_back(PortEntry{
        tile, use,
        std::make_unique<noc::RemotePort>(*mesh_, tile, memTile(), target)});
    return *ports_.back().port;
}

noc::RemotePort *
Soc::findPort(sim::TileId tile, PortUse use)
{
    for (PortEntry &e : ports_) {
        if (e.tile == tile && e.use == use)
            return e.port.get();
    }
    return nullptr;
}

noc::RemotePort &
Soc::addLlcPort(sim::TileId tile)
{
    return makePort(tile, PortUse::Extra, *llc_front_);
}

os::Process &
Soc::createProcess(const std::string &name)
{
    os::Process &proc = kernel_->createProcess(name);
    for (auto &core : cores_)
        proc.attachMmu(&core->mmu());
    return proc;
}

sim::Cycle
Soc::run(std::vector<sim::Join> joins, sim::Cycle max_cycles)
{
    sim::Cycle start = eq_.now();
    // Restart the background scrub loop for this run phase (it parks itself
    // whenever the machine drains, so snapshots between phases stay legal).
    if (resil_)
        resil_->kickScrub();
    bool drained;
    if (cfg_.host_threads > 1) {
        // The sharded-engine path: the whole SoC is one event domain (its
        // mesh reserves links synchronously, so it cannot be cut without
        // changing timing — see DESIGN.md §12), driven through the same
        // chunked-run + stall-check protocol as the Watchdog. Event order
        // and timing are identical to the legacy path; only the cycle at
        // which a livelock is *diagnosed* can differ by up to one quantum,
        // because the engine's windows start at the next pending event
        // rather than at now().
        sim::ShardedEngine engine;
        engine.addDomain(eq_, cfg_.name);
        if (cfg_.watchdog.enabled) {
            engine.setBoundaryHook([this](sim::Cycle) {
                fault::Watchdog::checkStall(eq_, cfg_.watchdog);
            });
        }
        sim::ShardedEngine::RunOptions ro;
        ro.threads = cfg_.host_threads;
        ro.max_cycles = max_cycles;
        if (cfg_.watchdog.enabled)
            ro.quantum = cfg_.watchdog.check_interval;
        drained = engine.run(ro);
    } else {
        fault::Watchdog wd(eq_, cfg_.watchdog);
        drained = wd.run(max_cycles);
    }
    for (const sim::Join &j : joins) {
        if (j.done())
            j.get();  // rethrows workload exceptions
    }
    if (!drained) {
        fault::Watchdog::failDeadlock(
            eq_, sim::detail::formatString(
                     "simulation did not quiesce within %llu cycles",
                     (unsigned long long)(max_cycles - start)));
    }
    for (const sim::Join &j : joins) {
        if (!j.done()) {
            fault::Watchdog::failDeadlock(
                eq_, "event queue drained but a task never finished "
                     "(deadlock in simulated software?)");
        }
    }
    return eq_.now() - start;
}

}  // namespace maple::soc
