/**
 * @file
 * Physical address map of the SoC: DRAM plus page-granular MMIO device
 * windows. Cores route every translated access through this map; anything
 * that hits a device window bypasses the caches (uncacheable) and becomes a
 * NoC request to the owning tile -- this is exactly how off-the-shelf cores
 * talk to MAPLE (plain loads/stores, no new instructions).
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "mem/physical_memory.hpp"
#include "sim/coro.hpp"
#include "sim/error.hpp"
#include "sim/log.hpp"
#include "sim/types.hpp"

namespace maple::soc {

/** A device reachable through memory-mapped IO. */
class MmioDevice {
  public:
    virtual ~MmioDevice() = default;

    /**
     * Handle an MMIO load. @p paddr is the full physical address (the device
     * derives its register/opcode from the page offset). The task completes
     * when the device responds -- e.g. a MAPLE CONSUME only completes once
     * data is available in the queue.
     */
    virtual sim::Task<std::uint64_t> mmioLoad(sim::Addr paddr, unsigned size,
                                              sim::ThreadId thread) = 0;

    /** Handle an MMIO store; completes when the device acknowledges it. */
    virtual sim::Task<void> mmioStore(sim::Addr paddr, std::uint64_t data,
                                      unsigned size, sim::ThreadId thread) = 0;
};

class AddressMap {
  public:
    struct Window {
        sim::Addr base;
        sim::Addr size;
        MmioDevice *device;
        sim::TileId tile;
    };

    /** Register @p device at [base, base+size); must not overlap others. */
    void
    addDevice(sim::Addr base, sim::Addr size, MmioDevice *device, sim::TileId tile)
    {
        MAPLE_ASSERT(size > 0 && device != nullptr);
        MAPLE_ASSERT((base & mem::kPageMask) == 0 && (size & mem::kPageMask) == 0,
                     "MMIO windows are page granular");
        auto next = windows_.lower_bound(base);
        if (next != windows_.end()) {
            MAPLE_CHECK(base + size <= next->first, sim::ConfigError,
                        "MMIO window [0x%llx, 0x%llx) overlaps window at 0x%llx",
                        (unsigned long long)base,
                        (unsigned long long)(base + size),
                        (unsigned long long)next->first);
        }
        if (next != windows_.begin()) {
            auto prev = std::prev(next);
            MAPLE_CHECK(prev->first + prev->second.size <= base,
                        sim::ConfigError,
                        "MMIO window [0x%llx, 0x%llx) overlaps window at 0x%llx",
                        (unsigned long long)base,
                        (unsigned long long)(base + size),
                        (unsigned long long)prev->first);
        }
        windows_[base] = Window{base, size, device, tile};
    }

    /** Find the device window containing @p paddr, if any. */
    const Window *
    find(sim::Addr paddr) const
    {
        auto it = windows_.upper_bound(paddr);
        if (it == windows_.begin())
            return nullptr;
        --it;
        const Window &w = it->second;
        return paddr < w.base + w.size ? &w : nullptr;
    }

    bool isMmio(sim::Addr paddr) const { return find(paddr) != nullptr; }

  private:
    std::map<sim::Addr, Window> windows_;
};

}  // namespace maple::soc
