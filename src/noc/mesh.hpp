/**
 * @file
 * Packet-level 2D-mesh network-on-chip (OpenPiton P-Mesh flavoured).
 *
 * Dimension-ordered (XY) routing, one cycle per hop by default, and per-link
 * serialization modeled with link reservation: a packet of F flits occupies
 * each directed link for F cycles, so contention shows up as queueing delay.
 */
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "mem/port.hpp"
#include "sim/coro.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace maple::noc {

struct MeshParams {
    unsigned width = 2;
    unsigned height = 1;
    sim::Cycle hop_latency = 1;     ///< router+link traversal per hop
    unsigned flit_bytes = 16;       ///< payload bytes per body flit
};

/** Number of flits for a packet carrying @p payload_bytes (1 header flit). */
inline unsigned
flitsFor(unsigned payload_bytes, unsigned flit_bytes = 16)
{
    return 1 + (payload_bytes + flit_bytes - 1) / flit_bytes;
}

class Mesh {
  public:
    // Link-reservation state is sized to its final extent here; transit()
    // never grows it, so the hot path cannot reallocate.
    Mesh(sim::EventQueue &eq, MeshParams params)
        : eq_(eq), params_(params),
          link_free_(static_cast<size_t>(params.width) * params.height * 4, 0),
          link_flits_(link_free_.size(), 0)
    {
        MAPLE_ASSERT(params.width > 0 && params.height > 0);
    }

    unsigned xOf(sim::TileId t) const { return t % params_.width; }
    unsigned yOf(sim::TileId t) const { return t / params_.width; }

    sim::TileId
    tileAt(unsigned x, unsigned y) const
    {
        MAPLE_ASSERT(x < params_.width && y < params_.height);
        return y * params_.width + x;
    }

    unsigned numTiles() const { return params_.width * params_.height; }

    unsigned
    hops(sim::TileId src, sim::TileId dst) const
    {
        unsigned dx = xOf(src) > xOf(dst) ? xOf(src) - xOf(dst) : xOf(dst) - xOf(src);
        unsigned dy = yOf(src) > yOf(dst) ? yOf(src) - yOf(dst) : yOf(dst) - yOf(src);
        return dx + dy;
    }

    /**
     * Move a packet of @p flits flits from @p src to @p dst on behalf of
     * requester class @p cls (attribution + class-keyed fault injection).
     * Completes when the head flit is ejected at the destination.
     */
    sim::Task<void>
    transit(sim::TileId src, sim::TileId dst, unsigned flits,
            mem::RequesterClass cls = mem::RequesterClass::Core)
    {
        MAPLE_ASSERT(src < numTiles() && dst < numTiles());
        packets_.inc();
        flits_.inc(flits);
        class_flits_[static_cast<std::size_t>(cls)] += flits;
        sim::Cycle start = eq_.now();
        sim::Cycle t = start;
        sim::Cycle queued = 0;

        // XY route: resolve X first, then Y; reserve each directed link.
        unsigned x = xOf(src), y = yOf(src);
        const unsigned tx = xOf(dst), ty = yOf(dst);
        while (x != tx || y != ty) {
            unsigned dir;
            unsigned nx = x, ny = y;
            if (x != tx) {
                dir = x < tx ? kEast : kWest;
                nx = x < tx ? x + 1 : x - 1;
            } else {
                dir = y < ty ? kSouth : kNorth;
                ny = y < ty ? y + 1 : y - 1;
            }
            size_t link = linkIndex(tileAt(x, y), dir);
            sim::Cycle &free = link_free_[link];
            sim::Cycle depart = std::max(t, free);
            queued += depart - t;
            // Injected transient link stall: the link is unavailable for a
            // few extra cycles (charged to FaultNoc, not NocBackpressure).
            if (fault::FaultInjector *f = fault::active(eq_)) {
                if (sim::Cycle d = f->inject(fault::FaultClass::NocLinkStall, cls)) {
                    depart += d;
                    f->chargeCycles(fault::FaultClass::NocLinkStall, d);
                }
            }
            free = depart + flits;  // serialization: one flit per cycle
            link_flits_[link] += flits;
            t = depart + params_.hop_latency;
            x = nx;
            y = ny;
        }
        latency_.sample(static_cast<double>(t - start));
        if (queued > 0) {
            if (trace::TraceManager *tr = trace::active(eq_))
                tr->attributeStall(trace::StallCause::NocBackpressure, queued);
        }
        if (t > start)
            co_await sim::delay(eq_, t - start);
    }

    const MeshParams &params() const { return params_; }
    std::uint64_t packets() const { return packets_.value(); }
    std::uint64_t flitsSent() const { return flits_.value(); }
    double meanLatency() const { return latency_.mean(); }

    /** Directed links in the mesh (4 per tile: E, W, N, S). */
    size_t numLinks() const { return link_flits_.size(); }

    /** Cumulative flits that traversed directed link @p link (telemetry). */
    std::uint64_t linkFlits(size_t link) const { return link_flits_[link]; }

    /** Cumulative flits injected on behalf of one requester class. */
    std::uint64_t
    classFlits(mem::RequesterClass cls) const
    {
        return class_flits_[static_cast<std::size_t>(cls)];
    }

    /** Snapshot support: link reservations and traffic counters. */
    void
    saveState(ckpt::Sink &out) const
    {
        out.u64(link_free_.size());
        for (sim::Cycle c : link_free_)
            out.u64(c);
        out.vecU64(link_flits_);
        for (std::uint64_t f : class_flits_)
            out.u64(f);
        packets_.saveState(out);
        flits_.saveState(out);
        latency_.saveState(out);
    }

    void
    loadState(ckpt::Source &in)
    {
        std::uint64_t links = in.u64();
        MAPLE_CHECK(links == link_free_.size(), ckpt::SnapshotError,
                    "mesh geometry mismatch in snapshot");
        for (sim::Cycle &c : link_free_)
            c = in.u64();
        link_flits_ = in.vecU64();
        MAPLE_CHECK(link_flits_.size() == links, ckpt::SnapshotError,
                    "mesh link-counter mismatch in snapshot");
        for (std::uint64_t &f : class_flits_)
            f = in.u64();
        packets_.loadState(in);
        flits_.loadState(in);
        latency_.loadState(in);
    }

  private:
    static constexpr unsigned kEast = 0, kWest = 1, kNorth = 2, kSouth = 3;

    size_t
    linkIndex(sim::TileId tile, unsigned dir) const
    {
        return static_cast<size_t>(tile) * 4 + dir;
    }

    sim::EventQueue &eq_;
    MeshParams params_;
    std::vector<sim::Cycle> link_free_;
    std::vector<std::uint64_t> link_flits_;
    std::array<std::uint64_t, mem::kNumRequesterClasses> class_flits_{};
    sim::Counter packets_, flits_;
    sim::Average latency_;
};

/**
 * Port adaptor that reaches a remote memory-side component across the
 * mesh: request packet out, target access, response packet back. The
 * request's class rides along so the mesh attributes both packets (and any
 * injected link faults) to the true originator.
 */
class RemotePort : public mem::Port {
  public:
    RemotePort(Mesh &mesh, sim::TileId src, sim::TileId dst, mem::Port &target)
        : mesh_(mesh), src_(src), dst_(dst), target_(target)
    {
    }

    sim::Task<void>
    request(mem::MemRequest req) override
    {
        const bool write = req.kind == mem::AccessKind::Write;
        unsigned req_bytes = write ? req.size : 0;   // writes carry data out
        unsigned resp_bytes = write ? 0 : req.size;  // reads carry data back
        co_await mesh_.transit(src_, dst_,
                               flitsFor(req_bytes, mesh_.params().flit_bytes),
                               req.cls);
        co_await target_.request(req);
        co_await mesh_.transit(dst_, src_,
                               flitsFor(resp_bytes, mesh_.params().flit_bytes),
                               req.cls);
    }

    sim::TileId destination() const { return dst_; }

  private:
    Mesh &mesh_;
    sim::TileId src_;
    sim::TileId dst_;
    mem::Port &target_;
};

}  // namespace maple::noc
