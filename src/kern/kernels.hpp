/**
 * @file
 * Canonical IR kernels used by tests, benches and examples -- including the
 * paper's Figure 5 kernel res[i] = A[B[i]] * C[i].
 *
 * Note on software-prefetch padding: insertSoftwarePrefetch() emits an
 * unguarded load of B[i+distance], so callers running that transform must
 * allocate the index array with at least `distance` elements of slack.
 */
#pragma once

#include "kern/ir.hpp"

namespace maple::kern {

/** Register handles to a kernel's runtime parameters (set via Const). */
struct GatherKernel {
    Program prog;
    size_t pc_a, pc_b, pc_c, pc_res, pc_n;  ///< Const insts to patch
};

/**
 * Figure 5: for (i = 0; i < n; i++) res[i] = A[B[i]] * C[i]
 * A, B, C, res are arrays of 4-byte elements; bases patched at run time.
 */
inline GatherKernel
makeGatherMultiply()
{
    GatherKernel k;
    Builder b;
    Reg a_base = b.constant(0);
    k.pc_a = 0;
    Reg b_base = b.constant(0);
    k.pc_b = 1;
    Reg c_base = b.constant(0);
    k.pc_c = 2;
    Reg res_base = b.constant(0);
    k.pc_res = 3;
    Reg n = b.constant(0);
    k.pc_n = 4;
    Reg zero = b.constant(0);

    Reg i = b.loopBegin(zero, n);
    Reg off = b.shl(i, 2);
    Reg baddr = b.add(b_base, off);
    Reg idx = b.load(baddr, 4);            // B[i] (sequential)
    Reg aoff = b.shl(idx, 2);
    Reg aaddr = b.add(a_base, aoff);
    Reg av = b.load(aaddr, 4);             // A[B[i]] (the IMA)
    Reg caddr = b.add(c_base, off);
    Reg cv = b.load(caddr, 4);             // C[i] (sequential, execute-only)
    Reg prod = b.mulF32(av, cv);
    Reg raddr = b.add(res_base, off);
    b.store(raddr, prod, 4);
    b.loopEnd();
    k.prog = b.take();
    return k;
}

/**
 * RMW scatter: for (i = 0; i < n; i++) Y[B[i]] += C[i]
 * The indirect access is a read-modify-write; the slicer must refuse it.
 */
inline GatherKernel
makeRmwScatter()
{
    GatherKernel k;
    Builder b;
    Reg y_base = b.constant(0);
    k.pc_a = 0;
    Reg b_base = b.constant(0);
    k.pc_b = 1;
    Reg c_base = b.constant(0);
    k.pc_c = 2;
    k.pc_res = 0;  // unused
    Reg n = b.constant(0);
    k.pc_n = 3;
    Reg zero = b.constant(0);

    Reg i = b.loopBegin(zero, n);
    Reg off = b.shl(i, 2);
    Reg baddr = b.add(b_base, off);
    Reg idx = b.load(baddr, 4);
    Reg yoff = b.shl(idx, 2);
    Reg yaddr = b.add(y_base, yoff);
    Reg yv = b.load(yaddr, 4);             // IMA...
    Reg caddr = b.add(c_base, off);
    Reg cv = b.load(caddr, 4);
    Reg sum = b.addF32(yv, cv);
    b.store(yaddr, sum, 4);                // ...that is also stored: RMW
    b.loopEnd();
    k.prog = b.take();
    return k;
}

/**
 * Dense sum: for (i = 0; i < n; i++) res[i] = A[i] + C[i]
 * No indirect access at all; the slicer must fall back to doall.
 */
inline GatherKernel
makeDenseAdd()
{
    GatherKernel k;
    Builder b;
    Reg a_base = b.constant(0);
    k.pc_a = 0;
    Reg c_base = b.constant(0);
    k.pc_c = 1;
    Reg res_base = b.constant(0);
    k.pc_res = 2;
    k.pc_b = 0;  // unused
    Reg n = b.constant(0);
    k.pc_n = 3;
    Reg zero = b.constant(0);

    Reg i = b.loopBegin(zero, n);
    Reg off = b.shl(i, 2);
    Reg av = b.load(b.add(a_base, off), 4);
    Reg cv = b.load(b.add(c_base, off), 4);
    Reg sum = b.addF32(av, cv);
    b.store(b.add(res_base, off), sum, 4);
    b.loopEnd();
    k.prog = b.take();
    return k;
}

/** Register handles for the CSR SPMV kernel's parameters. */
struct SpmvKernel {
    Program prog;
    size_t pc_row_ptr, pc_col, pc_vals, pc_x, pc_y, pc_rows;
};

/**
 * CSR sparse matrix-vector product with a nested loop:
 *
 *   for (r = 0; r < rows; ++r)
 *     for (j = row_ptr[r]; j < row_ptr[r+1]; ++j)
 *       y[r] += vals[j] * x[col[j]]
 *
 * Exercises the slicer's hard cases: the inner-loop bounds are themselves
 * *loads* (jb/je must be duplicated into both slices), col[j] is an
 * access-only feeder, x[col[j]] is the terminal IMA, and the y accumulation
 * is a (regular, non-indirect) read-modify-write that stays in Execute.
 */
inline SpmvKernel
makeSpmvIr()
{
    SpmvKernel k;
    Builder b;
    Reg row_ptr = b.constant(0);
    k.pc_row_ptr = 0;
    Reg col = b.constant(0);
    k.pc_col = 1;
    Reg vals = b.constant(0);
    k.pc_vals = 2;
    Reg x = b.constant(0);
    k.pc_x = 3;
    Reg y = b.constant(0);
    k.pc_y = 4;
    Reg rows = b.constant(0);
    k.pc_rows = 5;
    Reg zero = b.constant(0);
    Reg four = b.constant(4);

    Reg r = b.loopBegin(zero, rows);
    Reg off_r = b.shl(r, 2);
    Reg rp_addr = b.add(row_ptr, off_r);
    Reg jb = b.load(rp_addr, 4);                 // inner lower bound (load!)
    Reg je = b.load(b.add(rp_addr, four), 4);    // inner upper bound (load!)
    Reg yaddr = b.add(y, off_r);
    Reg j = b.loopBegin(jb, je);
    Reg off_j = b.shl(j, 2);
    Reg c = b.load(b.add(col, off_j), 4);        // feeds the IMA address
    Reg v = b.load(b.add(vals, off_j), 4);       // execute-only stream
    Reg xv = b.load(b.add(x, b.shl(c, 2)), 4);   // the terminal IMA
    Reg prod = b.mulF32(v, xv);
    Reg yv = b.load(yaddr, 4);                   // regular RMW accumulator
    Reg acc = b.addF32(yv, prod);
    b.store(yaddr, acc, 4);
    b.loopEnd();
    b.loopEnd();
    k.prog = b.take();
    return k;
}

/** Patch a Const instruction's immediate (kernel parameter binding). */
inline void
patchConst(Program &p, size_t pc, std::uint64_t value)
{
    MAPLE_ASSERT(pc < p.code.size() && p.code[pc].op == Op::Const,
                 "patch target is not a Const");
    p.code[pc].imm = value;
}

}  // namespace maple::kern
