#include "kern/ir.hpp"

#include <sstream>

namespace maple::kern {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Shl: return "shl";
      case Op::MulF32: return "mulf32";
      case Op::AddF32: return "addf32";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::Prefetch: return "prefetch";
      case Op::LoopBegin: return "loop";
      case Op::LoopEnd: return "endloop";
      case Op::Produce: return "produce";
      case Op::ProducePtr: return "produce_ptr";
      case Op::Consume: return "consume";
    }
    return "?";
}

bool
Program::wellFormed(std::string *why) const
{
    auto fail = [why](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    int depth = 0;
    for (size_t i = 0; i < code.size(); ++i) {
        const Inst &in = code[i];
        auto check_reg = [&](Reg r, bool required) {
            if (!required && r == kNoReg)
                return true;
            return r >= 0 && r < num_regs;
        };
        switch (in.op) {
          case Op::LoopBegin:
            ++depth;
            if (!check_reg(in.dst, true) || !check_reg(in.a, true) ||
                !check_reg(in.b, true))
                return fail("bad loop registers at " + std::to_string(i));
            break;
          case Op::LoopEnd:
            if (--depth < 0)
                return fail("unbalanced endloop at " + std::to_string(i));
            break;
          case Op::Store:
            if (!check_reg(in.a, true) || !check_reg(in.b, true))
                return fail("bad store registers at " + std::to_string(i));
            break;
          case Op::Prefetch:
          case Op::Produce:
          case Op::ProducePtr:
            if (!check_reg(in.a, true))
                return fail("bad operand at " + std::to_string(i));
            break;
          case Op::Const:
          case Op::Consume:
            if (!check_reg(in.dst, true))
                return fail("bad destination at " + std::to_string(i));
            break;
          default:
            if (!check_reg(in.dst, true) || !check_reg(in.a, true))
                return fail("bad registers at " + std::to_string(i));
            break;
        }
    }
    if (depth != 0)
        return fail("unclosed loop");
    return true;
}

std::string
disassemble(const Program &p)
{
    std::ostringstream os;
    int indent = 0;
    for (size_t i = 0; i < p.code.size(); ++i) {
        const Inst &in = p.code[i];
        if (in.op == Op::LoopEnd)
            --indent;
        for (int k = 0; k < indent; ++k)
            os << "  ";
        os << opName(in.op);
        if (in.dst != kNoReg)
            os << " r" << in.dst;
        if (in.a != kNoReg)
            os << (in.dst != kNoReg ? ", r" : " r") << in.a;
        if (in.b != kNoReg)
            os << ", r" << in.b;
        if (in.op == Op::Const || in.op == Op::Shl)
            os << ", #" << in.imm;
        if (in.op == Op::Produce || in.op == Op::ProducePtr || in.op == Op::Consume)
            os << "  @q" << unsigned(in.queue);
        os << "\n";
        if (in.op == Op::LoopBegin)
            ++indent;
    }
    return os.str();
}

}  // namespace maple::kern
