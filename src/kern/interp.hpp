/**
 * @file
 * IR interpreter: executes a kern::Program as simulated software on a core.
 * Each instruction charges issue cycles like hand-written workload code;
 * Produce/Consume/ProducePtr lower to the MAPLE runtime API (plain MMIO
 * loads/stores), exactly what the paper's compiler-generated code does.
 */
#pragma once

#include <vector>

#include "core/maple_runtime.hpp"
#include "cpu/core.hpp"
#include "kern/ir.hpp"
#include "sim/coro.hpp"

namespace maple::kern {

/** Execution environment of one program instance. */
struct ExecEnv {
    cpu::Core *core = nullptr;
    ::maple::core::MapleApi *api = nullptr;  ///< required for decoupling ops
    unsigned queue_base = 0;  ///< program queue ids are offset by this
};

/** Run @p prog on @p env.core; returns when the program finishes. */
sim::Task<void> interpret(const Program &prog, ExecEnv env);

/**
 * Functional (zero-time) reference execution against process memory; used
 * by tests to check that timed execution computes the same values.
 * Decoupling ops are not supported here.
 */
void interpretFunctional(const Program &prog, os::Process &proc);

}  // namespace maple::kern
