/**
 * @file
 * A small structured IR for memory-bound kernels, standing in for the LLVM
 * level at which the paper's automatic transformations operate (Section 3.3,
 * Figure 5). Programs are lists of instructions over virtual registers with
 * structured counted loops; the slicer (slicer.hpp) decomposes a program
 * into Access and Execute slices that communicate through MAPLE queues, and
 * passes.hpp implements the software-prefetch insertion transform.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace maple::kern {

using Reg = int;
inline constexpr Reg kNoReg = -1;

enum class Op : std::uint8_t {
    Const,      ///< dst = imm
    Add,        ///< dst = a + b
    Sub,        ///< dst = a - b
    Mul,        ///< dst = a * b
    Shl,        ///< dst = a << imm
    MulF32,     ///< dst = f32(a) * f32(b)   (bit-pattern floats)
    AddF32,     ///< dst = f32(a) + f32(b)
    Load,       ///< dst = mem[a], width = size
    Store,      ///< mem[a] = b, width = size
    Prefetch,   ///< software prefetch of mem[a] into the L1
    LoopBegin,  ///< for (dst = a; dst < b; ++dst)
    LoopEnd,    ///< closes the innermost open loop
    // Decoupling ops, emitted by the slicer:
    Produce,     ///< push reg a into queue
    ProducePtr,  ///< push pointer reg a into queue (MAPLE fetches it)
    Consume,     ///< dst = pop from queue
};

struct Inst {
    Op op;
    Reg dst = kNoReg;
    Reg a = kNoReg;
    Reg b = kNoReg;
    std::uint64_t imm = 0;
    std::uint8_t size = 4;   ///< access width for Load/Store
    std::uint8_t queue = 0;  ///< queue id for Produce/Consume ops
};

/** A straight-line program with structured loops. */
struct Program {
    std::vector<Inst> code;
    int num_regs = 0;

    /** Structural checks: loop balance, register ranges. */
    bool wellFormed(std::string *why = nullptr) const;
};

/** Convenience builder used by tests, examples and the kernel library. */
class Builder {
  public:
    Reg
    reg()
    {
        return prog_.num_regs++;
    }

    Reg
    constant(std::uint64_t v)
    {
        Reg r = reg();
        prog_.code.push_back({Op::Const, r, kNoReg, kNoReg, v, 4, 0});
        return r;
    }

    Reg
    binary(Op op, Reg a, Reg b)
    {
        Reg r = reg();
        prog_.code.push_back({op, r, a, b, 0, 4, 0});
        return r;
    }

    Reg add(Reg a, Reg b) { return binary(Op::Add, a, b); }
    Reg sub(Reg a, Reg b) { return binary(Op::Sub, a, b); }
    Reg mul(Reg a, Reg b) { return binary(Op::Mul, a, b); }
    Reg mulF32(Reg a, Reg b) { return binary(Op::MulF32, a, b); }
    Reg addF32(Reg a, Reg b) { return binary(Op::AddF32, a, b); }

    Reg
    shl(Reg a, unsigned bits)
    {
        Reg r = reg();
        prog_.code.push_back({Op::Shl, r, a, kNoReg, bits, 4, 0});
        return r;
    }

    Reg
    load(Reg addr, unsigned size = 4)
    {
        Reg r = reg();
        prog_.code.push_back(
            {Op::Load, r, addr, kNoReg, 0, static_cast<std::uint8_t>(size), 0});
        return r;
    }

    void
    store(Reg addr, Reg value, unsigned size = 4)
    {
        prog_.code.push_back({Op::Store, kNoReg, addr, value, 0,
                              static_cast<std::uint8_t>(size), 0});
    }

    Reg
    loopBegin(Reg lo, Reg hi)
    {
        Reg r = reg();
        prog_.code.push_back({Op::LoopBegin, r, lo, hi, 0, 4, 0});
        return r;
    }

    void loopEnd() { prog_.code.push_back({Op::LoopEnd}); }

    Program
    take()
    {
        MAPLE_ASSERT(prog_.wellFormed(), "builder produced malformed program");
        return std::move(prog_);
    }

  private:
    Program prog_;
};

const char *opName(Op op);

/** Human-readable disassembly (tests and debugging). */
std::string disassemble(const Program &p);

}  // namespace maple::kern
