/**
 * @file
 * Automatic access/execute program slicing (Section 3.3, Figure 5).
 *
 * Mirrors the DeSC/DEC++ compiler flow the paper adapts: the program is
 * sliced into an Access program (address computation + memory access) and an
 * Execute program (value computation + stores) communicating through one
 * MAPLE queue.
 *
 *  - Indirect loads (loads whose address depends on another load's value)
 *    whose values feed only the Execute side become PRODUCE_PTR in Access
 *    and CONSUME in Execute: MAPLE fetches the data asynchronously.
 *  - Access-side loads whose values Execute also needs are loaded by Access
 *    and forwarded with PRODUCE.
 *  - Cache-friendly loads used only by Execute stay in Execute (Figure 5
 *    keeps C[i] there).
 *  - Kernels whose indirect accesses are read-modify-writes (the loaded
 *    location is also stored in the same iteration -- SPMM) *cannot* be
 *    decoupled; the slicer reports a fallback to doall, exactly as the
 *    paper describes.
 */
#pragma once

#include <string>

#include "kern/ir.hpp"

namespace maple::kern {

struct SliceResult {
    bool decoupled = false;
    std::string reason;   ///< set when decoupled == false
    Program access;
    Program execute;
    unsigned queues_used = 0;  ///< number of MAPLE queues the pair needs
};

/** Slice @p prog; on failure the result carries the fallback reason. */
SliceResult sliceProgram(const Program &prog);

/**
 * Software-prefetch insertion pass (Ainsworth & Jones-style): for each
 * indirect load B-then-A pattern inside a loop, emit code that loads
 * B[i+distance], recomputes A's address and prefetches it. Returns the
 * transformed program (the original if no pattern matched).
 */
Program insertSoftwarePrefetch(const Program &prog, unsigned distance);

}  // namespace maple::kern
