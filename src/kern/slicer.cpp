#include "kern/slicer.hpp"
#include <functional>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "sim/log.hpp"

namespace maple::kern {

namespace {

/** Per-program dataflow facts shared by the slicer and the prefetch pass. */
struct Analysis {
    const Program &prog;
    std::vector<int> def;          ///< reg -> defining instruction (or -1)
    std::vector<bool> ima;         ///< inst -> is an indirect load
    std::vector<std::set<int>> reg_load_taint;  ///< reg -> feeding load insts

    explicit Analysis(const Program &p) : prog(p)
    {
        def.assign(p.num_regs, -1);
        ima.assign(p.code.size(), false);
        reg_load_taint.assign(p.num_regs, {});

        for (size_t i = 0; i < p.code.size(); ++i) {
            const Inst &in = p.code[i];
            if (in.dst != kNoReg) {
                MAPLE_ASSERT(def[in.dst] == -1,
                             "slicer requires single-assignment registers");
                def[in.dst] = static_cast<int>(i);
            }
            // Forward load-taint propagation (code is in execution order for
            // straight-line bodies; loop back-edges cannot introduce new
            // taint sources in our single-assignment IR).
            auto taint_of = [&](Reg r) -> std::set<int> {
                return r == kNoReg ? std::set<int>{} : reg_load_taint[r];
            };
            switch (in.op) {
              case Op::Load: {
                if (!taint_of(in.a).empty())
                    ima[i] = true;  // address depends on a loaded value
                reg_load_taint[in.dst] = {static_cast<int>(i)};
                break;
              }
              case Op::Store:
              case Op::Prefetch:
              case Op::LoopEnd:
                break;
              case Op::LoopBegin:
                // Induction variables do not carry data taint even when the
                // loop *bounds* are loaded (e.g. CSR row pointers): accesses
                // strided by the induction variable are unit-stride streams,
                // not indirect accesses.
                break;
              default:
                if (in.dst != kNoReg) {
                    std::set<int> t = taint_of(in.a);
                    std::set<int> tb = taint_of(in.b);
                    t.insert(tb.begin(), tb.end());
                    reg_load_taint[in.dst] = std::move(t);
                }
                break;
            }
        }
    }

    /** Registers read by instruction @p i. */
    std::vector<Reg>
    operands(size_t i) const
    {
        const Inst &in = prog.code[i];
        std::vector<Reg> regs;
        switch (in.op) {
          case Op::Const:
            break;
          case Op::LoopEnd:
            break;
          case Op::Store:
            regs = {in.a, in.b};
            break;
          case Op::Shl:
          case Op::Prefetch:
          case Op::Produce:
          case Op::ProducePtr:
            regs = {in.a};
            break;
          case Op::Load:
            regs = {in.a};
            break;
          case Op::Consume:
            break;
          default:
            regs = {in.a, in.b};
            break;
        }
        regs.erase(std::remove(regs.begin(), regs.end(), kNoReg), regs.end());
        return regs;
    }

    /**
     * Backward closure of instructions needed to produce @p seeds, stopping
     * at registers in @p cut (their defs are replaced in the target slice).
     */
    std::set<int>
    needClosure(const std::set<Reg> &seeds, const std::set<Reg> &cut) const
    {
        std::set<int> needed;
        std::vector<Reg> work(seeds.begin(), seeds.end());
        std::set<Reg> seen;
        while (!work.empty()) {
            Reg r = work.back();
            work.pop_back();
            if (r == kNoReg || seen.count(r) || cut.count(r))
                continue;
            seen.insert(r);
            int d = def[r];
            if (d < 0)
                continue;
            needed.insert(d);
            for (Reg op : operands(d))
                work.push_back(op);
        }
        return needed;
    }
};

}  // namespace

SliceResult
sliceProgram(const Program &prog)
{
    SliceResult res;
    std::string why;
    if (!prog.wellFormed(&why)) {
        res.reason = "malformed program: " + why;
        return res;
    }
    Analysis an(prog);

    // Collect loads / stores and detect the decoupling opportunities.
    std::vector<size_t> ima_loads;
    std::set<Reg> store_addr_regs;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &in = prog.code[i];
        if (in.op == Op::Load && an.ima[i])
            ima_loads.push_back(i);
        if (in.op == Op::Store)
            store_addr_regs.insert(in.a);
    }
    if (ima_loads.empty()) {
        res.reason = "no indirect memory access found";
        return res;
    }

    // RMW detection: an indirect load whose address register is also used
    // as a store address means load-store aliasing within the iteration.
    for (size_t li : ima_loads) {
        if (store_addr_regs.count(prog.code[li].a)) {
            res.reason = "indirect access is a read-modify-write";
            return res;
        }
    }

    // Classify every load.
    //  - Terminal:      IMA whose value only Execute uses -> PRODUCE_PTR.
    //  - SharedForward: IMA needed by both sides -> Access loads + PRODUCEs.
    //  - Duplicate:     cache-friendly load needed by both sides -> both
    //                   slices perform it (cheaper than a queue transfer;
    //                   this is what the loop bounds jb/je of a CSR kernel
    //                   become).
    //  - AccessOnly / ExecuteOnly: stays in one slice.
    enum class LoadKind { Terminal, SharedForward, Duplicate, AccessOnly,
                          ExecuteOnly };
    std::map<size_t, LoadKind> load_kind;

    // A load's value is "needed by access" when it taints any load address,
    // store address, or loop bound.
    std::set<int> addr_feeding_loads;
    auto absorb = [&](Reg r) {
        if (r == kNoReg)
            return;
        for (int l : an.reg_load_taint[r])
            addr_feeding_loads.insert(l);
    };
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &in = prog.code[i];
        if (in.op == Op::Load || in.op == Op::Store)
            absorb(in.a);
        if (in.op == Op::LoopBegin) {
            absorb(in.a);
            absorb(in.b);
        }
    }

    // A load's value is "needed by execute" when it taints a store value.
    std::set<int> value_feeding_loads;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &in = prog.code[i];
        if (in.op == Op::Store) {
            for (int l : an.reg_load_taint[in.b])
                value_feeding_loads.insert(l);
        }
    }

    // Pass 1: terminal candidates, from taint facts alone.
    unsigned decoupled_count = 0;
    std::set<Reg> terminal_cut;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        if (prog.code[i].op != Op::Load)
            continue;
        bool by_access = addr_feeding_loads.count(static_cast<int>(i)) != 0;
        bool by_exec_value = value_feeding_loads.count(static_cast<int>(i)) != 0;
        if (an.ima[i] && !by_access && by_exec_value) {
            if (prog.code[i].size != 4) {
                res.reason = "indirect access wider than a queue entry";
                return res;
            }
            load_kind[i] = LoadKind::Terminal;  // -> PRODUCE_PTR / CONSUME
            terminal_cut.insert(prog.code[i].dst);
            ++decoupled_count;
        }
    }
    if (decoupled_count == 0) {
        res.reason = "no decoupleable indirect load";
        return res;
    }

    // Execute's seeds: store operands, loop bounds (the slices share the
    // loop structure), and later its own loads' addresses via the closure.
    std::set<Reg> exec_seeds;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &in = prog.code[i];
        if (in.op == Op::LoopBegin) {
            exec_seeds.insert(in.a);
            exec_seeds.insert(in.b);
        } else if (in.op == Op::Store) {
            exec_seeds.insert(in.a);
            exec_seeds.insert(in.b);
        }
    }

    // Pass 2: everything Execute can reach with terminals cut determines
    // which remaining loads it needs; loads also needed by Access become
    // SharedForward (IMA: forward through the queue) or Duplicate (cache-
    // friendly: both slices load, e.g. CSR row bounds).
    std::set<int> exec_reach = an.needClosure(exec_seeds, terminal_cut);
    std::set<Reg> exec_cut = terminal_cut;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        if (prog.code[i].op != Op::Load || load_kind.count(i))
            continue;
        bool by_access = addr_feeding_loads.count(static_cast<int>(i)) != 0;
        bool exec_needs = exec_reach.count(static_cast<int>(i)) != 0;
        if (by_access && exec_needs) {
            if (an.ima[i]) {
                if (prog.code[i].size != 4) {
                    res.reason = "forwarded value wider than a queue entry";
                    return res;
                }
                load_kind[i] = LoadKind::SharedForward;
                exec_cut.insert(prog.code[i].dst);
            } else {
                load_kind[i] = LoadKind::Duplicate;
            }
        } else if (by_access) {
            load_kind[i] = LoadKind::AccessOnly;
        } else {
            // Cache-friendly, execute-only load: stays in Execute (Fig. 5).
            load_kind[i] = LoadKind::ExecuteOnly;
        }
    }

    // Final need sets with the complete cut set.
    std::set<Reg> access_seeds;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &in = prog.code[i];
        if (in.op == Op::LoopBegin) {
            access_seeds.insert(in.a);
            access_seeds.insert(in.b);
        } else if (in.op == Op::Load) {
            if (load_kind[i] != LoadKind::ExecuteOnly)
                access_seeds.insert(in.a);
        }
    }
    std::set<int> access_need = an.needClosure(access_seeds, {});
    std::set<int> exec_need = an.needClosure(exec_seeds, exec_cut);

    // Emit both slices, preserving instruction (and therefore queue) order.
    res.access.num_regs = prog.num_regs;
    res.execute.num_regs = prog.num_regs;
    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &in = prog.code[i];
        switch (in.op) {
          case Op::LoopBegin:
          case Op::LoopEnd:
            res.access.code.push_back(in);
            res.execute.code.push_back(in);
            break;
          case Op::Store:
            res.execute.code.push_back(in);
            break;
          case Op::Prefetch:
            break;  // slicing supersedes software prefetching
          case Op::Load:
            switch (load_kind[i]) {
              case LoadKind::Terminal: {
                Inst pp{Op::ProducePtr, kNoReg, in.a, kNoReg, 0, in.size, 0};
                res.access.code.push_back(pp);
                Inst cons{Op::Consume, in.dst, kNoReg, kNoReg, 0, in.size, 0};
                res.execute.code.push_back(cons);
                break;
              }
              case LoadKind::SharedForward: {
                res.access.code.push_back(in);
                Inst pr{Op::Produce, kNoReg, in.dst, kNoReg, 0, in.size, 0};
                res.access.code.push_back(pr);
                Inst cons{Op::Consume, in.dst, kNoReg, kNoReg, 0, in.size, 0};
                res.execute.code.push_back(cons);
                break;
              }
              case LoadKind::Duplicate:
                res.access.code.push_back(in);
                res.execute.code.push_back(in);
                break;
              case LoadKind::AccessOnly:
                res.access.code.push_back(in);
                break;
              case LoadKind::ExecuteOnly:
                res.execute.code.push_back(in);
                break;
            }
            break;
          default:
            if (access_need.count(static_cast<int>(i)))
                res.access.code.push_back(in);
            if (exec_need.count(static_cast<int>(i)))
                res.execute.code.push_back(in);
            break;
        }
    }

    MAPLE_ASSERT(res.access.wellFormed() && res.execute.wellFormed(),
                 "slicer emitted malformed code");
    res.decoupled = true;
    res.queues_used = 1;
    return res;
}

Program
insertSoftwarePrefetch(const Program &prog, unsigned distance)
{
    Analysis an(prog);

    // Find the canonical pattern: an index load whose address is
    // base + f(loop_var), feeding exactly the address of an indirect load.
    // For each such pair, emit (at the indirect load):
    //   i' = i + distance; addrB' = clone(addrB)[i := i'];
    //   idx' = load addrB'; addrA' = clone(addrA)[idx := idx'];
    //   prefetch addrA'
    Program out;
    out.num_regs = prog.num_regs;

    // Helper: clone the def-chain of @p r with substitution map @p sub,
    // appending cloned instructions to @p out. Returns the cloned register.
    std::function<Reg(Reg, std::map<Reg, Reg> &)> clone =
        [&](Reg r, std::map<Reg, Reg> &sub) -> Reg {
        if (auto it = sub.find(r); it != sub.end())
            return it->second;
        int d = an.def[r];
        if (d < 0)
            return r;  // undefined (external) register: use as-is
        const Inst &in = prog.code[d];
        if (in.op == Op::LoopBegin)
            return r;  // loop vars are only replaced via the substitution map
        Inst copy = in;
        copy.dst = out.num_regs++;
        if (copy.a != kNoReg && in.op != Op::Const)
            copy.a = clone(in.a, sub);
        if (copy.b != kNoReg)
            copy.b = clone(in.b, sub);
        out.code.push_back(copy);
        sub[r] = copy.dst;
        return copy.dst;
    };

    for (size_t i = 0; i < prog.code.size(); ++i) {
        const Inst &in = prog.code[i];
        if (in.op == Op::Load && an.ima[i]) {
            // The taint set of the address names the index load(s).
            const std::set<int> &feeders = an.reg_load_taint[in.a];
            if (feeders.size() == 1) {
                size_t bi = static_cast<size_t>(*feeders.begin());
                const Inst &bload = prog.code[bi];
                // Find the loop variable the index-load address depends on.
                Reg loop_var = kNoReg;
                for (size_t k = 0; k < prog.code.size(); ++k) {
                    if (prog.code[k].op == Op::LoopBegin) {
                        std::map<Reg, Reg> probe{{prog.code[k].dst, prog.code[k].dst}};
                        // Cheap dependence test: does addr's chain reach dst?
                        std::set<Reg> seen;
                        std::vector<Reg> work{bload.a};
                        while (!work.empty()) {
                            Reg r = work.back();
                            work.pop_back();
                            if (r == kNoReg || seen.count(r))
                                continue;
                            seen.insert(r);
                            if (r == prog.code[k].dst) {
                                loop_var = r;
                                break;
                            }
                            int d = an.def[r];
                            if (d >= 0)
                                for (Reg op : an.operands(d))
                                    work.push_back(op);
                        }
                        if (loop_var != kNoReg)
                            break;
                    }
                }
                if (loop_var != kNoReg) {
                    // i' = i + distance
                    Reg dist = out.num_regs++;
                    out.code.push_back({Op::Const, dist, kNoReg, kNoReg,
                                        distance, 4, 0});
                    Reg ip = out.num_regs++;
                    out.code.push_back({Op::Add, ip, loop_var, dist, 0, 4, 0});
                    std::map<Reg, Reg> sub{{loop_var, ip}};
                    Reg baddr2 = clone(bload.a, sub);
                    Reg idx2 = out.num_regs++;
                    out.code.push_back({Op::Load, idx2, baddr2, kNoReg, 0,
                                        bload.size, 0});
                    std::map<Reg, Reg> sub2{{bload.dst, idx2}};
                    Reg aaddr2 = clone(in.a, sub2);
                    out.code.push_back({Op::Prefetch, kNoReg, aaddr2, kNoReg,
                                        0, in.size, 0});
                }
            }
        }
        out.code.push_back(in);
    }
    MAPLE_ASSERT(out.wellFormed(), "prefetch pass emitted malformed code");
    return out;
}

}  // namespace maple::kern
