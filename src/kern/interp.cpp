#include "kern/interp.hpp"
#include <cstring>

#include <bit>

namespace maple::kern {

namespace {

std::uint64_t
aluEval(const Inst &in, std::uint64_t a, std::uint64_t b)
{
    auto f32 = [](std::uint64_t v) {
        return std::bit_cast<float>(static_cast<std::uint32_t>(v));
    };
    auto bits = [](float f) {
        return static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(f));
    };
    switch (in.op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::Mul: return a * b;
      case Op::Shl: return a << in.imm;
      case Op::MulF32: return bits(f32(a) * f32(b));
      case Op::AddF32: return bits(f32(a) + f32(b));
      default: MAPLE_PANIC("not an ALU op: %s", opName(in.op));
    }
}

struct LoopFrame {
    size_t begin_pc;  ///< index of the LoopBegin instruction
};

}  // namespace

sim::Task<void>
interpret(const Program &prog, ExecEnv env)
{
    MAPLE_ASSERT(env.core != nullptr, "interpreter needs a core");
    MAPLE_ASSERT(prog.wellFormed(), "refusing to run malformed program");
    cpu::Core &core = *env.core;
    std::vector<std::uint64_t> regs(prog.num_regs, 0);
    std::vector<LoopFrame> loops;

    size_t pc = 0;
    while (pc < prog.code.size()) {
        const Inst &in = prog.code[pc];
        switch (in.op) {
          case Op::Const:
            co_await core.compute(1);
            regs[in.dst] = in.imm;
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
          case Op::MulF32:
          case Op::AddF32:
            co_await core.compute(1);
            regs[in.dst] = aluEval(in, regs[in.a], regs[in.b]);
            break;
          case Op::Shl:
            co_await core.compute(1);
            regs[in.dst] = aluEval(in, regs[in.a], 0);
            break;
          case Op::Load:
            regs[in.dst] = co_await core.load(regs[in.a], in.size);
            break;
          case Op::Store:
            co_await core.store(regs[in.a], regs[in.b], in.size);
            break;
          case Op::Prefetch:
            co_await core.prefetchL1(regs[in.a]);
            break;
          case Op::LoopBegin:
            co_await core.compute(1);  // induction init / bound compare
            regs[in.dst] = regs[in.a];
            if (regs[in.dst] >= regs[in.b]) {
                // Zero-trip loop: skip to the matching LoopEnd.
                int depth = 1;
                while (depth > 0) {
                    ++pc;
                    MAPLE_ASSERT(pc < prog.code.size());
                    if (prog.code[pc].op == Op::LoopBegin)
                        ++depth;
                    if (prog.code[pc].op == Op::LoopEnd)
                        --depth;
                }
            } else {
                loops.push_back(LoopFrame{pc});
            }
            break;
          case Op::LoopEnd: {
            co_await core.compute(1);  // increment + backedge compare
            MAPLE_ASSERT(!loops.empty());
            const Inst &head = prog.code[loops.back().begin_pc];
            if (++regs[head.dst] < regs[head.b]) {
                pc = loops.back().begin_pc;  // take the backedge
            } else {
                loops.pop_back();
            }
            break;
          }
          case Op::Produce:
            MAPLE_ASSERT(env.api, "decoupling op without a MAPLE binding");
            co_await env.api->produce(core, env.queue_base + in.queue, regs[in.a]);
            break;
          case Op::ProducePtr:
            MAPLE_ASSERT(env.api, "decoupling op without a MAPLE binding");
            co_await core.compute(1);  // address materialization
            co_await env.api->producePtr(core, env.queue_base + in.queue,
                                         regs[in.a]);
            break;
          case Op::Consume:
            MAPLE_ASSERT(env.api, "decoupling op without a MAPLE binding");
            regs[in.dst] =
                co_await env.api->consume(core, env.queue_base + in.queue);
            break;
        }
        ++pc;
    }
    co_await core.storeFence();
}

void
interpretFunctional(const Program &prog, os::Process &proc)
{
    MAPLE_ASSERT(prog.wellFormed(), "malformed program");
    std::vector<std::uint64_t> regs(prog.num_regs, 0);
    std::vector<LoopFrame> loops;

    size_t pc = 0;
    while (pc < prog.code.size()) {
        const Inst &in = prog.code[pc];
        switch (in.op) {
          case Op::Const:
            regs[in.dst] = in.imm;
            break;
          case Op::Add:
          case Op::Sub:
          case Op::Mul:
          case Op::MulF32:
          case Op::AddF32:
            regs[in.dst] = aluEval(in, regs[in.a], regs[in.b]);
            break;
          case Op::Shl:
            regs[in.dst] = aluEval(in, regs[in.a], 0);
            break;
          case Op::Load: {
            std::uint64_t v = 0;
            std::vector<std::uint8_t> buf(in.size);
            proc.readBytes(regs[in.a], buf.data(), in.size);
            std::memcpy(&v, buf.data(), in.size);
            regs[in.dst] = v;
            break;
          }
          case Op::Store:
            proc.writeBytes(regs[in.a], &regs[in.b], in.size);
            break;
          case Op::Prefetch:
            break;  // no functional effect
          case Op::LoopBegin:
            regs[in.dst] = regs[in.a];
            if (regs[in.dst] >= regs[in.b]) {
                int depth = 1;
                while (depth > 0) {
                    ++pc;
                    if (prog.code[pc].op == Op::LoopBegin)
                        ++depth;
                    if (prog.code[pc].op == Op::LoopEnd)
                        --depth;
                }
            } else {
                loops.push_back(LoopFrame{pc});
            }
            break;
          case Op::LoopEnd: {
            const Inst &head = prog.code[loops.back().begin_pc];
            if (++regs[head.dst] < regs[head.b])
                pc = loops.back().begin_pc;
            else
                loops.pop_back();
            break;
          }
          default:
            MAPLE_PANIC("decoupling ops unsupported in functional mode");
        }
        ++pc;
    }
}

}  // namespace maple::kern
