/**
 * @file
 * Sparse Matrix-Matrix multiplication, layer-wise (Mofrad et al., HPEC'19):
 * Y = A * W with A, W sparse (CSR) and Y a dense accumulator.
 *
 * For each nonzero a = A[r][k], the kernel walks W's row k and accumulates
 * Y[r][c] += a * W[k][c]. The indirect accesses are read-modify-writes on Y
 * (and the indirect W row-pointer lookups), so -- as the paper observes --
 * the kernel *cannot be decoupled*: the decoupling techniques fall back to
 * doall parallelism. Prefetching still applies: LIMA speculatively pushes
 * the Y[r][W.col[t]] lines into the LLC ahead of the RMW burst.
 */
#include <optional>

#include "baselines/droplet.hpp"
#include "workloads/workload.hpp"

namespace maple::app {

namespace {

struct SpmmSim {
    SimCsr a;
    SimCsr w;
    SimArray<float> y;  ///< dim x dim dense accumulator
    std::uint32_t dim = 0;
};

sim::Addr
yAddr(const SpmmSim &s, std::uint64_t r, std::uint32_t c)
{
    return s.y.addr(r * s.dim + c);
}

/** Inner kernel for one A-row range; optionally software-prefetching. */
sim::Task<void>
doallWorker(cpu::Core &core, SpmmSim &s, Chunk rows, unsigned sw_prefetch_dist)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.a.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.a.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto k = static_cast<std::uint32_t>(
                co_await core.load(s.a.col_idx.addr(j), 4));
            float av = f32FromBits(co_await core.load(s.a.vals.addr(j), 4));
            // Indirect row-pointer lookups into W.
            auto wb = static_cast<std::uint32_t>(
                co_await core.load(s.w.row_ptr.addr(k), 4));
            auto we = static_cast<std::uint32_t>(
                co_await core.load(s.w.row_ptr.addr(k + 1), 4));
            for (std::uint32_t t = wb; t < we; ++t) {
                if (sw_prefetch_dist && t + sw_prefetch_dist < we) {
                    auto cd = static_cast<std::uint32_t>(co_await core.load(
                        s.w.col_idx.addr(t + sw_prefetch_dist), 4));
                    co_await core.compute(2);
                    co_await core.prefetchL1(yAddr(s, r, cd));
                }
                auto c = static_cast<std::uint32_t>(
                    co_await core.load(s.w.col_idx.addr(t), 4));
                float wv = f32FromBits(co_await core.load(s.w.vals.addr(t), 4));
                // Read-modify-write on the dense accumulator: this is the
                // dependence that defeats decoupling.
                float y = f32FromBits(co_await core.load(yAddr(s, r, c), 4));
                co_await core.compute(1);
                co_await core.store(yAddr(s, r, c), bitsFromF32(y + av * wv), 4);
            }
        }
        jb = je;
    }
}

/** LIMA variant: speculative LLC prefetch of the Y lines of each W row. */
sim::Task<void>
limaWorker(cpu::Core &core, SpmmSim &s, core::MapleApi &api)
{
    const std::uint32_t rows = s.dim;
    auto jb = static_cast<std::uint32_t>(co_await core.load(s.a.row_ptr.addr(0), 4));
    for (std::uint32_t r = 0; r < rows; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.a.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto k = static_cast<std::uint32_t>(
                co_await core.load(s.a.col_idx.addr(j), 4));
            float av = f32FromBits(co_await core.load(s.a.vals.addr(j), 4));
            auto wb = static_cast<std::uint32_t>(
                co_await core.load(s.w.row_ptr.addr(k), 4));
            auto we = static_cast<std::uint32_t>(
                co_await core.load(s.w.row_ptr.addr(k + 1), 4));
            // One LIMA call covers the whole burst of Y[r][W.col[t]] RMWs.
            if (we > wb) {
                core::LimaRequest req;
                req.a_base = yAddr(s, r, 0);
                req.b_base = s.w.col_idx.addr(0);
                req.start = wb;
                req.end = we;
                req.speculative = true;
                co_await api.lima(core, req);
            }
            for (std::uint32_t t = wb; t < we; ++t) {
                auto c = static_cast<std::uint32_t>(
                    co_await core.load(s.w.col_idx.addr(t), 4));
                float wv = f32FromBits(co_await core.load(s.w.vals.addr(t), 4));
                float y = f32FromBits(co_await core.load(yAddr(s, r, c), 4));
                co_await core.compute(1);
                co_await core.store(yAddr(s, r, c), bitsFromF32(y + av * wv), 4);
            }
        }
        jb = je;
    }
}

class Spmm final : public Workload {
  public:
    Spmm(std::uint32_t dim, std::uint32_t nnz_per_row, std::uint64_t seed)
        : a_(makeUniformSparse(dim, dim, nnz_per_row, seed)),
          w_(makeUniformSparse(dim, dim, nnz_per_row, seed ^ 0xbeef))
    {
        golden_.assign(std::uint64_t(dim) * dim, 0.0f);
        for (std::uint32_t r = 0; r < dim; ++r) {
            for (std::uint32_t j = a_.row_ptr[r]; j < a_.row_ptr[r + 1]; ++j) {
                std::uint32_t k = a_.col_idx[j];
                float av = a_.vals[j];
                for (std::uint32_t t = w_.row_ptr[k]; t < w_.row_ptr[k + 1]; ++t)
                    golden_[std::uint64_t(r) * dim + w_.col_idx[t]] += av * w_.vals[t];
            }
        }
    }

    std::string name() const override { return "spmm"; }
    RunResult run(const RunConfig &cfg) override;

  private:
    SparseMatrix a_, w_;
    std::vector<float> golden_;
};

RunResult
Spmm::run(const RunConfig &cfg)
{
    RunResult res;
    res.workload = name();
    res.technique = techniqueName(cfg.tech);

    // RMW accumulation defeats decoupling: the compiler pass falls back to
    // doall for those techniques (keeping the same thread count).
    Technique tech = cfg.tech;
    if (tech == Technique::MapleDecouple || tech == Technique::SwDecouple ||
        tech == Technique::Desc) {
        tech = Technique::Doall;
        res.fell_back_to_doall = true;
    }

    unsigned threads = tech == Technique::NoPrefetch ||
                               tech == Technique::SwPrefetch ||
                               tech == Technique::LimaPrefetch
                           ? 1
                           : cfg.threads;

    soc::SocConfig scfg = cfg.soc;
    scfg.num_cores = std::max(scfg.num_cores, threads);
    soc::Soc soc(scfg);
    os::Process &proc = soc.createProcess("spmm");

    SpmmSim s;
    s.a = SimCsr::upload(proc, a_, true);
    s.w = SimCsr::upload(proc, w_, true);
    s.y = SimArray<float>(proc, golden_.size(), "y");
    s.dim = a_.rows;

    std::optional<core::MapleApi> api;
    std::optional<baselines::DropletPrefetcher> droplet;
    if (tech == Technique::LimaPrefetch) {
        api.emplace(core::MapleApi::attach(proc, soc.maple()));
    } else if (tech == Technique::Droplet) {
        // Index chain A.col -> W.row_ptr: prefetch the W row bounds.
        droplet.emplace(soc);
        droplet->bind(proc, s.a.col_idx.addr(0), s.a.col_idx.size(), 4,
                      s.w.row_ptr.addr(0), 4);
    }

    std::vector<sim::Join> joins;
    switch (tech) {
      case Technique::Doall:
      case Technique::NoPrefetch:
      case Technique::Droplet:
        for (unsigned t = 0; t < threads; ++t)
            joins.push_back(sim::spawn(doallWorker(
                soc.core(t), s, chunkOf(s.dim, t, threads), 0)));
        break;
      case Technique::SwPrefetch:
        joins.push_back(sim::spawn(doallWorker(
            soc.core(0), s, Chunk{0, s.dim}, std::max(2u, cfg.prefetch_distance / 2))));
        break;
      case Technique::LimaPrefetch:
        joins.push_back(sim::spawn(limaWorker(soc.core(0), s, *api)));
        break;
      default:
        MAPLE_PANIC("unreachable: decoupling already lowered to doall");
    }

    res.cycles = soc.run(std::move(joins), cfg.max_cycles);

    std::vector<float> y = s.y.download();
    res.valid = true;
    for (size_t i = 0; i < golden_.size(); ++i) {
        res.checksum += bitsFromF32(y[i]);
        if (bitsFromF32(y[i]) != bitsFromF32(golden_[i]))
            res.valid = false;
    }
    collectCoreStats(soc, res);
    return res;
}

}  // namespace

std::unique_ptr<Workload>
makeSpmm(std::uint32_t dim, std::uint32_t nnz_per_row, std::uint64_t seed)
{
    return std::make_unique<Spmm>(dim, nnz_per_row, seed);
}

}  // namespace maple::app
