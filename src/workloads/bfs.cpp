/**
 * @file
 * Breadth-First Search over an R-MAT graph (CSR adjacency), level-
 * synchronous with shared frontiers.
 *
 * The irregular access is dist[col_idx[j]]: neighbor IDs stream sequentially
 * out of the adjacency list but the distance array is sampled at power-law-
 * scattered offsets. Discovered vertices are appended to the next frontier
 * with an atomic fetch-and-add. A vertex can be appended more than once per
 * level (benign: its distance is already final) -- the same relaxation the
 * paper's OpenMP implementation and MAPLE's non-coherent scratchpad rely on.
 */
#include <optional>

#include "baselines/desc.hpp"
#include "baselines/droplet.hpp"
#include "baselines/sw_queue.hpp"
#include "sim/sync.hpp"
#include "workloads/workload.hpp"

namespace maple::app {

namespace {

constexpr std::uint32_t kInf = 0xffffffffu;

struct BfsSim {
    SimCsr g;                       ///< adjacency (no vals)
    SimArray<std::uint32_t> dist;
    SimArray<std::uint32_t> frontier_a, frontier_b;
    sim::Addr next_tail = 0;        ///< shared append counter (atomic)
    std::uint32_t vertices = 0;
    std::uint32_t root = 0;
};

/** Host-shared level state, updated by thread 0 between barriers. */
struct LevelState {
    std::uint64_t count = 0;   ///< size of the current frontier
    bool cur_is_a = true;
    std::uint32_t level = 0;
};

sim::Addr
curFrontier(const BfsSim &s, const LevelState &ls, std::uint64_t i)
{
    return ls.cur_is_a ? s.frontier_a.addr(i) : s.frontier_b.addr(i);
}

sim::Addr
nextFrontier(const BfsSim &s, const LevelState &ls, std::uint64_t i)
{
    return ls.cur_is_a ? s.frontier_b.addr(i) : s.frontier_a.addr(i);
}

/** Thread-0 bookkeeping between levels (runs between the two barriers). */
sim::Task<void>
advanceLevel(cpu::Core &core, BfsSim &s, LevelState &ls)
{
    std::uint64_t produced = co_await core.load(s.next_tail, 8);
    co_await core.store(s.next_tail, 0, 8);
    co_await core.storeFence();
    ls.count = produced;
    ls.cur_is_a = !ls.cur_is_a;
    ++ls.level;
}

/**
 * Process edges of frontier[chunk]; @p fetch_dist supplies the IMA value for
 * dist[v] (doall: plain load; decoupled: consume from a queue), so all
 * variants share the update logic.
 */
template <typename FetchDist>
sim::Task<void>
expandChunk(cpu::Core &core, BfsSim &s, LevelState &ls, Chunk chunk,
            FetchDist &&fetch_dist, unsigned sw_prefetch_dist = 0)
{
    for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
        auto u = static_cast<std::uint32_t>(
            co_await core.load(curFrontier(s, ls, i), 4));
        auto jb = static_cast<std::uint32_t>(
            co_await core.load(s.g.row_ptr.addr(u), 4));
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.g.row_ptr.addr(u + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            if (sw_prefetch_dist && j + sw_prefetch_dist < je) {
                auto vd = static_cast<std::uint32_t>(co_await core.load(
                    s.g.col_idx.addr(j + sw_prefetch_dist), 4));
                co_await core.compute(4);
                co_await core.prefetchL1(s.dist.addr(vd));
            }
            auto v = static_cast<std::uint32_t>(
                co_await core.load(s.g.col_idx.addr(j), 4));
            std::uint32_t dv = co_await fetch_dist(core, j, v);
            co_await core.compute(1);
            if (dv == kInf) {
                co_await core.store(s.dist.addr(v), ls.level + 1, 4);
                std::uint64_t idx = co_await core.amoAdd(s.next_tail, 1, 8);
                co_await core.store(nextFrontier(s, ls, idx), v, 4);
            }
        }
    }
}

/** Plain-load dist fetch (doall / droplet / sw-prefetch). */
struct LoadFetch {
    BfsSim &s;

    sim::Task<std::uint32_t>
    operator()(cpu::Core &core, std::uint32_t, std::uint32_t v) const
    {
        co_return static_cast<std::uint32_t>(
            co_await core.load(s.dist.addr(v), 4));
    }
};

/**
 * One worker thread of the level-synchronous loop.
 *
 * @p make_fetch and @p prologue are taken by value: callers pass temporaries
 * and this coroutine outlives the spawning full-expression, so reference
 * parameters would dangle at the first resume.
 */
template <typename MakeFetch, typename PerChunkPrologue>
sim::Task<void>
bfsWorker(cpu::Core &core, BfsSim &s, LevelState &ls, sim::Barrier &bar,
          unsigned t, unsigned threads, MakeFetch make_fetch,
          PerChunkPrologue prologue, unsigned sw_prefetch_dist = 0)
{
    while (ls.count > 0) {
        Chunk chunk = chunkOf(ls.count, t, threads);
        co_await prologue(core, chunk);
        co_await expandChunk(core, s, ls, chunk, make_fetch, sw_prefetch_dist);
        co_await core.storeFence();  // all appends visible before the swap
        co_await bar.wait();
        if (t == 0)
            co_await advanceLevel(core, s, ls);
        co_await bar.wait();
    }
}

struct NoPrologue {
    sim::Task<void> operator()(cpu::Core &, Chunk) const { co_return; }
};

// ---------------------------------------------------------------------------
// MAPLE decoupling: the Access thread re-walks the same (u, j) sequence and
// produces dist pointers; regular-pattern data (frontier, row_ptr, col_idx)
// is loaded from the caches by both threads.
// ---------------------------------------------------------------------------

sim::Task<void>
mapleAccess(cpu::Core &core, BfsSim &s, LevelState &ls, sim::Barrier &bar,
            core::MapleApi &api, unsigned q, unsigned pair, unsigned pairs)
{
    while (ls.count > 0) {
        Chunk chunk = chunkOf(ls.count, pair, pairs);
        for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
            auto u = static_cast<std::uint32_t>(
                co_await core.load(curFrontier(s, ls, i), 4));
            auto jb = static_cast<std::uint32_t>(
                co_await core.load(s.g.row_ptr.addr(u), 4));
            auto je = static_cast<std::uint32_t>(
                co_await core.load(s.g.row_ptr.addr(u + 1), 4));
            for (std::uint32_t j = jb; j < je; ++j) {
                auto v = static_cast<std::uint32_t>(
                    co_await core.load(s.g.col_idx.addr(j), 4));
                co_await core.compute(1);
                co_await api.producePtr(core, q, s.dist.addr(v));
            }
        }
        co_await core.storeFence();
        co_await bar.wait();  // Execute's thread-0 does the bookkeeping
        co_await bar.wait();
    }
}

sim::Task<void>
mapleExecute(cpu::Core &core, BfsSim &s, LevelState &ls, sim::Barrier &bar,
             core::MapleApi &api, unsigned q, unsigned pair, unsigned pairs,
             bool bookkeeper)
{
    while (ls.count > 0) {
        Chunk chunk = chunkOf(ls.count, pair, pairs);
        auto fetch = [&](cpu::Core &c, std::uint32_t,
                         std::uint32_t) -> sim::Task<std::uint32_t> {
            co_return static_cast<std::uint32_t>(co_await api.consume(c, q));
        };
        co_await expandChunk(core, s, ls, chunk, fetch);
        co_await core.storeFence();
        co_await bar.wait();
        if (bookkeeper)
            co_await advanceLevel(core, s, ls);
        co_await bar.wait();
    }
}

// ---------------------------------------------------------------------------
// Shared-memory decoupling
// ---------------------------------------------------------------------------

sim::Task<void>
swqAccess(cpu::Core &core, BfsSim &s, LevelState &ls, sim::Barrier &bar,
          baselines::SwQueue &swq, unsigned pair, unsigned pairs)
{
    while (ls.count > 0) {
        Chunk chunk = chunkOf(ls.count, pair, pairs);
        for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
            auto u = static_cast<std::uint32_t>(
                co_await core.load(curFrontier(s, ls, i), 4));
            auto jb = static_cast<std::uint32_t>(
                co_await core.load(s.g.row_ptr.addr(u), 4));
            auto je = static_cast<std::uint32_t>(
                co_await core.load(s.g.row_ptr.addr(u + 1), 4));
            for (std::uint32_t j = jb; j < je; ++j) {
                auto v = static_cast<std::uint32_t>(
                    co_await core.load(s.g.col_idx.addr(j), 4));
                std::uint64_t dv = co_await core.load(s.dist.addr(v), 4);
                co_await swq.produce(core, dv);
            }
        }
        co_await core.storeFence();
        co_await bar.wait();
        co_await bar.wait();
    }
}

sim::Task<void>
swqExecute(cpu::Core &core, BfsSim &s, LevelState &ls, sim::Barrier &bar,
           baselines::SwQueue &swq, unsigned pair, unsigned pairs, bool bookkeeper)
{
    while (ls.count > 0) {
        Chunk chunk = chunkOf(ls.count, pair, pairs);
        auto fetch = [&](cpu::Core &c, std::uint32_t,
                         std::uint32_t) -> sim::Task<std::uint32_t> {
            co_return static_cast<std::uint32_t>(co_await swq.consume(c));
        };
        co_await expandChunk(core, s, ls, chunk, fetch);
        co_await core.storeFence();
        co_await bar.wait();
        if (bookkeeper)
            co_await advanceLevel(core, s, ls);
        co_await bar.wait();
    }
}

// ---------------------------------------------------------------------------
// DeSC: Compute has no memory visibility. Supply streams (v, dist[v]) pairs
// through the architectural queue; Compute sends discovered stores back, and
// Supply performs both the store and the frontier append. Supply cannot
// start the next level until Compute drains -- the loss of runahead the
// paper describes for BFS.
// ---------------------------------------------------------------------------

sim::Task<bool> drainDescStores(cpu::Core &core, BfsSim &s, LevelState &ls,
                                baselines::DescQueue &dq, bool all);

sim::Task<void>
descSupply(sim::EventQueue &eq, cpu::Core &core, BfsSim &s, LevelState &ls,
           sim::Barrier &bar, baselines::DescQueue &dq, unsigned pair,
           unsigned pairs, const std::uint32_t *exec_level,
           const std::uint64_t *edges_done, bool bookkeeper)
{
    while (ls.count > 0) {
        Chunk chunk = chunkOf(ls.count, pair, pairs);
        std::uint64_t produced_edges = 0;
        for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
            auto u = static_cast<std::uint32_t>(
                co_await core.load(curFrontier(s, ls, i), 4));
            auto jb = static_cast<std::uint32_t>(
                co_await core.load(s.g.row_ptr.addr(u), 4));
            auto je = static_cast<std::uint32_t>(
                co_await core.load(s.g.row_ptr.addr(u + 1), 4));
            co_await dq.produceValue(core, je - jb);
            for (std::uint32_t j = jb; j < je; ++j) {
                auto v = static_cast<std::uint32_t>(
                    co_await core.load(s.g.col_idx.addr(j), 4));
                co_await dq.produceValue(core, v);
                // Loss of decoupling: every prior edge *may* have stored to
                // dist[] (Compute decides), so sequential semantics force
                // this terminal load to wait until Compute has retired all
                // program-order-prior edges and their stores are performed.
                // This is why DeSC loses its runahead on BFS (Figure 12) --
                // MAPLE's software contract (stale reads are benign, updates
                // commit at the epoch barrier) removes the constraint.
                while (*edges_done < produced_edges) {
                    if (!co_await drainDescStores(core, s, ls, dq, false))
                        co_await sim::delay(eq, 10);
                }
                co_await drainDescStores(core, s, ls, dq, /*all=*/true);
                co_await dq.produceLoad(core, s.dist.addr(v), 4);
                ++produced_edges;
            }
        }
        co_await dq.produceValue(core, kInf);  // level-end sentinel
        // Serve Compute until it finishes the level (loss of runahead).
        while (*exec_level <= ls.level)
            if (!co_await drainDescStores(core, s, ls, dq, false))
                co_await sim::delay(eq, 20);
        co_await drainDescStores(core, s, ls, dq, /*all=*/true);
        co_await core.storeFence();
        co_await bar.wait();
        if (bookkeeper)
            co_await advanceLevel(core, s, ls);
        co_await bar.wait();
    }
}

/** Perform pending Compute stores; dist stores also append the vertex. */
sim::Task<bool>
drainDescStores(cpu::Core &core, BfsSim &s, LevelState &ls,
                baselines::DescQueue &dq, bool all)
{
    bool any = false;
    do {
        auto st = co_await dq.takeStore(core);
        if (!st)
            co_return any;
        any = true;
        co_await core.store(st->first, st->second, 4);
        sim::Addr dist0 = s.dist.addr(0);
        if (st->first >= dist0 && st->first < s.dist.addr(s.vertices)) {
            auto v = static_cast<std::uint32_t>((st->first - dist0) / 4);
            std::uint64_t idx = co_await core.amoAdd(s.next_tail, 1, 8);
            co_await core.store(nextFrontier(s, ls, idx), v, 4);
        }
    } while (all);
    co_return any;
}

sim::Task<void>
descCompute(cpu::Core &core, BfsSim &s, LevelState &ls, sim::Barrier &bar,
            baselines::DescQueue &dq, std::uint32_t *exec_level,
            std::uint64_t *edges_done)
{
    while (ls.count > 0) {
        *edges_done = 0;
        for (;;) {
            std::uint64_t n = co_await dq.consume(core);
            if (n == kInf)
                break;  // level end
            for (std::uint64_t j = 0; j < n; ++j) {
                auto v = static_cast<std::uint32_t>(co_await dq.consume(core));
                auto dv = static_cast<std::uint32_t>(co_await dq.consume(core));
                co_await core.compute(1);
                // Discovery: ship the dist store back; Supply performs it
                // and turns it into a frontier append.
                if (dv == kInf)
                    co_await dq.produceStore(core, s.dist.addr(v), ls.level + 1);
                ++*edges_done;  // retires the edge (ordering token)
            }
        }
        ++*exec_level;
        co_await bar.wait();
        co_await bar.wait();
    }
}

// ---------------------------------------------------------------------------
// LIMA prefetch: one LIMA per frontier vertex, issued dist_v vertices ahead.
// ---------------------------------------------------------------------------

sim::Task<std::uint64_t> issueLima(cpu::Core &core, BfsSim &s, LevelState &ls,
                                   core::MapleApi &api, unsigned q,
                                   std::uint64_t i);

sim::Task<void>
limaWorker(cpu::Core &core, BfsSim &s, LevelState &ls, sim::Barrier &bar,
           core::MapleApi &api, unsigned q, unsigned dist_v)
{
    while (ls.count > 0) {
        Chunk chunk{0, ls.count};
        // Prologue: LIMA for the first dist_v vertices.
        std::uint64_t issued = std::min<std::uint64_t>(dist_v, ls.count);
        std::uint64_t queued_elems = 0;
        for (std::uint64_t i = 0; i < issued; ++i)
            queued_elems += co_await issueLima(core, s, ls, api, q, i);
        std::uint64_t consumed = 0;

        for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
            if (issued < ls.count) {
                queued_elems += co_await issueLima(core, s, ls, api, q, issued);
                ++issued;
            }
            auto u = static_cast<std::uint32_t>(
                co_await core.load(curFrontier(s, ls, i), 4));
            auto jb = static_cast<std::uint32_t>(
                co_await core.load(s.g.row_ptr.addr(u), 4));
            auto je = static_cast<std::uint32_t>(
                co_await core.load(s.g.row_ptr.addr(u + 1), 4));
            for (std::uint32_t j = jb; j < je; ++j) {
                auto v = static_cast<std::uint32_t>(
                    co_await core.load(s.g.col_idx.addr(j), 4));
                auto dv = static_cast<std::uint32_t>(co_await api.consume(core, q));
                ++consumed;
                co_await core.compute(1);
                if (dv == kInf) {
                    co_await core.store(s.dist.addr(v), ls.level + 1, 4);
                    std::uint64_t idx = co_await core.amoAdd(s.next_tail, 1, 8);
                    co_await core.store(nextFrontier(s, ls, idx), v, 4);
                }
            }
        }
        MAPLE_ASSERT(consumed == queued_elems, "LIMA stream drift");
        co_await core.storeFence();
        co_await bar.wait();
        co_await advanceLevel(core, s, ls);
        co_await bar.wait();
    }
}

/** Issue one LIMA covering frontier vertex @p i's adjacency; returns #edges. */
sim::Task<std::uint64_t>
issueLima(cpu::Core &core, BfsSim &s, LevelState &ls, core::MapleApi &api,
          unsigned q, std::uint64_t i)
{
    auto u = static_cast<std::uint32_t>(
        co_await core.load(curFrontier(s, ls, i), 4));
    auto jb = static_cast<std::uint32_t>(co_await core.load(s.g.row_ptr.addr(u), 4));
    auto je = static_cast<std::uint32_t>(
        co_await core.load(s.g.row_ptr.addr(u + 1), 4));
    if (je > jb) {
        core::LimaRequest req;
        req.a_base = s.dist.addr(0);
        req.b_base = s.g.col_idx.addr(0);
        req.start = jb;
        req.end = je;
        req.target_queue = q;
        co_await api.lima(core, req);
    }
    co_return je - jb;
}

// ---------------------------------------------------------------------------
// Workload wrapper
// ---------------------------------------------------------------------------

class Bfs final : public Workload {
  public:
    Bfs(unsigned scale, unsigned edge_factor, std::uint64_t seed)
        : g_(makeRmat(scale, edge_factor, seed))
    {
        // Pick the highest-degree vertex as root (guaranteed non-trivial).
        root_ = 0;
        std::uint32_t best = 0;
        for (std::uint32_t v = 0; v < g_.rows; ++v) {
            std::uint32_t deg = g_.row_ptr[v + 1] - g_.row_ptr[v];
            if (deg > best) {
                best = deg;
                root_ = v;
            }
        }
        // Host golden BFS.
        golden_.assign(g_.rows, kInf);
        golden_[root_] = 0;
        std::vector<std::uint32_t> cur{root_}, next;
        std::uint32_t level = 0;
        while (!cur.empty()) {
            next.clear();
            for (std::uint32_t u : cur) {
                for (std::uint32_t j = g_.row_ptr[u]; j < g_.row_ptr[u + 1]; ++j) {
                    std::uint32_t v = g_.col_idx[j];
                    if (golden_[v] == kInf) {
                        golden_[v] = level + 1;
                        next.push_back(v);
                    }
                }
            }
            cur.swap(next);
            ++level;
        }
    }

    std::string name() const override { return "bfs"; }
    RunResult run(const RunConfig &cfg) override;

  private:
    SparseMatrix g_;
    std::uint32_t root_ = 0;
    std::vector<std::uint32_t> golden_;
};

RunResult
Bfs::run(const RunConfig &cfg)
{
    RunResult res;
    res.workload = name();
    res.technique = techniqueName(cfg.tech);

    unsigned threads = cfg.tech == Technique::NoPrefetch ||
                               cfg.tech == Technique::SwPrefetch ||
                               cfg.tech == Technique::LimaPrefetch
                           ? 1
                           : cfg.threads;

    soc::SocConfig scfg = cfg.soc;
    scfg.num_cores = std::max(scfg.num_cores, threads);
    soc::Soc soc(scfg);
    os::Process &proc = soc.createProcess("bfs");

    // The frontier can exceed |V| because of benign duplicate appends.
    const size_t frontier_cap = size_t(g_.rows) + g_.nnz();
    BfsSim s;
    s.g = SimCsr::upload(proc, g_, /*with_vals=*/false);
    s.dist = SimArray<std::uint32_t>(proc, g_.rows, "dist");
    s.frontier_a = SimArray<std::uint32_t>(proc, frontier_cap, "frontier_a");
    s.frontier_b = SimArray<std::uint32_t>(proc, frontier_cap, "frontier_b");
    s.next_tail = proc.alloc(64, "next_tail");
    s.vertices = g_.rows;
    s.root = root_;

    std::vector<std::uint32_t> dist_init(g_.rows, kInf);
    dist_init[root_] = 0;
    s.dist.upload(dist_init);
    s.frontier_a.write(0, root_);

    LevelState ls;
    ls.count = 1;
    ls.cur_is_a = true;
    ls.level = 0;

    std::optional<core::MapleApi> api;
    std::optional<baselines::DropletPrefetcher> droplet;
    std::vector<std::unique_ptr<baselines::SwQueue>> swqs;
    std::vector<std::unique_ptr<baselines::DescQueue>> descs;
    std::unique_ptr<std::uint32_t[]> exec_levels;
    std::unique_ptr<std::uint64_t[]> edges_done;

    const bool decoupled = cfg.tech == Technique::MapleDecouple ||
                           cfg.tech == Technique::SwDecouple ||
                           cfg.tech == Technique::Desc;
    unsigned pairs = decoupled ? std::max(1u, threads / 2) : 0;
    unsigned total_workers = decoupled ? pairs * 2 : threads;
    sim::Barrier bar(total_workers);

    if (cfg.tech == Technique::MapleDecouple || cfg.tech == Technique::LimaPrefetch) {
        api.emplace(core::MapleApi::attach(proc, soc.maple()));
        unsigned queues = cfg.tech == Technique::LimaPrefetch ? 1 : pairs;
        auto setup = [](core::MapleApi &a, cpu::Core &c, unsigned nq,
                        unsigned entries) -> sim::Task<void> {
            co_await a.init(c, nq, entries, 4);
            for (unsigned q = 0; q < nq; ++q) {
                bool ok = co_await a.open(c, q);
                MAPLE_ASSERT(ok, "failed to open MAPLE queue %u", q);
            }
        };
        soc.run({sim::spawn(setup(*api, soc.core(0), queues, cfg.queue_entries))},
                cfg.max_cycles);
    } else if (cfg.tech == Technique::SwDecouple) {
        for (unsigned p = 0; p < pairs; ++p)
            swqs.push_back(std::make_unique<baselines::SwQueue>(proc, 1024));
    } else if (cfg.tech == Technique::Desc) {
        exec_levels = std::make_unique<std::uint32_t[]>(pairs);
        edges_done = std::make_unique<std::uint64_t[]>(pairs);
        for (unsigned p = 0; p < pairs; ++p)
            descs.push_back(std::make_unique<baselines::DescQueue>(
                soc.eq(), soc.physMem(), soc.addLlcPort(soc.coreTile(2 * p))));
    } else if (cfg.tech == Technique::Droplet) {
        droplet.emplace(soc);
        droplet->bind(proc, s.g.col_idx.addr(0), s.g.col_idx.size(), 4,
                      s.dist.addr(0), 4);
    }

    std::vector<sim::Join> joins;
    switch (cfg.tech) {
      case Technique::Doall:
      case Technique::NoPrefetch:
      case Technique::Droplet:
        for (unsigned t = 0; t < threads; ++t)
            joins.push_back(sim::spawn(bfsWorker(soc.core(t), s, ls, bar, t,
                                                 threads, LoadFetch{s},
                                                 NoPrologue{})));
        break;
      case Technique::SwPrefetch:
        joins.push_back(sim::spawn(bfsWorker(soc.core(0), s, ls, bar, 0, 1,
                                             LoadFetch{s}, NoPrologue{},
                                             cfg.prefetch_distance)));
        break;
      case Technique::LimaPrefetch:
        joins.push_back(sim::spawn(
            limaWorker(soc.core(0), s, ls, bar, *api, 0, 4)));
        break;
      case Technique::MapleDecouple:
        for (unsigned p = 0; p < pairs; ++p) {
            joins.push_back(sim::spawn(mapleAccess(soc.core(2 * p), s, ls, bar,
                                                   *api, p, p, pairs)));
            joins.push_back(sim::spawn(mapleExecute(soc.core(2 * p + 1), s, ls,
                                                    bar, *api, p, p, pairs,
                                                    p == 0)));
        }
        break;
      case Technique::SwDecouple:
        for (unsigned p = 0; p < pairs; ++p) {
            joins.push_back(sim::spawn(
                swqAccess(soc.core(2 * p), s, ls, bar, *swqs[p], p, pairs)));
            joins.push_back(sim::spawn(swqExecute(soc.core(2 * p + 1), s, ls,
                                                  bar, *swqs[p], p, pairs,
                                                  p == 0)));
        }
        break;
      case Technique::Desc:
        for (unsigned p = 0; p < pairs; ++p) {
            joins.push_back(sim::spawn(
                descSupply(soc.eq(), soc.core(2 * p), s, ls, bar, *descs[p], p,
                           pairs, &exec_levels[p], &edges_done[p], p == 0)));
            joins.push_back(sim::spawn(descCompute(soc.core(2 * p + 1), s, ls,
                                                   bar, *descs[p],
                                                   &exec_levels[p],
                                                   &edges_done[p])));
        }
        break;
    }

    res.cycles = soc.run(std::move(joins), cfg.max_cycles);

    std::vector<std::uint32_t> dist = s.dist.download();
    res.valid = true;
    for (std::uint32_t v = 0; v < g_.rows; ++v) {
        res.checksum += dist[v];
        if (dist[v] != golden_[v])
            res.valid = false;
    }
    collectCoreStats(soc, res);
    return res;
}

}  // namespace

std::unique_ptr<Workload>
makeBfs(unsigned scale, unsigned edge_factor, std::uint64_t seed)
{
    return std::make_unique<Bfs>(scale, edge_factor, seed);
}

}  // namespace maple::app
