#include "workloads/data.hpp"
#include <cmath>

#include <algorithm>
#include <set>

namespace maple::app {

bool
SparseMatrix::wellFormed() const
{
    if (row_ptr.size() != rows + 1u || row_ptr.front() != 0 ||
        row_ptr.back() != col_idx.size())
        return false;
    if (!vals.empty() && vals.size() != col_idx.size())
        return false;
    for (std::uint32_t r = 0; r < rows; ++r) {
        if (row_ptr[r] > row_ptr[r + 1])
            return false;
        for (std::uint32_t j = row_ptr[r]; j < row_ptr[r + 1]; ++j) {
            if (col_idx[j] >= cols)
                return false;
            if (j > row_ptr[r] && col_idx[j] <= col_idx[j - 1])
                return false;  // strictly sorted within a row
        }
    }
    return true;
}

SparseMatrix
makeUniformSparse(std::uint32_t rows, std::uint32_t cols,
                  std::uint32_t nnz_per_row, std::uint64_t seed)
{
    MAPLE_ASSERT(nnz_per_row <= cols, "row denser than the matrix is wide");
    sim::Rng rng(seed);
    SparseMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.row_ptr.reserve(rows + 1);
    m.row_ptr.push_back(0);
    std::set<std::uint32_t> row;
    for (std::uint32_t r = 0; r < rows; ++r) {
        row.clear();
        while (row.size() < nnz_per_row)
            row.insert(static_cast<std::uint32_t>(rng.below(cols)));
        for (std::uint32_t c : row) {
            m.col_idx.push_back(c);
            m.vals.push_back(static_cast<float>(rng.uniform()) + 0.1f);
        }
        m.row_ptr.push_back(static_cast<std::uint32_t>(m.col_idx.size()));
    }
    return m;
}

SparseMatrix
makeSkewedSparse(std::uint32_t rows, std::uint32_t cols,
                 std::uint32_t nnz_per_row, std::uint64_t seed, double skew)
{
    MAPLE_ASSERT(nnz_per_row <= cols && skew >= 1.0);
    sim::Rng rng(seed);
    SparseMatrix m;
    m.rows = rows;
    m.cols = cols;
    m.row_ptr.reserve(rows + 1);
    m.row_ptr.push_back(0);
    std::set<std::uint32_t> row;
    for (std::uint32_t r = 0; r < rows; ++r) {
        row.clear();
        while (row.size() < nnz_per_row) {
            double u = rng.uniform();
            auto c = static_cast<std::uint32_t>(
                static_cast<double>(cols) * std::pow(u, skew));
            row.insert(std::min(c, cols - 1));
        }
        for (std::uint32_t c : row) {
            m.col_idx.push_back(c);
            m.vals.push_back(static_cast<float>(rng.uniform()) + 0.1f);
        }
        m.row_ptr.push_back(static_cast<std::uint32_t>(m.col_idx.size()));
    }
    return m;
}

SparseMatrix
makeRmat(unsigned scale, unsigned edge_factor, std::uint64_t seed, double a,
         double b, double c)
{
    MAPLE_ASSERT(scale >= 2 && scale <= 24, "unreasonable R-MAT scale");
    const std::uint32_t n = 1u << scale;
    const std::uint64_t edges = std::uint64_t(edge_factor) * n;
    sim::Rng rng(seed);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> el;
    el.reserve(edges);
    for (std::uint64_t e = 0; e < edges; ++e) {
        std::uint32_t src = 0, dst = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            double p = rng.uniform();
            unsigned quad = p < a ? 0 : p < a + b ? 1 : p < a + b + c ? 2 : 3;
            src = (src << 1) | (quad >> 1);
            dst = (dst << 1) | (quad & 1);
        }
        if (src != dst)
            el.emplace_back(src, dst);
    }
    std::sort(el.begin(), el.end());
    el.erase(std::unique(el.begin(), el.end()), el.end());

    SparseMatrix m;
    m.rows = n;
    m.cols = n;
    m.row_ptr.assign(n + 1, 0);
    m.col_idx.reserve(el.size());
    for (auto &[s, d] : el)
        ++m.row_ptr[s + 1];
    for (std::uint32_t r = 0; r < n; ++r)
        m.row_ptr[r + 1] += m.row_ptr[r];
    for (auto &[s, d] : el)
        m.col_idx.push_back(d);
    m.vals.assign(m.col_idx.size(), 1.0f);
    return m;
}

std::vector<float>
makeDenseVector(size_t n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform());
    return v;
}

SimCsr
SimCsr::upload(os::Process &proc, const SparseMatrix &m, bool with_vals)
{
    MAPLE_ASSERT(m.wellFormed() || m.vals.empty(), "uploading malformed matrix");
    SimCsr s;
    s.row_ptr = SimArray<std::uint32_t>(proc, m.row_ptr.size(), "row_ptr");
    s.row_ptr.upload(m.row_ptr);
    s.col_idx = SimArray<std::uint32_t>(proc, m.col_idx.size(), "col_idx");
    s.col_idx.upload(m.col_idx);
    if (with_vals) {
        s.vals = SimArray<float>(proc, m.vals.size(), "vals");
        s.vals.upload(m.vals);
    }
    return s;
}

}  // namespace maple::app
