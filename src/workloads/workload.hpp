/**
 * @file
 * Common framework for the four paper workloads (SPMV, SDHP, SPMM, BFS).
 *
 * A Workload owns a host-side dataset plus a host-computed golden result.
 * run() builds a fresh SoC, uploads the dataset into a simulated process,
 * executes the requested technique as coroutine "threads" on the simulated
 * cores, and returns cycle counts, instruction/load counters and a checksum
 * validated against the golden result -- so every performance number the
 * benches print comes from a functionally-correct execution.
 */
#pragma once

#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "core/maple_runtime.hpp"
#include "soc/soc.hpp"
#include "workloads/data.hpp"

namespace maple::app {

/** Latency-tolerance technique under evaluation. */
enum class Technique {
    Doall,          ///< plain thread parallelism (baseline of Figs 8/12/13)
    SwDecouple,     ///< shared-memory access/execute decoupling
    MapleDecouple,  ///< access/execute decoupling through MAPLE
    NoPrefetch,     ///< single-thread baseline of Fig 9
    SwPrefetch,     ///< software prefetch instructions into the L1
    LimaPrefetch,   ///< MAPLE LIMA non-speculative prefetch into queues
    Desc,           ///< DeSC-style decoupled supply-compute (Fig 12)
    Droplet,        ///< DROPLET-style indirect HW prefetcher (Fig 12)
};

const char *techniqueName(Technique t);

struct RunConfig {
    Technique tech = Technique::Doall;
    unsigned threads = 2;          ///< total simulated software threads
    unsigned queue_entries = 32;   ///< MAPLE queue depth (decoupling)
    unsigned prefetch_distance = 8;
    soc::SocConfig soc = soc::SocConfig::fpga();
    sim::Cycle max_cycles = 2'000'000'000ull;
};

struct RunResult {
    std::string workload;
    std::string technique;
    sim::Cycle cycles = 0;
    std::uint64_t checksum = 0;
    bool valid = false;            ///< checksum matched the golden result
    bool fell_back_to_doall = false;
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    double mean_load_latency = 0.0;
    std::uint64_t sim_events = 0;  ///< kernel events executed (host-perf)
};

class Workload {
  public:
    virtual ~Workload() = default;
    virtual std::string name() const = 0;
    virtual RunResult run(const RunConfig &cfg) = 0;
};

/// @name Workload factories (paper Section 4.1). Small/default sizes are
/// tuned so a full figure sweep runs in seconds while arrays still exceed
/// the 64KB LLC (the regime where latency tolerance matters).
/// @{
std::unique_ptr<Workload> makeSpmv(std::uint32_t rows = 4096,
                                   std::uint32_t cols = 65536,
                                   std::uint32_t nnz_per_row = 8,
                                   std::uint64_t seed = 1);
std::unique_ptr<Workload> makeSdhp(std::uint32_t rows = 2048,
                                   std::uint32_t cols = 1024,
                                   std::uint32_t nnz_per_row = 16,
                                   std::uint64_t seed = 2);
std::unique_ptr<Workload> makeSpmm(std::uint32_t dim = 256,
                                   std::uint32_t nnz_per_row = 8,
                                   std::uint64_t seed = 3);
std::unique_ptr<Workload> makeBfs(unsigned scale = 15, unsigned edge_factor = 8,
                                  std::uint64_t seed = 4);
/// @}

/** All four, in the order the paper's figures list them. */
std::vector<std::unique_ptr<Workload>> allWorkloads();

/// @name Helpers shared by the workload implementations
/// @{

inline float f32FromBits(std::uint64_t v) { return std::bit_cast<float>(static_cast<std::uint32_t>(v)); }
inline std::uint32_t bitsFromF32(float f) { return std::bit_cast<std::uint32_t>(f); }

/** Contiguous [begin, end) chunk of @p total for worker @p t of @p n. */
struct Chunk {
    std::uint64_t begin, end;
};
Chunk chunkOf(std::uint64_t total, unsigned t, unsigned n);

/** Sum per-core stats into @p r after a run. */
void collectCoreStats(soc::Soc &soc, RunResult &r);

/**
 * Consumes a stream of 4-byte queue entries using ConsumePair (one 8-byte
 * load pops two entries -- the Figure 10 load-count reduction), falling back
 * to single consumes for a trailing odd element.
 */
struct PairedConsumer {
    core::MapleApi &api;
    unsigned q;
    std::uint64_t remaining;  ///< total elements left in the whole stream
    bool have_left = false;
    std::uint32_t leftover = 0;

    sim::Task<std::uint32_t>
    next(cpu::Core &core)
    {
        MAPLE_ASSERT(remaining > 0, "consumed past the end of the stream");
        if (have_left) {
            have_left = false;
            --remaining;
            co_return leftover;
        }
        if (remaining >= 2) {
            std::uint64_t pair = co_await api.consumePair(core, q);
            leftover = static_cast<std::uint32_t>(pair >> 32);
            have_left = true;
            --remaining;
            co_return static_cast<std::uint32_t>(pair & 0xffffffffu);
        }
        --remaining;
        co_return static_cast<std::uint32_t>(co_await api.consume(core, q));
    }
};

/// @}

}  // namespace maple::app
