/**
 * @file
 * Sparse-Dense Hadamard Product: out[j] = svals[j] * dense[r * C + col[j]]
 * for every nonzero j of sparse row r.
 *
 * The dense matrix is sampled at the sparse matrix's nonzero positions, so
 * the dense accesses are irregular (the IMA) while svals/col_idx/out stream
 * sequentially. Unlike SPMV there is no reduction -- each element produces
 * one store -- which makes the kernel even more memory-bound.
 */
#include <optional>

#include "baselines/desc.hpp"
#include "baselines/droplet.hpp"
#include "baselines/sw_queue.hpp"
#include "workloads/workload.hpp"

namespace maple::app {

namespace {

struct SdhpSim {
    SimCsr m;
    SimArray<float> dense;  ///< rows x cols, row-major
    SimArray<float> out;    ///< nnz results
    std::uint32_t rows = 0, cols = 0;
};

sim::Addr
denseAddr(const SdhpSim &s, std::uint64_t r, std::uint32_t c)
{
    return s.dense.addr(r * s.cols + c);
}

sim::Task<void>
doallWorker(cpu::Core &core, SdhpSim &s, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float d = f32FromBits(co_await core.load(denseAddr(s, r, c), 4));
            co_await core.compute(1);
            co_await core.store(s.out.addr(j), bitsFromF32(v * d), 4);
        }
        jb = je;
    }
}

sim::Task<void>
swPrefetchWorker(cpu::Core &core, SdhpSim &s, Chunk rows, unsigned dist)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            if (j + dist < je) {  // same-row prefetch: the row base differs
                auto cd = static_cast<std::uint32_t>(
                    co_await core.load(s.m.col_idx.addr(j + dist), 4));
                co_await core.compute(4);
                co_await core.prefetchL1(denseAddr(s, r, cd));
            }
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float d = f32FromBits(co_await core.load(denseAddr(s, r, c), 4));
            co_await core.compute(1);
            co_await core.store(s.out.addr(j), bitsFromF32(v * d), 4);
        }
        jb = je;
    }
}

sim::Task<void>
limaWorker(cpu::Core &core, SdhpSim &s, core::MapleApi &api, unsigned q)
{
    // One LIMA per row (the row selects the dense-matrix base), launched one
    // row ahead of consumption so fetches overlap the current row's work.
    const std::uint32_t rows = s.rows;
    auto pb = static_cast<std::uint32_t>(co_await core.load(s.m.row_ptr.addr(0), 4));
    std::uint32_t pe0 = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(1), 4));
    core::LimaRequest req;
    req.b_base = s.m.col_idx.addr(0);
    req.a_base = denseAddr(s, 0, 0);
    req.start = pb;
    req.end = pe0;
    req.target_queue = q;
    co_await api.lima(core, req);

    PairedConsumer cons{api, q, s.m.col_idx.size(), false, 0};
    auto jb = pb;
    std::uint32_t next_b = pe0;
    for (std::uint32_t r = 0; r < rows; ++r) {
        if (r + 1 < rows) {
            auto ne = static_cast<std::uint32_t>(
                co_await core.load(s.m.row_ptr.addr(r + 2), 4));
            req.a_base = denseAddr(s, r + 1, 0);
            req.start = next_b;
            req.end = ne;
            co_await api.lima(core, req);
            next_b = ne;
        }
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float d = f32FromBits(co_await cons.next(core));
            co_await core.compute(1);
            co_await core.store(s.out.addr(j), bitsFromF32(v * d), 4);
        }
        jb = je;
    }
}

sim::Task<void>
mapleAccess(cpu::Core &core, SdhpSim &s, core::MapleApi &api, unsigned q, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            co_await core.compute(1);
            co_await api.producePtr(core, q, denseAddr(s, r, c));
        }
        jb = je;
    }
}

sim::Task<void>
mapleExecute(cpu::Core &core, SdhpSim &s, core::MapleApi &api, unsigned q, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float d = f32FromBits(co_await api.consume(core, q));
            co_await core.compute(1);
            co_await core.store(s.out.addr(j), bitsFromF32(v * d), 4);
        }
        jb = je;
    }
}

sim::Task<void>
swqAccess(cpu::Core &core, SdhpSim &s, baselines::SwQueue &swq, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            std::uint64_t d = co_await core.load(denseAddr(s, r, c), 4);
            co_await swq.produce(core, d);
        }
        jb = je;
    }
}

sim::Task<void>
swqExecute(cpu::Core &core, SdhpSim &s, baselines::SwQueue &swq, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float d = f32FromBits(co_await swq.consume(core));
            co_await core.compute(1);
            co_await core.store(s.out.addr(j), bitsFromF32(v * d), 4);
        }
        jb = je;
    }
}

sim::Task<void>
descSupply(sim::EventQueue &eq, cpu::Core &core, SdhpSim &s,
           baselines::DescQueue &dq, Chunk rows, const bool *exec_done)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        co_await dq.produceValue(core, (std::uint64_t(je - jb) << 32) | jb);
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            co_await core.compute(1);
            co_await dq.produceLoad(core, s.m.vals.addr(j), 4);
            co_await dq.produceLoad(core, denseAddr(s, r, c), 4);
        }
        while (co_await dq.drainOneStore(core)) {
        }
        jb = je;
    }
    while (!*exec_done || !dq.storeQueueEmpty()) {
        if (!co_await dq.drainOneStore(core))
            co_await sim::delay(eq, 20);
    }
}

sim::Task<void>
descCompute(cpu::Core &core, SdhpSim &s, baselines::DescQueue &dq, Chunk rows,
            bool *exec_done)
{
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        std::uint64_t hdr = co_await dq.consume(core);
        auto n = static_cast<std::uint32_t>(hdr >> 32);
        auto jb = static_cast<std::uint32_t>(hdr & 0xffffffffu);
        for (std::uint32_t k = 0; k < n; ++k) {
            float v = f32FromBits(co_await dq.consume(core));
            float d = f32FromBits(co_await dq.consume(core));
            co_await core.compute(1);
            co_await dq.produceStore(core, s.out.addr(jb + k), bitsFromF32(v * d));
        }
    }
    *exec_done = true;
}

class Sdhp final : public Workload {
  public:
    Sdhp(std::uint32_t rows, std::uint32_t cols, std::uint32_t nnz_per_row,
         std::uint64_t seed)
        : m_(makeSkewedSparse(rows, cols, nnz_per_row, seed, 5.0)),
          dense_(makeDenseVector(std::uint64_t(rows) * cols, seed ^ 0xfeed))
    {
        golden_.resize(m_.nnz());
        for (std::uint32_t r = 0; r < rows; ++r)
            for (std::uint32_t j = m_.row_ptr[r]; j < m_.row_ptr[r + 1]; ++j)
                golden_[j] = m_.vals[j] * dense_[std::uint64_t(r) * cols + m_.col_idx[j]];
    }

    std::string name() const override { return "sdhp"; }
    RunResult run(const RunConfig &cfg) override;

  private:
    SparseMatrix m_;
    std::vector<float> dense_;
    std::vector<float> golden_;
};

RunResult
Sdhp::run(const RunConfig &cfg)
{
    RunResult res;
    res.workload = name();
    res.technique = techniqueName(cfg.tech);

    unsigned threads = cfg.tech == Technique::NoPrefetch ||
                               cfg.tech == Technique::SwPrefetch ||
                               cfg.tech == Technique::LimaPrefetch
                           ? 1
                           : cfg.threads;

    soc::SocConfig scfg = cfg.soc;
    scfg.num_cores = std::max(scfg.num_cores, threads);
    soc::Soc soc(scfg);
    os::Process &proc = soc.createProcess("sdhp");

    SdhpSim s;
    s.m = SimCsr::upload(proc, m_, true);
    s.dense = SimArray<float>(proc, dense_.size(), "dense");
    s.dense.upload(dense_);
    s.out = SimArray<float>(proc, m_.nnz(), "out");
    s.rows = m_.rows;
    s.cols = m_.cols;

    std::optional<core::MapleApi> api;
    std::optional<baselines::DropletPrefetcher> droplet;
    std::vector<std::unique_ptr<baselines::SwQueue>> swqs;
    std::vector<std::unique_ptr<baselines::DescQueue>> descs;
    std::unique_ptr<bool[]> exec_done;

    const bool decoupled = cfg.tech == Technique::MapleDecouple ||
                           cfg.tech == Technique::SwDecouple ||
                           cfg.tech == Technique::Desc;
    unsigned pairs = decoupled ? std::max(1u, threads / 2) : 0;

    if (cfg.tech == Technique::MapleDecouple || cfg.tech == Technique::LimaPrefetch) {
        api.emplace(core::MapleApi::attach(proc, soc.maple()));
        unsigned queues = cfg.tech == Technique::LimaPrefetch ? 1 : pairs;
        auto setup = [](core::MapleApi &a, cpu::Core &c, unsigned nq,
                        unsigned entries) -> sim::Task<void> {
            co_await a.init(c, nq, entries, 4);
            for (unsigned q = 0; q < nq; ++q) {
                bool ok = co_await a.open(c, q);
                MAPLE_ASSERT(ok, "failed to open MAPLE queue %u", q);
            }
        };
        soc.run({sim::spawn(setup(*api, soc.core(0), queues, cfg.queue_entries))},
                cfg.max_cycles);
    } else if (cfg.tech == Technique::SwDecouple) {
        for (unsigned p = 0; p < pairs; ++p)
            swqs.push_back(std::make_unique<baselines::SwQueue>(proc, 1024));
    } else if (cfg.tech == Technique::Desc) {
        exec_done = std::make_unique<bool[]>(pairs);
        for (unsigned p = 0; p < pairs; ++p)
            descs.push_back(std::make_unique<baselines::DescQueue>(
                soc.eq(), soc.physMem(), soc.addLlcPort(soc.coreTile(2 * p))));
    } else if (cfg.tech == Technique::Droplet) {
        // DROPLET registers one (index, data) physical pair; the Hadamard
        // product's data base moves with the sparse row, which region-based
        // registration cannot express -- the prefetcher covers row 0's slice
        // only (a real limitation of region-bound indirect prefetchers).
        droplet.emplace(soc);
        droplet->bind(proc, s.m.col_idx.addr(0), s.m.col_idx.size(), 4,
                      s.dense.addr(0), 4);
    }

    std::vector<sim::Join> joins;
    switch (cfg.tech) {
      case Technique::Doall:
      case Technique::NoPrefetch:
      case Technique::Droplet:
        for (unsigned t = 0; t < threads; ++t)
            joins.push_back(sim::spawn(
                doallWorker(soc.core(t), s, chunkOf(m_.rows, t, threads))));
        break;
      case Technique::SwPrefetch:
        joins.push_back(sim::spawn(swPrefetchWorker(
            soc.core(0), s, Chunk{0, m_.rows}, cfg.prefetch_distance)));
        break;
      case Technique::LimaPrefetch:
        joins.push_back(sim::spawn(limaWorker(soc.core(0), s, *api, 0)));
        break;
      case Technique::MapleDecouple:
        for (unsigned p = 0; p < pairs; ++p) {
            Chunk rows = chunkOf(m_.rows, p, pairs);
            joins.push_back(sim::spawn(mapleAccess(soc.core(2 * p), s, *api, p, rows)));
            joins.push_back(sim::spawn(mapleExecute(soc.core(2 * p + 1), s, *api, p, rows)));
        }
        break;
      case Technique::SwDecouple:
        for (unsigned p = 0; p < pairs; ++p) {
            Chunk rows = chunkOf(m_.rows, p, pairs);
            joins.push_back(sim::spawn(swqAccess(soc.core(2 * p), s, *swqs[p], rows)));
            joins.push_back(sim::spawn(swqExecute(soc.core(2 * p + 1), s, *swqs[p], rows)));
        }
        break;
      case Technique::Desc:
        for (unsigned p = 0; p < pairs; ++p) {
            Chunk rows = chunkOf(m_.rows, p, pairs);
            joins.push_back(sim::spawn(descSupply(soc.eq(), soc.core(2 * p), s,
                                                  *descs[p], rows, &exec_done[p])));
            joins.push_back(sim::spawn(descCompute(soc.core(2 * p + 1), s,
                                                   *descs[p], rows, &exec_done[p])));
        }
        break;
    }

    res.cycles = soc.run(std::move(joins), cfg.max_cycles);

    std::vector<float> out = s.out.download();
    res.valid = true;
    for (size_t j = 0; j < golden_.size(); ++j) {
        res.checksum += bitsFromF32(out[j]);
        if (bitsFromF32(out[j]) != bitsFromF32(golden_[j]))
            res.valid = false;
    }
    collectCoreStats(soc, res);
    return res;
}

}  // namespace

std::unique_ptr<Workload>
makeSdhp(std::uint32_t rows, std::uint32_t cols, std::uint32_t nnz_per_row,
         std::uint64_t seed)
{
    return std::make_unique<Sdhp>(rows, cols, nnz_per_row, seed);
}

}  // namespace maple::app
