/**
 * @file
 * Sparse Matrix-Vector multiplication (y = M x), CSR format.
 *
 * The irregular memory access is x[col_idx[j]]: col_idx and vals stream
 * sequentially (cache friendly) while x is sampled at unpredictable offsets
 * over an array larger than the LLC. Every latency-tolerance technique of
 * the paper is implemented against the same kernel and validated bitwise
 * against a host-computed golden result.
 */
#include <optional>

#include "baselines/desc.hpp"
#include "baselines/droplet.hpp"
#include "baselines/sw_queue.hpp"
#include "workloads/workload.hpp"

namespace maple::app {

namespace {

/** Device-side state for one run. */
struct SpmvSim {
    SimCsr m;
    SimArray<float> x;
    SimArray<float> y;
    std::uint32_t rows = 0;
};

// ---------------------------------------------------------------------------
// doall (also the no-prefetch single-thread baseline)
// ---------------------------------------------------------------------------

sim::Task<void>
doallWorker(cpu::Core &core, SpmvSim &s, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        float acc = 0.0f;
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float xv = f32FromBits(co_await core.load(s.x.addr(c), 4));
            co_await core.compute(1);  // fused multiply-add
            acc += v * xv;
        }
        co_await core.store(s.y.addr(r), bitsFromF32(acc), 4);
        jb = je;
    }
}

// ---------------------------------------------------------------------------
// Software prefetching (Ainsworth & Jones-style indirect prefetch insertion)
// ---------------------------------------------------------------------------

sim::Task<void>
swPrefetchWorker(cpu::Core &core, SpmvSim &s, Chunk rows, unsigned dist,
                 std::uint32_t nnz_total)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        float acc = 0.0f;
        for (std::uint32_t j = jb; j < je; ++j) {
            // Inserted prefetch code: load col_idx[j+dist] (the extra load
            // software prefetching cannot avoid), compute the target address
            // and prefetch x[c'] into the L1.
            if (j + dist < nnz_total) {
                auto cd = static_cast<std::uint32_t>(
                    co_await core.load(s.m.col_idx.addr(j + dist), 4));
                co_await core.compute(4);  // bounds check + address computation
                co_await core.prefetchL1(s.x.addr(cd));
            }
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float xv = f32FromBits(co_await core.load(s.x.addr(c), 4));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(s.y.addr(r), bitsFromF32(acc), 4);
        jb = je;
    }
}

// ---------------------------------------------------------------------------
// MAPLE LIMA prefetch: one API call offloads a whole row of A[B[i]], data is
// consumed from the hardware queue (two 4B words per load: ConsumePair).
// ---------------------------------------------------------------------------

sim::Task<void>
limaWorker(cpu::Core &core, SpmvSim &s, core::MapleApi &api, unsigned q,
           unsigned dist_rows)
{
    const std::uint32_t rows = s.rows;
    // Row bounds for the LIMA launch stream (runs dist_rows ahead).
    auto pb = static_cast<std::uint32_t>(co_await core.load(s.m.row_ptr.addr(0), 4));
    std::uint32_t prologue = std::min(dist_rows, rows);
    for (std::uint32_t r = 0; r < prologue; ++r) {
        auto pe = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        core::LimaRequest req;
        req.a_base = s.x.addr(0);
        req.b_base = s.m.col_idx.addr(0);
        req.start = pb;
        req.end = pe;
        req.target_queue = q;
        co_await api.lima(core, req);
        pb = pe;
    }

    PairedConsumer cons{api, q, s.m.col_idx.size(), false, 0};
    auto jb = static_cast<std::uint32_t>(co_await core.load(s.m.row_ptr.addr(0), 4));
    for (std::uint32_t r = 0; r < rows; ++r) {
        if (r + dist_rows < rows) {
            auto pe = static_cast<std::uint32_t>(
                co_await core.load(s.m.row_ptr.addr(r + dist_rows + 1), 4));
            core::LimaRequest req;
            req.a_base = s.x.addr(0);
            req.b_base = s.m.col_idx.addr(0);
            req.start = pb;
            req.end = pe;
            req.target_queue = q;
            co_await api.lima(core, req);
            pb = pe;
        }
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        float acc = 0.0f;
        for (std::uint32_t j = jb; j < je; ++j) {
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float xv = f32FromBits(co_await cons.next(core));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(s.y.addr(r), bitsFromF32(acc), 4);
        jb = je;
    }
}

// ---------------------------------------------------------------------------
// Decoupled access/execute: MAPLE, shared-memory queue and DeSC variants
// ---------------------------------------------------------------------------

sim::Task<void>
mapleAccess(cpu::Core &core, SpmvSim &s, core::MapleApi &api, unsigned q, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            co_await core.compute(1);  // address generation
            co_await api.producePtr(core, q, s.x.addr(c));
        }
        jb = je;
    }
}

sim::Task<void>
mapleExecute(cpu::Core &core, SpmvSim &s, core::MapleApi &api, unsigned q, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        float acc = 0.0f;
        for (std::uint32_t j = jb; j < je; ++j) {
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float xv = f32FromBits(co_await api.consume(core, q));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(s.y.addr(r), bitsFromF32(acc), 4);
        jb = je;
    }
}

sim::Task<void>
swqAccess(cpu::Core &core, SpmvSim &s, baselines::SwQueue &swq, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            // The access core itself performs the IMA -- on this in-order
            // core the load blocks, which is exactly the loss of runahead.
            std::uint64_t xv = co_await core.load(s.x.addr(c), 4);
            co_await swq.produce(core, xv);
        }
        jb = je;
    }
}

sim::Task<void>
swqExecute(cpu::Core &core, SpmvSim &s, baselines::SwQueue &swq, Chunk rows)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        float acc = 0.0f;
        for (std::uint32_t j = jb; j < je; ++j) {
            float v = f32FromBits(co_await core.load(s.m.vals.addr(j), 4));
            float xv = f32FromBits(co_await swq.consume(core));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(s.y.addr(r), bitsFromF32(acc), 4);
        jb = je;
    }
}

sim::Task<void>
descSupply(sim::EventQueue &eq, cpu::Core &core, SpmvSim &s,
           baselines::DescQueue &dq, Chunk rows, const bool *exec_done)
{
    auto jb = static_cast<std::uint32_t>(
        co_await core.load(s.m.row_ptr.addr(rows.begin), 4));
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(s.m.row_ptr.addr(r + 1), 4));
        co_await dq.produceValue(core, je - jb);
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(s.m.col_idx.addr(j), 4));
            co_await core.compute(1);
            // Terminal loads: the Compute core has no memory visibility, so
            // both the value stream and the IMA go through the queue.
            co_await dq.produceLoad(core, s.m.vals.addr(j), 4);
            co_await dq.produceLoad(core, s.x.addr(c), 4);
        }
        // Service Compute-side stores that have accumulated.
        while (co_await dq.drainOneStore(core)) {
        }
        jb = je;
    }
    while (!*exec_done || !dq.storeQueueEmpty()) {
        if (!co_await dq.drainOneStore(core))
            co_await sim::delay(eq, 20);
    }
}

sim::Task<void>
descCompute(cpu::Core &core, SpmvSim &s, baselines::DescQueue &dq, Chunk rows,
            bool *exec_done)
{
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto n = static_cast<std::uint32_t>(co_await dq.consume(core));
        float acc = 0.0f;
        for (std::uint32_t j = 0; j < n; ++j) {
            float v = f32FromBits(co_await dq.consume(core));
            float xv = f32FromBits(co_await dq.consume(core));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await dq.produceStore(core, s.y.addr(r), bitsFromF32(acc));
    }
    *exec_done = true;
}

// ---------------------------------------------------------------------------
// The Workload wrapper
// ---------------------------------------------------------------------------

class Spmv final : public Workload {
  public:
    Spmv(std::uint32_t rows, std::uint32_t cols, std::uint32_t nnz_per_row,
         std::uint64_t seed)
        : m_(makeSkewedSparse(rows, cols, nnz_per_row, seed, 2.0)),
          x_(makeDenseVector(cols, seed ^ 0xdecaf))
    {
        golden_.resize(rows);
        for (std::uint32_t r = 0; r < rows; ++r) {
            float acc = 0.0f;
            for (std::uint32_t j = m_.row_ptr[r]; j < m_.row_ptr[r + 1]; ++j)
                acc += m_.vals[j] * x_[m_.col_idx[j]];
            golden_[r] = acc;
        }
    }

    std::string name() const override { return "spmv"; }

    RunResult run(const RunConfig &cfg) override;

  private:
    SparseMatrix m_;
    std::vector<float> x_;
    std::vector<float> golden_;
};

RunResult
Spmv::run(const RunConfig &cfg)
{
    RunResult res;
    res.workload = name();
    res.technique = techniqueName(cfg.tech);

    unsigned threads = cfg.tech == Technique::NoPrefetch ||
                               cfg.tech == Technique::SwPrefetch ||
                               cfg.tech == Technique::LimaPrefetch
                           ? 1
                           : cfg.threads;

    soc::SocConfig scfg = cfg.soc;
    scfg.num_cores = std::max(scfg.num_cores, threads);
    soc::Soc soc(scfg);
    os::Process &proc = soc.createProcess("spmv");

    SpmvSim s;
    s.m = SimCsr::upload(proc, m_, /*with_vals=*/true);
    s.x = SimArray<float>(proc, x_.size(), "x");
    s.x.upload(x_);
    s.y = SimArray<float>(proc, m_.rows, "y");
    s.rows = m_.rows;

    std::optional<core::MapleApi> api;
    std::optional<baselines::DropletPrefetcher> droplet;
    std::vector<std::unique_ptr<baselines::SwQueue>> swqs;
    std::vector<std::unique_ptr<baselines::DescQueue>> descs;
    std::unique_ptr<bool[]> exec_done;

    const bool decoupled = cfg.tech == Technique::MapleDecouple ||
                           cfg.tech == Technique::SwDecouple ||
                           cfg.tech == Technique::Desc;
    unsigned pairs = decoupled ? std::max(1u, threads / 2) : 0;

    // Technique-specific setup (runs before the measured region).
    if (cfg.tech == Technique::MapleDecouple || cfg.tech == Technique::LimaPrefetch) {
        api.emplace(core::MapleApi::attach(proc, soc.maple()));
        unsigned queues = cfg.tech == Technique::LimaPrefetch ? 1 : pairs;
        auto setup = [](core::MapleApi &a, cpu::Core &c, unsigned nq,
                        unsigned entries) -> sim::Task<void> {
            co_await a.init(c, nq, entries, 4);
            for (unsigned q = 0; q < nq; ++q) {
                bool ok = co_await a.open(c, q);
                MAPLE_ASSERT(ok, "failed to open MAPLE queue %u", q);
            }
        };
        soc.run({sim::spawn(setup(*api, soc.core(0), queues, cfg.queue_entries))},
                cfg.max_cycles);
    } else if (cfg.tech == Technique::SwDecouple) {
        for (unsigned p = 0; p < pairs; ++p)
            swqs.push_back(std::make_unique<baselines::SwQueue>(proc, 1024));
    } else if (cfg.tech == Technique::Desc) {
        exec_done = std::make_unique<bool[]>(pairs);
        for (unsigned p = 0; p < pairs; ++p)
            descs.push_back(std::make_unique<baselines::DescQueue>(
                soc.eq(), soc.physMem(), soc.addLlcPort(soc.coreTile(2 * p))));
    } else if (cfg.tech == Technique::Droplet) {
        droplet.emplace(soc);
        droplet->bind(proc, s.m.col_idx.addr(0), s.m.col_idx.size(), 4,
                      s.x.addr(0), 4);
    }

    sim::Cycle t0 = soc.eq().now();
    std::vector<sim::Join> joins;

    switch (cfg.tech) {
      case Technique::Doall:
      case Technique::NoPrefetch:
      case Technique::Droplet:
        for (unsigned t = 0; t < threads; ++t)
            joins.push_back(sim::spawn(
                doallWorker(soc.core(t), s, chunkOf(m_.rows, t, threads))));
        break;
      case Technique::SwPrefetch:
        joins.push_back(sim::spawn(swPrefetchWorker(
            soc.core(0), s, Chunk{0, m_.rows}, cfg.prefetch_distance,
            static_cast<std::uint32_t>(m_.nnz()))));
        break;
      case Technique::LimaPrefetch:
        joins.push_back(sim::spawn(
            limaWorker(soc.core(0), s, *api, 0, std::max(2u, cfg.prefetch_distance / 2))));
        break;
      case Technique::MapleDecouple:
        for (unsigned p = 0; p < pairs; ++p) {
            Chunk rows = chunkOf(m_.rows, p, pairs);
            joins.push_back(sim::spawn(mapleAccess(soc.core(2 * p), s, *api, p, rows)));
            joins.push_back(sim::spawn(mapleExecute(soc.core(2 * p + 1), s, *api, p, rows)));
        }
        break;
      case Technique::SwDecouple:
        for (unsigned p = 0; p < pairs; ++p) {
            Chunk rows = chunkOf(m_.rows, p, pairs);
            joins.push_back(sim::spawn(swqAccess(soc.core(2 * p), s, *swqs[p], rows)));
            joins.push_back(sim::spawn(swqExecute(soc.core(2 * p + 1), s, *swqs[p], rows)));
        }
        break;
      case Technique::Desc:
        for (unsigned p = 0; p < pairs; ++p) {
            Chunk rows = chunkOf(m_.rows, p, pairs);
            joins.push_back(sim::spawn(descSupply(soc.eq(), soc.core(2 * p), s,
                                                  *descs[p], rows,
                                                  &exec_done[p])));
            joins.push_back(sim::spawn(descCompute(soc.core(2 * p + 1), s,
                                                   *descs[p], rows,
                                                   &exec_done[p])));
        }
        break;
    }

    res.cycles = soc.run(std::move(joins), cfg.max_cycles);
    (void)t0;

    // Validate bitwise against the host golden result.
    std::vector<float> y = s.y.download();
    res.valid = true;
    res.checksum = 0;
    for (std::uint32_t r = 0; r < m_.rows; ++r) {
        res.checksum += bitsFromF32(y[r]);
        if (bitsFromF32(y[r]) != bitsFromF32(golden_[r]))
            res.valid = false;
    }
    collectCoreStats(soc, res);
    return res;
}

}  // namespace

std::unique_ptr<Workload>
makeSpmv(std::uint32_t rows, std::uint32_t cols, std::uint32_t nnz_per_row,
         std::uint64_t seed)
{
    return std::make_unique<Spmv>(rows, cols, nnz_per_row, seed);
}

}  // namespace maple::app
