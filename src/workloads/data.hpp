/**
 * @file
 * Datasets for the data-analytics workloads (Section 4.1).
 *
 * The paper evaluates on SuiteSparse matrices, SNAP graphs (Wikipedia,
 * YouTube, LiveJournal) and synthetic riscv-tests matrices. Those files are
 * not redistributable offline, so we generate synthetic equivalents with the
 * properties that matter to latency-tolerance techniques: power-law degree
 * distributions (R-MAT/Kronecker) driving irregular indirect accesses, and
 * uniform sparse matrices for the linear-algebra kernels.
 *
 * Host-side structures are built once, then uploaded into simulated memory
 * via SimArray so cores/MAPLE access them with real translations and timing.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "os/kernel.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace maple::app {

/** A typed array living in a simulated process's virtual memory. */
template <typename T>
class SimArray {
  public:
    SimArray() = default;

    SimArray(os::Process &proc, size_t n, const char *tag)
        : proc_(&proc), n_(n), base_(proc.alloc(n * sizeof(T), tag))
    {
    }

    sim::Addr addr(size_t i = 0) const { return base_ + i * sizeof(T); }
    size_t size() const { return n_; }
    bool valid() const { return proc_ != nullptr; }

    void
    upload(std::span<const T> host)
    {
        MAPLE_ASSERT(host.size() == n_, "upload size mismatch");
        proc_->writeBytes(base_, host.data(), host.size_bytes());
    }

    T read(size_t i) const { return proc_->template readScalar<T>(addr(i)); }
    void write(size_t i, T v) { proc_->template writeScalar<T>(addr(i), v); }

    /** Download the whole array back to the host (validation). */
    std::vector<T>
    download() const
    {
        std::vector<T> out(n_);
        proc_->readBytes(base_, out.data(), out.size() * sizeof(T));
        return out;
    }

  private:
    os::Process *proc_ = nullptr;
    size_t n_ = 0;
    sim::Addr base_ = sim::kBadAddr;
};

/** Host-side CSR sparse matrix (also used as a graph adjacency structure). */
struct SparseMatrix {
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<std::uint32_t> row_ptr;  ///< rows + 1 entries
    std::vector<std::uint32_t> col_idx;  ///< nnz entries
    std::vector<float> vals;             ///< nnz entries

    size_t nnz() const { return col_idx.size(); }

    /** Structural sanity: monotone row_ptr, in-range sorted columns. */
    bool wellFormed() const;
};

/** Uniform random sparse matrix with ~nnz_per_row entries per row. */
SparseMatrix makeUniformSparse(std::uint32_t rows, std::uint32_t cols,
                               std::uint32_t nnz_per_row, std::uint64_t seed);

/**
 * Power-law-skewed sparse matrix: column c is drawn as floor(cols * u^skew),
 * concentrating nonzeros in low columns the way real-world matrices
 * (SuiteSparse) concentrate structure -- this gives the IMAs the partial
 * cache locality the paper's datasets exhibit. skew = 1 is uniform.
 */
SparseMatrix makeSkewedSparse(std::uint32_t rows, std::uint32_t cols,
                              std::uint32_t nnz_per_row, std::uint64_t seed,
                              double skew = 3.0);

/**
 * R-MAT / Kronecker power-law graph with 2^scale vertices and roughly
 * edge_factor * 2^scale edges (duplicates removed, sorted adjacency).
 * Standard (a,b,c) = (0.57, 0.19, 0.19).
 */
SparseMatrix makeRmat(unsigned scale, unsigned edge_factor, std::uint64_t seed,
                      double a = 0.57, double b = 0.19, double c = 0.19);

/** Dense random vector in [0, 1). */
std::vector<float> makeDenseVector(size_t n, std::uint64_t seed);

/** CSR matrix uploaded into simulated memory. */
struct SimCsr {
    SimArray<std::uint32_t> row_ptr;
    SimArray<std::uint32_t> col_idx;
    SimArray<float> vals;  ///< not allocated when with_vals = false

    static SimCsr upload(os::Process &proc, const SparseMatrix &m,
                         bool with_vals = true);
};

}  // namespace maple::app
