#include "workloads/workload.hpp"

namespace maple::app {

const char *
techniqueName(Technique t)
{
    switch (t) {
      case Technique::Doall: return "doall";
      case Technique::SwDecouple: return "sw-decouple";
      case Technique::MapleDecouple: return "maple-decouple";
      case Technique::NoPrefetch: return "no-prefetch";
      case Technique::SwPrefetch: return "sw-prefetch";
      case Technique::LimaPrefetch: return "maple-lima";
      case Technique::Desc: return "desc";
      case Technique::Droplet: return "droplet";
    }
    return "?";
}

Chunk
chunkOf(std::uint64_t total, unsigned t, unsigned n)
{
    MAPLE_ASSERT(n > 0 && t < n);
    std::uint64_t per = total / n;
    std::uint64_t rem = total % n;
    std::uint64_t begin = t * per + std::min<std::uint64_t>(t, rem);
    std::uint64_t len = per + (t < rem ? 1 : 0);
    return Chunk{begin, begin + len};
}

void
collectCoreStats(soc::Soc &soc, RunResult &r)
{
    double latency_weighted = 0.0;
    std::uint64_t total_loads = 0;
    for (unsigned i = 0; i < soc.numCores(); ++i) {
        cpu::Core &c = soc.core(i);
        r.instructions += c.instructions();
        r.loads += c.loads();
        r.stores += c.stores();
        std::uint64_t l = c.loads();
        latency_weighted += c.meanLoadLatency() * static_cast<double>(l);
        total_loads += l;
    }
    r.mean_load_latency =
        total_loads ? latency_weighted / static_cast<double>(total_loads) : 0.0;
    r.sim_events = soc.eq().executed();
}

std::vector<std::unique_ptr<Workload>>
allWorkloads()
{
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(makeSdhp());
    ws.push_back(makeSpmm());
    ws.push_back(makeSpmv());
    ws.push_back(makeBfs());
    return ws;
}

}  // namespace maple::app
