#include "cpu/core.hpp"

#include "fault/fault.hpp"
#include "sim/error.hpp"
#include "sim/log.hpp"

namespace maple::cpu {

Core::Core(sim::EventQueue &eq, CoreParams params, CoreWiring wiring)
    : eq_(eq), params_(std::move(params)), w_(wiring),
      mmu_(eq, *wiring.pm, *wiring.walk_port, params_.tlb_entries,
           params_.tile),
      stats_(params_.name)
{
    MAPLE_ASSERT(w_.pm && w_.l1 && w_.walk_port && w_.amap && w_.mesh,
                 "core wiring incomplete");
}

trace::TraceManager *
Core::tracer()
{
    trace::TraceManager *t = trace::active(eq_);
    if (t && tr_track_ == trace::TraceManager::kNone)
        tr_track_ = t->track(params_.name);
    return t;
}

sim::Task<void>
Core::issue(std::uint64_t insts)
{
    stats_.counter("instructions").inc(insts);
    co_await sim::delay(eq_, params_.issue_cycles * insts);
}

sim::Task<void>
Core::compute(std::uint64_t insts)
{
    co_await issue(insts);
}

sim::Task<std::uint64_t>
Core::load(sim::Addr vaddr, unsigned size)
{
    MAPLE_ASSERT(size >= 1 && size <= 8);
    co_await issue();
    stats_.counter("loads").inc();
    sim::Cycle start = eq_.now();
    trace::TraceManager *tm = tracer();
    if (tm)
        tm->begin(tr_track_, "load", trace::Category::Core);

    mem::Translation tr = co_await mmu_.translate(vaddr, false);
    if (tr.fault)
        MAPLE_THROW(sim::PageFaultError,
                    "%s: load fault at va 0x%llx", params_.name.c_str(),
                    (unsigned long long)vaddr);
    // A TLB hit translates in zero cycles, so elapsed time means a walk ran.
    if (tm && eq_.now() > start)
        tm->complete(tr_track_, "tlb_walk", trace::Category::Mem, start);

    std::uint64_t value;
    if (const auto *win = w_.amap->find(tr.paddr)) {
        sim::Cycle mmio_start = eq_.now();
        value = co_await mmioLoad(*win, tr.paddr, size);
        if (tm)
            tm->complete(tr_track_, "mmio_load", trace::Category::Core, mmio_start);
    } else {
        // The metadata slot lets the hierarchy report data-path state back
        // (RequestMeta::poison): without it, a DRAM uncorrectable error has
        // no way to mark the fill, and containment could never trigger.
        mem::RequestMeta meta;
        co_await w_.l1->request(mem::MemRequest::make(
            eq_, mem::RequesterClass::Core, params_.tile, tr.paddr, size,
            mem::AccessKind::Read, &meta));
        value = 0;
        w_.pm->read(tr.paddr, &value, size);
    }
    if (tm)
        tm->end(tr_track_);
    load_latency_.sample(static_cast<double>(eq_.now() - start));
    co_return value;
}

sim::Task<void>
Core::store(sim::Addr vaddr, std::uint64_t value, unsigned size)
{
    MAPLE_ASSERT(size >= 1 && size <= 8);
    co_await issue();
    stats_.counter("stores").inc();

    mem::Translation tr = co_await mmu_.translate(vaddr, true);
    if (tr.fault)
        MAPLE_THROW(sim::PageFaultError,
                    "%s: store fault at va 0x%llx", params_.name.c_str(),
                    (unsigned long long)vaddr);

    // Retire into the store buffer; stall only when it is full.
    {
        fault::ParkGuard park(eq_, "store_buffer", params_.name);
        while (store_buffer_used_ >= params_.store_buffer) {
            stats_.counter("store_buffer_stalls").inc();
            sim::Signal wait = store_buffer_wait_;
            co_await wait;
        }
    }
    ++store_buffer_used_;
    sim::spawnDetached(eq_, drainStore(tr.paddr, value, size));
}

sim::Task<void>
Core::drainStore(sim::Addr paddr, std::uint64_t value, unsigned size)
{
    if (const auto *win = w_.amap->find(paddr)) {
        co_await mmioStore(*win, paddr, value, size);
    } else {
        mem::RequestMeta meta;  // as in load(): carries poison reports back
        co_await w_.l1->request(mem::MemRequest::make(
            eq_, mem::RequesterClass::Core, params_.tile, paddr, size,
            mem::AccessKind::Write, &meta));
        w_.pm->write(paddr, &value, size);
    }
    --store_buffer_used_;
    sim::Signal wake = std::exchange(store_buffer_wait_, sim::Signal{});
    wake.set(sim::Unit{});
}

sim::Task<void>
Core::storeFence()
{
    fault::ParkGuard park(eq_, "store_fence", params_.name);
    while (store_buffer_used_ > 0) {
        sim::Signal wait = store_buffer_wait_;
        co_await wait;
    }
}

sim::Task<void>
Core::prefetchL1(sim::Addr vaddr)
{
    co_await issue();
    stats_.counter("prefetches").inc();
    // Prefetch is a load-class instruction (it occupies a load-issue slot
    // and performs translation); figure 10 counts it accordingly.
    stats_.counter("loads").inc();
    mem::Translation tr = co_await mmu_.translate(vaddr, false);
    if (tr.fault)
        co_return;  // prefetches to unmapped pages are dropped, like real HW
    if (w_.l1_cache && !w_.amap->isMmio(tr.paddr))
        w_.l1_cache->prefetch(tr.paddr);
}

sim::Task<std::uint64_t>
Core::amoAdd(sim::Addr vaddr, std::uint64_t delta, unsigned size)
{
    MAPLE_ASSERT(size == 4 || size == 8);
    MAPLE_ASSERT(w_.atomic_port, "core has no atomic port");
    co_await issue();
    stats_.counter("atomics").inc();

    mem::Translation tr = co_await mmu_.translate(vaddr, true);
    if (tr.fault)
        MAPLE_THROW(sim::PageFaultError,
                    "%s: amo fault at va 0x%llx", params_.name.c_str(),
                    (unsigned long long)vaddr);
    MAPLE_ASSERT(!w_.amap->isMmio(tr.paddr), "atomics to MMIO unsupported");

    co_await w_.atomic_port->request(mem::MemRequest::make(
        eq_, mem::RequesterClass::Core, params_.tile, tr.paddr, size,
        mem::AccessKind::Write));
    // Functional read-modify-write happens atomically at completion time.
    std::uint64_t old = 0;
    w_.pm->read(tr.paddr, &old, size);
    std::uint64_t updated = old + delta;
    w_.pm->write(tr.paddr, &updated, size);
    co_return old;
}

sim::Task<std::uint64_t>
Core::loadShared(sim::Addr vaddr, unsigned size)
{
    MAPLE_ASSERT(size >= 1 && size <= 8);
    co_await issue();
    stats_.counter("loads").inc();
    stats_.counter("shared_loads").inc();
    sim::Cycle start = eq_.now();
    trace::TraceManager *tm = tracer();
    if (tm)
        tm->begin(tr_track_, "load_shared", trace::Category::Core);
    mem::Translation tr = co_await mmu_.translate(vaddr, false);
    if (tr.fault)
        MAPLE_THROW(sim::PageFaultError,
                    "%s: shared load fault at va 0x%llx", params_.name.c_str(),
                    (unsigned long long)vaddr);
    mem::Port *shared_port =
        params_.coherent_shared ? w_.l1 : w_.atomic_port;
    co_await shared_port->request(mem::MemRequest::make(
        eq_, mem::RequesterClass::Core, params_.tile, tr.paddr, size,
        mem::AccessKind::Read));
    std::uint64_t value = 0;
    w_.pm->read(tr.paddr, &value, size);
    if (tm)
        tm->end(tr_track_);
    load_latency_.sample(static_cast<double>(eq_.now() - start));
    co_return value;
}

sim::Task<void>
Core::storeShared(sim::Addr vaddr, std::uint64_t value, unsigned size)
{
    MAPLE_ASSERT(size >= 1 && size <= 8);
    co_await issue();
    stats_.counter("stores").inc();
    mem::Translation tr = co_await mmu_.translate(vaddr, true);
    if (tr.fault)
        MAPLE_THROW(sim::PageFaultError,
                    "%s: shared store fault at va 0x%llx", params_.name.c_str(),
                    (unsigned long long)vaddr);
    {
        fault::ParkGuard park(eq_, "store_buffer", params_.name);
        while (store_buffer_used_ >= params_.store_buffer) {
            stats_.counter("store_buffer_stalls").inc();
            sim::Signal wait = store_buffer_wait_;
            co_await wait;
        }
    }
    ++store_buffer_used_;
    auto drain = [](Core *self, sim::Addr paddr, std::uint64_t v,
                    unsigned sz) -> sim::Task<void> {
        mem::Port *p = self->params_.coherent_shared ? self->w_.l1
                                                     : self->w_.atomic_port;
        co_await p->request(mem::MemRequest::make(
            self->eq_, mem::RequesterClass::Core, self->params_.tile, paddr,
            sz, mem::AccessKind::Write));
        self->w_.pm->write(paddr, &v, sz);
        --self->store_buffer_used_;
        sim::Signal wake = std::exchange(self->store_buffer_wait_, sim::Signal{});
        wake.set(sim::Unit{});
    };
    sim::spawnDetached(eq_, drain(this, tr.paddr, value, size));
}

sim::Task<std::uint64_t>
Core::mmioLoad(const soc::AddressMap::Window &w, sim::Addr paddr, unsigned size)
{
    stats_.counter("mmio_loads").inc();
    const unsigned fb = w_.mesh->params().flit_bytes;
    co_await sim::delay(eq_, params_.l1_bypass + params_.l15_latency +
                                 params_.mmio_extra_latency);
    co_await w_.mesh->transit(params_.tile, w.tile, noc::flitsFor(0, fb),
                              mem::RequesterClass::Mmio);
    std::uint64_t v = co_await w.device->mmioLoad(paddr, size, params_.thread);
    co_await w_.mesh->transit(w.tile, params_.tile, noc::flitsFor(size, fb),
                              mem::RequesterClass::Mmio);
    co_await sim::delay(eq_, params_.l15_latency + params_.l1_bypass +
                                 params_.mmio_extra_latency);
    co_return v;
}

sim::Task<void>
Core::mmioStore(const soc::AddressMap::Window &w, sim::Addr paddr,
                std::uint64_t value, unsigned size)
{
    stats_.counter("mmio_stores").inc();
    const unsigned fb = w_.mesh->params().flit_bytes;
    co_await sim::delay(eq_, params_.l1_bypass + params_.l15_latency +
                                 params_.mmio_extra_latency);
    co_await w_.mesh->transit(params_.tile, w.tile, noc::flitsFor(size, fb),
                              mem::RequesterClass::Mmio);
    co_await w.device->mmioStore(paddr, value, size, params_.thread);
    // The ack is a header-only packet.
    co_await w_.mesh->transit(w.tile, params_.tile, noc::flitsFor(0, fb),
                              mem::RequesterClass::Mmio);
    co_await sim::delay(eq_, params_.l15_latency + params_.l1_bypass +
                                 params_.mmio_extra_latency);
}

Core::RoundTrip
Core::mmioRoundTrip(sim::TileId device_tile) const
{
    unsigned hops = w_.mesh->hops(params_.tile, device_tile);
    sim::Cycle hop_cy = w_.mesh->params().hop_latency;
    return RoundTrip{
        params_.l1_bypass,            // L1 out
        params_.l15_latency + params_.mmio_extra_latency,  // L1.5 out
        hops * hop_cy + 1,            // NoC out (+1 header serialization)
        hops * hop_cy + 1,            // NoC back
        params_.l15_latency + params_.mmio_extra_latency,  // L1.5 back
        params_.l1_bypass,            // L1 back
    };
}

}  // namespace maple::cpu
