/**
 * @file
 * In-order, single-issue core model (Ariane-like; Table 2/3: instruction
 * window 1, blocking loads).
 *
 * Simulated software runs as coroutines that call the methods below; every
 * method charges issue/memory/translation latency against the shared
 * EventQueue. Loads block the "pipeline" (the coroutine) until data returns,
 * which is precisely why software-only decoupling loses runahead on this
 * core and MAPLE does not.
 */
#pragma once

#include <cstdint>
#include <string>

#include "mem/cache.hpp"
#include "mem/mmu.hpp"
#include "mem/physical_memory.hpp"
#include "mem/port.hpp"
#include "noc/mesh.hpp"
#include "sim/coro.hpp"
#include "sim/stats.hpp"
#include "soc/address_map.hpp"
#include "trace/trace.hpp"

namespace maple::cpu {

struct CoreParams {
    std::string name = "core";
    sim::TileId tile = 0;
    sim::ThreadId thread = 0;
    sim::Cycle issue_cycles = 1;   ///< single-issue: one instruction per cycle
    size_t tlb_entries = 16;
    sim::Cycle l1_bypass = 2;      ///< MMIO pass-through of the L1 (each way)
    sim::Cycle l15_latency = 6;    ///< OpenPiton L1.5 stage (each way)
    unsigned store_buffer = 4;     ///< outstanding retired stores (Ariane-like)
    /** Extra one-way MMIO latency (Figure 15's core-to-MAPLE sweep). */
    sim::Cycle mmio_extra_latency = 0;
    /**
     * Route loadShared/storeShared through the (coherent) L1 instead of the
     * uncached LLC round trip. Only set when the SoC runs an actual
     * coherence protocol (--coherence=msi): shared lines are then cached
     * locally and kept honest by directory invalidations.
     */
    bool coherent_shared = false;
};

/** Everything a core is wired to; assembled by soc::Soc. */
struct CoreWiring {
    mem::PhysicalMemory *pm = nullptr;
    mem::Port *l1 = nullptr;           ///< demand path (top of local cache)
    mem::Cache *l1_cache = nullptr;    ///< same cache, for prefetch inserts
    mem::Port *walk_port = nullptr;    ///< page-table walker port
    mem::Port *atomic_port = nullptr;  ///< RMW ops (serviced at the LLC)
    const soc::AddressMap *amap = nullptr;
    noc::Mesh *mesh = nullptr;
};

class Core {
  public:
    Core(sim::EventQueue &eq, CoreParams params, CoreWiring wiring);

    /// @name Program-visible operations (awaited by workload coroutines)
    /// @{

    /** Blocking load of @p size bytes (1..8), zero-extended. */
    sim::Task<std::uint64_t> load(sim::Addr vaddr, unsigned size = 8);

    /**
     * Store of @p size bytes. The instruction retires into the store buffer,
     * so the coroutine resumes as soon as a buffer slot is free; the store
     * itself (cache write or MMIO request + ack) drains in the background.
     * A full buffer stalls the pipeline -- this is how MAPLE queue-full
     * backpressure reaches the Access thread.
     */
    sim::Task<void> store(sim::Addr vaddr, std::uint64_t value, unsigned size = 8);

    /** Wait until the store buffer has fully drained (fence semantics). */
    sim::Task<void> storeFence();

    /** Execute @p insts ALU instructions (charges issue cycles). */
    sim::Task<void> compute(std::uint64_t insts = 1);

    /** Software prefetch instruction: translate and fill L1, non-blocking. */
    sim::Task<void> prefetchL1(sim::Addr vaddr);

    /** Atomic fetch-and-add serviced at the LLC (amoadd.d-style). */
    sim::Task<std::uint64_t> amoAdd(sim::Addr vaddr, std::uint64_t delta,
                                    unsigned size = 8);

    /**
     * Load/store of actively-shared data (e.g. software queue head/tail and
     * payload). Without a coherence protocol (the default), lines that would
     * ping-pong between cores are charged an LLC round trip instead of being
     * cached locally, which is the dominant cost of an invalidation-based
     * protocol under producer/consumer sharing. With coherent_shared set
     * (--coherence=msi) they go through the L1 like any other access and the
     * directory protocol provides the invalidations for real.
     */
    sim::Task<std::uint64_t> loadShared(sim::Addr vaddr, unsigned size = 8);
    sim::Task<void> storeShared(sim::Addr vaddr, std::uint64_t value, unsigned size = 8);

    /// @}

    mem::Mmu &mmu() { return mmu_; }
    sim::StatGroup &stats() { return stats_; }
    const CoreParams &params() const { return params_; }
    sim::ThreadId thread() const { return params_.thread; }
    sim::TileId tile() const { return params_.tile; }

    std::uint64_t instructions() const { return stats_.counterValue("instructions"); }
    std::uint64_t loads() const { return stats_.counterValue("loads"); }
    std::uint64_t stores() const { return stats_.counterValue("stores"); }
    double meanLoadLatency() const { return load_latency_.mean(); }

    /**
     * Static round-trip breakdown (cycles) of a core-to-device MMIO access,
     * excluding the device's own service time (Figure 14).
     */
    struct RoundTrip {
        sim::Cycle l1_out, l15_out, noc_out, noc_back, l15_back, l1_back;
        sim::Cycle total() const { return l1_out + l15_out + noc_out + noc_back + l15_back + l1_back; }
    };
    RoundTrip mmioRoundTrip(sim::TileId device_tile) const;

    /**
     * Snapshot support. Only valid at a quiesced point: the store buffer has
     * drained (no background stores in flight), so the restorable state is
     * the MMU/TLB plus the counters.
     */
    void
    saveState(ckpt::Sink &out) const
    {
        MAPLE_ASSERT(store_buffer_used_ == 0,
                     "snapshot with undrained store buffer");
        mmu_.saveState(out);
        stats_.saveState(out);
        load_latency_.saveState(out);
        // Cached trace-track handle: the tracer's track table round-trips,
        // so the id must too or a restored core would mint a duplicate.
        out.u32(tr_track_);
    }

    void
    loadState(ckpt::Source &in)
    {
        MAPLE_ASSERT(store_buffer_used_ == 0,
                     "restore with undrained store buffer");
        mmu_.loadState(in);
        stats_.loadState(in);
        load_latency_.loadState(in);
        tr_track_ = in.u32();
    }

  private:
    sim::Task<std::uint64_t> mmioLoad(const soc::AddressMap::Window &w,
                                      sim::Addr paddr, unsigned size);
    sim::Task<void> mmioStore(const soc::AddressMap::Window &w, sim::Addr paddr,
                              std::uint64_t value, unsigned size);
    sim::Task<void> drainStore(sim::Addr paddr, std::uint64_t value, unsigned size);
    sim::Task<void> issue(std::uint64_t insts = 1);

    /**
     * Active tracer or nullptr; lazily creates the core's fixed track. The
     * core is in-order with blocking loads, so one program-visible op is in
     * flight at a time and spans on the track nest by construction
     * (background store-buffer drains are deliberately not traced).
     */
    trace::TraceManager *tracer();

    sim::EventQueue &eq_;
    CoreParams params_;
    CoreWiring w_;
    mem::Mmu mmu_;
    sim::StatGroup stats_;
    sim::Average load_latency_;
    unsigned store_buffer_used_ = 0;
    sim::Signal store_buffer_wait_;
    trace::TraceManager::TrackId tr_track_ = trace::TraceManager::kNone;
};

}  // namespace maple::cpu
