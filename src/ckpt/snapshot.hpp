/**
 * @file
 * Versioned, deterministic snapshot/restore of full simulator state.
 *
 * Format: a fixed header {magic, format version, config hash, cycle}
 * followed by tagged sections ({u32 tag, u64 len, payload}, see
 * ckpt/serial.hpp). Readers skip unknown tags, so a snapshot taken with
 * tracing enabled restores into a Soc without a tracer. The config hash
 * covers only *structural* configuration (core/MAPLE counts, cache
 * geometry, DRAM/mesh/arbitration parameters); runtime knobs — name,
 * trace outputs, fault plan, watchdog — are valid variant axes over one
 * warm image and are excluded.
 *
 * Snapshots are only taken at quiesced points (event queue drained, no
 * parked waiters): C++20 coroutine frames are not serializable, so the
 * capture point is between Soc::run() phases, where zero frames are live
 * but caches, TLBs, MAPLE queues, RNG streams, stats and trace buffers
 * are all warm. Restore-then-run is byte-identical to an uninterrupted
 * run; tests/test_ckpt.cpp locks that guarantee.
 *
 * Soc::snapshot() / Soc::restore() are declared in soc/soc.hpp and
 * defined here (libmaple_ckpt) so the core SoC library does not grow a
 * serialization dependency.
 */
#pragma once

#include <cstdint>

namespace maple::soc {
struct SocConfig;
}

namespace maple::ckpt {

/** "MAPLCKPT" — the first 8 bytes of every snapshot stream. */
inline constexpr std::uint64_t kMagic = 0x54504b434c50414dull;

/**
 * Bumped whenever any component's serialized layout changes.
 * v2: every stream ends with a mandatory Checksum section — an FNV-1a over
 * all preceding bytes — so corruption and truncation surface as a typed
 * SnapshotError (BadChecksum) instead of silently restoring garbage.
 * v3: the Fault section grows two coherence fault classes, coherent caches
 * write per-line MSI state, and msi-mode streams add Directory/SliceLlc
 * sections for the sparse directories and the extra LLC slices.
 * v4: every cache way writes its poison bit, the Fault section grows the
 * four BitFlip* classes, and resilience-enabled streams add a Resil
 * section (ECC counters, MCA banks, backing poison, scrub cursor).
 */
inline constexpr std::uint32_t kFormatVersion = 4;

/** Tagged-section identifiers (u32 on the wire). */
enum class Section : std::uint32_t {
    Engine = 1,    ///< EventQueue clock/sequence/ticket counters
    Kernel = 2,    ///< processes, address spaces, frame watermark
    PhysMem = 3,   ///< allocated physical pages (raw 4KB images)
    Mesh = 4,      ///< NoC link reservations + stats
    Dram = 5,      ///< channel state, arbitration, stats
    LlcFront = 6,  ///< shared-LLC interposer stats + arbitration
    Llc = 7,       ///< shared LLC tag/data-state/LRU + stats
    Core = 8,      ///< one per core: index, private L1, core state
    Maple = 9,     ///< one per MAPLE: index, queues, device registers
    Fault = 10,    ///< fault plan RNG streams, counters, event log
    Trace = 11,    ///< trace events, probe samples, stall attribution
    /**
     * Mandatory integrity footer, always the last section: u64 FNV-1a over
     * every stream byte before this section's tag. A reader stops at this
     * section (supporting concatenated per-chip streams); a stream that
     * ends without one is reported as truncated.
     */
    Checksum = 12,
    Directory = 13,  ///< coherence fabric: message counters + per-slice dirs
    SliceLlc = 14,   ///< one per extra LLC slice (msi mode): index, cache
    Resil = 15,      ///< resilience: ECC stats, MCA banks, poison, scrub
};

/**
 * FNV-1a hash over the structural fields of @p cfg. Mesh geometry is
 * resolved the same way Soc's constructor resolves it, so hashing a
 * pre-construction config and a Soc's post-construction config() agree.
 */
std::uint64_t configHash(const soc::SocConfig &cfg);

}  // namespace maple::ckpt
