/**
 * @file
 * Zero-dependency binary serialization primitives for the snapshot/restore
 * subsystem (src/ckpt). A snapshot is a stream of little-endian fixed-width
 * scalars framed into tagged sections; Sink writes, Source reads and
 * validates. Every multi-byte value is written byte-by-byte so the format is
 * identical across host endianness and ABI.
 *
 * Design rules:
 *  - doubles travel as IEEE-754 bit patterns (std::bit_cast), never text, so
 *    restore-then-run is bit-identical to an uninterrupted run;
 *  - containers are always length-prefixed (u64 count);
 *  - a Source that runs dry or reads a malformed length throws SnapshotError
 *    (a sim::FatalError), never silently truncates.
 */
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/error.hpp"

namespace maple::ckpt {

/** Malformed, truncated, or incompatible snapshot data. */
class SnapshotError : public sim::FatalError {
  public:
    using sim::FatalError::FatalError;

    class BadChecksum;
};

/**
 * The stream's integrity footer does not match its content: the snapshot
 * was corrupted (bit rot, torn write, chaos injection) after it was taken.
 * Callers must discard any state restored from the stream — sections are
 * applied as they are read, so a Soc that saw BadChecksum is garbage.
 */
class SnapshotError::BadChecksum : public SnapshotError {
  public:
    using SnapshotError::SnapshotError;
};

/** FNV-1a offset/prime, shared by the Sink/Source running checksums. */
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/**
 * Binary writer over a std::ostream. Every byte written also feeds a
 * running FNV-1a hash (hash()), which the snapshot writer emits as a
 * trailing integrity footer (Section::Checksum).
 */
class Sink {
  public:
    explicit Sink(std::ostream &os) : os_(os) {}

    void
    u8(std::uint8_t v)
    {
        mix(v);
        os_.put(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void b(bool v) { u8(v ? 1 : 0); }

    /** IEEE-754 bit pattern, not text: exact round trip. */
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i)
            mix(p[i]);
        os_.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(n));
    }

    void
    vecU64(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (std::uint64_t x : v)
            u64(x);
    }

    /** Running FNV-1a over every byte written so far. */
    std::uint64_t hash() const { return hash_; }

    bool good() const { return os_.good(); }
    std::ostream &stream() { return os_; }

  private:
    void
    mix(std::uint8_t v)
    {
        hash_ ^= v;
        hash_ *= kFnvPrime;
    }

    std::ostream &os_;
    std::uint64_t hash_ = kFnvOffset;
};

/**
 * Binary reader over a std::istream; throws SnapshotError on underrun.
 * Mirrors the Sink's running FNV-1a over every byte consumed (including
 * skipped sections), so a reader can validate the writer's checksum footer.
 */
class Source {
  public:
    explicit Source(std::istream &is) : is_(is) {}

    std::uint8_t
    u8()
    {
        int c = is_.get();
        if (c == std::char_traits<char>::eof())
            MAPLE_THROW(SnapshotError, "snapshot truncated");
        mix(static_cast<std::uint8_t>(c));
        return static_cast<std::uint8_t>(c);
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(u8()) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    bool b() { return u8() != 0; }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        std::uint64_t n = u64();
        checkLength(n);
        std::string s(n, '\0');
        readExact(s.data(), n);
        return s;
    }

    void
    bytes(void *data, std::size_t n)
    {
        readExact(static_cast<char *>(data), n);
    }

    std::vector<std::uint64_t>
    vecU64()
    {
        std::uint64_t n = u64();
        checkLength(n);
        std::vector<std::uint64_t> v(n);
        for (auto &x : v)
            x = u64();
        return v;
    }

    /**
     * Skip @p n payload bytes (unknown section tags). Skipped bytes still
     * feed the running hash — the writer hashed them.
     */
    void
    skip(std::uint64_t n)
    {
        char buf[1 << 12];
        while (n > 0) {
            const std::size_t chunk =
                static_cast<std::size_t>(std::min<std::uint64_t>(n, sizeof buf));
            is_.read(buf, static_cast<std::streamsize>(chunk));
            if (static_cast<std::size_t>(is_.gcount()) != chunk)
                MAPLE_THROW(SnapshotError, "snapshot truncated during skip");
            for (std::size_t i = 0; i < chunk; ++i)
                mix(static_cast<std::uint8_t>(buf[i]));
            n -= chunk;
        }
    }

    /** True at a clean end of stream (used by the section loop). */
    bool
    atEof()
    {
        return is_.peek() == std::char_traits<char>::eof();
    }

    /** Running FNV-1a over every byte consumed so far. */
    std::uint64_t hash() const { return hash_; }

    std::istream &stream() { return is_; }

  private:
    void
    readExact(char *dst, std::size_t n)
    {
        is_.read(dst, static_cast<std::streamsize>(n));
        if (static_cast<std::size_t>(is_.gcount()) != n)
            MAPLE_THROW(SnapshotError, "snapshot truncated");
        for (std::size_t i = 0; i < n; ++i)
            mix(static_cast<std::uint8_t>(dst[i]));
    }

    void
    mix(std::uint8_t v)
    {
        hash_ ^= v;
        hash_ *= kFnvPrime;
    }

    static void
    checkLength(std::uint64_t n)
    {
        // A length prefix far beyond any plausible snapshot means the stream
        // is corrupt; fail before trying to allocate it.
        if (n > (1ull << 40))
            MAPLE_THROW(SnapshotError,
                        "implausible snapshot length %llu (corrupt stream?)",
                        (unsigned long long)n);
    }

    std::istream &is_;
    std::uint64_t hash_ = kFnvOffset;
};

/**
 * Tagged-section framing: each section is {u32 tag, u64 payload_len,
 * payload}. A reader switches on the tag and must either consume exactly
 * payload_len bytes or skip() them — unknown tags are skippable, so a
 * snapshot taken with tracing enabled restores into a Soc without a tracer.
 */
class SectionWriter {
  public:
    /**
     * Buffers the section payload so the length prefix can be emitted before
     * it; sections are small relative to raw memory pages, which are written
     * through bytes() in one pass.
     */
    SectionWriter(Sink &out, std::uint32_t tag) : out_(out), tag_(tag) {}

    Sink &sink() { return payload_sink_; }

    void
    finish()
    {
        out_.u32(tag_);
        const std::string body = buf_.str();
        out_.u64(body.size());
        out_.bytes(body.data(), body.size());
    }

  private:
    Sink &out_;
    std::uint32_t tag_;
    std::ostringstream buf_;
    Sink payload_sink_{buf_};
};

}  // namespace maple::ckpt
