#include "ckpt/snapshot.hpp"

#include <istream>
#include <ostream>

#include "ckpt/serial.hpp"
#include "sim/error.hpp"
#include "soc/soc.hpp"

namespace maple::ckpt {

namespace {

// kFnvOffset / kFnvPrime come from serial.hpp (shared with the stream
// checksum machinery).

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void
mixCache(std::uint64_t &h, const mem::CacheParams &p)
{
    mix(h, p.size_bytes);
    mix(h, p.assoc);
    mix(h, p.hit_latency);
    mix(h, p.mshrs);
}

}  // namespace

std::uint64_t
configHash(const soc::SocConfig &cfg)
{
    // Resolve coherence knobs and mesh geometry exactly as Soc's
    // constructor does, so hashing a pre-construction config matches
    // hashing soc.config() afterwards (both resolutions are idempotent).
    mem::CoherenceConfig coh = cfg.coherence;
    coh.mergeEnv();
    unsigned llc_slices = soc::llcSlicesFromEnv(cfg.llc_slices);
    if (!coh.enabled() || llc_slices < 1)
        llc_slices = 1;
    unsigned tiles_needed = cfg.num_cores + cfg.num_maples + llc_slices;
    unsigned mesh_w = cfg.mesh_width;
    unsigned mesh_h = cfg.mesh_height;
    if (mesh_w == 0 || mesh_h == 0) {
        unsigned w = 1;
        while (w * w < tiles_needed)
            ++w;
        mesh_w = w;
        mesh_h = (tiles_needed + w - 1) / w;
    }

    std::uint64_t h = kFnvOffset;
    mix(h, cfg.num_cores);
    mix(h, cfg.num_maples);
    mix(h, mesh_w);
    mix(h, mesh_h);
    mix(h, cfg.dram_bytes);
    mixCache(h, cfg.l1);
    mixCache(h, cfg.llc);
    mix(h, cfg.dram.latency);
    mix(h, cfg.dram.cycles_per_line);
    mix(h, cfg.dram.channels);
    mix(h, static_cast<std::uint64_t>(cfg.dram.arb));
    mix(h, static_cast<std::uint64_t>(cfg.llc_arb));
    mix(h, cfg.mesh.hop_latency);
    mix(h, cfg.mesh.flit_bytes);
    mix(h, cfg.core_proto.issue_cycles);
    mix(h, cfg.core_proto.tlb_entries);
    mix(h, cfg.core_proto.l1_bypass);
    mix(h, cfg.core_proto.l15_latency);
    mix(h, cfg.core_proto.store_buffer);
    mix(h, cfg.core_proto.mmio_extra_latency);
    mix(h, cfg.maple_proto.scratchpad_bytes);
    mix(h, cfg.maple_proto.max_queues);
    mix(h, cfg.maple_proto.produce_buffer);
    mix(h, cfg.maple_proto.lima_cmds);
    mix(h, cfg.maple_proto.pipe_latency);
    mix(h, cfg.maple_proto.tlb_entries);
    mix(h, cfg.maple_proto.fetch_via_llc ? 1 : 0);
    mix(h, cfg.maple_proto.shared_pipeline_hazard ? 1 : 0);
    mix(h, cfg.kernel.fault_latency);
    // Mixed only when a protocol is enabled, so a coherence-free config
    // hashes identically to builds that predate coherence (their snapshots
    // would still be rejected by the format-version bump, but warm images
    // taken by *this* build in none mode stay portable across the flag).
    if (coh.enabled()) {
        mix(h, static_cast<std::uint64_t>(coh.mode));
        mix(h, coh.dir_entries);
        mix(h, coh.dir_assoc);
        mix(h, coh.max_sharers);
        mix(h, coh.dir_latency);
        mix(h, llc_slices);
    }
    return h;
}

}  // namespace maple::ckpt

namespace maple::soc {

void
Soc::snapshot(std::ostream &os)
{
    // Quiesce check: with live coroutine frames (pending events or waiters
    // parked in the fault injector) the machine state is not serializable.
    MAPLE_CHECK(eq_.pending() == 0, ckpt::SnapshotError,
                "snapshot requires a quiesced SoC: %llu events still pending",
                (unsigned long long)eq_.pending());
    MAPLE_CHECK(fault_->parkedWaiters() == 0, ckpt::SnapshotError,
                "snapshot requires a quiesced SoC: %u waiters parked in the "
                "fault injector",
                fault_->parkedWaiters());

    ckpt::Sink out(os);
    out.u64(ckpt::kMagic);
    out.u32(ckpt::kFormatVersion);
    out.u64(ckpt::configHash(cfg_));
    out.u64(eq_.now());

    auto writeSection = [&out](ckpt::Section tag, auto &&fill) {
        ckpt::SectionWriter w(out, static_cast<std::uint32_t>(tag));
        fill(w.sink());
        w.finish();
    };

    writeSection(ckpt::Section::Engine, [this](ckpt::Sink &s) {
        sim::EventQueue::EngineState st = eq_.engineState();
        s.u64(st.now);
        s.u64(st.seq);
        s.u64(st.executed);
        s.u64(st.next_ticket);
    });
    writeSection(ckpt::Section::Kernel,
                 [this](ckpt::Sink &s) { kernel_->saveState(s); });
    writeSection(ckpt::Section::PhysMem,
                 [this](ckpt::Sink &s) { pm_->saveState(s); });
    writeSection(ckpt::Section::Mesh,
                 [this](ckpt::Sink &s) { mesh_->saveState(s); });
    writeSection(ckpt::Section::Dram,
                 [this](ckpt::Sink &s) { dram_->saveState(s); });
    writeSection(ckpt::Section::LlcFront,
                 [this](ckpt::Sink &s) { llc_front_->saveState(s); });
    writeSection(ckpt::Section::Llc,
                 [this](ckpt::Sink &s) { llc_->saveState(s); });
    // Extra LLC slices and the coherence fabric (msi mode only). Written
    // before the Core sections: restore resets the reference checker when
    // it sees the Directory section, and the per-core Cache::loadState
    // calls that follow re-seed the checker with every held line.
    if (coh_) {
        for (unsigned s = 1; s < cfg_.llc_slices; ++s) {
            writeSection(ckpt::Section::SliceLlc, [this, s](ckpt::Sink &sk) {
                sk.u32(s);
                slice_llcs_[s - 1]->saveState(sk);
            });
        }
        writeSection(ckpt::Section::Directory,
                     [this](ckpt::Sink &s) { coh_->saveState(s); });
    }
    for (unsigned i = 0; i < numCores(); ++i) {
        writeSection(ckpt::Section::Core, [this, i](ckpt::Sink &s) {
            s.u32(i);
            l1s_[i]->saveState(s);
            cores_[i]->saveState(s);
        });
    }
    for (unsigned i = 0; i < numMaples(); ++i) {
        writeSection(ckpt::Section::Maple, [this, i](ckpt::Sink &s) {
            s.u32(i);
            maples_[i]->saveState(s);
        });
    }
    writeSection(ckpt::Section::Fault,
                 [this](ckpt::Sink &s) { fault_->saveState(s); });
    if (resil_) {
        writeSection(ckpt::Section::Resil,
                     [this](ckpt::Sink &s) { resil_->saveState(s); });
    }
    if (tracer_) {
        writeSection(ckpt::Section::Trace,
                     [this](ckpt::Sink &s) { tracer_->saveState(s); });
    }

    // Integrity footer: FNV-1a over every byte written so far, captured
    // before this section's own tag so the reader can compare it against
    // its running hash at the same point.
    const std::uint64_t content_hash = out.hash();
    out.u32(static_cast<std::uint32_t>(ckpt::Section::Checksum));
    out.u64(sizeof content_hash);
    out.u64(content_hash);

    MAPLE_CHECK(out.good(), ckpt::SnapshotError,
                "snapshot stream write failed");
}

void
Soc::restore(std::istream &is)
{
    MAPLE_CHECK(eq_.pending() == 0, ckpt::SnapshotError,
                "restore requires a freshly-constructed (idle) SoC");

    ckpt::Source in(is);
    std::uint64_t magic = in.u64();
    MAPLE_CHECK(magic == ckpt::kMagic, ckpt::SnapshotError,
                "not a MAPLE snapshot (bad magic 0x%llx)",
                (unsigned long long)magic);
    std::uint32_t version = in.u32();
    MAPLE_CHECK(version == ckpt::kFormatVersion, ckpt::SnapshotError,
                "snapshot format version %u, this build reads %u", version,
                ckpt::kFormatVersion);
    std::uint64_t hash = in.u64();
    std::uint64_t want = ckpt::configHash(cfg_);
    MAPLE_CHECK(hash == want, ckpt::SnapshotError,
                "snapshot config hash 0x%llx does not match this SoC's "
                "structural config 0x%llx",
                (unsigned long long)hash, (unsigned long long)want);
    std::uint64_t cycle = in.u64();
    (void)cycle;  // informational; the Engine section carries the clock

    bool checksum_seen = false;
    while (!checksum_seen && !in.atEof()) {
        const std::uint64_t pre_section_hash = in.hash();
        std::uint32_t tag = in.u32();
        std::uint64_t len = in.u64();
        std::streampos start = is.tellg();
        switch (static_cast<ckpt::Section>(tag)) {
        case ckpt::Section::Engine: {
            sim::EventQueue::EngineState st;
            st.now = in.u64();
            st.seq = in.u64();
            st.executed = in.u64();
            st.next_ticket = in.u64();
            eq_.setEngineState(st);
            break;
        }
        case ckpt::Section::Kernel:
            kernel_->loadState(in);
            break;
        case ckpt::Section::PhysMem:
            pm_->loadState(in);
            // Process address spaces exist again and physical memory holds
            // the snapshot's page tables: re-create the core-MMU wiring that
            // Soc::createProcess() installs. Per-core MMU root and TLB
            // contents are overwritten by the Core sections that follow.
            for (os::Process *proc : kernel_->processes())
                for (auto &core : cores_)
                    proc->attachMmu(&core->mmu());
            break;
        case ckpt::Section::Mesh:
            mesh_->loadState(in);
            break;
        case ckpt::Section::Dram:
            dram_->loadState(in);
            break;
        case ckpt::Section::LlcFront:
            llc_front_->loadState(in);
            break;
        case ckpt::Section::Llc:
            llc_->loadState(in);
            break;
        case ckpt::Section::SliceLlc: {
            std::uint32_t s = in.u32();
            MAPLE_CHECK(coh_ && s >= 1 && s < cfg_.llc_slices,
                        ckpt::SnapshotError,
                        "snapshot LLC slice index %u out of range", s);
            slice_llcs_[s - 1]->loadState(in);
            break;
        }
        case ckpt::Section::Directory:
            // Config-hash gating means an msi stream only restores into an
            // msi Soc, so coh_ exists. Start the reference checker from a
            // clean slate here; the Core sections that follow re-seed it
            // via Cache::loadState with exactly the lines each L1 holds.
            MAPLE_CHECK(coh_ != nullptr, ckpt::SnapshotError,
                        "snapshot has coherence state but this SoC runs "
                        "--coherence=none");
            if (mem::CoherenceChecker *ck = coh_->checker())
                ck->reset();
            coh_->loadState(in);
            break;
        case ckpt::Section::Core: {
            std::uint32_t i = in.u32();
            MAPLE_CHECK(i < numCores(), ckpt::SnapshotError,
                        "snapshot core index %u out of range", i);
            l1s_[i]->loadState(in);
            cores_[i]->loadState(in);
            break;
        }
        case ckpt::Section::Maple: {
            std::uint32_t i = in.u32();
            MAPLE_CHECK(i < numMaples(), ckpt::SnapshotError,
                        "snapshot MAPLE index %u out of range", i);
            maples_[i]->loadState(in);
            break;
        }
        case ckpt::Section::Fault:
            fault_->loadState(in);
            break;
        case ckpt::Section::Resil:
            // Like Trace, a runtime variant axis: a stream captured with
            // the resilience model on may restore into a SoC running
            // without it (the warm image is identical; only RAS telemetry
            // and poison bookkeeping are dropped).
            if (resil_)
                resil_->loadState(in);
            else
                in.skip(len);
            break;
        case ckpt::Section::Trace:
            if (tracer_)
                tracer_->loadState(in);
            else
                in.skip(len);
            break;
        case ckpt::Section::Checksum: {
            MAPLE_CHECK(len == 8, ckpt::SnapshotError,
                        "checksum section has length %llu, expected 8",
                        (unsigned long long)len);
            const std::uint64_t want = in.u64();
            MAPLE_CHECK(want == pre_section_hash,
                        ckpt::SnapshotError::BadChecksum,
                        "snapshot checksum mismatch: stream content hashes "
                        "to 0x%llx but the footer says 0x%llx — the "
                        "snapshot is corrupt; discard this SoC",
                        (unsigned long long)pre_section_hash,
                        (unsigned long long)want);
            // The footer is always last; stop here so concatenated
            // per-chip streams stay individually restorable.
            checksum_seen = true;
            break;
        }
        default:
            in.skip(len);  // unknown section from a richer writer
            break;
        }
        if (start != std::streampos(-1)) {
            std::streampos end = is.tellg();
            MAPLE_CHECK(end != std::streampos(-1) &&
                            static_cast<std::uint64_t>(end - start) == len,
                        ckpt::SnapshotError,
                        "section tag %u consumed %llu bytes, expected %llu",
                        tag, (unsigned long long)(end - start),
                        (unsigned long long)len);
        }
    }
    // A v2 stream always ends with the footer: running off the end of the
    // stream without seeing one means the tail was cut off at a section
    // boundary — indistinguishable from an older truncated-but-parseable
    // stream without this check.
    MAPLE_CHECK(checksum_seen, ckpt::SnapshotError::BadChecksum,
                "snapshot ends without a checksum footer (truncated?)");
}

}  // namespace maple::soc
