#include "harness/json.hpp"

#include <cassert>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

namespace maple::harness::json {

const Value *
Value::get(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : asObject()) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
Value::set(const std::string &key, Value v)
{
    if (isNull())
        v_ = Object{};
    for (auto &[k, old] : asObject()) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    asObject().emplace_back(key, std::move(v));
}

std::int64_t
Value::getInt(const std::string &key, std::int64_t def) const
{
    const Value *v = get(key);
    return v && v->isNumber() ? v->asInt() : def;
}

double
Value::getDouble(const std::string &key, double def) const
{
    const Value *v = get(key);
    return v && v->isNumber() ? v->asDouble() : def;
}

bool
Value::getBool(const std::string &key, bool def) const
{
    const Value *v = get(key);
    return v && v->isBool() ? v->asBool() : def;
}

std::string
Value::getString(const std::string &key, const std::string &def) const
{
    const Value *v = get(key);
    return v && v->isString() ? v->asString() : def;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string, tracking offset for errors.
// ---------------------------------------------------------------------------

namespace {

class Parser {
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Value
    document()
    {
        Value v = value();
        ws();
        if (pos_ != s_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        MAPLE_THROW(JsonError, "JSON parse error at offset %zu: %s", pos_,
                    what);
    }

    void
    ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        size_t n = std::char_traits<char>::length(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    value()
    {
        ws();
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return Value(string());
        case 't':
            if (!consume("true"))
                fail("bad literal");
            return Value(true);
        case 'f':
            if (!consume("false"))
                fail("bad literal");
            return Value(false);
        case 'n':
            if (!consume("null"))
                fail("bad literal");
            return Value(nullptr);
        default:
            return number();
        }
    }

    Value
    object()
    {
        expect('{');
        Object o;
        ws();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(o));
        }
        for (;;) {
            ws();
            std::string key = string();
            ws();
            expect(':');
            o.emplace_back(std::move(key), value());
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Value(std::move(o));
        }
    }

    Value
    array()
    {
        expect('[');
        Array a;
        ws();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(a));
        }
        for (;;) {
            a.push_back(value());
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Value(std::move(a));
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (specs and results are
                // ASCII in practice; surrogate pairs are not supported).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
            }
            default:
                fail("bad escape character");
            }
        }
    }

    Value
    number()
    {
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        bool is_double = false;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_double = is_double || c == '.' || c == 'e' || c == 'E';
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const char *b = s_.data() + start;
        const char *e = s_.data() + pos_;
        if (!is_double) {
            std::int64_t i = 0;
            auto [p, ec] = std::from_chars(b, e, i);
            if (ec == std::errc() && p == e)
                return Value(i);
        }
        double d = 0;
        auto [p, ec] = std::from_chars(b, e, d);
        if (ec != std::errc() || p != e)
            fail("malformed number");
        return Value(d);
    }

    const std::string &s_;
    size_t pos_ = 0;
};

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeDouble(std::ostream &os, double d)
{
    // Shortest round-trip representation; ensure it still reads back as a
    // double (to_chars may produce "42", which is fine for JSON consumers
    // but would re-parse as an integer, so mark it).
    char buf[64];
    auto [p, ec] = std::to_chars(buf, buf + sizeof buf - 2, d);
    assert(ec == std::errc());
    *p = '\0';
    os << buf;
    for (const char *c = buf; *c; ++c) {
        if (*c == '.' || *c == 'e' || *c == 'n' || *c == 'i')
            return;  // has a fraction/exponent, or is nan/inf
    }
    os << ".0";
}

void
writeCompact(std::ostream &os, const Value &v)
{
    if (v.isNull()) {
        os << "null";
    } else if (v.isBool()) {
        os << (v.asBool() ? "true" : "false");
    } else if (v.isInt()) {
        os << v.asInt();
    } else if (v.isDouble()) {
        writeDouble(os, v.asDouble());
    } else if (v.isString()) {
        writeEscaped(os, v.asString());
    } else if (v.isArray()) {
        os << "[";
        const Array &a = v.asArray();
        for (size_t i = 0; i < a.size(); ++i) {
            if (i)
                os << ", ";
            writeCompact(os, a[i]);
        }
        os << "]";
    } else {
        os << "{";
        const Object &o = v.asObject();
        for (size_t i = 0; i < o.size(); ++i) {
            if (i)
                os << ", ";
            writeEscaped(os, o[i].first);
            os << ": ";
            writeCompact(os, o[i].second);
        }
        os << "}";
    }
}

void
writeIndented(std::ostream &os, const Value &v, int depth)
{
    auto pad = [&os](int d) {
        for (int i = 0; i < d; ++i)
            os << "  ";
    };
    if (v.isNull()) {
        os << "null";
    } else if (v.isBool()) {
        os << (v.asBool() ? "true" : "false");
    } else if (v.isInt()) {
        os << v.asInt();
    } else if (v.isDouble()) {
        writeDouble(os, v.asDouble());
    } else if (v.isString()) {
        writeEscaped(os, v.asString());
    } else if (v.isArray()) {
        const Array &a = v.asArray();
        if (a.empty()) {
            os << "[]";
            return;
        }
        os << "[\n";
        for (size_t i = 0; i < a.size(); ++i) {
            pad(depth + 1);
            writeIndented(os, a[i], depth + 1);
            os << (i + 1 < a.size() ? ",\n" : "\n");
        }
        pad(depth);
        os << "]";
    } else {
        const Object &o = v.asObject();
        if (o.empty()) {
            os << "{}";
            return;
        }
        os << "{\n";
        for (size_t i = 0; i < o.size(); ++i) {
            pad(depth + 1);
            writeEscaped(os, o[i].first);
            os << ": ";
            writeIndented(os, o[i].second, depth + 1);
            os << (i + 1 < o.size() ? ",\n" : "\n");
        }
        pad(depth);
        os << "}";
    }
}

}  // namespace

Value
parse(const std::string &text)
{
    return Parser(text).document();
}

void
write(std::ostream &os, const Value &v)
{
    writeIndented(os, v, 0);
    os << "\n";
}

std::string
dump(const Value &v)
{
    std::ostringstream ss;
    write(ss, v);
    return ss.str();
}

std::string
dumpCompact(const Value &v)
{
    std::ostringstream ss;
    writeCompact(ss, v);
    return ss.str();
}

void
writeFile(const std::string &path, const Value &v)
{
    const std::string tmp = path + ".tmp";
    errno = 0;
    std::ofstream f(tmp, std::ios::trunc);
    if (!f.good()) {
        MAPLE_THROW(JsonError, "cannot open %s for writing: %s", tmp.c_str(),
                    errno ? std::strerror(errno) : "stream error");
    }
    write(f, v);
    f.flush();
    const bool wrote = f.good();
    f.close();
    // An ENOSPC / quota / I/O failure can surface at write, flush *or*
    // close time; any of them leaves a short temp file that must never be
    // renamed over the real document.
    if (!wrote || !f.good()) {
        const int err = errno;
        std::remove(tmp.c_str());
        MAPLE_THROW(JsonError, "short write to %s: %s", tmp.c_str(),
                    err ? std::strerror(err) : "stream error");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        MAPLE_THROW(JsonError, "cannot rename %s to %s: %s", tmp.c_str(),
                    path.c_str(), std::strerror(err));
    }
}

Value
parseFile(const std::string &path)
{
    std::ifstream f(path);
    MAPLE_CHECK(f.good(), JsonError, "cannot read %s", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return parse(ss.str());
}

}  // namespace maple::harness::json
