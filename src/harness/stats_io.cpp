#include "harness/stats_io.hpp"

#include "harness/figures.hpp"
#include "harness/host_perf.hpp"

namespace maple::harness {

json::Value
statsToJson(const sim::StatGroup &g)
{
    json::Object counters;
    for (const auto &[name, c] : g.counters())
        counters.emplace_back(name, json::Value(c.value()));

    json::Object averages;
    for (const auto &[name, a] : g.averages()) {
        json::Object v;
        v.emplace_back("mean", json::Value(a.mean()));
        v.emplace_back("count", json::Value(a.count()));
        v.emplace_back("min", json::Value(a.min()));
        v.emplace_back("max", json::Value(a.max()));
        averages.emplace_back(name, json::Value(std::move(v)));
    }

    json::Object histograms;
    for (const auto &[name, h] : g.histograms()) {
        json::Array buckets;
        for (std::uint64_t b : h.buckets())
            buckets.push_back(json::Value(b));
        json::Object v;
        v.emplace_back("total", json::Value(h.total()));
        v.emplace_back("max", json::Value(h.maxSample()));
        v.emplace_back("p50", json::Value(h.percentile(0.50)));
        v.emplace_back("p99", json::Value(h.percentile(0.99)));
        v.emplace_back("buckets", json::Value(std::move(buckets)));
        histograms.emplace_back(name, json::Value(std::move(v)));
    }

    json::Object out;
    out.emplace_back("name", json::Value(g.name()));
    out.emplace_back("counters", json::Value(std::move(counters)));
    out.emplace_back("averages", json::Value(std::move(averages)));
    out.emplace_back("histograms", json::Value(std::move(histograms)));
    return json::Value(std::move(out));
}

json::Value
runResultToJson(const app::RunResult &r)
{
    json::Object o;
    o.emplace_back("workload", json::Value(r.workload));
    o.emplace_back("technique", json::Value(r.technique));
    o.emplace_back("cycles", json::Value(r.cycles));
    o.emplace_back("checksum", json::Value(r.checksum));
    o.emplace_back("valid", json::Value(r.valid));
    o.emplace_back("fell_back_to_doall", json::Value(r.fell_back_to_doall));
    o.emplace_back("instructions", json::Value(r.instructions));
    o.emplace_back("loads", json::Value(r.loads));
    o.emplace_back("stores", json::Value(r.stores));
    o.emplace_back("mean_load_latency", json::Value(r.mean_load_latency));
    o.emplace_back("sim_events", json::Value(r.sim_events));
    return json::Value(std::move(o));
}

app::RunResult
runResultFromJson(const json::Value &v)
{
    MAPLE_CHECK(v.isObject(), json::JsonError, "run result is not an object");
    app::RunResult r;
    r.workload = v.getString("workload", "");
    r.technique = v.getString("technique", "");
    r.cycles = static_cast<sim::Cycle>(v.getInt("cycles", 0));
    r.checksum = static_cast<std::uint64_t>(v.getInt("checksum", 0));
    r.valid = v.getBool("valid", false);
    r.fell_back_to_doall = v.getBool("fell_back_to_doall", false);
    r.instructions = static_cast<std::uint64_t>(v.getInt("instructions", 0));
    r.loads = static_cast<std::uint64_t>(v.getInt("loads", 0));
    r.stores = static_cast<std::uint64_t>(v.getInt("stores", 0));
    r.mean_load_latency = v.getDouble("mean_load_latency", 0.0);
    r.sim_events = static_cast<std::uint64_t>(v.getInt("sim_events", 0));
    return r;
}

json::Value
hostPerfToJson(const std::vector<PerfSample> &samples,
               const std::string &bench_name, bool quick)
{
    json::Array benchmarks;
    for (const PerfSample &s : samples) {
        json::Object b;
        b.emplace_back("name", json::Value(s.name));
        b.emplace_back("threads", json::Value(s.threads));
        b.emplace_back("events", json::Value(s.events));
        b.emplace_back("sim_cycles", json::Value(s.sim_cycles));
        b.emplace_back("host_seconds", json::Value(s.host_seconds));
        b.emplace_back("events_per_sec", json::Value(s.eventsPerSec()));
        benchmarks.push_back(json::Value(std::move(b)));
    }
    json::Object o;
    o.emplace_back("bench", json::Value(bench_name));
    o.emplace_back("quick", json::Value(quick));
    o.emplace_back("benchmarks", json::Value(std::move(benchmarks)));
    return json::Value(std::move(o));
}

json::Value
gridToJson(const Grid &grid)
{
    json::Array cells;
    for (const auto &[key, cell] : grid.cells())
        cells.push_back(runResultToJson(cell.result));
    json::Object o;
    o.emplace_back("cells", json::Value(std::move(cells)));
    return json::Value(std::move(o));
}

}  // namespace maple::harness
