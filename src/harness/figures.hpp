/**
 * @file
 * Shared experiment runner for the per-figure bench binaries: runs a
 * (workload x technique) grid on a given SoC configuration and prints
 * paper-style rows (one line per workload, one column per technique,
 * geomean at the bottom). Every cell is backed by a checksum-validated run.
 */
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace maple::harness {

struct Cell {
    app::RunResult result;
};

/** Results keyed by (workload, technique). */
class Grid {
  public:
    void
    put(app::RunResult r)
    {
        // Build the key before moving r: the assignment's right side is
        // sequenced first and would otherwise read moved-from strings.
        std::pair<std::string, std::string> key{r.workload, r.technique};
        cells_[key] = Cell{std::move(r)};
    }

    const app::RunResult &
    at(const std::string &workload, app::Technique t) const
    {
        auto it = cells_.find({workload, app::techniqueName(t)});
        MAPLE_ASSERT(it != cells_.end(), "missing grid cell %s/%s",
                     workload.c_str(), app::techniqueName(t));
        return it->second.result;
    }

    /** All cells, sorted by (workload, technique) -- for serialization. */
    const std::map<std::pair<std::string, std::string>, Cell> &
    cells() const
    {
        return cells_;
    }

  private:
    std::map<std::pair<std::string, std::string>, Cell> cells_;
};

/**
 * Run every workload under every technique. @p tweak lets a figure adjust
 * the RunConfig per technique (e.g. thread counts). Aborts the bench if any
 * run produces an invalid (checksum-mismatched) result.
 */
Grid runGrid(const std::vector<std::unique_ptr<app::Workload>> &workloads,
             const std::vector<app::Technique> &techniques,
             const app::RunConfig &base,
             const std::function<void(app::RunConfig &, app::Technique)> &tweak = {});

/**
 * Print a speedup table: value(workload, tech) = cycles(baseline) /
 * cycles(tech), plus a geomean row.
 */
void printSpeedupTable(const std::string &title, const Grid &grid,
                       const std::vector<std::string> &workloads,
                       const std::vector<app::Technique> &series,
                       app::Technique baseline);

/** Print a table of an arbitrary per-cell metric (no geomean constraints). */
void printMetricTable(
    const std::string &title, const Grid &grid,
    const std::vector<std::string> &workloads,
    const std::vector<app::Technique> &series,
    const std::function<double(const app::RunResult &)> &metric,
    const std::string &unit);

/** Workload name list in figure order. */
std::vector<std::string>
workloadNames(const std::vector<std::unique_ptr<app::Workload>> &ws);

/**
 * Translate tracing command-line flags into the MAPLE_TRACE* environment
 * knobs read by soc::Soc, and strip them from argv so the caller's own flag
 * parsing never sees them. Recognized (both --flag=value and --flag value):
 *
 *   --trace=<file.json>      enable tracing, write Chrome trace JSON
 *   --trace-csv=<file.csv>   also write the time-series CSV
 *   --trace-interval=<N>     probe sampling cadence in cycles
 *
 * Multi-SoC binaries get one trace file per SoC (".1", ".2"... suffixes).
 */
void applyTraceFlags(int &argc, char **argv);

/**
 * Strip `--json=<path>` (or `--json <path>`) from argv and return the path,
 * empty when absent. Figure benches pass the result to writeGridJson so
 * their tables are also available machine-readably.
 */
std::string applyGridJsonFlag(int &argc, char **argv);

/**
 * Write the grid through the canonical serializer (harness/stats_io.hpp):
 * {"bench": <name>, "cells": [<RunResult>...]}. No-op when @p path is empty.
 */
void writeGridJson(const std::string &path, const std::string &bench,
                   const Grid &grid);

/**
 * Strip the fault-injection & watchdog flags from argv and latch them into
 * the MAPLE_FAULT_* / MAPLE_WATCHDOG* environment knobs, which every Soc
 * construction picks up:
 *
 *   --fault-seed=<u64>              seed for the dedicated fault RNG streams
 *   --fault-noc=<prob[:cycles]>     transient NoC link stalls
 *   --fault-dram=<prob[:cycles]>    DRAM latency spikes
 *   --fault-tlb=<prob>              device-TLB miss storms
 *   --fault-mmio=<prob[:cycles]>    delayed MMIO responses
 *   --fault-hard-spad=<prob>        hard faults: scratchpad fetch corruption
 *   --fault-hard-tlb=<prob>         hard faults: device-TLB corruption
 *   --fault-recovery=<0|1>          enable the OS recovery driver
 *                                   (MapleApi::*Reliable ops route through it)
 *   --fault-recovery-retries=<n>    timed-out retries before escalating
 *   --fault-recovery-budget=<n>     recoveries per queue before it degrades
 *                                   to the software-queue fallback
 *   --fault-recovery-backoff=<cyc>  base retry backoff (doubles, capped)
 *   --fault-recovery-timeout=<cyc>  device-side produce/consume wait bound
 *   --fault-coh=<prob[:cycles]>     coherence-message delays
 *   --fault-coh-drop=<prob>         coherence-message loss (retransmit)
 *   --fault-bitflip-l1=<prob[:sev]>   soft errors in the L1 arrays
 *   --fault-bitflip-llc=<prob[:sev]>  soft errors in the LLC slice arrays
 *   --fault-bitflip-dir=<prob[:sev]>  soft errors in directory entries
 *   --fault-bitflip-dram=<prob[:sev]> soft errors on DRAM reads
 *                                   (sev 1 = correctable, >= 2 = poison;
 *                                   all four need --ecc=secded to matter)
 *   --watchdog=<0|1>                disable/enable the liveness watchdog
 *   --watchdog-stall-bound=<cycles> park age that counts as a deadlock
 *   --list-faults                   print every fault class with its flag,
 *                                   env knob and defaults, then exit
 */
void applyFaultFlags(int &argc, char **argv);

/**
 * Strip the memory-fabric flags from argv into the environment knobs every
 * Soc construction latches:
 *
 *   --llc-arb=<fifo|rr|core-priority>   arbitration at the shared-LLC
 *                                       front-end (MAPLE_LLC_ARB)
 *   --dram-arb=<fifo|rr|core-priority>  arbitration at the DRAM queue
 *                                       (MAPLE_DRAM_ARB)
 *   --fault-only=<cls[,cls...]>         restrict fault injection to the
 *                                       named requester classes, e.g.
 *                                       "maple_consume,maple_produce"
 *                                       (MAPLE_FAULT_ONLY)
 *   --coherence=<none|msi>              run the sparse-directory MSI
 *                                       protocol through the fabric
 *                                       (MAPLE_COHERENCE; none is the
 *                                       bit-identical legacy hierarchy)
 *   --llc-slices=<n>                    address-interleaved LLC/directory
 *                                       slices, msi mode only
 *                                       (MAPLE_LLC_SLICES)
 *   --coh-check=<0|1>                   flat-memory reference checker on
 *                                       every protocol transition
 *                                       (MAPLE_COH_CHECK)
 *   --ecc=<off|secded>                  SECDED ECC on L1/LLC/directory/DRAM
 *                                       (MAPLE_ECC; off is byte-identical
 *                                       to builds without the model)
 *   --ecc-correct-latency=<cycles>      penalty per corrected error
 *                                       (MAPLE_ECC_CORRECT_LATENCY)
 *   --scrub-interval=<cycles>           background directory scrub period,
 *                                       msi mode; 0 = off
 *                                       (MAPLE_SCRUB_INTERVAL)
 *   --scrub-batch=<n>                   directory entries audited per pass
 *                                       (MAPLE_SCRUB_BATCH)
 */
void applyFabricFlags(int &argc, char **argv);

}  // namespace maple::harness
