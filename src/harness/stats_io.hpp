/**
 * @file
 * Canonical JSON serialization for simulator statistics and harness results.
 *
 * Every stats artifact the repo emits -- StatGroup dumps, per-run results,
 * figure-bench grids and the host-perf report -- is built as a json::Value
 * here and written through harness/json.hpp, so there is exactly one place
 * that defines field names and one writer that defines formatting. The
 * schemas are locked by round-trip tests (tests/test_campaign.cpp); changing
 * a key here is a format change and must bump the consumers (scripts/,
 * campaign cache) together with the test.
 */
#pragma once

#include <vector>

#include "harness/json.hpp"
#include "sim/stats.hpp"
#include "workloads/workload.hpp"

namespace maple::harness {

class Grid;
struct PerfSample;

/**
 * StatGroup -> {"name", "counters": {n: v}, "averages": {n: {mean, count,
 * min, max}}, "histograms": {n: {width, total, max, buckets: [...]}}}.
 * Map iteration order (sorted by name) keeps output canonical.
 */
json::Value statsToJson(const sim::StatGroup &g);

/** One workload run, every RunResult field, fixed key order. */
json::Value runResultToJson(const app::RunResult &r);

/** Inverse of runResultToJson (cache hits reload stored results). */
app::RunResult runResultFromJson(const json::Value &v);

/**
 * Host-perf report document: {"bench", "quick", "benchmarks": [{"name",
 * "events", "sim_cycles", "host_seconds", "events_per_sec"}]} -- the schema
 * scripts/check_host_perf.py consumes.
 */
json::Value hostPerfToJson(const std::vector<PerfSample> &samples,
                           const std::string &bench_name, bool quick);

/**
 * Figure-bench grid as {"cells": [runResultToJson...]} in the grid's sorted
 * (workload, technique) order.
 */
json::Value gridToJson(const Grid &grid);

}  // namespace maple::harness
