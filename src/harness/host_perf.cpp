#include "harness/host_perf.hpp"

#include <cstdio>
#include <cstring>

#include "sim/log.hpp"

namespace maple::harness {

void
HostPerfReport::print() const
{
    std::printf("\n%-24s %14s %14s %10s %12s\n", "benchmark", "events",
                "sim cycles", "host s", "Mev/s");
    for (const PerfSample &s : samples_) {
        std::printf("%-24s %14llu %14llu %10.3f %12.2f\n", s.name.c_str(),
                    (unsigned long long)s.events,
                    (unsigned long long)s.sim_cycles, s.host_seconds,
                    s.eventsPerSec() / 1e6);
    }
}

void
HostPerfReport::writeJson(const std::string &path,
                          const std::string &bench_name, bool quick) const
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        MAPLE_FATAL("cannot write %s", path.c_str());
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"quick\": %s,\n"
                    "  \"benchmarks\": [\n",
                 bench_name.c_str(), quick ? "true" : "false");
    for (size_t i = 0; i < samples_.size(); ++i) {
        const PerfSample &s = samples_[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"events\": %llu, "
                     "\"sim_cycles\": %llu, \"host_seconds\": %.6f, "
                     "\"events_per_sec\": %.1f}%s\n",
                     s.name.c_str(), (unsigned long long)s.events,
                     (unsigned long long)s.sim_cycles, s.host_seconds,
                     s.eventsPerSec(), i + 1 < samples_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu benchmarks)\n", path.c_str(),
                 samples_.size());
}

HostPerfOptions
applyHostPerfFlags(int &argc, char **argv)
{
    HostPerfOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
            continue;
        }
        if (std::strncmp(arg, "--out", 5) == 0) {
            const char *value = nullptr;
            if (arg[5] == '=')
                value = arg + 6;
            else if (arg[5] == '\0' && i + 1 < argc)
                value = argv[++i];
            if (!value || !*value) {
                std::fprintf(stderr, "--out requires a value\n");
                std::exit(2);
            }
            opts.out_path = value;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    return opts;
}

}  // namespace maple::harness
