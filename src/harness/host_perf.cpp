#include "harness/host_perf.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/stats_io.hpp"
#include "sim/log.hpp"

namespace maple::harness {

void
HostPerfReport::print() const
{
    std::printf("\n%-24s %8s %14s %14s %10s %12s\n", "benchmark", "threads",
                "events", "sim cycles", "host s", "Mev/s");
    for (const PerfSample &s : samples_) {
        std::printf("%-24s %8u %14llu %14llu %10.3f %12.2f\n", s.name.c_str(),
                    s.threads, (unsigned long long)s.events,
                    (unsigned long long)s.sim_cycles, s.host_seconds,
                    s.eventsPerSec() / 1e6);
    }
}

void
HostPerfReport::writeJson(const std::string &path,
                          const std::string &bench_name, bool quick) const
{
    json::writeFile(path, hostPerfToJson(samples_, bench_name, quick));
    std::fprintf(stderr, "wrote %s (%zu benchmarks)\n", path.c_str(),
                 samples_.size());
}

namespace {

std::vector<unsigned>
parseThreadList(const char *value)
{
    std::vector<unsigned> counts;
    const char *p = value;
    while (*p) {
        char *end = nullptr;
        unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || v < 1 || (*end != ',' && *end != '\0')) {
            std::fprintf(stderr, "bad thread count list '%s'\n", value);
            std::exit(2);
        }
        counts.push_back(static_cast<unsigned>(v));
        p = *end == ',' ? end + 1 : end;
    }
    if (counts.empty()) {
        std::fprintf(stderr, "empty thread count list\n");
        std::exit(2);
    }
    return counts;
}

}  // namespace

HostPerfOptions
applyHostPerfFlags(int &argc, char **argv)
{
    HostPerfOptions opts;
    int out = 1;
    // --flag=value and --flag value forms; "--flag" then a value pulled from
    // the next argv slot.
    auto takeValue = [&](const char *arg, size_t flag_len,
                         int &i) -> const char * {
        const char *value = nullptr;
        if (arg[flag_len] == '=')
            value = arg + flag_len + 1;
        else if (arg[flag_len] == '\0' && i + 1 < argc)
            value = argv[++i];
        if (!value || !*value) {
            std::fprintf(stderr, "%.*s requires a value\n",
                         static_cast<int>(flag_len), arg);
            std::exit(2);
        }
        return value;
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
            continue;
        }
        if (std::strncmp(arg, "--out", 5) == 0 &&
            (arg[5] == '=' || arg[5] == '\0')) {
            opts.out_path = takeValue(arg, 5, i);
            continue;
        }
        if (std::strncmp(arg, "--threads-sweep", 15) == 0 &&
            (arg[15] == '=' || arg[15] == '\0')) {
            opts.threads_sweep = parseThreadList(takeValue(arg, 15, i));
            continue;
        }
        if (std::strncmp(arg, "--threads", 9) == 0 &&
            (arg[9] == '=' || arg[9] == '\0')) {
            opts.threads_sweep = parseThreadList(takeValue(arg, 9, i));
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    return opts;
}

}  // namespace maple::harness
