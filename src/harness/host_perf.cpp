#include "harness/host_perf.hpp"

#include <cstdio>
#include <cstring>

#include "harness/stats_io.hpp"
#include "sim/log.hpp"

namespace maple::harness {

void
HostPerfReport::print() const
{
    std::printf("\n%-24s %14s %14s %10s %12s\n", "benchmark", "events",
                "sim cycles", "host s", "Mev/s");
    for (const PerfSample &s : samples_) {
        std::printf("%-24s %14llu %14llu %10.3f %12.2f\n", s.name.c_str(),
                    (unsigned long long)s.events,
                    (unsigned long long)s.sim_cycles, s.host_seconds,
                    s.eventsPerSec() / 1e6);
    }
}

void
HostPerfReport::writeJson(const std::string &path,
                          const std::string &bench_name, bool quick) const
{
    json::writeFile(path, hostPerfToJson(samples_, bench_name, quick));
    std::fprintf(stderr, "wrote %s (%zu benchmarks)\n", path.c_str(),
                 samples_.size());
}

HostPerfOptions
applyHostPerfFlags(int &argc, char **argv)
{
    HostPerfOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--quick") == 0) {
            opts.quick = true;
            continue;
        }
        if (std::strncmp(arg, "--out", 5) == 0) {
            const char *value = nullptr;
            if (arg[5] == '=')
                value = arg + 6;
            else if (arg[5] == '\0' && i + 1 < argc)
                value = argv[++i];
            if (!value || !*value) {
                std::fprintf(stderr, "--out requires a value\n");
                std::exit(2);
            }
            opts.out_path = value;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    return opts;
}

}  // namespace maple::harness
