#include "harness/scenario.hpp"

#include <vector>

#include "core/maple_runtime.hpp"
#include "harness/stats_io.hpp"
#include "sim/coro.hpp"
#include "sim/random.hpp"

namespace maple::harness {

namespace {

/**
 * Host-side copy of the SPMV dataset (CSR, uniform nnz_per_row, u32
 * wrap-around arithmetic so doall and decoupled runs are bit-comparable).
 * Regenerated from the seed whenever needed -- warm() materializes it into
 * simulated memory, measure() recomputes the golden result from it.
 */
struct SpmvData {
    std::vector<std::uint32_t> row_ptr;  // rows + 1
    std::vector<std::uint32_t> col_idx;  // nnz
    std::vector<std::uint32_t> vals;     // nnz
    std::vector<std::uint32_t> x;        // cols
    std::vector<std::uint32_t> golden;   // rows
};

SpmvData
buildSpmv(const ScenarioSpec &s)
{
    sim::Rng rng(s.seed);
    SpmvData d;
    const std::uint64_t nnz =
        static_cast<std::uint64_t>(s.rows) * s.nnz_per_row;
    d.row_ptr.resize(s.rows + 1);
    for (std::uint32_t r = 0; r <= s.rows; ++r)
        d.row_ptr[r] = r * s.nnz_per_row;
    d.col_idx.resize(nnz);
    d.vals.resize(nnz);
    for (std::uint64_t j = 0; j < nnz; ++j) {
        d.col_idx[j] = static_cast<std::uint32_t>(rng.next() % s.cols);
        d.vals[j] = static_cast<std::uint32_t>(rng.next());
    }
    d.x.resize(s.cols);
    for (std::uint32_t i = 0; i < s.cols; ++i)
        d.x[i] = static_cast<std::uint32_t>(rng.next());
    d.golden.resize(s.rows);
    for (std::uint32_t r = 0; r < s.rows; ++r) {
        std::uint32_t acc = 0;
        for (std::uint32_t j = d.row_ptr[r]; j < d.row_ptr[r + 1]; ++j)
            acc += d.vals[j] * d.x[d.col_idx[j]];
        d.golden[r] = acc;
    }
    return d;
}

std::uint64_t
fnv64(const std::vector<std::uint32_t> &v)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint32_t w : v) {
        for (int i = 0; i < 4; ++i) {
            h ^= (w >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/** Dataset vaddrs, from fresh allocation or tagged-region recovery. */
struct SpmvAddrs {
    sim::Addr row_ptr = 0, col_idx = 0, vals = 0, x = 0, y = 0;
};

SpmvAddrs
lookupAddrs(const os::Process &proc)
{
    SpmvAddrs a;
    a.row_ptr = proc.regionBase("spmv.row_ptr");
    a.col_idx = proc.regionBase("spmv.col_idx");
    a.vals = proc.regionBase("spmv.vals");
    a.x = proc.regionBase("spmv.x");
    a.y = proc.regionBase("spmv.y");
    return a;
}

void
writeArray(os::Process &proc, sim::Addr base,
           const std::vector<std::uint32_t> &v)
{
    for (size_t i = 0; i < v.size(); ++i)
        proc.writeScalar<std::uint32_t>(base + 4 * i, v[i]);
}

/** Load-only row sweep that heats the caches and TLBs. */
sim::Task<void>
warmWorker(cpu::Core &core, SpmvAddrs a, app::Chunk rows)
{
    std::uint64_t sink = 0;
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto jb = static_cast<std::uint32_t>(
            co_await core.load(a.row_ptr + 4 * r, 4));
        auto je = static_cast<std::uint32_t>(
            co_await core.load(a.row_ptr + 4 * (r + 1), 4));
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(a.col_idx + 4 * j, 4));
            sink += co_await core.load(a.vals + 4 * j, 4);
            sink += co_await core.load(a.x + 4 * c, 4);
        }
    }
    (void)sink;
}

sim::Task<void>
doallWorker(cpu::Core &core, SpmvAddrs a, app::Chunk rows)
{
    for (std::uint64_t r = rows.begin; r < rows.end; ++r) {
        auto jb = static_cast<std::uint32_t>(
            co_await core.load(a.row_ptr + 4 * r, 4));
        auto je = static_cast<std::uint32_t>(
            co_await core.load(a.row_ptr + 4 * (r + 1), 4));
        std::uint32_t acc = 0;
        for (std::uint32_t j = jb; j < je; ++j) {
            auto c = static_cast<std::uint32_t>(
                co_await core.load(a.col_idx + 4 * j, 4));
            auto v = static_cast<std::uint32_t>(
                co_await core.load(a.vals + 4 * j, 4));
            auto xv = static_cast<std::uint32_t>(
                co_await core.load(a.x + 4 * c, 4));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(a.y + 4 * r, acc, 4);
    }
}

/** Decoupled access slice: stream col_idx, produce &x[c] into the queue. */
sim::Task<void>
accessWorker(cpu::Core &core, core::MapleApi &api, SpmvAddrs a,
             std::uint32_t rows)
{
    auto jb = static_cast<std::uint32_t>(co_await core.load(a.row_ptr, 4));
    auto je = static_cast<std::uint32_t>(
        co_await core.load(a.row_ptr + 4 * rows, 4));
    for (std::uint32_t j = jb; j < je; ++j) {
        auto c = static_cast<std::uint32_t>(
            co_await core.load(a.col_idx + 4 * j, 4));
        co_await api.producePtr(core, 0, a.x + 4 * c);
    }
}

/** Decoupled execute slice: consume x values, multiply-accumulate rows. */
sim::Task<void>
executeWorker(cpu::Core &core, core::MapleApi &api, SpmvAddrs a,
              std::uint32_t rows)
{
    auto jb = static_cast<std::uint32_t>(co_await core.load(a.row_ptr, 4));
    for (std::uint32_t r = 0; r < rows; ++r) {
        auto je = static_cast<std::uint32_t>(
            co_await core.load(a.row_ptr + 4 * (r + 1), 4));
        std::uint32_t acc = 0;
        for (std::uint32_t j = jb; j < je; ++j) {
            auto v = static_cast<std::uint32_t>(
                co_await core.load(a.vals + 4 * j, 4));
            auto xv = static_cast<std::uint32_t>(
                co_await api.consumeReliable(core, 0));
            co_await core.compute(1);
            acc += v * xv;
        }
        co_await core.store(a.y + 4 * r, acc, 4);
        jb = je;
    }
}

}  // namespace

ScenarioSpec
parseScenarioSpec(const json::Value &job)
{
    MAPLE_CHECK(job.isObject(), json::JsonError,
                "scenario job is not an object");
    ScenarioSpec s;
    s.scenario = job.getString("scenario", s.scenario);
    MAPLE_CHECK(s.scenario == "spmv", json::JsonError,
                "unknown scenario \"%s\"", s.scenario.c_str());
    s.rows = static_cast<std::uint32_t>(job.getInt("rows", s.rows));
    s.nnz_per_row =
        static_cast<std::uint32_t>(job.getInt("nnz_per_row", s.nnz_per_row));
    s.cols = static_cast<std::uint32_t>(job.getInt("cols", s.cols));
    s.seed = static_cast<std::uint64_t>(job.getInt("seed", 1));
    s.warm_rows = static_cast<std::uint32_t>(
        job.getInt("warm_rows", std::min<std::int64_t>(s.rows, s.warm_rows)));
    s.technique = job.getString("technique", s.technique);
    MAPLE_CHECK(s.technique == "doall" || s.technique == "maple",
                json::JsonError, "unknown technique \"%s\"",
                s.technique.c_str());
    s.queue_entries = static_cast<unsigned>(
        job.getInt("queue_entries", s.queue_entries));
    s.host_threads = static_cast<unsigned>(
        job.getInt("host_threads", s.host_threads));
    MAPLE_CHECK(s.host_threads >= 1, json::JsonError,
                "host_threads must be >= 1");
    s.ecc = job.getString("ecc", s.ecc);
    MAPLE_CHECK(s.ecc == "off" || s.ecc == "secded", json::JsonError,
                "unknown ecc mode \"%s\" (want off|secded)", s.ecc.c_str());
    if (const json::Value *soc = job.get("soc")) {
        s.soc_preset = soc->getString("preset", s.soc_preset);
        MAPLE_CHECK(s.soc_preset == "fpga" || s.soc_preset == "simulated",
                    json::JsonError, "unknown soc preset \"%s\"",
                    s.soc_preset.c_str());
        s.num_cores =
            static_cast<unsigned>(soc->getInt("cores", s.num_cores));
        s.coherence = soc->getString("coherence", s.coherence);
        MAPLE_CHECK(mem::parseCoherenceMode(s.coherence).has_value(),
                    json::JsonError, "unknown coherence mode \"%s\"",
                    s.coherence.c_str());
        s.llc_slices = static_cast<unsigned>(
            soc->getInt("llc_slices", s.llc_slices));
        MAPLE_CHECK(s.llc_slices >= 1, json::JsonError,
                    "llc_slices must be >= 1");
    }
    MAPLE_CHECK(s.rows > 0 && s.nnz_per_row > 0 && s.cols > 0 &&
                    s.num_cores >= 2 && s.warm_rows <= s.rows,
                json::JsonError, "bad scenario geometry");
    return s;
}

json::Value
scenarioSpecJson(const ScenarioSpec &s)
{
    json::Value v = scenarioWarmKey(s);
    v.set("technique", json::Value(s.technique));
    v.set("queue_entries", json::Value(s.queue_entries));
    return v;
}

json::Value
scenarioWarmKey(const ScenarioSpec &s)
{
    json::Object o;
    o.emplace_back("scenario", json::Value(s.scenario));
    o.emplace_back("rows", json::Value(s.rows));
    o.emplace_back("nnz_per_row", json::Value(s.nnz_per_row));
    o.emplace_back("cols", json::Value(s.cols));
    o.emplace_back("seed", json::Value(s.seed));
    o.emplace_back("warm_rows", json::Value(s.warm_rows));
    o.emplace_back("soc_preset", json::Value(s.soc_preset));
    o.emplace_back("num_cores", json::Value(s.num_cores));
    // Structural knobs are part of the warm key (a coherent warm image is a
    // different machine), but only when they diverge from the defaults so
    // historical cache entries stay addressable.
    if (s.coherence != "none") {
        o.emplace_back("coherence", json::Value(s.coherence));
        o.emplace_back("llc_slices", json::Value(s.llc_slices));
    }
    if (s.ecc != "off")
        o.emplace_back("ecc", json::Value(s.ecc));
    return json::Value(std::move(o));
}

soc::SocConfig
scenarioSocConfig(const ScenarioSpec &s)
{
    soc::SocConfig cfg = s.soc_preset == "simulated"
                             ? soc::SocConfig::simulated()
                             : soc::SocConfig::fpga();
    cfg.name = "campaign-" + s.scenario;
    cfg.num_cores = s.num_cores;
    cfg.host_threads = s.host_threads;
    if (auto m = mem::parseCoherenceMode(s.coherence))
        cfg.coherence.mode = *m;
    if (cfg.coherence.enabled())
        cfg.llc_slices = s.llc_slices;
    cfg.resil.ecc = s.ecc == "secded";
    return cfg;
}

std::vector<sim::Join>
spawnScenarioWarm(soc::Soc &soc, const ScenarioSpec &s)
{
    SpmvData d = buildSpmv(s);
    os::Process &proc = soc.createProcess("campaign");
    sim::Addr row_ptr = proc.alloc(d.row_ptr.size() * 4, "spmv.row_ptr");
    sim::Addr col_idx = proc.alloc(d.col_idx.size() * 4, "spmv.col_idx");
    sim::Addr vals = proc.alloc(d.vals.size() * 4, "spmv.vals");
    sim::Addr x = proc.alloc(d.x.size() * 4, "spmv.x");
    proc.alloc(static_cast<size_t>(s.rows) * 4, "spmv.y");
    SpmvAddrs a = lookupAddrs(proc);
    MAPLE_ASSERT(a.row_ptr == row_ptr && a.col_idx == col_idx &&
                 a.vals == vals && a.x == x);
    writeArray(proc, a.row_ptr, d.row_ptr);
    writeArray(proc, a.col_idx, d.col_idx);
    writeArray(proc, a.vals, d.vals);
    writeArray(proc, a.x, d.x);

    std::vector<sim::Join> joins;
    for (unsigned t = 0; t < soc.numCores() && s.warm_rows > 0; ++t) {
        app::Chunk c = app::chunkOf(s.warm_rows, t, soc.numCores());
        if (c.begin < c.end)
            joins.push_back(sim::spawn(warmWorker(soc.core(t), a, c)));
    }
    return joins;
}

void
warmScenario(soc::Soc &soc, const ScenarioSpec &s)
{
    std::vector<sim::Join> joins = spawnScenarioWarm(soc, s);
    if (!joins.empty())
        soc.run(std::move(joins));
}

std::vector<sim::Join>
spawnScenarioDoall(soc::Soc &soc, const ScenarioSpec &s)
{
    MAPLE_CHECK(!soc.kernel().processes().empty(), sim::FatalError,
                "scenario measure needs a warmed (or restored) SoC");
    SpmvAddrs a = lookupAddrs(*soc.kernel().processes().front());
    std::vector<sim::Join> joins;
    for (unsigned t = 0; t < soc.numCores(); ++t) {
        app::Chunk c = app::chunkOf(s.rows, t, soc.numCores());
        if (c.begin < c.end)
            joins.push_back(sim::spawn(doallWorker(soc.core(t), a, c)));
    }
    return joins;
}

ScenarioResult
collectScenarioResult(soc::Soc &soc, const ScenarioSpec &s, sim::Cycle start)
{
    SpmvData d = buildSpmv(s);
    os::Process &proc = *soc.kernel().processes().front();
    SpmvAddrs a = lookupAddrs(proc);

    ScenarioResult res;
    res.end_cycle = soc.eq().now();
    res.result.workload = s.scenario;
    res.result.technique = s.technique;
    res.result.cycles = res.end_cycle - start;

    std::vector<std::uint32_t> y(s.rows);
    for (std::uint32_t r = 0; r < s.rows; ++r)
        y[r] = proc.readScalar<std::uint32_t>(a.y + 4 * r);
    res.result.checksum = fnv64(y);
    res.result.valid = y == d.golden;
    app::collectCoreStats(soc, res.result);
    return res;
}

ScenarioResult
measureScenario(soc::Soc &soc, const ScenarioSpec &s)
{
    MAPLE_CHECK(!soc.kernel().processes().empty(), sim::FatalError,
                "measureScenario needs a warmed (or restored) SoC");
    os::Process &proc = *soc.kernel().processes().front();
    SpmvAddrs a = lookupAddrs(proc);

    const sim::Cycle start = soc.eq().now();
    if (s.technique == "doall") {
        soc.run(spawnScenarioDoall(soc, s));
    } else {
        core::MapleApi api = core::MapleApi::attach(proc, soc.maple());
        auto setup = [&](cpu::Core &c) -> sim::Task<void> {
            co_await api.init(c, 1, s.queue_entries, 4);
            bool ok = co_await api.open(c, 0);
            MAPLE_ASSERT(ok, "campaign queue open failed");
        };
        soc.run({sim::spawn(setup(soc.core(0)))});
        soc.run({sim::spawn(accessWorker(soc.core(0), api, a, s.rows)),
                 sim::spawn(executeWorker(soc.core(1), api, a, s.rows))});
    }
    return collectScenarioResult(soc, s, start);
}

json::Value
scenarioResultJson(const ScenarioResult &r)
{
    json::Value v = runResultToJson(r.result);
    v.set("end_cycle", json::Value(r.end_cycle));
    return v;
}

}  // namespace maple::harness
