/**
 * @file
 * Self-contained campaign scenarios: parameterized simulations split into a
 * *warm* phase (dataset allocation + cache/TLB warming) and a *measure*
 * phase (the timed kernel), with the boundary between them a quiesced
 * snapshot point.
 *
 * The split is what makes warm-image fan-out work: a campaign warms one SoC
 * per structural configuration, snapshots it, and every variant job restores
 * the image and runs only measure(). To keep that sound:
 *
 *  - warm() takes only parameters that are part of the warm key (dataset
 *    shape, seed, SoC structure). Measure-only knobs (technique,
 *    queue_entries) must not influence warm() -- MAPLE queue INIT happens in
 *    measure() precisely so queue depth stays a variant axis.
 *  - measure() never relies on host-side state from warm(): dataset
 *    addresses are recovered from the restored process via tagged regions
 *    (os::Process::regionBase), and the golden result is recomputed from the
 *    seed.
 */
#pragma once

#include <cstdint>
#include <string>

#include "harness/json.hpp"
#include "soc/soc.hpp"
#include "workloads/workload.hpp"

namespace maple::harness {

/** Parsed scenario job description. */
struct ScenarioSpec {
    std::string scenario = "spmv";  ///< only "spmv" is implemented
    /// @name Warm-key parameters (shape the dataset and the warm image)
    /// @{
    std::uint32_t rows = 256;
    std::uint32_t nnz_per_row = 8;
    std::uint32_t cols = 4096;      ///< x-vector length (gather target)
    std::uint64_t seed = 1;
    std::uint32_t warm_rows = 64;   ///< rows touched by the warm pass
    std::string soc_preset = "fpga";  ///< "fpga" or "simulated"
    unsigned num_cores = 2;
    std::string coherence = "none";   ///< "none" or "msi" (structural)
    unsigned llc_slices = 1;          ///< LLC/directory slices (msi only)
    /** "off" or "secded". Part of the warm key: ECC correction bubbles
     *  shape the warm image's timing, so an ECC warm image is its own. */
    std::string ecc = "off";
    /// @}
    /// @name Measure-only parameters (variant axes over one warm image)
    /// @{
    std::string technique = "doall";  ///< "doall" or "maple"
    unsigned queue_entries = 32;
    /// @}
    /**
     * Host worker threads driving the simulation (a campaign axis for
     * thread-count sweeps). Pure host-side execution knob: results are
     * byte-identical for any value, so it is excluded from the result-cache
     * key (campaign/cache.cpp) — an N-thread job hits a 1-thread entry.
     */
    unsigned host_threads = 1;
};

/** Result of a measure() phase. */
struct ScenarioResult {
    app::RunResult result;   ///< cycles = measure-phase cycles
    sim::Cycle end_cycle = 0;  ///< soc clock at end of measure
};

/**
 * Parse a scenario job object; unknown scenarios and malformed fields throw
 * json::JsonError. Missing fields take the defaults above.
 */
ScenarioSpec parseScenarioSpec(const json::Value &job);

/** The spec's canonical JSON (fixed key order) -- hashed for the cache. */
json::Value scenarioSpecJson(const ScenarioSpec &s);

/**
 * Canonical JSON of the warm-key parameters only. Jobs with equal warm keys
 * share one warm image.
 */
json::Value scenarioWarmKey(const ScenarioSpec &s);

/** SoC configuration for this scenario (structural fields only). */
soc::SocConfig scenarioSocConfig(const ScenarioSpec &s);

/**
 * Phase 1 on a freshly-constructed SoC: create the "campaign" process,
 * allocate and fill the tagged dataset, run the warm pass. Returns with the
 * SoC quiesced (snapshot-safe).
 */
void warmScenario(soc::Soc &soc, const ScenarioSpec &s);

/**
 * Phase 2 on a warmed *or restored* SoC: run the measured kernel and
 * validate against the host-computed golden result.
 */
ScenarioResult measureScenario(soc::Soc &soc, const ScenarioSpec &s);

/// @name Spawn-phase API (multi-SoC driving)
/// A soc::SocGrid caller spawns each phase on every chip, then drives all
/// chips through one grid run. warmScenario/measureScenario are these same
/// pieces glued to a single Soc::run, so behavior is identical either way.
/// @{

/** Allocate + upload the dataset, spawn the warm workers; does not run. */
std::vector<sim::Join> spawnScenarioWarm(soc::Soc &soc, const ScenarioSpec &s);

/** Spawn the doall measure workers on a warmed/restored SoC; does not run. */
std::vector<sim::Join> spawnScenarioDoall(soc::Soc &soc, const ScenarioSpec &s);

/** Validate y against the recomputed golden and collect stats; @p start is
 *  the SoC clock at measure begin. */
ScenarioResult collectScenarioResult(soc::Soc &soc, const ScenarioSpec &s,
                                     sim::Cycle start);

/// @}

/** Convenience: ScenarioResult as a JSON document (for result files). */
json::Value scenarioResultJson(const ScenarioResult &r);

}  // namespace maple::harness
