/**
 * @file
 * Host-performance measurement for the simulator itself: wall-clock timing,
 * events/second accounting, and a machine-readable BENCH_host_perf.json
 * report. This is the measurement loop behind bench_host_perf and the CI
 * perf-smoke job — every kernel optimization PR records its before/after
 * trajectory through it.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace maple::harness {

/** One measured benchmark: how fast the host simulated a scenario. */
struct PerfSample {
    std::string name;
    std::uint64_t events = 0;      ///< kernel events executed
    std::uint64_t sim_cycles = 0;  ///< simulated cycles covered
    double host_seconds = 0.0;     ///< host wall time
    unsigned threads = 1;          ///< host worker threads driving the run

    double
    eventsPerSec() const
    {
        return host_seconds > 0.0 ? static_cast<double>(events) / host_seconds
                                  : 0.0;
    }

    double
    simCyclesPerSec() const
    {
        return host_seconds > 0.0
                   ? static_cast<double>(sim_cycles) / host_seconds
                   : 0.0;
    }
};

/** Wall-clock stopwatch; starts on construction. */
class WallTimer {
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Collects PerfSamples, prints a table, writes the JSON report. */
class HostPerfReport {
  public:
    void add(PerfSample s) { samples_.push_back(std::move(s)); }
    const std::vector<PerfSample> &samples() const { return samples_; }

    /** Human-readable table on stdout. */
    void print() const;

    /**
     * Machine-readable report:
     *   { "bench": ..., "quick": ..., "benchmarks": [ {name, events,
     *     sim_cycles, host_seconds, events_per_sec}, ... ] }
     */
    void writeJson(const std::string &path, const std::string &bench_name,
                   bool quick) const;

  private:
    std::vector<PerfSample> samples_;
};

/** Flags shared by host-perf benches (parsed and stripped from argv). */
struct HostPerfOptions {
    bool quick = false;  ///< --quick: CI-sized iteration counts
    std::string out_path = "BENCH_host_perf.json";  ///< --out=<path>
    /** Thread counts for the sharded tiers: --threads=N for one count,
     *  --threads-sweep=1,2,4 for several (each emits its own sample). */
    std::vector<unsigned> threads_sweep = {1};
};

/**
 * Parse --quick, --out=<path>, --threads=<n> and --threads-sweep=<list>
 * (both --flag=value and --flag value forms) out of argv, leaving unrelated
 * flags for the caller.
 */
HostPerfOptions applyHostPerfFlags(int &argc, char **argv);

}  // namespace maple::harness
