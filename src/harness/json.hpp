/**
 * @file
 * Minimal JSON value, parser and writer for the harness/campaign layer: job
 * specs, result files, stats serialization and the host-perf report all go
 * through this one implementation so their formats stay consistent and
 * lockable by tests.
 *
 * Deliberate properties:
 *  - objects preserve insertion order (results diff cleanly run-to-run);
 *  - integers round-trip as std::int64_t, never through double;
 *  - doubles are written with shortest round-trip formatting (std::to_chars),
 *    so write(parse(x)) is byte-stable;
 *  - no dependencies beyond the standard library.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sim/error.hpp"

namespace maple::harness::json {

/** Malformed JSON input. */
class JsonError : public sim::FatalError {
  public:
    using sim::FatalError::FatalError;
};

class Value;
using Array = std::vector<Value>;
/** Insertion-ordered object; lookups are linear (objects here are small). */
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
  public:
    Value() : v_(nullptr) {}
    Value(std::nullptr_t) : v_(nullptr) {}
    Value(bool b) : v_(b) {}
    Value(std::int64_t i) : v_(i) {}
    Value(int i) : v_(static_cast<std::int64_t>(i)) {}
    Value(unsigned i) : v_(static_cast<std::int64_t>(i)) {}
    Value(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}
    Value(double d) : v_(d) {}
    Value(const char *s) : v_(std::string(s)) {}
    Value(std::string s) : v_(std::move(s)) {}
    Value(Array a) : v_(std::move(a)) {}
    Value(Object o) : v_(std::move(o)) {}

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(v_); }
    bool isBool() const { return std::holds_alternative<bool>(v_); }
    bool isInt() const { return std::holds_alternative<std::int64_t>(v_); }
    bool isDouble() const { return std::holds_alternative<double>(v_); }
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return std::holds_alternative<std::string>(v_); }
    bool isArray() const { return std::holds_alternative<Array>(v_); }
    bool isObject() const { return std::holds_alternative<Object>(v_); }

    bool asBool() const { return std::get<bool>(v_); }
    std::int64_t asInt() const
    {
        if (isDouble())
            return static_cast<std::int64_t>(std::get<double>(v_));
        return std::get<std::int64_t>(v_);
    }
    double asDouble() const
    {
        if (isInt())
            return static_cast<double>(std::get<std::int64_t>(v_));
        return std::get<double>(v_);
    }
    const std::string &asString() const { return std::get<std::string>(v_); }
    const Array &asArray() const { return std::get<Array>(v_); }
    Array &asArray() { return std::get<Array>(v_); }
    const Object &asObject() const { return std::get<Object>(v_); }
    Object &asObject() { return std::get<Object>(v_); }

    /// @name Object helpers
    /// @{

    /** Member lookup; nullptr when absent or not an object. */
    const Value *get(const std::string &key) const;

    /** Set (insert or overwrite) a member; converts null to an object. */
    void set(const std::string &key, Value v);

    /** Typed lookups with defaults, for spec parsing. */
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;
    std::string getString(const std::string &key, const std::string &def) const;

    /// @}

    bool operator==(const Value &other) const { return v_ == other.v_; }

  private:
    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
                 Array, Object>
        v_;
};

/** Parse a complete JSON document; throws JsonError with position info. */
Value parse(const std::string &text);

/**
 * Serialize with 2-space indentation and a trailing newline at top level.
 * Key order is the object's insertion order.
 */
void write(std::ostream &os, const Value &v);

/** write() to a string. */
std::string dump(const Value &v);

/**
 * Single-line serialization (no indentation, no trailing newline) — the
 * journal format: one record per line, appended atomically.
 */
std::string dumpCompact(const Value &v);

/**
 * Write @p v to @p path atomically: temp file in the same directory, then
 * rename. Concurrent writers (campaign workers) never expose torn files.
 * Any I/O failure — ENOSPC, short write, failed close or rename — throws
 * JsonError (with errno detail) after removing the temp file, so a torn
 * document can never be observed under @p path.
 */
void writeFile(const std::string &path, const Value &v);

/** Parse the JSON document in @p path; throws JsonError on I/O failure. */
Value parseFile(const std::string &path);

}  // namespace maple::harness::json
