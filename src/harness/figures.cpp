#include "harness/figures.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>

#include "fault/fault.hpp"
#include "harness/stats_io.hpp"
#include "sim/stats.hpp"

namespace maple::harness {

namespace {

struct Flag {
    const char *name;
    const char *env;
};

/**
 * Strip every recognized --flag=value (or --flag value) pair from argv and
 * latch it into the corresponding environment knob. Shared by the trace,
 * fault, and fabric flag families so they strip identically.
 */
void
stripFlagsToEnv(int &argc, char **argv, const Flag *flags, size_t num_flags)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const Flag *hit = nullptr;
        const char *value = nullptr;
        for (size_t k = 0; k < num_flags; ++k) {
            const Flag &f = flags[k];
            size_t n = std::strlen(f.name);
            if (std::strncmp(arg, f.name, n) != 0)
                continue;
            if (arg[n] == '=') {
                hit = &f;
                value = arg + n + 1;
                break;
            }
            if (arg[n] == '\0') {
                hit = &f;
                if (i + 1 < argc)
                    value = argv[++i];
                break;
            }
        }
        if (!hit) {
            argv[out++] = argv[i];
            continue;
        }
        if (!value || !*value) {
            std::fprintf(stderr, "%s requires a value\n", hit->name);
            std::exit(2);
        }
        setenv(hit->env, value, /*overwrite=*/1);
    }
    argc = out;
    argv[argc] = nullptr;
}

}  // namespace

std::string
applyGridJsonFlag(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--json", 6) == 0) {
            const char *value = nullptr;
            if (arg[6] == '=')
                value = arg + 7;
            else if (arg[6] == '\0' && i + 1 < argc)
                value = argv[++i];
            if (!value || !*value) {
                std::fprintf(stderr, "--json requires a value\n");
                std::exit(2);
            }
            path = value;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    return path;
}

void
writeGridJson(const std::string &path, const std::string &bench,
              const Grid &grid)
{
    if (path.empty())
        return;
    json::Value doc = gridToJson(grid);
    json::Object out;
    out.emplace_back("bench", json::Value(bench));
    for (auto &kv : doc.asObject())
        out.push_back(std::move(kv));
    json::writeFile(path, json::Value(std::move(out)));
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

void
applyTraceFlags(int &argc, char **argv)
{
    static constexpr Flag kFlags[] = {
        {"--trace", "MAPLE_TRACE"},
        {"--trace-csv", "MAPLE_TRACE_CSV"},
        {"--trace-interval", "MAPLE_TRACE_INTERVAL"},
    };
    stripFlagsToEnv(argc, argv, kFlags, std::size(kFlags));
}

namespace {

/**
 * One row of `--list-faults`: how a FaultClass is enabled and what its
 * magnitude field means. Kept here (not in src/fault) because flags are a
 * harness concern; fault.cpp's mergeEnv is the authority for env names.
 */
struct FaultClassRow {
    fault::FaultClass cls;
    const char *flag;
    const char *env;
    const char *value;  ///< value syntax and magnitude default
    const char *note;
};

constexpr FaultClassRow kFaultClassRows[] = {
    {fault::FaultClass::NocLinkStall, "--fault-noc", "MAPLE_FAULT_NOC",
     "<prob[:cycles]> (default :64)",
     "extra cycles on one mesh-link reservation"},
    {fault::FaultClass::DramSpike, "--fault-dram", "MAPLE_FAULT_DRAM",
     "<prob[:cycles]> (default :2000)", "late data on one DRAM access"},
    {fault::FaultClass::TlbStorm, "--fault-tlb", "MAPLE_FAULT_TLB",
     "<prob>", "forced re-walk: translation invalidated first"},
    {fault::FaultClass::MmioDelay, "--fault-mmio", "MAPLE_FAULT_MMIO",
     "<prob[:cycles]> (default :200)", "delayed MMIO response"},
    {fault::FaultClass::HardSpad, "--fault-hard-spad",
     "MAPLE_FAULT_HARD_SPAD", "<prob>",
     "hard fault: scratchpad fill poisoned (device recovery)"},
    {fault::FaultClass::HardTlb, "--fault-hard-tlb", "MAPLE_FAULT_HARD_TLB",
     "<prob>", "hard fault: device-TLB translation corrupted"},
    {fault::FaultClass::CohMsgDelay, "--fault-coh", "MAPLE_FAULT_COH",
     "<prob[:cycles]> (default :64)",
     "coherence-message delay (needs --coherence=msi)"},
    {fault::FaultClass::CohMsgDrop, "--fault-coh-drop",
     "MAPLE_FAULT_COH_DROP", "<prob>",
     "coherence-message loss: timeout + retransmit (needs --coherence=msi)"},
    {fault::FaultClass::BitFlipL1, "--fault-bitflip-l1",
     "MAPLE_FAULT_BITFLIP_L1", "<prob[:sev]> (default :2)",
     "L1 soft error; sev 1 correctable, >=2 poison (needs --ecc=secded)"},
    {fault::FaultClass::BitFlipLlc, "--fault-bitflip-llc",
     "MAPLE_FAULT_BITFLIP_LLC", "<prob[:sev]> (default :2)",
     "LLC-slice soft error (needs --ecc=secded)"},
    {fault::FaultClass::BitFlipDir, "--fault-bitflip-dir",
     "MAPLE_FAULT_BITFLIP_DIR", "<prob[:sev]> (default :2)",
     "directory-entry soft error (needs --ecc=secded + --coherence=msi)"},
    {fault::FaultClass::BitFlipDram, "--fault-bitflip-dram",
     "MAPLE_FAULT_BITFLIP_DRAM", "<prob[:sev]> (default :2)",
     "DRAM-read soft error (needs --ecc=secded)"},
};

static_assert(std::size(kFaultClassRows) ==
                  static_cast<std::size_t>(fault::FaultClass::kCount),
              "every FaultClass needs a --list-faults row");

[[noreturn]] void
listFaultsAndExit()
{
    std::printf("fault classes (all off by default; probabilities are per "
                "injection opportunity):\n\n");
    for (const FaultClassRow &r : kFaultClassRows) {
        std::printf("  %-14s %s=%s\n", fault::faultClassName(r.cls), r.flag,
                    r.value);
        std::printf("  %-14s env %s; %s\n\n", "", r.env, r.note);
    }
    std::printf("shared knobs: --fault-seed=<u64> (MAPLE_FAULT_SEED), "
                "--fault-only=<cls,...> (MAPLE_FAULT_ONLY)\n");
    std::exit(0);
}

}  // namespace

void
applyFaultFlags(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list-faults") == 0)
            listFaultsAndExit();
    }
    static constexpr Flag kFlags[] = {
        {"--fault-seed", "MAPLE_FAULT_SEED"},
        {"--fault-noc", "MAPLE_FAULT_NOC"},
        {"--fault-dram", "MAPLE_FAULT_DRAM"},
        {"--fault-tlb", "MAPLE_FAULT_TLB"},
        {"--fault-mmio", "MAPLE_FAULT_MMIO"},
        {"--fault-hard-spad", "MAPLE_FAULT_HARD_SPAD"},
        {"--fault-hard-tlb", "MAPLE_FAULT_HARD_TLB"},
        {"--fault-coh", "MAPLE_FAULT_COH"},
        {"--fault-coh-drop", "MAPLE_FAULT_COH_DROP"},
        {"--fault-bitflip-l1", "MAPLE_FAULT_BITFLIP_L1"},
        {"--fault-bitflip-llc", "MAPLE_FAULT_BITFLIP_LLC"},
        {"--fault-bitflip-dir", "MAPLE_FAULT_BITFLIP_DIR"},
        {"--fault-bitflip-dram", "MAPLE_FAULT_BITFLIP_DRAM"},
        {"--fault-recovery", "MAPLE_FAULT_RECOVERY"},
        {"--fault-recovery-retries", "MAPLE_FAULT_RECOVERY_RETRIES"},
        {"--fault-recovery-budget", "MAPLE_FAULT_RECOVERY_BUDGET"},
        {"--fault-recovery-backoff", "MAPLE_FAULT_RECOVERY_BACKOFF"},
        {"--fault-recovery-timeout", "MAPLE_FAULT_RECOVERY_TIMEOUT"},
        {"--watchdog", "MAPLE_WATCHDOG"},
        {"--watchdog-stall-bound", "MAPLE_WATCHDOG_STALL_BOUND"},
    };
    stripFlagsToEnv(argc, argv, kFlags, std::size(kFlags));
}

void
applyFabricFlags(int &argc, char **argv)
{
    static constexpr Flag kFlags[] = {
        {"--llc-arb", "MAPLE_LLC_ARB"},
        {"--dram-arb", "MAPLE_DRAM_ARB"},
        {"--fault-only", "MAPLE_FAULT_ONLY"},
        {"--coherence", "MAPLE_COHERENCE"},
        {"--llc-slices", "MAPLE_LLC_SLICES"},
        {"--coh-check", "MAPLE_COH_CHECK"},
        {"--ecc", "MAPLE_ECC"},
        {"--ecc-correct-latency", "MAPLE_ECC_CORRECT_LATENCY"},
        {"--scrub-interval", "MAPLE_SCRUB_INTERVAL"},
        {"--scrub-batch", "MAPLE_SCRUB_BATCH"},
    };
    stripFlagsToEnv(argc, argv, kFlags, std::size(kFlags));
}

Grid
runGrid(const std::vector<std::unique_ptr<app::Workload>> &workloads,
        const std::vector<app::Technique> &techniques,
        const app::RunConfig &base,
        const std::function<void(app::RunConfig &, app::Technique)> &tweak)
{
    Grid grid;
    for (const auto &w : workloads) {
        for (app::Technique t : techniques) {
            app::RunConfig cfg = base;
            cfg.tech = t;
            if (tweak)
                tweak(cfg, t);
            app::RunResult r = w->run(cfg);
            if (!r.valid) {
                MAPLE_FATAL("invalid result: %s under %s (checksum mismatch)",
                            r.workload.c_str(), r.technique.c_str());
            }
            std::fprintf(stderr, "  [run] %-6s %-15s %12llu cycles%s\n",
                         r.workload.c_str(), r.technique.c_str(),
                         (unsigned long long)r.cycles,
                         r.fell_back_to_doall ? "  (fell back to doall)" : "");
            grid.put(std::move(r));
        }
    }
    return grid;
}

std::vector<std::string>
workloadNames(const std::vector<std::unique_ptr<app::Workload>> &ws)
{
    std::vector<std::string> names;
    for (const auto &w : ws)
        names.push_back(w->name());
    return names;
}

void
printSpeedupTable(const std::string &title, const Grid &grid,
                  const std::vector<std::string> &workloads,
                  const std::vector<app::Technique> &series,
                  app::Technique baseline)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-8s", "app");
    for (app::Technique t : series)
        std::printf("  %14s", app::techniqueName(t));
    std::printf("\n");

    std::vector<std::vector<double>> cols(series.size());
    for (const std::string &w : workloads) {
        std::printf("%-8s", w.c_str());
        double base_cycles =
            static_cast<double>(grid.at(w, baseline).cycles);
        for (size_t i = 0; i < series.size(); ++i) {
            double sp = base_cycles /
                        static_cast<double>(grid.at(w, series[i]).cycles);
            cols[i].push_back(sp);
            std::printf("  %13.2fx", sp);
        }
        std::printf("\n");
    }
    std::printf("%-8s", "geomean");
    for (auto &c : cols)
        std::printf("  %13.2fx", sim::geomean(c));
    std::printf("\n");
}

void
printMetricTable(const std::string &title, const Grid &grid,
                 const std::vector<std::string> &workloads,
                 const std::vector<app::Technique> &series,
                 const std::function<double(const app::RunResult &)> &metric,
                 const std::string &unit)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("%-8s", "app");
    for (app::Technique t : series)
        std::printf("  %14s", app::techniqueName(t));
    std::printf("\n");
    for (const std::string &w : workloads) {
        std::printf("%-8s", w.c_str());
        for (app::Technique t : series)
            std::printf("  %12.2f%s", metric(grid.at(w, t)), unit.c_str());
        std::printf("\n");
    }
}

}  // namespace maple::harness
