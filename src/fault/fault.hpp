/**
 * @file
 * Deterministic fault injection & liveness bookkeeping.
 *
 * A FaultInjector is registered next to the EventQueue
 * (EventQueue::faultInjector()), mirroring trace::TraceManager, and serves
 * two roles:
 *
 *  - Fault injection: a seeded FaultPlan draws from one dedicated RNG
 *    stream *per fault class* (never the workload generators' streams), so
 *    (a) with all rates zero the simulation is bit-identical to a run with
 *    no injector at all, and (b) enabling one fault class does not perturb
 *    the draw sequence of another. Injectable classes: transient NoC link
 *    stalls, DRAM latency spikes, device-TLB miss storms (forced re-walks)
 *    and delayed MMIO responses. Each injection is counted, charged to a
 *    dedicated StallCause bucket, and emitted as a Perfetto instant when
 *    tracing is on.
 *
 *  - Liveness bookkeeping: every blocking wait in the modeled hardware
 *    (MAPLE queue full/empty, produce buffer, MSHRs, store buffer...)
 *    registers an intrusive ParkGuard while parked. The watchdog
 *    (fault/watchdog.hpp) and the deadlock diagnostic read this registry to
 *    name exactly who is stuck and since when.
 *
 * Knobs (env, or --fault-* CLI flags via harness::applyFaultFlags):
 *   MAPLE_FAULT_SEED=<u64>           seed for the fault RNG streams
 *   MAPLE_FAULT_NOC=<prob[:cycles]>  per-link-traversal stall probability
 *   MAPLE_FAULT_DRAM=<prob[:cycles]> per-access latency-spike probability
 *   MAPLE_FAULT_TLB=<prob>           per-translation forced-TLB-miss prob
 *   MAPLE_FAULT_MMIO=<prob[:cycles]> per-MMIO-op response-delay probability
 *   MAPLE_FAULT_HARD_SPAD=<prob>     per-fill hard scratchpad corruption
 *   MAPLE_FAULT_HARD_TLB=<prob>      per-walk hard device-TLB corruption
 *   MAPLE_FAULT_COH=<prob[:cycles]>  per-protocol-message extra-delay prob
 *   MAPLE_FAULT_COH_DROP=<prob>      per-protocol-message drop probability
 *                                    (the copy burns its flits, the sender
 *                                    times out and retransmits)
 *   MAPLE_FAULT_BITFLIP_L1=<prob[:sev]>   per-L1-access SRAM bit flip
 *   MAPLE_FAULT_BITFLIP_LLC=<prob[:sev]>  per-LLC-access SRAM bit flip
 *   MAPLE_FAULT_BITFLIP_DIR=<prob[:sev]>  per-directory-lookup bit flip
 *   MAPLE_FAULT_BITFLIP_DRAM=<prob[:sev]> per-DRAM-read bit flip
 *                                    Bit flips only matter under
 *                                    MAPLE_ECC=secded (mem/resil.hpp): a
 *                                    drawn magnitude of 1 is a correctable
 *                                    single-bit error (latency penalty),
 *                                    >= 2 is uncorrectable (poison /
 *                                    directory-entry corruption). With ECC
 *                                    off the rates are inert.
 *   MAPLE_FAULT_ONLY=<cls[,cls...]>  restrict injection to these requester
 *                                    classes (core, maple_consume,
 *                                    maple_produce, ptw, prefetch, mmio,
 *                                    coherence)
 *
 * Hard faults (HardSpad, HardTlb) do not add latency: they corrupt state.
 * The device latches architectural error registers and poisons the affected
 * response (RequestMeta::fault_tags); the OS-layer driver (os/maple_driver)
 * detects the poison at the consumer and runs the recovery state machine.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mem/port.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace maple::fault {

enum class FaultClass : std::uint8_t {
    NocLinkStall,  ///< extra cycles on one directed-mesh-link reservation
    DramSpike,     ///< extra latency on one DRAM access
    TlbStorm,      ///< invalidate the translation first: forced re-walk
    MmioDelay,     ///< extra cycles before an MMIO op enters the device
    HardSpad,      ///< hard fault: a scratchpad fill returns poisoned data
    HardTlb,       ///< hard fault: a device-TLB translation is corrupted
    CohMsgDelay,   ///< extra cycles on one coherence-protocol message
    CohMsgDrop,    ///< a coherence message is lost: timeout + retransmit
    BitFlipL1,     ///< soft error in an L1 data/tag array (needs ECC model)
    BitFlipLlc,    ///< soft error in an LLC slice array (needs ECC model)
    BitFlipDir,    ///< soft error in a sparse-directory entry (needs ECC)
    BitFlipDram,   ///< soft error in a DRAM burst (needs ECC model)
    kCount
};
const char *faultClassName(FaultClass c);

/** Transient faults add latency; hard faults corrupt state and must be
 *  recovered from (device error latch + driver reset + replay). */
inline constexpr bool
isHardFault(FaultClass c)
{
    return c == FaultClass::HardSpad || c == FaultClass::HardTlb;
}

/** Soft-error classes modeled by the ECC layer (mem/resil.hpp). */
inline constexpr bool
isBitFlip(FaultClass c)
{
    return c == FaultClass::BitFlipL1 || c == FaultClass::BitFlipLlc ||
           c == FaultClass::BitFlipDir || c == FaultClass::BitFlipDram;
}

/** Bit in RequestMeta::fault_tags marking a fault hit en route. */
inline constexpr std::uint32_t
faultClassBit(FaultClass c)
{
    return 1u << static_cast<unsigned>(c);
}

/** Probability per opportunity plus the magnitude ceiling (where relevant). */
struct FaultRate {
    double prob = 0.0;         ///< [0,1] chance per injection opportunity
    sim::Cycle max_extra = 0;  ///< injected delay drawn from [1, max_extra]
};

struct FaultConfig {
    std::uint64_t seed = 1;
    FaultRate noc{};    ///< defaults to max_extra 64 when enabled via env
    FaultRate dram{};   ///< defaults to max_extra 2000 when enabled via env
    FaultRate tlb{};    ///< magnitude is organic: the re-walk costs real cycles
    FaultRate mmio{};   ///< defaults to max_extra 200 when enabled via env
    FaultRate hard_spad{};  ///< hard scratchpad-fill corruption (prob only)
    FaultRate hard_tlb{};   ///< hard device-TLB corruption (prob only)
    FaultRate coh_delay{};  ///< defaults to max_extra 64 when enabled via env
    FaultRate coh_drop{};   ///< coherence-message loss (timeout cost is fixed)
    // Soft-error bit flips (mem/resil.hpp decides correctable vs poison).
    // max_extra is the severity ceiling: a draw of 1 is a single-bit
    // (correctable) error, >= 2 is multi-bit (uncorrectable); the env
    // default of 2 gives a 50/50 split.
    FaultRate bitflip_l1{};
    FaultRate bitflip_llc{};
    FaultRate bitflip_dir{};
    FaultRate bitflip_dram{};

    /**
     * Requester classes faults may hit. Opportunities from classes outside
     * the mask are skipped *without* drawing, so a class-targeted campaign
     * never injects into other agents' requests (they only feel second-order
     * contention from the targeted class). Default: everyone.
     */
    std::uint32_t class_mask = mem::kAllRequesterClasses;

    /** True when any class has a nonzero probability. */
    bool anyEnabled() const;

    /** Overlay the MAPLE_FAULT_* environment knobs (see file comment). */
    void mergeEnv();
};

/**
 * The seeded draw engine. One xoshiro256** stream per fault class, each
 * derived from the plan seed, so the decision sequence of a class depends
 * only on (seed, its own opportunity order).
 */
class FaultPlan {
  public:
    explicit FaultPlan(const FaultConfig &cfg);

    /**
     * Decide one injection opportunity for @p c. Returns the extra cycles
     * to inject (0 = no fault). For TlbStorm the magnitude is meaningless
     * (the cost is the organic re-walk) and any nonzero return means fire.
     */
    sim::Cycle draw(FaultClass c);

    /** Snapshot support: stream positions only (rates come from config). */
    void
    saveState(ckpt::Sink &out) const
    {
        for (const sim::Rng &r : streams_) {
            for (std::uint64_t w : r.state())
                out.u64(w);
        }
    }

    void
    loadState(ckpt::Source &in)
    {
        for (sim::Rng &r : streams_) {
            sim::Rng::State st;
            for (std::uint64_t &w : st)
                w = in.u64();
            r.setState(st);
        }
    }

  private:
    static constexpr std::size_t kClasses =
        static_cast<std::size_t>(FaultClass::kCount);
    std::array<FaultRate, kClasses> rates_;
    std::array<sim::Rng, kClasses> streams_;
};

/** One injected fault, as recorded in the injector's bounded event log. */
struct FaultEvent {
    sim::Cycle cycle = 0;
    FaultClass cls = FaultClass::kCount;
    sim::Cycle extra = 0;  ///< injected magnitude (0 for hard faults)
};

/** Intrusive registry node for one parked coroutine (see ParkGuard). */
struct ParkNode {
    const char *site = nullptr;          ///< e.g. "consume_empty" (literal)
    const std::string *owner = nullptr;  ///< component name (stable storage)
    unsigned index = 0;                  ///< queue index etc. (site-defined)
    sim::Cycle since = 0;
    ParkNode *prev = nullptr;
    ParkNode *next = nullptr;
};

class FaultInjector {
  public:
    /** Construct and attach to @p eq; detaches in the destructor. */
    FaultInjector(sim::EventQueue &eq, FaultConfig cfg);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    const FaultConfig &config() const { return cfg_; }

    /** True when at least one fault class can fire (the active() gate). */
    bool injecting() const { return injecting_; }

    /**
     * Decide one injection opportunity: draws from the plan, and on a hit
     * bumps the occurrence counter and emits a Perfetto instant (when
     * tracing). Returns the extra cycles to inject (0 = no fault).
     */
    sim::Cycle inject(FaultClass c);

    /**
     * Class-keyed injection opportunity: skipped (no draw, no counter) when
     * @p rc is outside the configured requester-class mask. Sites on the
     * typed memory fabric use this overload so fault campaigns can target
     * e.g. only MAPLE's streams or only core demand traffic.
     */
    sim::Cycle
    inject(FaultClass c, mem::RequesterClass rc)
    {
        if (!(cfg_.class_mask & mem::requesterClassBit(rc)))
            return 0;
        return inject(c);
    }

    /**
     * Account @p cycles of injected latency: bumps the per-class cycle
     * counter and charges the matching StallCause::Fault* bucket.
     */
    void chargeCycles(FaultClass c, sim::Cycle cycles);

    std::uint64_t injectedCount(FaultClass c) const
    {
        return counts_[static_cast<std::size_t>(c)];
    }
    std::uint64_t injectedCycles(FaultClass c) const
    {
        return cycles_[static_cast<std::size_t>(c)];
    }

    /**
     * Deterministic jitter for the driver's retry backoff, drawn from a
     * dedicated stream derived from the fault seed. Never shared with the
     * injection streams: recovery retries cannot perturb what faults fire.
     * Returns a value in [0, bound) (0 when bound <= 1).
     */
    sim::Cycle
    recoveryJitter(sim::Cycle bound)
    {
        return bound > 1 ? recovery_rng_.below(bound) : 0;
    }

    /** Last recorded injections, oldest first (bounded ring, see kEventLog). */
    std::vector<FaultEvent> recentFaults() const;

    /// @name Liveness bookkeeping (read by fault::Watchdog)
    /// @{

    /** Register a named component-state dump for the deadlock diagnostic. */
    void
    addDiagnostic(std::string name, std::function<std::string()> fn)
    {
        diagnostics_.push_back({std::move(name), std::move(fn)});
    }

    /** Number of coroutines currently parked on a registered wait. */
    unsigned parkedWaiters() const { return parked_count_; }

    /** Park cycle of the longest-parked waiter; kCycleMax when none. */
    sim::Cycle oldestParkCycle() const;

    /**
     * Exclude waiters owned by @p owner (matched by stable address, the same
     * object components hand their ParkGuards) from the watchdog's
     * parked-waiter accounting. Used while a device is deliberately quiesced
     * for recovery, and permanently once a queue degrades to the software
     * path, so an intentional stall is not reported as a livelock.
     */
    void maskOwner(const std::string &owner);
    void unmaskOwner(const std::string &owner);
    bool ownerMasked(const std::string *owner) const;

    /** parkedWaiters() excluding masked owners (what the watchdog uses). */
    unsigned unmaskedParkedWaiters() const;

    /** oldestParkCycle() excluding masked owners (what the watchdog uses). */
    sim::Cycle oldestUnmaskedParkCycle() const;

    /**
     * The structured diagnostic: parked-waiter list (who/where/since),
     * registered component dumps, and the stall-attribution snapshot when
     * a tracer is attached.
     */
    std::string livenessReport() const;

    /// @}

    /**
     * Snapshot support (src/ckpt). Stream positions, counters and the event
     * log round-trip only when the restoring injector runs the *same* fault
     * configuration (seed, rates, class mask): a snapshot is also a valid
     * warm image for campaigns that vary the fault plan per variant, in
     * which case the restored injector keeps its fresh streams. Parked
     * waiters and owner masks must be empty at both ends (quiesced SoC).
     */
    void saveState(ckpt::Sink &out) const;
    void loadState(ckpt::Source &in);

    /** Hash of the injection-relevant configuration (seed, rates, mask). */
    std::uint64_t configFingerprint() const;

  private:
    friend class ParkGuard;

    void
    link(ParkNode *n)
    {
        n->prev = nullptr;
        n->next = parked_head_;
        if (parked_head_)
            parked_head_->prev = n;
        parked_head_ = n;
        ++parked_count_;
    }

    void
    unlink(ParkNode *n)
    {
        if (n->prev)
            n->prev->next = n->next;
        else
            parked_head_ = n->next;
        if (n->next)
            n->next->prev = n->prev;
        --parked_count_;
    }

    struct Diagnostic {
        std::string name;
        std::function<std::string()> fn;
    };

    sim::EventQueue &eq_;
    FaultConfig cfg_;
    FaultPlan plan_;
    bool injecting_ = false;

    std::array<std::uint64_t, static_cast<std::size_t>(FaultClass::kCount)>
        counts_{};
    std::array<std::uint64_t, static_cast<std::size_t>(FaultClass::kCount)>
        cycles_{};

    ParkNode *parked_head_ = nullptr;
    unsigned parked_count_ = 0;
    std::vector<Diagnostic> diagnostics_;

    /** Owners (stable name addresses) excluded from watchdog accounting. */
    std::vector<const std::string *> masked_owners_;

    /** Bounded ring of recent injections for self-contained hang reports. */
    static constexpr std::size_t kEventLog = 16;
    std::array<FaultEvent, kEventLog> event_log_{};
    std::uint64_t event_count_ = 0;

    /** Dedicated stream for driver retry-backoff jitter (see recoveryJitter). */
    sim::Rng recovery_rng_;

    /// Lazily-created trace track for fault instants.
    trace::TraceManager::TrackId tr_track_ = trace::TraceManager::kNone;
};

/**
 * RAII owner mask: while alive, ParkGuards naming @p owner are invisible to
 * the watchdog. Held by the driver across a recovery (quiesce -> reset ->
 * replay) so the deliberately-stalled device never trips the stall bound.
 */
class OwnerMaskGuard {
  public:
    OwnerMaskGuard(sim::EventQueue &eq, const std::string &owner)
        : fi_(eq.faultInjector()), owner_(&owner)
    {
        if (fi_)
            fi_->maskOwner(owner);
    }

    OwnerMaskGuard(const OwnerMaskGuard &) = delete;
    OwnerMaskGuard &operator=(const OwnerMaskGuard &) = delete;

    ~OwnerMaskGuard()
    {
        if (fi_)
            fi_->unmaskOwner(*owner_);
    }

  private:
    FaultInjector *fi_ = nullptr;
    const std::string *owner_ = nullptr;
};

/**
 * The injection fast path: null when no injector is attached *or* every
 * fault rate is zero. Injection sites are written as
 *
 *     if (fault::FaultInjector *f = fault::active(eq_)) { ... }
 *
 * one pointer load + compare in the common (faults-off) case.
 */
inline FaultInjector *
active(const sim::EventQueue &eq)
{
    FaultInjector *f = eq.faultInjector();
    return (f && f->injecting()) ? f : nullptr;
}

/**
 * RAII registration of one parked coroutine. Lives in the coroutine frame
 * across the wait loop's co_awaits; a no-op (one pointer check) when no
 * injector is attached. Park tracking is wanted even with injection
 * disabled — the watchdog names waiters in ordinary runs too — so this
 * binds to eq.faultInjector() directly, not fault::active().
 */
class ParkGuard {
  public:
    /** index value meaning "no queue/slot index to report". */
    static constexpr unsigned kNoIndex = 0xffffffffu;

    ParkGuard() = default;

    ParkGuard(sim::EventQueue &eq, const char *site, const std::string &owner,
              unsigned index = kNoIndex)
        : fi_(eq.faultInjector())
    {
        if (!fi_)
            return;
        node_.site = site;
        node_.owner = &owner;
        node_.index = index;
        node_.since = eq.now();
        fi_->link(&node_);
    }

    ParkGuard(const ParkGuard &) = delete;
    ParkGuard &operator=(const ParkGuard &) = delete;
    ParkGuard(ParkGuard &&) = delete;
    ParkGuard &operator=(ParkGuard &&) = delete;

    ~ParkGuard()
    {
        if (fi_)
            fi_->unlink(&node_);
    }

  private:
    FaultInjector *fi_ = nullptr;
    ParkNode node_;
};

}  // namespace maple::fault
