#include "fault/watchdog.hpp"

#include <cstdlib>
#include <sstream>

#include "fault/fault.hpp"
#include "sim/log.hpp"

namespace maple::fault {

void
WatchdogConfig::mergeEnv()
{
    if (const char *p = std::getenv("MAPLE_WATCHDOG"); p && *p)
        enabled = !(p[0] == '0' && p[1] == '\0');
    auto parseCycles = [](const char *env, sim::Cycle &out) {
        const char *p = std::getenv(env);
        if (!p || !*p)
            return;
        char *end = nullptr;
        unsigned long long v = std::strtoull(p, &end, 10);
        if (end && *end == '\0' && v > 0)
            out = v;
        else
            MAPLE_WARN("ignoring bad %s '%s'", env, p);
    };
    parseCycles("MAPLE_WATCHDOG_STALL_BOUND", stall_bound);
    parseCycles("MAPLE_WATCHDOG_INTERVAL", check_interval);
}

bool
Watchdog::run(sim::Cycle max_cycles)
{
    if (!cfg_.enabled)
        return eq_.run(max_cycles);
    for (;;) {
        sim::Cycle bound = max_cycles;
        if (cfg_.check_interval < max_cycles - eq_.now())
            bound = eq_.now() + cfg_.check_interval;
        if (eq_.run(bound))
            return true;
        if (eq_.now() >= max_cycles)
            return false;
        checkStall(eq_, cfg_);
    }
}

void
Watchdog::checkStall(const sim::EventQueue &eq, const WatchdogConfig &cfg)
{
    const FaultInjector *fi = eq.faultInjector();
    // Masked owners (a device deliberately quiesced for recovery, or a
    // queue degraded to the software path) are intentional stalls, not
    // livelocks: only unmasked waiters count toward the stall bound.
    if (!fi || fi->unmaskedParkedWaiters() == 0)
        return;
    sim::Cycle oldest = fi->oldestUnmaskedParkCycle();
    if (oldest != sim::kCycleMax && eq.now() - oldest >= cfg.stall_bound) {
        failDeadlock(eq, sim::detail::formatString(
            "liveness watchdog: a waiter has been parked for %llu cycles "
            "(stall bound %llu) at cycle %llu",
            (unsigned long long)(eq.now() - oldest),
            (unsigned long long)cfg.stall_bound,
            (unsigned long long)eq.now()));
    }
}

std::string
Watchdog::diagnose(const sim::EventQueue &eq)
{
    std::ostringstream os;
    if (const FaultInjector *fi = eq.faultInjector())
        os << fi->livenessReport();
    else
        os << "(no fault injector attached: parked-waiter detail unavailable)\n";
    os << "event queue: " << eq.pending() << " pending, " << eq.executed()
       << " executed, now=" << eq.now();
    return os.str();
}

void
Watchdog::failDeadlock(const sim::EventQueue &eq, const std::string &summary)
{
    std::string report = diagnose(eq);
    std::fprintf(stderr, "deadlock: %s\n%s\n", summary.c_str(), report.c_str());
    std::fflush(stderr);
    throw sim::DeadlockError(summary, std::move(report));
}

}  // namespace maple::fault
