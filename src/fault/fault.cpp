#include "fault/fault.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/log.hpp"

namespace maple::fault {

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::NocLinkStall: return "noc_link_stall";
      case FaultClass::DramSpike:    return "dram_spike";
      case FaultClass::TlbStorm:     return "tlb_storm";
      case FaultClass::MmioDelay:    return "mmio_delay";
      case FaultClass::HardSpad:     return "hard_spad";
      case FaultClass::HardTlb:      return "hard_tlb";
      case FaultClass::CohMsgDelay:  return "coh_msg_delay";
      case FaultClass::CohMsgDrop:   return "coh_msg_drop";
      case FaultClass::BitFlipL1:    return "bitflip_l1";
      case FaultClass::BitFlipLlc:   return "bitflip_llc";
      case FaultClass::BitFlipDir:   return "bitflip_dir";
      case FaultClass::BitFlipDram:  return "bitflip_dram";
      default:                       return "?";
    }
}

bool
FaultConfig::anyEnabled() const
{
    return noc.prob > 0 || dram.prob > 0 || tlb.prob > 0 || mmio.prob > 0 ||
           hard_spad.prob > 0 || hard_tlb.prob > 0 || coh_delay.prob > 0 ||
           coh_drop.prob > 0 || bitflip_l1.prob > 0 || bitflip_llc.prob > 0 ||
           bitflip_dir.prob > 0 || bitflip_dram.prob > 0;
}

namespace {

/** Parse "<prob>[:<cycles>]" from @p env into @p rate. */
void
parseRate(const char *env, FaultRate &rate, sim::Cycle default_extra)
{
    const char *p = std::getenv(env);
    if (!p || !*p)
        return;
    char *end = nullptr;
    double prob = std::strtod(p, &end);
    if (end == p || prob < 0.0 || prob > 1.0) {
        MAPLE_WARN("ignoring bad %s '%s' (want <prob>[:<cycles>])", env, p);
        return;
    }
    rate.prob = prob;
    rate.max_extra = default_extra;
    if (*end == ':') {
        char *end2 = nullptr;
        unsigned long long extra = std::strtoull(end + 1, &end2, 10);
        if (end2 && *end2 == '\0' && extra > 0)
            rate.max_extra = extra;
        else
            MAPLE_WARN("ignoring bad %s magnitude in '%s'", env, p);
    }
}

}  // namespace

void
FaultConfig::mergeEnv()
{
    if (const char *p = std::getenv("MAPLE_FAULT_SEED"); p && *p) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(p, &end, 10);
        if (end && *end == '\0')
            seed = v;
        else
            MAPLE_WARN("ignoring bad MAPLE_FAULT_SEED '%s'", p);
    }
    parseRate("MAPLE_FAULT_NOC", noc, /*default_extra=*/64);
    parseRate("MAPLE_FAULT_DRAM", dram, /*default_extra=*/2000);
    parseRate("MAPLE_FAULT_TLB", tlb, /*default_extra=*/1);
    parseRate("MAPLE_FAULT_MMIO", mmio, /*default_extra=*/200);
    // Hard faults have no latency magnitude: the draw only decides firing.
    parseRate("MAPLE_FAULT_HARD_SPAD", hard_spad, /*default_extra=*/1);
    parseRate("MAPLE_FAULT_HARD_TLB", hard_tlb, /*default_extra=*/1);
    parseRate("MAPLE_FAULT_COH", coh_delay, /*default_extra=*/64);
    // A drop's cost is the fixed retransmit timeout, not a drawn magnitude.
    parseRate("MAPLE_FAULT_COH_DROP", coh_drop, /*default_extra=*/1);
    // Severity ceiling 2: the drawn magnitude is 1 (single-bit, correctable
    // under SECDED) or 2 (multi-bit, uncorrectable) with equal weight.
    parseRate("MAPLE_FAULT_BITFLIP_L1", bitflip_l1, /*default_extra=*/2);
    parseRate("MAPLE_FAULT_BITFLIP_LLC", bitflip_llc, /*default_extra=*/2);
    parseRate("MAPLE_FAULT_BITFLIP_DIR", bitflip_dir, /*default_extra=*/2);
    parseRate("MAPLE_FAULT_BITFLIP_DRAM", bitflip_dram, /*default_extra=*/2);
    if (const char *p = std::getenv("MAPLE_FAULT_ONLY"); p && *p) {
        std::uint32_t mask = 0;
        std::stringstream ss(p);
        std::string tok;
        bool ok = true;
        while (std::getline(ss, tok, ',')) {
            bool found = false;
            for (unsigned i = 0; i < mem::kNumRequesterClasses; ++i) {
                auto rc = static_cast<mem::RequesterClass>(i);
                if (tok == mem::requesterClassName(rc)) {
                    mask |= mem::requesterClassBit(rc);
                    found = true;
                    break;
                }
            }
            if (!found) {
                MAPLE_WARN("ignoring MAPLE_FAULT_ONLY: unknown class '%s'",
                           tok.c_str());
                ok = false;
                break;
            }
        }
        if (ok && mask)
            class_mask = mask;
    }
}

FaultPlan::FaultPlan(const FaultConfig &cfg)
    : rates_{cfg.noc, cfg.dram, cfg.tlb, cfg.mmio, cfg.hard_spad, cfg.hard_tlb,
             cfg.coh_delay, cfg.coh_drop, cfg.bitflip_l1, cfg.bitflip_llc,
             cfg.bitflip_dir, cfg.bitflip_dram},
      // Distinct splitmix-derived stream per class: the decision sequence of
      // one class is a pure function of (seed, class), so enabling or
      // re-rating another class cannot perturb it.
      streams_{sim::Rng(cfg.seed ^ 0x9e3779b97f4a7c15ull),
               sim::Rng(cfg.seed ^ 0xbf58476d1ce4e5b9ull),
               sim::Rng(cfg.seed ^ 0x94d049bb133111ebull),
               sim::Rng(cfg.seed ^ 0xd6e8feb86659fd93ull),
               sim::Rng(cfg.seed ^ 0xa0761d6478bd642full),
               sim::Rng(cfg.seed ^ 0xe7037ed1a0b428dbull),
               sim::Rng(cfg.seed ^ 0x60bee2bee120fc15ull),
               sim::Rng(cfg.seed ^ 0x1b56c4f5231419c9ull),
               sim::Rng(cfg.seed ^ 0x7fb5d329728ea185ull),
               sim::Rng(cfg.seed ^ 0x81dadef4bc2dd44dull),
               sim::Rng(cfg.seed ^ 0x8ebc6af09c88c6e3ull),
               sim::Rng(cfg.seed ^ 0x589965cc75374cc3ull)}
{
}

sim::Cycle
FaultPlan::draw(FaultClass c)
{
    const auto i = static_cast<std::size_t>(c);
    const FaultRate &r = rates_[i];
    if (r.prob <= 0.0)
        return 0;
    if (streams_[i].uniform() >= r.prob)
        return 0;
    if (r.max_extra <= 1)
        return 1;
    return 1 + streams_[i].below(r.max_extra);
}

FaultInjector::FaultInjector(sim::EventQueue &eq, FaultConfig cfg)
    : eq_(eq), cfg_(cfg), plan_(cfg), injecting_(cfg.anyEnabled()),
      recovery_rng_(cfg.seed ^ 0x2545f4914f6cdd1dull)
{
    eq_.attachFaultInjector(this);
    if (injecting_) {
        std::fprintf(stderr,
                     "fault: injection enabled (seed=%llu noc=%g:%llu "
                     "dram=%g:%llu tlb=%g mmio=%g:%llu hard_spad=%g "
                     "hard_tlb=%g)\n",
                     (unsigned long long)cfg_.seed, cfg_.noc.prob,
                     (unsigned long long)cfg_.noc.max_extra, cfg_.dram.prob,
                     (unsigned long long)cfg_.dram.max_extra, cfg_.tlb.prob,
                     cfg_.mmio.prob, (unsigned long long)cfg_.mmio.max_extra,
                     cfg_.hard_spad.prob, cfg_.hard_tlb.prob);
    }
}

FaultInjector::~FaultInjector()
{
    if (eq_.faultInjector() == this)
        eq_.detachFaultInjector();
}

namespace {

trace::StallCause
stallCauseOf(FaultClass c)
{
    switch (c) {
      case FaultClass::NocLinkStall: return trace::StallCause::FaultNoc;
      case FaultClass::DramSpike:    return trace::StallCause::FaultDram;
      case FaultClass::TlbStorm:     return trace::StallCause::FaultTlb;
      case FaultClass::HardSpad:
      case FaultClass::HardTlb:      return trace::StallCause::FaultRecovery;
      // Coherence messages ride the NoC; their injected latency lands in
      // the same stall bucket as organic link congestion.
      case FaultClass::CohMsgDelay:
      case FaultClass::CohMsgDrop:   return trace::StallCause::FaultNoc;
      // ECC correction penalties reuse existing buckets (no new StallCause
      // entries, keeping the trace CSV schema stable): a DRAM-side flip is
      // memory latency, SRAM-side corrections land with recovery overhead.
      case FaultClass::BitFlipDram:  return trace::StallCause::FaultDram;
      case FaultClass::BitFlipL1:
      case FaultClass::BitFlipLlc:
      case FaultClass::BitFlipDir:   return trace::StallCause::FaultRecovery;
      default:                       return trace::StallCause::FaultMmio;
    }
}

trace::Category
categoryOf(FaultClass c)
{
    switch (c) {
      case FaultClass::NocLinkStall: return trace::Category::Noc;
      case FaultClass::CohMsgDelay:  return trace::Category::Noc;
      case FaultClass::CohMsgDrop:   return trace::Category::Noc;
      case FaultClass::DramSpike:    return trace::Category::Mem;
      case FaultClass::BitFlipL1:
      case FaultClass::BitFlipLlc:
      case FaultClass::BitFlipDir:
      case FaultClass::BitFlipDram:  return trace::Category::Mem;
      default:                       return trace::Category::Maple;
    }
}

const char *
instantName(FaultClass c)
{
    switch (c) {
      case FaultClass::NocLinkStall: return "fault:noc_link_stall";
      case FaultClass::DramSpike:    return "fault:dram_spike";
      case FaultClass::TlbStorm:     return "fault:tlb_storm";
      case FaultClass::HardSpad:     return "fault:hard_spad";
      case FaultClass::HardTlb:      return "fault:hard_tlb";
      case FaultClass::CohMsgDelay:  return "fault:coh_msg_delay";
      case FaultClass::CohMsgDrop:   return "fault:coh_msg_drop";
      case FaultClass::BitFlipL1:    return "fault:bitflip_l1";
      case FaultClass::BitFlipLlc:   return "fault:bitflip_llc";
      case FaultClass::BitFlipDir:   return "fault:bitflip_dir";
      case FaultClass::BitFlipDram:  return "fault:bitflip_dram";
      default:                       return "fault:mmio_delay";
    }
}

}  // namespace

sim::Cycle
FaultInjector::inject(FaultClass c)
{
    sim::Cycle extra = plan_.draw(c);
    if (extra == 0)
        return 0;
    ++counts_[static_cast<std::size_t>(c)];
    // Hard faults carry no latency magnitude; log them with extra 0.
    event_log_[event_count_ % kEventLog] = {eq_.now(), c,
                                            isHardFault(c) ? 0 : extra};
    ++event_count_;
    if (trace::TraceManager *t = trace::active(eq_)) {
        if (tr_track_ == trace::TraceManager::kNone)
            tr_track_ = t->track("faults");
        t->instant(tr_track_, instantName(c), categoryOf(c));
    }
    return extra;
}

std::vector<FaultEvent>
FaultInjector::recentFaults() const
{
    std::vector<FaultEvent> out;
    const std::uint64_t n = std::min<std::uint64_t>(event_count_, kEventLog);
    out.reserve(n);
    for (std::uint64_t i = event_count_ - n; i < event_count_; ++i)
        out.push_back(event_log_[i % kEventLog]);
    return out;
}

void
FaultInjector::maskOwner(const std::string &owner)
{
    masked_owners_.push_back(&owner);
}

void
FaultInjector::unmaskOwner(const std::string &owner)
{
    // Erase one occurrence: masks nest (RAII guard + permanent degradation).
    auto it = std::find(masked_owners_.begin(), masked_owners_.end(), &owner);
    if (it != masked_owners_.end())
        masked_owners_.erase(it);
}

bool
FaultInjector::ownerMasked(const std::string *owner) const
{
    return owner && std::find(masked_owners_.begin(), masked_owners_.end(),
                              owner) != masked_owners_.end();
}

unsigned
FaultInjector::unmaskedParkedWaiters() const
{
    if (masked_owners_.empty())
        return parked_count_;
    unsigned n = 0;
    for (const ParkNode *p = parked_head_; p; p = p->next)
        if (!ownerMasked(p->owner))
            ++n;
    return n;
}

sim::Cycle
FaultInjector::oldestUnmaskedParkCycle() const
{
    if (masked_owners_.empty())
        return oldestParkCycle();
    sim::Cycle oldest = sim::kCycleMax;
    for (const ParkNode *n = parked_head_; n; n = n->next)
        if (!ownerMasked(n->owner))
            oldest = std::min(oldest, n->since);
    return oldest;
}

void
FaultInjector::chargeCycles(FaultClass c, sim::Cycle cycles)
{
    if (cycles == 0)
        return;
    cycles_[static_cast<std::size_t>(c)] += cycles;
    if (trace::TraceManager *t = trace::active(eq_))
        t->attributeStall(stallCauseOf(c), cycles);
}

sim::Cycle
FaultInjector::oldestParkCycle() const
{
    sim::Cycle oldest = sim::kCycleMax;
    for (const ParkNode *n = parked_head_; n; n = n->next)
        oldest = std::min(oldest, n->since);
    return oldest;
}

std::string
FaultInjector::livenessReport() const
{
    std::ostringstream os;
    const sim::Cycle now = eq_.now();
    os << "parked waiters (" << parked_count_ << "):\n";
    if (!parked_head_)
        os << "  (none)\n";
    for (const ParkNode *n = parked_head_; n; n = n->next) {
        os << "  - " << (n->owner ? *n->owner : std::string("?")) << ":"
           << (n->site ? n->site : "?");
        if (n->index != ParkGuard::kNoIndex)
            os << " #" << n->index;
        os << " parked since cycle " << n->since << " (" << (now - n->since)
           << " cycles ago)\n";
    }
    if (!diagnostics_.empty()) {
        os << "component state:\n";
        for (const Diagnostic &d : diagnostics_)
            os << "  " << d.name << ": " << d.fn() << "\n";
    }
    bool any_injected = false;
    for (std::uint64_t n : counts_)
        any_injected |= n != 0;
    if (any_injected) {
        os << "injected faults:\n";
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            if (counts_[i] == 0)
                continue;
            os << "  " << faultClassName(static_cast<FaultClass>(i)) << ": "
               << counts_[i] << " (" << cycles_[i] << " cycles)\n";
        }
        // The tail of the injection event log makes hang reports
        // self-contained: the last faults before the stall are usually the
        // trigger, and reproducing them needs only (seed, class, cycle).
        os << "recent injected faults (last "
           << std::min<std::uint64_t>(event_count_, kEventLog) << " of "
           << event_count_ << "):\n";
        for (const FaultEvent &e : recentFaults()) {
            os << "  - cycle " << e.cycle << ": " << faultClassName(e.cls);
            if (e.extra > 0)
                os << " (+" << e.extra << " cycles)";
            os << "\n";
        }
    }
    if (trace::TraceManager *t = eq_.tracer())
        os << t->stallReport();
    return os.str();
}

namespace {

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 0x100000001b3ull;
    }
}

void
fnvMixRate(std::uint64_t &h, const FaultRate &r)
{
    fnvMix(h, std::bit_cast<std::uint64_t>(r.prob));
    fnvMix(h, r.max_extra);
}

}  // namespace

std::uint64_t
FaultInjector::configFingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    fnvMix(h, cfg_.seed);
    fnvMix(h, cfg_.class_mask);
    fnvMixRate(h, cfg_.noc);
    fnvMixRate(h, cfg_.dram);
    fnvMixRate(h, cfg_.tlb);
    fnvMixRate(h, cfg_.mmio);
    fnvMixRate(h, cfg_.hard_spad);
    fnvMixRate(h, cfg_.hard_tlb);
    // Mixed only when enabled so a coherence-free config fingerprints
    // identically to builds that predate these classes.
    if (cfg_.coh_delay.prob > 0)
        fnvMixRate(h, cfg_.coh_delay);
    if (cfg_.coh_drop.prob > 0)
        fnvMixRate(h, cfg_.coh_drop);
    if (cfg_.bitflip_l1.prob > 0)
        fnvMixRate(h, cfg_.bitflip_l1);
    if (cfg_.bitflip_llc.prob > 0)
        fnvMixRate(h, cfg_.bitflip_llc);
    if (cfg_.bitflip_dir.prob > 0)
        fnvMixRate(h, cfg_.bitflip_dir);
    if (cfg_.bitflip_dram.prob > 0)
        fnvMixRate(h, cfg_.bitflip_dram);
    return h;
}

void
FaultInjector::saveState(ckpt::Sink &out) const
{
    MAPLE_ASSERT(parked_count_ == 0 && masked_owners_.empty(),
                 "snapshot with parked waiters or masked owners");
    out.u64(configFingerprint());
    plan_.saveState(out);
    for (std::uint64_t c : counts_)
        out.u64(c);
    for (std::uint64_t c : cycles_)
        out.u64(c);
    for (const FaultEvent &e : event_log_) {
        out.u64(e.cycle);
        out.u32(static_cast<std::uint32_t>(e.cls));
        out.u64(e.extra);
    }
    out.u64(event_count_);
    for (std::uint64_t w : recovery_rng_.state())
        out.u64(w);
    out.u32(tr_track_);  // cached trace-track id (tracer table round-trips)
}

void
FaultInjector::loadState(ckpt::Source &in)
{
    MAPLE_ASSERT(parked_count_ == 0 && masked_owners_.empty(),
                 "restore with parked waiters or masked owners");
    const bool same_plan = in.u64() == configFingerprint();
    // Always consume the section; apply it only when the restoring injector
    // runs the identical fault configuration. A campaign variant with a
    // different plan keeps its freshly-seeded streams.
    FaultPlan plan(cfg_);
    plan.loadState(in);
    decltype(counts_) counts{};
    decltype(cycles_) cycles{};
    for (std::uint64_t &c : counts)
        c = in.u64();
    for (std::uint64_t &c : cycles)
        c = in.u64();
    decltype(event_log_) log{};
    for (FaultEvent &e : log) {
        e.cycle = in.u64();
        e.cls = static_cast<FaultClass>(in.u32());
        e.extra = in.u64();
    }
    std::uint64_t event_count = in.u64();
    sim::Rng::State rec{};
    for (std::uint64_t &w : rec)
        w = in.u64();
    // The trace-track handle tracks the tracer's table, which round-trips
    // independently of the fault plan: restore it unconditionally.
    tr_track_ = in.u32();
    if (!same_plan)
        return;
    plan_ = plan;
    counts_ = counts;
    cycles_ = cycles;
    event_log_ = log;
    event_count_ = event_count;
    recovery_rng_.setState(rec);
}

}  // namespace maple::fault
