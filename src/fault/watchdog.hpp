/**
 * @file
 * Liveness watchdog: runs the event queue with deadlock detection instead
 * of hanging or silently quiescing with parked coroutines.
 *
 * The watchdog never schedules events. It drives EventQueue::run() in
 * bounded chunks — run(t1), run(t2), ... — which executes exactly the same
 * events at exactly the same cycles as one run(max) call (an early stop
 * only advances now() to the bound), so a guarded run is bit-identical to
 * an unguarded one. At each chunk boundary it consults the FaultInjector's
 * park registry (fault/fault.hpp):
 *
 *  - Stall bound: if the oldest parked waiter has been parked longer than
 *    `stall_bound` cycles, the run is declared dead even though events may
 *    still be churning (e.g. a polling loop), and a sim::DeadlockError
 *    carrying the structured diagnostic is thrown. Detection latency is
 *    bounded by stall_bound + check_interval.
 *
 *  - Drain with parked waiters: when the queue quiesces while coroutines
 *    are still parked on futures/queues, nothing can ever wake them — the
 *    discrete-event definition of deadlock. Callers (soc::Soc::run) use
 *    failDeadlock() to turn this into the same typed error at drain time,
 *    i.e. within zero idle cycles.
 */
#pragma once

#include <string>

#include "sim/error.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace maple::fault {

struct WatchdogConfig {
    bool enabled = true;
    sim::Cycle check_interval = 1u << 16;   ///< chunk length between checks
    sim::Cycle stall_bound = 10'000'000;    ///< oldest-park age => deadlock

    /**
     * Overlay environment knobs: MAPLE_WATCHDOG=0 disables, and
     * MAPLE_WATCHDOG_STALL_BOUND=<cycles> / MAPLE_WATCHDOG_INTERVAL=<cycles>
     * tune the detection window.
     */
    void mergeEnv();
};

class Watchdog {
  public:
    explicit Watchdog(sim::EventQueue &eq, WatchdogConfig cfg = {})
        : eq_(eq), cfg_(cfg)
    {
    }

    /**
     * Run the queue until it drains or @p max_cycles, checking liveness at
     * every chunk boundary. Event order and timing are identical to a bare
     * eq.run(max_cycles). @return true when the queue drained.
     * @throws sim::DeadlockError when a waiter starves past the stall bound.
     */
    bool run(sim::Cycle max_cycles = sim::kCycleMax);

    /**
     * The full liveness diagnostic for @p eq: parked waiters, registered
     * component state, injected-fault summary, stall attribution, plus
     * event-queue statistics. Usable without a FaultInjector (degrades to
     * the queue statistics).
     */
    static std::string diagnose(const sim::EventQueue &eq);

    /** Throw sim::DeadlockError with @p summary and the full diagnostic. */
    [[noreturn]] static void failDeadlock(const sim::EventQueue &eq,
                                          const std::string &summary);

    /**
     * The chunk-boundary stall check on its own: throws sim::DeadlockError
     * when @p eq's oldest unmasked parked waiter is older than
     * @p cfg.stall_bound. Shared between run() and the sharded engine's
     * quantum-boundary hook (soc::Soc / soc::SocGrid), so both paths declare
     * livelock by the same rule.
     */
    static void checkStall(const sim::EventQueue &eq,
                           const WatchdogConfig &cfg);

  private:
    sim::EventQueue &eq_;
    WatchdogConfig cfg_;
};

}  // namespace maple::fault
