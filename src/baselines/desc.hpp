/**
 * @file
 * DeSC-style decoupled supply-compute baseline (Ham et al., MICRO'15).
 *
 * DeSC pairs a Supply (Access) core and a Compute (Execute) core through
 * *architectural* queues with register-file-like access latency (~2 cycles),
 * plus a "supply buffer" that lets terminal loads -- loads whose values are
 * used only by Compute -- commit early and fill their queue slot out of
 * order. The two defining constraints this model keeps, because they drive
 * the paper's Figure 12 shapes, are:
 *
 *  1. The Compute core has no visibility into the memory hierarchy: *all* of
 *     its inputs arrive through the queue and all of its stores are shipped
 *     back to Supply through a store queue (loss of runahead for BFS).
 *  2. The queue hardware is per core *pair*: unlike MAPLE it cannot be
 *     shared or rebalanced, but its access latency is much lower than a
 *     NoC round trip.
 *
 * Memory-level parallelism of the supply buffer is bounded by its size, and
 * fetches go through the Supply core's own L1 path (DeSC caches normally).
 */
#pragma once

#include <optional>
#include <utility>

#include "core/maple_queue.hpp"
#include "cpu/core.hpp"
#include "mem/cache.hpp"
#include "sim/coro.hpp"
#include "sim/stats.hpp"

namespace maple::baselines {

struct DescParams {
    unsigned queue_entries = 128;   ///< communication queue depth
    unsigned supply_buffer = 32;    ///< outstanding early-committed loads
    sim::Cycle access_latency = 2;  ///< architectural queue access cost
};

class DescQueue {
  public:
    /**
     * @param fetch_port memory path of the supply buffer's early-committed
     *        loads. DeSC's lockup-free supply buffer provides MLP beyond the
     *        core's (near-blocking) L1, so it gets its own LLC-reaching port.
     */
    DescQueue(sim::EventQueue &eq, mem::PhysicalMemory &pm,
              mem::Port &fetch_port, DescParams params = {})
        : eq_(eq), pm_(pm), fetch_port_(fetch_port), params_(params)
    {
        comm_.configure(params_.queue_entries, 8);
        // Two slots per store (addr, value), sized to absorb one store per
        // in-flight communication-queue entry: Compute can never have more
        // pending stores than values it has consumed, so with this bound the
        // Supply->Compute->store loop cannot form a circular wait.
        store_q_.configure(params_.queue_entries * 4, 8);
    }

    /// @name Supply (Access) side
    /// @{

    /** Enqueue an already-computed value for Compute. */
    sim::Task<void>
    produceValue(cpu::Core &core, std::uint64_t value)
    {
        co_await core.compute(1);
        co_await sim::delay(eq_, params_.access_latency);
        co_await waitSpace(comm_);
        comm_.fillSlot(comm_.reserveSlot(), value);
    }

    /**
     * Terminal load: reserve the queue slot in program order and commit the
     * load early -- the Supply core does NOT wait for the data. The supply
     * buffer bounds how many such loads are in flight.
     */
    sim::Task<void>
    produceLoad(cpu::Core &core, sim::Addr vaddr, unsigned size = 8)
    {
        co_await core.compute(1);
        co_await sim::delay(eq_, params_.access_latency);
        co_await waitSpace(comm_);
        unsigned slot = comm_.reserveSlot();

        while (inflight_ >= params_.supply_buffer) {
            sim::Signal wait = buffer_wait_;
            co_await wait;
        }
        ++inflight_;

        mem::Translation tr = co_await core.mmu().translate(vaddr, false);
        MAPLE_ASSERT(!tr.fault, "DeSC terminal load faulted");
        sim::spawnDetached(eq_, fetch(slot, core.tile(), tr.paddr, size));
    }

    /** Drain one Compute-side store (Supply performs the actual store). */
    sim::Task<bool>
    drainOneStore(cpu::Core &core)
    {
        auto st = co_await takeStore(core);
        if (!st)
            co_return false;
        co_await core.store(st->first, st->second, 4);
        co_return true;
    }

    /**
     * Pop one Compute-side store *without* performing it, so the Supply
     * slice can attach extra semantics (e.g. BFS frontier appends).
     */
    sim::Task<std::optional<std::pair<sim::Addr, std::uint64_t>>>
    takeStore(cpu::Core &core)
    {
        if (!store_q_.headValid())
            co_return std::nullopt;
        co_await core.compute(1);
        co_await sim::delay(eq_, params_.access_latency);
        std::uint64_t addr = store_q_.pop();
        co_await waitData(store_q_);
        std::uint64_t value = store_q_.pop();
        co_return std::make_pair(sim::Addr(addr), value);
    }

    /// @}
    /// @name Compute (Execute) side
    /// @{

    /** Pop the next value (blocks until Supply delivers it). */
    sim::Task<std::uint64_t>
    consume(cpu::Core &core)
    {
        co_await core.compute(1);
        co_await sim::delay(eq_, params_.access_latency);
        co_await waitData(comm_);
        co_return comm_.pop();
    }

    /** Ship a store (addr, value) back to the Supply core. */
    sim::Task<void>
    produceStore(cpu::Core &core, sim::Addr vaddr, std::uint64_t value)
    {
        co_await core.compute(1);
        co_await sim::delay(eq_, params_.access_latency);
        co_await waitSpace(store_q_, 2);
        store_q_.fillSlot(store_q_.reserveSlot(), vaddr);
        store_q_.fillSlot(store_q_.reserveSlot(), value);
    }

    /// @}

    bool storeQueueEmpty() const { return store_q_.empty(); }

  private:
    sim::Task<void>
    waitSpace(maple::core::MapleQueue &q, unsigned need = 1)
    {
        while (q.capacity() - q.occupancy() < need) {
            sim::Signal wait = q.spaceSignal();
            co_await wait;
        }
    }

    sim::Task<void>
    waitData(maple::core::MapleQueue &q)
    {
        while (!q.headValid()) {
            sim::Signal wait = q.dataSignal();
            co_await wait;
        }
    }

    sim::Task<void>
    fetch(unsigned slot, sim::TileId tile, sim::Addr paddr, unsigned size)
    {
        // Early-committed terminal loads are core demand traffic issued on
        // the Supply core's behalf.
        co_await fetch_port_.request(mem::MemRequest::make(
            eq_, mem::RequesterClass::Core, tile, paddr, size,
            mem::AccessKind::Read));
        std::uint64_t v = 0;
        pm_.read(paddr, &v, size);
        comm_.fillSlot(slot, v);
        --inflight_;
        sim::Signal wake = std::exchange(buffer_wait_, sim::Signal{});
        wake.set(sim::Unit{});
    }

    sim::EventQueue &eq_;
    mem::PhysicalMemory &pm_;
    mem::Port &fetch_port_;
    DescParams params_;
    maple::core::MapleQueue comm_;     ///< Supply -> Compute data queue
    maple::core::MapleQueue store_q_;  ///< Compute -> Supply store queue
    unsigned inflight_ = 0;
    sim::Signal buffer_wait_;
};

}  // namespace maple::baselines
