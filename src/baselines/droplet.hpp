/**
 * @file
 * DROPLET-style data-aware indirect hardware prefetcher baseline (Basak et
 * al., HPCA'19: memory-hierarchy optimization for graph workloads).
 *
 * DROPLET sits on the memory side, in front of the shared LLC. It is *data
 * aware*: a demand read of a registered index array (B) triggers a stream of
 * upcoming B lines, and -- once each B line's data has actually returned
 * from DRAM -- decodes the indices and fetches the corresponding lines of
 * the registered data array (A), i.e. the A[B[i]] pattern. Fetched lines
 * land in a small memory-side prefetch buffer (not the LLC), so a later
 * demand miss that hits the buffer is served at memory-controller distance
 * instead of full DRAM latency.
 *
 * The model keeps DROPLET's three structural costs, which are exactly what
 * separates it from MAPLE in Figure 12:
 *  1. chained timeliness: A targets can only be decoded one memory latency
 *     after their B line was prefetched;
 *  2. a small buffer: bursts (power-law hubs) evict entries before use;
 *  3. per-array physical-region registration: moving bases (SDHP's per-row
 *     dense slices) cannot be expressed.
 */
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "mem/cache.hpp"
#include "mem/physical_memory.hpp"
#include "soc/soc.hpp"

namespace maple::baselines {

class DropletPrefetcher : public mem::Port {
  public:
    struct Binding {
        sim::Addr b_base_pa, b_end_pa;  ///< physical range of the index array
        unsigned b_elem_bytes;
        sim::Addr a_base_pa;            ///< physical base of the data array
        unsigned a_elem_bytes;
    };

    struct Params {
        unsigned buffer_lines = 64;     ///< memory-side prefetch buffer size
        unsigned stream_depth = 2;      ///< B lines fetched ahead per trigger
        sim::Cycle buffer_hit = 30;     ///< service time of a buffer hit
    };

    explicit DropletPrefetcher(soc::Soc &soc) : DropletPrefetcher(soc, Params{}) {}

    DropletPrefetcher(soc::Soc &soc, Params params) : soc_(soc), params_(params)
    {
        soc.llcFront().setInterposer(this);
    }

    ~DropletPrefetcher() override { soc_.llcFront().setInterposer(nullptr); }

    /**
     * Register an indirection pair. Physical ranges: workload regions are
     * allocated eagerly by the bump allocator, hence physically contiguous;
     * the virtual bounds are translated once, mirroring the driver-assisted
     * region registration of the original proposal.
     */
    void
    bind(os::Process &proc, sim::Addr b_vbase, size_t b_elems,
         unsigned b_elem_bytes, sim::Addr a_vbase, unsigned a_elem_bytes)
    {
        auto b_pa = proc.pageTable().translate(b_vbase, mem::Perms{});
        auto a_pa = proc.pageTable().translate(a_vbase, mem::Perms{});
        MAPLE_ASSERT(b_pa && a_pa, "DROPLET binding of unmapped arrays");
        bindings_.push_back(Binding{*b_pa, *b_pa + b_elems * b_elem_bytes,
                                    b_elem_bytes, *a_pa, a_elem_bytes});
    }

    /** All LLC-bound traffic flows through here (front-end interposer). */
    sim::Task<void>
    request(mem::MemRequest req) override
    {
        sim::Addr line = mem::lineBase(req.paddr);
        if (req.kind == mem::AccessKind::Read) {
            if (auto it = buffer_.find(line); it != buffer_.end()) {
                // Demand hit in the memory-side buffer: wait for the fill if
                // it is still in flight, then pay buffer access time.
                ++hits_;
                sim::Signal ready = it->second.ready;
                co_await ready;
                co_await sim::delay(soc_.eq(), params_.buffer_hit);
                co_return;
            }
        }
        co_await soc_.llc().request(req);
        // Data awareness: a completed demand read of an index line triggers
        // decoding (its data is now on-chip) plus a lookahead stream.
        if (req.kind == mem::AccessKind::Read)
            trigger(line);
    }

    std::uint64_t prefetchesIssued() const { return prefetches_; }
    std::uint64_t bufferHits() const { return hits_; }

  private:
    struct Entry {
        sim::Signal ready;
        std::list<sim::Addr>::iterator lru_it;
    };

    void
    trigger(sim::Addr line)
    {
        for (const Binding &b : bindings_) {
            if (line < b.b_base_pa || line >= b.b_end_pa)
                continue;
            prefetchTargetsOf(b, line);
            for (unsigned d = 1; d <= params_.stream_depth; ++d) {
                sim::Addr bl = line + sim::Addr(d) * mem::kLineSize;
                if (bl >= b.b_end_pa)
                    break;
                sim::spawnDetached(soc_.eq(), chainPrefetch(b, bl));
            }
        }
    }

    /** Fetch one B line (into the buffer), then prefetch its A targets. */
    sim::Task<void>
    chainPrefetch(Binding b, sim::Addr bl)
    {
        if (!insertAndFetch(bl))
            co_return;  // already buffered / in flight
        // The decode can only happen after the line's data arrived.
        auto it = buffer_.find(bl);
        if (it == buffer_.end())
            co_return;  // evicted before the fetch even started
        sim::Signal ready = it->second.ready;
        co_await ready;
        prefetchTargetsOf(b, bl);
    }

    /** Decode one resident index line of B; fetch the A lines it names. */
    void
    prefetchTargetsOf(const Binding &b, sim::Addr line)
    {
        sim::Addr lo = std::max(line, b.b_base_pa);
        sim::Addr hi = std::min(line + mem::kLineSize, b.b_end_pa);
        for (sim::Addr p = lo; p + b.b_elem_bytes <= hi; p += b.b_elem_bytes) {
            std::uint64_t idx = 0;
            soc_.physMem().read(p, &idx, b.b_elem_bytes);
            insertAndFetch(mem::lineBase(b.a_base_pa + idx * b.a_elem_bytes));
        }
    }

    /**
     * Allocate a buffer entry for @p line (LRU evict) and start its DRAM
     * fetch. @return false when the line is already present/in flight.
     */
    bool
    insertAndFetch(sim::Addr line)
    {
        if (buffer_.count(line))
            return false;
        while (buffer_.size() >= params_.buffer_lines) {
            sim::Addr victim = lru_.back();
            lru_.pop_back();
            buffer_.erase(victim);
            ++evictions_;
        }
        lru_.push_front(line);
        Entry e;
        e.lru_it = lru_.begin();
        buffer_.emplace(line, e);
        ++prefetches_;
        auto fetch = [](DropletPrefetcher *self, sim::Addr l,
                        sim::Signal done) -> sim::Task<void> {
            // Buffer fills are the prefetcher's own traffic: Prefetch class,
            // originating at the memory tile DROPLET sits on.
            co_await self->soc_.dram().request(mem::MemRequest::make(
                self->soc_.eq(), mem::RequesterClass::Prefetch,
                self->soc_.memTile(), l, mem::kLineSize,
                mem::AccessKind::Prefetch));
            done.set(sim::Unit{});
        };
        sim::spawnDetached(soc_.eq(), fetch(this, line, buffer_.at(line).ready));
        return true;
    }

    soc::Soc &soc_;
    Params params_;
    std::vector<Binding> bindings_;
    std::unordered_map<sim::Addr, Entry> buffer_;
    std::list<sim::Addr> lru_;
    std::uint64_t prefetches_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace maple::baselines
