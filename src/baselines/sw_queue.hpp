/**
 * @file
 * Software-only decoupling baseline: a single-producer/single-consumer ring
 * buffer in ordinary shared memory (the "shared-memory implementation of
 * decoupling" of Figure 8).
 *
 * Head/tail and payload live in cacheable memory that ping-pongs between the
 * producing and consuming core; the simulator charges those accesses an LLC
 * round trip (Core::loadShared/storeShared), which is the steady-state cost
 * of an invalidation-based coherence protocol under this sharing pattern.
 * On top of that, every produce/consume costs real ring-management
 * instructions -- exactly the software overheads MAPLE removes.
 */
#pragma once

#include "cpu/core.hpp"
#include "os/kernel.hpp"
#include "sim/coro.hpp"

namespace maple::baselines {

class SwQueue {
  public:
    SwQueue(os::Process &proc, unsigned capacity)
        : capacity_(capacity),
          buf_(proc.alloc(capacity * 8ull, "swq.buf")),
          head_addr_(proc.alloc(64, "swq.head")),
          tail_addr_(proc.alloc(64, "swq.tail"))
    {
        MAPLE_ASSERT(capacity > 0);
        proc.writeScalar<std::uint64_t>(head_addr_, 0);
        proc.writeScalar<std::uint64_t>(tail_addr_, 0);
    }

    /** Producer side (only one thread may produce). */
    sim::Task<void>
    produce(cpu::Core &core, std::uint64_t value)
    {
        // Ring-management arithmetic: index masking, occupancy check.
        co_await core.compute(3);
        // Wait for space: re-read the consumer's head until the ring drains.
        while (tail_shadow_ - cached_head_ >= capacity_) {
            cached_head_ = co_await core.loadShared(head_addr_);
            if (tail_shadow_ - cached_head_ >= capacity_)
                co_await core.compute(2);  // branch + loop overhead
        }
        co_await core.storeShared(buf_ + (tail_shadow_ % capacity_) * 8, value);
        // Release fence: the payload must be globally visible before the
        // tail publication, or the consumer can read a stale slot.
        co_await core.storeFence();
        ++tail_shadow_;
        co_await core.storeShared(tail_addr_, tail_shadow_);
    }

    /** Consumer side (only one thread may consume). */
    sim::Task<std::uint64_t>
    consume(cpu::Core &core)
    {
        co_await core.compute(3);
        while (cached_tail_ <= head_shadow_) {
            cached_tail_ = co_await core.loadShared(tail_addr_);
            if (cached_tail_ <= head_shadow_)
                co_await core.compute(2);
        }
        std::uint64_t v =
            co_await core.loadShared(buf_ + (head_shadow_ % capacity_) * 8);
        ++head_shadow_;
        co_await core.storeShared(head_addr_, head_shadow_);
        co_return v;
    }

  private:
    unsigned capacity_;
    sim::Addr buf_;
    sim::Addr head_addr_;
    sim::Addr tail_addr_;
    // Each side's private (register-resident) view of its own index.
    std::uint64_t tail_shadow_ = 0;
    std::uint64_t cached_head_ = 0;
    std::uint64_t head_shadow_ = 0;
    std::uint64_t cached_tail_ = 0;
};

}  // namespace maple::baselines
