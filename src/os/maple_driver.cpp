#include "os/maple_driver.hpp"

#include <algorithm>
#include <cstdlib>

#include "fault/fault.hpp"
#include "trace/trace.hpp"

namespace maple::os {

namespace {

/**
 * Cycles the driver lets the interconnect settle after the device drained,
 * while still quiesced. A produce store issued just before the quiesce can
 * still be in flight in the NoC; it must land (and drop with
 * MapleStatus::Quiesced) before the reset + replay, or the replayed entries
 * would interleave out of order with it.
 */
constexpr sim::Cycle kSettleCycles = 512;

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 0);
}

}  // namespace

void
RecoveryConfig::mergeEnv()
{
    enabled = envU64("MAPLE_FAULT_RECOVERY", enabled ? 1 : 0) != 0;
    retry_budget = static_cast<unsigned>(
        envU64("MAPLE_FAULT_RECOVERY_RETRIES", retry_budget));
    recovery_budget = static_cast<unsigned>(
        envU64("MAPLE_FAULT_RECOVERY_BUDGET", recovery_budget));
    backoff_base = envU64("MAPLE_FAULT_RECOVERY_BACKOFF", backoff_base);
    op_timeout = envU64("MAPLE_FAULT_RECOVERY_TIMEOUT", op_timeout);
}

MapleDriver::MapleDriver(os::Process &proc, core::Maple &device,
                         sim::Addr mmio_base, RecoveryConfig cfg)
    : eq_(device.eq()), proc_(proc), device_(device), mmio_base_(mmio_base),
      cfg_(cfg), stats_(device.params().name + ".driver"),
      queues_(device.params().max_queues)
{
    // The simulation analogue of requesting the device's error interrupt:
    // the driver learns of latched hard faults even before one of its ops
    // observes a poisoned/timed-out status.
    device_.setErrorCallback(
        [this] { stats_.counter("error_notifications").inc(); });
}

sim::Task<bool>
MapleDriver::produce(cpu::Core &core, unsigned q, std::uint64_t data)
{
    co_return co_await produceOp(core, q, JournalEntry::Kind::Data, data);
}

sim::Task<bool>
MapleDriver::producePtr(cpu::Core &core, unsigned q, sim::Addr vaddr)
{
    co_return co_await produceOp(core, q, JournalEntry::Kind::Ptr, vaddr);
}

sim::Task<bool>
MapleDriver::produceOp(cpu::Core &core, unsigned q, JournalEntry::Kind kind,
                       std::uint64_t payload)
{
    QueueState &qs = queues_[q];
    const core::StoreOp sop = kind == JournalEntry::Kind::Data
                                  ? core::StoreOp::ProduceData
                                  : core::StoreOp::ProducePtr;
    bool journaled = false;
    unsigned attempt = 0;
    for (;;) {
        if (qs.degraded) {
            // degrade() replayed the journal into the software ring and
            // cleared it (including our unaccepted tail): deliver there.
            co_return co_await produceDegraded(core, qs, kind, payload, q);
        }
        co_await waitRecoveryDone(qs);
        if (qs.degraded)
            co_return co_await produceDegraded(core, qs, kind, payload, q);
        co_await ensureTimeout(core, q);

        if (!journaled) {
            qs.journal.push_back(JournalEntry{kind, payload, false});
            journaled = true;
        }
        const unsigned epoch = qs.epoch;
        co_await core.store(storeAddr(q, sop), payload);
        co_await core.storeFence();
        std::uint64_t st =
            co_await core.load(loadAddr(q, core::LoadOp::ProduceStatus));

        if (qs.degraded) {
            // A whole recovery ran and degraded the queue while our status
            // read was in flight; the journal (with our tail) was consumed
            // by the degradation replay only if accepted — an unaccepted
            // tail is dropped, so deliver through the ring.
            co_return co_await produceDegraded(core, qs, kind, payload, q);
        }
        if (qs.epoch != epoch) {
            // A recovery completed between our store and the status read;
            // ProduceStatus no longer refers to our op. AcceptCount breaks
            // the tie: the replay parked it exactly at accept_base, so a
            // higher value means the device took our (post-reset) produce.
            std::uint64_t count =
                co_await core.load(loadAddr(q, core::LoadOp::AcceptCount));
            if (count > qs.accept_base) {
                if (!qs.journal.empty())
                    qs.journal.back().accepted = true;
                co_return true;
            }
            continue;  // dropped during the recovery window: retry
        }

        switch (static_cast<core::MapleStatus>(st)) {
        case core::MapleStatus::Ok:
            // Guard: a fast consumer may have already consumed + retired it.
            if (!qs.journal.empty())
                qs.journal.back().accepted = true;
            co_return true;
        case core::MapleStatus::Quiesced:
        case core::MapleStatus::Aborted:
            // Recovery in flight; the loop top parks until it completes.
            continue;
        default:
            // TimedOut: past the retry budget, check for a latched error
            // (a hard fault can wedge the queue full of poisoned entries).
            stats_.counter("produce_retries").inc();
            if (++attempt > cfg_.retry_budget) {
                std::uint64_t err =
                    co_await core.load(loadAddr(q, core::LoadOp::ErrStatus));
                if (err & 1) {
                    co_await recover(core, q);
                    attempt = 0;
                    continue;
                }
            }
            co_await backoff(attempt);
            continue;
        }
    }
}

sim::Task<bool>
MapleDriver::produceDegraded(cpu::Core &core, QueueState &qs,
                             JournalEntry::Kind kind, std::uint64_t payload,
                             unsigned q)
{
    // The software ring carries values, not pointers: the produce side does
    // the dereference MAPLE's fetch pipeline would have done.
    std::uint64_t v = payload;
    if (kind == JournalEntry::Kind::Ptr)
        v = co_await core.load(payload, device_.queue(q).entryBytes());
    co_await qs.swq->produce(core, v);
    co_return true;
}

sim::Task<std::uint64_t>
MapleDriver::consume(cpu::Core &core, unsigned q)
{
    QueueState &qs = queues_[q];
    unsigned attempt = 0;
    for (;;) {
        if (qs.degraded)
            co_return co_await qs.swq->consume(core);
        co_await waitRecoveryDone(qs);
        if (qs.degraded)
            co_return co_await qs.swq->consume(core);
        co_await ensureTimeout(core, q);

        std::uint64_t v =
            co_await core.load(loadAddr(q, core::LoadOp::Consume));
        std::uint64_t st =
            co_await core.load(loadAddr(q, core::LoadOp::ConsumeStatus));

        switch (static_cast<core::MapleStatus>(st)) {
        case core::MapleStatus::Ok:
            // The oldest journaled produce has now been delivered. Trusting
            // Ok here is sound across concurrent recoveries because
            // DeviceReset overwrites ConsumeStatus with Aborted: if a
            // recovery ran between the Consume load and this status read,
            // we see Aborted (discard v, retry — the replay regenerates the
            // entry), never a stale pre-reset Ok that would pop the journal
            // and let the replayed duplicate be delivered again.
            if (!qs.journal.empty())
                qs.journal.pop_front();
            co_return v;
        case core::MapleStatus::Poisoned:
            // Do NOT retire the journal front: the poisoned entry's value
            // was lost in the device and the replay will regenerate it.
            stats_.counter("poisoned_consumes").inc();
            co_await recover(core, q);
            continue;
        case core::MapleStatus::Quiesced:
        case core::MapleStatus::Aborted:
            continue;  // recovery in flight; loop top parks until done
        default:
            // TimedOut: an empty queue is not an error (the producer may
            // just be slow) unless the device has an error latched.
            stats_.counter("consume_retries").inc();
            if (++attempt > cfg_.retry_budget) {
                std::uint64_t err =
                    co_await core.load(loadAddr(q, core::LoadOp::ErrStatus));
                if (err & 1) {
                    co_await recover(core, q);
                    attempt = 0;
                    continue;
                }
            }
            co_await backoff(attempt);
            continue;
        }
    }
}

sim::Task<void>
MapleDriver::recover(cpu::Core &core, unsigned q)
{
    QueueState &qs = queues_[q];
    if (qs.recovering) {
        // Another op on this queue is already driving the state machine.
        co_await waitRecoveryDone(qs);
        co_return;
    }
    qs.recovering = true;
    const sim::Cycle t0 = eq_.now();
    ++qs.recovery_count;
    stats_.counter("recoveries").inc();

    // While deliberately quiesced, the device's parked waiters (and our own
    // ops parked on recovery_wait) must not look like a livelock.
    fault::OwnerMaskGuard watchdog_mask(eq_, device_.params().name);

    trace::TraceManager *tm = trace::active(eq_);
    if (tm && tr_track_ == trace::TraceManager::kNone)
        tr_track_ = tm->track(device_.params().name + ".recovery");
    if (tm)
        tm->instant(tr_track_, "recover_begin", trace::Category::Os);

    // 1. Quiesce: produce/consume-class ops drop from here on; the config
    //    pipeline (which everything below uses) stays live.
    co_await core.store(storeAddr(q, core::StoreOp::Quiesce), 1);
    co_await core.storeFence();

    //    Re-arm the op timeout through the still-live config pipeline.
    //    ensureTimeout armed it once, but an application INIT since then
    //    zeroes the register behind the latch — and a produce parked with
    //    bound 0 on this (wedged) queue would hold its in-flight count up
    //    forever, deadlocking the drain below. The store also wakes parked
    //    waiters so the new bound takes effect on them.
    co_await core.store(storeAddr(q, core::StoreOp::QueueTimeout),
                        cfg_.op_timeout);
    co_await core.storeFence();
    qs.timeout_set = true;

    // 2. Drain: wait until no produce is in flight on this queue (ErrStatus
    //    reports the per-queue count, so other queues' traffic — including a
    //    concurrent recovery — cannot stall or unstick this one).
    for (;;) {
        std::uint64_t err =
            co_await core.load(loadAddr(q, core::LoadOp::ErrStatus));
        if (((err >> 16) & 0xffff) == 0)
            break;
        co_await sim::delay(eq_, 16);
    }
    //    ...and let straggler ops still in the interconnect land (and drop,
    //    without bumping AcceptCount) before the reset.
    co_await sim::delay(eq_, kSettleCycles);

    // 3. Read the architectural cause, then reset the queue: contents drop,
    //    parked waiters abort, the device TLB flushes, the latch clears.
    auto cause = static_cast<fault::FaultClass>(
        co_await core.load(loadAddr(q, core::LoadOp::ErrCause)));
    std::uint64_t fault_addr =
        co_await core.load(loadAddr(q, core::LoadOp::ErrAddr));
    (void)fault_addr;  // read for completeness; the log has it already
    co_await core.store(storeAddr(q, core::StoreOp::DeviceReset), 0);
    co_await core.storeFence();

    // 4. AcceptCount survived the reset; reading it while still quiesced
    //    gives produceOp an unambiguous replay watermark.
    std::uint64_t accepted =
        co_await core.load(loadAddr(q, core::LoadOp::AcceptCount));
    std::uint64_t n_replay = 0;
    for (const JournalEntry &e : qs.journal)
        if (e.accepted)
            ++n_replay;

    if (qs.recovery_count > cfg_.recovery_budget) {
        co_await degrade(core, q);
    } else {
        qs.accept_base = accepted + n_replay;
        ++qs.epoch;

        // 5. Resume and replay the accepted-but-unconsumed produces in
        //    journal order. Fence between stores: replay order is the
        //    correctness contract, and posted MMIO stores race otherwise.
        co_await core.store(storeAddr(q, core::StoreOp::Quiesce), 0);
        co_await core.storeFence();
        for (const JournalEntry &e : qs.journal) {
            if (!e.accepted)
                continue;
            co_await core.store(
                storeAddr(q, e.kind == JournalEntry::Kind::Data
                                 ? core::StoreOp::ProduceData
                                 : core::StoreOp::ProducePtr),
                e.payload);
            co_await core.storeFence();
        }
        stats_.counter("replayed_ops").inc(n_replay);
    }

    const sim::Cycle dt = eq_.now() - t0;
    stats_.histogram("time_to_recovery", 256.0, 64)
        .sample(static_cast<double>(dt));
    fault::FaultInjector *fi = eq_.faultInjector();
    if (fi && fault::isHardFault(cause)) {
        // Charges the per-class cycle counter and the fault_recovery
        // stall-attribution bucket in one place.
        fi->chargeCycles(cause, dt);
    } else if (tm) {
        tm->attributeStall(trace::StallCause::FaultRecovery, dt);
    }
    if (tm)
        tm->instant(tr_track_, qs.degraded ? "degraded" : "recover_end",
                    trace::Category::Os);

    qs.recovering = false;
    sim::Signal done = std::exchange(qs.recovery_wait, sim::Signal{});
    done.set(sim::Unit{});
}

sim::Task<void>
MapleDriver::degrade(cpu::Core &core, unsigned q)
{
    // Called from recover() with the queue quiesced and freshly reset.
    QueueState &qs = queues_[q];
    unsigned cap = device_.queue(q).capacity();
    qs.swq = std::make_unique<baselines::SwQueue>(proc_, cap ? cap : 64);

    // Permanent watchdog exclusion: a degraded device's remaining parked
    // machinery is intentional, not a livelock (satellite: masked/degraded
    // devices leave the parked-waiter accounting).
    if (fault::FaultInjector *fi = eq_.faultInjector())
        fi->maskOwner(device_.params().name);

    std::uint64_t n = 0;
    for (const JournalEntry &e : qs.journal) {
        if (!e.accepted)
            continue;
        std::uint64_t v = e.payload;
        if (e.kind == JournalEntry::Kind::Ptr)
            v = co_await core.load(e.payload, device_.queue(q).entryBytes());
        co_await qs.swq->produce(core, v);
        ++n;
    }
    qs.journal.clear();
    stats_.counter("replayed_ops").inc(n);
    stats_.counter("degraded_queues").inc();

    // Publish the degradation before releasing the device so no op can slip
    // back onto the hardware path, then close the binding and lift this
    // queue's quiesce so the device ends in a sane (if unused) state.
    qs.degraded = true;
    co_await core.store(storeAddr(q, core::StoreOp::Close), 0);
    co_await core.store(storeAddr(q, core::StoreOp::Quiesce), 0);
    co_await core.storeFence();
}

sim::Task<void>
MapleDriver::waitRecoveryDone(QueueState &qs)
{
    if (!qs.recovering)
        co_return;
    fault::ParkGuard park(eq_, "recovery_wait", device_.params().name);
    while (qs.recovering) {
        sim::Signal w = qs.recovery_wait;
        co_await w;
    }
}

sim::Task<void>
MapleDriver::ensureTimeout(cpu::Core &core, unsigned q)
{
    QueueState &qs = queues_[q];
    if (qs.timeout_set)
        co_return;
    qs.timeout_set = true;  // set before awaiting: one writer is enough
    co_await core.store(storeAddr(q, core::StoreOp::QueueTimeout),
                        cfg_.op_timeout);
    co_await core.storeFence();
}

sim::Task<void>
MapleDriver::backoff(unsigned attempt)
{
    sim::Cycle d = cfg_.backoff_base << std::min(attempt, 10u);
    d = std::min(d, cfg_.backoff_cap);
    // Deterministic jitter from the injector's dedicated recovery stream:
    // same seed, same retry schedule, and the injection streams never see
    // these draws.
    if (fault::FaultInjector *fi = eq_.faultInjector())
        d += fi->recoveryJitter(d / 4 + 1);
    co_await sim::delay(eq_, d);
}

}  // namespace maple::os
