/**
 * @file
 * Micro-OS for the simulated SoC.
 *
 * Provides just enough of SMP-Linux's role in the paper: physical frame
 * allocation, per-process page tables, eager or demand paging, mapping MAPLE
 * MMIO pages into user address spaces (process-exclusive access), a device
 * driver that resolves MAPLE page faults, and TLB-shootdown broadcast to
 * every MMU that caches translations for a process.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/mmu.hpp"
#include "mem/page_table.hpp"
#include "mem/physical_memory.hpp"
#include "sim/coro.hpp"
#include "sim/error.hpp"
#include "sim/log.hpp"
#include "sim/types.hpp"

namespace maple::os {

/** Bump allocator over a physical DRAM region (frames are never freed). */
class FrameAllocator {
  public:
    FrameAllocator(sim::Addr base, sim::Addr size) : next_(base), end_(base + size)
    {
        MAPLE_ASSERT((base & mem::kPageMask) == 0 && (size & mem::kPageMask) == 0);
    }

    sim::Addr
    alloc()
    {
        MAPLE_CHECK(next_ < end_, sim::OutOfMemoryError,
                    "frame allocator exhausted at pa 0x%llx (region end 0x%llx)",
                    (unsigned long long)next_, (unsigned long long)end_);
        sim::Addr frame = next_;
        next_ += mem::kPageSize;
        return frame;
    }

    sim::Addr allocated() const { return next_; }

    /**
     * Snapshot support: rewind/advance the bump pointer to a restored
     * watermark. Called after all restore-time allocations (page-table
     * roots of re-created processes) so the next frame handed out matches
     * the snapshotted machine exactly.
     */
    void
    setNext(sim::Addr next)
    {
        MAPLE_ASSERT((next & mem::kPageMask) == 0 && next <= end_,
                     "bad frame-allocator watermark");
        next_ = next;
    }

  private:
    sim::Addr next_;
    sim::Addr end_;
};

class Kernel;

/**
 * A user address space. Workloads allocate named regions from a bump heap;
 * regions are mapped eagerly by default, or lazily (valid but unmapped,
 * faulting on first touch) to exercise the demand-paging / driver path.
 */
class Process {
  public:
    Process(Kernel &kernel, std::string name);

    /** Allocate and eagerly map @p bytes of zeroed memory. */
    sim::Addr alloc(size_t bytes, const char *tag = "");

    /** Reserve @p bytes without mapping; first touch page-faults. */
    sim::Addr allocLazy(size_t bytes, const char *tag = "");

    /** Map a device MMIO page at a fresh user virtual address. */
    sim::Addr mapMmio(sim::Addr mmio_paddr, sim::Addr bytes = mem::kPageSize);

    /** True iff @p vaddr falls in a reserved (alloc'd) region. */
    bool owns(sim::Addr vaddr) const;

    /**
     * Base address of the first region allocated with @p tag. Regions (and
     * their tags) round-trip through snapshots, so a restored process can
     * recover dataset addresses without re-running allocation.
     * Fatal when no region carries the tag.
     */
    sim::Addr regionBase(const std::string &tag) const;

    /**
     * Demand-map the page containing @p vaddr (used by the fault path).
     * @return false when the address is not part of any region.
     */
    bool demandMap(sim::Addr vaddr);

    /** Unmap one page and broadcast a TLB shootdown (tests, reclaim). */
    void unmapPage(sim::Addr vaddr);

    /**
     * Retire the physical frame @p paddr_page (machine-check containment):
     * every leaf mapping in this space that points at the frame is switched
     * to a freshly allocated frame, the page contents are copied over (the
     * functional image in PhysicalMemory is exact; the soft error is a
     * timing/RAS-model event), and a TLB shootdown is broadcast.
     * @return true when at least one mapping was moved.
     */
    bool retireFrame(sim::Addr paddr_page);

    /// @name Functional data access (workload initialization / validation)
    /// @{
    void writeBytes(sim::Addr vaddr, const void *data, size_t len);
    void readBytes(sim::Addr vaddr, void *out, size_t len) const;

    template <typename T>
    void
    writeScalar(sim::Addr vaddr, T v)
    {
        writeBytes(vaddr, &v, sizeof(T));
    }

    template <typename T>
    T
    readScalar(sim::Addr vaddr) const
    {
        T v;
        readBytes(vaddr, &v, sizeof(T));
        return v;
    }
    /// @}

    mem::PageTable &pageTable() { return pt_; }
    const std::string &name() const { return name_; }
    Kernel &kernel() { return kernel_; }

    /** Register an MMU caching this process's translations (shootdowns). */
    void attachMmu(mem::Mmu *mmu);

    /**
     * Snapshot support. The attached-MMU list is host wiring and is rebuilt
     * by the restore path's re-attachment; everything else (page-table root,
     * regions, bump pointers, recorded MMIO windows) round-trips.
     */
    void saveState(ckpt::Sink &out) const;
    void loadState(ckpt::Source &in);

  private:
    struct Region {
        sim::Addr base;
        sim::Addr size;
        std::string tag;
        bool lazy;
    };

    /** A device page mapped into this space (mapMmio bookkeeping). */
    struct MmioMap {
        sim::Addr paddr;
        sim::Addr vaddr;
        sim::Addr bytes;
    };

    sim::Addr allocRegion(size_t bytes, const char *tag, bool lazy);

    Kernel &kernel_;
    std::string name_;
    mem::PageTable pt_;
    std::vector<Region> regions_;
    std::vector<MmioMap> mmio_maps_;
    std::vector<mem::Mmu *> mmus_;
    sim::Addr heap_next_;
    sim::Addr mmio_next_;
};

/** Latency knobs for kernel-mediated events. */
struct KernelParams {
    sim::Cycle fault_latency = 600;  ///< interrupt + driver handling cost
};

class Kernel {
  public:
    Kernel(sim::EventQueue &eq, mem::PhysicalMemory &pm, KernelParams params = {})
        : eq_(eq), pm_(pm), params_(params), frames_(0, pm.size())
    {
    }

    mem::PhysicalMemory &physMem() { return pm_; }
    sim::EventQueue &eventQueue() { return eq_; }
    FrameAllocator &frames() { return frames_; }
    const KernelParams &params() const { return params_; }

    Process &
    createProcess(const std::string &name)
    {
        procs_.push_back(std::make_unique<Process>(*this, name));
        return *procs_.back();
    }

    /**
     * Build the MAPLE-driver fault handler for @p proc: charges the interrupt
     * plus driver latency, then demand-maps the page when the access is valid
     * (mirrors the paper's "driver reads the faulting VA and maps it").
     */
    mem::Mmu::FaultHandler
    makeFaultHandler(Process &proc)
    {
        return [this, &proc](sim::Addr vaddr, bool) -> sim::Task<bool> {
            faults_serviced_.inc();
            co_await sim::delay(eq_, params_.fault_latency);
            co_return proc.demandMap(vaddr);
        };
    }

    std::uint64_t faultsServiced() const { return faults_serviced_.value(); }

    /**
     * Snapshot support. loadState() re-creates every process by name (each
     * re-created page table burns fresh frames and scribbles its root page;
     * both are corrected afterwards — the frame watermark is restored last,
     * and PhysicalMemory is restored after the kernel, wiping the scribbles)
     * then adopts the per-process state.
     */
    void
    saveState(ckpt::Sink &out) const
    {
        out.u64(procs_.size());
        for (const auto &p : procs_)
            p->saveState(out);
        out.u64(frames_.allocated());
        faults_serviced_.saveState(out);
    }

    void
    loadState(ckpt::Source &in)
    {
        procs_.clear();
        for (std::uint64_t n = in.u64(); n > 0; --n) {
            procs_.push_back(std::make_unique<Process>(*this, ""));
            procs_.back()->loadState(in);
        }
        frames_.setNext(in.u64());
        faults_serviced_.loadState(in);
    }

    /** Processes in creation order (restore-time re-attachment). */
    std::vector<Process *>
    processes()
    {
        std::vector<Process *> out;
        out.reserve(procs_.size());
        for (auto &p : procs_)
            out.push_back(p.get());
        return out;
    }

  private:
    sim::EventQueue &eq_;
    mem::PhysicalMemory &pm_;
    KernelParams params_;
    FrameAllocator frames_;
    std::vector<std::unique_ptr<Process>> procs_;
    sim::Counter faults_serviced_;
};

}  // namespace maple::os
