/**
 * @file
 * The OS-level MAPLE recovery driver: hard-fault detection, device reset,
 * replay, retry/backoff, and graceful degradation to the software queue.
 *
 * The device (core::Maple) gives the driver an architectural contract:
 *
 *  - hard faults latch sticky per-queue error registers (LoadOp::ErrStatus/
 *    ErrCause/ErrAddr) and poison the affected queue entries, which consumes
 *    surface as MapleStatus::Poisoned instead of data;
 *  - StoreOp::Quiesce stops one queue's produce/consume ops (they drop with
 *    MapleStatus::Quiesced) while the config pipeline stays live; quiesce,
 *    error state and the in-flight count are all per queue, so recoveries
 *    on different queues proceed independently;
 *  - StoreOp::DeviceReset drops one queue's contents, aborts parked waiters
 *    (MapleStatus::Aborted), flushes the device TLB, clears the queue's
 *    latch and overwrites its status registers with Aborted — a stale
 *    pre-reset Ok can never be read back after a reset, which is what makes
 *    the journal's exactly-once accounting sound under concurrent recovery;
 *  - LoadOp::AcceptCount survives the reset, so software can tell whether
 *    an in-flight produce landed before or after the reset.
 *
 * On top of that contract the driver implements the recovery state machine
 *
 *    detect -> quiesce -> drain -> read cause -> reset -> replay -> resume
 *
 * with a journal of accepted-but-unconsumed produce ops per queue (replayed
 * after a reset), deterministic exponential backoff around every reliable
 * op (jitter comes from the fault injector's dedicated recovery stream, so
 * runs are bit-identical per seed), and -- once the recovery budget is
 * exhausted -- permanent degradation of the queue to the software SPSC ring
 * (baselines::SwQueue): slower, but the workload completes correctly.
 *
 * Assumptions (checked by the tests, documented in DESIGN.md §10): one
 * producer and one consumer thread per driver-managed queue, and every op on
 * such a queue goes through the driver (MapleApi::*Reliable). AMO produces
 * are not journaled and are outside recovery coverage.
 *
 * Knobs (env, or --fault-recovery* CLI flags via harness::applyFaultFlags):
 *   MAPLE_FAULT_RECOVERY=<0|1>           enable the recovery driver
 *   MAPLE_FAULT_RECOVERY_RETRIES=<n>     timed-out retries before escalating
 *   MAPLE_FAULT_RECOVERY_BUDGET=<n>      recoveries before degradation
 *   MAPLE_FAULT_RECOVERY_BACKOFF=<c>     base backoff delay in cycles
 *   MAPLE_FAULT_RECOVERY_TIMEOUT=<c>     device-side op timeout in cycles
 */
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "baselines/sw_queue.hpp"
#include "core/maple.hpp"
#include "core/maple_isa.hpp"
#include "cpu/core.hpp"
#include "os/kernel.hpp"
#include "sim/coro.hpp"
#include "sim/stats.hpp"

namespace maple::os {

struct RecoveryConfig {
    bool enabled = false;
    unsigned retry_budget = 3;       ///< timed-out retries before escalating
    unsigned recovery_budget = 8;    ///< recoveries per queue before degrading
    sim::Cycle backoff_base = 200;   ///< first retry backoff (doubles, capped)
    sim::Cycle backoff_cap = 10000;
    sim::Cycle op_timeout = 10000;   ///< device-side produce/consume bound

    /** Overlay the MAPLE_FAULT_RECOVERY* environment knobs. */
    void mergeEnv();
};

class MapleDriver {
  public:
    MapleDriver(os::Process &proc, core::Maple &device, sim::Addr mmio_base,
                RecoveryConfig cfg);

    MapleDriver(const MapleDriver &) = delete;
    MapleDriver &operator=(const MapleDriver &) = delete;

    /// @name Reliable operations (MapleApi::*Reliable delegate here)
    /// @{
    sim::Task<bool> produce(cpu::Core &core, unsigned q, std::uint64_t data);
    sim::Task<bool> producePtr(cpu::Core &core, unsigned q, sim::Addr vaddr);
    sim::Task<std::uint64_t> consume(cpu::Core &core, unsigned q);
    /// @}

    const RecoveryConfig &config() const { return cfg_; }
    bool degraded(unsigned q) const { return queues_[q].degraded; }

    /// @name Recovery telemetry
    /// @{
    std::uint64_t recoveries() { return stats_.counter("recoveries").value(); }
    std::uint64_t replayedOps() { return stats_.counter("replayed_ops").value(); }
    std::uint64_t degradedQueues()
    {
        return stats_.counter("degraded_queues").value();
    }
    sim::StatGroup &stats() { return stats_; }
    /// @}

  private:
    struct JournalEntry {
        enum class Kind : std::uint8_t { Data, Ptr };
        Kind kind;
        std::uint64_t payload;  ///< data value or pointer vaddr
        bool accepted;          ///< the device took it (replayed after reset)
    };

    struct QueueState {
        std::deque<JournalEntry> journal;  ///< accepted-but-unconsumed + tail
        std::unique_ptr<baselines::SwQueue> swq;  ///< degradation target
        bool degraded = false;
        bool recovering = false;
        bool timeout_set = false;
        unsigned epoch = 0;            ///< bumped by every completed recovery
        unsigned recovery_count = 0;
        std::uint64_t accept_base = 0; ///< AcceptCount after reset + replay
        sim::Signal recovery_wait;     ///< woken when a recovery completes
    };

    sim::Task<bool> produceOp(cpu::Core &core, unsigned q,
                              JournalEntry::Kind kind, std::uint64_t payload);
    sim::Task<bool> produceDegraded(cpu::Core &core, QueueState &qs,
                                    JournalEntry::Kind kind,
                                    std::uint64_t payload, unsigned q);

    /** The recovery state machine; serialized per queue via `recovering`. */
    sim::Task<void> recover(cpu::Core &core, unsigned q);

    /** Replace the device queue with the software ring, replaying the journal. */
    sim::Task<void> degrade(cpu::Core &core, unsigned q);

    sim::Task<void> waitRecoveryDone(QueueState &qs);
    sim::Task<void> ensureTimeout(cpu::Core &core, unsigned q);
    sim::Task<void> backoff(unsigned attempt);

    sim::Addr loadAddr(unsigned q, core::LoadOp op) const
    {
        return core::encodeLoad(mmio_base_, q, op);
    }
    sim::Addr storeAddr(unsigned q, core::StoreOp op) const
    {
        return core::encodeStore(mmio_base_, q, op);
    }

    sim::EventQueue &eq_;
    os::Process &proc_;
    core::Maple &device_;
    sim::Addr mmio_base_;
    RecoveryConfig cfg_;
    sim::StatGroup stats_;
    std::vector<QueueState> queues_;

    /// Lazily-created trace track for recovery instants.
    trace::TraceManager::TrackId tr_track_ = trace::TraceManager::kNone;
};

}  // namespace maple::os
