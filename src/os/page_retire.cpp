#include "os/page_retire.hpp"

#include "mem/physical_memory.hpp"

namespace maple::os {

sim::Task<void>
PageRetirer::contain(sim::Addr line, sim::TileId tile, fault::FaultClass cause)
{
    (void)tile;
    (void)cause;
    sim::EventQueue &eq = kernel_.eventQueue();
    const sim::Addr page = mem::pageBase(line);
    if (auto it = inflight_.find(page); it != inflight_.end()) {
        // Another consumer already machine-checked into this page. Ride its
        // repair: once the first retire completes the frame is fresh, so
        // this consumer just resumes and retries.
        sim::Signal done = it->second;
        fault::ParkGuard park(eq, "page_retire", "kernel");
        co_await done;
        co_return;
    }
    sim::Signal done;
    inflight_.emplace(page, done);
    // Machine-check trap delivery + kernel handler cost (same latency class
    // as the MAPLE driver's fault service).
    co_await sim::delay(eq, kernel_.params().fault_latency);
    // Flush every cached copy of the page's poisoned lines. The triggering
    // line first (cache-side poison may not be in the backing set), then any
    // other line of the page the backing store knows is poisoned.
    if (hooks_.flush_line) {
        co_await hooks_.flush_line(line);
        for (sim::Addr l = page; l < page + mem::kPageSize; l += mem::kLineSize) {
            if (l != line && resil_.backingPoisoned(l))
                co_await hooks_.flush_line(l);
        }
    }
    // Retire the frame in every address space that references it.
    bool retired = false;
    for (Process *p : kernel_.processes())
        retired = p->retireFrame(page) || retired;
    resil_.clearBackingPoisonPage(page);
    if (retired)
        resil_.noteRetiredPage();
    inflight_.erase(page);
    done.set(sim::Unit{});
    co_return;
}

}  // namespace maple::os
