#include "os/kernel.hpp"

#include <algorithm>
#include <memory>

namespace maple::os {

namespace {

/** User virtual layout: heap low, MMIO windows high. */
constexpr sim::Addr kHeapBase = 0x0000'0000'1000'0000ull;
constexpr sim::Addr kMmioBase = 0x0000'0000'7000'0000ull;

}  // namespace

Process::Process(Kernel &kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)),
      pt_(kernel.physMem(), [&kernel] { return kernel.frames().alloc(); }),
      heap_next_(kHeapBase), mmio_next_(kMmioBase)
{
}

sim::Addr
Process::allocRegion(size_t bytes, const char *tag, bool lazy)
{
    MAPLE_ASSERT(bytes > 0, "empty allocation");
    sim::Addr base = heap_next_;
    sim::Addr size = (bytes + mem::kPageMask) & ~mem::kPageMask;
    heap_next_ += size + mem::kPageSize;  // guard page between regions
    regions_.push_back(Region{base, size, tag, lazy});
    if (!lazy) {
        for (sim::Addr va = base; va < base + size; va += mem::kPageSize)
            pt_.map(va, kernel_.frames().alloc(), /*writable=*/true);
    }
    return base;
}

sim::Addr
Process::alloc(size_t bytes, const char *tag)
{
    return allocRegion(bytes, tag, /*lazy=*/false);
}

sim::Addr
Process::allocLazy(size_t bytes, const char *tag)
{
    return allocRegion(bytes, tag, /*lazy=*/true);
}

sim::Addr
Process::mapMmio(sim::Addr mmio_paddr, sim::Addr bytes)
{
    MAPLE_ASSERT((mmio_paddr & mem::kPageMask) == 0, "MMIO pages are aligned");
    // Idempotent: re-mapping a device page already in this space (the
    // post-restore re-attachment path) returns the existing window instead
    // of burning a fresh one.
    for (const MmioMap &m : mmio_maps_) {
        if (m.paddr == mmio_paddr && m.bytes == bytes)
            return m.vaddr;
    }
    sim::Addr base = mmio_next_;
    for (sim::Addr off = 0; off < bytes; off += mem::kPageSize)
        pt_.map(base + off, mmio_paddr + off, /*writable=*/true);
    mmio_next_ += bytes + mem::kPageSize;
    mmio_maps_.push_back(MmioMap{mmio_paddr, base, bytes});
    return base;
}

bool
Process::owns(sim::Addr vaddr) const
{
    return std::any_of(regions_.begin(), regions_.end(), [vaddr](const Region &r) {
        return vaddr >= r.base && vaddr < r.base + r.size;
    });
}

sim::Addr
Process::regionBase(const std::string &tag) const
{
    for (const Region &r : regions_) {
        if (r.tag == tag)
            return r.base;
    }
    MAPLE_FATAL("process %s has no region tagged \"%s\"", name_.c_str(),
                tag.c_str());
}

bool
Process::demandMap(sim::Addr vaddr)
{
    if (!owns(vaddr))
        return false;
    sim::Addr page = mem::pageBase(vaddr);
    if (!pt_.walk(page))
        pt_.map(page, kernel_.frames().alloc(), /*writable=*/true);
    return true;
}

void
Process::unmapPage(sim::Addr vaddr)
{
    sim::Addr page = mem::pageBase(vaddr);
    pt_.unmap(page);
    // Linux mmu_notifier-style shootdown to every attached MMU.
    for (mem::Mmu *mmu : mmus_)
        mmu->invalidate(page);
}

bool
Process::retireFrame(sim::Addr paddr_page)
{
    MAPLE_ASSERT((paddr_page & mem::kPageMask) == 0, "frames are page aligned");
    // Device windows are identity views of MMIO pages, never DRAM frames,
    // so only heap regions can reference the afflicted frame. One fresh
    // frame replaces the afflicted one everywhere it is mapped; the
    // physical-memory redirect catches requests that translated before
    // the shootdown (drained store-buffer entries, in-flight fills) so no
    // straggler write is silently lost on the retired frame.
    std::optional<sim::Addr> fresh;
    for (const Region &r : regions_) {
        for (sim::Addr va = r.base; va < r.base + r.size; va += mem::kPageSize) {
            std::optional<mem::Pte> pte = pt_.walk(va);
            if (!pte || pte->paddrBase() != paddr_page)
                continue;
            if (!fresh) {
                fresh = kernel_.frames().alloc();
                std::uint8_t buf[mem::kPageSize];
                kernel_.physMem().read(paddr_page, buf, mem::kPageSize);
                kernel_.physMem().write(*fresh, buf, mem::kPageSize);
                // Only after the copy: a redirect installed earlier would
                // make the copy read the (empty) replacement frame.
                kernel_.physMem().retireFrameTo(paddr_page, *fresh);
            }
            pt_.map(va, *fresh, pte->writable());
            for (mem::Mmu *mmu : mmus_)
                mmu->invalidate(va);
        }
    }
    return fresh.has_value();
}

void
Process::attachMmu(mem::Mmu *mmu)
{
    MAPLE_ASSERT(mmu != nullptr);
    // Idempotent for the post-restore re-attachment path; setRoot() is also
    // a no-op when the MMU already points at this space, so a restored TLB
    // keeps its warmed contents.
    if (std::find(mmus_.begin(), mmus_.end(), mmu) == mmus_.end())
        mmus_.push_back(mmu);
    mmu->setRoot(pt_.rootPaddr());
}

void
Process::saveState(ckpt::Sink &out) const
{
    out.str(name_);
    out.u64(pt_.rootPaddr());
    out.u64(pt_.tablePages());
    out.u64(regions_.size());
    for (const Region &r : regions_) {
        out.u64(r.base);
        out.u64(r.size);
        out.str(r.tag);
        out.b(r.lazy);
    }
    out.u64(mmio_maps_.size());
    for (const MmioMap &m : mmio_maps_) {
        out.u64(m.paddr);
        out.u64(m.vaddr);
        out.u64(m.bytes);
    }
    out.u64(heap_next_);
    out.u64(mmio_next_);
}

void
Process::loadState(ckpt::Source &in)
{
    name_ = in.str();
    sim::Addr root = in.u64();
    size_t table_pages = in.u64();
    pt_.adoptState(root, table_pages);
    regions_.clear();
    for (std::uint64_t n = in.u64(); n > 0; --n) {
        Region r;
        r.base = in.u64();
        r.size = in.u64();
        r.tag = in.str();
        r.lazy = in.b();
        regions_.push_back(std::move(r));
    }
    mmio_maps_.clear();
    for (std::uint64_t n = in.u64(); n > 0; --n) {
        MmioMap m;
        m.paddr = in.u64();
        m.vaddr = in.u64();
        m.bytes = in.u64();
        mmio_maps_.push_back(m);
    }
    heap_next_ = in.u64();
    mmio_next_ = in.u64();
}

void
Process::writeBytes(sim::Addr vaddr, const void *data, size_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        if (!pt_.walk(mem::pageBase(vaddr))) {
            bool ok = demandMap(vaddr);
            MAPLE_ASSERT(ok, "functional write to unreserved va 0x%llx",
                         (unsigned long long)vaddr);
        }
        auto pa = pt_.translate(vaddr, mem::Perms{true});
        MAPLE_ASSERT(pa.has_value());
        size_t chunk = std::min<size_t>(len, mem::kPageSize - mem::pageOffset(vaddr));
        kernel_.physMem().write(*pa, src, chunk);
        vaddr += chunk;
        src += chunk;
        len -= chunk;
    }
}

void
Process::readBytes(sim::Addr vaddr, void *out, size_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        auto pa = pt_.translate(vaddr, mem::Perms{false});
        MAPLE_ASSERT(pa.has_value(), "functional read of unmapped va 0x%llx",
                     (unsigned long long)vaddr);
        size_t chunk = std::min<size_t>(len, mem::kPageSize - mem::pageOffset(vaddr));
        kernel_.physMem().read(*pa, dst, chunk);
        vaddr += chunk;
        dst += chunk;
        len -= chunk;
    }
}

}  // namespace maple::os
