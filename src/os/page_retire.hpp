/**
 * @file
 * Machine-check containment handler: the OS response to a core (or PTW /
 * coherent-DMA consumer) touching a poisoned line. Mirrors what SMP Linux
 * does on an MCE with a recoverable userspace address (memory_failure()):
 *
 *   1. take the machine-check trap (kernel fault_latency),
 *   2. flush every cached copy of the page's poisoned lines -- through the
 *      home directory in coherent mode, by direct invalidation otherwise,
 *   3. retire the physical frame: remap every process page pointing at it
 *      to a fresh frame (hardware scrubbed the data via ECC history /
 *      software reconstruction; functionally the image was always exact),
 *   4. drop the page's backing-poison state and resume the consumer, which
 *      retries and now refills clean data.
 *
 * Installed by the Soc as ResilManager's containment handler. Concurrent
 * machine checks on the same page coalesce: later consumers park until the
 * first retire completes, then resume without retiring again.
 */
#pragma once

#include <functional>
#include <unordered_map>

#include "fault/fault.hpp"
#include "mem/resil.hpp"
#include "os/kernel.hpp"
#include "sim/coro.hpp"
#include "sim/types.hpp"

namespace maple::os {

/** Soc-provided plumbing the retirer needs but must not know the wiring of. */
struct PageRetireHooks {
    /**
     * Flush-invalidate every cached copy of @p line, however deep it is in
     * the hierarchy (directory recall + LLC slice drop in coherent mode;
     * L1 + LLC drops in legacy mode). Takes protocol time.
     */
    std::function<sim::Task<void>(sim::Addr line)> flush_line;
};

class PageRetirer {
  public:
    PageRetirer(Kernel &kernel, mem::ResilManager &resil, PageRetireHooks hooks)
        : kernel_(kernel), resil_(resil), hooks_(std::move(hooks))
    {
    }

    PageRetirer(const PageRetirer &) = delete;
    PageRetirer &operator=(const PageRetirer &) = delete;

    /**
     * Contain a poisoned consumption of @p line by @p tile (see file
     * comment). Matches ResilManager::ContainFn.
     */
    sim::Task<void> contain(sim::Addr line, sim::TileId tile,
                            fault::FaultClass cause);

  private:
    Kernel &kernel_;
    mem::ResilManager &resil_;
    PageRetireHooks hooks_;
    /** Pages with a retire in flight; later machine checks ride the first. */
    std::unordered_map<sim::Addr, sim::Signal> inflight_;
};

}  // namespace maple::os
