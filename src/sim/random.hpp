/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64 / xoshiro256**).
 * Workload generators must use this, never std::rand, so datasets are
 * reproducible across platforms and standard-library versions.
 */
#pragma once

#include <array>
#include <cstdint>

namespace maple::sim {

/** xoshiro256** seeded via splitmix64; small, fast, reproducible. */
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : s_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free mapping is fine for simulation use.
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /**
     * Full generator state, exposed for snapshot/restore: setState() resumes
     * the stream at exactly the draw where state() captured it.
     */
    using State = std::array<std::uint64_t, 4>;

    State
    state() const
    {
        return State{s_[0], s_[1], s_[2], s_[3]};
    }

    void
    setState(const State &st)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = st[static_cast<std::size_t>(i)];
    }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    std::uint64_t s_[4];
};

}  // namespace maple::sim
