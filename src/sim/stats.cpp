#include "sim/stats.hpp"

#include <cmath>
#include <sstream>

namespace maple::sim {

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[k, c] : counters_)
        os << name_ << "." << k << " = " << c.value() << "\n";
    for (const auto &[k, a] : averages_) {
        os << name_ << "." << k << " = " << a.mean() << " (n=" << a.count()
           << ", min=" << a.min() << ", max=" << a.max() << ")\n";
    }
    for (const auto &[k, h] : histograms_) {
        os << name_ << "." << k << " = p50:" << h.percentile(0.50)
           << " p95:" << h.percentile(0.95) << " p99:" << h.percentile(0.99)
           << " (n=" << h.total() << ", max=" << h.maxSample() << ")\n";
    }
    return os.str();
}

double
geomean(const std::vector<double> &xs)
{
    MAPLE_ASSERT(!xs.empty(), "geomean of empty set");
    double acc = 0.0;
    for (double x : xs) {
        MAPLE_ASSERT(x > 0.0, "geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace maple::sim
