/**
 * @file
 * Cooperative synchronization primitives for simulated software threads.
 * Because the whole simulation is single-OS-threaded and event-driven these
 * are purely logical; the *timing* cost of synchronization (e.g. atomics
 * hitting the LLC) is charged by the core model, not here.
 */
#pragma once

#include "sim/coro.hpp"
#include "sim/log.hpp"

namespace maple::sim {

/** Reusable N-party barrier for coroutines (epoch barrier in the workloads). */
class Barrier {
  public:
    explicit Barrier(unsigned parties) : parties_(parties)
    {
        MAPLE_ASSERT(parties > 0);
    }

    Task<void>
    wait()
    {
        if (++arrived_ == parties_) {
            arrived_ = 0;
            Signal gen = std::exchange(generation_, Signal{});
            gen.set(Unit{});
            co_return;
        }
        Signal gen = generation_;
        co_await gen;
    }

    unsigned parties() const { return parties_; }

  private:
    unsigned parties_;
    unsigned arrived_ = 0;
    Signal generation_;
};

}  // namespace maple::sim
