/**
 * @file
 * Typed simulator errors.
 *
 * Two families, matching the panic()/fatal() split in sim/log.hpp:
 *
 *  - PanicError (std::logic_error): an *internal* invariant was violated —
 *    a modeling bug or API misuse inside the simulator. Subclasses narrow
 *    the site (queue misuse, ...).
 *  - FatalError (std::runtime_error): an unrecoverable *runtime* condition —
 *    bad configuration, a workload page fault, resource exhaustion, or a
 *    liveness failure. Subclasses let tests assert on the exact failure
 *    (MmioDecodeError, PageFaultError, OutOfMemoryError, DeadlockError...).
 *
 * The bases are deliberately std::logic_error / std::runtime_error so code
 * (and tests) written against the untyped MAPLE_PANIC / MAPLE_FATAL throws
 * keeps working; new code catches the precise subclass instead.
 */
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "sim/log.hpp"

namespace maple::sim {

/** Unrecoverable runtime condition (bad config, workload fault, liveness). */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {
    }
};

/** A component was constructed/configured with inconsistent parameters. */
class ConfigError : public FatalError {
  public:
    using FatalError::FatalError;
};

/** An MMIO access decoded to no register/queue of the target device. */
class MmioDecodeError : public FatalError {
  public:
    using FatalError::FatalError;
};

/** A core access faulted and no handler resolved it (bad vaddr, PTW miss). */
class PageFaultError : public FatalError {
  public:
    using FatalError::FatalError;
};

/** Simulated physical memory (frame allocator) is exhausted. */
class OutOfMemoryError : public FatalError {
  public:
    using FatalError::FatalError;
};

/**
 * The liveness watchdog found no forward progress: the event queue went
 * quiescent with coroutines still parked, or a waiter starved past the
 * configured stall bound. what() leads with a one-line summary; report()
 * holds the structured diagnostic (parked waiters, FIFO occupancies, MSHR
 * state, stall attribution).
 */
class DeadlockError : public FatalError {
  public:
    DeadlockError(const std::string &summary, std::string report)
        : FatalError(summary + (report.empty() ? "" : "\n" + report)),
          report_(std::move(report))
    {
    }

    const std::string &report() const { return report_; }

  private:
    std::string report_;
};

/** Internal invariant violated: a simulator bug or component-API misuse. */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {
    }
};

/** A hardware-queue contract was broken (pop on empty, fill on filled...). */
class QueueMisuseError : public PanicError {
  public:
    using PanicError::PanicError;
};

namespace detail {

template <typename E>
[[noreturn]] void
throwError(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "error: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw E(msg);
}

}  // namespace detail

/** Throw a typed sim error with a printf-style context string. */
#define MAPLE_THROW(ErrType, ...) \
    ::maple::sim::detail::throwError<ErrType>(__FILE__, __LINE__, \
        ::maple::sim::detail::formatString(__VA_ARGS__))

/** Check a condition; throws the given typed error on failure. */
#define MAPLE_CHECK(cond, ErrType, ...) \
    do { \
        if (!(cond)) { \
            MAPLE_THROW(ErrType, __VA_ARGS__); \
        } \
    } while (0)

}  // namespace maple::sim
