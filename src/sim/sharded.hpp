/**
 * @file
 * Sharded multi-threaded simulation engine: conservative bulk-synchronous
 * parallelism over per-domain EventQueue timing wheels.
 *
 * The SoC (or a grid of SoCs) is partitioned into *domains*, each owning its
 * own EventQueue, coroutine frames and RNG streams. Domains never touch each
 * other's state directly; the only cross-domain interaction is a *message*
 * (an EventQueue::Callback plus an absolute delivery cycle) posted into a
 * per-(src,dst) mailbox. The engine advances all domains in lock-step
 * bulk-synchronous quanta:
 *
 *   1. Deliver every pending mailbox message into its target queue, in the
 *      fixed order (delivery cycle, source domain, per-mailbox ticket). The
 *      EventQueue breaks same-cycle ties by insertion order, so this merge
 *      order — not thread scheduling — decides all cross-domain ordering.
 *   2. Compute the next window [T, T+Q): T is the earliest pending event
 *      across all domains, Q = min(lookahead, configured quantum).
 *   3. Run every domain's queue through the window, one domain per worker
 *      (claimed from an atomic counter; any assignment yields the same
 *      per-domain event sequence). Messages posted during the window must
 *      be scheduled at or after the window end (checked), which is what
 *      makes the window race-free: nothing a domain does inside [T, T+Q)
 *      can affect another domain inside the same window.
 *   4. Barrier; surface any domain exception in domain-id order; invoke the
 *      boundary hook (watchdog aggregation); repeat.
 *
 * Determinism: a domain's event sequence depends only on its own queue
 * contents plus the merged messages, and the merge order is a pure function
 * of (cycle, src domain, ticket). Host thread count and scheduling therefore
 * cannot influence results: --threads=8 is byte-identical to --threads=1 by
 * construction (and locked by tests/test_sharded.cpp).
 *
 * The conservative quantum bound Q <= lookahead is the classic
 * null-message-free conservative synchronization of a topology with a known
 * minimum cross-domain latency (here: the NoC/inter-chip link latency, in
 * the spirit of Manticore's static BSP and Graphite's relaxed tile sync).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace maple::sim {

class ShardedEngine {
  public:
    using DomainId = std::uint32_t;

    /** Sentinel source for messages posted from outside any domain. */
    static constexpr DomainId kExternalSrc = ~DomainId{0};

    /** Default quantum when no channel bounds the lookahead (matches the
     *  liveness watchdog's default check interval). */
    static constexpr Cycle kDefaultQuantum = 1u << 16;

    ShardedEngine() = default;
    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /**
     * Register @p eq as a domain. The queue stays owned by the caller (a
     * Soc's queue, a bench-local queue); the engine only drives it. Must not
     * be called while run() is active.
     */
    DomainId addDomain(EventQueue &eq, std::string name = {});

    unsigned numDomains() const { return static_cast<unsigned>(domains_.size()); }
    EventQueue &domain(DomainId d) { return *domains_.at(d).eq; }
    const std::string &domainName(DomainId d) const { return domains_.at(d).name; }

    /**
     * Declare a cross-domain channel whose messages always carry at least
     * @p min_latency cycles between post time and delivery cycle. The
     * quantum never exceeds the smallest declared latency, which is what
     * guarantees a message posted inside a window lands beyond it.
     */
    void declareChannelLatency(Cycle min_latency);

    /** The current lookahead bound (kCycleMax when no channel declared). */
    Cycle lookahead() const { return lookahead_; }

    /**
     * Post a cross-domain message: run @p cb in domain @p dst's queue at
     * absolute cycle @p when. Legal from the code of domain @p src while it
     * executes a window (then @p when must be at or beyond the window end —
     * checked, ConfigError), or from the host thread outside run(). Outside
     * a window, a @p when behind the destination's clock (domain clocks
     * rest at their individual drain points between runs) is clamped up to
     * it. The callback executes on whichever host thread runs @p dst in the
     * delivery window; it must only touch @p dst's state.
     */
    void post(DomainId src, DomainId dst, Cycle when, EventQueue::Callback cb);

    /**
     * Hook invoked single-threaded after every quantum with the window-end
     * cycle just reached. Used for watchdog aggregation across domains; may
     * throw (e.g. DeadlockError) to abort the run. Never invoked
     * concurrently with domain execution.
     */
    using BoundaryHook = std::function<void(Cycle window_end)>;
    void setBoundaryHook(BoundaryHook hook) { boundary_hook_ = std::move(hook); }

    struct RunOptions {
        unsigned threads = 1;        ///< host worker threads (clamped to domains)
        Cycle max_cycles = kCycleMax; ///< stop once the next window would pass this
        Cycle quantum = 0;           ///< 0 = auto: min(lookahead, kDefaultQuantum)
    };

    /**
     * Advance all domains until every queue drains and no message is in
     * flight (returns true), or until the next event lies beyond
     * @p max_cycles (returns false; domains with pending events have
     * advanced now() to the bound, mirroring EventQueue::run's early-stop
     * contract). Byte-identical for any opts.threads.
     */
    bool run(const RunOptions &opts);
    bool run() { return run(RunOptions{}); }

    /// @name Telemetry
    /// @{
    std::uint64_t quanta() const { return quanta_; }
    std::uint64_t messagesMerged() const { return merged_; }
    size_t pendingMessages() const;
    /** Sum of executed() over all domains. */
    std::uint64_t executed() const;
    /// @}

  private:
    struct Message {
        Cycle when = 0;
        std::uint64_t seq = 0;  ///< per-mailbox ticket (FIFO within a pair)
        EventQueue::Callback cb;
    };

    /** SPSC mailbox for one (src,dst) pair: the src domain's thread appends
     *  during a window, the merge phase (single-threaded, after the barrier)
     *  drains it. The barrier provides the happens-before edge. */
    struct Mailbox {
        std::vector<Message> msgs;
        std::uint64_t next_seq = 0;
    };

    struct Domain {
        EventQueue *eq = nullptr;
        std::string name;
        std::exception_ptr error;  ///< first exception from the last window
    };

    Mailbox &box(DomainId src, DomainId dst);
    void runDomain(Domain &d, Cycle bound);
    void runWindow(Cycle bound, unsigned threads);
    void deliverPending();
    void rethrowDomainErrors();

    std::vector<Domain> domains_;
    /** numDomains()*numDomains() pair boxes + numDomains() external boxes. */
    std::vector<Mailbox> boxes_;
    Cycle lookahead_ = kCycleMax;
    BoundaryHook boundary_hook_;

    // Window state published to workers before each quantum (happens-before
    // via the generation-tagged claim word below).
    Cycle window_end_ = 0;   ///< first cycle beyond the running window
    bool in_window_ = false;

    // Worker handshake (see sharded.cpp for the protocol). claim_ packs
    // (window generation << kClaimGenShift) | next-domain-index: the store
    // that opens a generation release-publishes bound_/window_end_, and the
    // CAS that takes a claim is the matching acquire, so a claim can never
    // be consumed with stale window state. done_ counts completed domains
    // of the current generation only (incremented strictly after a
    // successful generation-checked claim).
    static constexpr unsigned kClaimGenShift = 32;
    static constexpr std::uint64_t kClaimIndexMask = 0xffffffffu;
    std::atomic<std::uint64_t> claim_{0};
    std::uint64_t window_gen_ = 0;  ///< main-thread-only generation source
    std::atomic<unsigned> done_{0};
    std::atomic<bool> stop_{false};
    Cycle bound_ = 0;

    std::uint64_t quanta_ = 0;
    std::uint64_t merged_ = 0;
};

}  // namespace maple::sim
