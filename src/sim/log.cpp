#include "sim/log.hpp"

#include <cstdio>
#include <stdexcept>

#include "sim/error.hpp"

namespace maple::sim::detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (instead of abort) lets the property-based tests assert that
    // invalid stimulus is rejected without killing the test binary.
    // PanicError derives from std::logic_error.
    throw PanicError(msg);
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // FatalError derives from std::runtime_error.
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

}  // namespace maple::sim::detail
