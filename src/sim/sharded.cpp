#include "sim/sharded.hpp"

#include <algorithm>

#include "sim/error.hpp"
#include "sim/log.hpp"

namespace maple::sim {

ShardedEngine::DomainId
ShardedEngine::addDomain(EventQueue &eq, std::string name)
{
    MAPLE_CHECK(pendingMessages() == 0, ConfigError,
                "addDomain with cross-domain messages in flight");
    auto id = static_cast<DomainId>(domains_.size());
    Domain d;
    d.eq = &eq;
    d.name = name.empty() ? "domain." + std::to_string(id) : std::move(name);
    domains_.push_back(std::move(d));
    // Pair boxes are indexed src*D+dst, so a domain-count change relays out
    // the whole mailbox array (empty by the check above).
    const size_t n = domains_.size();
    boxes_.assign(n * n + n, Mailbox{});
    return id;
}

void
ShardedEngine::declareChannelLatency(Cycle min_latency)
{
    MAPLE_CHECK(min_latency >= 1, ConfigError,
                "cross-domain channel needs a latency of at least one cycle "
                "(zero-lookahead channels cannot be parallelized "
                "conservatively)");
    lookahead_ = std::min(lookahead_, min_latency);
}

ShardedEngine::Mailbox &
ShardedEngine::box(DomainId src, DomainId dst)
{
    const size_t n = domains_.size();
    MAPLE_CHECK(dst < n, ConfigError, "message to unknown domain %u", dst);
    if (src == kExternalSrc)
        return boxes_[n * n + dst];
    MAPLE_CHECK(src < n, ConfigError, "message from unknown domain %u", src);
    return boxes_[static_cast<size_t>(src) * n + dst];
}

void
ShardedEngine::post(DomainId src, DomainId dst, Cycle when,
                    EventQueue::Callback cb)
{
    // The conservative-lookahead contract: a message posted inside a window
    // must land beyond it, so no domain's window can depend on what another
    // domain does inside the same window.
    if (in_window_) {
        MAPLE_CHECK(when >= window_end_, ConfigError,
                    "cross-domain message at cycle %llu violates the "
                    "conservative window end %llu (declared channel latency "
                    "too small for the quantum?)",
                    (unsigned long long)when,
                    (unsigned long long)window_end_);
    } else if (dst < domains_.size() && when < domains_[dst].eq->now()) {
        // Outside run() the domain clocks rest at their individual drain
        // points, so a host-side post computed from a lagging domain's clock
        // can predate the destination. Deliver it as early as the
        // destination's clock allows — deterministic, since between-run
        // clocks don't depend on the thread count. (In-window posts can
        // never hit this: when >= window_end > bound >= every domain's now.)
        when = domains_[dst].eq->now();
    }
    Mailbox &b = box(src, dst);
    b.msgs.push_back(Message{when, b.next_seq++, std::move(cb)});
}

void
ShardedEngine::deliverPending()
{
    const size_t n = domains_.size();
    struct Pending {
        Cycle when;
        DomainId src;
        std::uint64_t seq;
        EventQueue::Callback cb;
    };
    std::vector<Pending> batch;
    for (size_t dst = 0; dst < n; ++dst) {
        batch.clear();
        for (size_t src = 0; src < n + 1; ++src) {
            DomainId sid = src == n ? kExternalSrc : static_cast<DomainId>(src);
            Mailbox &b = box(sid, static_cast<DomainId>(dst));
            for (Message &m : b.msgs)
                batch.push_back(Pending{m.when, sid, m.seq, std::move(m.cb)});
            b.msgs.clear();
        }
        if (batch.empty())
            continue;
        // The fixed cross-domain merge order: delivery cycle, then source
        // domain, then the per-mailbox ticket. EventQueue ties break by
        // insertion order, so scheduling in this order pins all same-cycle
        // cross-domain interleaving independent of host thread count.
        std::sort(batch.begin(), batch.end(),
                  [](const Pending &a, const Pending &b2) {
                      if (a.when != b2.when)
                          return a.when < b2.when;
                      if (a.src != b2.src)
                          return a.src < b2.src;
                      return a.seq < b2.seq;
                  });
        EventQueue &eq = *domains_[dst].eq;
        for (Pending &p : batch) {
            MAPLE_CHECK(p.when >= eq.now(), ConfigError,
                        "cross-domain message delivered into the past "
                        "(cycle %llu < domain now %llu)",
                        (unsigned long long)p.when,
                        (unsigned long long)eq.now());
            eq.schedule(p.when, std::move(p.cb));
            ++merged_;
        }
    }
}

size_t
ShardedEngine::pendingMessages() const
{
    size_t pending = 0;
    for (const Mailbox &b : boxes_)
        pending += b.msgs.size();
    return pending;
}

std::uint64_t
ShardedEngine::executed() const
{
    std::uint64_t total = 0;
    for (const Domain &d : domains_)
        total += d.eq->executed();
    return total;
}

void
ShardedEngine::runDomain(Domain &d, Cycle bound)
{
    try {
        d.eq->run(bound);
    } catch (...) {
        if (!d.error)
            d.error = std::current_exception();
    }
}

void
ShardedEngine::rethrowDomainErrors()
{
    std::exception_ptr first;
    for (Domain &d : domains_) {
        if (d.error && !first)
            first = d.error;
        d.error = nullptr;
    }
    if (first)
        std::rethrow_exception(first);
}

void
ShardedEngine::runWindow(Cycle bound, unsigned threads)
{
    bound_ = bound;
    window_end_ = bound == kCycleMax ? kCycleMax : bound + 1;
    in_window_ = true;
    if (threads <= 1 || domains_.size() == 1) {
        // Sequential reference path: same domain order every time. No
        // short-circuit on error — parallel windows always complete every
        // domain, so the sequential path must too for bit-identity of the
        // window's side effects.
        for (Domain &d : domains_)
            runDomain(d, bound);
    } else {
        // done_ must be reset before the new generation opens: workers only
        // increment it after a successful generation-checked claim, and such
        // claims exist only after the release store below, so this store is
        // ordered before every done-increment of the new window — a
        // straggler from the previous window cannot wipe a completion (its
        // own final done-increment is what let the previous done-spin exit).
        done_.store(0, std::memory_order_relaxed);
        // One release store publishes bound_/window_end_/in_window_ AND
        // opens claiming for the new generation. The generation wraps after
        // 2^32 windows; aliasing would need a worker parked across exactly
        // that many windows while others make progress.
        claim_.store(++window_gen_ << kClaimGenShift,
                     std::memory_order_release);
        // The main thread is worker zero. It owns the generation, so it
        // claims without the generation check the workers need.
        std::uint64_t c = claim_.load(std::memory_order_relaxed);
        while ((c & kClaimIndexMask) < domains_.size()) {
            if (claim_.compare_exchange_weak(c, c + 1,
                                             std::memory_order_acq_rel)) {
                runDomain(domains_[c & kClaimIndexMask], bound);
                done_.fetch_add(1, std::memory_order_release);
                c = claim_.load(std::memory_order_relaxed);
            }
        }
        while (done_.load(std::memory_order_acquire) < domains_.size())
            std::this_thread::yield();
    }
    in_window_ = false;
}

bool
ShardedEngine::run(const RunOptions &opts)
{
    const unsigned n = numDomains();
    MAPLE_CHECK(n > 0, ConfigError, "sharded run with no domains");
    const Cycle q =
        opts.quantum ? opts.quantum : std::min(lookahead_, Cycle{kDefaultQuantum});
    MAPLE_CHECK(q >= 1 && q <= lookahead_, ConfigError,
                "quantum %llu exceeds the declared lookahead %llu",
                (unsigned long long)q, (unsigned long long)lookahead_);
    const unsigned threads = std::min(std::max(opts.threads, 1u), n);

    // Workers are pure accelerators: every window is driven to completion by
    // the main thread's own claim loop, so results never depend on whether
    // (or when) a worker picked up a domain. Spawned per run; the guard
    // stops and joins them even when a hook or domain throws.
    struct PoolGuard {
        ShardedEngine *engine;
        std::vector<std::thread> workers;

        ~PoolGuard()
        {
            engine->stop_.store(true, std::memory_order_release);
            for (std::thread &t : workers)
                t.join();
        }
    } pool{this, {}};
    if (threads > 1) {
        stop_.store(false, std::memory_order_relaxed);
        pool.workers.reserve(threads - 1);
        for (unsigned t = 1; t < threads; ++t) {
            pool.workers.emplace_back([this] {
                // A worker parks on the generation it has seen fully
                // claimed and wakes when claim_ carries a newer one. The
                // CAS that takes a claim validates the index against the
                // SAME loaded word as its generation, and reads from the
                // release sequence headed by runWindow's opening store, so
                // the claim itself is the acquire of that window's
                // bound_/window_end_ — a straggler still looping after the
                // previous window completed either claims validly in the
                // new window or parks; it can never consume a claim with
                // stale window state or touch done_ outside its window.
                std::uint64_t seen_gen =
                    claim_.load(std::memory_order_acquire) >> kClaimGenShift;
                for (;;) {
                    std::uint64_t c = claim_.load(std::memory_order_acquire);
                    if ((c >> kClaimGenShift) == seen_gen) {
                        if (stop_.load(std::memory_order_acquire))
                            return;
                        std::this_thread::yield();
                        continue;
                    }
                    if ((c & kClaimIndexMask) >= domains_.size()) {
                        seen_gen = c >> kClaimGenShift;  // exhausted: park
                        continue;
                    }
                    if (!claim_.compare_exchange_weak(
                            c, c + 1, std::memory_order_acq_rel,
                            std::memory_order_relaxed))
                        continue;
                    runDomain(domains_[c & kClaimIndexMask], bound_);
                    done_.fetch_add(1, std::memory_order_release);
                }
            });
        }
    }

    deliverPending();
    for (;;) {
        Cycle next = kCycleMax;
        for (const Domain &d : domains_)
            next = std::min(next, d.eq->nextEventCycle());
        if (next == kCycleMax)
            return true;  // every queue drained, no messages in flight
        if (next > opts.max_cycles) {
            // Early stop: advance every non-drained domain's clock to the
            // bound (EventQueue::run's continuous-time contract), so
            // back-to-back runs see continuous time exactly like a plain
            // eq.run(max_cycles) would.
            for (Domain &d : domains_)
                d.eq->run(opts.max_cycles);
            rethrowDomainErrors();
            return false;
        }
        Cycle bound = next > kCycleMax - (q - 1) ? kCycleMax : next + (q - 1);
        bound = std::min(bound, opts.max_cycles);
        runWindow(bound, threads);
        ++quanta_;
        rethrowDomainErrors();
        if (boundary_hook_)
            boundary_hook_(bound);
        deliverPending();
    }
}

}  // namespace maple::sim
