/**
 * @file
 * Lightweight statistics: named counters, averages and histograms that
 * hardware models register into a StatGroup and the harness can dump.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/log.hpp"

namespace maple::sim {

/** Monotonic event counter. */
class Counter {
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running average of sampled values (e.g. load latency). */
class Average {
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram (linear buckets, last bucket is overflow). */
class Histogram {
  public:
    Histogram(double bucket_width = 1.0, size_t buckets = 64)
        : width_(bucket_width), counts_(buckets, 0)
    {
        MAPLE_ASSERT(bucket_width > 0 && buckets > 0);
    }

    void
    sample(double v)
    {
        size_t idx = v < 0 ? 0 : static_cast<size_t>(v / width_);
        idx = std::min(idx, counts_.size() - 1);
        ++counts_[idx];
        ++total_;
        max_ = std::max(max_, v);
    }

    std::uint64_t total() const { return total_; }
    double maxSample() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    double
    percentile(double p) const
    {
        if (total_ == 0)
            return 0.0;
        std::uint64_t target = static_cast<std::uint64_t>(p * static_cast<double>(total_));
        std::uint64_t seen = 0;
        for (size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen > target)
                return static_cast<double>(i) * width_;
        }
        return static_cast<double>(counts_.size() - 1) * width_;
    }

  private:
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double max_ = 0.0;
};

/** Hierarchical, name-addressed registry of stats for dumping. */
class StatGroup {
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    Counter &counter(const std::string &name) { return counters_[name]; }
    Average &average(const std::string &name) { return averages_[name]; }

    const std::map<std::string, Counter> &counters() const { return counters_; }
    const std::map<std::string, Average> &averages() const { return averages_; }
    const std::string &name() const { return name_; }

    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    void
    reset()
    {
        for (auto &[k, c] : counters_)
            c.reset();
        for (auto &[k, a] : averages_)
            a.reset();
    }

    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
};

/** Geometric mean helper used by the figure harness. */
double geomean(const std::vector<double> &xs);

}  // namespace maple::sim
