/**
 * @file
 * Lightweight statistics: named counters, averages and histograms that
 * hardware models register into a StatGroup and the harness can dump.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "ckpt/serial.hpp"
#include "sim/log.hpp"

namespace maple::sim {

/** Monotonic event counter. */
class Counter {
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    void saveState(ckpt::Sink &out) const { out.u64(value_); }
    void loadState(ckpt::Source &in) { value_ = in.u64(); }

  private:
    std::uint64_t value_ = 0;
};

/** Running average of sampled values (e.g. load latency), with min/max. */
class Average {
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    std::uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    void
    saveState(ckpt::Sink &out) const
    {
        out.f64(sum_);
        out.u64(count_);
        out.f64(min_);
        out.f64(max_);
    }

    void
    loadState(ckpt::Source &in)
    {
        sum_ = in.f64();
        count_ = in.u64();
        min_ = in.f64();
        max_ = in.f64();
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram (linear buckets, last bucket is overflow). */
class Histogram {
  public:
    Histogram(double bucket_width = 1.0, size_t buckets = 64)
        : width_(bucket_width), counts_(buckets, 0)
    {
        MAPLE_ASSERT(bucket_width > 0 && buckets > 0);
    }

    void
    sample(double v)
    {
        size_t idx = v < 0 ? 0 : static_cast<size_t>(v / width_);
        idx = std::min(idx, counts_.size() - 1);
        ++counts_[idx];
        ++total_;
        max_ = std::max(max_, v);
    }

    std::uint64_t total() const { return total_; }
    double maxSample() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /**
     * Estimated p-quantile (p in [0, 1]), interpolating linearly within the
     * covering bucket -- a bucket holding ranks [seen, seen+c) maps the
     * target rank onto a fraction of the bucket's width rather than snapping
     * to its lower edge.
     */
    double
    percentile(double p) const
    {
        if (total_ == 0)
            return 0.0;
        double target = p * static_cast<double>(total_);
        std::uint64_t seen = 0;
        for (size_t i = 0; i < counts_.size(); ++i) {
            std::uint64_t c = counts_[i];
            if (c == 0)
                continue;
            if (static_cast<double>(seen) + static_cast<double>(c) > target) {
                double frac = (target - static_cast<double>(seen)) /
                              static_cast<double>(c);
                return (static_cast<double>(i) + frac) * width_;
            }
            seen += c;
        }
        return max_;  // p == 1.0 (or rounding): the largest observed sample
    }

    void
    reset()
    {
        counts_.assign(counts_.size(), 0);
        total_ = 0;
        max_ = 0.0;
    }

    void
    saveState(ckpt::Sink &out) const
    {
        out.f64(width_);
        out.vecU64(counts_);
        out.u64(total_);
        out.f64(max_);
    }

    void
    loadState(ckpt::Source &in)
    {
        width_ = in.f64();
        counts_ = in.vecU64();
        total_ = in.u64();
        max_ = in.f64();
    }

  private:
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double max_ = 0.0;
};

/** Hierarchical, name-addressed registry of stats for dumping. */
class StatGroup {
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    Counter &counter(const std::string &name) { return counters_[name]; }
    Average &average(const std::string &name) { return averages_[name]; }

    /**
     * Registered histogram; geometry arguments apply only on first use
     * (later calls return the existing histogram unchanged).
     */
    Histogram &
    histogram(const std::string &name, double bucket_width = 1.0,
              size_t buckets = 64)
    {
        auto [it, inserted] =
            histograms_.try_emplace(name, bucket_width, buckets);
        return it->second;
    }

    const std::map<std::string, Counter> &counters() const { return counters_; }
    const std::map<std::string, Average> &averages() const { return averages_; }
    const std::map<std::string, Histogram> &histograms() const { return histograms_; }
    const std::string &name() const { return name_; }

    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    void
    reset()
    {
        for (auto &[k, c] : counters_)
            c.reset();
        for (auto &[k, a] : averages_)
            a.reset();
        for (auto &[k, h] : histograms_)
            h.reset();
    }

    std::string dump() const;

    /**
     * Snapshot support. loadState() must never erase map entries: hardware
     * models hold borrowed pointers into this group's maps (e.g. Dram's
     * per-class latency histograms), so entries are found-or-created and
     * overwritten in place.
     */
    void
    saveState(ckpt::Sink &out) const
    {
        out.u64(counters_.size());
        for (const auto &[k, c] : counters_) {
            out.str(k);
            c.saveState(out);
        }
        out.u64(averages_.size());
        for (const auto &[k, a] : averages_) {
            out.str(k);
            a.saveState(out);
        }
        out.u64(histograms_.size());
        for (const auto &[k, h] : histograms_) {
            out.str(k);
            h.saveState(out);
        }
    }

    void
    loadState(ckpt::Source &in)
    {
        for (std::uint64_t n = in.u64(); n > 0; --n) {
            std::string k = in.str();
            counters_[k].loadState(in);
        }
        for (std::uint64_t n = in.u64(); n > 0; --n) {
            std::string k = in.str();
            averages_[k].loadState(in);
        }
        for (std::uint64_t n = in.u64(); n > 0; --n) {
            std::string k = in.str();
            histograms_.try_emplace(k).first->second.loadState(in);
        }
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
};

/** Geometric mean helper used by the figure harness. */
double geomean(const std::vector<double> &xs);

}  // namespace maple::sim
