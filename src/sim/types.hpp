/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */
#pragma once

#include <cstdint>
#include <limits>

namespace maple::sim {

/** Simulated time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** A (virtual or physical) memory address in the simulated machine. */
using Addr = std::uint64_t;

/** Sentinel for "no cycle" / "never". */
inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid address. */
inline constexpr Addr kBadAddr = std::numeric_limits<Addr>::max();

/** Identifier of a hardware tile on the mesh (core, MAPLE, memory...). */
using TileId = std::uint32_t;

/** Identifier of a simulated software thread. */
using ThreadId = std::uint32_t;

inline constexpr TileId kBadTile = 0xffffffffu;

}  // namespace maple::sim
