/**
 * @file
 * Minimal gem5-style logging/termination helpers.
 *
 * panic()  - internal simulator invariant violated (a bug): aborts.
 * fatal()  - unrecoverable *user* error (bad config/arguments): exits(1).
 * warn()   - suspicious but survivable condition.
 * inform() - status messages.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace maple::sim {

namespace detail {

template <typename... Args>
std::string
formatString(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        int n = std::snprintf(nullptr, 0, fmt, args...);
        if (n <= 0)
            return std::string(fmt);
        std::string out(static_cast<size_t>(n), '\0');
        std::snprintf(out.data(), out.size() + 1, fmt, args...);
        return out;
    }
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

}  // namespace detail

#define MAPLE_PANIC(...) \
    ::maple::sim::detail::panicImpl(__FILE__, __LINE__, \
        ::maple::sim::detail::formatString(__VA_ARGS__))

#define MAPLE_FATAL(...) \
    ::maple::sim::detail::fatalImpl(__FILE__, __LINE__, \
        ::maple::sim::detail::formatString(__VA_ARGS__))

#define MAPLE_WARN(...) \
    ::maple::sim::detail::warnImpl(::maple::sim::detail::formatString(__VA_ARGS__))

#define MAPLE_INFORM(...) \
    ::maple::sim::detail::informImpl(::maple::sim::detail::formatString(__VA_ARGS__))

/** Assert a simulator invariant; panics (never compiled out) on failure. */
#define MAPLE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            MAPLE_PANIC("assertion failed: %s %s", #cond, \
                ::maple::sim::detail::formatString("" __VA_ARGS__).c_str()); \
        } \
    } while (0)

}  // namespace maple::sim
