/**
 * @file
 * Tiny C++20 coroutine toolkit used to express simulated software.
 *
 * Simulated threads are coroutines that co_await on hardware: awaiting a
 * memory access suspends the coroutine until the corresponding response event
 * fires in the EventQueue. This keeps workloads readable (straight-line code)
 * while the simulation stays event-driven and deterministic.
 *
 *  - Task<T>:   lazily-started coroutine, awaitable, symmetric transfer.
 *  - Future<T>: externally-fulfilled completion (one waiter).
 *  - delay():   awaitable that costs simulated cycles.
 *  - spawn():   runs a Task<> to completion as a root, returns a Join.
 */
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/types.hpp"

namespace maple::sim {

template <typename T = void>
class Task;

namespace detail {

struct PromiseBase {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    struct FinalAwaiter {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) const noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
    std::optional<T> value;

    Task<T> get_return_object();
    void return_value(T v) { value.emplace(std::move(v)); }

    T
    result()
    {
        if (exception)
            std::rethrow_exception(exception);
        MAPLE_ASSERT(value.has_value(), "task finished without a value");
        return std::move(*value);
    }
};

template <>
struct Promise<void> : PromiseBase {
    Task<void> get_return_object();
    void return_void() const noexcept {}

    void
    result() const
    {
        if (exception)
            std::rethrow_exception(exception);
    }
};

}  // namespace detail

/**
 * A lazily-started coroutine returning T. Owns its frame; moving transfers
 * ownership. co_await-ing a Task starts it and resumes the awaiter when the
 * task completes (symmetric transfer, no stack growth).
 */
template <typename T>
class [[nodiscard]] Task {
  public:
    using promise_type = detail::Promise<T>;

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
    Task(Task &&other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }
    bool done() const { return handle_ && handle_.done(); }

    /** Awaiter: starts the child task, resumes awaiter at completion. */
    auto
    operator co_await() &&
    {
        struct Awaiter {
            std::coroutine_handle<promise_type> h;

            bool await_ready() const noexcept { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) const noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            T await_resume() const { return h.promise().result(); }
        };
        return Awaiter{handle_};
    }

    /** Release ownership (used by spawn()). */
    std::coroutine_handle<promise_type> release() { return std::exchange(handle_, nullptr); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

namespace detail {

template <typename T>
Task<T>
Promise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void>
Promise<void>::get_return_object()
{
    return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

/**
 * Handle to a spawned root task. Lets the harness detect completion and
 * rethrow any exception that escaped the coroutine.
 */
class Join {
  public:
    struct State {
        bool done = false;
        std::exception_ptr exception;
    };

    Join() : state_(std::make_shared<State>()) {}

    bool done() const { return state_->done; }

    /** Rethrows any stored exception; asserts completion. */
    void
    get() const
    {
        MAPLE_ASSERT(state_->done, "join on unfinished task");
        if (state_->exception)
            std::rethrow_exception(state_->exception);
    }

    std::shared_ptr<State> state() const { return state_; }

  private:
    std::shared_ptr<State> state_;
};

namespace detail {

/** Self-destroying wrapper coroutine used by spawn(). */
struct Detached {
    struct promise_type {
        Detached get_return_object() const noexcept { return {}; }
        std::suspend_never initial_suspend() const noexcept { return {}; }
        std::suspend_never final_suspend() const noexcept { return {}; }
        void return_void() const noexcept {}
        void unhandled_exception() const noexcept { std::terminate(); }
    };
};

inline Detached
spawnImpl(Task<void> task, std::shared_ptr<Join::State> st)
{
    try {
        co_await std::move(task);
    } catch (...) {
        st->exception = std::current_exception();
    }
    st->done = true;
}

inline Detached
spawnDetachedImpl(EventQueue &eq, Task<void> task)
{
    try {
        co_await std::move(task);
    } catch (...) {
        eq.reportTaskError(std::current_exception());
    }
}

}  // namespace detail

/**
 * Start @p task as a root coroutine. The frame self-destroys on completion.
 * @return a Join the caller can poll / get() after the EventQueue drains.
 */
inline Join
spawn(Task<void> task)
{
    Join join;
    detail::spawnImpl(std::move(task), join.state());
    return join;
}

/**
 * Start @p task as a detached root coroutine whose Join nobody will poll
 * (device-internal helpers: async scratchpad fills, LIMA workers, drain
 * engines). An exception escaping the task is routed to
 * EventQueue::reportTaskError and rethrown from the driving run() — with a
 * plain discarded spawn() it would be swallowed with the Join.
 */
inline void
spawnDetached(EventQueue &eq, Task<void> task)
{
    detail::spawnDetachedImpl(eq, std::move(task));
}

/**
 * Awaitable that suspends the coroutine for @p cycles simulated cycles.
 * Rides the EventQueue's pooled coroutine-resume path: suspending allocates
 * nothing, so delay() is free to sit on every hop of every hot loop.
 */
inline auto
delay(EventQueue &eq, Cycle cycles)
{
    struct Awaiter {
        EventQueue &eq;
        Cycle cycles;

        bool await_ready() const noexcept { return cycles == 0; }

        void
        await_suspend(std::coroutine_handle<> h) const
        {
            eq.scheduleResumeIn(cycles, h);
        }

        void await_resume() const noexcept {}
    };
    return Awaiter{eq, cycles};
}

/**
 * One-shot, externally-fulfilled completion carrying a copyable value of
 * type T. Any number of coroutines may await it (e.g. loads merged into one
 * cache MSHR); all are resumed in FIFO order when the value is set.
 * Fulfilling before the first await is fine.
 */
template <typename T>
class Future {
  public:
    Future() : state_(std::make_shared<State>()) {}

    /** Fulfil the future, resuming all waiters immediately (FIFO). */
    void
    set(T value) const
    {
        MAPLE_ASSERT(!state_->value.has_value(), "future fulfilled twice");
        state_->value.emplace(std::move(value));
        auto waiters = std::move(state_->waiters);
        state_->waiters.clear();
        for (auto w : waiters)
            w.resume();
    }

    bool ready() const { return state_->value.has_value(); }

    auto
    operator co_await() const
    {
        struct Awaiter {
            std::shared_ptr<State> st;

            bool await_ready() const noexcept { return st->value.has_value(); }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                st->waiters.push_back(h);
            }

            T await_resume() const { return *st->value; }
        };
        return Awaiter{state_};
    }

  private:
    struct State {
        std::optional<T> value;
        std::vector<std::coroutine_handle<>> waiters;
    };

    std::shared_ptr<State> state_;
};

/** Future<> carrying no payload; used as a pure completion signal. */
struct Unit {};
using Signal = Future<Unit>;

}  // namespace maple::sim
