/**
 * @file
 * Discrete-event simulation engine.
 *
 * All simulated hardware shares one EventQueue. Events are callbacks scheduled
 * at an absolute cycle; ties are broken by insertion order so simulations are
 * fully deterministic.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace maple::trace {
class TraceManager;
}

namespace maple::sim {

class EventQueue {
  public:
    using Callback = std::function<void()>;

    /** Hook invoked as time advances (set by trace::TraceManager). */
    using TraceHook = void (*)(trace::TraceManager *, Cycle now);

    /** Schedule @p cb at absolute cycle @p when (must be >= now()). */
    void
    schedule(Cycle when, Callback cb)
    {
        MAPLE_ASSERT(when >= now_, "scheduling into the past (%llu < %llu)",
                     (unsigned long long)when, (unsigned long long)now_);
        heap_.push(Event{when, seq_++, std::move(cb)});
    }

    /** Schedule @p cb @p delta cycles from now. */
    void scheduleIn(Cycle delta, Callback cb) { schedule(now_ + delta, std::move(cb)); }

    /** Current simulated time. */
    Cycle now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /** Total events executed so far (for microbenchmarks and stats). */
    std::uint64_t executed() const { return executed_; }

    /**
     * Attach/detach the tracing subsystem. The tracer only observes: it is
     * invoked between the time advance and the event callback, never
     * schedules events, and therefore cannot perturb the simulation.
     */
    void
    attachTracer(trace::TraceManager *t, TraceHook hook)
    {
        tracer_ = t;
        trace_hook_ = t ? hook : nullptr;
    }

    void
    detachTracer()
    {
        tracer_ = nullptr;
        trace_hook_ = nullptr;
    }

    /** The attached tracer, or nullptr (the tracing-off fast path). */
    trace::TraceManager *tracer() const { return tracer_; }

    /**
     * Pop and execute the next event, advancing time.
     * @return false when the queue was empty.
     */
    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        // Move the event out before popping so the callback may schedule.
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        MAPLE_ASSERT(ev.when >= now_);
        now_ = ev.when;
        ++executed_;
        // Sample probes before the callback runs: between events the machine
        // state is constant, so probes read the exact state at each sampling
        // point inside the gap just crossed.
        if (trace_hook_)
            trace_hook_(tracer_, now_);
        ev.cb();
        return true;
    }

    /**
     * Run until the queue drains or @p max_cycles is reached.
     * @return true if the queue drained (simulation quiesced).
     */
    bool
    run(Cycle max_cycles = kCycleMax)
    {
        while (!heap_.empty()) {
            if (heap_.top().when > max_cycles)
                return false;
            runOne();
        }
        return true;
    }

  private:
    struct Event {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    trace::TraceManager *tracer_ = nullptr;
    TraceHook trace_hook_ = nullptr;
};

}  // namespace maple::sim
