/**
 * @file
 * Discrete-event simulation engine.
 *
 * All simulated hardware shares one EventQueue. Events are scheduled at an
 * absolute cycle; ties are broken by insertion order so simulations are fully
 * deterministic.
 *
 * Scheduling core (the simulator's hottest path) is a hierarchical timing
 * wheel in the style of gem5 / Varghese & Lauck:
 *
 *  - Near future (delta < kWheelHorizon): a power-of-two array of buckets,
 *    one bucket per cycle in the window [now, now + horizon). Each bucket is
 *    an intrusive singly-linked FIFO, so same-cycle events preserve insertion
 *    order by construction. An occupancy bitmap (one bit per bucket) finds
 *    the next non-empty bucket with a few word scans instead of a heap
 *    percolation.
 *
 *  - Far future (delta >= kWheelHorizon): a small overflow min-heap ordered
 *    by (cycle, sequence). As simulated time advances, overflow events whose
 *    cycle enters the wheel window cascade into their bucket. All overflow
 *    events for a cycle were necessarily scheduled before any direct wheel
 *    event for that cycle (their schedule-time distance exceeded the horizon,
 *    so their schedule time was strictly earlier), so the cascaded chain is
 *    spliced in *front* of the bucket and global FIFO order is preserved.
 *
 *  - Event nodes are intrusive and pooled (chunk-allocated, free-list
 *    recycled): steady-state scheduling performs no heap allocation. Events
 *    come in two kinds: a type-erased std::function callback, and a raw
 *    std::coroutine_handle<> resume used by the coroutine toolkit
 *    (sim/coro.hpp) — delay() and every co_await wakeup ride the handle path
 *    and never construct a std::function.
 */
#pragma once

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace maple::trace {
class TraceManager;
}

namespace maple::fault {
class FaultInjector;
}

namespace maple::sim {

class EventQueue {
  public:
    using Callback = std::function<void()>;

    /** Wheel window: deltas below this stay out of the overflow heap. */
    static constexpr Cycle kWheelHorizon = 1024;

    /** Hook invoked as time advances (set by trace::TraceManager). */
    using TraceHook = void (*)(trace::TraceManager *, Cycle now);

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p cb at absolute cycle @p when (must be >= now()). */
    void
    schedule(Cycle when, Callback cb)
    {
        MAPLE_ASSERT(when >= now_, "scheduling into the past (%llu < %llu)",
                     (unsigned long long)when, (unsigned long long)now_);
        EventNode *n = allocNode();
        n->when = when;
        n->coro = nullptr;
        n->cb = std::move(cb);
        insert(n);
    }

    /** Schedule @p cb @p delta cycles from now. */
    void scheduleIn(Cycle delta, Callback cb) { schedule(now_ + delta, std::move(cb)); }

    /**
     * Schedule a coroutine resume at absolute cycle @p when. This is the
     * allocation-free fast path: no std::function is constructed, the pooled
     * node stores the raw handle.
     */
    void
    scheduleResume(Cycle when, std::coroutine_handle<> h)
    {
        MAPLE_ASSERT(when >= now_, "scheduling into the past (%llu < %llu)",
                     (unsigned long long)when, (unsigned long long)now_);
        EventNode *n = allocNode();
        n->when = when;
        n->coro = h;
        insert(n);
    }

    /** Schedule a coroutine resume @p delta cycles from now. */
    void scheduleResumeIn(Cycle delta, std::coroutine_handle<> h)
    {
        scheduleResume(now_ + delta, h);
    }

    /** Current simulated time. */
    Cycle now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return pending() == 0; }

    /** Number of pending events. */
    size_t pending() const { return wheel_count_ + overflow_.size(); }

    /**
     * Cycle of the earliest pending event, or kCycleMax when empty. A pure
     * peek: no cascade, no time advance. The sharded engine (sim/sharded.hpp)
     * uses it to skip idle gaps between bulk-synchronous quanta without
     * perturbing the queue.
     */
    Cycle
    nextEventCycle() const
    {
        Cycle next = kCycleMax;
        if (wheel_count_ > 0)
            next = buckets_[nextOccupiedBucket()].head->when;
        if (!overflow_.empty() && overflow_.front()->when < next)
            next = overflow_.front()->when;
        return next;
    }

    /** Total events executed so far (for microbenchmarks and stats). */
    std::uint64_t executed() const { return executed_; }

    /**
     * Monotonic ticket allocator, deterministic per run. Used by the memory
     * fabric to stamp MemRequest transaction ids; ids never influence
     * timing, only attribution.
     */
    std::uint64_t allocTicket() { return next_ticket_++; }

    /** Pending events parked in the far-future overflow heap (telemetry). */
    size_t overflowPending() const { return overflow_.size(); }

    /** Event nodes ever carved from the pool (bounded when recycling works). */
    size_t poolAllocated() const { return pool_allocated_; }

    /** Event nodes currently on the free list. */
    size_t
    poolFree() const
    {
        size_t n = 0;
        for (EventNode *f = free_; f; f = f->next)
            ++n;
        return n;
    }

    /**
     * Attach/detach the tracing subsystem. The tracer only observes: it is
     * invoked between the time advance and the event callback, never
     * schedules events, and therefore cannot perturb the simulation.
     */
    void
    attachTracer(trace::TraceManager *t, TraceHook hook)
    {
        tracer_ = t;
        trace_hook_ = t ? hook : nullptr;
    }

    void
    detachTracer()
    {
        tracer_ = nullptr;
        trace_hook_ = nullptr;
    }

    /** The attached tracer, or nullptr (the tracing-off fast path). */
    trace::TraceManager *tracer() const { return tracer_; }

    /**
     * Attach/detach the fault-injection & liveness subsystem. Like the
     * tracer, the injector is consulted by instrumentation sites through
     * this pointer (fault::active()); with none attached every site is a
     * single null-pointer check.
     */
    void attachFaultInjector(fault::FaultInjector *f) { fault_ = f; }
    void detachFaultInjector() { fault_ = nullptr; }

    /** The attached fault injector, or nullptr (the faults-off fast path). */
    fault::FaultInjector *faultInjector() const { return fault_; }

    /**
     * Record an exception that escaped a detached root coroutine (see
     * sim::spawnDetached). The first error wins; run()/runOne() rethrow it
     * as soon as the dispatching event returns, so a typed sim::FatalError
     * thrown inside a device-internal task surfaces to the harness instead
     * of hitting std::terminate in a detached frame.
     */
    void
    reportTaskError(std::exception_ptr e)
    {
        if (!task_error_)
            task_error_ = std::move(e);
    }

    /** Pending detached-task error, if any (cleared by the rethrow). */
    bool hasTaskError() const { return task_error_ != nullptr; }

    /**
     * Engine bookkeeping captured by snapshot/restore (src/ckpt). Only valid
     * at a quiesced point: with zero pending events there are no live wheel
     * buckets, overflow nodes or coroutine frames to serialize, so the
     * engine's whole restorable state is these four words.
     */
    struct EngineState {
        Cycle now = 0;
        std::uint64_t seq = 0;
        std::uint64_t executed = 0;
        std::uint64_t next_ticket = 1;
    };

    EngineState
    engineState() const
    {
        MAPLE_ASSERT(pending() == 0,
                     "engineState() requires a quiesced event queue");
        return EngineState{now_, seq_, executed_, next_ticket_};
    }

    void
    setEngineState(const EngineState &st)
    {
        MAPLE_ASSERT(pending() == 0,
                     "setEngineState() requires a quiesced event queue");
        MAPLE_ASSERT(st.now >= now_, "restoring time backwards");
        now_ = st.now;
        seq_ = st.seq;
        executed_ = st.executed;
        next_ticket_ = st.next_ticket;
    }

    /**
     * Pop and execute the next event, advancing time.
     * @return false when the queue was empty.
     */
    bool
    runOne()
    {
        EventNode *n = popNext();
        if (!n)
            return false;
        dispatch(n);
        rethrowTaskError();
        return true;
    }

    /**
     * Run until the queue drains or simulated time would pass @p max_cycles.
     * @return true if the queue drained (simulation quiesced).
     *
     * On an early stop (pending events beyond the bound) now() advances to
     * @p max_cycles: the simulation observed the full interval and found
     * nothing left to do in it, so back-to-back run(t1), run(t2) calls see
     * continuous time. When the queue drains, now() stays at the cycle of
     * the last executed event.
     */
    bool
    run(Cycle max_cycles = kCycleMax)
    {
        for (;;) {
            cascade();
            if (wheel_count_ == 0) {
                if (overflow_.empty())
                    return true;
                // Wheel empty: fast-forward the window base to the nearest
                // far-future event so its cycle group can cascade.
                Cycle next = overflow_.front()->when;
                if (next > max_cycles) {
                    now_ = std::max(now_, max_cycles);
                    return false;
                }
                now_ = next;
                cascade();
            }
            size_t b = nextOccupiedBucket();
            EventNode *n = buckets_[b].head;
            if (n->when > max_cycles) {
                now_ = std::max(now_, max_cycles);
                return false;
            }
            popFromBucket(b);
            dispatch(n);
            rethrowTaskError();
        }
    }

  private:
    void
    rethrowTaskError()
    {
        if (task_error_) {
            std::exception_ptr e = std::exchange(task_error_, nullptr);
            std::rethrow_exception(e);
        }
    }

    static constexpr size_t kWheelMask = kWheelHorizon - 1;
    static constexpr size_t kBitmapWords = kWheelHorizon / 64;
    static constexpr size_t kPoolChunk = 256;
    static_assert((kWheelHorizon & kWheelMask) == 0, "wheel size: power of two");

    /**
     * Pooled intrusive event. Exactly one of {coro, cb} is set: resuming a
     * coroutine needs no type erasure, so the common co_await wakeup skips
     * std::function entirely.
     */
    struct EventNode {
        Cycle when = 0;
        std::uint64_t seq = 0;  ///< overflow-heap tie-breaker only
        EventNode *next = nullptr;
        std::coroutine_handle<> coro = nullptr;
        Callback cb;
    };

    /** Intrusive FIFO of same-cycle events. */
    struct Bucket {
        EventNode *head = nullptr;
        EventNode *tail = nullptr;
    };

    EventNode *
    allocNode()
    {
        if (EventNode *n = free_) {
            free_ = n->next;
            return n;
        }
        chunks_.push_back(std::make_unique<EventNode[]>(kPoolChunk));
        EventNode *chunk = chunks_.back().get();
        // Node 0 is returned; the rest seed the free list.
        for (size_t i = kPoolChunk - 1; i >= 1; --i) {
            chunk[i].next = free_;
            free_ = &chunk[i];
        }
        pool_allocated_ += kPoolChunk;
        return &chunk[0];
    }

    void
    freeNode(EventNode *n)
    {
        n->next = free_;
        free_ = n;
    }

    void
    insert(EventNode *n)
    {
        if (n->when - now_ < kWheelHorizon) {
            size_t b = n->when & kWheelMask;
            n->next = nullptr;
            Bucket &bk = buckets_[b];
            if (bk.tail)
                bk.tail->next = n;
            else
                bk.head = n;
            bk.tail = n;
            occupied_[b >> 6] |= 1ull << (b & 63);
            ++wheel_count_;
        } else {
            n->seq = seq_++;
            overflow_.push_back(n);
            std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
        }
    }

    struct OverflowLater {
        bool
        operator()(const EventNode *a, const EventNode *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    /**
     * Move overflow events whose cycle entered the wheel window into their
     * buckets. Each cycle's group is spliced in front of the bucket: every
     * overflow event for a cycle predates every direct wheel event for it
     * (see file comment), so prepending restores global insertion order.
     */
    void
    cascade()
    {
        while (!overflow_.empty() && overflow_.front()->when - now_ < kWheelHorizon) {
            const Cycle c = overflow_.front()->when;
            EventNode *head = nullptr, *tail = nullptr;
            do {
                std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
                EventNode *n = overflow_.back();
                overflow_.pop_back();
                if (tail)
                    tail->next = n;
                else
                    head = n;
                tail = n;
                ++wheel_count_;
            } while (!overflow_.empty() && overflow_.front()->when == c);
            size_t b = c & kWheelMask;
            Bucket &bk = buckets_[b];
            tail->next = bk.head;
            bk.head = head;
            if (!bk.tail)
                bk.tail = tail;
            occupied_[b >> 6] |= 1ull << (b & 63);
        }
    }

    /** Next event: cascade, fast-forward an empty wheel, pop the bucket head. */
    EventNode *
    popNext()
    {
        cascade();
        if (wheel_count_ == 0) {
            if (overflow_.empty())
                return nullptr;
            now_ = overflow_.front()->when;
            cascade();
        }
        size_t b = nextOccupiedBucket();
        EventNode *n = buckets_[b].head;
        popFromBucket(b);
        return n;
    }

    /**
     * Index of the bucket holding the earliest pending wheel event. Scans the
     * occupancy bitmap circularly starting at now's own slot; because every
     * wheel event lies within [now, now + horizon), bucket distance from the
     * current slot equals time distance.
     */
    size_t
    nextOccupiedBucket() const
    {
        const size_t p = now_ & kWheelMask;
        size_t w = p >> 6;
        std::uint64_t word = occupied_[w] & (~0ull << (p & 63));
        for (;;) {
            if (word)
                return (w << 6) + static_cast<size_t>(std::countr_zero(word));
            w = (w + 1) & (kBitmapWords - 1);
            word = occupied_[w];
        }
    }

    void
    popFromBucket(size_t b)
    {
        Bucket &bk = buckets_[b];
        EventNode *n = bk.head;
        bk.head = n->next;
        if (!bk.head) {
            bk.tail = nullptr;
            occupied_[b >> 6] &= ~(1ull << (b & 63));
        }
        --wheel_count_;
    }

    /**
     * Advance time to the event, notify the tracer, recycle the node, run.
     * The node is released *before* the callback/coroutine executes, so work
     * it schedules may reuse it — and a callback scheduling into the queue
     * during dispatch never touches a container mid-mutation.
     */
    void
    dispatch(EventNode *n)
    {
        MAPLE_ASSERT(n->when >= now_);
        now_ = n->when;
        ++executed_;
        // Sample probes before the callback runs: between events the machine
        // state is constant, so probes read the exact state at each sampling
        // point inside the gap just crossed.
        if (trace_hook_)
            trace_hook_(tracer_, now_);
        if (n->coro) {
            std::coroutine_handle<> h = n->coro;
            n->coro = nullptr;
            freeNode(n);
            h.resume();
        } else {
            Callback cb = std::move(n->cb);
            n->cb = nullptr;
            freeNode(n);
            cb();
        }
    }

    Bucket buckets_[kWheelHorizon];
    std::uint64_t occupied_[kBitmapWords] = {};
    size_t wheel_count_ = 0;
    std::vector<EventNode *> overflow_;

    std::vector<std::unique_ptr<EventNode[]>> chunks_;
    EventNode *free_ = nullptr;
    size_t pool_allocated_ = 0;

    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t next_ticket_ = 1;
    trace::TraceManager *tracer_ = nullptr;
    TraceHook trace_hook_ = nullptr;
    fault::FaultInjector *fault_ = nullptr;
    std::exception_ptr task_error_;
};

}  // namespace maple::sim
