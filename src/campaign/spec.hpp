/**
 * @file
 * Campaign specification: a JSON document describing a set of jobs to run.
 *
 * Two job types:
 *  - "scenario": an in-process simulation (harness/scenario.hpp), the type
 *    that supports warm-image fan-out and double-run determinism checks;
 *  - "exec": an arbitrary child binary (argv + env), the type the fault
 *    matrix runs through the campaign service.
 *
 * Jobs come from a cartesian expansion -- "base" (a scenario job object)
 * crossed with "axes" (member name -> list of values) and "seeds" -- plus an
 * explicit "jobs" array appended verbatim. Expanded job names encode their
 * axis values ("technique=maple,queue_entries=8,seed=1") so manifests read
 * without cross-referencing.
 */
#pragma once

#include <string>
#include <vector>

#include "harness/json.hpp"

namespace maple::campaign {

namespace json = harness::json;

struct Job {
    std::string name;   ///< unique within the campaign
    std::string type;   ///< "scenario" or "exec"
    json::Value spec;   ///< the full job object (canonical form is dump())
};

struct CampaignSpec {
    std::string name = "campaign";
    unsigned workers = 2;    ///< max concurrent jobs (overridable on the CLI)
    unsigned runs = 1;       ///< 2 = run twice and require identical results
    double timeout_s = 300;  ///< per-job wall-clock budget

    /// @name Resilience knobs (defaults preserve pre-resilience behavior)
    /// @{
    unsigned retry_budget = 0;       ///< max retries per transiently-failed job
    double retry_backoff_base_s = 0.05;  ///< first backoff; doubles per retry
    double retry_backoff_cap_s = 2.0;    ///< backoff ceiling
    double heartbeat_timeout_s = 0;  ///< 0 = liveness detection off
    double grace_s = 2.0;            ///< SIGTERM -> SIGKILL escalation window
    /// @}

    json::Value doc;  ///< the parsed source document (for spec.json / resume)
    std::vector<Job> jobs;
};

/**
 * Parse and expand a campaign document. Scenario jobs are validated eagerly
 * (a typo fails the whole campaign at parse time, not one job at run time).
 * Throws json::JsonError on malformed input or duplicate job names.
 */
CampaignSpec parseCampaignSpec(const json::Value &doc);

}  // namespace maple::campaign
