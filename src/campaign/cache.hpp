/**
 * @file
 * Content-hashed result cache for campaign jobs.
 *
 * A job's cache key hashes everything its result can depend on:
 *  - the canonical JSON of the job spec (config + seed + variant axes) —
 *    minus "host_threads", which only changes how many host workers drive
 *    the (deterministic) simulation, never its result;
 *  - the cache format version and the snapshot format version;
 *  - the running campaign binary's content (code version: any rebuild of
 *    the simulator invalidates scenario results);
 *  - for exec jobs, the content of the executed binary.
 *
 * Entries are one JSON file per key, written atomically (tmp + rename), so
 * concurrent workers and interrupted campaigns never leave torn entries --
 * at worst a result is recomputed.
 *
 * Integrity: every entry wraps its payload with an FNV-64 content checksum
 * ({"fnv64": "<hex>", "payload": ...}). A corrupt, truncated or
 * checksum-mismatched entry is never trusted: load() logs it, deletes it,
 * counts the eviction (surfaced in the campaign manifest as
 * cache_evictions) and reports a miss so the job is recomputed.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "campaign/spec.hpp"

namespace maple::campaign {

/** Bump when the cached-result schema or key derivation changes. */
constexpr std::uint32_t kCacheVersion = 2;  // v2: checksum-wrapped entries

class ResultCache {
  public:
    /** @p dir is created on first store; @p enabled=false disables lookups. */
    ResultCache(std::string dir, bool enabled);

    /** Stable hex cache key for @p job (see file comment for inputs). */
    std::string keyFor(const Job &job) const;

    /**
     * Cached result payload, or nullopt on miss / disabled. A corrupt or
     * checksum-mismatched entry is logged to stderr, deleted, counted (see
     * evictions()) and reported as a miss.
     */
    std::optional<json::Value> load(const std::string &key) const;

    /** Atomically persist @p result (checksum-wrapped) under @p key. */
    void store(const std::string &key, const json::Value &result) const;

    bool enabled() const { return enabled_; }
    const std::string &dir() const { return dir_; }

    /** Corrupt entries evicted by load() over this cache's lifetime. */
    unsigned evictions() const { return evictions_; }

  private:
    std::string dir_;
    bool enabled_;
    mutable unsigned evictions_ = 0;
};

/**
 * FNV-1a over a file's bytes. Throws sim::ConfigError when the file cannot
 * be opened — a silent 0 would poison cache keys with colliding "absent"
 * hashes. Exposed for tests.
 */
std::uint64_t fileContentHash(const std::string &path);

}  // namespace maple::campaign
