/**
 * @file
 * Content-hashed result cache for campaign jobs.
 *
 * A job's cache key hashes everything its result can depend on:
 *  - the canonical JSON of the job spec (config + seed + variant axes) —
 *    minus "host_threads", which only changes how many host workers drive
 *    the (deterministic) simulation, never its result;
 *  - the cache format version and the snapshot format version;
 *  - the running campaign binary's content (code version: any rebuild of
 *    the simulator invalidates scenario results);
 *  - for exec jobs, the content of the executed binary.
 *
 * Entries are one JSON file per key, written atomically (tmp + rename), so
 * concurrent workers and interrupted campaigns never leave torn entries --
 * at worst a result is recomputed.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "campaign/spec.hpp"

namespace maple::campaign {

/** Bump when the cached-result schema or key derivation changes. */
constexpr std::uint32_t kCacheVersion = 1;

class ResultCache {
  public:
    /** @p dir is created on first store; @p enabled=false disables lookups. */
    ResultCache(std::string dir, bool enabled);

    /** Stable hex cache key for @p job (see file comment for inputs). */
    std::string keyFor(const Job &job) const;

    /** Cached result document, or nullopt on miss / disabled / parse error. */
    std::optional<json::Value> load(const std::string &key) const;

    /** Atomically persist @p result under @p key. */
    void store(const std::string &key, const json::Value &result) const;

    bool enabled() const { return enabled_; }
    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
    bool enabled_;
};

/** FNV-1a over a file's bytes (0 when unreadable). Exposed for tests. */
std::uint64_t fileContentHash(const std::string &path);

}  // namespace maple::campaign
