#include "campaign/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/error.hpp"

namespace maple::campaign {

void
Journal::open(const std::string &path, bool truncate)
{
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    MAPLE_CHECK(fd_ >= 0, sim::ConfigError, "cannot open journal %s: %s",
                path.c_str(), std::strerror(errno));
    // Exec'd job binaries must not inherit the journal fd.
    ::fcntl(fd_, F_SETFD, FD_CLOEXEC);
}

void
Journal::append(const json::Value &record)
{
    if (fd_ < 0)
        return;
    std::string line = json::dumpCompact(record);
    line.push_back('\n');
    // One write() to an O_APPEND fd: the line lands whole or not at all
    // (PIPE_BUF-sized lines; ours are well under 4K). A torn line can only
    // come from the kernel interrupting mid-write on a dying process, and
    // replayJournal() skips it.
    ssize_t n = ::write(fd_, line.data(), line.size());
    MAPLE_CHECK(n == static_cast<ssize_t>(line.size()), sim::FatalError,
                "journal append wrote %zd of %zu bytes: %s", n, line.size(),
                std::strerror(errno));
}

void
Journal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

JournalReplay
replayJournal(const std::string &path)
{
    JournalReplay rep;
    std::ifstream f(path);
    if (!f.good())
        return rep;
    std::string line;
    while (std::getline(f, line)) {
        if (line.empty())
            continue;
        json::Value rec;
        try {
            rec = json::parse(line);
        } catch (const json::JsonError &) {
            ++rep.torn_lines;
            continue;
        }
        const std::string event = rec.getString("event", "");
        if (event == "campaign") {
            rep.header_seen = true;
            rep.campaign = rec.getString("name", "");
            rep.spec_fnv = static_cast<std::uint64_t>(
                std::strtoull(rec.getString("spec_fnv", "0").c_str(),
                              nullptr, 16));
        } else if (event == "start") {
            JournalJob &j = rep.jobs[rec.getString("job", "")];
            ++j.attempts;
            j.in_flight = true;
        } else if (event == "finish") {
            JournalJob &j = rep.jobs[rec.getString("job", "")];
            j.in_flight = false;
            j.last_status = rec.getString("status", "");
            const bool retry = rec.getBool("retry", false);
            j.completed = !retry && (j.last_status == "ok" ||
                                     j.last_status == "cached");
        }
    }
    return rep;
}

std::uint64_t
specFingerprint(const json::Value &doc)
{
    const std::string s = json::dump(doc);
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace maple::campaign
