#include "campaign/spec.hpp"

#include <set>

#include "harness/scenario.hpp"

namespace maple::campaign {

namespace {

/** Axis value rendered for a job name ("maple", "8"); strings unquoted. */
std::string
valueLabel(const json::Value &v)
{
    if (v.isString())
        return v.asString();
    std::string s = json::dump(v);
    while (!s.empty() && s.back() == '\n')
        s.pop_back();
    return s;
}

}  // namespace

CampaignSpec
parseCampaignSpec(const json::Value &doc)
{
    MAPLE_CHECK(doc.isObject(), json::JsonError,
                "campaign spec is not an object");
    CampaignSpec c;
    c.name = doc.getString("name", c.name);
    c.workers = static_cast<unsigned>(doc.getInt("workers", c.workers));
    c.runs = static_cast<unsigned>(doc.getInt("runs", c.runs));
    c.timeout_s = doc.getDouble("timeout_s", c.timeout_s);
    MAPLE_CHECK(c.workers >= 1 && (c.runs == 1 || c.runs == 2) &&
                    c.timeout_s > 0,
                json::JsonError, "bad campaign parameters");
    c.retry_budget =
        static_cast<unsigned>(doc.getInt("retry_budget", c.retry_budget));
    c.retry_backoff_base_s =
        doc.getDouble("retry_backoff_base_s", c.retry_backoff_base_s);
    c.retry_backoff_cap_s =
        doc.getDouble("retry_backoff_cap_s", c.retry_backoff_cap_s);
    c.heartbeat_timeout_s =
        doc.getDouble("heartbeat_timeout_s", c.heartbeat_timeout_s);
    c.grace_s = doc.getDouble("grace_s", c.grace_s);
    MAPLE_CHECK(c.retry_backoff_base_s > 0 &&
                    c.retry_backoff_cap_s >= c.retry_backoff_base_s &&
                    c.heartbeat_timeout_s >= 0 && c.grace_s >= 0,
                json::JsonError, "bad campaign retry/liveness parameters");
    c.doc = doc;

    // Cartesian expansion: base x axes x seeds. Each variant carries a
    // label naming exactly the members that vary.
    if (const json::Value *base = doc.get("base")) {
        MAPLE_CHECK(base->isObject(), json::JsonError,
                    "\"base\" is not an object");
        std::vector<std::pair<std::string, json::Value>> variants;
        variants.emplace_back("", *base);

        auto expand = [&variants](const std::string &axis,
                                  const json::Array &values) {
            MAPLE_CHECK(!values.empty(), json::JsonError,
                        "axis \"%s\" has no values", axis.c_str());
            std::vector<std::pair<std::string, json::Value>> next;
            for (const auto &[label, v] : variants) {
                for (const json::Value &value : values) {
                    json::Value j = v;
                    j.set(axis, value);
                    std::string l = label.empty() ? "" : label + ",";
                    next.emplace_back(l + axis + "=" + valueLabel(value), j);
                }
            }
            variants = std::move(next);
        };

        if (const json::Value *axes = doc.get("axes")) {
            MAPLE_CHECK(axes->isObject(), json::JsonError,
                        "\"axes\" is not an object");
            for (const auto &[axis, values] : axes->asObject()) {
                MAPLE_CHECK(values.isArray(), json::JsonError,
                            "axis \"%s\" is not an array", axis.c_str());
                expand(axis, values.asArray());
            }
        }
        if (const json::Value *seeds = doc.get("seeds")) {
            MAPLE_CHECK(seeds->isArray(), json::JsonError,
                        "\"seeds\" is not an array");
            expand("seed", seeds->asArray());
        }

        for (auto &[label, v] : variants) {
            Job job;
            job.name = label.empty() ? "base" : label;
            job.type = v.getString("type", "scenario");
            MAPLE_CHECK(job.type == "scenario", json::JsonError,
                        "expanded jobs must be scenario jobs");
            job.spec = std::move(v);
            c.jobs.push_back(std::move(job));
        }
    }

    if (const json::Value *jobs = doc.get("jobs")) {
        MAPLE_CHECK(jobs->isArray(), json::JsonError,
                    "\"jobs\" is not an array");
        for (const json::Value &v : jobs->asArray()) {
            MAPLE_CHECK(v.isObject(), json::JsonError,
                        "job entry is not an object");
            Job job;
            job.name =
                v.getString("name", "job-" + std::to_string(c.jobs.size()));
            job.type = v.getString("type", "scenario");
            MAPLE_CHECK(job.type == "scenario" || job.type == "exec",
                        json::JsonError, "job \"%s\": unknown type \"%s\"",
                        job.name.c_str(), job.type.c_str());
            if (job.type == "exec") {
                const json::Value *argv = v.get("argv");
                MAPLE_CHECK(argv && argv->isArray() &&
                                !argv->asArray().empty(),
                            json::JsonError,
                            "exec job \"%s\" needs a non-empty \"argv\"",
                            job.name.c_str());
            }
            job.spec = v;
            c.jobs.push_back(std::move(job));
        }
    }

    MAPLE_CHECK(!c.jobs.empty(), json::JsonError, "campaign has no jobs");
    std::set<std::string> names;
    for (Job &job : c.jobs) {
        MAPLE_CHECK(names.insert(job.name).second, json::JsonError,
                    "duplicate job name \"%s\"", job.name.c_str());
        // Validate scenario jobs now so a typo fails fast, campaign-wide.
        if (job.type == "scenario")
            (void)harness::parseScenarioSpec(job.spec);
    }
    return c;
}

}  // namespace maple::campaign
