/**
 * @file
 * Campaign health machinery: worker liveness (heartbeat pipes), the
 * transient/permanent retry taxonomy with deterministic jittered backoff,
 * and the deterministic chaos-injection plan.
 *
 * Heartbeat protocol: each forked worker inherits the write end of a pipe
 * and writes one byte per progress beat (phase boundaries in scenario
 * children; exec children expose the fd as MAPLE_CAMPAIGN_HEARTBEAT_FD for
 * cooperating binaries). The runner drains the nonblocking read end every
 * poll; a worker with no beat for `heartbeat_timeout_s` is *hung* —
 * distinct from *slow*, which only the per-job wall-clock timeout bounds —
 * and is escalated SIGTERM → grace → SIGKILL and rescheduled as a
 * transient failure.
 *
 * Retry taxonomy: signal deaths, timeouts, hangs and unclassified nonzero
 * exits are transient (environmental, worth `retry_budget` attempts with
 * backoff); validation failures, nondeterminism verdicts, exec-not-found
 * (127) and typed `sim::ConfigError` reports on stderr are permanent —
 * retrying cannot fix a wrong spec or a wrong answer. A job that exhausts
 * the budget on transient failures is quarantined: recorded in the
 * manifest's `quarantine` section, never allowed to fail the campaign.
 *
 * Backoff mirrors the MapleDriver recovery discipline: deterministic
 * exponential (base doubled per attempt, capped) with jitter drawn from a
 * dedicated seeded RNG stream, so two runs of the same campaign retry at
 * identical offsets.
 *
 * Chaos: MAPLE_CAMPAIGN_CHAOS=<modes>:<seed>:<rate> with comma-separated
 * modes from {crash, hang, corrupt-cache, corrupt-snapshot, slow-io}.
 * Every injection decision is a pure function of (seed, site string), so a
 * chaos campaign is exactly reproducible.
 */
#pragma once

#include <cstdint>
#include <string>

#include "sim/random.hpp"

namespace maple::campaign {

// ---------------------------------------------------------------------------
// Worker liveness
// ---------------------------------------------------------------------------

/** Environment variable exposing the heartbeat fd to exec children. */
constexpr const char *kHeartbeatFdEnv = "MAPLE_CAMPAIGN_HEARTBEAT_FD";

/**
 * One worker's heartbeat channel. The parent creates it before fork, keeps
 * the (nonblocking) read end, and closes the write end; the child keeps
 * the write end. Movable only.
 */
class HeartbeatPipe {
  public:
    HeartbeatPipe() = default;
    ~HeartbeatPipe() { closeAll(); }
    HeartbeatPipe(const HeartbeatPipe &) = delete;
    HeartbeatPipe &operator=(const HeartbeatPipe &) = delete;

    /** Create the pipe; read end is O_NONBLOCK + FD_CLOEXEC. */
    void open();

    /** Child side, after fork: close the read end, keep the write end. */
    void becomeChild();

    /** Parent side, after fork: close the write end. */
    void becomeParent();

    /** Drain pending beats; @return true when at least one beat arrived. */
    bool drain();

    int writeFd() const { return write_fd_; }
    void closeAll();

  private:
    int read_fd_ = -1;
    int write_fd_ = -1;
};

/** Write one beat byte to @p fd (async-signal-safe, failures ignored). */
void heartbeatBeat(int fd);

// ---------------------------------------------------------------------------
// Retry taxonomy & backoff
// ---------------------------------------------------------------------------

/** How a finished job's outcome should be treated by the retry machinery. */
enum class OutcomeClass {
    Success,    ///< terminal: ok
    Transient,  ///< retryable: crash, timeout, hang, unclassified failure
    Permanent,  ///< terminal: wrong answer / wrong spec; retrying is futile
};

/**
 * Classify a non-cached job outcome. @p status is the runner's verdict
 * (ok | failed | crashed | timeout | hung), @p exit_code / @p term_signal
 * the raw child exit, @p stderr_tail the captured stderr (scanned for
 * typed `sim::` error markers emitted by scenario children).
 */
OutcomeClass classifyOutcome(const std::string &status, int exit_code,
                             int term_signal, const std::string &stderr_tail);

/** Deterministic exponential backoff with seeded jitter. */
class RetryPolicy {
  public:
    /**
     * @p budget: max retries per job (0 disables retrying entirely);
     * @p base_s doubles per attempt up to @p cap_s; @p seed feeds the
     * dedicated jitter stream.
     */
    RetryPolicy(unsigned budget, double base_s, double cap_s,
                std::uint64_t seed)
        : budget_(budget), base_s_(base_s), cap_s_(cap_s), rng_(seed)
    {
    }

    unsigned budget() const { return budget_; }

    /**
     * Delay before retry number @p attempt (1-based): base * 2^(attempt-1)
     * capped, scaled by a jitter factor in [0.5, 1.5) drawn from the
     * dedicated stream. Each call consumes one draw.
     */
    double backoffSeconds(unsigned attempt);

  private:
    unsigned budget_;
    double base_s_;
    double cap_s_;
    sim::Rng rng_;
};

// ---------------------------------------------------------------------------
// Deterministic chaos injection
// ---------------------------------------------------------------------------

/** Parsed MAPLE_CAMPAIGN_CHAOS plan; default-constructed = disabled. */
struct ChaosPlan {
    bool crash = false;
    bool hang = false;
    bool corrupt_cache = false;
    bool corrupt_snapshot = false;
    bool slow_io = false;
    std::uint64_t seed = 0;
    double rate = 0.0;

    bool enabled() const
    {
        return rate > 0 && (crash || hang || corrupt_cache ||
                            corrupt_snapshot || slow_io);
    }

    /**
     * Parse "<modes>:<seed>:<rate>" (modes comma-separated). Throws
     * sim::ConfigError on unknown modes or malformed numbers.
     */
    static ChaosPlan parse(const std::string &text);

    /**
     * The plan from MAPLE_CAMPAIGN_CHAOS, parsed fresh on each call (cheap,
     * and forked children pick up environment changes immediately).
     */
    static ChaosPlan env();

    /**
     * Deterministic injection decision for @p site: a pure function of
     * (seed, site), uniform draw < rate. Site strings name the injection
     * point and its identity, e.g. "crash:<job>#<attempt>".
     */
    bool draw(const std::string &site) const;

    /** Child-side: maybe SIGSEGV (crash) or beat-less sleep loop (hang). */
    void maybeCrashOrHang(const std::string &job, unsigned attempt) const;

    /** Flip one byte in @p path when the draw fires (artifact corruption). */
    void maybeCorruptFile(const std::string &path,
                          const std::string &site) const;

    /** Sleep ~100ms when the draw fires (slow artifact I/O). */
    void maybeSlowIo(const std::string &site) const;
};

}  // namespace maple::campaign
