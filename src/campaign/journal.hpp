/**
 * @file
 * Append-only per-campaign job journal: the record that makes a killed
 * campaign resumable.
 *
 * The journal is `<out>/journal.jsonl` — one compact JSON object per line,
 * appended with a single O_APPEND write (line-atomic on POSIX), so a runner
 * killed at any instant leaves at worst one torn trailing line, which
 * replay skips. Records:
 *
 *   {"event": "campaign", "name": ..., "spec_fnv": "<hex>", "resume": bool}
 *   {"event": "start",  "job": ..., "attempt": N}
 *   {"event": "finish", "job": ..., "attempt": N, "status": ...,
 *    "retry": bool}
 *   {"event": "end", "ok": N, "failed": N, ...}
 *
 * `--resume` replays the journal: jobs whose last non-retry "finish" says
 * ok/cached are skipped (their results come from the cache or the per-job
 * result file); jobs that were in flight ("start" without a matching
 * "finish") or failed are re-queued. The spec_fnv in the campaign header
 * pins the journal to one spec — resuming with a different spec is a typed
 * ConfigError, never a silently mixed manifest.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "harness/json.hpp"

namespace maple::campaign {

namespace json = harness::json;

/** Line-atomic appender over an O_APPEND fd. Movable, not copyable. */
class Journal {
  public:
    Journal() = default;
    ~Journal() { close(); }
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open (creating if needed) @p path for appending; @p truncate starts a
     * fresh journal (non-resume runs). Throws sim::ConfigError on failure.
     */
    void open(const std::string &path, bool truncate);

    /** Append one record as a single compact line + newline, fsync-free. */
    void append(const json::Value &record);

    bool isOpen() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
};

/** Replayed per-job journal state. */
struct JournalJob {
    std::string last_status;   ///< status of the last finish record ("" none)
    unsigned attempts = 0;     ///< starts observed
    bool completed = false;    ///< last finish was terminal ok/cached
    bool in_flight = false;    ///< start without a matching finish
};

/** Result of replaying a journal file. */
struct JournalReplay {
    bool header_seen = false;
    std::string campaign;
    std::uint64_t spec_fnv = 0;
    unsigned torn_lines = 0;   ///< unparsable lines skipped (crash debris)
    std::map<std::string, JournalJob> jobs;
};

/**
 * Replay @p path. A missing file yields an empty replay (header_seen
 * false); unparsable lines are counted and skipped, never fatal — the one
 * expected source is the torn final line of a killed runner.
 */
JournalReplay replayJournal(const std::string &path);

/** FNV-1a of a campaign spec's canonical dump, for the journal header. */
std::uint64_t specFingerprint(const json::Value &doc);

}  // namespace maple::campaign
