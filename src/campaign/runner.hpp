/**
 * @file
 * Crash-isolated campaign runner.
 *
 * The parent process never simulates a measured job: every job runs in a
 * forked child (scenario jobs) or a forked-and-exec'd binary (exec jobs),
 * so a segfault, FatalError abort or runaway loop in one job becomes a
 * recorded failure with diagnostics -- never a dead campaign. Up to
 * `workers` children run concurrently; the parent polls them with
 * waitpid(WNOHANG), enforcing per-job wall-clock timeouts.
 *
 * Scenario jobs fan out from warm images: the parent warms one SoC per
 * distinct warm key (dataset + SoC structure), snapshots it once, and each
 * variant child restores the image and runs only the measured phase. A child
 * that cannot restore (missing/mismatched image) falls back to a cold
 * warm+measure run -- correctness never depends on the image, only speed.
 *
 * Resilience (see health.hpp and journal.hpp for the protocols):
 *  - every job start/finish is journaled to <out>/journal.jsonl with
 *    line-atomic appends; `--resume` replays the journal, skips completed
 *    jobs (serving them from the cache or their result files) and re-queues
 *    jobs that were in flight or failed;
 *  - transiently-failed jobs (crash / timeout / hang / unclassified exit)
 *    are retried up to `retry_budget` times with deterministic jittered
 *    exponential backoff; a job that exhausts the budget is *quarantined*
 *    (recorded in the manifest's quarantine section) rather than failing
 *    the campaign;
 *  - with `heartbeat_timeout_s` > 0 each worker gets a heartbeat pipe, and
 *    a worker with no beat for that long is reclaimed as *hung* — children
 *    are stopped with SIGTERM, given `grace_s` to flush, then SIGKILLed;
 *  - MAPLE_CAMPAIGN_CHAOS=<modes>:<seed>:<rate> injects deterministic
 *    faults (crash, hang, corrupt-cache, corrupt-snapshot, slow-io) for the
 *    resilience test-suite and the CI chaos soak.
 *
 * Fault injection for CI: when the environment variable
 * MAPLE_CAMPAIGN_CRASH_JOB names a job, that child raises SIGSEGV instead
 * of running -- the campaign must complete with exactly that job marked
 * "crashed". MAPLE_CAMPAIGN_CRASH_RUNNER_AFTER=<n> kills the *runner*
 * (exit 70) after n jobs reach a terminal journal record, for resume tests.
 */
#pragma once

#include <string>

#include "campaign/spec.hpp"

namespace maple::campaign {

struct RunnerOptions {
    std::string out_dir = "campaign-out";
    unsigned workers = 0;    ///< 0 = take the spec's value
    bool use_cache = true;
    bool strict = false;     ///< non-zero exit when any job fails
    bool resume = false;     ///< replay <out>/journal.jsonl, skip done jobs
};

/**
 * Run the campaign. Writes per-job results under <out>/jobs/, the cache
 * under <out>/cache/, warm images under <out>/warm/, the job journal at
 * <out>/journal.jsonl, a copy of the spec at <out>/spec.json, plus
 * <out>/manifest.json and <out>/report.md.
 *
 * @return process exit code: 0 when the campaign completed (even with failed
 * jobs, unless opts.strict; quarantined jobs never affect the exit code),
 * 1 on campaign-level errors. Throws sim::ConfigError when opts.resume finds
 * a journal written by a different spec.
 */
int runCampaign(const CampaignSpec &spec, const RunnerOptions &opts);

}  // namespace maple::campaign
