/**
 * @file
 * Crash-isolated campaign runner.
 *
 * The parent process never simulates a measured job: every job runs in a
 * forked child (scenario jobs) or a forked-and-exec'd binary (exec jobs),
 * so a segfault, FatalError abort or runaway loop in one job becomes a
 * recorded failure with diagnostics -- never a dead campaign. Up to
 * `workers` children run concurrently; the parent polls them with
 * waitpid(WNOHANG), enforcing per-job wall-clock timeouts.
 *
 * Scenario jobs fan out from warm images: the parent warms one SoC per
 * distinct warm key (dataset + SoC structure), snapshots it once, and each
 * variant child restores the image and runs only the measured phase. A child
 * that cannot restore (missing/mismatched image) falls back to a cold
 * warm+measure run -- correctness never depends on the image, only speed.
 *
 * Fault injection for CI: when the environment variable
 * MAPLE_CAMPAIGN_CRASH_JOB names a job, that child raises SIGSEGV instead
 * of running -- the campaign must complete with exactly that job marked
 * "crashed".
 */
#pragma once

#include <string>

#include "campaign/spec.hpp"

namespace maple::campaign {

struct RunnerOptions {
    std::string out_dir = "campaign-out";
    unsigned workers = 0;    ///< 0 = take the spec's value
    bool use_cache = true;
    bool strict = false;     ///< non-zero exit when any job fails
};

/**
 * Run the campaign. Writes per-job results under <out>/jobs/, the cache
 * under <out>/cache/, warm images under <out>/warm/, plus <out>/manifest.json
 * and <out>/report.md.
 *
 * @return process exit code: 0 when the campaign completed (even with failed
 * jobs, unless opts.strict), 1 on campaign-level errors.
 */
int runCampaign(const CampaignSpec &spec, const RunnerOptions &opts);

}  // namespace maple::campaign
