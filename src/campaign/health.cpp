#include "campaign/health.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "sim/error.hpp"

namespace maple::campaign {

// ---------------------------------------------------------------------------
// HeartbeatPipe
// ---------------------------------------------------------------------------

void
HeartbeatPipe::open()
{
    closeAll();
    int fds[2];
    MAPLE_CHECK(::pipe(fds) == 0, sim::FatalError,
                "heartbeat pipe creation failed: %s", std::strerror(errno));
    read_fd_ = fds[0];
    write_fd_ = fds[1];
    ::fcntl(read_fd_, F_SETFL, O_NONBLOCK);
    // The read end must not leak into exec'd job binaries; the write end
    // must survive exec so cooperating exec jobs can beat.
    ::fcntl(read_fd_, F_SETFD, FD_CLOEXEC);
}

void
HeartbeatPipe::becomeChild()
{
    if (read_fd_ >= 0) {
        ::close(read_fd_);
        read_fd_ = -1;
    }
}

void
HeartbeatPipe::becomeParent()
{
    if (write_fd_ >= 0) {
        ::close(write_fd_);
        write_fd_ = -1;
    }
}

bool
HeartbeatPipe::drain()
{
    if (read_fd_ < 0)
        return false;
    char buf[256];
    bool beat = false;
    for (;;) {
        ssize_t n = ::read(read_fd_, buf, sizeof buf);
        if (n > 0) {
            beat = true;
            continue;
        }
        break;  // 0 = writer gone, <0 = EAGAIN/EINTR; both end the drain
    }
    return beat;
}

void
HeartbeatPipe::closeAll()
{
    if (read_fd_ >= 0)
        ::close(read_fd_);
    if (write_fd_ >= 0)
        ::close(write_fd_);
    read_fd_ = write_fd_ = -1;
}

void
heartbeatBeat(int fd)
{
    if (fd < 0)
        return;
    const char beat = 'b';
    // Best-effort: a full pipe or a dead reader must never hurt the worker.
    [[maybe_unused]] ssize_t n = ::write(fd, &beat, 1);
}

// ---------------------------------------------------------------------------
// Retry taxonomy
// ---------------------------------------------------------------------------

OutcomeClass
classifyOutcome(const std::string &status, int exit_code, int term_signal,
                const std::string &stderr_tail)
{
    (void)term_signal;
    if (status == "ok" || status == "cached")
        return OutcomeClass::Success;
    // Hung and timed-out workers, and signal deaths, are environmental
    // until proven otherwise: the chaos harness and real flaky
    // infrastructure both present this way.
    if (status == "timeout" || status == "hung" || status == "crashed")
        return OutcomeClass::Transient;
    // Scenario children: 3 = result failed validation, 4 = nondeterministic
    // across repeat runs. Both mean the *answer* is wrong — a retry that
    // succeeded would hide a correctness bug.
    if (exit_code == 3 || exit_code == 4)
        return OutcomeClass::Permanent;
    // execvp failure: the binary does not exist / is not executable.
    if (exit_code == 127)
        return OutcomeClass::Permanent;
    // Typed configuration errors reported by scenario children: the spec
    // itself is wrong, no retry can fix it.
    if (stderr_tail.find("sim::ConfigError") != std::string::npos)
        return OutcomeClass::Permanent;
    return OutcomeClass::Transient;
}

double
RetryPolicy::backoffSeconds(unsigned attempt)
{
    const unsigned exp = attempt > 0 ? attempt - 1 : 0;
    double d = base_s_ * static_cast<double>(1ull << std::min(exp, 20u));
    d = std::min(d, cap_s_);
    // Jitter in [0.5, 1.5): deterministic (dedicated stream), desynchronizes
    // retry bursts — the same discipline as MapleDriver's recovery backoff.
    return d * (0.5 + rng_.uniform());
}

// ---------------------------------------------------------------------------
// ChaosPlan
// ---------------------------------------------------------------------------

namespace {

std::uint64_t
fnvOf(const std::string &s, std::uint64_t h = 1469598103934665603ull)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace

ChaosPlan
ChaosPlan::parse(const std::string &text)
{
    ChaosPlan p;
    // Rightmost two ':' fields are seed and rate; everything before is the
    // comma-separated mode list (mode names contain no ':').
    const size_t rate_colon = text.rfind(':');
    MAPLE_CHECK(rate_colon != std::string::npos && rate_colon > 0,
                sim::ConfigError,
                "MAPLE_CAMPAIGN_CHAOS=\"%s\": want <modes>:<seed>:<rate>",
                text.c_str());
    const size_t seed_colon = text.rfind(':', rate_colon - 1);
    MAPLE_CHECK(seed_colon != std::string::npos, sim::ConfigError,
                "MAPLE_CAMPAIGN_CHAOS=\"%s\": want <modes>:<seed>:<rate>",
                text.c_str());

    const std::string modes = text.substr(0, seed_colon);
    const std::string seed_s =
        text.substr(seed_colon + 1, rate_colon - seed_colon - 1);
    const std::string rate_s = text.substr(rate_colon + 1);

    char *end = nullptr;
    errno = 0;
    p.seed = std::strtoull(seed_s.c_str(), &end, 0);
    MAPLE_CHECK(end && *end == '\0' && !seed_s.empty() && errno == 0,
                sim::ConfigError, "chaos seed \"%s\" is not a number",
                seed_s.c_str());
    errno = 0;
    p.rate = std::strtod(rate_s.c_str(), &end);
    MAPLE_CHECK(end && *end == '\0' && !rate_s.empty() && errno == 0 &&
                    p.rate >= 0.0 && p.rate <= 1.0,
                sim::ConfigError, "chaos rate \"%s\" is not in [0, 1]",
                rate_s.c_str());

    size_t pos = 0;
    while (pos <= modes.size()) {
        size_t comma = modes.find(',', pos);
        if (comma == std::string::npos)
            comma = modes.size();
        const std::string mode = modes.substr(pos, comma - pos);
        if (mode == "crash")
            p.crash = true;
        else if (mode == "hang")
            p.hang = true;
        else if (mode == "corrupt-cache")
            p.corrupt_cache = true;
        else if (mode == "corrupt-snapshot")
            p.corrupt_snapshot = true;
        else if (mode == "slow-io")
            p.slow_io = true;
        else
            MAPLE_THROW(sim::ConfigError,
                        "unknown chaos mode \"%s\" (want crash, hang, "
                        "corrupt-cache, corrupt-snapshot, slow-io)",
                        mode.c_str());
        pos = comma + 1;
    }
    return p;
}

ChaosPlan
ChaosPlan::env()
{
    const char *e = std::getenv("MAPLE_CAMPAIGN_CHAOS");
    return e && *e ? parse(e) : ChaosPlan{};
}

bool
ChaosPlan::draw(const std::string &site) const
{
    if (rate <= 0)
        return false;
    sim::Rng rng(fnvOf(site) ^ seed);
    return rng.uniform() < rate;
}

void
ChaosPlan::maybeCrashOrHang(const std::string &job, unsigned attempt) const
{
    if (!enabled())
        return;
    const std::string id = job + "#" + std::to_string(attempt);
    if (crash && draw("crash:" + id)) {
        std::fprintf(stderr, "chaos: injected crash (%s)\n", id.c_str());
        std::fflush(stderr);
        // Sanitizer builds install their own SIGSEGV handler, which would
        // turn this into a reported clean exit instead of a signal death;
        // the parent must observe a real signal 11 (same interaction as
        // MAPLE_CAMPAIGN_CRASH_JOB).
        ::signal(SIGSEGV, SIG_DFL);
        ::raise(SIGSEGV);
    }
    if (hang && draw("hang:" + id)) {
        std::fprintf(stderr, "chaos: injected hang (%s)\n", id.c_str());
        std::fflush(stderr);
        // Beat-less busy sleep: the runner's heartbeat timeout must reclaim
        // this worker; the per-job wall clock is the backstop.
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    }
}

void
ChaosPlan::maybeCorruptFile(const std::string &path,
                            const std::string &site) const
{
    if (!enabled() || !draw(site))
        return;
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    if (!f.good())
        return;
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    if (size <= 0)
        return;
    // Deterministic victim byte, past any header so structural checks don't
    // always trip before the checksum does.
    sim::Rng rng(fnvOf("victim:" + site) ^ seed);
    const std::streamoff off =
        static_cast<std::streamoff>(rng.below(static_cast<std::uint64_t>(size)));
    f.seekg(off);
    char c = 0;
    f.get(c);
    f.seekp(off);
    f.put(static_cast<char>(c ^ 0x5a));
    f.flush();
    std::fprintf(stderr, "chaos: corrupted byte %lld of %s\n",
                 static_cast<long long>(off), path.c_str());
}

void
ChaosPlan::maybeSlowIo(const std::string &site) const
{
    if (enabled() && slow_io && draw("slow-io:" + site))
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

}  // namespace maple::campaign
