#include "campaign/runner.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/cache.hpp"
#include "ckpt/snapshot.hpp"
#include "harness/scenario.hpp"
#include "soc/soc.hpp"

namespace maple::campaign {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

/** Environment variable naming a job that must crash (CI fault injection). */
constexpr const char *kCrashJobEnv = "MAPLE_CAMPAIGN_CRASH_JOB";

struct JobState {
    const Job *job = nullptr;
    std::string cache_key;
    std::string warm_image;  ///< scenario jobs: warm-image path ("" = cold)
    double timeout_s = 0;

    pid_t pid = -1;
    unsigned phase = 0;  ///< exec jobs run once per phase (determinism)
    Clock::time_point started;
    bool timed_out = false;
    int first_exit = 0;  ///< exec: phase-0 exit code

    std::string status;  ///< ok | failed | crashed | timeout | cached
    int exit_code = 0;
    int term_signal = 0;
    double host_seconds = 0.0;
    bool cache_hit = false;
    std::optional<bool> deterministic;
    std::string diagnostics;
    json::Value result;  ///< the job's result document (null if none)
};

std::string
readTail(const std::string &path, size_t max_bytes = 2000)
{
    std::ifstream f(path, std::ios::binary);
    if (!f.good())
        return "";
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string s = ss.str();
    if (s.size() > max_bytes)
        s = "..." + s.substr(s.size() - max_bytes);
    return s;
}

std::string
readAll(const std::string &path, size_t max_bytes = 1 << 16)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string s = ss.str();
    if (s.size() > max_bytes)
        s.resize(max_bytes);
    return s;
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream f(path, std::ios::trunc | std::ios::binary);
    f << text;
}

void
redirectTo(const std::string &out_path, const std::string &err_path)
{
    int out = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    int err = ::open(err_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out >= 0)
        ::dup2(out, STDOUT_FILENO);
    if (err >= 0)
        ::dup2(err, STDERR_FILENO);
    if (out >= 0)
        ::close(out);
    if (err >= 0)
        ::close(err);
}

void
maybeInjectCrash(const std::string &job_name)
{
    const char *crash = std::getenv(kCrashJobEnv);
    if (crash && job_name == crash) {
        std::fprintf(stderr, "injected crash (%s=%s)\n", kCrashJobEnv, crash);
        // Sanitizer builds install their own SIGSEGV handler, which would
        // turn this into a reported clean exit instead of a signal death;
        // the parent must observe a real signal 11.
        ::signal(SIGSEGV, SIG_DFL);
        ::raise(SIGSEGV);
    }
}

/** One scenario execution: restore the warm image, or warm from cold. */
struct ScenarioRun {
    json::Value result;
    std::uint64_t executed_cycles = 0;
    bool restored = false;
};

ScenarioRun
runScenarioOnce(const harness::ScenarioSpec &ss, const std::string &warm_image)
{
    if (!warm_image.empty()) {
        std::ifstream f(warm_image, std::ios::binary);
        if (f.good()) {
            soc::Soc soc(harness::scenarioSocConfig(ss));
            bool restored = true;
            try {
                soc.restore(f);
            } catch (const ckpt::SnapshotError &e) {
                std::fprintf(stderr,
                             "warm-image restore failed (%s); cold run\n",
                             e.what());
                restored = false;
            }
            if (restored) {
                const sim::Cycle base = soc.eq().now();
                harness::ScenarioResult r = harness::measureScenario(soc, ss);
                return {harness::scenarioResultJson(r), r.end_cycle - base,
                        true};
            }
        }
    }
    soc::Soc soc(harness::scenarioSocConfig(ss));
    harness::warmScenario(soc, ss);
    harness::ScenarioResult r = harness::measureScenario(soc, ss);
    return {harness::scenarioResultJson(r), r.end_cycle, false};
}

/**
 * Scenario-job child body. Exit codes: 0 ok, 2 exception, 3 invalid result,
 * 4 nondeterministic.
 */
[[noreturn]] void
scenarioChild(const JobState &st, unsigned runs, const ResultCache &cache,
              const std::string &result_path)
{
    maybeInjectCrash(st.job->name);
    int code = 0;
    try {
        harness::ScenarioSpec ss = harness::parseScenarioSpec(st.job->spec);
        ScenarioRun r1 = runScenarioOnce(ss, st.warm_image);
        std::uint64_t executed = r1.executed_cycles;
        std::optional<bool> deterministic;
        if (runs >= 2) {
            ScenarioRun r2 = runScenarioOnce(ss, st.warm_image);
            executed += r2.executed_cycles;
            deterministic = json::dump(r1.result) == json::dump(r2.result);
        }

        json::Object doc;
        doc.emplace_back("job", st.job->spec);
        doc.emplace_back("cache_key", json::Value(st.cache_key));
        doc.emplace_back("result", r1.result);
        doc.emplace_back("deterministic",
                         deterministic ? json::Value(*deterministic)
                                       : json::Value(nullptr));
        doc.emplace_back("simulated_cycles", json::Value(executed));
        doc.emplace_back("restored_from_warm_image", json::Value(r1.restored));
        json::Value v(std::move(doc));
        json::writeFile(result_path, v);

        const bool valid = r1.result.getBool("valid", false);
        if (!valid)
            code = 3;
        else if (deterministic && !*deterministic)
            code = 4;
        else
            cache.store(st.cache_key, v);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "job failed: %s\n", e.what());
        code = 2;
    }
    std::fflush(nullptr);
    ::_exit(code);
}

/** Exec-job child body: apply env, redirect, exec the argv. */
[[noreturn]] void
execChild(const JobState &st, const std::string &out_path,
          const std::string &err_path)
{
    redirectTo(out_path, err_path);
    maybeInjectCrash(st.job->name);
    if (const json::Value *env = st.job->spec.get("env")) {
        for (const auto &[k, v] : env->asObject()) {
            std::string val = v.isString() ? v.asString() : json::dump(v);
            ::setenv(k.c_str(), val.c_str(), 1);
        }
    }
    const json::Array &argv_json = st.job->spec.get("argv")->asArray();
    std::vector<std::string> argv_s;
    argv_s.reserve(argv_json.size());
    for (const json::Value &a : argv_json)
        argv_s.push_back(a.isString() ? a.asString() : json::dump(a));
    std::vector<char *> argv;
    argv.reserve(argv_s.size() + 1);
    for (std::string &a : argv_s)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "exec %s: %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
}

std::string
hex64(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)h);
    return buf;
}

std::uint64_t
fnvString(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace

int
runCampaign(const CampaignSpec &spec, const RunnerOptions &opts)
{
    const std::string out = opts.out_dir;
    const std::string jobs_dir = out + "/jobs";
    const std::string warm_dir = out + "/warm";
    fs::create_directories(jobs_dir);
    fs::create_directories(warm_dir);
    ResultCache cache(out + "/cache", opts.use_cache);
    const unsigned workers = opts.workers ? opts.workers : spec.workers;

    std::vector<JobState> states(spec.jobs.size());
    unsigned warmups_run = 0;

    // Cache probe, then warm-image preparation for the jobs that will run.
    // Warm images are keyed by the scenario's warm key: every variant of one
    // dataset/SoC shape shares a single warm simulation.
    std::map<std::string, std::string> warm_paths;
    for (size_t i = 0; i < spec.jobs.size(); ++i) {
        JobState &st = states[i];
        st.job = &spec.jobs[i];
        st.cache_key = cache.keyFor(*st.job);
        st.timeout_s = st.job->spec.getDouble("timeout_s", spec.timeout_s);
        if (auto hit = cache.load(st.cache_key)) {
            st.status = "cached";
            st.cache_hit = true;
            st.result = std::move(*hit);
            json::writeFile(jobs_dir + "/" + st.job->name + ".json",
                            st.result);
            if (st.job->type == "exec") {
                // Re-materialize captured output for downstream scripts.
                writeText(jobs_dir + "/" + st.job->name + ".stdout",
                          st.result.getString("stdout", ""));
                writeText(jobs_dir + "/" + st.job->name + ".stderr",
                          st.result.getString("stderr", ""));
            }
            if (const json::Value *d = st.result.get("deterministic"))
                if (d->isBool())
                    st.deterministic = d->asBool();
            continue;
        }
        if (st.job->type != "scenario")
            continue;
        harness::ScenarioSpec ss = harness::parseScenarioSpec(st.job->spec);
        const std::string wk = json::dump(harness::scenarioWarmKey(ss));
        auto it = warm_paths.find(wk);
        if (it == warm_paths.end()) {
            const std::string path =
                warm_dir + "/" + hex64(fnvString(wk)) + ".img";
            soc::Soc soc(harness::scenarioSocConfig(ss));
            harness::warmScenario(soc, ss);
            std::ofstream f(path, std::ios::binary | std::ios::trunc);
            soc.snapshot(f);
            ++warmups_run;
            it = warm_paths.emplace(wk, path).first;
        }
        st.warm_image = it->second;
    }

    // Schedule: fork up to `workers` children, poll with WNOHANG, enforce
    // per-job deadlines. Exec jobs with runs=2 get a second phase (a second
    // process) and a byte-compare of the captured stdout.
    std::vector<size_t> pending;
    for (size_t i = 0; i < states.size(); ++i)
        if (states[i].status.empty())
            pending.push_back(i);
    std::vector<size_t> running;

    auto stdoutPath = [&](const JobState &st, unsigned phase) {
        std::string p = jobs_dir + "/" + st.job->name + ".stdout";
        return phase ? p + "." + std::to_string(phase) : p;
    };
    auto stderrPath = [&](const JobState &st, unsigned phase) {
        std::string p = jobs_dir + "/" + st.job->name + ".stderr";
        return phase ? p + "." + std::to_string(phase) : p;
    };

    auto launch = [&](size_t i) {
        JobState &st = states[i];
        st.started = Clock::now();
        pid_t pid = ::fork();
        MAPLE_CHECK(pid >= 0, sim::FatalError, "fork failed: %s",
                    std::strerror(errno));
        if (pid == 0) {
            if (st.job->type == "scenario") {
                redirectTo(stdoutPath(st, 0), stderrPath(st, 0));
                scenarioChild(st, spec.runs, cache,
                              jobs_dir + "/" + st.job->name + ".json");
            }
            execChild(st, stdoutPath(st, st.phase), stderrPath(st, st.phase));
        }
        st.pid = pid;
        running.push_back(i);
    };

    auto finishExec = [&](JobState &st) {
        const auto expect = st.job->spec.getInt("expect_exit", 0);
        json::Object doc;
        doc.emplace_back("job", st.job->spec);
        doc.emplace_back("cache_key", json::Value(st.cache_key));
        doc.emplace_back("exit_code", json::Value(st.exit_code));
        doc.emplace_back("deterministic",
                         st.deterministic ? json::Value(*st.deterministic)
                                          : json::Value(nullptr));
        doc.emplace_back("stdout",
                         json::Value(readAll(stdoutPath(st, 0))));
        doc.emplace_back("stderr",
                         json::Value(readAll(stderrPath(st, 0))));
        st.result = json::Value(std::move(doc));
        json::writeFile(jobs_dir + "/" + st.job->name + ".json", st.result);
        if (st.status.empty())
            st.status = st.exit_code == expect ? "ok" : "failed";
        if (st.status == "ok" && !(st.deterministic && !*st.deterministic))
            cache.store(st.cache_key, st.result);
    };

    auto reap = [&](size_t i, int wstatus) {
        JobState &st = states[i];
        st.pid = -1;
        st.host_seconds += std::chrono::duration<double>(Clock::now() -
                                                         st.started)
                               .count();
        if (st.timed_out) {
            st.status = "timeout";
            st.diagnostics = "killed after exceeding the per-job timeout";
        } else if (WIFSIGNALED(wstatus)) {
            st.status = "crashed";
            st.term_signal = WTERMSIG(wstatus);
            st.diagnostics = "terminated by signal " +
                             std::to_string(st.term_signal) + "; stderr: " +
                             readTail(stderrPath(st, st.phase));
        } else {
            st.exit_code = WEXITSTATUS(wstatus);
        }

        if (st.job->type == "scenario") {
            if (st.status.empty()) {
                switch (st.exit_code) {
                case 0: st.status = "ok"; break;
                case 3:
                    st.status = "failed";
                    st.diagnostics = "result failed validation";
                    break;
                case 4:
                    st.status = "failed";
                    st.diagnostics = "nondeterministic across repeat runs";
                    break;
                default:
                    st.status = "failed";
                    st.diagnostics = "exit code " +
                                     std::to_string(st.exit_code) +
                                     "; stderr: " +
                                     readTail(stderrPath(st, 0));
                }
            }
            const std::string rp = jobs_dir + "/" + st.job->name + ".json";
            if (fs::exists(rp)) {
                try {
                    st.result = json::parseFile(rp);
                    if (const json::Value *d = st.result.get("deterministic"))
                        if (d->isBool())
                            st.deterministic = d->asBool();
                } catch (const json::JsonError &) {
                }
            }
            return;
        }

        // Exec job: maybe run phase 2 for the determinism double-run.
        if (st.status.empty() && spec.runs >= 2 && st.phase == 0) {
            st.first_exit = st.exit_code;
            st.phase = 1;
            launch(i);
            return;
        }
        if (st.phase == 1 && st.status.empty())
            st.deterministic = st.exit_code == st.first_exit &&
                               readAll(stdoutPath(st, 0)) ==
                                   readAll(stdoutPath(st, 1));
        finishExec(st);
    };

    while (!pending.empty() || !running.empty()) {
        while (!pending.empty() && running.size() < workers) {
            size_t i = pending.back();
            pending.pop_back();
            launch(i);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        for (size_t r = 0; r < running.size();) {
            size_t i = running[r];
            JobState &st = states[i];
            int wstatus = 0;
            pid_t got = ::waitpid(st.pid, &wstatus, WNOHANG);
            if (got == st.pid) {
                running.erase(running.begin() + static_cast<long>(r));
                reap(i, wstatus);  // may relaunch (exec phase 2)
                continue;
            }
            const double elapsed =
                std::chrono::duration<double>(Clock::now() - st.started)
                    .count();
            if (!st.timed_out && elapsed > st.timeout_s) {
                st.timed_out = true;
                ::kill(st.pid, SIGKILL);
            }
            ++r;
        }
    }

    // Manifest + report.
    unsigned ok = 0, failed = 0, cached = 0;
    std::uint64_t simulated_cycles = 0;
    json::Array rows;
    for (const JobState &st : states) {
        if (st.status == "ok")
            ++ok;
        else if (st.status == "cached")
            ++cached;
        else
            ++failed;
        std::uint64_t cycles = 0;
        if (!st.cache_hit && !st.result.isNull())
            cycles = static_cast<std::uint64_t>(
                st.result.getInt("simulated_cycles", 0));
        simulated_cycles += cycles;

        json::Object row;
        row.emplace_back("name", json::Value(st.job->name));
        row.emplace_back("type", json::Value(st.job->type));
        row.emplace_back("status", json::Value(st.status));
        row.emplace_back("cache_key", json::Value(st.cache_key));
        row.emplace_back("cache_hit", json::Value(st.cache_hit));
        row.emplace_back("exit_code", json::Value(st.exit_code));
        row.emplace_back("signal", json::Value(st.term_signal));
        row.emplace_back("host_seconds", json::Value(st.host_seconds));
        row.emplace_back("simulated_cycles", json::Value(cycles));
        row.emplace_back("deterministic",
                         st.deterministic ? json::Value(*st.deterministic)
                                          : json::Value(nullptr));
        row.emplace_back("result",
                         json::Value("jobs/" + st.job->name + ".json"));
        row.emplace_back("diagnostics", json::Value(st.diagnostics));
        rows.push_back(json::Value(std::move(row)));
    }

    json::Object totals;
    totals.emplace_back("jobs", json::Value(states.size()));
    totals.emplace_back("ok", json::Value(ok));
    totals.emplace_back("failed", json::Value(failed));
    totals.emplace_back("cached", json::Value(cached));
    totals.emplace_back("warmups_run", json::Value(warmups_run));
    totals.emplace_back("cache_hits", json::Value(cached));
    totals.emplace_back("simulated_cycles", json::Value(simulated_cycles));

    json::Object manifest;
    manifest.emplace_back("campaign", json::Value(spec.name));
    manifest.emplace_back("workers", json::Value(workers));
    manifest.emplace_back("runs", json::Value(spec.runs));
    manifest.emplace_back("totals", json::Value(std::move(totals)));
    manifest.emplace_back("jobs", json::Value(std::move(rows)));
    json::writeFile(out + "/manifest.json", json::Value(std::move(manifest)));

    {
        std::ofstream md(out + "/report.md", std::ios::trunc);
        md << "# Campaign: " << spec.name << "\n\n"
           << "- jobs: " << states.size() << " (ok " << ok << ", cached "
           << cached << ", failed " << failed << ")\n"
           << "- warm simulations: " << warmups_run << "\n"
           << "- simulated cycles: " << simulated_cycles << "\n\n"
           << "| job | status | cycles | valid | deterministic | cache |\n"
           << "|---|---|---:|---|---|---|\n";
        for (const JobState &st : states) {
            std::string valid = "-";
            std::uint64_t cycles = 0;
            if (const json::Value *r = st.result.get("result")) {
                valid = r->getBool("valid", false) ? "yes" : "NO";
                cycles = static_cast<std::uint64_t>(r->getInt("cycles", 0));
            }
            md << "| " << st.job->name << " | " << st.status << " | "
               << cycles << " | " << valid << " | "
               << (st.deterministic ? (*st.deterministic ? "yes" : "NO")
                                    : "-")
               << " | " << (st.cache_hit ? "hit" : "miss") << " |\n";
        }
    }

    std::fprintf(stderr,
                 "campaign %s: %zu jobs, %u ok, %u cached, %u failed "
                 "(%u warmups, %llu simulated cycles) -> %s\n",
                 spec.name.c_str(), states.size(), ok, cached, failed,
                 warmups_run, (unsigned long long)simulated_cycles,
                 out.c_str());
    return failed > 0 && opts.strict ? 1 : 0;
}

}  // namespace maple::campaign
