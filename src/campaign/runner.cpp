#include "campaign/runner.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/health.hpp"
#include "campaign/journal.hpp"
#include "ckpt/snapshot.hpp"
#include "harness/scenario.hpp"
#include "soc/soc.hpp"

namespace maple::campaign {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

/** Environment variable naming a job that must crash (CI fault injection). */
constexpr const char *kCrashJobEnv = "MAPLE_CAMPAIGN_CRASH_JOB";

/** Kill the *runner* (exit 70) after this many terminal job finishes. */
constexpr const char *kCrashRunnerEnv = "MAPLE_CAMPAIGN_CRASH_RUNNER_AFTER";

struct JobState {
    const Job *job = nullptr;
    std::string cache_key;
    std::string warm_image;  ///< scenario jobs: warm-image path ("" = cold)
    double timeout_s = 0;

    pid_t pid = -1;
    unsigned phase = 0;  ///< exec jobs run once per phase (determinism)
    unsigned attempt = 0;  ///< phase-0 launches so far (journal "start"s)
    Clock::time_point started;
    Clock::time_point last_beat;
    Clock::time_point term_time;   ///< when SIGTERM was sent
    Clock::time_point not_before;  ///< backoff deadline while cooling
    bool timed_out = false;
    bool hung = false;       ///< no heartbeat for heartbeat_timeout_s
    bool term_sent = false;
    bool killed = false;
    bool quarantined = false;
    int first_exit = 0;  ///< exec: phase-0 exit code

    HeartbeatPipe hb;

    std::string status;  ///< ok | failed | crashed | timeout | hung | cached
    int exit_code = 0;
    int term_signal = 0;
    double host_seconds = 0.0;
    bool cache_hit = false;
    std::optional<bool> deterministic;
    std::string diagnostics;
    json::Value result;  ///< the job's result document (null if none)
};

std::string
readTail(const std::string &path, size_t max_bytes = 2000)
{
    std::ifstream f(path, std::ios::binary);
    if (!f.good())
        return "";
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string s = ss.str();
    if (s.size() > max_bytes)
        s = "..." + s.substr(s.size() - max_bytes);
    return s;
}

std::string
readAll(const std::string &path, size_t max_bytes = 1 << 16)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string s = ss.str();
    if (s.size() > max_bytes)
        s.resize(max_bytes);
    return s;
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream f(path, std::ios::trunc | std::ios::binary);
    f << text;
}

void
redirectTo(const std::string &out_path, const std::string &err_path)
{
    int out = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    int err = ::open(err_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out >= 0)
        ::dup2(out, STDOUT_FILENO);
    if (err >= 0)
        ::dup2(err, STDERR_FILENO);
    if (out >= 0)
        ::close(out);
    if (err >= 0)
        ::close(err);
}

void
maybeInjectCrash(const std::string &job_name)
{
    const char *crash = std::getenv(kCrashJobEnv);
    if (crash && job_name == crash) {
        std::fprintf(stderr, "injected crash (%s=%s)\n", kCrashJobEnv, crash);
        // Sanitizer builds install their own SIGSEGV handler, which would
        // turn this into a reported clean exit instead of a signal death;
        // the parent must observe a real signal 11.
        ::signal(SIGSEGV, SIG_DFL);
        ::raise(SIGSEGV);
    }
}

/** One scenario execution: restore the warm image, or warm from cold. */
struct ScenarioRun {
    json::Value result;
    std::uint64_t executed_cycles = 0;
    bool restored = false;
};

ScenarioRun
runScenarioOnce(const harness::ScenarioSpec &ss, const std::string &warm_image,
                int hb_fd)
{
    if (!warm_image.empty()) {
        std::ifstream f(warm_image, std::ios::binary);
        if (f.good()) {
            soc::Soc soc(harness::scenarioSocConfig(ss));
            bool restored = true;
            try {
                soc.restore(f);
            } catch (const ckpt::SnapshotError &e) {
                // Includes BadChecksum from a corrupt/truncated image: the
                // partially-restored Soc is discarded below and the run
                // falls back to a fresh cold warm-up -- correctness never
                // depends on the image.
                std::fprintf(stderr,
                             "warm-image restore failed (%s); cold run\n",
                             e.what());
                restored = false;
            }
            if (restored) {
                heartbeatBeat(hb_fd);
                const sim::Cycle base = soc.eq().now();
                harness::ScenarioResult r = harness::measureScenario(soc, ss);
                return {harness::scenarioResultJson(r), r.end_cycle - base,
                        true};
            }
        }
    }
    soc::Soc soc(harness::scenarioSocConfig(ss));
    harness::warmScenario(soc, ss);
    heartbeatBeat(hb_fd);
    harness::ScenarioResult r = harness::measureScenario(soc, ss);
    return {harness::scenarioResultJson(r), r.end_cycle, false};
}

/**
 * Scenario-job child body. Exit codes: 0 ok, 2 exception, 3 invalid result,
 * 4 nondeterministic. Typed sim:: errors are printed with their type name
 * ("sim::ConfigError: ...") so the parent's retry taxonomy can classify
 * them from the captured stderr.
 */
[[noreturn]] void
scenarioChild(const JobState &st, unsigned runs, const ResultCache &cache,
              const std::string &result_path, int hb_fd, unsigned attempt)
{
    maybeInjectCrash(st.job->name);
    ChaosPlan::env().maybeCrashOrHang(st.job->name, attempt);
    heartbeatBeat(hb_fd);
    int code = 0;
    try {
        harness::ScenarioSpec ss = harness::parseScenarioSpec(st.job->spec);
        ScenarioRun r1 = runScenarioOnce(ss, st.warm_image, hb_fd);
        heartbeatBeat(hb_fd);
        std::uint64_t executed = r1.executed_cycles;
        std::optional<bool> deterministic;
        if (runs >= 2) {
            ScenarioRun r2 = runScenarioOnce(ss, st.warm_image, hb_fd);
            heartbeatBeat(hb_fd);
            executed += r2.executed_cycles;
            deterministic = json::dump(r1.result) == json::dump(r2.result);
        }

        json::Object doc;
        doc.emplace_back("job", st.job->spec);
        doc.emplace_back("cache_key", json::Value(st.cache_key));
        doc.emplace_back("result", r1.result);
        doc.emplace_back("deterministic",
                         deterministic ? json::Value(*deterministic)
                                       : json::Value(nullptr));
        doc.emplace_back("simulated_cycles", json::Value(executed));
        doc.emplace_back("restored_from_warm_image", json::Value(r1.restored));
        json::Value v(std::move(doc));
        json::writeFile(result_path, v);

        const bool valid = r1.result.getBool("valid", false);
        if (!valid)
            code = 3;
        else if (deterministic && !*deterministic)
            code = 4;
        else
            cache.store(st.cache_key, v);
    } catch (const sim::ConfigError &e) {
        std::fprintf(stderr, "job failed: sim::ConfigError: %s\n", e.what());
        code = 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "job failed: %s\n", e.what());
        code = 2;
    }
    std::fflush(nullptr);
    ::_exit(code);
}

/** Exec-job child body: apply env, redirect, exec the argv. */
[[noreturn]] void
execChild(const JobState &st, const std::string &out_path,
          const std::string &err_path, unsigned attempt)
{
    redirectTo(out_path, err_path);
    maybeInjectCrash(st.job->name);
    ChaosPlan::env().maybeCrashOrHang(st.job->name, attempt);
    if (const json::Value *env = st.job->spec.get("env")) {
        for (const auto &[k, v] : env->asObject()) {
            std::string val = v.isString() ? v.asString() : json::dump(v);
            ::setenv(k.c_str(), val.c_str(), 1);
        }
    }
    const json::Array &argv_json = st.job->spec.get("argv")->asArray();
    std::vector<std::string> argv_s;
    argv_s.reserve(argv_json.size());
    for (const json::Value &a : argv_json)
        argv_s.push_back(a.isString() ? a.asString() : json::dump(a));
    std::vector<char *> argv;
    argv.reserve(argv_s.size() + 1);
    for (std::string &a : argv_s)
        argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "exec %s: %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
}

std::string
hex64(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)h);
    return buf;
}

std::uint64_t
fnvString(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace

int
runCampaign(const CampaignSpec &spec, const RunnerOptions &opts)
{
    const std::string out = opts.out_dir;
    const std::string jobs_dir = out + "/jobs";
    const std::string warm_dir = out + "/warm";
    fs::create_directories(jobs_dir);
    fs::create_directories(warm_dir);
    ResultCache cache(out + "/cache", opts.use_cache);
    const unsigned workers = opts.workers ? opts.workers : spec.workers;
    const ChaosPlan chaos = ChaosPlan::env();
    const bool use_hb = spec.heartbeat_timeout_s > 0;

    // Journal: replay first on resume (the fingerprint pins the journal to
    // this spec), then open for appending -- truncating on fresh runs.
    const std::string journal_path = out + "/journal.jsonl";
    const std::uint64_t spec_fnv = specFingerprint(spec.doc);
    JournalReplay replay;
    if (opts.resume) {
        replay = replayJournal(journal_path);
        if (replay.header_seen)
            MAPLE_CHECK(replay.spec_fnv == spec_fnv, sim::ConfigError,
                        "cannot resume %s: journal was written by a "
                        "different campaign spec (fnv %s != %s)",
                        out.c_str(), hex64(replay.spec_fnv).c_str(),
                        hex64(spec_fnv).c_str());
        if (replay.torn_lines)
            std::fprintf(stderr,
                         "resume: skipped %u torn journal line(s)\n",
                         replay.torn_lines);
    }
    Journal journal;
    journal.open(journal_path, /*truncate=*/!opts.resume);
    {
        json::Object hdr;
        hdr.emplace_back("event", json::Value("campaign"));
        hdr.emplace_back("name", json::Value(spec.name));
        hdr.emplace_back("spec_fnv", json::Value(hex64(spec_fnv)));
        hdr.emplace_back("resume", json::Value(opts.resume));
        journal.append(json::Value(std::move(hdr)));
    }
    // A copy of the spec next to the journal makes `maple_campaign resume
    // <out>` self-contained.
    if (!spec.doc.isNull())
        json::writeFile(out + "/spec.json", spec.doc);

    long crash_runner_after = 0;
    if (const char *e = std::getenv(kCrashRunnerEnv))
        crash_runner_after = std::strtol(e, nullptr, 10);
    unsigned terminal_finishes = 0;
    unsigned retries_total = 0;

    // Terminal ("retry": false) finish records end a job; with the runner
    // kill-switch armed, the runner dies right after journaling the n-th
    // one -- the window the resume path must cover.
    auto journalFinish = [&](const JobState &st, const std::string &status,
                             bool retry) {
        json::Object r;
        r.emplace_back("event", json::Value("finish"));
        r.emplace_back("job", json::Value(st.job->name));
        r.emplace_back("attempt",
                       json::Value(st.attempt ? st.attempt - 1 : 0));
        r.emplace_back("status", json::Value(status));
        r.emplace_back("retry", json::Value(retry));
        journal.append(json::Value(std::move(r)));
        if (!retry) {
            ++terminal_finishes;
            if (crash_runner_after > 0 &&
                terminal_finishes >=
                    static_cast<unsigned>(crash_runner_after)) {
                std::fprintf(stderr,
                             "injected runner crash (%s=%ld) after %u "
                             "terminal finishes\n",
                             kCrashRunnerEnv, crash_runner_after,
                             terminal_finishes);
                std::fflush(nullptr);
                ::_exit(70);
            }
        }
    };

    RetryPolicy policy(spec.retry_budget, spec.retry_backoff_base_s,
                       spec.retry_backoff_cap_s,
                       spec_fnv ^ 0x9e3779b97f4a7c15ull);

    std::vector<JobState> states(spec.jobs.size());
    unsigned warmups_run = 0;

    // Cache probe (and, on resume, journal replay) decide which jobs still
    // need to run; warm images are then prepared for those. Warm images are
    // keyed by the scenario's warm key: every variant of one dataset/SoC
    // shape shares a single warm simulation.
    std::map<std::string, std::string> warm_paths;
    for (size_t i = 0; i < spec.jobs.size(); ++i) {
        JobState &st = states[i];
        st.job = &spec.jobs[i];
        st.timeout_s = st.job->spec.getDouble("timeout_s", spec.timeout_s);
        try {
            st.cache_key = cache.keyFor(*st.job);
        } catch (const sim::ConfigError &e) {
            // E.g. an exec job whose binary does not exist: the job is
            // failed with typed diagnostics, the campaign keeps going.
            st.status = "failed";
            st.diagnostics = std::string("sim::ConfigError: ") + e.what();
            journalFinish(st, st.status, false);
            continue;
        }
        if (auto hit = cache.load(st.cache_key)) {
            st.status = "cached";
            st.cache_hit = true;
            st.result = std::move(*hit);
            json::writeFile(jobs_dir + "/" + st.job->name + ".json",
                            st.result);
            if (st.job->type == "exec") {
                // Re-materialize captured output for downstream scripts.
                writeText(jobs_dir + "/" + st.job->name + ".stdout",
                          st.result.getString("stdout", ""));
                writeText(jobs_dir + "/" + st.job->name + ".stderr",
                          st.result.getString("stderr", ""));
            }
            if (const json::Value *d = st.result.get("deterministic"))
                if (d->isBool())
                    st.deterministic = d->asBool();
            journalFinish(st, "cached", false);
            continue;
        }
        if (opts.resume) {
            auto it = replay.jobs.find(st.job->name);
            if (it != replay.jobs.end()) {
                // Completed on a previous incarnation but not in the cache
                // (disabled or evicted): serve the per-job result file.
                if (it->second.completed) {
                    const std::string rp =
                        jobs_dir + "/" + st.job->name + ".json";
                    bool served = false;
                    try {
                        st.result = json::parseFile(rp);
                        served = true;
                    } catch (const json::JsonError &) {
                        // Result file gone/torn: fall through and re-run.
                    }
                    if (served) {
                        st.status = "ok";
                        if (const json::Value *d =
                                st.result.get("deterministic"))
                            if (d->isBool())
                                st.deterministic = d->asBool();
                        cache.store(st.cache_key, st.result);
                        journalFinish(st, st.status, false);
                        continue;
                    }
                }
                // In-flight or failed: re-queue. Attempts already journaled
                // keep counting against the retry budget.
                st.attempt = it->second.attempts;
            }
        }
        if (st.job->type != "scenario")
            continue;
        harness::ScenarioSpec ss = harness::parseScenarioSpec(st.job->spec);
        const std::string wk = json::dump(harness::scenarioWarmKey(ss));
        auto it = warm_paths.find(wk);
        if (it == warm_paths.end()) {
            const std::string path =
                warm_dir + "/" + hex64(fnvString(wk)) + ".img";
            if (opts.resume && fs::exists(path)) {
                // Reuse the previous incarnation's image; children fall
                // back to a cold run if it fails its checksum.
                it = warm_paths.emplace(wk, path).first;
            } else {
                soc::Soc soc(harness::scenarioSocConfig(ss));
                harness::warmScenario(soc, ss);
                std::ofstream f(path, std::ios::binary | std::ios::trunc);
                soc.snapshot(f);
                f.close();
                ++warmups_run;
                if (chaos.corrupt_snapshot)
                    chaos.maybeCorruptFile(
                        path, "corrupt-snapshot:" + hex64(fnvString(wk)));
                it = warm_paths.emplace(wk, path).first;
            }
        }
        st.warm_image = it->second;
    }

    // Schedule: fork up to `workers` children, poll with WNOHANG, enforce
    // per-job deadlines and heartbeat liveness. Exec jobs with runs=2 get a
    // second phase (a second process) and a byte-compare of the captured
    // stdout. Transient failures re-enter the queue through `cooling` until
    // their backoff deadline passes.
    std::vector<size_t> pending;
    for (size_t i = 0; i < states.size(); ++i)
        if (states[i].status.empty())
            pending.push_back(i);
    std::vector<size_t> cooling;
    std::vector<size_t> running;

    auto stdoutPath = [&](const JobState &st, unsigned phase) {
        std::string p = jobs_dir + "/" + st.job->name + ".stdout";
        return phase ? p + "." + std::to_string(phase) : p;
    };
    auto stderrPath = [&](const JobState &st, unsigned phase) {
        std::string p = jobs_dir + "/" + st.job->name + ".stderr";
        return phase ? p + "." + std::to_string(phase) : p;
    };

    auto launch = [&](size_t i) {
        JobState &st = states[i];
        st.started = Clock::now();
        st.last_beat = st.started;
        unsigned attempt_now = st.attempt;
        if (st.phase == 0) {
            json::Object r;
            r.emplace_back("event", json::Value("start"));
            r.emplace_back("job", json::Value(st.job->name));
            r.emplace_back("attempt", json::Value(st.attempt));
            journal.append(json::Value(std::move(r)));
            ++st.attempt;
        } else {
            attempt_now = st.attempt ? st.attempt - 1 : 0;
        }
        if (use_hb)
            st.hb.open();
        pid_t pid = ::fork();
        MAPLE_CHECK(pid >= 0, sim::FatalError, "fork failed: %s",
                    std::strerror(errno));
        if (pid == 0) {
            if (use_hb) {
                st.hb.becomeChild();
                // Cooperating exec jobs find the beat fd here; the fd is
                // not close-on-exec, so it survives into the binary.
                ::setenv(kHeartbeatFdEnv,
                         std::to_string(st.hb.writeFd()).c_str(), 1);
            }
            const int hb_fd = use_hb ? st.hb.writeFd() : -1;
            if (st.job->type == "scenario") {
                redirectTo(stdoutPath(st, 0), stderrPath(st, 0));
                scenarioChild(st, spec.runs, cache,
                              jobs_dir + "/" + st.job->name + ".json", hb_fd,
                              attempt_now);
            }
            execChild(st, stdoutPath(st, st.phase), stderrPath(st, st.phase),
                      attempt_now);
        }
        if (use_hb)
            st.hb.becomeParent();
        st.pid = pid;
        running.push_back(i);
    };

    auto finishExec = [&](JobState &st) {
        const auto expect = st.job->spec.getInt("expect_exit", 0);
        json::Object doc;
        doc.emplace_back("job", st.job->spec);
        doc.emplace_back("cache_key", json::Value(st.cache_key));
        doc.emplace_back("exit_code", json::Value(st.exit_code));
        doc.emplace_back("deterministic",
                         st.deterministic ? json::Value(*st.deterministic)
                                          : json::Value(nullptr));
        doc.emplace_back("stdout",
                         json::Value(readAll(stdoutPath(st, 0))));
        doc.emplace_back("stderr",
                         json::Value(readAll(stderrPath(st, 0))));
        st.result = json::Value(std::move(doc));
        json::writeFile(jobs_dir + "/" + st.job->name + ".json", st.result);
        if (st.status.empty())
            st.status = st.exit_code == expect ? "ok" : "failed";
        if (st.status == "ok" && !(st.deterministic && !*st.deterministic))
            cache.store(st.cache_key, st.result);
    };

    // A terminal outcome either sticks (success / permanent / budget spent)
    // or re-queues the job with backoff. Quarantine is reserved for jobs
    // that burned a real retry budget: with retry_budget=0 a failure is
    // just a failure, exactly as before the retry machinery existed.
    auto finalize = [&](size_t i) {
        JobState &st = states[i];
        const OutcomeClass oc =
            classifyOutcome(st.status, st.exit_code, st.term_signal,
                            readTail(stderrPath(st, 0)));
        if (oc == OutcomeClass::Transient && policy.budget() > 0) {
            if (st.attempt <= policy.budget()) {
                journalFinish(st, st.status, /*retry=*/true);
                ++retries_total;
                const double delay = policy.backoffSeconds(st.attempt);
                std::fprintf(stderr,
                             "campaign: job %s %s (attempt %u); retrying "
                             "in %.3fs\n",
                             st.job->name.c_str(), st.status.c_str(),
                             st.attempt, delay);
                st.status.clear();
                st.exit_code = 0;
                st.term_signal = 0;
                st.timed_out = false;
                st.hung = false;
                st.term_sent = false;
                st.killed = false;
                st.phase = 0;
                st.first_exit = 0;
                st.deterministic.reset();
                st.diagnostics.clear();
                st.result = json::Value();
                st.not_before =
                    Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(delay));
                cooling.push_back(i);
                return;
            }
            st.quarantined = true;
            std::fprintf(stderr,
                         "campaign: job %s quarantined after %u attempts "
                         "(last: %s)\n",
                         st.job->name.c_str(), st.attempt,
                         st.status.c_str());
        }
        journalFinish(st, st.status, /*retry=*/false);
    };

    auto reap = [&](size_t i, int wstatus) {
        JobState &st = states[i];
        st.pid = -1;
        st.hb.closeAll();
        st.host_seconds += std::chrono::duration<double>(Clock::now() -
                                                         st.started)
                               .count();
        if (st.timed_out) {
            st.status = "timeout";
            st.diagnostics = "stopped after exceeding the per-job timeout";
        } else if (st.hung) {
            st.status = "hung";
            st.diagnostics =
                "no heartbeat for " +
                std::to_string(spec.heartbeat_timeout_s) + "s";
        } else if (WIFSIGNALED(wstatus)) {
            st.status = "crashed";
            st.term_signal = WTERMSIG(wstatus);
            st.diagnostics = "terminated by signal " +
                             std::to_string(st.term_signal) + "; stderr: " +
                             readTail(stderrPath(st, st.phase));
        } else {
            st.exit_code = WEXITSTATUS(wstatus);
        }

        if (st.job->type == "scenario") {
            if (st.status.empty()) {
                switch (st.exit_code) {
                case 0: st.status = "ok"; break;
                case 3:
                    st.status = "failed";
                    st.diagnostics = "result failed validation";
                    break;
                case 4:
                    st.status = "failed";
                    st.diagnostics = "nondeterministic across repeat runs";
                    break;
                default:
                    st.status = "failed";
                    st.diagnostics = "exit code " +
                                     std::to_string(st.exit_code) +
                                     "; stderr: " +
                                     readTail(stderrPath(st, 0));
                }
            }
            const std::string rp = jobs_dir + "/" + st.job->name + ".json";
            if (fs::exists(rp)) {
                try {
                    st.result = json::parseFile(rp);
                    if (const json::Value *d = st.result.get("deterministic"))
                        if (d->isBool())
                            st.deterministic = d->asBool();
                } catch (const json::JsonError &) {
                }
            }
            finalize(i);
            return;
        }

        // Exec job: maybe run phase 2 for the determinism double-run.
        if (st.status.empty() && spec.runs >= 2 && st.phase == 0) {
            st.first_exit = st.exit_code;
            st.phase = 1;
            launch(i);
            return;
        }
        if (st.phase == 1 && st.status.empty())
            st.deterministic = st.exit_code == st.first_exit &&
                               readAll(stdoutPath(st, 0)) ==
                                   readAll(stdoutPath(st, 1));
        finishExec(st);
        finalize(i);
    };

    while (!pending.empty() || !cooling.empty() || !running.empty()) {
        const auto now = Clock::now();
        for (size_t c = 0; c < cooling.size();) {
            if (now >= states[cooling[c]].not_before) {
                pending.push_back(cooling[c]);
                cooling.erase(cooling.begin() + static_cast<long>(c));
                continue;
            }
            ++c;
        }
        while (!pending.empty() && running.size() < workers) {
            size_t i = pending.back();
            pending.pop_back();
            launch(i);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        for (size_t r = 0; r < running.size();) {
            size_t i = running[r];
            JobState &st = states[i];
            int wstatus = 0;
            pid_t got = ::waitpid(st.pid, &wstatus, WNOHANG);
            if (got == st.pid) {
                running.erase(running.begin() + static_cast<long>(r));
                reap(i, wstatus);  // may relaunch (exec phase 2 / retry)
                continue;
            }
            const auto poll_now = Clock::now();
            if (use_hb && st.hb.drain())
                st.last_beat = poll_now;
            const double elapsed =
                std::chrono::duration<double>(poll_now - st.started).count();
            if (!st.term_sent) {
                // Escalation: SIGTERM first so a cooperating child can
                // flush partial results, SIGKILL after the grace window.
                // `hung` (beat-less) is distinct from merely slow, which
                // only the wall-clock budget bounds.
                const double since_beat =
                    std::chrono::duration<double>(poll_now - st.last_beat)
                        .count();
                if (elapsed > st.timeout_s)
                    st.timed_out = true;
                else if (use_hb && since_beat > spec.heartbeat_timeout_s)
                    st.hung = true;
                if (st.timed_out || st.hung) {
                    ::kill(st.pid, SIGTERM);
                    st.term_sent = true;
                    st.term_time = poll_now;
                }
            } else if (!st.killed &&
                       std::chrono::duration<double>(poll_now - st.term_time)
                               .count() > spec.grace_s) {
                ::kill(st.pid, SIGKILL);
                st.killed = true;
            }
            ++r;
        }
    }

    // Manifest + report.
    unsigned ok = 0, failed = 0, cached = 0, quarantined = 0;
    std::uint64_t simulated_cycles = 0;
    json::Array rows;
    json::Array quarantine;
    for (const JobState &st : states) {
        if (st.status == "ok")
            ++ok;
        else if (st.status == "cached")
            ++cached;
        else if (st.quarantined)
            ++quarantined;
        else
            ++failed;
        std::uint64_t cycles = 0;
        if (!st.cache_hit && !st.result.isNull())
            cycles = static_cast<std::uint64_t>(
                st.result.getInt("simulated_cycles", 0));
        simulated_cycles += cycles;

        json::Object row;
        row.emplace_back("name", json::Value(st.job->name));
        row.emplace_back("type", json::Value(st.job->type));
        row.emplace_back("status", json::Value(st.status));
        row.emplace_back("cache_key", json::Value(st.cache_key));
        row.emplace_back("cache_hit", json::Value(st.cache_hit));
        row.emplace_back("attempts", json::Value(st.attempt));
        row.emplace_back("quarantined", json::Value(st.quarantined));
        row.emplace_back("exit_code", json::Value(st.exit_code));
        row.emplace_back("signal", json::Value(st.term_signal));
        row.emplace_back("host_seconds", json::Value(st.host_seconds));
        row.emplace_back("simulated_cycles", json::Value(cycles));
        row.emplace_back("deterministic",
                         st.deterministic ? json::Value(*st.deterministic)
                                          : json::Value(nullptr));
        row.emplace_back("result",
                         json::Value("jobs/" + st.job->name + ".json"));
        row.emplace_back("diagnostics", json::Value(st.diagnostics));
        rows.push_back(json::Value(std::move(row)));

        if (st.quarantined) {
            json::Object q;
            q.emplace_back("name", json::Value(st.job->name));
            q.emplace_back("status", json::Value(st.status));
            q.emplace_back("attempts", json::Value(st.attempt));
            q.emplace_back("diagnostics", json::Value(st.diagnostics));
            quarantine.push_back(json::Value(std::move(q)));
        }
    }

    {
        json::Object rec;
        rec.emplace_back("event", json::Value("end"));
        rec.emplace_back("ok", json::Value(ok));
        rec.emplace_back("failed", json::Value(failed));
        rec.emplace_back("cached", json::Value(cached));
        rec.emplace_back("quarantined", json::Value(quarantined));
        journal.append(json::Value(std::move(rec)));
    }

    json::Object totals;
    totals.emplace_back("jobs", json::Value(states.size()));
    totals.emplace_back("ok", json::Value(ok));
    totals.emplace_back("failed", json::Value(failed));
    totals.emplace_back("cached", json::Value(cached));
    totals.emplace_back("quarantined", json::Value(quarantined));
    totals.emplace_back("retries", json::Value(retries_total));
    totals.emplace_back("warmups_run", json::Value(warmups_run));
    totals.emplace_back("cache_hits", json::Value(cached));
    totals.emplace_back("cache_evictions", json::Value(cache.evictions()));
    totals.emplace_back("simulated_cycles", json::Value(simulated_cycles));

    json::Object manifest;
    manifest.emplace_back("campaign", json::Value(spec.name));
    manifest.emplace_back("workers", json::Value(workers));
    manifest.emplace_back("runs", json::Value(spec.runs));
    manifest.emplace_back("totals", json::Value(std::move(totals)));
    manifest.emplace_back("quarantine", json::Value(std::move(quarantine)));
    manifest.emplace_back("jobs", json::Value(std::move(rows)));
    json::writeFile(out + "/manifest.json", json::Value(std::move(manifest)));

    {
        std::ofstream md(out + "/report.md", std::ios::trunc);
        md << "# Campaign: " << spec.name << "\n\n"
           << "- jobs: " << states.size() << " (ok " << ok << ", cached "
           << cached << ", failed " << failed << ", quarantined "
           << quarantined << ")\n"
           << "- retries: " << retries_total
           << ", cache evictions: " << cache.evictions() << "\n"
           << "- warm simulations: " << warmups_run << "\n"
           << "- simulated cycles: " << simulated_cycles << "\n\n"
           << "| job | status | cycles | valid | deterministic | cache |\n"
           << "|---|---|---:|---|---|---|\n";
        for (const JobState &st : states) {
            std::string valid = "-";
            std::uint64_t cycles = 0;
            if (const json::Value *r = st.result.get("result")) {
                valid = r->getBool("valid", false) ? "yes" : "NO";
                cycles = static_cast<std::uint64_t>(r->getInt("cycles", 0));
            }
            md << "| " << st.job->name << " | " << st.status << " | "
               << cycles << " | " << valid << " | "
               << (st.deterministic ? (*st.deterministic ? "yes" : "NO")
                                    : "-")
               << " | " << (st.cache_hit ? "hit" : "miss") << " |\n";
        }
    }

    std::fprintf(stderr,
                 "campaign %s: %zu jobs, %u ok, %u cached, %u failed, "
                 "%u quarantined (%u retries, %u warmups, %u evictions, "
                 "%llu simulated cycles) -> %s\n",
                 spec.name.c_str(), states.size(), ok, cached, failed,
                 quarantined, retries_total, warmups_run, cache.evictions(),
                 (unsigned long long)simulated_cycles, out.c_str());
    return failed > 0 && opts.strict ? 1 : 0;
}

}  // namespace maple::campaign
