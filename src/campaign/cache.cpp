#include "campaign/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "campaign/health.hpp"
#include "ckpt/snapshot.hpp"
#include "sim/error.hpp"

namespace maple::campaign {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnvBytes(std::uint64_t h, const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
fnvStr(std::uint64_t h, const std::string &s)
{
    return fnvBytes(h, s.data(), s.size());
}

/** Content hash of the running binary; the "code version" of a result. */
std::uint64_t
selfExeHash()
{
    static const std::uint64_t h = fileContentHash("/proc/self/exe");
    return h;
}

}  // namespace

std::uint64_t
fileContentHash(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    MAPLE_CHECK(f.good(), sim::ConfigError,
                "cannot hash %s: file is unreadable", path.c_str());
    std::uint64_t h = kFnvOffset;
    char buf[1 << 16];
    while (f.read(buf, sizeof buf) || f.gcount() > 0)
        h = fnvBytes(h, buf, static_cast<size_t>(f.gcount()));
    return h;
}

ResultCache::ResultCache(std::string dir, bool enabled)
    : dir_(std::move(dir)), enabled_(enabled)
{
}

std::string
ResultCache::keyFor(const Job &job) const
{
    std::uint64_t h = kFnvOffset;
    h = fnvBytes(h, &kCacheVersion, sizeof kCacheVersion);
    h = fnvBytes(h, &ckpt::kFormatVersion, sizeof ckpt::kFormatVersion);
    h = fnvStr(h, job.type);
    // host_threads is a host-execution knob with no effect on simulated
    // results (the sharded engine is byte-identical for any thread count),
    // so it must not split the cache: an 8-thread job reuses the 1-thread
    // entry and vice versa.
    json::Value keyed_spec = job.spec;
    if (job.spec.isObject()) {
        json::Object filtered;
        for (const auto &[k, v] : job.spec.asObject()) {
            if (k != "host_threads")
                filtered.emplace_back(k, v);
        }
        keyed_spec = json::Value(std::move(filtered));
    }
    h = fnvStr(h, json::dump(keyed_spec));
    std::uint64_t self = selfExeHash();
    h = fnvBytes(h, &self, sizeof self);
    if (job.type == "exec") {
        const std::string bin = job.spec.get("argv")->asArray()[0].asString();
        std::uint64_t bh = fileContentHash(bin);
        h = fnvBytes(h, &bh, sizeof bh);
    }
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx", (unsigned long long)h);
    return hex;
}

std::optional<json::Value>
ResultCache::load(const std::string &key) const
{
    if (!enabled_)
        return std::nullopt;
    const std::string path = dir_ + "/" + key + ".json";
    if (!std::filesystem::exists(path))
        return std::nullopt;
    ChaosPlan::env().maybeSlowIo("cache-load:" + key);

    // An entry is trusted only when it parses, carries the checksum
    // wrapper, and the payload's canonical dump matches the recorded
    // FNV-64. Anything else — torn write, bit rot, injected corruption,
    // stale unwrapped format — is evicted so it cannot be served again.
    const char *why = nullptr;
    try {
        json::Value entry = json::parseFile(path);
        const json::Value *payload = entry.get("payload");
        const std::string want_hex = entry.getString("fnv64", "");
        if (!payload || want_hex.empty()) {
            why = "missing checksum wrapper";
        } else {
            const std::uint64_t want =
                std::strtoull(want_hex.c_str(), nullptr, 16);
            const std::string dumped = json::dump(*payload);
            const std::uint64_t got = fnvStr(kFnvOffset, dumped);
            if (want != got)
                why = "checksum mismatch";
            else
                return *payload;
        }
    } catch (const json::JsonError &) {
        why = "unparsable entry";
    }
    std::fprintf(stderr, "cache: evicting corrupt entry %s (%s)\n",
                 path.c_str(), why);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    ++evictions_;
    return std::nullopt;
}

void
ResultCache::store(const std::string &key, const json::Value &result) const
{
    std::filesystem::create_directories(dir_);
    const std::string path = dir_ + "/" + key + ".json";
    ChaosPlan::env().maybeSlowIo("cache-store:" + key);

    const std::uint64_t h = fnvStr(kFnvOffset, json::dump(result));
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx", (unsigned long long)h);
    json::Object entry;
    entry.emplace_back("fnv64", json::Value(std::string(hex)));
    entry.emplace_back("payload", result);
    json::writeFile(path, json::Value(std::move(entry)));

    if (ChaosPlan::env().corrupt_cache)
        ChaosPlan::env().maybeCorruptFile(path, "corrupt-cache:" + key);
}

}  // namespace maple::campaign
